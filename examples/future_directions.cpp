// The paper's Sec. 4 future directions, running today on the platform:
//  - multi-writer transactions over disaggregated shared memory;
//  - one-sided distributed OCC transactions on PM (FORD, Sec. 2.3 ref);
//  - a disaggregated blockchain with parallel validation (FlexChain).
//
//   ./build/examples/future_directions

#include <cstdio>

#include "chain/flexchain.h"
#include "core/multi_writer.h"
#include "pm/ford_txn.h"

using namespace disagg;

int main() {
  Fabric fabric;

  // ---------------- Multiple writers, one shared pool ------------------
  MultiWriterDb db(&fabric, /*max_pages=*/128);
  auto alice = db.AttachWriter();
  auto bob = db.AttachWriter();
  NetContext actx, bctx;
  (void)alice->Put(&actx, 1, "written-by-alice");
  (void)bob->Put(&bctx, 2, "written-by-bob");
  (void)bob->Put(&bctx, 1, "bob-updated-alices-row");
  auto row = alice->Get(&actx, 1);
  std::printf("multi-writer: alice reads key 1 -> '%s'\n",
              row.ok() ? row->c_str() : "?");
  std::printf("  two concurrent writers, zero log shipping between them —\n"
              "  coordination is a CAS lock table in the memory pool.\n\n");

  // ---------------- FORD: distributed txn across two PM nodes ----------
  PmNode pm0(&fabric, "pm0", 32 << 20), pm1(&fabric, "pm1", 32 << 20);
  FordTxnManager ford(&fabric, {&pm0, &pm1}, /*records_per_node=*/16);
  NetContext fctx;
  auto txn = ford.Begin(&fctx);
  (void)txn.Write(0, "on-pm0");    // record 0 lives on pm0
  (void)txn.Write(20, "on-pm1");   // record 20 lives on pm1
  Status commit = txn.Commit();
  std::printf("FORD commit across 2 PM nodes: %s, %llu round trips, "
              "%llu RPCs (all one-sided)\n",
              commit.ToString().c_str(),
              (unsigned long long)fctx.round_trips,
              (unsigned long long)fctx.rpcs);
  pm0.Crash();
  auto survived = ford.ReadCommitted(&fctx, 0);
  std::printf("  after pm0 power-fail: record 0 = '%s' (persisted)\n\n",
              survived.ok() ? survived->c_str() : "?");

  // ---------------- FlexChain: parallel validation ---------------------
  MemoryNode pool(&fabric, "chain-pool", 128 << 20);
  FlexChain chain(&fabric, &pool, /*hot_cache=*/32);
  std::vector<FlexChain::ChainTxn> block;
  for (int i = 0; i < 16; i++) {
    FlexChain::ChainTxn t;
    t.id = "txn" + std::to_string(i);
    t.write_set = {{"account:" + std::to_string(i), "balance:100"}};
    block.push_back(std::move(t));
  }
  NetContext cctx;
  auto serial_block = block;
  for (auto& t : serial_block) {
    t.id += "-s";
    t.write_set[0].first += "-s";
  }
  auto parallel = chain.CommitBlock(&cctx, block, /*parallel=*/true);
  auto serial = chain.CommitBlock(&cctx, serial_block, /*parallel=*/false);
  if (parallel.ok() && serial.ok()) {
    std::printf("FlexChain 16-txn block validation: parallel %.0f us vs "
                "serial %.0f us (%zu dependency level%s)\n",
                static_cast<double>(parallel->validate_sim_ns) / 1e3,
                static_cast<double>(serial->validate_sim_ns) / 1e3,
                parallel->dependency_levels,
                parallel->dependency_levels == 1 ? "" : "s");
  }
  return 0;
}
