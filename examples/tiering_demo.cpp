// New-hardware tiers: persistent memory (Sec. 2.3) and CXL (Sec. 3.3).
// Walks through the PM persistence pitfall, PilotDB's optimistic reads,
// and CXL tiering/pooling.
//
//   ./build/examples/tiering_demo

#include <cstdio>

#include "cxl/pond.h"
#include "cxl/tiering.h"
#include "pm/pilot_log.h"
#include "pm/pm_node.h"

using namespace disagg;

int main() {
  Fabric fabric;

  // ---------------- The PM persistence pitfall ------------------------
  PmNode pm(&fabric, "pm0", 64 << 20);
  PmClient client(&fabric, &pm);
  auto addr = pm.AllocLocal(64);
  if (!addr.ok()) return 1;

  NetContext ctx;
  (void)client.WriteUnsafe(&ctx, *addr, "not-yet-durable");
  pm.Crash();
  char buf[16] = {0};
  (void)client.ReadRemote(&ctx, *addr, buf, 15);
  std::printf("after crash w/o flush : '%s'  (one-sided write was lost!)\n",
              buf[0] ? buf : "<zeroes>");

  NetContext one_sided, rpc;
  (void)client.WritePersistOneSided(&one_sided, *addr, "durable-now!!!!");
  pm.Crash();
  (void)client.ReadRemote(&ctx, *addr, buf, 15);
  std::printf("after crash w/ flush  : '%.15s'\n", buf);
  (void)client.WritePersistRpc(&rpc, *addr, "rpc-persisted!!");
  std::printf("persist cost          : one-sided %llu ns vs RPC %llu ns "
              "(two-sided wins: Kalia et al.)\n\n",
              (unsigned long long)one_sided.sim_ns,
              (unsigned long long)rpc.sim_ns);

  // ---------------- PilotDB optimistic reads --------------------------
  PilotLog pilot(&fabric, &pm, 1 << 20, 8);
  Page page(1);
  (void)page.Insert("v1");
  page.set_lsn(1);
  (void)pilot.CreatePage(&ctx, page);
  LogRecord upd;
  upd.lsn = 2;
  upd.type = LogType::kUpdate;
  upd.page_id = 1;
  upd.slot = 0;
  upd.payload = "v2";
  (void)pilot.AppendLog(&ctx, {upd});
  auto read = pilot.ReadPage(&ctx, 1, /*expected_lsn=*/2);
  std::printf("PilotDB read while applier lags: got '%s' by replaying the\n"
              "log tail locally (%llu records replayed)\n\n",
              read.ok() ? read->Get(0)->ToString().c_str() : "?",
              (unsigned long long)pilot.stats().replayed_records);

  // ---------------- CXL tiering ---------------------------------------
  CxlTieringManager tiering(128 << 20, 1 << 30, CxlPlacementPolicy::kTiered);
  (void)tiering.AddSegment(1, "hot-delta", 64 << 20, /*heat=*/1000);
  (void)tiering.AddSegment(2, "cold-main", 512 << 20, /*heat=*/2);
  auto delta = tiering.segment(1);
  auto main_store = tiering.segment(2);
  std::printf("CXL tiering: '%s' -> %s, '%s' -> %s (HANA-style split)\n",
              delta->name.c_str(), delta->in_dram ? "DRAM" : "CXL",
              main_store->name.c_str(), main_store->in_dram ? "DRAM" : "CXL");

  // ---------------- Pond pooling --------------------------------------
  PondPool pod(/*hosts=*/4, /*dram_per_host=*/32ull << 30,
               /*pool_fraction=*/0.5);
  PondPool::VmRequest vm;
  vm.name = "analytics-vm";
  vm.memory_bytes = 40ull << 30;  // larger than any single host!
  vm.latency_sensitivity = 0.2;
  vm.untouched_fraction = 0.5;
  vm.max_slowdown = 0.05;
  auto placement = pod.Allocate(vm);
  if (placement.ok()) {
    std::printf("Pond placed a 40 GB VM on 32 GB hosts: %.0f GB local + "
                "%.0f GB pooled, predicted slowdown %.1f%%\n",
                static_cast<double>(placement->local_bytes) / (1 << 30),
                static_cast<double>(placement->pool_bytes) / (1 << 30),
                placement->predicted_slowdown * 100);
  }
  return 0;
}
