// Quickstart: build a disaggregated data center on the simulated fabric,
// run an Aurora-style log-as-the-database engine on it, and inspect what a
// transaction actually costs in network terms.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/engines.h"

using namespace disagg;

int main() {
  // The fabric is the simulated data center: nodes + interconnect models.
  Fabric fabric;

  // AuroraDb wires up its own storage pool: a 6-replica / 3-AZ quorum
  // segment whose replicas materialize pages from the shipped log.
  AuroraDb db(&fabric);

  // Every call takes a NetContext that accumulates simulated time, bytes,
  // and round trips — the currency of disaggregated designs.
  NetContext ctx;

  // Autocommit writes.
  for (uint64_t k = 1; k <= 100; k++) {
    Status st = db.Put(&ctx, k, "row-" + std::to_string(k));
    if (!st.ok()) {
      std::fprintf(stderr, "put failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // A multi-statement transaction.
  TxnId txn = db.Begin();
  (void)db.Update(&ctx, txn, 1, "updated-inside-txn");
  (void)db.Insert(&ctx, txn, 101, "inserted-inside-txn");
  if (Status st = db.Commit(&ctx, txn); !st.ok()) {
    std::fprintf(stderr, "commit failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Reads. The compute node is stateless: drop its buffer ("crash") and the
  // rows come back from shared storage.
  db.DropBuffer();
  auto row = db.GetRow(&ctx, 1);
  std::printf("row 1 after compute restart: %s\n",
              row.ok() ? row->c_str() : row.status().ToString().c_str());

  std::printf("\n-- what it cost (simulated) --\n");
  std::printf("simulated time  : %.2f ms\n", ctx.SimMillis());
  std::printf("bytes shipped   : %llu out / %llu in\n",
              (unsigned long long)ctx.bytes_out,
              (unsigned long long)ctx.bytes_in);
  std::printf("round trips     : %llu (%llu of them RPCs)\n",
              (unsigned long long)ctx.round_trips,
              (unsigned long long)ctx.rpcs);
  std::printf("rows stored     : %zu\n", db.row_count());
  std::printf("\nNote: only log records ever crossed the network on the\n"
              "write path -- \"the log is the database\" (Sec. 2.1).\n");
  return 0;
}
