// OLAP on disaggregation, two ways:
//  1. Snowflake-style: immutable columnar files on object storage, elastic
//     virtual warehouses, min-max pruning (storage disaggregation).
//  2. TELEPORT-style: the table lives in the memory pool and the operator
//     fragment ships to it (memory disaggregation + pushdown).
//
//   ./build/examples/olap_analytics

#include <cstdio>

#include "core/snowflake_db.h"
#include "query/pushdown.h"
#include "workload/tpch_lite.h"

using namespace disagg;

int main() {
  Fabric fabric;
  const size_t kRows = 10000;

  // ---------------- Snowflake-style warehouse -------------------------
  SnowflakeDb warehouse(&fabric, /*rows_per_file=*/1000);
  NetContext load;
  auto lineitem = ops::SortBy(nullptr, tpch::GenLineitem(kRows), {4});
  if (Status st = warehouse.LoadTable(&load, "lineitem",
                                      tpch::LineitemSchema(), lineitem);
      !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Revenue for recent shipments, grouped by return flag.
  ops::Fragment recent;
  recent.predicate.And(4, CmpOp::kGe, int64_t{2200});
  recent.group_cols = {5};
  recent.aggs = {{AggFunc::kSum, 2}, {AggFunc::kCount, 0}};

  std::printf("Snowflake-style query across virtual warehouse sizes:\n");
  for (int vws : {1, 2, 4}) {
    warehouse.SetWarehouses(vws);
    auto result = warehouse.Query("lineitem", recent);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %d VW(s): %6.2f sim-ms, %zu/%zu files pruned\n", vws,
                static_cast<double>(result->sim_ns) / 1e6,
                result->files_pruned, result->files_total);
    if (vws == 1) {
      for (const Tuple& row : result->rows) {
        std::printf("      flag %-2s revenue %12.2f rows %8.0f\n",
                    AsString(row[0]).c_str(), AsDouble(row[1]),
                    AsDouble(row[2]));
      }
    }
  }

  // ---------------- TELEPORT-style pushdown ---------------------------
  MemoryNode pool(&fabric, "olap-pool", 512 << 20);
  NetContext setup;
  auto table = RemoteTable::Create(&setup, &fabric, &pool,
                                   tpch::LineitemSchema(),
                                   tpch::GenLineitem(kRows));
  if (!table.ok()) return 1;

  ops::Fragment selective;
  selective.predicate.And(1, CmpOp::kLe, int64_t{2});  // ~4% of rows
  selective.project = {0, 2};

  NetContext fetch_ctx, push_ctx;
  auto all = table->FetchAll(&fetch_ctx);
  if (!all.ok()) return 1;
  auto local = selective.Execute(&fetch_ctx, *all);
  auto pushed = table->Pushdown(&push_ctx, selective);
  if (!pushed.ok()) return 1;

  std::printf("\nTELEPORT-style pushdown vs fetch-all (%zu-row remote table):\n",
              kRows);
  std::printf("  fetch-all : %7.0f sim-us, %8llu bytes moved, %zu matches\n",
              static_cast<double>(fetch_ctx.sim_ns) / 1e3,
              (unsigned long long)fetch_ctx.bytes_in, local.size());
  std::printf("  pushdown  : %7.0f sim-us, %8llu bytes moved, %zu matches\n",
              static_cast<double>(push_ctx.sim_ns) / 1e3,
              (unsigned long long)push_ctx.bytes_in, pushed->size());
  return 0;
}
