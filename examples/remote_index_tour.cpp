// Tour of the indexes for disaggregated memory (Sec. 3.1): the RACE-style
// lock-free hash, the Sherman-style B+tree, and the dLSM sharded LSM — all
// living in the same memory pool, each with its own protocol trade-offs.
//
//   ./build/examples/remote_index_tour

#include <cstdio>

#include "rindex/dlsm.h"
#include "rindex/race_hash.h"
#include "rindex/remote_btree.h"

using namespace disagg;

int main() {
  Fabric fabric;
  MemoryNode pool(&fabric, "index-pool", 512 << 20);

  // ---------------- RACE hash: one-sided, lock-free -------------------
  NetContext hctx;
  auto table = RaceHash::Create(&hctx, &fabric, &pool, 256);
  if (!table.ok()) return 1;
  RaceHash hash(&fabric, &pool, *table);
  for (int i = 0; i < 500; i++) {
    (void)hash.Put(&hctx, "user:" + std::to_string(i),
                   "profile-" + std::to_string(i));
  }
  auto v = hash.Get(&hctx, "user:123");
  std::printf("RACE hash     get(user:123) = %s\n",
              v.ok() ? v->c_str() : v.status().ToString().c_str());
  std::printf("              500 puts + 1 get, %llu RPCs to the pool CPU "
              "(allocation chunks only)\n\n",
              (unsigned long long)hctx.rpcs);

  // ---------------- Sherman B+tree: optimistic reads ------------------
  NetContext bctx;
  auto ref = RemoteBTree::Create(&bctx, &fabric, &pool);
  if (!ref.ok()) return 1;
  RemoteBTree tree(&fabric, &pool, *ref, RemoteBTree::Options::Sherman());
  for (uint64_t k = 1; k <= 2000; k++) {
    (void)tree.Put(&bctx, k, k * 100);
  }
  auto range = tree.Scan(&bctx, 995, 5);
  std::printf("Sherman B+tree scan from key 995:\n");
  if (range.ok()) {
    for (auto& [k, val] : *range) {
      std::printf("              %llu -> %llu\n", (unsigned long long)k,
                  (unsigned long long)val);
    }
  }
  NetContext read_ctx;
  (void)tree.Get(&read_ctx, 1234);
  std::printf("              one point read: %llu round trips "
              "(1 READ per level, no locks)\n\n",
              (unsigned long long)read_ctx.round_trips);

  // ---------------- dLSM: write-optimized, remote compaction ----------
  NetContext lctx;
  DLsm lsm(&fabric, &pool, /*shards=*/4, /*memtable_limit=*/64);
  for (uint64_t k = 0; k < 1000; k++) {
    (void)lsm.Put(&lctx, k, k + 7);
  }
  auto got = lsm.Get(&lctx, 500);
  std::printf("dLSM          get(500) = %llu\n",
              got.ok() ? (unsigned long long)*got : 0ull);
  size_t runs = 0;
  for (size_t s = 0; s < lsm.num_shards(); s++) {
    runs += lsm.shard(s)->num_runs();
  }
  std::printf("              %zu remote runs before compaction\n", runs);
  NetContext compact_ctx;
  for (size_t s = 0; s < lsm.num_shards(); s++) {
    (void)lsm.shard(s)->Flush(&compact_ctx);
    (void)lsm.shard(s)->CompactRemote(&compact_ctx);
  }
  runs = 0;
  for (size_t s = 0; s < lsm.num_shards(); s++) {
    runs += lsm.shard(s)->num_runs();
  }
  std::printf("              %zu after OFFLOADED compaction (%llu bytes "
              "crossed the network)\n",
              runs,
              (unsigned long long)(compact_ctx.bytes_in +
                                   compact_ctx.bytes_out));
  return 0;
}
