// Bank-transfer OLTP on every surveyed shared-storage architecture.
// Demonstrates:
//  - the common transactional API across engines (RowEngine);
//  - conflict handling under strict 2PL with no-wait aborts;
//  - the per-architecture network cost of the SAME workload.
//
//   ./build/examples/oltp_bank

#include <cstdio>
#include <memory>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "core/engines.h"

using namespace disagg;

namespace {

constexpr int kAccounts = 100;
constexpr int kTransfers = 300;
constexpr uint64_t kInitialBalance = 1000;

uint64_t Balance(const std::string& row) { return DecodeFixed64(row.data()); }
std::string BalanceRow(uint64_t balance) {
  std::string row;
  PutFixed64(&row, balance);
  row.append(48, 'a');  // rest of the account record
  return row;
}

// Moves `amount` between two accounts inside one transaction; retries on
// no-wait conflicts.
Status Transfer(RowEngine* db, NetContext* ctx, Random* rng) {
  for (int attempt = 0; attempt < 8; attempt++) {
    const uint64_t from = rng->Uniform(kAccounts);
    uint64_t to = rng->Uniform(kAccounts);
    if (to == from) to = (to + 1) % kAccounts;
    const uint64_t amount = 1 + rng->Uniform(50);

    const TxnId txn = db->Begin();
    auto body = [&]() -> Status {
      std::string src, dst;
      DISAGG_ASSIGN_OR_RETURN(src, db->Read(ctx, txn, from));
      DISAGG_ASSIGN_OR_RETURN(dst, db->Read(ctx, txn, to));
      if (Balance(src) < amount) return Status::InvalidArgument("overdraft");
      DISAGG_RETURN_NOT_OK(
          db->Update(ctx, txn, from, BalanceRow(Balance(src) - amount)));
      return db->Update(ctx, txn, to, BalanceRow(Balance(dst) + amount));
    }();
    if (body.ok()) return db->Commit(ctx, txn);
    DISAGG_RETURN_NOT_OK(db->Abort(ctx, txn));
    if (!body.IsBusy()) return Status::OK();  // overdraft: skip transfer
  }
  return Status::OK();
}

uint64_t TotalMoney(RowEngine* db, NetContext* ctx) {
  uint64_t total = 0;
  for (uint64_t a = 0; a < kAccounts; a++) {
    auto row = db->GetRow(ctx, a);
    if (row.ok()) total += Balance(*row);
  }
  return total;
}

void RunOn(const char* name, RowEngine* db) {
  NetContext setup, ctx;
  for (uint64_t a = 0; a < kAccounts; a++) {
    (void)db->Put(&setup, a, BalanceRow(kInitialBalance));
  }
  Random rng(2024);
  for (int t = 0; t < kTransfers; t++) {
    Status st = Transfer(db, &ctx, &rng);
    if (!st.ok()) {
      std::fprintf(stderr, "%s transfer failed: %s\n", name,
                   st.ToString().c_str());
      return;
    }
  }
  NetContext audit;
  const uint64_t total = TotalMoney(db, &audit);
  std::printf("%-12s | money conserved: %s | sim %7.2f ms | %8llu bytes out"
              " | %5llu rtts\n",
              name,
              total == kAccounts * kInitialBalance ? "yes" : "NO!",
              ctx.SimMillis(), (unsigned long long)ctx.bytes_out,
              (unsigned long long)ctx.round_trips);
}

}  // namespace

int main() {
  std::printf("%d transfers between %d accounts on each architecture:\n\n",
              kTransfers, kAccounts);
  {
    MonolithicDb db;
    RunOn("monolithic", &db);
  }
  {
    Fabric fabric;
    AuroraDb db(&fabric);
    RunOn("aurora", &db);
  }
  {
    Fabric fabric;
    PolarDb db(&fabric);
    RunOn("polardb", &db);
  }
  {
    Fabric fabric;
    SocratesDb db(&fabric);
    RunOn("socrates", &db);
  }
  {
    Fabric fabric;
    TaurusDb db(&fabric);
    RunOn("taurus", &db);
  }
  std::printf("\nMoney is conserved everywhere; the architectures differ in\n"
              "what a commit costs and where the bytes go (see Fig. 1 bench).\n");
  return 0;
}
