// Experiment E14 (DESIGN.md): remote-memory caching (Sec. 3.2).
//  - Redy: GET latency from stranded remote memory vs an SSD cache, and
//    the cost of migrating the cache when the stranded memory is reclaimed.
//  - CompuCache: pointer-chasing stored procedures — k dependent hops cost
//    k one-sided round trips client-side but a single RPC server-side.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "memnode/remote_cache.h"
#include "workload/ycsb.h"

namespace disagg {
namespace {

constexpr int kGets = 500;
constexpr uint64_t kEntries = 1000;

void BM_E14_Redy_RemoteMemoryGet(benchmark::State& state) {
  Fabric fabric;
  MemoryNode pool(&fabric, "stranded", 256 << 20);
  RemoteCache cache(&fabric, &pool);
  NetContext setup;
  for (uint64_t k = 0; k < kEntries; k++) {
    DISAGG_CHECK_OK(
        cache.Put(&setup, std::to_string(k), std::string(1024, 'v')));
  }
  ZipfianGenerator zipf(kEntries, 0.99, 3);
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kGets; i++) {
      DISAGG_CHECK(cache.Get(&ctx, std::to_string(zipf.Next())).ok());
    }
  }
  bench::ReportSim(state, ctx, kGets);
}

void BM_E14_SsdCacheGetBaseline(benchmark::State& state) {
  // The incumbent Redy replaces: the same GETs served by an SSD cache.
  const auto ssd = InterconnectModel::Ssd();
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kGets; i++) {
      ctx.Charge(ssd.ReadCost(1024));
      ctx.bytes_in += 1024;
      ctx.round_trips++;
    }
  }
  bench::ReportSim(state, ctx, kGets);
}

void BM_E14_Redy_MigrationOnReclaim(benchmark::State& state) {
  Fabric fabric;
  MemoryNode old_pool(&fabric, "stranded-old", 256 << 20);
  MemoryNode new_pool(&fabric, "stranded-new", 256 << 20);
  RemoteCache cache(&fabric, &old_pool);
  NetContext setup;
  for (uint64_t k = 0; k < kEntries; k++) {
    DISAGG_CHECK_OK(
        cache.Put(&setup, std::to_string(k), std::string(1024, 'v')));
  }
  NetContext ctx;
  for (auto _ : state) {
    DISAGG_CHECK_OK(cache.MigrateTo(&ctx, &new_pool));
  }
  state.counters["migrate_sim_ms"] = static_cast<double>(ctx.sim_ns) / 1e6;
  state.counters["entries"] = static_cast<double>(cache.size());
}

void BM_E14_CompuCache_PointerChase(benchmark::State& state) {
  const size_t hops = static_cast<size_t>(state.range(0));
  const bool server_side = state.range(1) != 0;
  Fabric fabric;
  MemoryNode pool(&fabric, "mem0", 64 << 20);
  PointerChain chain(&fabric, &pool);
  NetContext setup;
  std::vector<std::string> values;
  for (size_t i = 0; i <= hops; i++) values.push_back("node" + std::to_string(i));
  auto head = chain.Build(&setup, values);
  DISAGG_CHECK(head.ok());
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kGets; i++) {
      auto r = server_side ? chain.ChaseServerSide(&ctx, *head, hops)
                           : chain.ChaseClientSide(&ctx, *head, hops);
      DISAGG_CHECK(r.ok());
    }
  }
  bench::ReportSim(state, ctx, kGets);
  state.SetLabel(server_side ? "stored-procedure(1 RTT)"
                             : "client-chase(k RTTs)");
}

void ChaseSweep(benchmark::internal::Benchmark* b) {
  for (int server : {0, 1}) {
    for (int hops : {1, 2, 4, 8}) b->Args({hops, server});
  }
  b->Iterations(1);
}

BENCHMARK(BM_E14_Redy_RemoteMemoryGet)->Iterations(1);
BENCHMARK(BM_E14_SsdCacheGetBaseline)->Iterations(1);
BENCHMARK(BM_E14_Redy_MigrationOnReclaim)->Iterations(1);
BENCHMARK(BM_E14_CompuCache_PointerChase)->Apply(ChaseSweep);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
