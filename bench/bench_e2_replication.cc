// Experiment E2 (DESIGN.md): replication protocols of the storage tier.
// Aurora's 6-way/3-AZ write quorum (W=4) vs PolarFS's 3-way RaftLite.
// Expected shape: quorum append latency ~ one parallel fan-out round;
// Raft commits in one leader round trip to a majority; the quorum design
// moves ~2x the bytes (6 vs 3 copies) but stays available through a whole
// AZ failure, which Raft-3 maps to a single-node failure.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "storage/quorum.h"
#include "storage/raft_lite.h"

namespace disagg {
namespace {

constexpr int kWrites = 300;

LogRecord MakeRecord(Lsn lsn) {
  LogRecord r;
  r.lsn = lsn;
  r.txn_id = 1;
  r.type = LogType::kInsert;
  r.page_id = lsn % 32;
  r.slot = 0;
  r.payload = std::string(120, 'x');
  return r;
}

void BM_E2_AuroraQuorum_6of3AZ(benchmark::State& state) {
  Fabric fabric;
  ReplicatedSegment segment(&fabric, {});
  NetContext ctx;
  for (auto _ : state) {
    for (Lsn lsn = 1; lsn <= kWrites; lsn++) {
      DISAGG_CHECK(segment.AppendLog(&ctx, {MakeRecord(lsn)}).ok());
    }
  }
  bench::ReportSim(state, ctx, kWrites);
}

void BM_E2_AuroraQuorum_UnderAzFailure(benchmark::State& state) {
  Fabric fabric;
  ReplicatedSegment segment(&fabric, {});
  segment.FailAz(0);  // 2 of 6 replicas down for the whole run
  NetContext ctx;
  for (auto _ : state) {
    for (Lsn lsn = 1; lsn <= kWrites; lsn++) {
      DISAGG_CHECK(segment.AppendLog(&ctx, {MakeRecord(lsn)}).ok());
    }
  }
  bench::ReportSim(state, ctx, kWrites);
}

void BM_E2_PolarFsRaft_3way(benchmark::State& state) {
  Fabric fabric;
  RaftLiteGroup raft(&fabric, 3);
  NetContext ctx;
  for (auto _ : state) {
    for (Lsn lsn = 1; lsn <= kWrites; lsn++) {
      std::string payload;
      MakeRecord(lsn).EncodeTo(&payload);
      DISAGG_CHECK(raft.Append(&ctx, std::move(payload)).ok());
    }
  }
  bench::ReportSim(state, ctx, kWrites);
}

void BM_E2_PolarFsRaft_FollowerDown(benchmark::State& state) {
  Fabric fabric;
  RaftLiteGroup raft(&fabric, 3);
  fabric.node(raft.replica_node(2))->Fail();
  NetContext ctx;
  for (auto _ : state) {
    for (Lsn lsn = 1; lsn <= kWrites; lsn++) {
      std::string payload;
      MakeRecord(lsn).EncodeTo(&payload);
      DISAGG_CHECK(raft.Append(&ctx, std::move(payload)).ok());
    }
  }
  bench::ReportSim(state, ctx, kWrites);
}

BENCHMARK(BM_E2_AuroraQuorum_6of3AZ)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2_AuroraQuorum_UnderAzFailure)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2_PolarFsRaft_3way)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E2_PolarFsRaft_FollowerDown)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
