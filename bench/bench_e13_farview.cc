// Experiment E13 (DESIGN.md): Farview's pipelined operator stack on the
// memory side (Sec. 3.2). The offloaded fragment is a full pipeline
// (scan -> filter -> project / aggregate); Farview's FPGA streams it at
// line rate, modeled as a pool "CPU" with cpu_scale 0.5 (faster than a
// general-purpose core at these streaming ops). Compare:
//  - client-side execution (fetch everything);
//  - pushdown to a wimpy-CPU pool (TELEPORT-on-CPU);
//  - pushdown to the FPGA-speed pool (Farview).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "query/pushdown.h"
#include "workload/tpch_lite.h"

namespace disagg {
namespace {

constexpr size_t kRows = 20000;

ops::Fragment Pipeline() {
  ops::Fragment frag;
  frag.predicate.And(4, CmpOp::kLt, int64_t{1000});  // ~40% of rows
  frag.group_cols = {5};                             // returnflag
  frag.aggs = {{AggFunc::kSum, 2}, {AggFunc::kCount, 0}};
  return frag;
}

void BM_E13_ClientSide(benchmark::State& state) {
  Fabric fabric;
  MemoryNode pool(&fabric, "mem0", 512 << 20);
  NetContext setup;
  auto table = RemoteTable::Create(&setup, &fabric, &pool,
                                   tpch::LineitemSchema(),
                                   tpch::GenLineitem(kRows));
  DISAGG_CHECK(table.ok());
  NetContext ctx;
  for (auto _ : state) {
    auto rows = table->FetchAll(&ctx);
    DISAGG_CHECK(rows.ok());
    benchmark::DoNotOptimize(Pipeline().Execute(&ctx, *rows));
  }
  state.counters["query_sim_ms"] = static_cast<double>(ctx.sim_ns) / 1e6;
  state.counters["bytes_moved"] = static_cast<double>(ctx.bytes_in);
}

void RunOffload(benchmark::State& state, double pool_cpu_scale,
                const char* label) {
  Fabric fabric;
  MemoryNode pool(&fabric, "mem0", 512 << 20);
  fabric.node(pool.node())->set_cpu_scale(pool_cpu_scale);
  NetContext setup;
  auto table = RemoteTable::Create(&setup, &fabric, &pool,
                                   tpch::LineitemSchema(),
                                   tpch::GenLineitem(kRows));
  DISAGG_CHECK(table.ok());
  NetContext ctx;
  for (auto _ : state) {
    auto rows = table->Pushdown(&ctx, Pipeline());
    DISAGG_CHECK(rows.ok());
  }
  state.counters["query_sim_ms"] = static_cast<double>(ctx.sim_ns) / 1e6;
  state.counters["bytes_moved"] = static_cast<double>(ctx.bytes_in);
  state.SetLabel(label);
}

void BM_E13_PushdownWimpyCpu(benchmark::State& state) {
  RunOffload(state, 1.5, "pool-cpu(TELEPORT)");
}

void BM_E13_PushdownFpga(benchmark::State& state) {
  RunOffload(state, 0.5, "fpga-stack(Farview)");
}

BENCHMARK(BM_E13_ClientSide)->Iterations(1);
BENCHMARK(BM_E13_PushdownWimpyCpu)->Iterations(1);
BENCHMARK(BM_E13_PushdownFpga)->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
