// Experiment E29 (DESIGN.md): self-healing fleet under kill, gray failure,
// one-way partition, and pure overload.
//
// A four-node memory fleet serves a closed-loop read workload while the
// membership service (src/net/membership.h) heartbeats every node through
// the same fabric op pipeline the workload uses. The failure schedule:
//  - node 0 is KILLED mid-run (hard crash: every verb Unavailable);
//  - node 1 turns GRAY (slowdown window: correct answers at 8x the cost —
//    no hard failure signal at all);
//  - node 2 loses exactly its heartbeat path (one-way partition scoped to
//    member.ping: data traffic flows, probes vanish);
//  - node 3 answers probes with Busy for a window (pure overload: an ALIVE
//    signal that must never be read as death).
// Three recovery arms run the identical schedule:
//  - self-heal: the detector revokes the failed node's lease and the
//    orchestrator repairs it (revive + rejoin probation) unattended;
//  - scripted: detection and fencing run, but recovery is a hand-scripted
//    revive at a fixed delay (the pre-E29 chaos style);
//  - none: the node stays dead (availability floor).
// Reported per arm: detection latency, MTTR (revoke -> rejoin), and
// availability (completed / issued ops). The detector's event log is the
// decision trace; it must be bit-identical across worker thread counts and
// between the serial and partitioned drivers.
//
// With DISAGG_E29_ASSERT=1 (the CI smoke stage) the bench self-checks:
// the self-heal arm completes >= 99% of ops and every failed node is
// revoked, repaired, and rejoined (MTTR measured); the overloaded node is
// NEVER revoked (Busy is an alive signal); the no-recovery arm's
// availability sits strictly below self-heal's; and the self-heal run —
// detector decisions included — replays bit for bit at 1/2/8 threads and
// serial vs partitions=1.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "net/interceptors.h"
#include "net/membership.h"
#include "sim/load_driver.h"

namespace disagg {
namespace {

bool AssertFromEnv() {
  const char* env = std::getenv("DISAGG_E29_ASSERT");
  return env != nullptr && env[0] == '1';
}

// Virtual-time failure schedule (all instants are epoch-barrier aligned).
constexpr uint64_t kEpochNs = 20'000;
constexpr uint64_t kKillAtNs = 100'000;
constexpr uint64_t kGrayFromNs = 400'000;
constexpr uint64_t kGrayUntilNs = 520'000;
constexpr uint64_t kCutFromNs = 700'000;
constexpr uint64_t kCutUntilNs = 820'000;
constexpr uint64_t kBusyFromNs = 1'000'000;
constexpr uint64_t kBusyUntilNs = 1'200'000;
constexpr uint64_t kScriptedReviveNs = kKillAtNs + 200'000;

enum class Arm { kSelfHeal, kScripted, kNone };

// Returns Busy for member.ping toward one node inside a virtual-time
// window: admission-control pressure on the probe path, nothing else.
class BusyWallInterceptor : public FabricInterceptor {
 public:
  BusyWallInterceptor(NodeId node, uint64_t from_ns, uint64_t until_ns)
      : node_(node), from_ns_(from_ns), until_ns_(until_ns) {}
  const char* name() const override { return "busywall"; }
  Status Intercept(Fabric*, FabricOp* op, NetContext* ctx,
                   const FabricOpInvoker& next) override {
    if (op->node == node_ && op->verb == FabricVerb::kRpc &&
        op->method != nullptr && *op->method == membership::kPingMethod &&
        ctx->sim_ns >= from_ns_ && ctx->sim_ns < until_ns_) {
      return Status::Busy("probe admission rejected (overload window)");
    }
    return next(op, ctx);
  }

 private:
  const NodeId node_;
  const uint64_t from_ns_;
  const uint64_t until_ns_;
};

struct ArmResult {
  std::vector<MembershipService::Event> events;
  std::vector<sim::LoadReport::OpTrace> trace;
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t makespan_ns = 0;
  MembershipService::Stats member_stats;
  std::vector<NodeId> nodes;
  std::vector<MembershipService::NodeHealth> final_health;
  uint64_t detect_ns = 0;  ///< kill -> revoke, killed node
  uint64_t mttr_ns = 0;    ///< revoke -> rejoin, killed node
  double Availability() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(ops - errors) /
                          static_cast<double>(ops);
  }
};

ArmResult RunArm(Arm arm, uint32_t partitions, uint32_t threads) {
  Fabric fabric;
  std::vector<NodeId> nodes;
  std::vector<MemoryRegion*> regions;
  for (int i = 0; i < 4; i++) {
    nodes.push_back(fabric.AddNode("mem" + std::to_string(i),
                                   NodeKind::kMemory,
                                   InterconnectModel::Rdma()));
    regions.push_back(fabric.node(nodes.back())->AddRegion("heap", 1 << 20));
  }

  // Retries wrap everything: ops ride out outages on backoff instead of
  // failing at first contact. Probes carry a one-period deadline, so the
  // retry loop can never stall a heartbeat past its barrier budget. The
  // backoff cap matters for more than realism: a client stuck in a
  // multi-millisecond exponential-backoff storm against the dead node
  // would leap its virtual clock clean over the gray/partition windows,
  // and with every client catapulted forward the driver (correctly)
  // skips the empty epochs — the detector would sleep through the very
  // faults it exists to catch. Bounded backoff keeps the fleet's clocks
  // dense, so every 20 us barrier actually fires.
  RetryPolicy rp;
  rp.max_attempts = 6;
  rp.initial_backoff_ns = 2'000;
  rp.backoff_multiplier = 2.0;
  rp.max_backoff_ns = 8'000;
  rp.retry_unavailable = true;
  fabric.AddInterceptor(std::make_shared<RetryInterceptor>(rp));
  fabric.AddInterceptor(std::make_shared<BusyWallInterceptor>(
      nodes[3], kBusyFromNs, kBusyUntilNs));
  FaultPolicy fp;
  FaultPolicy::Slowdown sd;
  sd.node = nodes[1];
  sd.from_ns = kGrayFromNs;
  sd.until_ns = kGrayUntilNs;
  sd.factor = 8.0;
  fp.slowdowns.push_back(sd);
  FaultPolicy::OneWay ow;
  ow.node = nodes[2];
  ow.from_ns = kCutFromNs;
  ow.until_ns = kCutUntilNs;
  ow.method = membership::kPingMethod;
  fp.oneways.push_back(ow);
  fabric.AddInterceptor(std::make_shared<FaultInterceptor>(fp));

  MembershipOptions mo;
  mo.heartbeat_period_ns = kEpochNs;
  mo.suspicion_threshold = 2.0;
  mo.repair_delay_ns = 60'000;
  mo.rejoin_probes = 2;
  mo.auto_recover = arm == Arm::kSelfHeal;
  MembershipService member(&fabric, mo);
  for (NodeId n : nodes) member.Monitor(n);

  // The kill and the arm's recovery action, all barrier-scheduled.
  member.At(kKillAtNs, [&fabric, &nodes] { fabric.node(nodes[0])->Fail(); });
  if (arm == Arm::kSelfHeal) {
    member.OnRepair(nodes[0],
                    [&fabric, &nodes] { fabric.node(nodes[0])->Revive(); });
  } else if (arm == Arm::kScripted) {
    member.At(kScriptedReviveNs,
              [&fabric, &nodes] { fabric.node(nodes[0])->Revive(); });
  }

  sim::LoadOptions opts;
  opts.clients = 8;
  opts.ops_per_client = 2'000;
  opts.think_ns = 1'000;
  opts.seed = 42;
  opts.parallel.partitions = partitions;
  opts.parallel.threads = threads;
  opts.parallel.epoch_ns = kEpochNs;
  opts.parallel.record_trace = true;
  opts.parallel.membership = &member;
  auto report = sim::RunClosedLoop(
      opts, [&fabric, &nodes, &regions](uint64_t, uint64_t, NetContext* ctx,
                                        Random* rng) {
        char buf[64];
        const uint64_t pick = rng->Uniform(nodes.size());
        GlobalAddr addr{nodes[pick], regions[pick]->id(),
                        rng->Uniform(1024) * 64};
        return fabric.Read(ctx, addr, buf, 64);
      });

  ArmResult r;
  r.events = member.events();
  r.trace = std::move(report.trace);
  r.ops = report.ops;
  r.errors = report.errors;
  r.makespan_ns = report.makespan_ns;
  r.member_stats = member.stats();
  r.nodes = nodes;
  for (NodeId n : nodes) r.final_health.push_back(member.HealthFor(n));
  uint64_t revoked_at = 0;
  for (const auto& e : r.events) {
    if (e.node != nodes[0]) continue;
    using Kind = MembershipService::Event::Kind;
    if (e.kind == Kind::kRevoke && revoked_at == 0) {
      revoked_at = e.at_ns;
      r.detect_ns = e.at_ns - kKillAtNs;
    } else if (e.kind == Kind::kRejoin && revoked_at != 0 &&
               r.mttr_ns == 0) {
      r.mttr_ns = e.at_ns - revoked_at;
    }
  }
  return r;
}

bool NodeWasRevoked(const ArmResult& r, size_t node_idx) {
  for (const auto& e : r.events) {
    if (e.kind == MembershipService::Event::Kind::kRevoke &&
        e.node == r.nodes[node_idx]) {
      return true;
    }
  }
  return false;
}

void BM_E29_SelfHealing(benchmark::State& state) {
  ArmResult r;
  for (auto _ : state) {
    r = RunArm(Arm::kSelfHeal, 0, 1);
  }
  state.counters["availability"] = r.Availability();
  state.counters["detect_us"] = static_cast<double>(r.detect_ns) / 1e3;
  state.counters["mttr_us"] = static_cast<double>(r.mttr_ns) / 1e3;
  state.counters["revocations"] =
      static_cast<double>(r.member_stats.revocations);
  state.counters["repairs"] = static_cast<double>(r.member_stats.repairs);
  state.counters["rejoins"] = static_cast<double>(r.member_stats.rejoins);
  state.counters["gray_acks"] = static_cast<double>(r.member_stats.gray_acks);
  state.counters["busy_acks"] = static_cast<double>(r.member_stats.busy_acks);

  if (std::getenv("DISAGG_E29_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "makespan=%llu hb=%llu miss=%llu gray=%llu busy=%llu\n",
                 static_cast<unsigned long long>(r.makespan_ns),
                 static_cast<unsigned long long>(r.member_stats.heartbeats),
                 static_cast<unsigned long long>(r.member_stats.misses),
                 static_cast<unsigned long long>(r.member_stats.gray_acks),
                 static_cast<unsigned long long>(r.member_stats.busy_acks));
    for (const auto& e : r.events) {
      std::fprintf(stderr, "  at=%llu node=%llu kind=%d epoch=%llu\n",
                   static_cast<unsigned long long>(e.at_ns),
                   static_cast<unsigned long long>(e.node),
                   static_cast<int>(e.kind),
                   static_cast<unsigned long long>(e.lease_epoch));
    }
  }

  if (AssertFromEnv()) {
    // >= 99% of ops complete across the kill + gray + partition schedule.
    DISAGG_CHECK(r.Availability() >= 0.99);
    // The kill was detected and healed unattended: revoke -> repair ->
    // rejoin all present, MTTR measured, node back up at the end.
    DISAGG_CHECK(r.detect_ns > 0);
    DISAGG_CHECK(r.mttr_ns > 0);
    DISAGG_CHECK(r.member_stats.repairs >= 1);
    // Every node that lost its lease was re-admitted: nothing ends the run
    // revoked or stuck in probation.
    for (auto h : r.final_health) {
      DISAGG_CHECK(h == MembershipService::NodeHealth::kUp);
    }
    DISAGG_CHECK(r.member_stats.rejoins == r.member_stats.revocations);
    // The gray node and the partitioned node were each caught without a
    // single hard failure signal from the node itself.
    DISAGG_CHECK(r.member_stats.gray_acks > 0);
    DISAGG_CHECK(NodeWasRevoked(r, 1));
    DISAGG_CHECK(NodeWasRevoked(r, 2));
    // Pure overload is an alive signal: the Busy-walled node keeps its
    // lease through the whole window.
    DISAGG_CHECK(r.member_stats.busy_acks > 0);
    DISAGG_CHECK(!NodeWasRevoked(r, 3));
  }
}

void BM_E29_RecoveryComparison(benchmark::State& state) {
  ArmResult heal, scripted, none;
  for (auto _ : state) {
    heal = RunArm(Arm::kSelfHeal, 0, 1);
    scripted = RunArm(Arm::kScripted, 0, 1);
    none = RunArm(Arm::kNone, 0, 1);
  }
  state.counters["selfheal_avail"] = heal.Availability();
  state.counters["scripted_avail"] = scripted.Availability();
  state.counters["none_avail"] = none.Availability();
  state.counters["selfheal_mttr_us"] = static_cast<double>(heal.mttr_ns) / 1e3;
  state.counters["scripted_mttr_us"] =
      static_cast<double>(scripted.mttr_ns) / 1e3;

  if (AssertFromEnv()) {
    // Detection + fencing fire in every arm (the lease is the fence); only
    // the repair differs. Leaving the node dead costs real availability.
    DISAGG_CHECK(none.detect_ns > 0);
    DISAGG_CHECK(scripted.detect_ns > 0);
    DISAGG_CHECK(none.Availability() < heal.Availability());
    DISAGG_CHECK(heal.Availability() >= 0.99);
    // The scripted revive also re-admits through probation — same rejoin
    // machinery, hand-timed repair.
    DISAGG_CHECK(scripted.mttr_ns > 0);
  }
}

void BM_E29_DecisionDeterminism(benchmark::State& state) {
  // The acceptance contract: detector decisions (the event log), the op
  // trace, and the error count are a pure function of (seed, partitions,
  // epoch_ns) — identical at 1/2/8 worker threads, and the serial driver
  // reproduces partitions=1 bit for bit.
  bool ok = true;
  for (auto _ : state) {
    const ArmResult t1 = RunArm(Arm::kSelfHeal, 4, 1);
    const ArmResult t2 = RunArm(Arm::kSelfHeal, 4, 2);
    const ArmResult t8 = RunArm(Arm::kSelfHeal, 4, 8);
    const ArmResult serial = RunArm(Arm::kSelfHeal, 0, 1);
    const ArmResult p1 = RunArm(Arm::kSelfHeal, 1, 1);
    ok = t1.events == t2.events && t1.events == t8.events &&
         t1.trace == t2.trace && t1.trace == t8.trace &&
         t1.errors == t2.errors && t1.errors == t8.errors &&
         t1.makespan_ns == t2.makespan_ns &&
         t1.makespan_ns == t8.makespan_ns &&
         serial.events == p1.events && serial.trace == p1.trace &&
         serial.errors == p1.errors &&
         serial.makespan_ns == p1.makespan_ns && !t1.events.empty();
    DISAGG_CHECK(ok);  // determinism is load-bearing: always enforced
  }
  state.counters["bit_identical"] = ok ? 1.0 : 0.0;
}

BENCHMARK(BM_E29_SelfHealing)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E29_RecoveryComparison)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E29_DecisionDeterminism)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
