// Experiment E12 (DESIGN.md): TELEPORT-style compute pushdown (Sec. 3.2).
// Selection over a remote-memory-resident table, selectivity sweep
// 0.1% .. 100%:
//  - fetch-all + local filter pays the full table transfer regardless of
//    selectivity;
//  - pushdown pays one RPC plus pool-side CPU and transfers only matches.
// Expected crossover: pushdown dominates at low selectivity; at ~100%
// selectivity the result transfer equals the table and the (slower) pool
// CPU makes pushdown lose — the regime TELEPORT's synchronization-on-demand
// policy is designed around.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "query/pushdown.h"
#include "workload/tpch_lite.h"

namespace disagg {
namespace {

constexpr size_t kRows = 20000;

ops::Fragment SelectivityFragment(int permille) {
  // quantity is uniform in [1, 50]: quantity <= k keeps ~k/50 of rows.
  ops::Fragment frag;
  const int64_t cutoff = std::max<int64_t>(1, 50 * permille / 1000);
  frag.predicate.And(1, CmpOp::kLe, cutoff);
  return frag;
}

void BM_E12_FetchAllThenFilter(benchmark::State& state) {
  Fabric fabric;
  MemoryNode pool(&fabric, "mem0", 512 << 20);
  NetContext setup;
  auto table = RemoteTable::Create(&setup, &fabric, &pool,
                                   tpch::LineitemSchema(),
                                   tpch::GenLineitem(kRows));
  DISAGG_CHECK(table.ok());
  const auto frag = SelectivityFragment(static_cast<int>(state.range(0)));
  NetContext ctx;
  size_t matches = 0;
  for (auto _ : state) {
    auto rows = table->FetchAll(&ctx);
    DISAGG_CHECK(rows.ok());
    matches = frag.Execute(&ctx, *rows).size();
  }
  state.counters["query_sim_ms"] = static_cast<double>(ctx.sim_ns) / 1e6;
  state.counters["bytes_moved"] = static_cast<double>(ctx.bytes_in);
  state.counters["matches"] = static_cast<double>(matches);
}

void BM_E12_Pushdown(benchmark::State& state) {
  Fabric fabric;
  MemoryNode pool(&fabric, "mem0", 512 << 20);
  NetContext setup;
  auto table = RemoteTable::Create(&setup, &fabric, &pool,
                                   tpch::LineitemSchema(),
                                   tpch::GenLineitem(kRows));
  DISAGG_CHECK(table.ok());
  const auto frag = SelectivityFragment(static_cast<int>(state.range(0)));
  NetContext ctx;
  size_t matches = 0;
  for (auto _ : state) {
    auto rows = table->Pushdown(&ctx, frag);
    DISAGG_CHECK(rows.ok());
    matches = rows->size();
  }
  state.counters["query_sim_ms"] = static_cast<double>(ctx.sim_ns) / 1e6;
  state.counters["bytes_moved"] = static_cast<double>(ctx.bytes_in);
  state.counters["matches"] = static_cast<double>(matches);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int permille : {1, 10, 100, 300, 1000}) b->Arg(permille);
  b->Iterations(1);
}

BENCHMARK(BM_E12_FetchAllThenFilter)->Apply(Sweep);
BENCHMARK(BM_E12_Pushdown)->Apply(Sweep);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
