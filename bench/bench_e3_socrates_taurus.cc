// Experiment E3 (DESIGN.md): Socrates' tier separation vs Taurus'
// per-kind replication (Sec. 2.1).
//  - Socrates: commit touches only the XLOG tier; page servers are fed
//    asynchronously (PropagateLogs), so adding page servers does not slow
//    the commit path.
//  - Taurus: the writer replicates the log to 3 log stores but sends redo
//    to ONE page store; gossip rounds converge the rest. The bench sweeps
//    page-store count and reports commit latency (flat for both) plus the
//    gossip rounds Taurus needs to converge (grows with store count).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "core/engines.h"
#include "workload/tpcc_lite.h"

namespace disagg {
namespace {

constexpr int kTxns = 100;

void BM_E3_Socrates_PageServerSweep(benchmark::State& state) {
  const int page_servers = static_cast<int>(state.range(0));
  Fabric fabric;
  SocratesDb db(&fabric, page_servers);
  TpccLite tpcc(&db, {});
  NetContext load;
  DISAGG_CHECK_OK(tpcc.Load(&load));
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kTxns; i++) {
      DISAGG_CHECK(tpcc.NewOrder(&ctx).ok());
    }
  }
  // Dissemination runs off the commit path; measure it separately.
  NetContext propagate;
  DISAGG_CHECK_OK(db.PropagateLogs(&propagate));
  bench::ReportSim(state, ctx, kTxns);
  state.counters["propagate_us"] =
      static_cast<double>(propagate.sim_ns) / 1e3;
}

void BM_E3_Taurus_PageStoreSweep(benchmark::State& state) {
  const int page_stores = static_cast<int>(state.range(0));
  Fabric fabric;
  TaurusDb db(&fabric, 3, page_stores);
  TpccLite tpcc(&db, {});
  NetContext load;
  DISAGG_CHECK_OK(tpcc.Load(&load));
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kTxns; i++) {
      DISAGG_CHECK(tpcc.NewOrder(&ctx).ok());
    }
  }
  NetContext gossip;
  size_t rounds = 0;
  for (; rounds < 64 && !db.PageStoresConverged(); rounds++) {
    db.RunGossipRound(&gossip);
  }
  bench::ReportSim(state, ctx, kTxns);
  state.counters["gossip_rounds_to_converge"] = static_cast<double>(rounds);
  state.counters["gossip_us"] = static_cast<double>(gossip.sim_ns) / 1e3;
}

BENCHMARK(BM_E3_Socrates_PageServerSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E3_Taurus_PageStoreSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
