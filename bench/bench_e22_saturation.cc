// Experiment E22 (DESIGN.md): shared-resource saturation.
//
// Every earlier experiment measures one client against an idle fabric; here
// N closed-loop clients contend for a memory node's NIC budget through the
// congestion layer (src/net/congestion.h) driven by sim::RunClosedLoop.
//  - Throughput vs clients: near-linear growth below the knee
//    (knee ~ one-client latency / per-op service time), then a plateau
//    pinned at the configured capacity.
//  - Tail vs offered load: past the knee, p99 is queueing-dominated and
//    grows linearly with the client count while p50 of the *uncontended*
//    run stays flat — the classic closed-loop hockey stick.
//  - Tiers: the same 4 KiB page read saturates local DRAM, CXL, and RDMA at
//    very different client counts because the knee depends on the ratio of
//    round-trip latency to service time, not on either alone.
//
// With DISAGG_E22_ASSERT=1 the bench self-checks the saturation shape (used
// as a CI smoke stage): at >= 64 clients the measured throughput must land
// within [0.8x, 1.001x] of the capacity bound min(N x single-client tput,
// configured capacity), and the saturated p99 must be >= 10x the
// uncontended p99.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "memnode/memory_node.h"
#include "sim/engine_registry.h"
#include "sim/load_driver.h"

namespace disagg {
namespace {

bool AssertFromEnv() {
  const char* env = std::getenv("DISAGG_E22_ASSERT");
  return env != nullptr && env[0] == '1';
}

constexpr uint64_t kPage = 4096;
constexpr uint64_t kPoolPages = 4096;  // 16 MiB pool

/// One tier's saturation point: `clients` closed-loop clients issuing 4 KiB
/// page reads against a pool whose NIC has a 100 ns per-message issue
/// budget and the tier's own bandwidth (MemoryNode::ServiceCapacity).
void BM_E22_PageReadSaturation(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  const uint64_t clients = static_cast<uint64_t>(state.range(1));
  const InterconnectModel model =
      tier == 0 ? InterconnectModel::LocalDram()
                : (tier == 1 ? InterconnectModel::Cxl()
                             : InterconnectModel::Rdma());

  Fabric fabric;
  MemoryNode pool(&fabric, "pool", kPoolPages * kPage * 2, model);
  const ResourceCapacity cap = pool.ServiceCapacity(/*ns_per_op=*/100);
  CongestionConfig cfg;
  cfg.node_caps[pool.node()] = cap;
  fabric.EnableCongestion(cfg);

  sim::LoadOptions opts;
  opts.clients = clients;
  opts.ops_per_client = 256;
  sim::LoadReport report;
  for (auto _ : state) {
    fabric.congestion()->Reset();
    report = sim::RunClosedLoop(
        opts, [&](uint64_t, uint64_t, NetContext* ctx, Random* rng) {
          char buf[kPage];
          return fabric.Read(ctx, pool.at(rng->Uniform(kPoolPages) * kPage),
                             buf, kPage);
        });
    DISAGG_CHECK(report.errors == 0);
  }

  const double capacity = cap.OpsPerSec(kPage);
  const double single = 1e9 / static_cast<double>(model.ReadCost(kPage));
  const double bound = std::min(static_cast<double>(clients) * single,
                                capacity);
  state.counters["tput_kops"] = report.ThroughputOpsPerSec() / 1e3;
  state.counters["p50_us"] = report.latency.Percentile(50) / 1e3;
  state.counters["p99_us"] = report.latency.Percentile(99) / 1e3;
  state.counters["queue_us_per_op"] =
      static_cast<double>(report.total.queue_ns) / 1e3 /
      static_cast<double>(report.ops);
  state.counters["capacity_frac"] = report.ThroughputOpsPerSec() / capacity;
  state.SetLabel(model.name);

  if (AssertFromEnv() && clients >= 64) {
    // Saturation shape: plateau at the capacity bound, queueing tail.
    DISAGG_CHECK(report.ThroughputOpsPerSec() >= 0.8 * bound);
    DISAGG_CHECK(report.ThroughputOpsPerSec() <= 1.001 * bound);
    fabric.congestion()->Reset();  // drain the backlog before the baseline
    sim::LoadOptions one;
    one.clients = 1;
    one.ops_per_client = 256;
    auto solo = sim::RunClosedLoop(
        one, [&](uint64_t, uint64_t, NetContext* ctx, Random* rng) {
          char buf[kPage];
          return fabric.Read(ctx, pool.at(rng->Uniform(kPoolPages) * kPage),
                             buf, kPage);
        });
    DISAGG_CHECK(report.latency.Percentile(99) >=
                 10.0 * solo.latency.Percentile(99));
  }
}
BENCHMARK(BM_E22_PageReadSaturation)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4, 8, 16, 32, 64, 128}})
    ->ArgNames({"tier", "clients"})
    ->Iterations(1);

/// The open-loop counterpart: closed-loop clients self-throttle at the knee
/// (offered load = achieved load by construction), so the plateau above can
/// never show offered load *exceeding* capacity. Here 16 Poisson (or
/// phase-staggered deterministic) arrival streams offer a fixed fraction of
/// the pool NIC's capacity regardless of completions. Below the knee
/// achieved == offered; past it achieved pins at capacity while the
/// in-flight count and the response-time tail grow without bound for as
/// long as the run lasts — the unbounded-queue regime of an M/D/1-ish
/// server pushed past rho = 1.
void BM_E22_OpenLoopSweep(benchmark::State& state) {
  const uint64_t offered_pct = static_cast<uint64_t>(state.range(0));
  const bool poisson = state.range(1) == 0;
  constexpr uint64_t kClients = 16;

  Fabric fabric;
  MemoryNode pool(&fabric, "pool", kPoolPages * kPage * 2,
                  InterconnectModel::Rdma());
  const ResourceCapacity cap = pool.ServiceCapacity(/*ns_per_op=*/100);
  CongestionConfig cfg;
  cfg.node_caps[pool.node()] = cap;
  fabric.EnableCongestion(cfg);
  const double capacity = cap.OpsPerSec(kPage);

  auto run = [&](uint64_t pct) {
    fabric.congestion()->Reset();
    sim::OpenLoopOptions opts;
    opts.clients = kClients;
    // Long streams: achieved throughput is ops / (slowest stream's span), so
    // short Poisson streams under-report it by O(1/sqrt(ops)) purely from
    // arrival-end raggedness across clients.
    opts.ops_per_client = 2048;
    opts.ops_per_sec = capacity * static_cast<double>(pct) / 100.0 /
                       static_cast<double>(kClients);
    opts.process = poisson ? sim::ArrivalProcess::kPoisson
                           : sim::ArrivalProcess::kDeterministic;
    return sim::RunOpenLoop(
        opts, [&](uint64_t, uint64_t, NetContext* ctx, Random* rng) {
          char buf[kPage];
          return fabric.Read(ctx, pool.at(rng->Uniform(kPoolPages) * kPage),
                             buf, kPage);
        });
  };

  sim::LoadReport report;
  for (auto _ : state) {
    report = run(offered_pct);
    DISAGG_CHECK(report.errors == 0);
  }

  state.counters["offered_kops"] = report.offered_ops_per_sec / 1e3;
  state.counters["tput_kops"] = report.ThroughputOpsPerSec() / 1e3;
  state.counters["p50_us"] = report.latency.Percentile(50) / 1e3;
  state.counters["p99_us"] = report.latency.Percentile(99) / 1e3;
  state.counters["mean_depth"] = report.queue_depth.Mean();
  state.counters["max_inflight"] = static_cast<double>(report.max_in_flight);
  state.counters["capacity_frac"] = report.ThroughputOpsPerSec() / capacity;
  state.SetLabel(poisson ? "poisson" : "deterministic");

  if (AssertFromEnv() && offered_pct >= 140 && poisson) {
    // Open-loop saturation shape: achieved throughput plateaus at capacity
    // while offered load keeps rising, and both the backlog and the
    // response-time tail blow up relative to a below-knee run.
    fabric.congestion()->Reset();
    const auto below = run(50);
    DISAGG_CHECK(report.ThroughputOpsPerSec() >= 0.9 * capacity);
    DISAGG_CHECK(report.ThroughputOpsPerSec() <= 1.001 * capacity);
    DISAGG_CHECK(report.offered_ops_per_sec >= 1.3 * capacity);
    DISAGG_CHECK(below.ThroughputOpsPerSec() >=
                 0.90 * below.offered_ops_per_sec);
    DISAGG_CHECK(report.max_in_flight >= 10 * below.max_in_flight);
    DISAGG_CHECK(report.latency.Percentile(99) >=
                 10.0 * below.latency.Percentile(99));
  }
}
BENCHMARK(BM_E22_OpenLoopSweep)
    ->ArgsProduct({{50, 80, 95, 105, 140}, {0, 1}})
    ->ArgNames({"offered_pct", "proc"})
    ->Iterations(1);

bool ParallelAssertFromEnv() {
  const char* env = std::getenv("DISAGG_E22_PARALLEL_ASSERT");
  return env != nullptr && env[0] == '1';
}

/// E26 (EXPERIMENTS.md): the epoch-parallel driver at open-loop scales the
/// serial driver cannot reach interactively — 10^4 and 10^5 Poisson streams
/// against one congested pool NIC. `threads` is the wall-clock axis; by the
/// determinism contract it never changes a result bit, so the counters of
/// every row at the same client count and partition count are identical and
/// only the benchmark's real time moves.
///
/// With DISAGG_E22_PARALLEL_ASSERT=1 the clients=100000/threads=8 row
/// becomes the CI smoke stage for the contract at scale: it re-runs the
/// sweep at threads {1, 2, 8} asserting bit-identical counters and traces,
/// re-runs partitions=1 against the legacy serial driver asserting the
/// bit-exact match, and enforces a wall-clock budget on the sweep itself.
void BM_E22_ParallelOpenLoopSweep(benchmark::State& state) {
  const uint64_t clients = static_cast<uint64_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  constexpr uint32_t kPartitions = 64;
  constexpr uint64_t kOpsPerClient = 8;

  // A rack of four pool nodes, clients striped across them (the
  // disaggregated-memory shape: many NICs, one oversubscribed fabric).
  // Multiple target nodes also matter mechanically: a node's region lookup
  // takes that node's lock, so a single-node sweep would serialize the
  // worker threads on one mutex no matter how parallel the simulation is.
  constexpr uint64_t kPools = 4;
  Fabric fabric;
  std::vector<std::unique_ptr<MemoryNode>> pools;
  CongestionConfig cfg;
  ResourceCapacity cap;
  for (uint64_t i = 0; i < kPools; i++) {
    pools.push_back(std::make_unique<MemoryNode>(
        &fabric, "pool" + std::to_string(i), kPoolPages * kPage * 2,
        InterconnectModel::Rdma()));
    cap = pools.back()->ServiceCapacity(/*ns_per_op=*/100);
    cfg.node_caps[pools.back()->node()] = cap;
  }
  fabric.EnableCongestion(cfg);
  const double capacity =
      static_cast<double>(kPools) * cap.OpsPerSec(kPage);

  auto run = [&](uint32_t partitions, uint32_t thread_count, bool trace) {
    fabric.congestion()->Reset();
    sim::OpenLoopOptions opts;
    opts.clients = clients;
    opts.ops_per_client = kOpsPerClient;
    // Aggregate ~100% of capacity: the interesting regime (real queueing)
    // without the unbounded backlog of a deep past-knee run.
    opts.ops_per_sec = capacity / static_cast<double>(clients);
    opts.parallel.partitions = partitions;
    opts.parallel.threads = thread_count;
    // Wide epochs (2 ms of virtual time vs the 100 us default): this sweep
    // runs ~3 s of virtual time, and at the default width the barrier count
    // — not the op work — dominates wall-clock. Epoch width is part of the
    // deterministic function, so every row still agrees bit for bit.
    opts.parallel.epoch_ns = 2'000'000;
    opts.parallel.record_trace = trace;
    return sim::RunOpenLoop(
        opts, [&](uint64_t client, uint64_t, NetContext* ctx, Random* rng) {
          char buf[kPage];
          MemoryNode& pool = *pools[client % kPools];
          return fabric.Read(ctx, pool.at(rng->Uniform(kPoolPages) * kPage),
                             buf, kPage);
        });
  };

  sim::LoadReport report;
  for (auto _ : state) {
    report = run(kPartitions, threads, /*trace=*/false);
    DISAGG_CHECK(report.ops == clients * kOpsPerClient);
  }

  state.counters["tput_kops"] = report.ThroughputOpsPerSec() / 1e3;
  state.counters["p99_us"] = report.latency.Percentile(99) / 1e3;
  state.counters["mean_depth"] = report.queue_depth.Mean();
  state.counters["epochs"] = static_cast<double>(report.epochs);
  state.counters["sim_ops"] = static_cast<double>(report.ops);

  if (ParallelAssertFromEnv() && clients >= 100'000 && threads == 8) {
    const auto start = std::chrono::steady_clock::now();
    auto elapsed_ms = [](std::chrono::steady_clock::time_point since) {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - since)
          .count();
    };
    // (a) Thread-invariance at scale: counters AND traces, bit for bit.
    // Each leg's wall-clock is exported so the serial-vs-parallel cost of
    // the SAME trace is a measured counter (E26), not a side claim.
    auto leg = std::chrono::steady_clock::now();
    const auto t1 = run(kPartitions, 1, true);
    state.counters["par_t1_ms"] = elapsed_ms(leg);
    const auto t2 = run(kPartitions, 2, true);
    leg = std::chrono::steady_clock::now();
    const auto t8 = run(kPartitions, 8, true);
    state.counters["par_t8_ms"] = elapsed_ms(leg);
    DISAGG_CHECK(t1.trace == t2.trace);
    DISAGG_CHECK(t1.trace == t8.trace);
    DISAGG_CHECK(t1.makespan_ns == t8.makespan_ns);
    DISAGG_CHECK(t1.errors == t8.errors);
    DISAGG_CHECK(t1.total.queue_ns == t8.total.queue_ns);
    DISAGG_CHECK(t1.total.bytes_in == t8.total.bytes_in);
    DISAGG_CHECK(t1.latency.Percentile(99) == t8.latency.Percentile(99));
    // (b) partitions=1 reproduces the legacy serial driver bit for bit.
    leg = std::chrono::steady_clock::now();
    const auto serial = run(0, 1, true);
    state.counters["serial_ms"] = elapsed_ms(leg);
    const auto p1 = run(1, 8, true);
    DISAGG_CHECK(serial.trace == p1.trace);
    DISAGG_CHECK(serial.makespan_ns == p1.makespan_ns);
    DISAGG_CHECK(serial.total.queue_ns == p1.total.queue_ns);
    // (c) Budget: the whole 5-run assert block (3 sweeps + 2 serial-shape
    // runs over 10^5 clients) stays CI-viable.
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    DISAGG_CHECK(secs < 30.0);
  }
}
BENCHMARK(BM_E22_ParallelOpenLoopSweep)
    ->ArgsProduct({{10'000, 100'000}, {1, 2, 8}})
    ->ArgNames({"clients", "threads"})
    ->Iterations(1)
    ->UseRealTime();

/// A full engine under contention: N clients run a 95/5 read/update zipfian
/// mix against one Aurora-style engine whose fabric nodes all share a
/// uniform per-node capacity. Shows that the engine's *commit fan-out*
/// (quorum appends) hits the knee before raw page reads do — every commit
/// occupies several resources.
void BM_E22_EngineSaturation(benchmark::State& state) {
  const uint64_t clients = static_cast<uint64_t>(state.range(0));
  constexpr uint64_t kKeys = 2000;

  Fabric fabric;
  auto engine = sim::MakeRowEngine("aurora", &fabric);
  DISAGG_CHECK(engine != nullptr);

  // Preload before enabling congestion: setup cost is not part of the
  // measured contention window.
  {
    NetContext setup;
    Random rng(7);
    for (uint64_t k = 0; k < kKeys; k++) {
      DISAGG_CHECK_OK(engine->Put(&setup, k, rng.RandomString(96)));
    }
  }
  CongestionConfig cfg;
  cfg.default_node = ResourceCapacity{200, 0.25};
  fabric.EnableCongestion(cfg);

  sim::LoadOptions opts;
  opts.clients = clients;
  opts.ops_per_client = 128;
  sim::LoadReport report;
  for (auto _ : state) {
    fabric.congestion()->Reset();
    ZipfianGenerator zipf(kKeys, 0.99, 42);
    report = sim::RunClosedLoop(
        opts, [&](uint64_t, uint64_t, NetContext* ctx, Random* rng) -> Status {
          const uint64_t key = zipf.Next();
          if (rng->Bernoulli(0.95)) {
            return engine->GetRow(ctx, key).status();
          }
          return engine->Put(ctx, key, rng->RandomString(96));
        });
    DISAGG_CHECK(report.errors == 0);
  }

  state.counters["tput_kops"] = report.ThroughputOpsPerSec() / 1e3;
  state.counters["p50_us"] = report.latency.Percentile(50) / 1e3;
  state.counters["p99_us"] = report.latency.Percentile(99) / 1e3;
  state.counters["queue_us_per_op"] =
      static_cast<double>(report.total.queue_ns) / 1e3 /
      static_cast<double>(report.ops);
  state.SetLabel("aurora");
}
BENCHMARK(BM_E22_EngineSaturation)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->ArgName("clients")
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
