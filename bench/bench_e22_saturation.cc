// Experiment E22 (DESIGN.md): shared-resource saturation.
//
// Every earlier experiment measures one client against an idle fabric; here
// N closed-loop clients contend for a memory node's NIC budget through the
// congestion layer (src/net/congestion.h) driven by sim::RunClosedLoop.
//  - Throughput vs clients: near-linear growth below the knee
//    (knee ~ one-client latency / per-op service time), then a plateau
//    pinned at the configured capacity.
//  - Tail vs offered load: past the knee, p99 is queueing-dominated and
//    grows linearly with the client count while p50 of the *uncontended*
//    run stays flat — the classic closed-loop hockey stick.
//  - Tiers: the same 4 KiB page read saturates local DRAM, CXL, and RDMA at
//    very different client counts because the knee depends on the ratio of
//    round-trip latency to service time, not on either alone.
//
// With DISAGG_E22_ASSERT=1 the bench self-checks the saturation shape (used
// as a CI smoke stage): at >= 64 clients the measured throughput must land
// within [0.8x, 1.001x] of the capacity bound min(N x single-client tput,
// configured capacity), and the saturated p99 must be >= 10x the
// uncontended p99.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>

#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "memnode/memory_node.h"
#include "sim/engine_registry.h"
#include "sim/load_driver.h"

namespace disagg {
namespace {

bool AssertFromEnv() {
  const char* env = std::getenv("DISAGG_E22_ASSERT");
  return env != nullptr && env[0] == '1';
}

constexpr uint64_t kPage = 4096;
constexpr uint64_t kPoolPages = 4096;  // 16 MiB pool

/// One tier's saturation point: `clients` closed-loop clients issuing 4 KiB
/// page reads against a pool whose NIC has a 100 ns per-message issue
/// budget and the tier's own bandwidth (MemoryNode::ServiceCapacity).
void BM_E22_PageReadSaturation(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  const uint64_t clients = static_cast<uint64_t>(state.range(1));
  const InterconnectModel model =
      tier == 0 ? InterconnectModel::LocalDram()
                : (tier == 1 ? InterconnectModel::Cxl()
                             : InterconnectModel::Rdma());

  Fabric fabric;
  MemoryNode pool(&fabric, "pool", kPoolPages * kPage * 2, model);
  const ResourceCapacity cap = pool.ServiceCapacity(/*ns_per_op=*/100);
  CongestionConfig cfg;
  cfg.node_caps[pool.node()] = cap;
  fabric.EnableCongestion(cfg);

  sim::LoadOptions opts;
  opts.clients = clients;
  opts.ops_per_client = 256;
  sim::LoadReport report;
  for (auto _ : state) {
    fabric.congestion()->Reset();
    report = sim::RunClosedLoop(
        opts, [&](uint64_t, uint64_t, NetContext* ctx, Random* rng) {
          char buf[kPage];
          return fabric.Read(ctx, pool.at(rng->Uniform(kPoolPages) * kPage),
                             buf, kPage);
        });
    DISAGG_CHECK(report.errors == 0);
  }

  const double capacity = cap.OpsPerSec(kPage);
  const double single = 1e9 / static_cast<double>(model.ReadCost(kPage));
  const double bound = std::min(static_cast<double>(clients) * single,
                                capacity);
  state.counters["tput_kops"] = report.ThroughputOpsPerSec() / 1e3;
  state.counters["p50_us"] = report.latency.Percentile(50) / 1e3;
  state.counters["p99_us"] = report.latency.Percentile(99) / 1e3;
  state.counters["queue_us_per_op"] =
      static_cast<double>(report.total.queue_ns) / 1e3 /
      static_cast<double>(report.ops);
  state.counters["capacity_frac"] = report.ThroughputOpsPerSec() / capacity;
  state.SetLabel(model.name);

  if (AssertFromEnv() && clients >= 64) {
    // Saturation shape: plateau at the capacity bound, queueing tail.
    DISAGG_CHECK(report.ThroughputOpsPerSec() >= 0.8 * bound);
    DISAGG_CHECK(report.ThroughputOpsPerSec() <= 1.001 * bound);
    fabric.congestion()->Reset();  // drain the backlog before the baseline
    sim::LoadOptions one;
    one.clients = 1;
    one.ops_per_client = 256;
    auto solo = sim::RunClosedLoop(
        one, [&](uint64_t, uint64_t, NetContext* ctx, Random* rng) {
          char buf[kPage];
          return fabric.Read(ctx, pool.at(rng->Uniform(kPoolPages) * kPage),
                             buf, kPage);
        });
    DISAGG_CHECK(report.latency.Percentile(99) >=
                 10.0 * solo.latency.Percentile(99));
  }
}
BENCHMARK(BM_E22_PageReadSaturation)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4, 8, 16, 32, 64, 128}})
    ->ArgNames({"tier", "clients"})
    ->Iterations(1);

/// The open-loop counterpart: closed-loop clients self-throttle at the knee
/// (offered load = achieved load by construction), so the plateau above can
/// never show offered load *exceeding* capacity. Here 16 Poisson (or
/// phase-staggered deterministic) arrival streams offer a fixed fraction of
/// the pool NIC's capacity regardless of completions. Below the knee
/// achieved == offered; past it achieved pins at capacity while the
/// in-flight count and the response-time tail grow without bound for as
/// long as the run lasts — the unbounded-queue regime of an M/D/1-ish
/// server pushed past rho = 1.
void BM_E22_OpenLoopSweep(benchmark::State& state) {
  const uint64_t offered_pct = static_cast<uint64_t>(state.range(0));
  const bool poisson = state.range(1) == 0;
  constexpr uint64_t kClients = 16;

  Fabric fabric;
  MemoryNode pool(&fabric, "pool", kPoolPages * kPage * 2,
                  InterconnectModel::Rdma());
  const ResourceCapacity cap = pool.ServiceCapacity(/*ns_per_op=*/100);
  CongestionConfig cfg;
  cfg.node_caps[pool.node()] = cap;
  fabric.EnableCongestion(cfg);
  const double capacity = cap.OpsPerSec(kPage);

  auto run = [&](uint64_t pct) {
    fabric.congestion()->Reset();
    sim::OpenLoopOptions opts;
    opts.clients = kClients;
    // Long streams: achieved throughput is ops / (slowest stream's span), so
    // short Poisson streams under-report it by O(1/sqrt(ops)) purely from
    // arrival-end raggedness across clients.
    opts.ops_per_client = 2048;
    opts.ops_per_sec = capacity * static_cast<double>(pct) / 100.0 /
                       static_cast<double>(kClients);
    opts.process = poisson ? sim::ArrivalProcess::kPoisson
                           : sim::ArrivalProcess::kDeterministic;
    return sim::RunOpenLoop(
        opts, [&](uint64_t, uint64_t, NetContext* ctx, Random* rng) {
          char buf[kPage];
          return fabric.Read(ctx, pool.at(rng->Uniform(kPoolPages) * kPage),
                             buf, kPage);
        });
  };

  sim::LoadReport report;
  for (auto _ : state) {
    report = run(offered_pct);
    DISAGG_CHECK(report.errors == 0);
  }

  state.counters["offered_kops"] = report.offered_ops_per_sec / 1e3;
  state.counters["tput_kops"] = report.ThroughputOpsPerSec() / 1e3;
  state.counters["p50_us"] = report.latency.Percentile(50) / 1e3;
  state.counters["p99_us"] = report.latency.Percentile(99) / 1e3;
  state.counters["mean_depth"] = report.queue_depth.Mean();
  state.counters["max_inflight"] = static_cast<double>(report.max_in_flight);
  state.counters["capacity_frac"] = report.ThroughputOpsPerSec() / capacity;
  state.SetLabel(poisson ? "poisson" : "deterministic");

  if (AssertFromEnv() && offered_pct >= 140 && poisson) {
    // Open-loop saturation shape: achieved throughput plateaus at capacity
    // while offered load keeps rising, and both the backlog and the
    // response-time tail blow up relative to a below-knee run.
    fabric.congestion()->Reset();
    const auto below = run(50);
    DISAGG_CHECK(report.ThroughputOpsPerSec() >= 0.9 * capacity);
    DISAGG_CHECK(report.ThroughputOpsPerSec() <= 1.001 * capacity);
    DISAGG_CHECK(report.offered_ops_per_sec >= 1.3 * capacity);
    DISAGG_CHECK(below.ThroughputOpsPerSec() >=
                 0.90 * below.offered_ops_per_sec);
    DISAGG_CHECK(report.max_in_flight >= 10 * below.max_in_flight);
    DISAGG_CHECK(report.latency.Percentile(99) >=
                 10.0 * below.latency.Percentile(99));
  }
}
BENCHMARK(BM_E22_OpenLoopSweep)
    ->ArgsProduct({{50, 80, 95, 105, 140}, {0, 1}})
    ->ArgNames({"offered_pct", "proc"})
    ->Iterations(1);

/// A full engine under contention: N clients run a 95/5 read/update zipfian
/// mix against one Aurora-style engine whose fabric nodes all share a
/// uniform per-node capacity. Shows that the engine's *commit fan-out*
/// (quorum appends) hits the knee before raw page reads do — every commit
/// occupies several resources.
void BM_E22_EngineSaturation(benchmark::State& state) {
  const uint64_t clients = static_cast<uint64_t>(state.range(0));
  constexpr uint64_t kKeys = 2000;

  Fabric fabric;
  auto engine = sim::MakeRowEngine("aurora", &fabric);
  DISAGG_CHECK(engine != nullptr);

  // Preload before enabling congestion: setup cost is not part of the
  // measured contention window.
  {
    NetContext setup;
    Random rng(7);
    for (uint64_t k = 0; k < kKeys; k++) {
      DISAGG_CHECK_OK(engine->Put(&setup, k, rng.RandomString(96)));
    }
  }
  CongestionConfig cfg;
  cfg.default_node = ResourceCapacity{200, 0.25};
  fabric.EnableCongestion(cfg);

  sim::LoadOptions opts;
  opts.clients = clients;
  opts.ops_per_client = 128;
  sim::LoadReport report;
  for (auto _ : state) {
    fabric.congestion()->Reset();
    ZipfianGenerator zipf(kKeys, 0.99, 42);
    report = sim::RunClosedLoop(
        opts, [&](uint64_t, uint64_t, NetContext* ctx, Random* rng) -> Status {
          const uint64_t key = zipf.Next();
          if (rng->Bernoulli(0.95)) {
            return engine->GetRow(ctx, key).status();
          }
          return engine->Put(ctx, key, rng->RandomString(96));
        });
    DISAGG_CHECK(report.errors == 0);
  }

  state.counters["tput_kops"] = report.ThroughputOpsPerSec() / 1e3;
  state.counters["p50_us"] = report.latency.Percentile(50) / 1e3;
  state.counters["p99_us"] = report.latency.Percentile(99) / 1e3;
  state.counters["queue_us_per_op"] =
      static_cast<double>(report.total.queue_ns) / 1e3 /
      static_cast<double>(report.ops);
  state.SetLabel("aurora");
}
BENCHMARK(BM_E22_EngineSaturation)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->ArgName("clients")
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
