#ifndef DISAGG_BENCH_BENCH_COMMON_H_
#define DISAGG_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include "net/net_context.h"

namespace disagg::bench {

/// Publishes the simulated-time metrics of a batch of `ops` operations as
/// benchmark counters. Simulated time is the deterministic output of the
/// fabric cost model, independent of host speed — wall-clock time of these
/// benchmarks is irrelevant and iterations are pinned to 1.
inline void ReportSim(benchmark::State& state, const NetContext& ctx,
                      uint64_t ops) {
  if (ops == 0) ops = 1;
  state.counters["sim_us_per_op"] =
      static_cast<double>(ctx.sim_ns) / 1e3 / static_cast<double>(ops);
  state.counters["bytes_out_per_op"] =
      static_cast<double>(ctx.bytes_out) / static_cast<double>(ops);
  state.counters["bytes_in_per_op"] =
      static_cast<double>(ctx.bytes_in) / static_cast<double>(ops);
  state.counters["rtts_per_op"] =
      static_cast<double>(ctx.round_trips) / static_cast<double>(ops);
  state.counters["sim_ops_per_sec"] =
      ctx.sim_ns == 0 ? 0.0
                      : static_cast<double>(ops) * 1e9 /
                            static_cast<double>(ctx.sim_ns);
}

}  // namespace disagg::bench

#endif  // DISAGG_BENCH_BENCH_COMMON_H_
