#ifndef DISAGG_BENCH_BENCH_COMMON_H_
#define DISAGG_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "net/interceptors.h"
#include "net/net_context.h"
#include "sim/load_driver.h"

namespace disagg::bench {

/// Publishes the simulated-time metrics of a batch of `ops` operations as
/// benchmark counters. Simulated time is the deterministic output of the
/// fabric cost model, independent of host speed — wall-clock time of these
/// benchmarks is irrelevant and iterations are pinned to 1.
///
/// Alongside the aggregates, the per-verb breakdown maintained by the op
/// pipeline is reported for every verb the workload actually used, plus the
/// retry/backoff/fault counters when a bench installs those interceptors.
inline void ReportSim(benchmark::State& state, const NetContext& ctx,
                      uint64_t ops) {
  if (ops == 0) ops = 1;
  state.counters["sim_us_per_op"] =
      static_cast<double>(ctx.sim_ns) / 1e3 / static_cast<double>(ops);
  state.counters["bytes_out_per_op"] =
      static_cast<double>(ctx.bytes_out) / static_cast<double>(ops);
  state.counters["bytes_in_per_op"] =
      static_cast<double>(ctx.bytes_in) / static_cast<double>(ops);
  state.counters["rtts_per_op"] =
      static_cast<double>(ctx.round_trips) / static_cast<double>(ops);
  state.counters["sim_ops_per_sec"] =
      ctx.sim_ns == 0 ? 0.0
                      : static_cast<double>(ops) * 1e9 /
                            static_cast<double>(ctx.sim_ns);
  for (size_t v = 0; v < kNumFabricVerbs; v++) {
    const VerbCounters& pv = ctx.per_verb[v];
    if (pv.ops == 0) continue;
    const std::string verb = FabricVerbName(static_cast<FabricVerb>(v));
    state.counters[verb + "_ops"] = static_cast<double>(pv.ops);
    state.counters[verb + "_sim_us"] = static_cast<double>(pv.sim_ns) / 1e3;
  }
  if (ctx.retries != 0) {
    state.counters["retries"] = static_cast<double>(ctx.retries);
    state.counters["backoff_us"] = static_cast<double>(ctx.backoff_ns) / 1e3;
  }
  if (ctx.faults_injected != 0) {
    state.counters["faults_injected"] =
        static_cast<double>(ctx.faults_injected);
  }
  if (ctx.queue_ns != 0) {
    state.counters["queue_us_per_op"] =
        static_cast<double>(ctx.queue_ns) / 1e3 / static_cast<double>(ops);
  }
}

/// The epoch-parallel driver configuration from the environment, for any
/// bench built on sim::RunClosedLoop / sim::RunOpenLoop:
///   DISAGG_SIM_PARTITIONS - client partitions (0 = legacy serial driver)
///   DISAGG_SIM_THREADS    - worker threads (execution resource only; the
///                           determinism contract keeps results identical
///                           at any value)
/// Unset variables keep the defaults, so existing invocations are
/// untouched. Returns the config to assign into LoadOptions/
/// OpenLoopOptions::parallel.
inline sim::ParallelConfig ParallelFromEnv() {
  sim::ParallelConfig parallel;
  if (const char* env = std::getenv("DISAGG_SIM_PARTITIONS")) {
    parallel.partitions = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  if (const char* env = std::getenv("DISAGG_SIM_THREADS")) {
    parallel.threads = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    if (parallel.threads == 0) parallel.threads = 1;
    // Threads without partitions would silently stay serial; give the
    // sweep something to parallelize over.
    if (parallel.partitions == 0) parallel.partitions = parallel.threads;
  }
  return parallel;
}

/// Installs a TraceInterceptor on `fabric` when the DISAGG_TRACE environment
/// variable is set (its value is the ring-buffer capacity; 0 or non-numeric
/// keeps histograms only). Returns the interceptor, or nullptr when tracing
/// is off. Pair with DumpTrace() after the measured section.
inline std::shared_ptr<TraceInterceptor> MaybeTraceFromEnv(Fabric* fabric) {
  const char* env = std::getenv("DISAGG_TRACE");
  if (env == nullptr) return nullptr;
  // strtoull with a discarded end pointer would silently read garbage (or a
  // trailing suffix like "100x") as a number; detect it, warn, and fall back
  // to histogram-only mode instead of quietly dropping the op trace.
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  size_t capacity = static_cast<size_t>(parsed);
  if (end == env || *end != '\0') {
    std::fprintf(stderr,
                 "DISAGG_TRACE='%s' is not a number; tracing with "
                 "histograms only (capacity 0)\n",
                 env);
    capacity = 0;
  }
  auto trace = std::make_shared<TraceInterceptor>(capacity);
  fabric->AddInterceptor(trace);
  return trace;
}

/// Prints the op-trace JSON to stderr (benchmark counters cannot carry
/// structured payloads). No-op when tracing is off.
inline void DumpTrace(const std::shared_ptr<TraceInterceptor>& trace,
                      const char* label) {
  if (trace == nullptr) return;
  std::fprintf(stderr, "DISAGG_TRACE %s %s\n", label,
               trace->DumpJson().c_str());
}

}  // namespace disagg::bench

#endif  // DISAGG_BENCH_BENCH_COMMON_H_
