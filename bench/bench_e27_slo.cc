// Experiment E27 (DESIGN.md): the multi-tenant SLO control plane vs the
// static configurations it subsumes.
//
// One saturated RDMA memory pool (1 us issue overhead per op plus a byte
// charge) is shared by two four-client tenants:
//  - interactive (tenant 1): 8 B point reads, a declared 6.5 us p99 target;
//  - batch (tenant 2): 4 KiB scan reads, best effort — each one occupies
//    the pool ~2x as long as a point read, the noisy neighbour.
//
// Every interactive op carries `deadline_ns = arrival + target`, so in all
// modes `deadline_misses` counts exactly the ops that blew the declared
// SLO. Four configurations of the SAME workload:
//  - mode 0 static:      WFQ with fixed equal weights. The interactive tail
//                        sits at the saturated steady state, past the
//                        target, forever — nothing moves it.
//  - mode 1 edf:         EDF-only lane discipline (no weights, no
//                        controller): interactive deadlines rank ahead of
//                        the batch tenant's default-slack horizon, which
//                        helps the tail but steers nothing and bounds
//                        nothing.
//  - mode 2 controller:  static WFQ's exact rig plus the SLO control plane:
//                        `DeclareSlo(1, {6'500})` and a feedback controller
//                        re-publishing WFQ weights at every epoch barrier
//                        until the declared tail holds. (Weight-only here:
//                        admission shedding could meet any target by
//                        refusing ops; the latency story is weights.)
//  - mode 3 infeasible:  the controller asked for a 1.5 us p99 — below the
//                        bare RDMA read cost, impossible at any weight. The
//                        run must end FLAGGED infeasible with the actuators
//                        frozen at their clamps, not oscillating.
//
// With DISAGG_E27_ASSERT=1 (the CI smoke stage) the bench self-checks the
// control plane's claims:
//  - controller mode re-runs the static twin inline: the static rig's
//    late-half (post-transient) interactive p99 misses the target while the
//    controlled run's meets it and sits strictly below the static tail; the
//    controller itself reports meeting, converged, not infeasible, with a
//    raised weight;
//  - controller decisions are bit-identical across worker threads 1/2/8 at
//    fixed partitions (trace, makespan, published weight and bound, and the
//    controller's full per-tenant state line);
//  - the infeasible mode is flagged, its published congestion controls
//    match the frozen controller state, and the weight sits exactly at the
//    saturation clamp (frozen, not hunting).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "net/congestion.h"
#include "net/fabric.h"
#include "net/slo_controller.h"
#include "sim/load_driver.h"

namespace disagg {
namespace {

bool AssertFromEnv() {
  const char* env = std::getenv("DISAGG_E27_ASSERT");
  return env != nullptr && env[0] == '1';
}

constexpr uint64_t kInteractiveTenant = 1;
constexpr uint64_t kBatchTenant = 2;
constexpr uint64_t kInteractiveBytes = 8;
constexpr uint64_t kBatchBytes = 4096;
constexpr uint64_t kTargetNs = 6'500;
constexpr uint64_t kInfeasibleTargetNs = 1'500;  // < the bare RDMA read cost

enum Mode {
  kStaticWfq = 0,
  kEdfOnly = 1,
  kControlled = 2,
  kInfeasibleSlo = 3,
};

const char* ModeName(int mode) {
  switch (mode) {
    case kStaticWfq: return "static-wfq";
    case kEdfOnly: return "edf-only";
    case kControlled: return "controller";
    default: return "infeasible";
  }
}

uint64_t TargetFor(int mode) {
  return mode == kInfeasibleSlo ? kInfeasibleTargetNs : kTargetNs;
}

struct ModeResult {
  sim::LoadReport report;
  // Controller-visible outcome (defaults describe the uncontrolled modes).
  SloController::TenantState interactive;
  bool any_infeasible = false;
  uint64_t control_epochs = 0;
  std::string controller_state;
  TenantControl published;  // live congestion-table entry for tenant 1
};

/// Interactive-tenant p99 from the op trace. With `late_half` set, only ops
/// arriving in the second half of the *interactive tenant's own* timeline
/// count — the post-transient tail after the controller has converged. (The
/// run makespan is the wrong window: the batch clients' bigger ops finish
/// last, so the run's second half can hold no interactive arrivals at all.)
double InteractiveP99(const sim::LoadReport& report, bool late_half) {
  uint64_t last_arrival = 0;
  for (const auto& t : report.trace) {
    if (t.client < 4 && t.arrival_ns > last_arrival) {
      last_arrival = t.arrival_ns;
    }
  }
  const uint64_t from_ns = late_half ? last_arrival / 2 : 0;
  Histogram h;
  for (const auto& t : report.trace) {
    if (t.client < 4 && t.code == Status::Code::kOk &&
        t.arrival_ns >= from_ns) {
      h.Record(t.done_ns - t.arrival_ns);
    }
  }
  return h.Percentile(99);
}

ModeResult RunMode(int mode, sim::ParallelConfig parallel) {
  Fabric fabric;
  const NodeId node =
      fabric.AddNode("pool", NodeKind::kMemory, InterconnectModel::Rdma());
  MemoryRegion* region = fabric.node(node)->AddRegion("heap", 1 << 20);

  CongestionConfig cfg;
  // 1 us issue overhead + byte charge: a batch scan occupies the pool for
  // ~2 us, twice an interactive point read — the asymmetry the static
  // weights cannot see and the controller corrects.
  cfg.node_caps[node] = ResourceCapacity{1000, 0.25};
  if (mode == kEdfOnly) {
    cfg.discipline = QueueDiscipline::kEdf;
  } else {
    cfg.tenant_weights[kInteractiveTenant] = 1.0;
    cfg.tenant_weights[kBatchTenant] = 1.0;
  }
  fabric.EnableCongestion(cfg);

  std::optional<SloController> ctrl;
  if (mode == kControlled || mode == kInfeasibleSlo) {
    fabric.DeclareSlo(kInteractiveTenant, SloSpec{TargetFor(mode)});
    // Weight-only steering: admission shedding could "meet" any target by
    // refusing most of the tenant's ops, which is the wrong headline for a
    // latency comparison (the admission and staleness actuators are pinned
    // by tests/slo_controller_test.cc). Every declared op still completes.
    SloController::Options copts;
    copts.actuate_admission = false;
    ctrl.emplace(&fabric, copts);
  }

  sim::LoadOptions opts;
  opts.clients = 8;  // 0..3 interactive, 4..7 batch
  opts.ops_per_client = 2'000;
  opts.seed = 42;
  opts.parallel = parallel;
  opts.parallel.record_trace = true;
  opts.parallel.controller = ctrl ? &*ctrl : nullptr;

  ModeResult result;
  const uint64_t deadline_slack = TargetFor(mode);
  result.report = sim::RunClosedLoop(
      opts, [&fabric, node, region, deadline_slack](
                uint64_t client, uint64_t, NetContext* ctx, Random* rng) {
        thread_local std::vector<char> scratch(kBatchBytes);
        const bool interactive = client < 4;
        ctx->tenant = interactive ? kInteractiveTenant : kBatchTenant;
        // The declared contract, stamped per op: completion past it counts
        // in deadline_misses (and ranks the op under the EDF discipline).
        ctx->deadline_ns = interactive ? ctx->sim_ns + deadline_slack : 0;
        const uint64_t bytes = interactive ? kInteractiveBytes : kBatchBytes;
        const uint64_t offset = rng->Uniform((1 << 20) / bytes) * bytes;
        return fabric.Read(ctx, GlobalAddr{node, region->id(), offset},
                           scratch.data(), bytes);
      });

  if (ctrl) {
    result.interactive = ctrl->StateFor(kInteractiveTenant);
    result.any_infeasible = ctrl->AnyInfeasible();
    result.control_epochs = ctrl->epochs();
    result.controller_state = ctrl->ToString();
  }
  result.published = fabric.congestion()->ControlFor(kInteractiveTenant);
  return result;
}

void BM_E27_SloControlPlane(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const uint64_t target = TargetFor(mode);

  ModeResult r;
  for (auto _ : state) {
    r = RunMode(mode, bench::ParallelFromEnv());
    // No admission bound exists in any mode (the bench controller steers
    // weight only), so every op in every mode must complete.
    DISAGG_CHECK(r.report.errors == 0);
  }

  const double late_p99 = InteractiveP99(r.report, /*late_half=*/true);
  state.counters["interactive_p99_us"] =
      InteractiveP99(r.report, /*late_half=*/false) / 1e3;
  state.counters["interactive_late_p99_us"] = late_p99 / 1e3;
  state.counters["slo_target_us"] = static_cast<double>(target) / 1e3;
  state.counters["slo_misses"] =
      static_cast<double>(r.report.total.deadline_misses);
  state.counters["busy_rejects"] = static_cast<double>(r.report.busy);
  state.counters["errors"] = static_cast<double>(r.report.errors);
  state.counters["weight"] = r.published.weight;
  state.counters["backlog_bound_us"] =
      static_cast<double>(r.published.max_backlog_ns) / 1e3;
  state.counters["control_epochs"] = static_cast<double>(r.control_epochs);
  state.counters["infeasible"] = r.any_infeasible ? 1.0 : 0.0;
  state.counters["sim_kops"] = r.report.ThroughputOpsPerSec() / 1e3;
  state.SetLabel(ModeName(mode));

  if (!AssertFromEnv()) return;

  if (mode == kControlled) {
    // The static twin holds its saturated tail past the target the whole
    // run; the controlled run converges under it.
    const ModeResult fixed = RunMode(kStaticWfq, {});
    const double static_late = InteractiveP99(fixed.report, true);
    DISAGG_CHECK(static_late > static_cast<double>(target));
    DISAGG_CHECK(r.interactive.meeting);
    DISAGG_CHECK(r.interactive.observed_p99_ns <=
                 static_cast<double>(target));
    DISAGG_CHECK(!r.any_infeasible);
    DISAGG_CHECK(r.published.weight > 1.0);  // it actually steered
    DISAGG_CHECK(late_p99 <= static_cast<double>(target));
    DISAGG_CHECK(late_p99 < static_late);

    // Controller decisions are a pure function of (seed, partitions,
    // epoch_ns): at fixed partitions, threads 1/2/8 must agree on every
    // trace bit, every published control, every state line.
    sim::ParallelConfig pc;
    pc.partitions = 4;
    pc.threads = 1;
    const ModeResult t1 = RunMode(kControlled, pc);
    pc.threads = 2;
    const ModeResult t2 = RunMode(kControlled, pc);
    pc.threads = 8;
    const ModeResult t8 = RunMode(kControlled, pc);
    DISAGG_CHECK(!t1.report.trace.empty());
    DISAGG_CHECK(t1.report.trace == t2.report.trace);
    DISAGG_CHECK(t1.report.trace == t8.report.trace);
    DISAGG_CHECK(t1.report.makespan_ns == t2.report.makespan_ns);
    DISAGG_CHECK(t1.report.makespan_ns == t8.report.makespan_ns);
    DISAGG_CHECK(t1.controller_state == t2.controller_state);
    DISAGG_CHECK(t1.controller_state == t8.controller_state);
    DISAGG_CHECK(t1.published.weight == t2.published.weight);
    DISAGG_CHECK(t1.published.weight == t8.published.weight);
    DISAGG_CHECK(t1.published.max_backlog_ns == t2.published.max_backlog_ns);
    DISAGG_CHECK(t1.published.max_backlog_ns == t8.published.max_backlog_ns);
  }

  if (mode == kInfeasibleSlo) {
    // Flagged and frozen: the published congestion controls are exactly the
    // controller's frozen per-tenant state, with the weight pinned at the
    // saturation clamp — the SLO set is reported impossible, not hunted.
    DISAGG_CHECK(r.any_infeasible);
    DISAGG_CHECK(r.interactive.infeasible);
    DISAGG_CHECK(r.published.weight == r.interactive.weight);
    DISAGG_CHECK(r.published.max_backlog_ns == r.interactive.backlog_bound_ns);
    DISAGG_CHECK(r.published.weight == SloController::Options{}.max_weight);
  }
}
BENCHMARK(BM_E27_SloControlPlane)
    ->Arg(kStaticWfq)
    ->Arg(kEdfOnly)
    ->Arg(kControlled)
    ->Arg(kInfeasibleSlo)
    ->ArgName("mode")
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
