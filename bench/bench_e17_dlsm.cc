// Experiment E17 (DESIGN.md): dLSM — LSM indexing on disaggregated memory
// (Sec. 3.1).
//  - Shard-count sweep under a skewed write/read mix: sharding spreads both
//    memtable pressure and per-shard run counts (fewer runs = fewer remote
//    probes per read).
//  - Compaction placement: downloading runs to merge client-side moves the
//    entire index twice; offloading the merge to the memory node's CPU
//    moves almost nothing.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "rindex/dlsm.h"
#include "workload/ycsb.h"

namespace disagg {
namespace {

constexpr uint64_t kKeys = 8000;
constexpr int kOps = 4000;

void BM_E17_ShardSweep(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  Fabric fabric;
  MemoryNode pool(&fabric, "mem0", 1024ull << 20);
  DLsm lsm(&fabric, &pool, shards, /*memtable_limit=*/128);
  NetContext setup;
  for (uint64_t k = 0; k < kKeys; k++) {
    DISAGG_CHECK_OK(lsm.Put(&setup, k, k));
  }
  YcsbGenerator gen(kKeys, YcsbGenerator::Mix::A(), 0.99, 21);
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kOps; i++) {
      auto op = gen.Next();
      if (op.type == YcsbGenerator::OpType::kRead) {
        (void)lsm.Get(&ctx, op.key);
      } else {
        DISAGG_CHECK_OK(lsm.Put(&ctx, op.key, op.key + 1));
      }
    }
  }
  bench::ReportSim(state, ctx, kOps);
  size_t runs = 0;
  for (size_t s = 0; s < lsm.num_shards(); s++) {
    runs += lsm.shard(s)->num_runs();
  }
  state.counters["total_runs"] = static_cast<double>(runs);
}

void BM_E17_Compaction(benchmark::State& state) {
  const bool remote = state.range(0) != 0;
  Fabric fabric;
  MemoryNode pool(&fabric, "mem0", 1024ull << 20);
  DLsmShard shard(&fabric, &pool, /*memtable_limit=*/512);
  NetContext setup;
  for (uint64_t k = 0; k < kKeys; k++) {
    DISAGG_CHECK_OK(shard.Put(&setup, k % (kKeys / 2), k));
  }
  DISAGG_CHECK_OK(shard.Flush(&setup));
  NetContext ctx;
  for (auto _ : state) {
    if (remote) {
      DISAGG_CHECK_OK(shard.CompactRemote(&ctx));
    } else {
      DISAGG_CHECK_OK(shard.CompactLocal(&ctx));
    }
  }
  state.counters["compact_sim_ms"] = static_cast<double>(ctx.sim_ns) / 1e6;
  state.counters["mb_moved"] =
      static_cast<double>(ctx.bytes_in + ctx.bytes_out) / 1e6;
  state.SetLabel(remote ? "offloaded-to-memnode" : "client-side");
}

BENCHMARK(BM_E17_ShardSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E17_Compaction)->Arg(0)->Arg(1)->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
