// Experiment E28 (DESIGN.md): near-data concurrency offload.
//
// One-sided remote indexing pays O(depth) fabric round trips per lookup
// (plus CAS/unlock round trips for writers); the memory-node executor
// (src/memnode/executor.h) runs the traversal next to the data on the pool
// node's wimpy CPU (cpu_scale 1.5x), collapsing every index op to ONE
// `exec.idx.*` Call. Three scenarios:
//  - Lookup depth: uncontended Get cost, one-sided vs offloaded, at two
//    tree sizes. The offloaded path is exactly 1 RTT/op regardless of
//    depth; the one-sided path is >= depth reads.
//  - Zipfian saturation: N closed-loop YCSB-A clients (zipf 0.99) against
//    a pool whose NIC has a per-message issue budget. One-sided traffic
//    spends depth+lock messages of that budget per op, offloaded traffic
//    one; past the knee the offloaded path keeps both throughput and p99.
//  - Chaos: the offloaded tree and the WOUND_WAIT lock table under seeded
//    crash/flap schedules (RunIndexChaos "offload", RunLockChaos) — the
//    run must stay violation-free while taking executor crash interludes.
//
// With DISAGG_E28_ASSERT=1 (the CI smoke stage) the bench self-checks:
// offloaded lookups are exactly one RTT and one RPC per op while one-sided
// lookups pay >= 3 reads; at >= 64 clients the offloaded path beats
// one-sided on throughput AND p99; and every chaos schedule replays with
// zero violations and at least one executor crash interlude taken.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "memnode/executor.h"
#include "rindex/remote_btree.h"
#include "sim/chaos.h"
#include "sim/load_driver.h"
#include "workload/ycsb.h"

namespace disagg {
namespace {

bool AssertFromEnv() {
  const char* env = std::getenv("DISAGG_E28_ASSERT");
  return env != nullptr && env[0] == '1';
}

constexpr int kOps = 2000;

/// One index rig: a Sherman B+tree on a pool node that also hosts the
/// executor, switchable between the one-sided and the offloaded protocol.
struct IndexRig {
  Fabric fabric;
  MemoryNode pool{&fabric, "pool", 512 << 20};
  MemNodeExecutor exec{&fabric, &pool};
  std::unique_ptr<RemoteBTree> tree;

  IndexRig(bool offload, uint64_t keys) {
    NetContext setup;
    auto ref = RemoteBTree::Create(&setup, &fabric, &pool);
    DISAGG_CHECK(ref.ok());
    tree = std::make_unique<RemoteBTree>(&fabric, &pool, *ref,
                                         RemoteBTree::Options::Sherman());
    if (offload) tree->EnableOffload(pool.node(), exec.RegisterTree(*ref));
    for (uint64_t k = 1; k <= keys; k++) {
      DISAGG_CHECK_OK(tree->Put(&setup, k, k));
    }
  }
};

void BM_E28_LookupDepth(benchmark::State& state) {
  const uint64_t keys = static_cast<uint64_t>(state.range(0));
  NetContext one_sided;
  NetContext offloaded;
  for (auto _ : state) {
    for (const bool offload : {false, true}) {
      IndexRig rig(offload, keys);
      NetContext& ctx = offload ? offloaded : one_sided;
      Random rng(7);  // same key stream for both protocols
      for (int i = 0; i < kOps; i++) {
        DISAGG_CHECK(rig.tree->Get(&ctx, 1 + rng.Uniform(keys)).ok());
      }
    }
  }
  bench::ReportSim(state, offloaded, kOps);
  const double ops = static_cast<double>(kOps);
  state.counters["one_sided_rtts_per_op"] =
      static_cast<double>(one_sided.round_trips) / ops;
  state.counters["offload_rtts_per_op"] =
      static_cast<double>(offloaded.round_trips) / ops;
  state.counters["one_sided_us_per_op"] =
      static_cast<double>(one_sided.sim_ns) / 1e3 / ops;
  state.counters["offload_us_per_op"] =
      static_cast<double>(offloaded.sim_ns) / 1e3 / ops;
  if (AssertFromEnv()) {
    // The acceptance bound: an offloaded lookup is ONE fabric round trip
    // (one Call, no one-sided verbs) at any depth; one-sided pays >= the
    // tree depth in reads.
    DISAGG_CHECK(offloaded.round_trips == static_cast<uint64_t>(kOps));
    DISAGG_CHECK(offloaded.rpcs == static_cast<uint64_t>(kOps));
    DISAGG_CHECK(one_sided.round_trips >= 3u * kOps);
    DISAGG_CHECK(one_sided.rpcs == 0u);
  }
  state.SetLabel(keys <= 4000 ? "depth-3" : "depth-4");
}

/// YCSB-A (50/50 read/update, zipf 0.99) at `clients` closed-loop clients,
/// both protocols against identically provisioned pools. Returns the report.
sim::LoadReport RunZipfian(bool offload, uint64_t clients) {
  constexpr uint64_t kKeys = 4000;
  IndexRig rig(offload, kKeys);
  const ResourceCapacity cap = rig.pool.ServiceCapacity(/*ns_per_op=*/100);
  CongestionConfig cfg;
  cfg.node_caps[rig.pool.node()] = cap;
  rig.fabric.EnableCongestion(cfg);

  std::vector<std::unique_ptr<YcsbGenerator>> gens;
  for (uint64_t c = 0; c < clients; c++) {
    gens.push_back(std::make_unique<YcsbGenerator>(
        kKeys, YcsbGenerator::Mix::A(), 0.99, 1000 + c));
  }
  sim::LoadOptions opts;
  opts.clients = clients;
  opts.ops_per_client = 256;
  auto report = sim::RunClosedLoop(
      opts, [&](uint64_t client, uint64_t, NetContext* ctx, Random*) {
        const auto op = gens[client]->Next();
        if (op.type == YcsbGenerator::OpType::kRead) {
          (void)rig.tree->Get(ctx, 1 + op.key);
          return Status::OK();
        }
        return rig.tree->Put(ctx, 1 + op.key, op.key);
      });
  DISAGG_CHECK(report.errors == 0);
  return report;
}

void BM_E28_ZipfianSaturation(benchmark::State& state) {
  const uint64_t clients = static_cast<uint64_t>(state.range(0));
  sim::LoadReport one_sided;
  sim::LoadReport offloaded;
  for (auto _ : state) {
    one_sided = RunZipfian(/*offload=*/false, clients);
    offloaded = RunZipfian(/*offload=*/true, clients);
  }
  const auto tput = [](const sim::LoadReport& r) {
    return r.makespan_ns == 0 ? 0.0
                              : static_cast<double>(r.ops) * 1e9 /
                                    static_cast<double>(r.makespan_ns);
  };
  state.counters["one_sided_ops_per_sec"] = tput(one_sided);
  state.counters["offload_ops_per_sec"] = tput(offloaded);
  state.counters["one_sided_p99_us"] =
      static_cast<double>(one_sided.latency.Percentile(99)) / 1e3;
  state.counters["offload_p99_us"] =
      static_cast<double>(offloaded.latency.Percentile(99)) / 1e3;
  if (AssertFromEnv() && clients >= 64) {
    // Past the NIC knee the one-sided path burns depth+lock messages of
    // the pool's issue budget per op; the offloaded path one. It must win
    // on both axes under skew at saturation.
    DISAGG_CHECK(tput(offloaded) > tput(one_sided));
    DISAGG_CHECK(offloaded.latency.Percentile(99) <
                 one_sided.latency.Percentile(99));
  }
}

void BM_E28_ChaosOffload(benchmark::State& state) {
  uint64_t crashes = 0;
  uint64_t index_ops = 0;
  uint64_t lock_commits = 0;
  uint64_t lock_busy = 0;
  for (auto _ : state) {
    crashes = index_ops = lock_commits = lock_busy = 0;
    for (uint64_t seed : {11ull, 12ull, 13ull}) {
      const sim::ChaosReport idx = sim::RunIndexChaos("offload", seed);
      DISAGG_CHECK(idx.violations.empty());
      crashes += idx.crashes;
      index_ops += idx.trace.size();
      const sim::ChaosReport lock = sim::RunLockChaos(seed);
      DISAGG_CHECK(lock.violations.empty());
      crashes += lock.crashes;
      lock_commits += lock.commits;
      lock_busy += lock.busy;
      if (AssertFromEnv()) {
        DISAGG_CHECK(idx.crashes > 0);
        DISAGG_CHECK(lock.crashes > 0);
        DISAGG_CHECK(lock.commits > 0);
      }
    }
  }
  state.counters["crash_interludes"] = static_cast<double>(crashes);
  state.counters["index_ops"] = static_cast<double>(index_ops);
  state.counters["lock_commits"] = static_cast<double>(lock_commits);
  state.counters["lock_busy"] = static_cast<double>(lock_busy);
}

BENCHMARK(BM_E28_LookupDepth)
    ->Arg(4000)
    ->Arg(40000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E28_ZipfianSaturation)
    ->Arg(8)
    ->Arg(64)
    ->Arg(128)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E28_ChaosOffload)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
