// Experiment E19 (DESIGN.md): FORD-style one-sided OCC transactions on
// disaggregated PM (Sec. 2.3 reference [50]).
//  - zero PM-server RPCs on the transaction path (pure one-sided verbs);
//  - batched persistence: ONE flush-read per PM node per commit regardless
//    of how many records were written there;
//  - abort-rate sweep under Zipfian contention.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "pm/ford_txn.h"

namespace disagg {
namespace {

constexpr int kTxns = 300;
constexpr size_t kRecordsPerNode = 256;

void BM_E19_CommitLatency_WriteSetSweep(benchmark::State& state) {
  const size_t writes = static_cast<size_t>(state.range(0));
  Fabric fabric;
  std::vector<std::unique_ptr<PmNode>> pm;
  std::vector<PmNode*> raw;
  for (int i = 0; i < 2; i++) {
    pm.push_back(std::make_unique<PmNode>(&fabric, "pm" + std::to_string(i),
                                          64 << 20));
    raw.push_back(pm.back().get());
  }
  FordTxnManager mgr(&fabric, raw, kRecordsPerNode);
  NetContext ctx;
  Random rng(9);
  for (auto _ : state) {
    for (int t = 0; t < kTxns; t++) {
      auto txn = mgr.Begin(&ctx);
      for (size_t w = 0; w < writes; w++) {
        DISAGG_CHECK_OK(txn.Write(rng.Uniform(2 * kRecordsPerNode),
                                  "value-" + std::to_string(t)));
      }
      Status st = txn.Commit();
      DISAGG_CHECK(st.ok() || st.IsAborted());
    }
  }
  bench::ReportSim(state, ctx, kTxns);
  state.counters["pm_server_rpcs"] = static_cast<double>(ctx.rpcs);
  state.counters["commits"] = static_cast<double>(mgr.stats().commits);
}

void BM_E19_AbortRate_ContentionSweep(benchmark::State& state) {
  // range = hot-set size; smaller = more contention among interleaved txns.
  const uint64_t hot_set = static_cast<uint64_t>(state.range(0));
  Fabric fabric;
  PmNode pm(&fabric, "pm0", 64 << 20);
  FordTxnManager mgr(&fabric, {&pm}, kRecordsPerNode);
  NetContext ctx;
  Random rng(11);
  for (auto _ : state) {
    for (int t = 0; t < kTxns; t++) {
      // Two interleaved transactions on the hot set: the second often
      // invalidates the first (OCC).
      auto t1 = mgr.Begin(&ctx);
      auto t2 = mgr.Begin(&ctx);
      const uint64_t r1 = rng.Uniform(hot_set);
      const uint64_t r2 = rng.Uniform(hot_set);
      DISAGG_CHECK_OK(t1.Write(r1, "t1"));
      DISAGG_CHECK_OK(t2.Write(r2, "t2"));
      Status s2 = t2.Commit();
      Status s1 = t1.Commit();
      DISAGG_CHECK(s2.ok() || s2.IsAborted());
      DISAGG_CHECK(s1.ok() || s1.IsAborted());
    }
  }
  const double total = static_cast<double>(
      mgr.stats().commits + mgr.stats().aborts_validate +
      mgr.stats().aborts_lock);
  state.counters["abort_rate"] =
      static_cast<double>(mgr.stats().aborts_validate +
                          mgr.stats().aborts_lock) /
      total;
  bench::ReportSim(state, ctx, 2 * kTxns);
}

BENCHMARK(BM_E19_CommitLatency_WriteSetSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1);
BENCHMARK(BM_E19_AbortRate_ContentionSweep)
    ->Arg(2)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
