// Experiment E1 / Figure 1 (DESIGN.md): shared-storage architectures on a
// TPC-C-lite write workload. Reproduces the paper's Sec. 2.1 contrast:
//  - Aurora ships ONLY redo records ("the log is the database");
//  - PolarDB ships pages AND logs (more bytes per transaction);
//  - Socrates lands the log on the XLOG tier only (page servers async);
//  - Taurus replicates the log but sends redo to a single page store;
//  - the monolithic baseline pays local fsync, no network.
// Expected shape: bytes_out_per_op Monolithic ~= 0 network, Aurora small,
// Socrates/Taurus small, Polar largest; commit latency ordering follows.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "core/engines.h"
#include "workload/tpcc_lite.h"

namespace disagg {
namespace {

constexpr int kTxns = 200;

template <typename Db>
void RunTpcc(benchmark::State& state, Db* db) {
  TpccLite tpcc(db, {});
  NetContext load_ctx;
  DISAGG_CHECK_OK(tpcc.Load(&load_ctx));
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kTxns; i++) {
      DISAGG_CHECK(tpcc.NewOrder(&ctx).ok());
      DISAGG_CHECK(tpcc.Payment(&ctx).ok());
    }
  }
  bench::ReportSim(state, ctx, 2 * kTxns);
}

void BM_Fig1_Monolithic(benchmark::State& state) {
  MonolithicDb db;
  RunTpcc(state, &db);
}

void BM_Fig1_Aurora_LogShipping(benchmark::State& state) {
  Fabric fabric;
  AuroraDb db(&fabric);
  RunTpcc(state, &db);
}

void BM_Fig1_Polar_PageShipping(benchmark::State& state) {
  Fabric fabric;
  PolarDb db(&fabric);
  RunTpcc(state, &db);
}

void BM_Fig1_Socrates_Tiered(benchmark::State& state) {
  Fabric fabric;
  SocratesDb db(&fabric);
  RunTpcc(state, &db);
}

void BM_Fig1_Taurus_GossipPages(benchmark::State& state) {
  Fabric fabric;
  TaurusDb db(&fabric);
  RunTpcc(state, &db);
}

BENCHMARK(BM_Fig1_Monolithic)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig1_Aurora_LogShipping)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig1_Polar_PageShipping)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig1_Socrates_Tiered)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig1_Taurus_GossipPages)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
