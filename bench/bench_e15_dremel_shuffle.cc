// Experiment E15 (DESIGN.md): Dremel's disaggregated shuffle (Sec. 3.2).
// Coupled shuffle opens P*C connections (quadratic), the disaggregated
// shuffle region needs P+C sessions; sweep the fleet size and measure the
// exchange's simulated time and connection count. Expected shape: the gap
// widens superlinearly with the fleet — "improves the performance and
// scalability of joins by an order of magnitude" at scale.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "query/pushdown.h"

namespace disagg {
namespace {

constexpr size_t kRowsPerProducer = 4000;
constexpr size_t kRowBytes = 64;

void BM_E15_CoupledShuffle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));  // producers = consumers
  Fabric fabric;
  Shuffle::Report report;
  for (auto _ : state) {
    auto r = Shuffle::RunCoupled(&fabric, n, n, kRowsPerProducer, kRowBytes);
    DISAGG_CHECK(r.ok());
    report = *r;
  }
  state.counters["connections"] = static_cast<double>(report.connections);
  state.counters["exchange_sim_ms"] =
      static_cast<double>(report.sim_ns) / 1e6;
  state.counters["mb_moved"] = static_cast<double>(report.bytes_moved) / 1e6;
}

void BM_E15_DisaggregatedShuffle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fabric fabric;
  MemoryNode pool(&fabric, "shuffle-pool", 2048ull << 20);
  Shuffle::Report report;
  for (auto _ : state) {
    auto r = Shuffle::RunDisaggregated(&fabric, &pool, n, n,
                                       kRowsPerProducer, kRowBytes);
    DISAGG_CHECK(r.ok());
    report = *r;
  }
  state.counters["connections"] = static_cast<double>(report.connections);
  state.counters["exchange_sim_ms"] =
      static_cast<double>(report.sim_ns) / 1e6;
  state.counters["mb_moved"] = static_cast<double>(report.bytes_moved) / 1e6;
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int n : {2, 4, 8, 16, 32}) b->Arg(n);
  b->Iterations(1);
}

BENCHMARK(BM_E15_CoupledShuffle)->Apply(Sweep);
BENCHMARK(BM_E15_DisaggregatedShuffle)->Apply(Sweep);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
