// Experiment E23 (DESIGN.md): tenant isolation under weighted fair queueing
// and admission control.
//
// Two tenants share one RDMA memory pool through the congestion layer:
//  - OLTP (tenant 1): 4 closed-loop clients issuing 256 B point reads —
//    short ops, latency-sensitive, the "victim".
//  - OLAP (tenant 2): 4 closed-loop clients issuing 256 KiB scan reads —
//    each op occupies the pool NIC for ~65 us, the "noisy neighbour".
//
// Four congestion configurations of the SAME workload:
//  - mode 0 fifo:       strict virtual-time FIFO (the PR-3 default). OLTP
//                       p99 is dominated by waiting behind queued scans.
//  - mode 1 fifo+adm:   FIFO plus a backlog bound; ops arriving past it
//                       fail fast with Busy and retry with backoff, which
//                       caps how deep the shared queue (and the victim's
//                       wait) can get.
//  - mode 2 wfq:        start-time fair queueing, weights OLTP:OLAP = 4:1.
//                       The victim only queues behind its own lane, so its
//                       p99 collapses back to the bare read cost.
//  - mode 3 wfq+adm:    WFQ plus the backlog bound: the scan lane is
//                       length-limited while the victim lane stays empty —
//                       OLTP is never rejected and never waits.
//
// With DISAGG_E23_ASSERT=1 (the CI smoke stage) each non-FIFO mode re-runs
// the FIFO baseline and self-checks the isolation shape:
//  - wfq modes: victim p99 <= 0.5x its FIFO p99;
//  - admission modes: rejections actually happened, and the victim's p99 is
//    materially below the unbounded-FIFO p99;
//  - wfq+adm: the victim is never the one rejected.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "memnode/memory_node.h"
#include "net/interceptors.h"
#include "sim/load_driver.h"

namespace disagg {
namespace {

bool AssertFromEnv() {
  const char* env = std::getenv("DISAGG_E23_ASSERT");
  return env != nullptr && env[0] == '1';
}

constexpr uint64_t kOltpBytes = 256;
constexpr uint64_t kOlapBytes = 256 * 1024;
constexpr uint64_t kPoolBytes = 16ull * 1024 * 1024;
constexpr uint64_t kOltpTenant = 1;
constexpr uint64_t kOlapTenant = 2;
constexpr uint64_t kBacklogBoundNs = 20000;  // 20 us shared-queue cap

enum Mode { kFifo = 0, kFifoAdmission = 1, kWfq = 2, kWfqAdmission = 3 };

const char* ModeName(int mode) {
  switch (mode) {
    case kFifo: return "fifo";
    case kFifoAdmission: return "fifo+adm";
    case kWfq: return "wfq";
    default: return "wfq+adm";
  }
}

struct ModeResult {
  sim::LoadReport report;
  Histogram oltp;      // victim per-op latency, end to end (incl. backoff)
  Histogram olap;      // scan per-op latency, end to end
  /// Victim latency with retry backoff subtracted: rejection costs + the
  /// final admitted wait + service. Admission control bounds THIS — the
  /// time an op spends in the system — while end-to-end latency still pays
  /// for client-side pacing between attempts.
  Histogram oltp_in_system;
  uint64_t oltp_busy = 0;  // victim ops that exhausted retries as Busy
  uint64_t rejections = 0;
  uint64_t retries = 0;
  uint64_t gave_up = 0;
};

ModeResult RunMode(int mode) {
  const bool wfq = mode == kWfq || mode == kWfqAdmission;
  const bool admission = mode == kFifoAdmission || mode == kWfqAdmission;

  Fabric fabric;
  MemoryNode pool(&fabric, "pool", kPoolBytes, InterconnectModel::Rdma());
  ResourceCapacity cap = pool.ServiceCapacity(/*ns_per_op=*/100);
  if (admission) cap.max_backlog_ns = kBacklogBoundNs;
  CongestionConfig cfg;
  cfg.node_caps[pool.node()] = cap;
  if (wfq) {
    cfg.tenant_weights[kOltpTenant] = 4.0;
    cfg.tenant_weights[kOlapTenant] = 1.0;
  }
  fabric.EnableCongestion(cfg);

  std::shared_ptr<RetryInterceptor> retry;
  if (admission) {
    // Busy from admission control is retryable contention here: back off and
    // re-offer the op once the backlog has had time to drain.
    RetryPolicy policy;
    policy.max_attempts = 12;
    policy.initial_backoff_ns = 2000;
    policy.retry_busy = true;
    retry = std::make_shared<RetryInterceptor>(policy);
    fabric.AddInterceptor(retry);
  }

  ModeResult result;
  std::vector<char> buf(kOlapBytes);
  sim::LoadOptions opts;
  opts.clients = 8;  // 0..3 OLTP, 4..7 OLAP
  opts.ops_per_client = 256;
  opts.parallel = bench::ParallelFromEnv();  // DISAGG_SIM_{THREADS,PARTITIONS}
  result.report = sim::RunClosedLoop(
      opts, [&](uint64_t client, uint64_t, NetContext* ctx, Random* rng) {
        const bool oltp = client < 4;
        ctx->tenant = oltp ? kOltpTenant : kOlapTenant;
        const uint64_t bytes = oltp ? kOltpBytes : kOlapBytes;
        const uint64_t offset =
            rng->Uniform(kPoolBytes / bytes) * bytes;
        const uint64_t before = ctx->sim_ns;
        const uint64_t backoff_before = ctx->backoff_ns;
        Status st = fabric.Read(ctx, pool.at(offset), buf.data(), bytes);
        const uint64_t latency = ctx->sim_ns - before;
        (oltp ? result.oltp : result.olap).Record(latency);
        if (oltp) {
          result.oltp_in_system.Record(latency -
                                       (ctx->backoff_ns - backoff_before));
          if (st.IsBusy()) result.oltp_busy++;
        }
        return st;
      });

  result.rejections = fabric.congestion()->total_rejections();
  if (retry != nullptr) {
    result.retries = retry->retries();
    result.gave_up = retry->gave_up();
  }
  return result;
}

void BM_E23_TenantIsolation(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));

  ModeResult r;
  for (auto _ : state) {
    r = RunMode(mode);
    // Without admission control every read must succeed; with it, Busy after
    // exhausted retries is an allowed outcome (counted, not fatal).
    if (mode == kFifo || mode == kWfq) DISAGG_CHECK(r.report.errors == 0);
  }

  const double makespan_s =
      static_cast<double>(r.report.makespan_ns) / 1e9;
  state.counters["oltp_p50_us"] = r.oltp.Percentile(50) / 1e3;
  state.counters["oltp_p99_us"] = r.oltp.Percentile(99) / 1e3;
  state.counters["oltp_sys_p99_us"] = r.oltp_in_system.Percentile(99) / 1e3;
  state.counters["olap_p99_us"] = r.olap.Percentile(99) / 1e3;
  state.counters["oltp_kops"] = makespan_s == 0.0
                                    ? 0.0
                                    : static_cast<double>(r.oltp.count()) /
                                          makespan_s / 1e3;
  state.counters["olap_kops"] = makespan_s == 0.0
                                    ? 0.0
                                    : static_cast<double>(r.olap.count()) /
                                          makespan_s / 1e3;
  state.counters["rejects"] = static_cast<double>(r.rejections);
  state.counters["retries"] = static_cast<double>(r.retries);
  state.counters["gave_up"] = static_cast<double>(r.gave_up);
  state.counters["errors"] = static_cast<double>(r.report.errors);
  state.SetLabel(ModeName(mode));

  if (AssertFromEnv() && mode != kFifo) {
    const ModeResult fifo = RunMode(kFifo);
    const double fifo_p99 = fifo.oltp.Percentile(99);
    if (mode == kWfq || mode == kWfqAdmission) {
      // WFQ restores the victim: its p99 must collapse well below the
      // FIFO tail (in practice it drops to roughly the bare read cost).
      DISAGG_CHECK(r.oltp.Percentile(99) <= 0.5 * fifo_p99);
    }
    if (mode == kFifoAdmission || mode == kWfqAdmission) {
      // The bound must actually bind (ops get rejected), and it must bound
      // the victim's IN-SYSTEM tail — rejection costs plus the final
      // admitted wait plus service — well below the unbounded-queue
      // baseline. (End-to-end latency additionally pays for retry backoff,
      // which under FIFO+admission can rival the FIFO queueing it replaces:
      // admission alone bounds the queue, it does not isolate the victim.)
      DISAGG_CHECK(r.rejections > 0);
      DISAGG_CHECK(r.oltp_in_system.Percentile(99) <= 0.5 * fifo_p99);
    }
    if (mode == kWfqAdmission) {
      // Per-lane backlog accounting: the victim's own lane never fills, so
      // admission control only ever rejects the scan tenant.
      DISAGG_CHECK(r.oltp_busy == 0);
    }
  }
}
BENCHMARK(BM_E23_TenantIsolation)
    ->Arg(kFifo)
    ->Arg(kFifoAdmission)
    ->Arg(kWfq)
    ->Arg(kWfqAdmission)
    ->ArgName("mode")
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
