// Experiment E20 (DESIGN.md): "scalable transactions in disaggregated
// databases" (Sec. 4, future directions) — multiple writers over shared
// disaggregated memory with a global CAS lock table, vs the single-writer
// discipline of today's cloud databases.
//  - writer-count sweep on disjoint keys: aggregate simulated throughput
//    scales with writers (parallel fan-out);
//  - single-writer baseline: the same total work funnels through one node
//    and serializes;
//  - skewed keys: remote lock conflicts appear, bounding the win — the
//    challenge the paper flags for multi-writer designs.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/multi_writer.h"
#include "workload/ycsb.h"

namespace disagg {
namespace {

constexpr int kOpsPerWriter = 100;

void BM_E20_WriterSweep_DisjointKeys(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  Fabric fabric;
  MultiWriterDb db(&fabric, /*max_pages=*/512);
  std::vector<std::unique_ptr<MultiWriterDb::Writer>> fleet;
  for (int w = 0; w < writers; w++) fleet.push_back(db.AttachWriter());
  std::vector<NetContext> ctx(writers);
  for (auto _ : state) {
    for (int w = 0; w < writers; w++) {
      for (int i = 0; i < kOpsPerWriter; i++) {
        const uint64_t key = static_cast<uint64_t>(w) * 100000 + i;
        DISAGG_CHECK_OK(fleet[w]->Put(&ctx[w], key, "row-payload-64bytes"));
      }
    }
  }
  NetContext total;
  MergeParallel(&total, ctx.data(), ctx.size());
  const uint64_t ops = static_cast<uint64_t>(writers) * kOpsPerWriter;
  state.counters["agg_sim_writes_per_sec"] =
      total.sim_ns == 0 ? 0
                        : static_cast<double>(ops) * 1e9 /
                              static_cast<double>(total.sim_ns);
  state.counters["sim_ms_wall"] = static_cast<double>(total.sim_ns) / 1e6;
}

void BM_E20_SingleWriterBaseline_SameTotalWork(benchmark::State& state) {
  const int equivalent_writers = static_cast<int>(state.range(0));
  Fabric fabric;
  MultiWriterDb db(&fabric, 512);
  auto writer = db.AttachWriter();
  NetContext ctx;
  for (auto _ : state) {
    for (int w = 0; w < equivalent_writers; w++) {
      for (int i = 0; i < kOpsPerWriter; i++) {
        const uint64_t key = static_cast<uint64_t>(w) * 100000 + i;
        DISAGG_CHECK_OK(writer->Put(&ctx, key, "row-payload-64bytes"));
      }
    }
  }
  const uint64_t ops =
      static_cast<uint64_t>(equivalent_writers) * kOpsPerWriter;
  state.counters["agg_sim_writes_per_sec"] =
      static_cast<double>(ops) * 1e9 / static_cast<double>(ctx.sim_ns);
  state.counters["sim_ms_wall"] = static_cast<double>(ctx.sim_ns) / 1e6;
}

void BM_E20_SkewedKeys_LockConflicts(benchmark::State& state) {
  // REAL concurrency: four threads hammer the same Zipfian keys, colliding
  // on the remote CAS lock table. Busy = no-wait conflict, retried.
  const int writers = 4;
  const uint64_t key_space = static_cast<uint64_t>(state.range(0));
  Fabric fabric;
  MultiWriterDb db(&fabric, 512);
  std::atomic<uint64_t> attempts{0}, conflicts{0};
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; w++) {
      threads.emplace_back([&, w]() {
        auto writer = db.AttachWriter();
        NetContext ctx;
        ZipfianGenerator zipf(key_space, 0.99, 23 + w);
        for (int i = 0; i < kOpsPerWriter; i++) {
          const uint64_t key = zipf.Next();
          for (int attempt = 0; attempt < 64; attempt++) {
            attempts.fetch_add(1);
            Status st = writer->Put(&ctx, key, "contended-row");
            if (st.ok()) break;
            DISAGG_CHECK(st.IsBusy());
            conflicts.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  state.counters["conflict_rate"] =
      static_cast<double>(conflicts.load()) /
      static_cast<double>(attempts.load());
}

BENCHMARK(BM_E20_WriterSweep_DisjointKeys)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E20_SingleWriterBaseline_SameTotalWork)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E20_SkewedKeys_LockConflicts)
    ->Arg(4)
    ->Arg(32)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
