// Experiment E5 (DESIGN.md): remote-PM persistence disciplines, reproducing
// Kalia et al. (Sec. 2.3):
//  - a bare one-sided WRITE is fastest but NOT persistent (data can sit in
//    NIC/PCIe buffers);
//  - WRITE + flush-READ guarantees persistence at the cost of a second
//    round trip;
//  - a two-sided RPC persist needs ONE round trip and beats the one-sided
//    persist — the paper's counterintuitive result.
// Size sweep 64 B .. 64 KB.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "pm/pm_node.h"

namespace disagg {
namespace {

constexpr int kWrites = 200;

struct PmFixture {
  PmFixture() : pm(&fabric, "pm0", 256 << 20), client(&fabric, &pm) {
    auto a = pm.AllocLocal(1 << 20);
    DISAGG_CHECK(a.ok());
    addr = *a;
  }
  Fabric fabric;
  PmNode pm;
  PmClient client;
  GlobalAddr addr;
};

void BM_E5_UnsafeWrite_NotPersistent(benchmark::State& state) {
  PmFixture f;
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kWrites; i++) {
      DISAGG_CHECK_OK(f.client.WriteUnsafe(&ctx, f.addr, data));
    }
  }
  f.pm.Crash();  // demonstrate: everything written above is GONE
  bench::ReportSim(state, ctx, kWrites);
  state.counters["survives_crash"] = 0;
}

void BM_E5_OneSidedPersist_WriteThenFlushRead(benchmark::State& state) {
  PmFixture f;
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kWrites; i++) {
      DISAGG_CHECK_OK(f.client.WritePersistOneSided(&ctx, f.addr, data));
    }
  }
  bench::ReportSim(state, ctx, kWrites);
  state.counters["survives_crash"] = 1;
}

void BM_E5_TwoSidedPersist_Rpc(benchmark::State& state) {
  PmFixture f;
  const std::string data(static_cast<size_t>(state.range(0)), 'x');
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kWrites; i++) {
      DISAGG_CHECK_OK(f.client.WritePersistRpc(&ctx, f.addr, data));
    }
  }
  bench::ReportSim(state, ctx, kWrites);
  state.counters["survives_crash"] = 1;
}

BENCHMARK(BM_E5_UnsafeWrite_NotPersistent)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(65536)
    ->Iterations(1);
BENCHMARK(BM_E5_OneSidedPersist_WriteThenFlushRead)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(65536)
    ->Iterations(1);
BENCHMARK(BM_E5_TwoSidedPersist_Rpc)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(65536)
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
