// Experiment E4 (DESIGN.md): disaggregated OLAP (Sec. 2.2).
//  - Virtual-warehouse elasticity: query time shrinks near-linearly as VWs
//    are added, independent of data placement (Snowflake's claim).
//  - Min-max (zone-map) pruning: selective queries skip most immutable
//    files before any object-store I/O (Snowflake's light-weight index);
//    "AnalyticDB-style" full scanning is the no-pruning baseline.
//  - VW local file caches turn repeat queries from object-store-bound into
//    SSD-bound.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "core/snowflake_db.h"
#include "workload/tpch_lite.h"

namespace disagg {
namespace {

constexpr size_t kRows = 20000;
constexpr size_t kRowsPerFile = 1000;

std::unique_ptr<SnowflakeDb> LoadedDb(Fabric* fabric) {
  auto db = std::make_unique<SnowflakeDb>(fabric, kRowsPerFile);
  NetContext load;
  auto rows = tpch::GenLineitem(kRows);
  // Sort by shipday so zone maps become selective (clustered layout, as
  // loading pipelines produce in practice).
  rows = ops::SortBy(nullptr, std::move(rows), {4});
  DISAGG_CHECK_OK(db->LoadTable(&load, "lineitem", tpch::LineitemSchema(),
                                rows));
  return db;
}

void BM_E4_VwElasticity(benchmark::State& state) {
  const int vws = static_cast<int>(state.range(0));
  Fabric fabric;
  auto db = LoadedDb(&fabric);
  db->SetWarehouses(vws);
  ops::Fragment full_scan;
  full_scan.aggs = {{AggFunc::kSum, 2}, {AggFunc::kCount, 0}};
  uint64_t sim_ns = 0;
  for (auto _ : state) {
    auto result = db->Query("lineitem", full_scan, /*use_pruning=*/false);
    DISAGG_CHECK(result.ok());
    sim_ns += result->sim_ns;
  }
  state.counters["sim_ms"] = static_cast<double>(sim_ns) / 1e6;
}

void BM_E4_Pruning(benchmark::State& state) {
  const bool use_pruning = state.range(0) != 0;
  Fabric fabric;
  auto db = LoadedDb(&fabric);
  ops::Fragment selective;
  selective.predicate.And(4, CmpOp::kGe, int64_t{2400});  // newest ~5%
  selective.aggs = {{AggFunc::kSum, 2}, {AggFunc::kCount, 0}};
  uint64_t sim_ns = 0;
  size_t scanned = 0, pruned = 0;
  for (auto _ : state) {
    auto result = db->Query("lineitem", selective, use_pruning);
    DISAGG_CHECK(result.ok());
    sim_ns += result->sim_ns;
    scanned = result->files_scanned;
    pruned = result->files_pruned;
  }
  state.counters["sim_ms"] = static_cast<double>(sim_ns) / 1e6;
  state.counters["files_scanned"] = static_cast<double>(scanned);
  state.counters["files_pruned"] = static_cast<double>(pruned);
}

void BM_E4_WarmCacheRepeatQuery(benchmark::State& state) {
  Fabric fabric;
  auto db = LoadedDb(&fabric);
  ops::Fragment full_scan;
  full_scan.aggs = {{AggFunc::kSum, 2}};
  auto cold = db->Query("lineitem", full_scan, false);
  DISAGG_CHECK(cold.ok());
  uint64_t warm_ns = 0;
  for (auto _ : state) {
    auto warm = db->Query("lineitem", full_scan, false);
    DISAGG_CHECK(warm.ok());
    warm_ns += warm->sim_ns;
  }
  state.counters["cold_sim_ms"] = static_cast<double>(cold->sim_ns) / 1e6;
  state.counters["warm_sim_ms"] = static_cast<double>(warm_ns) / 1e6;
}

BENCHMARK(BM_E4_VwElasticity)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_E4_Pruning)->Arg(0)->Arg(1)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_E4_WarmCacheRepeatQuery)->Iterations(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
