// Experiment E6 (DESIGN.md): Exadata's counterintuitive observation
// (Sec. 2.3) — accessing PM REMOTELY over RDMA is faster than accessing it
// LOCALLY through the kernel I/O stack, because the stack's software
// overhead (~10 us) dwarfs both the media and the network round trip.
// Sweep read sizes; the gap narrows as media/byte costs grow but the local
// path never catches up at these sizes.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "pm/pm_node.h"

namespace disagg {
namespace {

constexpr int kReads = 300;

void BM_E6_LocalPm_ThroughIoStack(benchmark::State& state) {
  Fabric fabric;
  PmNode pm(&fabric, "pm0", 256 << 20);
  PmClient client(&fabric, &pm);
  auto addr = pm.AllocLocal(1 << 20);
  DISAGG_CHECK(addr.ok());
  std::string buf(static_cast<size_t>(state.range(0)), '\0');
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kReads; i++) {
      DISAGG_CHECK_OK(
          client.ReadLocalViaIoStack(&ctx, *addr, buf.data(), buf.size()));
    }
  }
  bench::ReportSim(state, ctx, kReads);
}

void BM_E6_RemotePm_OverRdma(benchmark::State& state) {
  Fabric fabric;
  PmNode pm(&fabric, "pm0", 256 << 20);
  PmClient client(&fabric, &pm);
  auto addr = pm.AllocLocal(1 << 20);
  DISAGG_CHECK(addr.ok());
  std::string buf(static_cast<size_t>(state.range(0)), '\0');
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kReads; i++) {
      DISAGG_CHECK_OK(client.ReadRemote(&ctx, *addr, buf.data(), buf.size()));
    }
  }
  bench::ReportSim(state, ctx, kReads);
}

BENCHMARK(BM_E6_LocalPm_ThroughIoStack)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(16384)
    ->Iterations(1);
BENCHMARK(BM_E6_RemotePm_OverRdma)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(16384)
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
