// Experiment E25 (DESIGN.md): per-engine private log quorums vs one
// disaggregated shared-log service, under multi-tenant ephemeral compute.
//
// Scenario: N tenants each drive a WAL append stream from a sequence of M
// *ephemeral* compute nodes — each compute session replays the tenant's log
// on spin-up (the recovery read), appends a fixed run of batches, then
// disappears; the next session starts from the durable log alone. The two
// deployments differ ONLY in the log tier behind the `LogBackend`
// interface:
//   - private: every tenant owns a 3-replica quorum segment (W=2, R=2) —
//     the per-engine arrangement Aurora-style architectures ship with.
//     Fleet cost: 3N log nodes.
//   - shared:  one 3-node SharedLogService (replication=3, W=2) carries all
//     N tenants as tags. Fleet cost: 3 log nodes, period.
//
// Halfway through the session sequence one log node is killed in each
// deployment. The private fleet needs no reconfiguration (each tenant's
// quorum absorbs its dead replica, paying per-append fan-out to a corpse
// forever after); the shared fleet runs a seal + view change and the whole
// fleet is clean again — the measured `reconfig_us` IS that recovery time.
//
// Measured per (mode, tenants, computes): appends/s over the tenants'
// parallel timelines, bytes on the wire (appends + recovery reads),
// append-batch p50/p99, recovery-read bytes, view-change recovery time,
// first-append latency after the kill, and the log-node fleet size.
//
// With DISAGG_E25_ASSERT=1 (the CI smoke stage) the shared-mode bench at
// the largest tenant count re-runs its private twin and self-checks:
//   - every append in both modes succeeded (quorums held through the kill);
//   - every tenant's final log replays completely, in strictly increasing
//     LSN order, with identical record counts across modes;
//   - the shared fleet is smaller (3 vs 3N), its recovery-read traffic is
//     within header overhead of the private fleet's (the tag index serves
//     exactly the tenant's records), and its TOTAL wire traffic is strictly
//     lower — after the kill the sealed view stops paying append fan-out to
//     the dead node, while every private quorum keeps shipping a growing
//     un-acked suffix to its corpse;
//   - the shared-mode view change after the kill took nonzero simulated
//     time and every tenant's first append after it succeeded.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "log/shared_log.h"
#include "storage/log_store.h"
#include "storage/quorum.h"
#include "txn/wal.h"

namespace disagg {
namespace {

bool AssertFromEnv() {
  const char* env = std::getenv("DISAGG_E25_ASSERT");
  return env != nullptr && env[0] == '1';
}

constexpr int kBatchesPerSession = 16;
constexpr int kRecordsPerBatch = 4;
constexpr size_t kRecordBytes = 120;

LogRecord Rec(Lsn lsn, int tenant) {
  LogRecord r;
  r.lsn = lsn;
  r.txn_id = static_cast<TxnId>(tenant + 1);
  r.type = LogType::kInsert;
  r.page_id = 1 + (lsn % 64);
  r.slot = static_cast<uint16_t>(lsn % 1000);
  r.payload = std::string(kRecordBytes, static_cast<char>('a' + tenant % 26));
  return r;
}

/// Private-mode backend: one tenant's own quorum segment behind the same
/// `LogBackend` interface the engines use. The recovery read mirrors the
/// engines' quorum sink: parallel durable-LSN probes over the fabric, then
/// a full stream from the most complete replica.
class PrivateQuorumBackend : public LogBackend {
 public:
  PrivateQuorumBackend(Fabric* fabric, int tenant)
      : fabric_(fabric) {
    ReplicatedSegment::Config cfg;
    cfg.replicas = 3;
    cfg.num_azs = 3;
    cfg.write_quorum = 2;
    cfg.read_quorum = 2;
    segment_ = std::make_unique<ReplicatedSegment>(
        fabric, cfg, "t" + std::to_string(tenant) + "-seg");
  }

  ReplicatedSegment* segment() { return segment_.get(); }

  Result<Lsn> Append(NetContext* ctx,
                     const std::vector<LogRecord>& records) override {
    return segment_->AppendLog(ctx, records);
  }

  Result<std::vector<LogRecord>> ReadAll(NetContext* ctx) override {
    std::vector<NetContext> branch(segment_->replica_count(), ctx->Fork());
    size_t best = 0;
    Lsn best_lsn = kInvalidLsn;
    bool reachable = false;
    for (size_t i = 0; i < segment_->replica_count(); i++) {
      LogStoreClient probe(fabric_, segment_->replica(i).node);
      auto lsn = probe.DurableLsn(&branch[i]);
      if (!lsn.ok()) continue;
      if (!reachable || *lsn > best_lsn) {
        reachable = true;
        best = i;
        best_lsn = *lsn;
      }
    }
    JoinParallel(ctx, branch.data(), branch.size());
    if (!reachable) return Status::Unavailable("no segment replica reachable");
    LogStoreClient reader(fabric_, segment_->replica(best).node);
    return reader.ReadFrom(ctx, 0, ~0ull);
  }

 private:
  Fabric* fabric_;
  std::unique_ptr<ReplicatedSegment> segment_;
};

struct E25Result {
  uint64_t records = 0;       // records durably appended, all tenants
  uint64_t append_errors = 0; // failed batch appends (must stay 0)
  uint64_t wall_ns = 0;       // max over the tenants' parallel timelines
  uint64_t wire_bytes = 0;    // bytes on the fabric, appends + recovery
  uint64_t recovery_read_bytes = 0;  // spin-up replay traffic only
  Histogram batch_lat;
  uint64_t reconfig_ns = 0;   // shared: seal + view change after the kill
  uint64_t post_kill_first_append_ns = 0;  // max over tenants
  int log_nodes = 0;
  bool replay_ok = true;      // final per-tenant replay complete + ordered

  double AppendsPerSec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(records) * 1e9 /
                              static_cast<double>(wall_ns);
  }
};

E25Result RunMode(bool shared, int tenants, int computes) {
  Fabric fabric;
  E25Result res;

  std::unique_ptr<SharedLogService> slog;
  std::vector<std::unique_ptr<LogBackend>> logs;
  if (shared) {
    slog = std::make_unique<SharedLogService>(&fabric,
                                              SharedLogService::Config{});
    for (int t = 0; t < tenants; t++) {
      logs.push_back(std::make_unique<SharedLogBackend>(
          &fabric, slog.get(), static_cast<LogTag>(t + 1)));
    }
    res.log_nodes = static_cast<int>(slog->num_log_nodes());
  } else {
    for (int t = 0; t < tenants; t++) {
      logs.push_back(std::make_unique<PrivateQuorumBackend>(&fabric, t));
    }
    res.log_nodes = 3 * tenants;
  }

  std::vector<NetContext> tctx(static_cast<size_t>(tenants));
  std::vector<Lsn> next_lsn(static_cast<size_t>(tenants), 1);
  for (int t = 0; t < tenants; t++) {
    tctx[t].tenant = static_cast<uint32_t>(t + 1);
  }

  const int kill_session = computes / 2;
  bool killed = false;

  for (int s = 0; s < computes; s++) {
    if (s == kill_session) {
      // One log node dies in each deployment. The shared fleet seals and
      // installs a clean view (charged to an admin context — that IS the
      // recovery time); each private quorum just keeps fanning out to its
      // corpse. Tenant 0's private segment loses replica 0.
      if (shared) {
        fabric.node(slog->log_node(0))->Fail();
        NetContext admin;
        DISAGG_CHECK(slog->SealAndReconfigure(&admin).ok());
        res.reconfig_ns = admin.sim_ns;
      } else {
        auto* priv = static_cast<PrivateQuorumBackend*>(logs[0].get());
        fabric.node(priv->segment()->replica(0).node)->Fail();
      }
      killed = true;
    }
    for (int t = 0; t < tenants; t++) {
      NetContext* ctx = &tctx[static_cast<size_t>(t)];
      if (s > 0) {
        // Ephemeral spin-up: the fresh compute node replays the tenant's
        // whole log before serving (it has no buffer, no checkpoint).
        const uint64_t wire_before = ctx->bytes_in + ctx->bytes_out;
        auto replay = logs[t]->ReadAll(ctx);
        DISAGG_CHECK(replay.ok());
        DISAGG_CHECK(replay->size() == static_cast<size_t>(next_lsn[t] - 1));
        res.recovery_read_bytes +=
            ctx->bytes_in + ctx->bytes_out - wire_before;
      }
      bool first_batch_of_session = true;
      for (int b = 0; b < kBatchesPerSession; b++) {
        std::vector<LogRecord> batch;
        batch.reserve(kRecordsPerBatch);
        for (int r = 0; r < kRecordsPerBatch; r++) {
          batch.push_back(Rec(next_lsn[t] + static_cast<Lsn>(r), t));
        }
        const uint64_t before = ctx->sim_ns;
        auto tail = logs[t]->Append(ctx, batch);
        const uint64_t lat = ctx->sim_ns - before;
        if (!tail.ok()) {
          res.append_errors++;
          continue;
        }
        next_lsn[t] += kRecordsPerBatch;
        res.records += kRecordsPerBatch;
        res.batch_lat.Record(lat);
        if (killed && s == kill_session && first_batch_of_session) {
          res.post_kill_first_append_ns =
              std::max(res.post_kill_first_append_ns, lat);
        }
        first_batch_of_session = false;
      }
    }
  }

  // Final audit: every tenant's log replays completely and in order.
  for (int t = 0; t < tenants; t++) {
    NetContext* ctx = &tctx[static_cast<size_t>(t)];
    auto replay = logs[t]->ReadAll(ctx);
    if (!replay.ok() ||
        replay->size() != static_cast<size_t>(next_lsn[t] - 1)) {
      res.replay_ok = false;
      continue;
    }
    Lsn prev = kInvalidLsn;
    for (const LogRecord& r : *replay) {
      if (r.lsn <= prev) res.replay_ok = false;
      prev = r.lsn;
    }
  }

  for (const NetContext& c : tctx) {
    res.wall_ns = std::max(res.wall_ns, c.sim_ns);
    res.wire_bytes += c.bytes_in + c.bytes_out;
  }
  return res;
}

void BM_E25_SharedLogVsPrivate(benchmark::State& state) {
  const int tenants = static_cast<int>(state.range(0));
  const int computes = static_cast<int>(state.range(1));
  const bool shared = state.range(2) == 1;

  E25Result res;
  for (auto _ : state) {
    res = RunMode(shared, tenants, computes);
  }

  state.counters["appends_per_sec"] = res.AppendsPerSec();
  state.counters["records"] = static_cast<double>(res.records);
  state.counters["wire_mb"] = static_cast<double>(res.wire_bytes) / 1e6;
  state.counters["recovery_read_mb"] =
      static_cast<double>(res.recovery_read_bytes) / 1e6;
  state.counters["batch_p50_us"] = res.batch_lat.Percentile(50) / 1e3;
  state.counters["batch_p99_us"] = res.batch_lat.Percentile(99) / 1e3;
  state.counters["reconfig_us"] = static_cast<double>(res.reconfig_ns) / 1e3;
  state.counters["post_kill_append_us"] =
      static_cast<double>(res.post_kill_first_append_ns) / 1e3;
  state.counters["log_nodes"] = static_cast<double>(res.log_nodes);
  state.SetLabel(shared ? "shared-log" : "private-quorums");

  DISAGG_CHECK(res.append_errors == 0);
  DISAGG_CHECK(res.replay_ok);

  if (AssertFromEnv() && shared && tenants >= 4 && computes >= 8) {
    const E25Result priv = RunMode(/*shared=*/false, tenants, computes);
    DISAGG_CHECK(priv.append_errors == 0 && priv.replay_ok);
    DISAGG_CHECK(res.records == priv.records);
    DISAGG_CHECK(res.log_nodes < priv.log_nodes);
    // Recovery replays move the same records in both modes; the shared
    // tag index must not add more than protocol-header overhead on top.
    DISAGG_CHECK(static_cast<double>(res.recovery_read_bytes) <=
                 1.05 * static_cast<double>(priv.recovery_read_bytes));
    // Total wire traffic: the sealed view stops paying fan-out to the dead
    // node, while each private quorum ships an ever-growing un-acked
    // suffix to its corpse — shared must come out strictly cheaper.
    DISAGG_CHECK(res.wire_bytes < priv.wire_bytes);
    DISAGG_CHECK(res.reconfig_ns > 0);
    DISAGG_CHECK(res.post_kill_first_append_ns > 0);
  }
}
BENCHMARK(BM_E25_SharedLogVsPrivate)
    ->ArgsProduct({{2, 4}, {8}, {0, 1}})
    ->ArgNames({"tenants", "computes", "shared"})
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
