// Experiment E7 (DESIGN.md): PilotDB's PM-tier optimizations (Sec. 2.3).
//  - Compute-node-driven logging (FAA + one-sided WRITE + flush) vs
//    RPC-driven logging: the one-sided path never consumes PM-server CPU.
//  - Optimistic page reads: sweep the fraction of reads that catch the
//    background applier lagging; stale reads pay an extra log-suffix read
//    plus local replay, fresh reads cost a single READ.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "pm/pilot_log.h"

namespace disagg {
namespace {

constexpr int kOps = 200;

struct PilotFixture {
  PilotFixture()
      : pm(&fabric, "pm0", 256 << 20),
        log(&fabric, &pm, 8 << 20, /*max_pages=*/64) {
    NetContext setup;
    for (PageId id = 1; id <= 16; id++) {
      Page page(id);
      DISAGG_CHECK(page.Insert("seed").ok());
      page.set_lsn(1);
      DISAGG_CHECK_OK(log.CreatePage(&setup, page));
    }
  }
  Fabric fabric;
  PmNode pm;
  PilotLog log;
  Lsn next_lsn = 2;

  LogRecord Update(PageId page) {
    LogRecord r;
    r.lsn = next_lsn++;
    r.txn_id = 1;
    r.type = LogType::kUpdate;
    r.page_id = page;
    r.slot = 0;
    r.payload = "upd!";
    return r;
  }
};

void BM_E7_Logging(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? PilotLog::LogMode::kOneSided
                                        : PilotLog::LogMode::kRpc;
  PilotFixture f;
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kOps; i++) {
      DISAGG_CHECK_OK(
          f.log.AppendLog(&ctx, {f.Update(1 + i % 16)}, mode));
    }
  }
  bench::ReportSim(state, ctx, kOps);
  state.counters["server_rpcs"] = static_cast<double>(ctx.rpcs);
}

void BM_E7_OptimisticReads_StaleFractionSweep(benchmark::State& state) {
  // range = percent of reads that observe an outdated page.
  const int stale_pct = static_cast<int>(state.range(0));
  PilotFixture f;
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kOps; i++) {
      const PageId page = 1 + i % 16;
      DISAGG_CHECK_OK(f.log.AppendLog(&ctx, {f.Update(page)}));
      const bool keep_stale = (i % 100) < stale_pct;
      if (!keep_stale) f.log.ApplyOnPmSide();
      auto got = f.log.ReadPage(&ctx, page, f.next_lsn - 1);
      DISAGG_CHECK(got.ok());
    }
  }
  bench::ReportSim(state, ctx, kOps);
  state.counters["fast_reads"] = static_cast<double>(f.log.stats().fast_reads);
  state.counters["replay_reads"] =
      static_cast<double>(f.log.stats().replay_reads);
}

BENCHMARK(BM_E7_Logging)->Arg(0)->Arg(1)->Iterations(1);
BENCHMARK(BM_E7_OptimisticReads_StaleFractionSweep)
    ->Arg(0)
    ->Arg(10)
    ->Arg(50)
    ->Arg(100)
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
