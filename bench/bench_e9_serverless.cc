// Experiment E9 (DESIGN.md): PolarDB Serverless's shared remote buffer pool
// (Sec. 3.1). Compute-node-count sweep on a read-mostly workload:
//  - memory footprint: private-buffer designs replicate the working set per
//    node; the shared pool holds ONE copy regardless of node count;
//  - freshness: secondaries revalidate cached pages with one small read
//    instead of replaying logs — cheap when the working set is warm.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "core/serverless_db.h"
#include "workload/ycsb.h"

namespace disagg {
namespace {

constexpr uint64_t kKeys = 500;
constexpr int kOpsPerNode = 500;

void BM_E9_ComputeNodeSweep(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Fabric fabric;
  ServerlessDb db(&fabric, /*max_pages=*/256);
  auto primary = db.AttachCompute(16, /*writer=*/true);
  NetContext setup;
  for (uint64_t k = 0; k < kKeys; k++) {
    DISAGG_CHECK_OK(primary->Put(&setup, k, "serverless-row-payload"));
  }
  std::vector<std::unique_ptr<ServerlessDb::Compute>> secondaries;
  for (int n = 1; n < nodes; n++) {
    secondaries.push_back(db.AttachCompute(16, false));
  }
  YcsbGenerator gen(kKeys, YcsbGenerator::Mix::B(), 0.99, 5);
  NetContext primary_ctx;
  std::vector<NetContext> secondary_ctx(secondaries.size());
  for (auto _ : state) {
    for (int i = 0; i < kOpsPerNode; i++) {
      auto op = gen.Next();
      if (op.type == YcsbGenerator::OpType::kUpdate) {
        DISAGG_CHECK_OK(primary->Put(&primary_ctx, op.key, "updated-row!!"));
      } else {
        DISAGG_CHECK(primary->Get(&primary_ctx, op.key).ok());
      }
      // Every secondary reads the same key stream (read-only replicas).
      for (size_t s = 0; s < secondaries.size(); s++) {
        DISAGG_CHECK(secondaries[s]->Get(&secondary_ctx[s], op.key).ok());
      }
    }
  }
  NetContext total = primary_ctx;
  MergeParallel(&total, secondary_ctx.data(), secondary_ctx.size());
  bench::ReportSim(state, total, kOpsPerNode);
  // Shared pool memory: one copy total. Private-buffer baseline: one copy
  // per node.
  const double pool_mb =
      static_cast<double>(db.pool()->allocated_bytes()) / 1e6;
  state.counters["shared_pool_mb"] = pool_mb;
  state.counters["private_buffers_mb_equiv"] = pool_mb * nodes;
  uint64_t local_hits = 0;
  for (const auto& s : secondaries) local_hits += s->pool_stats().local_hits;
  state.counters["secondary_local_hits"] = static_cast<double>(local_hits);
}

BENCHMARK(BM_E9_ComputeNodeSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
