// Experiment E8 / Figure 2 (DESIGN.md): shared-memory design atop
// disaggregated memory — LegoBase's two-tier buffer management and fast
// recovery (Sec. 3.1).
//  - Local-cache-fraction sweep on a Zipfian YCSB read workload: throughput
//    climbs steeply with even a small local (L1) cache because the hot set
//    concentrates; the remote-memory L2 absorbs the rest, keeping misses
//    off storage.
//  - Recovery: restart from the remote-memory checkpoint (fast) vs from
//    disaggregated storage (slow) after the same crash.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "memnode/two_tier_cache.h"
#include "txn/two_tier_aries.h"
#include "workload/ycsb.h"

namespace disagg {
namespace {

constexpr size_t kPages = 256;
constexpr int kOps = 2000;

void BM_Fig2_LocalCacheFractionSweep(benchmark::State& state) {
  // range = L1 capacity as a percent of the working set.
  const size_t l1_pages =
      std::max<size_t>(1, kPages * static_cast<size_t>(state.range(0)) / 100);
  Fabric fabric;
  MemoryNode pool(&fabric, "mem0", 512 << 20);
  InMemoryPageSource storage;
  for (PageId id = 0; id < kPages; id++) {
    Page page(id);
    DISAGG_CHECK(page.Insert("payload").ok());
    storage.Seed(page);
  }
  TwoTierCache cache(&fabric, &pool, &storage, l1_pages, kPages);
  // Set DISAGG_TRACE=<ring capacity> to dump a per-op JSON trace of this run.
  auto trace = bench::MaybeTraceFromEnv(&fabric);
  ZipfianGenerator zipf(kPages, 0.99, 11);
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kOps; i++) {
      DISAGG_CHECK(cache.Get(&ctx, zipf.Next()).ok());
    }
  }
  bench::ReportSim(state, ctx, kOps);
  bench::DumpTrace(trace, "fig2_local_cache_sweep");
  state.counters["l1_hit_rate"] = cache.stats().L1HitRate();
  state.counters["l2_hits"] = static_cast<double>(cache.stats().l2_hits);
  state.counters["storage_misses"] =
      static_cast<double>(cache.stats().misses);
}

struct RecoveryFixture {
  RecoveryFixture()
      : pool(&fabric, "mem0", 512 << 20),
        aries(&fabric, &pool, &storage, &sink),
        wal(&sink) {
    NetContext setup;
    std::map<PageId, Page> pages;
    Lsn lsn = 0;
    for (PageId id = 0; id < 64; id++) {
      Page page(id);
      DISAGG_CHECK(page.Insert("checkpointed").ok());
      LogRecord r;
      r.txn_id = 1;
      r.type = LogType::kInsert;
      r.page_id = id;
      r.slot = 0;
      r.payload = "checkpointed";
      lsn = wal.Append(&r);
      page.set_lsn(lsn);
      pages.emplace(id, std::move(page));
    }
    LogRecord commit;
    commit.txn_id = 1;
    commit.type = LogType::kTxnCommit;
    commit.page_id = kInvalidPageId;
    wal.Append(&commit);
    DISAGG_CHECK_OK(wal.Flush(&setup));
    DISAGG_CHECK_OK(aries.Checkpoint(&setup, pages, lsn));
    // A short tail of post-checkpoint commits to replay.
    for (int i = 0; i < 32; i++) {
      LogRecord r;
      r.txn_id = 2 + i;
      r.type = LogType::kUpdate;
      r.page_id = i % 64;
      r.slot = 0;
      r.payload = "post-checkpt";
      r.undo_payload = "checkpointed";
      wal.Append(&r);
      LogRecord c;
      c.txn_id = 2 + i;
      c.type = LogType::kTxnCommit;
      c.page_id = kInvalidPageId;
      wal.Append(&c);
    }
    DISAGG_CHECK_OK(wal.Flush(&setup));
  }
  Fabric fabric;
  MemoryNode pool;
  InMemoryPageSource storage;
  LocalDiskSink sink;
  TwoTierAries aries;
  WalManager wal;
};

void BM_Fig2_RecoveryFromRemoteMemory(benchmark::State& state) {
  RecoveryFixture f;
  NetContext ctx;
  bool used_remote = false;
  for (auto _ : state) {
    auto out = f.aries.Recover(&ctx, &used_remote);
    DISAGG_CHECK(out.ok());
    DISAGG_CHECK(used_remote);
  }
  state.counters["recovery_sim_ms"] = static_cast<double>(ctx.sim_ns) / 1e6;
}

void BM_Fig2_RecoveryFromStorage(benchmark::State& state) {
  RecoveryFixture f;
  f.aries.InvalidateRemoteTier();
  NetContext ctx;
  bool used_remote = true;
  for (auto _ : state) {
    auto out = f.aries.Recover(&ctx, &used_remote);
    DISAGG_CHECK(out.ok());
    DISAGG_CHECK(!used_remote);
  }
  state.counters["recovery_sim_ms"] = static_cast<double>(ctx.sim_ns) / 1e6;
}

BENCHMARK(BM_Fig2_LocalCacheFractionSweep)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Iterations(1);
BENCHMARK(BM_Fig2_RecoveryFromRemoteMemory)->Iterations(1);
BENCHMARK(BM_Fig2_RecoveryFromStorage)->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
