// Experiment E11 (DESIGN.md): effect of memory disaggregation on OLAP
// DBMSs (Zhang et al., VLDB'20; Sec. 3.2). TPC-H-lite Q1/Q3/Q6 with the
// lineitem table split between local memory and the remote pool, sweeping
// the local fraction:
//  - "app-managed" (MonetDB-like): the DBMS pins the hottest prefix of the
//    data locally and reads only the remainder remotely;
//  - "OS-managed" (PostgreSQL-like): placement is oblivious — pages go
//    remote uniformly, and even the buffer/disk cache lives in the remote
//    pool, so cached data still crosses the network.
// Expected shape: both degrade as local memory shrinks; app-managed
// degrades later and less steeply; the large remote pool still beats
// spilling to SSD (also shown).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "query/pushdown.h"
#include "storage/page.h"
#include "workload/tpch_lite.h"

namespace disagg {
namespace {

constexpr size_t kRows = 20000;

// Scans `rows` with the given local fraction and placement policy, charging
// remote rows at RDMA cost (app-managed reads them in one sequential pull;
// OS-managed pays page-granular traffic through the remote disk cache).
std::vector<Tuple> ScanTable(NetContext* ctx, const std::vector<Tuple>& rows,
                             double local_fraction, bool app_managed,
                             size_t row_bytes) {
  const auto rdma = InterconnectModel::Rdma();
  const auto dram = InterconnectModel::LocalDram();
  const size_t local_rows =
      static_cast<size_t>(static_cast<double>(rows.size()) * local_fraction);
  if (app_managed) {
    // Hot prefix local, cold suffix streamed remotely in one transfer.
    ctx->Charge(dram.ReadCost(local_rows * row_bytes));
    const size_t remote_rows = rows.size() - local_rows;
    if (remote_rows > 0) {
      ctx->Charge(rdma.ReadCost(remote_rows * row_bytes));
      ctx->bytes_in += remote_rows * row_bytes;
      ctx->round_trips++;
    }
  } else {
    // OS paging: placement oblivious, page-granular round trips; the disk
    // cache itself sits in remote memory so "cache hits" still move data.
    const size_t rows_per_page = kPageSize / row_bytes;
    const size_t total_pages = rows.size() / rows_per_page + 1;
    const size_t remote_pages = total_pages -
        static_cast<size_t>(static_cast<double>(total_pages) * local_fraction);
    for (size_t p = 0; p < remote_pages; p++) {
      ctx->Charge(rdma.ReadCost(kPageSize));
      ctx->bytes_in += kPageSize;
      ctx->round_trips++;
    }
    ctx->Charge(dram.ReadCost((total_pages - remote_pages) * kPageSize));
  }
  return rows;
}

void RunQuery(benchmark::State& state, int query) {
  const double local_fraction =
      static_cast<double>(state.range(0)) / 100.0;
  const bool app_managed = state.range(1) != 0;
  auto lineitem = tpch::GenLineitem(kRows);
  auto orders = tpch::GenOrders(kRows / 4);
  auto customer = tpch::GenCustomer(kRows / 40);
  NetContext ctx;
  for (auto _ : state) {
    auto scanned = ScanTable(&ctx, lineitem, local_fraction, app_managed, 40);
    switch (query) {
      case 1:
        benchmark::DoNotOptimize(tpch::Q1(&ctx, scanned, 2000));
        break;
      case 3:
        benchmark::DoNotOptimize(
            tpch::Q3(&ctx, customer, orders, scanned, "BUILDING"));
        break;
      default:
        benchmark::DoNotOptimize(tpch::Q6(&ctx, scanned, 100, 465, 24));
        break;
    }
  }
  state.counters["query_sim_ms"] = static_cast<double>(ctx.sim_ns) / 1e6;
  state.SetLabel(app_managed ? "app-managed(MonetDB-like)"
                             : "os-managed(PostgreSQL-like)");
}

void BM_E11_Q1(benchmark::State& state) { RunQuery(state, 1); }
void BM_E11_Q3(benchmark::State& state) { RunQuery(state, 3); }
void BM_E11_Q6(benchmark::State& state) { RunQuery(state, 6); }

// Spill baseline: without a remote pool, the out-of-memory fraction goes to
// SSD instead — the case a big disaggregated pool prevents.
void BM_E11_Q6_SpillToSsdBaseline(benchmark::State& state) {
  const double local_fraction =
      static_cast<double>(state.range(0)) / 100.0;
  auto lineitem = tpch::GenLineitem(kRows);
  const auto ssd = InterconnectModel::Ssd();
  NetContext ctx;
  for (auto _ : state) {
    const size_t spilled_rows = static_cast<size_t>(
        static_cast<double>(lineitem.size()) * (1.0 - local_fraction));
    const size_t pages = spilled_rows * 40 / kPageSize + 1;
    for (size_t p = 0; p < pages; p++) {
      ctx.Charge(ssd.ReadCost(kPageSize));
    }
    benchmark::DoNotOptimize(tpch::Q6(&ctx, lineitem, 100, 465, 24));
  }
  state.counters["query_sim_ms"] = static_cast<double>(ctx.sim_ns) / 1e6;
  state.SetLabel("spill-to-ssd");
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int managed : {1, 0}) {
    for (int pct : {100, 75, 50, 25, 10, 0}) {
      b->Args({pct, managed});
    }
  }
  b->Iterations(1);
}

BENCHMARK(BM_E11_Q1)->Apply(Sweep);
BENCHMARK(BM_E11_Q3)->Apply(Sweep);
BENCHMARK(BM_E11_Q6)->Apply(Sweep);
BENCHMARK(BM_E11_Q6_SpillToSsdBaseline)
    ->Arg(50)
    ->Arg(25)
    ->Arg(10)
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
