// Experiment E21 (DESIGN.md): ablations over the platform's design knobs —
// the "comprehensive performance evaluation ... different hardware
// platforms" the paper's Future Directions call for.
//  - Interconnect ablation: the SAME shared-memory YCSB workload with the
//    memory pool behind local-DRAM-, CXL-, and RDMA-class fabrics.
//  - Group-commit ablation: transactions per WAL flush vs commit cost.
//  - FPDB hybrid ablation: cache-only vs pushdown-only vs hybrid on
//    repeated selective queries.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "core/engines.h"
#include "memnode/two_tier_cache.h"
#include "query/hybrid_pushdown.h"
#include "workload/tpch_lite.h"
#include "workload/ycsb.h"

namespace disagg {
namespace {

void BM_E21_InterconnectAblation(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  const InterconnectModel model =
      tier == 0 ? InterconnectModel::LocalDram()
                : (tier == 1 ? InterconnectModel::Cxl()
                             : InterconnectModel::Rdma());
  Fabric fabric;
  MemoryNode pool(&fabric, "pool", 512 << 20, model);
  InMemoryPageSource storage;
  constexpr size_t kPages = 128;
  for (PageId id = 0; id < kPages; id++) {
    Page page(id);
    DISAGG_CHECK(page.Insert("row").ok());
    storage.Seed(page);
  }
  TwoTierCache cache(&fabric, &pool, &storage, /*l1=*/8, kPages);
  ZipfianGenerator zipf(kPages, 0.99, 29);
  NetContext ctx;
  constexpr int kOps = 2000;
  for (auto _ : state) {
    for (int i = 0; i < kOps; i++) {
      DISAGG_CHECK(cache.Get(&ctx, zipf.Next()).ok());
    }
  }
  bench::ReportSim(state, ctx, kOps);
  state.SetLabel(model.name);
}

void BM_E21_GroupCommitAblation(benchmark::State& state) {
  const int group = static_cast<int>(state.range(0));
  Fabric fabric;
  AuroraDb db(&fabric);
  NetContext ctx;
  constexpr int kRows = 240;
  for (auto _ : state) {
    for (int i = 0; i < kRows; i += group) {
      const TxnId txn = db.Begin();
      for (int g = 0; g < group && i + g < kRows; g++) {
        DISAGG_CHECK_OK(db.Insert(&ctx, txn,
                                  static_cast<uint64_t>(i + g),
                                  "grouped-row-payload"));
      }
      DISAGG_CHECK_OK(db.Commit(&ctx, txn));  // one quorum flush per group
    }
  }
  bench::ReportSim(state, ctx, kRows);
}

void BM_E21_HybridPushdownAblation(benchmark::State& state) {
  const auto mode = static_cast<HybridTable::Mode>(state.range(0));
  Fabric fabric;
  MemoryNode pool(&fabric, "fpdb", 512 << 20);
  NetContext setup;
  auto table = HybridTable::Create(&setup, &fabric, &pool,
                                   tpch::LineitemSchema(),
                                   tpch::GenLineitem(8000),
                                   /*segments=*/8, /*cache=*/4);
  DISAGG_CHECK(table.ok());
  ops::Fragment frag;
  frag.predicate.And(1, CmpOp::kLe, int64_t{5});
  frag.project = {0, 2};
  NetContext ctx;
  constexpr int kQueries = 6;
  for (auto _ : state) {
    for (int q = 0; q < kQueries; q++) {
      DISAGG_CHECK((*table)->Query(&ctx, frag, mode).ok());
    }
  }
  bench::ReportSim(state, ctx, kQueries);
  state.SetLabel(mode == HybridTable::Mode::kCacheOnly
                     ? "cache-only"
                     : (mode == HybridTable::Mode::kPushdownOnly
                            ? "pushdown-only"
                            : "hybrid(FPDB)"));
}

BENCHMARK(BM_E21_InterconnectAblation)->Arg(0)->Arg(1)->Arg(2)->Iterations(1);
BENCHMARK(BM_E21_GroupCommitAblation)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(1);
BENCHMARK(BM_E21_HybridPushdownAblation)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
