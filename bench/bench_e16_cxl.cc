// Experiment E16 (DESIGN.md): CXL for disaggregation (Sec. 3.3).
//  - Raw access latency: local DRAM vs CXL vs RDMA (DirectCXL reports RDMA
//    ~6.2x CXL).
//  - Ahn et al.: in-memory DBMS with main data on the far tier — TPC-C-like
//    point accesses barely degrade on CXL (prefetch-friendly, small rows);
//    TPC-DS/H-like scans lose ~7-27%; on RDMA both collapse.
//  - Tiered (explicit hot/cold placement) vs unified (oblivious) placement.
//  - Pond: pool fraction sweep -> stranded-memory fraction.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "common/random.h"
#include "cxl/cxl_memory.h"
#include "cxl/pond.h"
#include "cxl/tiering.h"
#include "workload/tpch_lite.h"

namespace disagg {
namespace {

void BM_E16_RawLatency(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  const InterconnectModel model =
      tier == 0 ? InterconnectModel::LocalDram()
                : (tier == 1 ? InterconnectModel::Cxl()
                             : InterconnectModel::Rdma());
  Fabric fabric;
  MemoryNode pool(&fabric, "tier", 64 << 20, model);
  auto addr = pool.AllocLocal(4096);
  DISAGG_CHECK(addr.ok());
  char buf[64];
  NetContext ctx;
  constexpr int kReads = 1000;
  for (auto _ : state) {
    for (int i = 0; i < kReads; i++) {
      DISAGG_CHECK_OK(fabric.Read(&ctx, *addr, buf, 64));
    }
  }
  bench::ReportSim(state, ctx, kReads);
  state.SetLabel(model.name);
}

// TPC-C-like: many small point accesses to hot rows that explicit tiering
// keeps in DRAM -> negligible drop on CXL.
void BM_E16_Ahn_TpccLike(benchmark::State& state) {
  const bool use_cxl = state.range(0) != 0;
  // Hot delta (64 MB) + cold main (448 MB). The all-DRAM baseline has DRAM
  // for everything; the CXL config only fits the delta locally.
  CxlTieringManager mgr(use_cxl ? (128ull << 20) : (1024ull << 20),
                        1024ull << 20, CxlPlacementPolicy::kTiered);
  DISAGG_CHECK_OK(mgr.AddSegment(1, "delta", 64 << 20, 1000));
  DISAGG_CHECK_OK(mgr.AddSegment(2, "main", 448 << 20, 1));
  Random rng(5);
  NetContext ctx;
  constexpr int kTxns = 2000;
  for (auto _ : state) {
    for (int i = 0; i < kTxns; i++) {
      // 95% of OLTP accesses hit the delta/hot segment, small rows; the
      // hardware prefetcher and txn logic hide most of the rest (about half
      // a microsecond of compute per transaction).
      const uint64_t seg = rng.Bernoulli(0.95) ? 1 : 2;
      DISAGG_CHECK_OK(mgr.Access(&ctx, seg, 64));
      ctx.Charge(500);
    }
  }
  bench::ReportSim(state, ctx, kTxns);
  state.SetLabel(use_cxl ? "main-on-cxl" : "all-dram");
}

// TPC-DS/H-like: bulk scans over the cold main store -> visible drop.
void BM_E16_Ahn_TpcdsLike(benchmark::State& state) {
  const bool use_cxl = state.range(0) != 0;
  CxlTieringManager mgr(use_cxl ? (128ull << 20) : (1024ull << 20),
                        1024ull << 20, CxlPlacementPolicy::kTiered);
  DISAGG_CHECK_OK(mgr.AddSegment(1, "delta", 64 << 20, 1000));
  DISAGG_CHECK_OK(mgr.AddSegment(2, "main", 448 << 20, 1));
  NetContext ctx;
  constexpr int kScans = 50;
  for (auto _ : state) {
    for (int i = 0; i < kScans; i++) {
      // Analytical scan: stream 4 MB of the main store + delta probes, plus
      // the join/aggregation compute that dominates TPC-DS query time and
      // dilutes the far-memory slowdown to the 7-27% Ahn et al. report.
      DISAGG_CHECK_OK(mgr.Access(&ctx, 2, 4 << 20));
      DISAGG_CHECK_OK(mgr.Access(&ctx, 1, 4 << 10));
      ctx.Charge(300'000);
    }
  }
  bench::ReportSim(state, ctx, kScans);
  state.SetLabel(use_cxl ? "main-on-cxl" : "all-dram");
}

void BM_E16_TieredVsUnified(benchmark::State& state) {
  const auto policy = state.range(0) != 0 ? CxlPlacementPolicy::kTiered
                                          : CxlPlacementPolicy::kUnified;
  CxlTieringManager mgr(100 << 20, 1024ull << 20, policy);
  DISAGG_CHECK_OK(mgr.AddSegment(1, "cold", 90 << 20, 1));
  DISAGG_CHECK_OK(mgr.AddSegment(2, "hot", 90 << 20, 1000));
  NetContext ctx;
  constexpr int kAccesses = 2000;
  for (auto _ : state) {
    for (int i = 0; i < kAccesses; i++) {
      DISAGG_CHECK_OK(mgr.Access(&ctx, i % 20 == 0 ? 1 : 2, 256));
    }
  }
  bench::ReportSim(state, ctx, kAccesses);
  state.SetLabel(policy == CxlPlacementPolicy::kTiered ? "tiered-explicit"
                                                       : "unified-oblivious");
}

void BM_E16_Pond_PoolFractionSweep(benchmark::State& state) {
  const double pool_fraction =
      static_cast<double>(state.range(0)) / 100.0;
  PondPool pod(/*hosts=*/8, /*dram_per_host=*/64ull << 30, pool_fraction);
  Random rng(13);
  int placed = 0, rejected = 0;
  uint64_t gb_placed = 0;
  for (auto _ : state) {
    // A VM stream totalling ~75% of cluster DRAM, with VMs large enough
    // (8-48 GB) that fragmentation strands capacity without a pool.
    for (int i = 0; i < 14; i++) {
      PondPool::VmRequest vm;
      vm.name = "vm" + std::to_string(i);
      vm.memory_bytes = (8ull + rng.Uniform(41)) << 30;
      vm.latency_sensitivity = rng.NextDouble();
      vm.untouched_fraction = 0.25 + rng.NextDouble() * 0.3;  // Pond insight
      vm.max_slowdown = 0.05;
      if (pod.Allocate(vm).ok()) {
        placed++;
        gb_placed += vm.memory_bytes >> 30;
      } else {
        rejected++;
      }
    }
  }
  state.counters["vms_placed"] = placed;
  state.counters["vms_rejected"] = rejected;
  state.counters["gb_placed"] = static_cast<double>(gb_placed);
  state.counters["stranded_frac"] = pod.StrandedFraction();
}

BENCHMARK(BM_E16_RawLatency)->Arg(0)->Arg(1)->Arg(2)->Iterations(1);
BENCHMARK(BM_E16_Ahn_TpccLike)->Arg(0)->Arg(1)->Iterations(1);
BENCHMARK(BM_E16_Ahn_TpcdsLike)->Arg(0)->Arg(1)->Iterations(1);
BENCHMARK(BM_E16_TieredVsUnified)->Arg(1)->Arg(0)->Iterations(1);
BENCHMARK(BM_E16_Pond_PoolFractionSweep)
    ->Arg(0)
    ->Arg(15)
    ->Arg(30)
    ->Arg(50)
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
