// Experiment E24 (DESIGN.md): graceful degradation vs reject-only under
// overload plus a partial replica outage.
//
// Scenario: an Aurora-style engine (4 replicas, 4 AZs, W=2) has lost the
// log-ingest lane of two replicas — during the setup write phase they stop
// acking appends and fall a bounded number of LSNs behind, but their
// page-serve lane still answers `page.get` (a realistic partial failure:
// the WAL pipeline is wedged, the read path is fine). The measured phase is
// a replica-read storm (`GetRowReadOnly`: no commit record, no log
// traffic), so the two fresh replicas carry the whole strict read load
// through the congestion layer while the stale ones sit reachable but
// behind the freshness floor.
//
// Open-loop clients offer {35, 70, 120}% of the fresh replicas' aggregate
// page-read capacity. Each logical request NEEDS the row and carries a
// deadline budget: when the read fails, the client pauses and re-issues
// until it succeeds or the budget burns — the app-level retry storm
// reject-only systems face. Two modes per rate:
//   - reject: no DegradePolicy. Strict reads that cannot be admitted at a
//     fresh replica fail Busy; the client hammers again, amplifying load.
//   - degrade: DegradePolicy{enabled, bound}. The same failure falls back
//     to a bounded-staleness copy on the stale-but-reachable replicas and
//     the request completes on the first try.
//
// Measured per (mode, rate): goodput (ok requests/sec), time-to-data p50/
// p99 over successful requests, degraded fraction, summed + max staleness,
// admission rejects and deadline misses. The staleness bound is asserted
// per degraded read — a violation is counted, never tolerated.
//
// With DISAGG_E24_ASSERT=1 (the CI smoke stage) the bench self-checks:
//   - zero staleness-bound violations anywhere;
//   - at 120% offered load the degrade mode serves a nonzero degraded
//     fraction with nonzero (but bounded) total staleness;
//   - degrade completes at least as many requests as reject-only at every
//     rate, strictly more at 120%;
//   - reject-only p99 time-to-data >= degrade p99 at 120% (re-issue rounds
//     cost more than one degraded fan-out);
//   - at 35% both modes complete >= 95% of requests (degradation is a
//     last resort, not a tax on the healthy regime).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "bench_common.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/engines.h"
#include "net/interceptors.h"
#include "sim/load_driver.h"

namespace disagg {
namespace {

bool AssertFromEnv() {
  const char* env = std::getenv("DISAGG_E24_ASSERT");
  return env != nullptr && env[0] == '1';
}

constexpr int kKeys = 32;
constexpr size_t kValueBytes = 400;  // ~16 rows per 8 KiB page -> 2 pages
constexpr uint64_t kStalenessBound = 10'000;
constexpr uint64_t kDeadlineNs = 2'500'000;       // 2.5 ms per request
constexpr uint64_t kClientRetryPauseNs = 50'000;  // app re-issue pause
constexpr int kMaxClientRounds = 5;               // app-level issue cap
constexpr double kNsPerByteFresh = 24.0;          // ~200 us per page read
constexpr uint64_t kMaxBacklogNs = 400'000;       // ~2 page reads deep

std::string ValueFor(int key, int version) {
  std::string v = "k" + std::to_string(key) + "-v" + std::to_string(version);
  v.resize(kValueBytes, 'x');
  return v;
}

/// The partial-outage interceptor: log ingest (`log.append` /
/// `page.apply_log`) at the two stale replicas fails Unavailable. They keep
/// serving pages but never ack, so once the setup phase's last write lands
/// their copies stay a fixed, bounded number of LSNs behind the floor.
class IngestOutage : public FabricInterceptor {
 public:
  IngestOutage(NodeId stale_a, NodeId stale_b)
      : stale_a_(stale_a), stale_b_(stale_b) {}

  const char* name() const override { return "ingest-outage"; }

  Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                   const FabricOpInvoker& next) override {
    (void)fabric;
    if (op->verb == FabricVerb::kRpc && op->method != nullptr &&
        (*op->method == "log.append" || *op->method == "page.apply_log") &&
        (op->node == stale_a_ || op->node == stale_b_)) {
      ctx->Charge(kOutageNackNs);
      return Status::Unavailable("replica log-ingest lane down");
    }
    return next(op, ctx);
  }

 private:
  static constexpr uint64_t kOutageNackNs = 5'000;
  const NodeId stale_a_;
  const NodeId stale_b_;
};

struct ModeResult {
  sim::LoadReport load;
  Histogram ok_latency;  // time-to-data of successful requests
  uint64_t ok_ops = 0;
  uint64_t degraded = 0;
  uint64_t staleness_sum = 0;
  uint64_t staleness_max = 0;
  uint64_t bound_violations = 0;
  uint64_t deadline_misses = 0;
  uint64_t admission_rejects = 0;

  double GoodputOpsPerSec() const {
    return load.makespan_ns == 0
               ? 0.0
               : static_cast<double>(ok_ops) * 1e9 /
                     static_cast<double>(load.makespan_ns);
  }
};

/// Builds the engine + fault + congestion stack and runs one open-loop
/// sweep. Everything is derived deterministically from (`degrade`,
/// `offered_pct`), so the reject/degrade pair differ ONLY in the policy.
ModeResult RunMode(bool degrade, uint64_t offered_pct) {
  Fabric fabric;
  ReplicatedSegment::Config cfg;
  cfg.replicas = 4;
  cfg.num_azs = 4;
  cfg.write_quorum = 2;
  cfg.read_quorum = 3;
  AuroraDb db(&fabric, cfg);
  const NodeId fresh0 = db.segment()->replica(0).node;
  const NodeId fresh1 = db.segment()->replica(1).node;
  const NodeId stale0 = db.segment()->replica(2).node;
  const NodeId stale1 = db.segment()->replica(3).node;

  // Preload v1 on all four replicas, then wedge the ingest lane of
  // replicas 2/3 and write v2: from here on their copies are frozen a
  // fixed LSN distance below the durable floor. The measured phase issues
  // no writes, so no resync ever repairs them.
  {
    NetContext setup;
    for (int k = 0; k < kKeys; k++) {
      DISAGG_CHECK(db.Put(&setup, k, ValueFor(k, 1)).ok());
    }
  }
  fabric.AddInterceptor(std::make_shared<IngestOutage>(stale0, stale1));
  {
    NetContext setup;
    for (int k = 0; k < kKeys; k++) {
      DISAGG_CHECK(db.Put(&setup, k, ValueFor(k, 2)).ok());
    }
  }

  // Fabric-level retry under the interceptor chain, then the congestion
  // layer: the fresh replicas' read path has finite bandwidth and a
  // bounded queue; the stale replicas are uncapped (they are near-idle —
  // the strict path skips them for lagging acks without touching the
  // wire, so only degraded fan-outs reach them).
  RetryPolicy rp;
  rp.max_attempts = 3;
  fabric.AddInterceptor(std::make_shared<RetryInterceptor>(rp));
  CongestionConfig cc;
  cc.node_caps[fresh0] = {0, kNsPerByteFresh, kMaxBacklogNs};
  cc.node_caps[fresh1] = {0, kNsPerByteFresh, kMaxBacklogNs};
  fabric.EnableCongestion(cc);

  db.set_degrade_policy({degrade, kStalenessBound});

  // Aggregate capacity of the two fresh replicas for one 8 KiB page read.
  const double page_read_service =
      kNsPerByteFresh * (8192.0 + 256.0);  // page + headers, approximate
  const double capacity = 2.0 * 1e9 / page_read_service;
  const double offered = capacity * static_cast<double>(offered_pct) / 100.0;

  ModeResult res;
  sim::OpenLoopOptions opts;
  opts.clients = 8;
  opts.ops_per_client = 150;
  opts.ops_per_sec = offered / static_cast<double>(opts.clients);
  opts.process = sim::ArrivalProcess::kPoisson;
  opts.seed = 24;
  opts.parallel = bench::ParallelFromEnv();  // DISAGG_SIM_{THREADS,PARTITIONS}

  res.load = sim::RunOpenLoop(
      opts, [&](uint64_t, uint64_t, NetContext* ctx, Random* rng) {
        const uint64_t arrival = ctx->sim_ns;
        ctx->deadline_ns = arrival + kDeadlineNs;
        const uint64_t key = rng->Uniform(kKeys);
        Status st;
        // Re-issue rounds are bounded twice over: by the deadline budget
        // and by a hard cap (the budget alone would admit ~50 rounds).
        for (int round = 0; round < kMaxClientRounds; round++) {
          // Every attempt is a cold read: the compute tier's buffer does
          // not absorb the offered load (E24 measures the storage tier).
          db.DropBuffer();
          const uint64_t degraded_before = ctx->degraded_ops;
          const uint64_t staleness_before = ctx->staleness_lsn;
          auto r = db.GetRowReadOnly(ctx, key);
          st = r.status();
          if (ctx->degraded_ops > degraded_before) {
            res.degraded++;
            const uint64_t s = ctx->staleness_lsn - staleness_before;
            res.staleness_sum += s;
            if (s > res.staleness_max) res.staleness_max = s;
            if (s > kStalenessBound) res.bound_violations++;
          }
          if (st.ok() ||
              ctx->sim_ns + kClientRetryPauseNs >= ctx->deadline_ns) {
            break;
          }
          // The client NEEDS the row: pause briefly and hammer again.
          ctx->Charge(kClientRetryPauseNs);
        }
        if (st.ok()) {
          res.ok_ops++;
          res.ok_latency.Record(ctx->sim_ns - arrival);
        }
        return st;
      });
  res.deadline_misses = res.load.total.deadline_misses;
  res.admission_rejects = res.load.total.admission_rejects;
  return res;
}

void BM_E24_DegradeVsReject(benchmark::State& state) {
  const uint64_t offered_pct = static_cast<uint64_t>(state.range(0));
  const bool degrade = state.range(1) == 1;

  ModeResult res;
  for (auto _ : state) {
    res = RunMode(degrade, offered_pct);
  }

  const double total =
      static_cast<double>(res.load.ops == 0 ? 1 : res.load.ops);
  state.counters["goodput_kops"] = res.GoodputOpsPerSec() / 1e3;
  state.counters["ok_frac"] = static_cast<double>(res.ok_ops) / total;
  state.counters["degraded_frac"] = static_cast<double>(res.degraded) / total;
  state.counters["p50_us"] = res.ok_latency.Percentile(50) / 1e3;
  state.counters["p99_us"] = res.ok_latency.Percentile(99) / 1e3;
  state.counters["staleness_sum_lsn"] = static_cast<double>(res.staleness_sum);
  state.counters["staleness_max_lsn"] = static_cast<double>(res.staleness_max);
  state.counters["bound_violations"] =
      static_cast<double>(res.bound_violations);
  state.counters["admission_rejects"] =
      static_cast<double>(res.admission_rejects);
  state.counters["deadline_misses"] =
      static_cast<double>(res.deadline_misses);
  state.SetLabel(degrade ? "degrade" : "reject-only");

  DISAGG_CHECK(res.bound_violations == 0);
  if (AssertFromEnv()) {
    // Cross-mode checks run once, from the last benchmark in the sweep.
    if (offered_pct == 120 && degrade) {
      const ModeResult rej = RunMode(/*degrade=*/false, 120);
      DISAGG_CHECK(res.degraded > 0);
      DISAGG_CHECK(res.staleness_sum > 0);
      DISAGG_CHECK(res.staleness_max <= kStalenessBound);
      DISAGG_CHECK(res.ok_ops > rej.ok_ops);
      DISAGG_CHECK(rej.ok_latency.Percentile(99) >=
                   res.ok_latency.Percentile(99));
      for (uint64_t pct : {35ull, 70ull}) {
        const ModeResult d = RunMode(/*degrade=*/true, pct);
        const ModeResult r = RunMode(/*degrade=*/false, pct);
        DISAGG_CHECK(d.bound_violations == 0 && r.bound_violations == 0);
        DISAGG_CHECK(d.ok_ops >= r.ok_ops);
        if (pct == 35) {
          DISAGG_CHECK(static_cast<double>(d.ok_ops) >= 0.95 * total);
          DISAGG_CHECK(static_cast<double>(r.ok_ops) >= 0.95 * total);
        }
      }
    }
  }
}
BENCHMARK(BM_E24_DegradeVsReject)
    ->ArgsProduct({{35, 70, 120}, {0, 1}})
    ->ArgNames({"offered_pct", "degrade"})
    ->Iterations(1);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
