// Experiment E18 (DESIGN.md): FlexChain (Sec. 3.1) — permissioned XOV
// blockchain on disaggregated memory. The disaggregated world state makes
// VALIDATION the bottleneck; FlexChain parallelizes it with a dependency
// graph. Sweep the conflict rate: at low conflict the dependency graph is
// shallow and parallel validation wins big; at 100% conflict everything
// serializes and the two modes converge.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "chain/flexchain.h"
#include "common/logging.h"
#include "common/random.h"

namespace disagg {
namespace {

constexpr int kBlockSize = 64;
constexpr int kBlocks = 5;

std::vector<FlexChain::ChainTxn> MakeBlock(Random* rng, int conflict_pct,
                                           int block_no) {
  std::vector<FlexChain::ChainTxn> block;
  for (int i = 0; i < kBlockSize; i++) {
    FlexChain::ChainTxn txn;
    txn.id = "b" + std::to_string(block_no) + "t" + std::to_string(i);
    const bool conflicting =
        rng->Uniform(100) < static_cast<uint64_t>(conflict_pct);
    const std::string key =
        conflicting ? "hot-key"
                    : "key-" + std::to_string(block_no) + "-" +
                          std::to_string(i);
    txn.write_set = {{key, "value-" + txn.id}};
    block.push_back(std::move(txn));
  }
  return block;
}

void RunChain(benchmark::State& state, bool parallel) {
  const int conflict_pct = static_cast<int>(state.range(0));
  Fabric fabric;
  MemoryNode pool(&fabric, "chain-pool", 512 << 20);
  FlexChain chain(&fabric, &pool, /*hot_cache=*/64);
  Random rng(3 + conflict_pct);
  NetContext ctx;
  uint64_t validate_ns = 0;
  size_t committed = 0, levels = 0;
  for (auto _ : state) {
    for (int b = 0; b < kBlocks; b++) {
      auto result =
          chain.CommitBlock(&ctx, MakeBlock(&rng, conflict_pct, b), parallel);
      DISAGG_CHECK(result.ok());
      validate_ns += result->validate_sim_ns;
      committed += result->committed;
      levels = std::max(levels, result->dependency_levels);
    }
  }
  state.counters["validate_sim_ms"] = static_cast<double>(validate_ns) / 1e6;
  state.counters["txns_committed"] = static_cast<double>(committed);
  state.counters["max_dependency_levels"] = static_cast<double>(levels);
  state.SetLabel(parallel ? "dependency-graph-parallel" : "serial-validation");
}

void BM_E18_SerialValidation(benchmark::State& state) {
  RunChain(state, false);
}
void BM_E18_ParallelValidation(benchmark::State& state) {
  RunChain(state, true);
}

void Sweep(benchmark::internal::Benchmark* b) {
  for (int pct : {0, 10, 50, 100}) b->Arg(pct);
  b->Iterations(1);
}

BENCHMARK(BM_E18_SerialValidation)->Apply(Sweep);
BENCHMARK(BM_E18_ParallelValidation)->Apply(Sweep);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
