// Experiment E10 (DESIGN.md): indexes on disaggregated memory (Sec. 3.1).
//  - RACE hash: all one-sided, lock-free CAS — zero pool-CPU RPCs on the
//    data path.
//  - Sherman B+tree (optimistic reads + doorbell-batched writes) vs the
//    lock-coupling B-tree (Ziegler et al.): reads cost 1 READ/level vs
//    3 RTTs/level; writes save round trips via batching.
// YCSB A (update-heavy) and C (read-only) with Zipfian skew.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/logging.h"
#include "rindex/race_hash.h"
#include "rindex/remote_btree.h"
#include "workload/ycsb.h"

namespace disagg {
namespace {

constexpr uint64_t kKeys = 4000;
constexpr int kOps = 2000;

YcsbGenerator::Mix MixFor(int id) {
  return id == 0 ? YcsbGenerator::Mix::A() : YcsbGenerator::Mix::C();
}
const char* MixName(int id) { return id == 0 ? "YCSB-A" : "YCSB-C"; }

void BM_E10_RaceHash(benchmark::State& state) {
  Fabric fabric;
  MemoryNode pool(&fabric, "mem0", 512 << 20);
  NetContext setup;
  auto table = RaceHash::Create(&setup, &fabric, &pool, 2048);
  DISAGG_CHECK(table.ok());
  RaceHash hash(&fabric, &pool, *table);
  for (uint64_t k = 0; k < kKeys; k++) {
    DISAGG_CHECK_OK(hash.Put(&setup, std::to_string(k), "value-0"));
  }
  YcsbGenerator gen(kKeys, MixFor(static_cast<int>(state.range(0))), 0.99, 9);
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kOps; i++) {
      auto op = gen.Next();
      if (op.type == YcsbGenerator::OpType::kRead) {
        DISAGG_CHECK(hash.Get(&ctx, std::to_string(op.key)).ok());
      } else {
        DISAGG_CHECK_OK(hash.Put(&ctx, std::to_string(op.key), "value-1"));
      }
    }
  }
  bench::ReportSim(state, ctx, kOps);
  state.counters["pool_cpu_rpcs"] = static_cast<double>(ctx.rpcs);
  state.SetLabel(MixName(static_cast<int>(state.range(0))));
}

void RunBTree(benchmark::State& state, RemoteBTree::Options options) {
  Fabric fabric;
  MemoryNode pool(&fabric, "mem0", 512 << 20);
  NetContext setup;
  auto ref = RemoteBTree::Create(&setup, &fabric, &pool);
  DISAGG_CHECK(ref.ok());
  RemoteBTree tree(&fabric, &pool, *ref, options);
  for (uint64_t k = 1; k <= kKeys; k++) {
    DISAGG_CHECK_OK(tree.Put(&setup, k, k));
  }
  YcsbGenerator gen(kKeys, MixFor(static_cast<int>(state.range(0))), 0.99, 9);
  NetContext ctx;
  for (auto _ : state) {
    for (int i = 0; i < kOps; i++) {
      auto op = gen.Next();
      if (op.type == YcsbGenerator::OpType::kRead) {
        (void)tree.Get(&ctx, 1 + op.key);
      } else {
        DISAGG_CHECK_OK(tree.Put(&ctx, 1 + op.key, op.key));
      }
    }
  }
  bench::ReportSim(state, ctx, kOps);
  state.counters["optimistic_retries"] =
      static_cast<double>(tree.stats().optimistic_retries);
  state.SetLabel(MixName(static_cast<int>(state.range(0))));
}

void BM_E10_ShermanBTree(benchmark::State& state) {
  RunBTree(state, RemoteBTree::Options::Sherman());
}

void BM_E10_LockCouplingBTree(benchmark::State& state) {
  RunBTree(state, RemoteBTree::Options::LockCoupling());
}

BENCHMARK(BM_E10_RaceHash)->Arg(0)->Arg(1)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_E10_ShermanBTree)->Arg(0)->Arg(1)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_E10_LockCouplingBTree)->Arg(0)->Arg(1)->Iterations(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace disagg

BENCHMARK_MAIN();
