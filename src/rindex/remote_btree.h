#ifndef DISAGG_RINDEX_REMOTE_BTREE_H_
#define DISAGG_RINDEX_REMOTE_BTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "memnode/memory_node.h"
#include "rindex/btree_layout.h"
#include "rindex/client_slab.h"

namespace disagg {

/// B+tree on disaggregated memory, configurable to act as either of the two
/// designs the paper contrasts (Sec. 3.1):
///
///  - **Sherman-style** (`Sherman()`): optimistic version-validated reads
///    (no locks, one READ per level) and write-combining via doorbell
///    batching; writers coordinate through a lock table emulating Sherman's
///    on-NIC lock words.
///  - **Lock-coupling** (`LockCoupling()`, Ziegler et al.): every traversal
///    step acquires the node's lock — correct but three round trips
///    (CAS + READ + unlock WRITE) per level for reads too.
///
/// Keys and values are uint64_t. Structure modifications (splits, root
/// growth) serialize on a single SMO lock — a documented simplification of
/// Sherman's hierarchical locking that leaves the measured read/write paths
/// faithful.
class RemoteBTree {
 public:
  static constexpr size_t kFanout = 32;

  struct Options {
    bool optimistic_reads = true;
    bool batched_writes = true;
    std::string name = "sherman";

    static Options Sherman() { return Options{true, true, "sherman"}; }
    static Options LockCoupling() {
      return Options{false, false, "lock-coupling"};
    }
  };

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t optimistic_retries = 0;
    uint64_t lock_waits = 0;
    uint64_t splits = 0;
    uint64_t offloaded = 0;  ///< operations shipped to the memory-node
                             ///< executor instead of traversed one-sided
  };

  /// Shared handle to a tree (created once, attached by any client).
  struct TreeRef {
    GlobalAddr root_ptr{};    // 8-byte word holding the root node offset
    GlobalAddr lock_table{};  // array of lock words
    uint64_t lock_slots = 0;
  };

  static Result<TreeRef> Create(NetContext* ctx, Fabric* fabric,
                                MemoryNode* pool);

  RemoteBTree(Fabric* fabric, MemoryNode* pool, TreeRef tree, Options options);

  Status Put(NetContext* ctx, uint64_t key, uint64_t value);
  Result<uint64_t> Get(NetContext* ctx, uint64_t key);
  Status Delete(NetContext* ctx, uint64_t key);

  /// Ascending scan of up to `limit` pairs with key >= `from`.
  Result<std::vector<std::pair<uint64_t, uint64_t>>> Scan(NetContext* ctx,
                                                          uint64_t from,
                                                          size_t limit);

  /// Switches this handle to near-data mode: every Put/Get/Delete/Scan
  /// becomes one `exec.idx.*` RPC to the `MemNodeExecutor` at `exec_node`
  /// that registered this tree as `tree_id` — one fabric round trip per
  /// operation instead of O(depth) one-sided verbs. The executor walks and
  /// mutates the SAME region bytes under the SAME lock words, so offloaded
  /// and one-sided handles interoperate on a live tree. Unconfigured
  /// handles take the one-sided paths untouched (bit-identical behavior
  /// and counters to a build without the executor).
  void EnableOffload(NodeId exec_node, uint32_t tree_id) {
    offload_ = true;
    offload_node_ = exec_node;
    offload_tree_ = tree_id;
  }
  bool offload_enabled() const { return offload_; }

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  // On-pool node image, shared with the memory-node executor's walker.
  using NodeImage = BTreeNodeImage;
  static constexpr size_t kNodeBytes = kBTreeNodeBytes;

  GlobalAddr NodeAddr(uint64_t offset) const {
    return GlobalAddr{tree_.root_ptr.node, tree_.root_ptr.region, offset};
  }
  GlobalAddr LockAddr(uint64_t node_offset) const;

  Result<uint64_t> ReadRoot(NetContext* ctx);
  /// Reads a node; with optimistic reads, retries torn/in-flight images.
  Status ReadNode(NetContext* ctx, uint64_t offset, NodeImage* out);
  /// Writes a node image with a bumped version, honoring the batching mode.
  Status WriteNode(NetContext* ctx, uint64_t offset, NodeImage* node);

  Status AcquireLock(NetContext* ctx, GlobalAddr lock);
  Status ReleaseLock(NetContext* ctx, GlobalAddr lock);

  /// Descends to the leaf that owns `key`, recording the path (offsets).
  Status DescendToLeaf(NetContext* ctx, uint64_t key,
                       std::vector<uint64_t>* path, NodeImage* leaf);

  /// Split path under the SMO lock.
  Status InsertWithSplit(NetContext* ctx, uint64_t key, uint64_t value);

  Result<uint64_t> AllocNode(NetContext* ctx);

  Fabric* fabric_;
  MemoryNode* pool_;
  TreeRef tree_;
  Options options_;
  ClientSlab slab_;
  Stats stats_;
  bool offload_ = false;
  NodeId offload_node_ = 0;
  uint32_t offload_tree_ = 0;
};

}  // namespace disagg

#endif  // DISAGG_RINDEX_REMOTE_BTREE_H_
