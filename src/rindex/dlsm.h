#ifndef DISAGG_RINDEX_DLSM_H_
#define DISAGG_RINDEX_DLSM_H_

#include <map>
#include <optional>
#include <vector>

#include "memnode/memory_node.h"

namespace disagg {

/// dLSM-style LSM index for disaggregated memory (Sec. 3.1): a sharded LSM
/// where each shard keeps a small mutable memtable on the COMPUTE side and
/// immutable sorted runs in REMOTE memory. Reproduced optimizations:
///  - sharding: keys hash/range-partition across shards so concurrent
///    clients rarely collide;
///  - software-overhead reduction: reads binary-search remote runs directly
///    with one-sided READs (no server involvement);
///  - remote compaction: merging runs can be OFFLOADED to the memory node
///    ("lsm.compact" RPC), avoiding the 2x transfer of download-merge-upload.
///
/// Entries are fixed 16-byte {key u64, value u64}; value ~0ull is the
/// tombstone.
class DLsmShard {
 public:
  static constexpr uint64_t kTombstone = ~0ull;

  struct Stats {
    uint64_t memtable_hits = 0;
    uint64_t run_probes = 0;    // remote binary-search reads
    uint64_t flushes = 0;
    uint64_t compactions = 0;
  };

  DLsmShard(Fabric* fabric, MemoryNode* pool, size_t memtable_limit);

  Status Put(NetContext* ctx, uint64_t key, uint64_t value);
  Status Delete(NetContext* ctx, uint64_t key);
  Result<uint64_t> Get(NetContext* ctx, uint64_t key);

  /// Seals the memtable into a new remote run (newest first in search
  /// order). Automatic when the memtable limit is hit.
  Status Flush(NetContext* ctx);

  /// Client-driven compaction: download all runs, merge, upload one run.
  Status CompactLocal(NetContext* ctx);
  /// Offloaded compaction: one RPC; the memory node merges in place.
  Status CompactRemote(NetContext* ctx);

  size_t num_runs() const { return runs_.size(); }
  size_t memtable_size() const { return memtable_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Run {
    GlobalAddr addr{};
    uint64_t count = 0;
  };

  Status WriteRun(NetContext* ctx,
                  const std::vector<std::pair<uint64_t, uint64_t>>& entries,
                  Run* out);
  Result<std::optional<uint64_t>> SearchRun(NetContext* ctx, const Run& run,
                                            uint64_t key);
  Status HandleCompact(Slice req, std::string* resp, RpcServerContext* sctx);

  Fabric* fabric_;
  MemoryNode* pool_;
  size_t memtable_limit_;
  std::string compact_method_;  // unique RPC name for this shard
  std::map<uint64_t, uint64_t> memtable_;
  std::vector<Run> runs_;  // index 0 = oldest
  Stats stats_;
};

/// Hash-sharded front over `n` DLsmShard instances.
class DLsm {
 public:
  DLsm(Fabric* fabric, MemoryNode* pool, size_t shards,
       size_t memtable_limit);

  Status Put(NetContext* ctx, uint64_t key, uint64_t value);
  Status Delete(NetContext* ctx, uint64_t key);
  Result<uint64_t> Get(NetContext* ctx, uint64_t key);

  DLsmShard* shard(size_t i) { return shards_[i].get(); }
  size_t num_shards() const { return shards_.size(); }

 private:
  DLsmShard* ShardFor(uint64_t key) {
    return shards_[(key * 0x9E3779B97F4A7C15ull) % shards_.size()].get();
  }

  std::vector<std::unique_ptr<DLsmShard>> shards_;
};

}  // namespace disagg

#endif  // DISAGG_RINDEX_DLSM_H_
