#include "rindex/race_hash.h"

#include <cstring>

#include "common/coding.h"

namespace disagg {

namespace {
constexpr int kMaxChain = 64;
constexpr int kMaxRetries = 64;

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

uint64_t RaceHash::HashKey(const std::string& key) { return Fnv1a(key); }

uint64_t RaceHash::Pack(uint8_t fp, uint16_t size, uint64_t offset) {
  return (uint64_t{fp} << 56) | (uint64_t{size} << 40) |
         (offset & ((uint64_t{1} << 40) - 1));
}

void RaceHash::Unpack(uint64_t word, uint8_t* fp, uint16_t* size,
                      uint64_t* offset) {
  *fp = static_cast<uint8_t>(word >> 56);
  *size = static_cast<uint16_t>(word >> 40);
  *offset = word & ((uint64_t{1} << 40) - 1);
}

Result<RaceHash::TableRef> RaceHash::Create(NetContext* ctx, Fabric* fabric,
                                            MemoryNode* pool,
                                            uint64_t num_buckets) {
  (void)ctx;
  (void)fabric;
  uint64_t n = 1;
  while (n < num_buckets) n <<= 1;
  auto addr = pool->AllocLocal(n * kBucketBytes);
  if (!addr.ok()) return addr.status();
  TableRef ref;
  ref.buckets = *addr;
  ref.num_buckets = n;
  return ref;
}

RaceHash::RaceHash(Fabric* fabric, MemoryNode* pool, TableRef table)
    : fabric_(fabric), pool_(pool), table_(table),
      slab_(fabric, pool->node()) {}

Result<GlobalAddr> RaceHash::WriteBlock(NetContext* ctx,
                                        const std::string& key,
                                        const std::string& value,
                                        uint16_t* size) {
  const size_t block_size = 4 + key.size() + value.size();
  if (block_size > 0xFFFF) {
    return Status::InvalidArgument("key+value too large for a KV block");
  }
  std::string block;
  block.resize(block_size);
  const uint16_t klen = static_cast<uint16_t>(key.size());
  const uint16_t vlen = static_cast<uint16_t>(value.size());
  std::memcpy(block.data(), &klen, 2);
  std::memcpy(block.data() + 2, &vlen, 2);
  std::memcpy(block.data() + 4, key.data(), key.size());
  std::memcpy(block.data() + 4 + key.size(), value.data(), value.size());
  DISAGG_ASSIGN_OR_RETURN(GlobalAddr addr, slab_.Alloc(ctx, block_size));
  Status st = fabric_->Write(ctx, addr, block.data(), block.size());
  if (!st.ok()) return st;
  *size = static_cast<uint16_t>(block_size);
  return addr;
}

Status RaceHash::FindSlot(NetContext* ctx, const std::string& key,
                          bool want_empty, SlotMatch* match,
                          std::string* value_out) {
  const uint64_t h = HashKey(key);
  const uint8_t fp = static_cast<uint8_t>(h >> 48);
  uint64_t bucket_offset =
      table_.buckets.offset + (h & (table_.num_buckets - 1)) * kBucketBytes;

  SlotMatch first_empty;
  bool have_empty = false;

  for (int depth = 0; depth < kMaxChain; depth++) {
    char bucket[kBucketBytes];
    GlobalAddr bucket_addr{table_.buckets.node, table_.buckets.region,
                           bucket_offset};
    DISAGG_RETURN_NOT_OK(fabric_->Read(ctx, bucket_addr, bucket,
                                       kBucketBytes));
    for (size_t i = 0; i < kSlotsPerBucket; i++) {
      const uint64_t word = DecodeFixed64(bucket + i * 8);
      GlobalAddr slot_addr = bucket_addr;
      slot_addr.offset += i * 8;
      if (word == 0) {
        if (!have_empty) {
          first_empty = SlotMatch{slot_addr, 0};
          have_empty = true;
        }
        continue;
      }
      uint8_t sfp;
      uint16_t size;
      uint64_t offset;
      Unpack(word, &sfp, &size, &offset);
      if (sfp != fp) continue;
      // Fingerprint hit: fetch the block and compare the full key.
      std::string block(size, '\0');
      GlobalAddr block_addr{table_.buckets.node, table_.buckets.region,
                            offset};
      DISAGG_RETURN_NOT_OK(
          fabric_->Read(ctx, block_addr, block.data(), size));
      uint16_t klen, vlen;
      std::memcpy(&klen, block.data(), 2);
      std::memcpy(&vlen, block.data() + 2, 2);
      if (4 + size_t{klen} + vlen != size) {
        return Status::Corruption("KV block length mismatch");
      }
      if (klen == key.size() &&
          std::memcmp(block.data() + 4, key.data(), klen) == 0) {
        *match = SlotMatch{slot_addr, word};
        if (value_out != nullptr) value_out->assign(block, 4 + klen, vlen);
        return Status::OK();
      }
    }

    const uint64_t overflow = DecodeFixed64(bucket + kSlotsPerBucket * 8);
    if (overflow != 0) {
      bucket_offset = overflow;
      continue;
    }
    if (!want_empty || have_empty) break;

    // Chain exhausted with no empty slot: install an overflow bucket.
    DISAGG_ASSIGN_OR_RETURN(GlobalAddr fresh,
                            slab_.Alloc(ctx, kBucketBytes));
    char zeros[kBucketBytes] = {0};
    DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, fresh, zeros, kBucketBytes));
    GlobalAddr overflow_addr = bucket_addr;
    overflow_addr.offset += kSlotsPerBucket * 8;
    auto observed =
        fabric_->CompareAndSwap(ctx, overflow_addr, 0, fresh.offset);
    if (!observed.ok()) return observed.status();
    stats_.overflow_allocs++;
    // Follow whichever bucket won the race.
    bucket_offset = (*observed == 0) ? fresh.offset : *observed;
  }

  if (want_empty && have_empty) {
    *match = first_empty;
    return Status::NotFound("key absent; empty slot located");
  }
  return Status::NotFound("key absent");
}

Status RaceHash::Put(NetContext* ctx, const std::string& key,
                     const std::string& value) {
  for (int attempt = 0; attempt < kMaxRetries; attempt++) {
    SlotMatch match;
    Status found = FindSlot(ctx, key, /*want_empty=*/true, &match, nullptr);
    if (!found.ok() && !found.IsNotFound()) return found;
    uint16_t size = 0;
    DISAGG_ASSIGN_OR_RETURN(GlobalAddr block,
                            WriteBlock(ctx, key, value, &size));
    const uint64_t new_word =
        Pack(static_cast<uint8_t>(HashKey(key) >> 48), size, block.offset);
    auto observed = fabric_->CompareAndSwap(ctx, match.slot_addr,
                                            match.slot_word, new_word);
    if (!observed.ok()) return observed.status();
    if (*observed == match.slot_word) return Status::OK();
    stats_.cas_retries++;  // another client raced us; retry from scratch
  }
  return Status::Busy("Put did not converge under contention");
}

Result<std::string> RaceHash::Get(NetContext* ctx, const std::string& key) {
  SlotMatch match;
  std::string value;
  Status st = FindSlot(ctx, key, /*want_empty=*/false, &match, &value);
  if (!st.ok()) return st;
  return value;
}

Status RaceHash::Delete(NetContext* ctx, const std::string& key) {
  for (int attempt = 0; attempt < kMaxRetries; attempt++) {
    SlotMatch match;
    DISAGG_RETURN_NOT_OK(
        FindSlot(ctx, key, /*want_empty=*/false, &match, nullptr));
    auto observed =
        fabric_->CompareAndSwap(ctx, match.slot_addr, match.slot_word, 0);
    if (!observed.ok()) return observed.status();
    if (*observed == match.slot_word) return Status::OK();
    stats_.cas_retries++;
  }
  return Status::Busy("Delete did not converge under contention");
}

}  // namespace disagg
