#ifndef DISAGG_RINDEX_BTREE_LAYOUT_H_
#define DISAGG_RINDEX_BTREE_LAYOUT_H_

#include <cstddef>
#include <cstdint>

namespace disagg {

/// On-pool B+tree node image shared by the one-sided client
/// (`RemoteBTree`) and the memory-node executor's server-side walker
/// (`MemNodeExecutor`). POD, memcpy'd wholesale; the two protocols operate
/// on the SAME bytes, so the layout lives here and both include it — a
/// one-sided traversal and an offloaded traversal of one tree must agree
/// field for field.
struct BTreeNodeImage {
  static constexpr size_t kFanout = 32;

  uint64_t version_front;
  uint32_t level;  // 0 = leaf
  uint32_t nkeys;
  uint64_t keys[kFanout];
  uint64_t vals[kFanout];  // child offsets (internal) or values (leaf)
  uint64_t next;           // right-sibling offset (leaves), 0 = none
  uint64_t version_back;
};

inline constexpr size_t kBTreeNodeBytes = sizeof(BTreeNodeImage);

/// Lock-table slot for a node offset. Slot 0 is the SMO lock; nodes hash
/// into the remaining `lock_slots` words. Shared so the executor's
/// region-local CAS takes exactly the lock word a one-sided client would
/// CAS over the fabric — the two protocols interoperate on live trees.
inline uint64_t BTreeLockSlot(uint64_t node_offset, uint64_t lock_slots) {
  return node_offset == 0
             ? 0
             : 1 + (node_offset * 0x9E3779B97F4A7C15ull) % lock_slots;
}

}  // namespace disagg

#endif  // DISAGG_RINDEX_BTREE_LAYOUT_H_
