#include "rindex/dlsm.h"

#include <atomic>
#include <cstring>

#include "common/coding.h"

namespace disagg {

namespace {
std::atomic<uint64_t> g_shard_counter{0};

std::string ShardMethodName(uint64_t id) {
  return "lsm.compact." + std::to_string(id);
}
}  // namespace

DLsmShard::DLsmShard(Fabric* fabric, MemoryNode* pool, size_t memtable_limit)
    : fabric_(fabric), pool_(pool), memtable_limit_(memtable_limit) {
  const uint64_t id = g_shard_counter.fetch_add(1);
  compact_method_ = ShardMethodName(id);
  fabric_->node(pool_->node())
      ->RegisterHandler(compact_method_,
                        [this](Slice req, std::string* resp,
                               RpcServerContext* sctx) {
                          return HandleCompact(req, resp, sctx);
                        });
}

Status DLsmShard::Put(NetContext* ctx, uint64_t key, uint64_t value) {
  memtable_[key] = value;
  ctx->Charge(150);  // local memtable insert
  if (memtable_.size() >= memtable_limit_) return Flush(ctx);
  return Status::OK();
}

Status DLsmShard::Delete(NetContext* ctx, uint64_t key) {
  return Put(ctx, key, kTombstone);
}

Status DLsmShard::WriteRun(
    NetContext* ctx, const std::vector<std::pair<uint64_t, uint64_t>>& entries,
    Run* out) {
  std::string buf(entries.size() * 16, '\0');
  for (size_t i = 0; i < entries.size(); i++) {
    EncodeFixed64(buf.data() + i * 16, entries[i].first);
    EncodeFixed64(buf.data() + i * 16 + 8, entries[i].second);
  }
  DISAGG_ASSIGN_OR_RETURN(GlobalAddr addr, pool_->AllocLocal(buf.size()));
  DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, addr, buf.data(), buf.size()));
  out->addr = addr;
  out->count = entries.size();
  return Status::OK();
}

Status DLsmShard::Flush(NetContext* ctx) {
  if (memtable_.empty()) return Status::OK();
  std::vector<std::pair<uint64_t, uint64_t>> entries(memtable_.begin(),
                                                     memtable_.end());
  Run run;
  DISAGG_RETURN_NOT_OK(WriteRun(ctx, entries, &run));
  runs_.push_back(run);
  memtable_.clear();
  stats_.flushes++;
  return Status::OK();
}

Result<std::optional<uint64_t>> DLsmShard::SearchRun(NetContext* ctx,
                                                     const Run& run,
                                                     uint64_t key) {
  uint64_t lo = 0, hi = run.count;
  char entry[16];
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    GlobalAddr addr = run.addr;
    addr.offset += mid * 16;
    Status st = fabric_->Read(ctx, addr, entry, 16);
    if (!st.ok()) return st;
    stats_.run_probes++;
    const uint64_t k = DecodeFixed64(entry);
    if (k == key) return std::optional<uint64_t>(DecodeFixed64(entry + 8));
    if (k < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::optional<uint64_t>();
}

Result<uint64_t> DLsmShard::Get(NetContext* ctx, uint64_t key) {
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    stats_.memtable_hits++;
    ctx->Charge(100);
    if (it->second == kTombstone) return Status::NotFound("deleted");
    return it->second;
  }
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {
    DISAGG_ASSIGN_OR_RETURN(std::optional<uint64_t> hit,
                            SearchRun(ctx, *rit, key));
    if (hit.has_value()) {
      if (*hit == kTombstone) return Status::NotFound("deleted");
      return *hit;
    }
  }
  return Status::NotFound("key absent");
}

Status DLsmShard::CompactLocal(NetContext* ctx) {
  if (runs_.size() < 2) return Status::OK();
  // Download every run (newest last so it wins merges). The merge itself is
  // memory-bandwidth bound on the compute node (~10 ns/entry).
  std::map<uint64_t, uint64_t> merged;
  uint64_t total_entries = 0;
  for (const Run& run : runs_) total_entries += run.count;
  ctx->Charge(10 * total_entries);
  for (const Run& run : runs_) {
    std::string buf(run.count * 16, '\0');
    DISAGG_RETURN_NOT_OK(
        fabric_->Read(ctx, run.addr, buf.data(), buf.size()));
    for (uint64_t i = 0; i < run.count; i++) {
      merged[DecodeFixed64(buf.data() + i * 16)] =
          DecodeFixed64(buf.data() + i * 16 + 8);
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (const auto& [k, v] : merged) {
    if (v != kTombstone) entries.emplace_back(k, v);  // full compaction
  }
  for (const Run& run : runs_) {
    (void)pool_->FreeLocal(run.addr, run.count * 16);
  }
  runs_.clear();
  if (!entries.empty()) {
    Run run;
    DISAGG_RETURN_NOT_OK(WriteRun(ctx, entries, &run));
    runs_.push_back(run);
  }
  stats_.compactions++;
  return Status::OK();
}

Status DLsmShard::CompactRemote(NetContext* ctx) {
  if (runs_.size() < 2) return Status::OK();
  std::string resp;
  DISAGG_RETURN_NOT_OK(
      fabric_->Call(ctx, pool_->node(), compact_method_, "", &resp));
  stats_.compactions++;
  return Status::OK();
}

Status DLsmShard::HandleCompact(Slice req, std::string* resp,
                                RpcServerContext* sctx) {
  (void)req;
  // Runs live on this node: merge with direct memory access.
  MemoryRegion* region = fabric_->node(pool_->node())->region(0);
  std::map<uint64_t, uint64_t> merged;
  uint64_t total = 0;
  for (const Run& run : runs_) {
    const char* base = region->data() + run.addr.offset;
    for (uint64_t i = 0; i < run.count; i++) {
      merged[DecodeFixed64(base + i * 16)] = DecodeFixed64(base + i * 16 + 8);
    }
    total += run.count;
  }
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (const auto& [k, v] : merged) {
    if (v != kTombstone) entries.emplace_back(k, v);
  }
  for (const Run& run : runs_) {
    (void)pool_->FreeLocal(run.addr, run.count * 16);
  }
  runs_.clear();
  if (!entries.empty()) {
    auto addr = pool_->AllocLocal(entries.size() * 16);
    if (!addr.ok()) return addr.status();
    char* base = region->data() + addr->offset;
    for (size_t i = 0; i < entries.size(); i++) {
      EncodeFixed64(base + i * 16, entries[i].first);
      EncodeFixed64(base + i * 16 + 8, entries[i].second);
    }
    runs_.push_back(Run{*addr, entries.size()});
  }
  sctx->ChargeCompute(10 * total);  // bandwidth-bound server-side merge
  resp->clear();
  return Status::OK();
}

DLsm::DLsm(Fabric* fabric, MemoryNode* pool, size_t shards,
           size_t memtable_limit) {
  for (size_t i = 0; i < shards; i++) {
    shards_.push_back(
        std::make_unique<DLsmShard>(fabric, pool, memtable_limit));
  }
}

Status DLsm::Put(NetContext* ctx, uint64_t key, uint64_t value) {
  return ShardFor(key)->Put(ctx, key, value);
}

Status DLsm::Delete(NetContext* ctx, uint64_t key) {
  return ShardFor(key)->Delete(ctx, key);
}

Result<uint64_t> DLsm::Get(NetContext* ctx, uint64_t key) {
  return ShardFor(key)->Get(ctx, key);
}

}  // namespace disagg
