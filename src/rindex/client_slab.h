#ifndef DISAGG_RINDEX_CLIENT_SLAB_H_
#define DISAGG_RINDEX_CLIENT_SLAB_H_

#include "memnode/memory_node.h"

namespace disagg {

/// Client-side sub-allocator over a remote memory pool: grabs large chunks
/// from the pool's allocator (one RPC per chunk) and bump-allocates blocks
/// locally, so the common-case allocation costs zero round trips — the
/// standard trick one-sided index designs (RACE, Sherman) rely on.
class ClientSlab {
 public:
  static constexpr size_t kChunkBytes = 64 << 10;

  ClientSlab(Fabric* fabric, NodeId pool_node)
      : alloc_(fabric, pool_node) {}

  Result<GlobalAddr> Alloc(NetContext* ctx, size_t bytes) {
    if (bytes > kChunkBytes) {
      return alloc_.Alloc(ctx, bytes);  // large blocks go straight through
    }
    if (chunk_.is_null() || used_ + bytes > kChunkBytes) {
      DISAGG_ASSIGN_OR_RETURN(chunk_, alloc_.Alloc(ctx, kChunkBytes));
      used_ = 0;
    }
    GlobalAddr out = chunk_;
    out.offset += used_;
    used_ += (bytes + 7) & ~size_t{7};  // keep 8-byte alignment
    return out;
  }

 private:
  RemoteAllocator alloc_;
  GlobalAddr chunk_{};
  size_t used_ = 0;
};

}  // namespace disagg

#endif  // DISAGG_RINDEX_CLIENT_SLAB_H_
