#ifndef DISAGG_RINDEX_RACE_HASH_H_
#define DISAGG_RINDEX_RACE_HASH_H_

#include <string>

#include "memnode/memory_node.h"
#include "rindex/client_slab.h"

namespace disagg {

/// RACE-style hash index on disaggregated memory (Sec. 3.1): all operations
/// are ONE-SIDED (no memory-node CPU) and lock-free — concurrent writers
/// coordinate purely with RDMA compare-and-swap on 8-byte slot words.
///
/// Layout on the memory node:
///   bucket array, each bucket = 8 slot words + 1 overflow pointer word;
///   KV blocks allocated from a client slab.
/// A slot word packs {fingerprint:8, block_size:16, offset:40}; 0 = empty.
/// Protocol per op (round trips):
///   Search: read bucket (1) + read matching block (1 per fp match)
///   Insert: read bucket (1) + write block (1) + CAS slot (1)
///   Delete: search + CAS slot to 0 (1)
/// Simplification vs the paper: the bucket array is sized at construction
/// and overflow buckets chain instead of extendible-directory doubling; the
/// concurrency protocol — the part the paper's claims rest on — is faithful.
class RaceHash {
 public:
  static constexpr size_t kSlotsPerBucket = 8;
  static constexpr size_t kBucketBytes = (kSlotsPerBucket + 1) * 8;

  struct Stats {
    uint64_t cas_retries = 0;
    uint64_t overflow_allocs = 0;
  };

  /// Creates a fresh table with `num_buckets` (rounded up to a power of 2)
  /// in `pool`. The creating client shares `TableRef` with other clients.
  struct TableRef {
    GlobalAddr buckets{};
    uint64_t num_buckets = 0;
  };
  static Result<TableRef> Create(NetContext* ctx, Fabric* fabric,
                                 MemoryNode* pool, uint64_t num_buckets);

  /// Attaches a client to an existing table.
  RaceHash(Fabric* fabric, MemoryNode* pool, TableRef table);

  /// Inserts or updates. Keys/values up to ~60000 bytes.
  Status Put(NetContext* ctx, const std::string& key, const std::string& value);
  Result<std::string> Get(NetContext* ctx, const std::string& key);
  Status Delete(NetContext* ctx, const std::string& key);

  const Stats& stats() const { return stats_; }

 private:
  struct SlotMatch {
    GlobalAddr slot_addr{};
    uint64_t slot_word = 0;  // current packed value (0 if empty)
  };

  static uint64_t HashKey(const std::string& key);
  static uint64_t Pack(uint8_t fp, uint16_t size, uint64_t offset);
  static void Unpack(uint64_t word, uint8_t* fp, uint16_t* size,
                     uint64_t* offset);

  /// Walks the bucket chain looking for `key`. On hit fills `match` with the
  /// occupied slot; on miss fills it with the first empty slot encountered
  /// (allocating an overflow bucket if every slot in the chain is taken).
  Status FindSlot(NetContext* ctx, const std::string& key, bool want_empty,
                  SlotMatch* match, std::string* value_out);

  Result<GlobalAddr> WriteBlock(NetContext* ctx, const std::string& key,
                                const std::string& value, uint16_t* size);

  Fabric* fabric_;
  MemoryNode* pool_;
  TableRef table_;
  ClientSlab slab_;
  Stats stats_;
};

}  // namespace disagg

#endif  // DISAGG_RINDEX_RACE_HASH_H_
