#include "rindex/remote_btree.h"

#include <cstddef>
#include <cstring>
#include <thread>

#include "memnode/executor.h"

namespace disagg {

namespace {
constexpr int kMaxOptimisticRetries = 64;
constexpr int kMaxLockSpins = 100000;
constexpr uint64_t kSmoLockSlot = 0;
}  // namespace

Result<RemoteBTree::TreeRef> RemoteBTree::Create(NetContext* ctx,
                                                 Fabric* fabric,
                                                 MemoryNode* pool) {
  TreeRef ref;
  auto root_ptr = pool->AllocLocal(8);
  if (!root_ptr.ok()) return root_ptr.status();
  ref.root_ptr = *root_ptr;
  ref.lock_slots = 1024;
  auto locks = pool->AllocLocal((ref.lock_slots + 1) * 8);
  if (!locks.ok()) return locks.status();
  ref.lock_table = *locks;

  // Initial empty leaf.
  auto leaf_addr = pool->AllocLocal(kNodeBytes);
  if (!leaf_addr.ok()) return leaf_addr.status();
  NodeImage leaf;
  std::memset(&leaf, 0, sizeof(leaf));
  Status st = fabric->Write(ctx, *leaf_addr, &leaf, kNodeBytes);
  if (!st.ok()) return st;
  const uint64_t off = leaf_addr->offset;
  st = fabric->Write(ctx, ref.root_ptr, &off, 8);
  if (!st.ok()) return st;
  return ref;
}

RemoteBTree::RemoteBTree(Fabric* fabric, MemoryNode* pool, TreeRef tree,
                         Options options)
    : fabric_(fabric),
      pool_(pool),
      tree_(tree),
      options_(std::move(options)),
      slab_(fabric, pool->node()) {}

GlobalAddr RemoteBTree::LockAddr(uint64_t node_offset) const {
  // Slot 0 is the SMO lock; nodes hash into the rest.
  const uint64_t slot =
      node_offset == kSmoLockSlot
          ? 0
          : 1 + (node_offset * 0x9E3779B97F4A7C15ull) % tree_.lock_slots;
  GlobalAddr addr = tree_.lock_table;
  addr.offset += slot * 8;
  return addr;
}

Result<uint64_t> RemoteBTree::ReadRoot(NetContext* ctx) {
  return fabric_->ReadAtomic64(ctx, tree_.root_ptr);
}

Status RemoteBTree::ReadNode(NetContext* ctx, uint64_t offset,
                             NodeImage* out) {
  for (int retry = 0; retry < kMaxOptimisticRetries; retry++) {
    DISAGG_RETURN_NOT_OK(fabric_->Read(ctx, NodeAddr(offset), out,
                                       kNodeBytes));
    stats_.reads++;
    if (!options_.optimistic_reads) return Status::OK();
    if (out->version_front == out->version_back &&
        out->version_front % 2 == 0) {
      return Status::OK();
    }
    stats_.optimistic_retries++;
  }
  return Status::Busy("optimistic node read did not stabilize");
}

Status RemoteBTree::WriteNode(NetContext* ctx, uint64_t offset,
                              NodeImage* node) {
  node->version_front += 2;
  node->version_back = node->version_front;
  stats_.writes++;
  const char* bytes = reinterpret_cast<const char*>(node);
  if (options_.batched_writes) {
    // Sherman: header, payload, and version tail ride one doorbell.
    std::vector<Fabric::WriteOp> ops = {
        {RemoteAddr{NodeAddr(offset).region, offset}, bytes, kNodeBytes}};
    return fabric_->WriteBatch(ctx, tree_.root_ptr.node, ops);
  }
  // Naive: three separate verbs (header+keys, values, tail), three RTTs.
  const size_t head = offsetof(NodeImage, vals);
  const size_t tail_off = offsetof(NodeImage, next);
  GlobalAddr a = NodeAddr(offset);
  DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, a, bytes, head));
  GlobalAddr b = a;
  b.offset += head;
  DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, b, bytes + head, tail_off - head));
  GlobalAddr c = a;
  c.offset += tail_off;
  return fabric_->Write(ctx, c, bytes + tail_off, kNodeBytes - tail_off);
}

Status RemoteBTree::AcquireLock(NetContext* ctx, GlobalAddr lock) {
  for (int spin = 0; spin < kMaxLockSpins; spin++) {
    auto observed = fabric_->CompareAndSwap(ctx, lock, 0, 1);
    if (!observed.ok()) return observed.status();
    if (*observed == 0) return Status::OK();
    stats_.lock_waits++;
    std::this_thread::yield();
  }
  return Status::Busy("lock acquisition starved");
}

Status RemoteBTree::ReleaseLock(NetContext* ctx, GlobalAddr lock) {
  const uint64_t zero = 0;
  return fabric_->Write(ctx, lock, &zero, 8);
}

Status RemoteBTree::DescendToLeaf(NetContext* ctx, uint64_t key,
                                  std::vector<uint64_t>* path,
                                  NodeImage* leaf) {
  DISAGG_ASSIGN_OR_RETURN(uint64_t offset, ReadRoot(ctx));
  NodeImage node;
  while (true) {
    if (options_.optimistic_reads) {
      DISAGG_RETURN_NOT_OK(ReadNode(ctx, offset, &node));
    } else {
      // Lock coupling: CAS-lock, read, unlock — three round trips per level.
      const GlobalAddr lock = LockAddr(offset);
      DISAGG_RETURN_NOT_OK(AcquireLock(ctx, lock));
      Status st = ReadNode(ctx, offset, &node);
      DISAGG_RETURN_NOT_OK(ReleaseLock(ctx, lock));
      DISAGG_RETURN_NOT_OK(st);
    }
    if (path != nullptr) path->push_back(offset);
    if (node.level == 0) {
      // B-link step: a concurrent split may have moved the key right.
      while (node.nkeys > 0 && key > node.keys[node.nkeys - 1] &&
             node.next != 0) {
        offset = node.next;
        if (path != nullptr) path->back() = offset;
        DISAGG_RETURN_NOT_OK(ReadNode(ctx, offset, &node));
      }
      *leaf = node;
      return Status::OK();
    }
    // Internal: route to the last child whose separator <= key.
    uint32_t idx = 0;
    while (idx + 1 < node.nkeys && node.keys[idx + 1] <= key) idx++;
    offset = node.vals[idx];
  }
}

Result<uint64_t> RemoteBTree::AllocNode(NetContext* ctx) {
  DISAGG_ASSIGN_OR_RETURN(GlobalAddr addr, slab_.Alloc(ctx, kNodeBytes));
  return addr.offset;
}

Status RemoteBTree::Put(NetContext* ctx, uint64_t key, uint64_t value) {
  if (offload_) {
    stats_.offloaded++;
    return OffloadIndexPut(fabric_, ctx, offload_node_, offload_tree_, key,
                           value);
  }
  std::vector<uint64_t> path;
  NodeImage leaf;
  DISAGG_RETURN_NOT_OK(DescendToLeaf(ctx, key, &path, &leaf));
  const uint64_t leaf_off = path.back();
  const GlobalAddr lock = LockAddr(leaf_off);
  DISAGG_RETURN_NOT_OK(AcquireLock(ctx, lock));
  // Re-read under the lock (the image may have changed since the descent).
  Status st = ReadNode(ctx, leaf_off, &leaf);
  if (!st.ok()) {
    (void)ReleaseLock(ctx, lock);
    return st;
  }

  // Update in place?
  for (uint32_t i = 0; i < leaf.nkeys; i++) {
    if (leaf.keys[i] == key) {
      leaf.vals[i] = value;
      Status ws = WriteNode(ctx, leaf_off, &leaf);
      (void)ReleaseLock(ctx, lock);
      return ws;
    }
  }
  if (leaf.nkeys < kFanout) {
    uint32_t pos = 0;
    while (pos < leaf.nkeys && leaf.keys[pos] < key) pos++;
    for (uint32_t i = leaf.nkeys; i > pos; i--) {
      leaf.keys[i] = leaf.keys[i - 1];
      leaf.vals[i] = leaf.vals[i - 1];
    }
    leaf.keys[pos] = key;
    leaf.vals[pos] = value;
    leaf.nkeys++;
    Status ws = WriteNode(ctx, leaf_off, &leaf);
    (void)ReleaseLock(ctx, lock);
    return ws;
  }
  (void)ReleaseLock(ctx, lock);
  return InsertWithSplit(ctx, key, value);
}

Status RemoteBTree::InsertWithSplit(NetContext* ctx, uint64_t key,
                                    uint64_t value) {
  GlobalAddr smo = tree_.lock_table;  // slot 0
  DISAGG_RETURN_NOT_OK(AcquireLock(ctx, smo));
  Status st = [&]() -> Status {
    std::vector<uint64_t> path;
    NodeImage leaf;
    DISAGG_RETURN_NOT_OK(DescendToLeaf(ctx, key, &path, &leaf));
    const uint64_t leaf_off = path.back();
    const GlobalAddr leaf_lock = LockAddr(leaf_off);
    DISAGG_RETURN_NOT_OK(AcquireLock(ctx, leaf_lock));
    Status inner = [&]() -> Status {
      DISAGG_RETURN_NOT_OK(ReadNode(ctx, leaf_off, &leaf));
      // Room may have appeared (or the key may exist) after a racing op.
      for (uint32_t i = 0; i < leaf.nkeys; i++) {
        if (leaf.keys[i] == key) {
          leaf.vals[i] = value;
          return WriteNode(ctx, leaf_off, &leaf);
        }
      }
      if (leaf.nkeys < kFanout) {
        uint32_t pos = 0;
        while (pos < leaf.nkeys && leaf.keys[pos] < key) pos++;
        for (uint32_t i = leaf.nkeys; i > pos; i--) {
          leaf.keys[i] = leaf.keys[i - 1];
          leaf.vals[i] = leaf.vals[i - 1];
        }
        leaf.keys[pos] = key;
        leaf.vals[pos] = value;
        leaf.nkeys++;
        return WriteNode(ctx, leaf_off, &leaf);
      }

      // Split the leaf.
      stats_.splits++;
      DISAGG_ASSIGN_OR_RETURN(uint64_t right_off, AllocNode(ctx));
      NodeImage right;
      std::memset(&right, 0, sizeof(right));
      const uint32_t half = kFanout / 2;
      right.level = 0;
      right.nkeys = kFanout - half;
      std::memcpy(right.keys, leaf.keys + half, right.nkeys * 8);
      std::memcpy(right.vals, leaf.vals + half, right.nkeys * 8);
      right.next = leaf.next;
      leaf.nkeys = half;
      leaf.next = right_off;

      // Insert the new key into whichever half owns it.
      NodeImage* target = key >= right.keys[0] ? &right : &leaf;
      uint32_t pos = 0;
      while (pos < target->nkeys && target->keys[pos] < key) pos++;
      for (uint32_t i = target->nkeys; i > pos; i--) {
        target->keys[i] = target->keys[i - 1];
        target->vals[i] = target->vals[i - 1];
      }
      target->keys[pos] = key;
      target->vals[pos] = value;
      target->nkeys++;

      // Publish right first, then the shrunk left (B-link ordering).
      DISAGG_RETURN_NOT_OK(WriteNode(ctx, right_off, &right));
      DISAGG_RETURN_NOT_OK(WriteNode(ctx, leaf_off, &leaf));

      // Propagate the separator up the path (all under the SMO lock; only
      // splitters ever write internal nodes).
      uint64_t sep = right.keys[0];
      uint64_t child = right_off;
      for (size_t depth = path.size(); depth-- > 1;) {
        const uint64_t parent_off = path[depth - 1];
        NodeImage parent;
        DISAGG_RETURN_NOT_OK(ReadNode(ctx, parent_off, &parent));
        if (parent.nkeys < kFanout) {
          uint32_t p = 0;
          while (p < parent.nkeys && parent.keys[p] < sep) p++;
          for (uint32_t i = parent.nkeys; i > p; i--) {
            parent.keys[i] = parent.keys[i - 1];
            parent.vals[i] = parent.vals[i - 1];
          }
          parent.keys[p] = sep;
          parent.vals[p] = child;
          parent.nkeys++;
          return WriteNode(ctx, parent_off, &parent);
        }
        // Split the internal node too.
        stats_.splits++;
        DISAGG_ASSIGN_OR_RETURN(uint64_t iright_off, AllocNode(ctx));
        NodeImage iright;
        std::memset(&iright, 0, sizeof(iright));
        const uint32_t ihalf = kFanout / 2;
        iright.level = parent.level;
        iright.nkeys = kFanout - ihalf;
        std::memcpy(iright.keys, parent.keys + ihalf, iright.nkeys * 8);
        std::memcpy(iright.vals, parent.vals + ihalf, iright.nkeys * 8);
        parent.nkeys = ihalf;
        NodeImage* itarget = sep >= iright.keys[0] ? &iright : &parent;
        uint32_t p = 0;
        while (p < itarget->nkeys && itarget->keys[p] < sep) p++;
        for (uint32_t i = itarget->nkeys; i > p; i--) {
          itarget->keys[i] = itarget->keys[i - 1];
          itarget->vals[i] = itarget->vals[i - 1];
        }
        itarget->keys[p] = sep;
        itarget->vals[p] = child;
        itarget->nkeys++;
        DISAGG_RETURN_NOT_OK(WriteNode(ctx, iright_off, &iright));
        DISAGG_RETURN_NOT_OK(WriteNode(ctx, parent_off, &parent));
        sep = iright.keys[0];
        child = iright_off;
      }

      // The root itself split: grow the tree.
      DISAGG_ASSIGN_OR_RETURN(uint64_t new_root_off, AllocNode(ctx));
      NodeImage new_root;
      std::memset(&new_root, 0, sizeof(new_root));
      NodeImage old_root;
      DISAGG_RETURN_NOT_OK(ReadNode(ctx, path[0], &old_root));
      new_root.level = old_root.level + 1;
      new_root.nkeys = 2;
      new_root.keys[0] = 0;  // leftmost separator: minus infinity
      new_root.vals[0] = path[0];
      new_root.keys[1] = sep;
      new_root.vals[1] = child;
      DISAGG_RETURN_NOT_OK(WriteNode(ctx, new_root_off, &new_root));
      return fabric_->Write(ctx, tree_.root_ptr, &new_root_off, 8);
    }();
    (void)ReleaseLock(ctx, leaf_lock);
    return inner;
  }();
  (void)ReleaseLock(ctx, smo);
  return st;
}

Result<uint64_t> RemoteBTree::Get(NetContext* ctx, uint64_t key) {
  if (offload_) {
    stats_.offloaded++;
    return OffloadIndexGet(fabric_, ctx, offload_node_, offload_tree_, key);
  }
  NodeImage leaf;
  DISAGG_RETURN_NOT_OK(DescendToLeaf(ctx, key, nullptr, &leaf));
  for (uint32_t i = 0; i < leaf.nkeys; i++) {
    if (leaf.keys[i] == key) return leaf.vals[i];
  }
  return Status::NotFound("key not in tree");
}

Status RemoteBTree::Delete(NetContext* ctx, uint64_t key) {
  if (offload_) {
    stats_.offloaded++;
    return OffloadIndexDelete(fabric_, ctx, offload_node_, offload_tree_, key);
  }
  std::vector<uint64_t> path;
  NodeImage leaf;
  DISAGG_RETURN_NOT_OK(DescendToLeaf(ctx, key, &path, &leaf));
  const uint64_t leaf_off = path.back();
  const GlobalAddr lock = LockAddr(leaf_off);
  DISAGG_RETURN_NOT_OK(AcquireLock(ctx, lock));
  Status st = [&]() -> Status {
    DISAGG_RETURN_NOT_OK(ReadNode(ctx, leaf_off, &leaf));
    for (uint32_t i = 0; i < leaf.nkeys; i++) {
      if (leaf.keys[i] == key) {
        for (uint32_t j = i; j + 1 < leaf.nkeys; j++) {
          leaf.keys[j] = leaf.keys[j + 1];
          leaf.vals[j] = leaf.vals[j + 1];
        }
        leaf.nkeys--;  // no merging: leaves may run underfull, as in Sherman
        return WriteNode(ctx, leaf_off, &leaf);
      }
    }
    return Status::NotFound("key not in tree");
  }();
  (void)ReleaseLock(ctx, lock);
  return st;
}

Result<std::vector<std::pair<uint64_t, uint64_t>>> RemoteBTree::Scan(
    NetContext* ctx, uint64_t from, size_t limit) {
  if (offload_) {
    stats_.offloaded++;
    return OffloadIndexScan(fabric_, ctx, offload_node_, offload_tree_, from,
                            limit);
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  NodeImage leaf;
  DISAGG_RETURN_NOT_OK(DescendToLeaf(ctx, from, nullptr, &leaf));
  while (out.size() < limit) {
    for (uint32_t i = 0; i < leaf.nkeys && out.size() < limit; i++) {
      if (leaf.keys[i] >= from) out.emplace_back(leaf.keys[i], leaf.vals[i]);
    }
    if (leaf.next == 0 || out.size() >= limit) break;
    DISAGG_RETURN_NOT_OK(ReadNode(ctx, leaf.next, &leaf));
  }
  return out;
}

}  // namespace disagg
