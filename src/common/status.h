#ifndef DISAGG_COMMON_STATUS_H_
#define DISAGG_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace disagg {

/// Error-handling type used across the library instead of exceptions,
/// following the RocksDB/Arrow idiom: functions that can fail return a
/// `Status` (or a `Result<T>`, see result.h) and the caller inspects it.
class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIOError,
    kBusy,
    kAborted,
    kTimedOut,
    kNotSupported,
    kUnavailable,
  };

  Status() = default;
  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers; each optional message is kept for diagnostics.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "<code>: <message>" string for logging.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define DISAGG_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::disagg::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace disagg

#endif  // DISAGG_COMMON_STATUS_H_
