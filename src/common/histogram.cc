#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace disagg {

Histogram::Histogram()
    : buckets_(kNumBuckets, 0),
      count_(0),
      sum_(0),
      min_(std::numeric_limits<uint64_t>::max()),
      max_(0) {}

int Histogram::BucketFor(uint64_t v) {
  if (v < 4) return static_cast<int>(v);
  // Power-of-two bucket with 4 linear sub-buckets for ~25% resolution.
  const int log2 = 63 - std::countl_zero(v);
  const int sub = static_cast<int>((v >> (log2 - 2)) & 3);
  const int b = log2 * 4 + sub;
  return std::min(b, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int b) {
  if (b < 4) return static_cast<uint64_t>(b);
  const int log2 = b / 4;
  const int sub = b % 4;
  return (uint64_t{1} << log2) +
         (static_cast<uint64_t>(sub + 1) << (log2 - 2)) - 1;
}

void Histogram::Record(uint64_t value_ns) {
  buckets_[BucketFor(value_ns)]++;
  count_++;
  sum_ += value_ns;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; i++) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const uint64_t rank =
      static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  uint64_t seen = 0;
  bool first_occupied = true;
  for (int i = 0; i < kNumBuckets; i++) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (seen > rank) {
      // The upper-bound estimate systematically overshoots inside the first
      // occupied bucket (the true minimum lies in it, below the bound), so
      // report min_ there; everywhere else clamp into the observed
      // [min_, max_] so no percentile ever leaves the sampled range.
      if (first_occupied) return static_cast<double>(min_);
      return static_cast<double>(std::clamp(BucketUpperBound(i), min_, max_));
    }
    first_occupied = false;
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%.0f p99=%.0f max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                Percentile(50), Percentile(99),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace disagg
