#ifndef DISAGG_COMMON_CODING_H_
#define DISAGG_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace disagg {

/// Little-endian fixed-width and varint encoders used by log records, page
/// layouts, and network message framing.

inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

/// Parses a varint64 from the front of `input`, advancing it. Returns false
/// on malformed/truncated input.
inline bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    const unsigned char byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (static_cast<uint64_t>(byte & 0x7F) << shift);
    } else {
      result |= (static_cast<uint64_t>(byte) << shift);
      *value = result;
      return true;
    }
  }
  return false;
}

inline void PutLengthPrefixedSlice(std::string* dst, const Slice& s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

inline bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint64_t len = 0;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

inline bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

inline bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

}  // namespace disagg

#endif  // DISAGG_COMMON_CODING_H_
