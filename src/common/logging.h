#ifndef DISAGG_COMMON_LOGGING_H_
#define DISAGG_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace disagg {

/// Minimal check macros: invariant violations abort with location info.
/// These guard internal invariants only; recoverable conditions use Status.
#define DISAGG_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                    \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#define DISAGG_CHECK_OK(expr)                                             \
  do {                                                                    \
    ::disagg::Status _st = (expr);                                        \
    if (!_st.ok()) {                                                      \
      std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, _st.ToString().c_str());                     \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

}  // namespace disagg

#endif  // DISAGG_COMMON_LOGGING_H_
