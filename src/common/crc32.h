#ifndef DISAGG_COMMON_CRC32_H_
#define DISAGG_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace disagg {

/// CRC-32C (Castagnoli) over a byte range. Used to checksum pages, log
/// records, and replicated segments so corruption injection in tests is
/// detectable, as in production storage engines.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace disagg

#endif  // DISAGG_COMMON_CRC32_H_
