#ifndef DISAGG_COMMON_RESULT_H_
#define DISAGG_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace disagg {

/// Value-or-error return type (the `StatusOr` idiom). A `Result<T>` holds
/// either a `T` or a non-OK `Status`. Access the value only after checking
/// `ok()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a Status keeps call sites terse:
  ///   return 42;                  // ok result
  ///   return Status::NotFound();  // error result
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the contained value or `fallback` on error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Assigns the value of a `Result<T>` expression to `lhs` (which may be a
/// declaration, e.g. `DISAGG_ASSIGN_OR_RETURN(GlobalAddr addr, Alloc(8))`),
/// or propagates the error. Usable only in functions returning Status or a
/// Result (Status converts into either).
#define DISAGG_ASSIGN_OR_RETURN(lhs, expr) \
  DISAGG_ASSIGN_OR_RETURN_IMPL_(           \
      DISAGG_MACRO_CONCAT_(_disagg_res_, __LINE__), lhs, expr)

#define DISAGG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define DISAGG_MACRO_CONCAT_(a, b) DISAGG_MACRO_CONCAT_IMPL_(a, b)
#define DISAGG_MACRO_CONCAT_IMPL_(a, b) a##b

}  // namespace disagg

#endif  // DISAGG_COMMON_RESULT_H_
