#ifndef DISAGG_COMMON_RANDOM_H_
#define DISAGG_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <string>

namespace disagg {

/// Fast xorshift64* PRNG. Deterministic given a seed; used everywhere a
/// workload or test needs reproducible randomness.
class Random {
 public:
  explicit Random(uint64_t seed = 0x2545F4914F6CDD1DULL)
      : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi].
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random printable-ish byte string of the given length.
  std::string RandomString(size_t len) {
    std::string s(len, '\0');
    for (size_t i = 0; i < len; i++) {
      s[i] = static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

 private:
  uint64_t state_;
};

/// Zipfian-distributed generator over [0, n) with skew `theta` (0.99 is the
/// classic YCSB default). Uses the Gray et al. rejection-free construction.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99,
                   uint64_t seed = 0xDEADBEEFULL)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) sum += 1.0 / std::pow(i, theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace disagg

#endif  // DISAGG_COMMON_RANDOM_H_
