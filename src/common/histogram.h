#ifndef DISAGG_COMMON_HISTOGRAM_H_
#define DISAGG_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace disagg {

/// Log-bucketed latency histogram (nanosecond samples). Cheap to record into,
/// supports mean/percentile queries; used by the bench harness to report
/// p50/p99 in simulated time.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value_ns);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double Mean() const;
  /// p in [0, 100]; returns an upper-bound estimate from the bucket edges,
  /// clamped into [min(), max()] so no percentile undershoots the smallest
  /// or overshoots the largest recorded sample. Monotonic in p.
  double Percentile(double p) const;

  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 64 * 4;  // 4 sub-buckets per power of 2.
  static int BucketFor(uint64_t v);
  static uint64_t BucketUpperBound(int b);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace disagg

#endif  // DISAGG_COMMON_HISTOGRAM_H_
