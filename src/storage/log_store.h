#ifndef DISAGG_STORAGE_LOG_STORE_H_
#define DISAGG_STORAGE_LOG_STORE_H_

#include <mutex>
#include <vector>

#include "common/result.h"
#include "net/fabric.h"
#include "storage/log_record.h"

namespace disagg {

/// Durable log service hosted on a log/storage node (Aurora's log tier,
/// Socrates' XLOG landing zone). Exposes RPCs:
///   log.append   -- append a batch, returns the new durable LSN
///   log.read     -- read records with lsn > from_lsn (bounded count)
///   log.tail     -- return the highest durable LSN (no records on the wire)
///   log.truncate -- drop records up to an LSN (after archiving)
///
/// Read contract (shared with `LogBackend::ReadFrom` and the shared log's
/// `slog.read`): the bound is EXCLUSIVE — `log.read(from, max)` returns up
/// to `max` records with `lsn > from`, in strictly increasing LSN order.
/// Passing `from = 0` (aka `kInvalidLsn`) therefore reads from the start;
/// passing the LSN of the last record seen resumes without duplicates, so
/// pagination is `from = last_batch.back().lsn`. Appends are idempotent by
/// LSN: records with `lsn <= durable_lsn` are dropped on re-send, which is
/// what makes WAL re-flush after a failed batch safe.
///
/// All state is behind a mutex; handler compute time is charged to callers
/// via RpcServerContext.
class LogStoreService {
 public:
  LogStoreService(Fabric* fabric, NodeId node);

  NodeId node() const { return node_; }

  /// Highest LSN made durable here (test/inspection accessor).
  Lsn durable_lsn() const;
  size_t record_count() const;

  /// Direct (non-fabric) access used by co-located recovery paths.
  std::vector<LogRecord> SnapshotFrom(Lsn from_exclusive) const;

 private:
  Status HandleAppend(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleRead(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleTail(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleTruncate(Slice req, std::string* resp, RpcServerContext* sctx);

  Fabric* fabric_;
  NodeId node_;
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
  Lsn durable_lsn_ = kInvalidLsn;
};

/// Compute-side client for a LogStoreService.
class LogStoreClient {
 public:
  LogStoreClient(Fabric* fabric, NodeId node) : fabric_(fabric), node_(node) {}

  NodeId node() const { return node_; }

  Result<Lsn> Append(NetContext* ctx, const std::vector<LogRecord>& records);
  Result<std::vector<LogRecord>> ReadFrom(NetContext* ctx, Lsn from_exclusive,
                                          uint64_t max_records = 1024);
  /// Highest durable LSN on the node, fetched over the fabric (so deadline,
  /// breaker, and WFQ accounting all apply — recovery probes must not peek
  /// service state directly).
  Result<Lsn> DurableLsn(NetContext* ctx);
  Status Truncate(NetContext* ctx, Lsn up_to_inclusive);

 private:
  Fabric* fabric_;
  NodeId node_;
};

}  // namespace disagg

#endif  // DISAGG_STORAGE_LOG_STORE_H_
