#include "storage/page_store.h"

#include "common/coding.h"

namespace disagg {

namespace {
constexpr uint64_t kApplyNsPerRecord = 250;
constexpr uint64_t kPageLookupNs = 400;
}  // namespace

PageStoreService::PageStoreService(Fabric* fabric, NodeId node)
    : fabric_(fabric), node_(node) {
  Node* n = fabric_->node(node_);
  n->RegisterHandler("page.apply_log",
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleApplyLog(req, resp, sctx);
                     });
  n->RegisterHandler("page.put",
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandlePut(req, resp, sctx);
                     });
  n->RegisterHandler("page.get",
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleGet(req, resp, sctx);
                     });
}

Lsn PageStoreService::high_water_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_lsn_;
}

size_t PageStoreService::materialized_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

size_t PageStoreService::pending_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, recs] : pending_) n += recs.size();
  return n;
}

size_t PageStoreService::MaterializeAll() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t applied = 0;
  for (auto& [id, recs] : pending_) applied += recs.size();
  std::vector<PageId> ids;
  for (const auto& [id, recs] : pending_) ids.push_back(id);
  for (PageId id : ids) {
    Status st = MaterializeLocked(id);
    (void)st;  // materialization errors surface on reads
  }
  return applied;
}

std::map<PageId, Lsn> PageStoreService::PageVersions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<PageId, Lsn> out;
  for (const auto& [id, page] : pages_) out[id] = page.lsn();
  for (const auto& [id, recs] : pending_) {
    if (!recs.empty()) {
      Lsn last = recs.back().lsn;
      auto it = out.find(id);
      if (it == out.end() || it->second < last) out[id] = last;
    }
  }
  return out;
}

void PageStoreService::IngestPage(const Page& page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(page.page_id());
  if (it == pages_.end() || it->second.lsn() < page.lsn()) {
    pages_.insert_or_assign(page.page_id(), page);
    // Drop pending redo the ingested image already covers.
    auto pit = pending_.find(page.page_id());
    if (pit != pending_.end()) {
      std::vector<LogRecord> keep;
      for (LogRecord& r : pit->second) {
        if (r.lsn > page.lsn()) keep.push_back(std::move(r));
      }
      pit->second = std::move(keep);
    }
    high_water_lsn_ = std::max(high_water_lsn_, page.lsn());
  }
}

Result<Page> PageStoreService::PeekPage(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(id);
  if (it == pages_.end()) return Status::NotFound("no such page");
  return it->second;
}

Status PageStoreService::MaterializeLocked(PageId id) {
  auto pit = pending_.find(id);
  if (pit == pending_.end() || pit->second.empty()) return Status::OK();
  auto it = pages_.find(id);
  if (it == pages_.end()) {
    it = pages_.emplace(id, Page(id)).first;
  }
  for (const LogRecord& r : pit->second) {
    DISAGG_RETURN_NOT_OK(ApplyRedo(&it->second, r));
  }
  pit->second.clear();
  return Status::OK();
}

Status PageStoreService::HandleApplyLog(Slice req, std::string* resp,
                                        RpcServerContext* sctx) {
  auto batch = LogRecord::DecodeBatch(req);
  if (!batch.ok()) return batch.status();
  std::lock_guard<std::mutex> lock(mu_);
  for (LogRecord& r : *batch) {
    if (r.lsn > high_water_lsn_) high_water_lsn_ = r.lsn;
    if (r.page_id == kInvalidPageId) continue;  // txn control records
    pending_[r.page_id].push_back(std::move(r));
  }
  // Receiving/queueing is cheap; replay cost is paid at materialization.
  sctx->ChargeCompute(30 * batch->size());
  resp->clear();
  PutVarint64(resp, high_water_lsn_);
  return Status::OK();
}

Status PageStoreService::HandlePut(Slice req, std::string* resp,
                                   RpcServerContext* sctx) {
  auto page = Page::FromBytes(req);
  if (!page.ok()) return page.status();
  if (!page->VerifyChecksum()) {
    return Status::Corruption("page checksum mismatch on put");
  }
  IngestPage(*page);
  sctx->ChargeCompute(kPageLookupNs);
  resp->clear();
  return Status::OK();
}

Status PageStoreService::HandleGet(Slice req, std::string* resp,
                                   RpcServerContext* sctx) {
  uint64_t id = 0;
  if (!GetVarint64(&req, &id)) return Status::InvalidArgument("page.get");
  std::lock_guard<std::mutex> lock(mu_);
  size_t pending_count = 0;
  auto pit = pending_.find(id);
  if (pit != pending_.end()) pending_count = pit->second.size();
  DISAGG_RETURN_NOT_OK(MaterializeLocked(id));
  auto it = pages_.find(id);
  if (it == pages_.end()) return Status::NotFound("no such page");
  it->second.Seal();
  resp->assign(it->second.data(), kPageSize);
  sctx->ChargeCompute(kPageLookupNs + kApplyNsPerRecord * pending_count);
  return Status::OK();
}

Result<Lsn> PageStoreClient::ApplyLog(NetContext* ctx,
                                      const std::vector<LogRecord>& records) {
  const std::string req = LogRecord::EncodeBatch(records);
  std::string resp;
  Status st = fabric_->Call(ctx, node_, "page.apply_log", req, &resp);
  if (!st.ok()) return st;
  Slice in(resp);
  uint64_t lsn = 0;
  if (!GetVarint64(&in, &lsn)) return Status::Corruption("apply_log response");
  return lsn;
}

Status PageStoreClient::PutPage(NetContext* ctx, const Page& page) {
  Page copy = page;
  copy.Seal();
  std::string resp;
  return fabric_->Call(ctx, node_, "page.put", Slice(copy.data(), kPageSize),
                       &resp);
}

Result<Page> PageStoreClient::GetPage(NetContext* ctx, PageId id) {
  std::string req;
  PutVarint64(&req, id);
  std::string resp;
  Status st = fabric_->Call(ctx, node_, "page.get", req, &resp);
  if (!st.ok()) return st;
  auto page = Page::FromBytes(resp);
  if (!page.ok()) return page.status();
  if (!page->VerifyChecksum()) {
    return Status::Corruption("page checksum mismatch on get");
  }
  return page;
}

}  // namespace disagg
