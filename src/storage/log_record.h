#ifndef DISAGG_STORAGE_LOG_RECORD_H_
#define DISAGG_STORAGE_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/page.h"

namespace disagg {

using TxnId = uint64_t;

/// Kind of redo/undo record. The physical kinds carry enough state to both
/// redo (after-image) and undo (before-image) a slot operation, which is what
/// ARIES-style recovery and log-as-the-database materialization need.
enum class LogType : uint8_t {
  kInsert = 1,   // payload = after-image; applied as page insert
  kUpdate = 2,   // payload = after-image, undo_payload = before-image
  kDelete = 3,   // undo_payload = before-image
  kTxnBegin = 4,
  kTxnCommit = 5,
  kTxnAbort = 6,
  kCheckpoint = 7,  // payload = serialized checkpoint metadata
  kClr = 8,         // compensation record written during undo
};

/// A single write-ahead-log record. This is the unit Aurora ships over the
/// network instead of pages ("the log is the database") and the unit PilotDB
/// writes to the PM tier with one-sided RDMA.
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  Lsn prev_lsn = kInvalidLsn;  // previous record of the same transaction
  TxnId txn_id = 0;
  LogType type = LogType::kInsert;
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;
  /// Engine-level row key the record concerns (0 when inapplicable); lets
  /// the compute node maintain its key index during rollback/recovery.
  uint64_t row_key = 0;
  /// For CLRs: the LSN of the record this CLR compensates (ARIES's
  /// undoNextLSN role) — recovery skips re-undoing compensated records.
  Lsn compensates_lsn = kInvalidLsn;
  std::string payload;       // after-image (redo)
  std::string undo_payload;  // before-image (undo)

  /// Serialized length in bytes (what gets charged to the network).
  size_t EncodedSize() const;
  void EncodeTo(std::string* dst) const;
  static Result<LogRecord> DecodeFrom(Slice* input);

  /// Encodes a batch of records into one buffer (group shipping).
  static std::string EncodeBatch(const std::vector<LogRecord>& records);
  static Result<std::vector<LogRecord>> DecodeBatch(Slice input);
};

/// Applies a redo record to a page. Idempotent: records at or below the
/// page's LSN are skipped, so replaying a log prefix any number of times
/// converges to the same page image (tested as a property).
Status ApplyRedo(Page* page, const LogRecord& record);

}  // namespace disagg

#endif  // DISAGG_STORAGE_LOG_RECORD_H_
