#ifndef DISAGG_STORAGE_OBJECT_STORE_H_
#define DISAGG_STORAGE_OBJECT_STORE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/fabric.h"

namespace disagg {

/// S3/XStore-like object storage service (the cheap, slow, durable bottom
/// tier: Snowflake's data files, Socrates' XStore). Objects are immutable:
/// a PUT to an existing key fails, matching the immutable-file design the
/// paper highlights for disaggregated OLAP (Sec. 2.2).
class ObjectStoreService {
 public:
  ObjectStoreService(Fabric* fabric, NodeId node);

  NodeId node() const { return node_; }
  size_t object_count() const;
  size_t total_bytes() const;

 private:
  Status HandlePut(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleGet(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleList(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleDelete(Slice req, std::string* resp, RpcServerContext* sctx);

  Fabric* fabric_;
  NodeId node_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> objects_;
};

/// Compute-side client for an ObjectStoreService.
class ObjectStoreClient {
 public:
  ObjectStoreClient(Fabric* fabric, NodeId node)
      : fabric_(fabric), node_(node) {}

  Status Put(NetContext* ctx, const std::string& key, Slice value);
  Result<std::string> Get(NetContext* ctx, const std::string& key);
  Result<std::vector<std::string>> List(NetContext* ctx,
                                        const std::string& prefix);
  Status Delete(NetContext* ctx, const std::string& key);

 private:
  Fabric* fabric_;
  NodeId node_;
};

}  // namespace disagg

#endif  // DISAGG_STORAGE_OBJECT_STORE_H_
