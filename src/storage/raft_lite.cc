#include "storage/raft_lite.h"

#include <algorithm>

#include "common/coding.h"

namespace disagg {

namespace {

// AppendEntries request wire format.
void EncodeAppendEntries(std::string* dst, uint64_t term, uint64_t prev_index,
                         uint64_t prev_term, uint64_t leader_commit,
                         const std::vector<RaftEntry>& entries) {
  PutVarint64(dst, term);
  PutVarint64(dst, prev_index);
  PutVarint64(dst, prev_term);
  PutVarint64(dst, leader_commit);
  PutVarint64(dst, entries.size());
  for (const RaftEntry& e : entries) {
    PutVarint64(dst, e.term);
    PutLengthPrefixedSlice(dst, e.payload);
  }
}

}  // namespace

RaftReplicaService::RaftReplicaService(Fabric* fabric, NodeId node)
    : fabric_(fabric), node_(node) {
  fabric_->node(node_)->RegisterHandler(
      "raft.append_entries",
      [this](Slice req, std::string* resp, RpcServerContext* sctx) {
        return HandleAppendEntries(req, resp, sctx);
      });
  fabric_->node(node_)->RegisterHandler(
      "raft.read",
      [this](Slice req, std::string* resp, RpcServerContext* sctx) {
        return HandleRead(req, resp, sctx);
      });
}

uint64_t RaftReplicaService::current_term() const {
  std::lock_guard<std::mutex> lock(mu_);
  return term_;
}

uint64_t RaftReplicaService::log_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

uint64_t RaftReplicaService::commit_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_;
}

Result<RaftEntry> RaftReplicaService::entry(uint64_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= log_.size()) return Status::NotFound("no such entry");
  return log_[index];
}

void RaftReplicaService::BecomeLeader(uint64_t term) {
  std::lock_guard<std::mutex> lock(mu_);
  term_ = term;
}

uint64_t RaftReplicaService::AppendLocal(RaftEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.push_back(std::move(entry));
  return log_.size() - 1;
}

void RaftReplicaService::AdvanceCommitLocal(uint64_t commit) {
  std::lock_guard<std::mutex> lock(mu_);
  commit_ = std::max(commit_, std::min<uint64_t>(commit, log_.size()));
}

Status RaftReplicaService::HandleAppendEntries(Slice req, std::string* resp,
                                               RpcServerContext* sctx) {
  uint64_t term = 0, prev_index = 0, prev_term = 0, leader_commit = 0, n = 0;
  if (!GetVarint64(&req, &term) || !GetVarint64(&req, &prev_index) ||
      !GetVarint64(&req, &prev_term) || !GetVarint64(&req, &leader_commit) ||
      !GetVarint64(&req, &n)) {
    return Status::InvalidArgument("malformed append_entries");
  }
  std::vector<RaftEntry> entries;
  entries.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    RaftEntry e;
    Slice payload;
    if (!GetVarint64(&req, &e.term) ||
        !GetLengthPrefixedSlice(&req, &payload)) {
      return Status::InvalidArgument("malformed entry");
    }
    e.payload = payload.ToString();
    entries.push_back(std::move(e));
  }

  std::lock_guard<std::mutex> lock(mu_);
  resp->clear();
  // Every response carries (success, term, log_size); the log size acts as
  // the conflict hint that lets the leader skip straight to the end of a
  // merely-lagging follower's log instead of probing one index at a time.
  if (term < term_) {
    PutVarint64(resp, 0);  // success=false
    PutVarint64(resp, term_);
    PutVarint64(resp, log_.size());
    return Status::OK();
  }
  term_ = term;
  // Log-matching: prev_index entries must exist and the last must match
  // prev_term. prev_index == 0 means "from the beginning".
  if (prev_index > log_.size() ||
      (prev_index > 0 && log_[prev_index - 1].term != prev_term)) {
    PutVarint64(resp, 0);
    PutVarint64(resp, term_);
    PutVarint64(resp, log_.size());
    sctx->ChargeCompute(200);
    return Status::OK();
  }
  // Truncate conflicting suffix, then append.
  uint64_t idx = prev_index;
  for (RaftEntry& e : entries) {
    if (idx < log_.size()) {
      if (log_[idx].term != e.term) {
        log_.resize(idx);
        log_.push_back(std::move(e));
      }
    } else {
      log_.push_back(std::move(e));
    }
    idx++;
  }
  commit_ = std::max(commit_, std::min<uint64_t>(leader_commit, log_.size()));
  sctx->ChargeCompute(200 + 150 * entries.size());
  PutVarint64(resp, 1);  // success
  PutVarint64(resp, term_);
  PutVarint64(resp, log_.size());
  return Status::OK();
}

Status RaftReplicaService::HandleRead(Slice req, std::string* resp,
                                      RpcServerContext* sctx) {
  uint64_t index = 0;
  if (!GetVarint64(&req, &index)) {
    return Status::InvalidArgument("malformed raft.read");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= commit_) return Status::NotFound("entry not committed");
  sctx->ChargeCompute(100);
  resp->clear();
  PutVarint64(resp, log_[index].term);
  PutLengthPrefixedSlice(resp, log_[index].payload);
  return Status::OK();
}

RaftLiteGroup::RaftLiteGroup(Fabric* fabric, int replicas,
                             InterconnectModel model,
                             const std::string& name_prefix)
    : fabric_(fabric) {
  for (int i = 0; i < replicas; i++) {
    Member m;
    m.node = fabric_->AddNode(name_prefix + "-" + std::to_string(i),
                              NodeKind::kStorage, model,
                              static_cast<uint32_t>(i));
    m.service = std::make_unique<RaftReplicaService>(fabric_, m.node);
    m.next_index = 0;
    replicas_.push_back(std::move(m));
  }
  replicas_[leader_].service->BecomeLeader(term_);
}

Status RaftLiteGroup::ReplicateTo(NetContext* ctx, int follower_idx) {
  Member& follower = replicas_[follower_idx];
  RaftReplicaService* leader_svc = replicas_[leader_].service.get();
  for (int attempts = 0; attempts < 64; attempts++) {
    const uint64_t prev_index = follower.next_index;
    uint64_t prev_term = 0;
    if (prev_index > 0) {
      auto e = leader_svc->entry(prev_index - 1);
      if (!e.ok()) return e.status();
      prev_term = e->term;
    }
    std::vector<RaftEntry> suffix;
    for (uint64_t i = prev_index; i < leader_svc->log_size(); i++) {
      suffix.push_back(std::move(leader_svc->entry(i)).value());
    }
    std::string req;
    EncodeAppendEntries(&req, term_, prev_index, prev_term,
                        leader_svc->commit_index(), suffix);
    std::string resp;
    DISAGG_RETURN_NOT_OK(fabric_->Call(ctx, follower.node,
                                       "raft.append_entries", req, &resp));
    Slice in(resp);
    uint64_t success = 0, follower_term = 0, follower_log_size = 0;
    if (!GetVarint64(&in, &success) || !GetVarint64(&in, &follower_term) ||
        !GetVarint64(&in, &follower_log_size)) {
      return Status::Corruption("append_entries response");
    }
    if (follower_term > term_) {
      return Status::Aborted("deposed: follower has a newer term");
    }
    if (success) {
      follower.next_index = leader_svc->log_size();
      return Status::OK();
    }
    // Log mismatch: back off one entry, or jump to the follower's log end
    // if it is shorter than the probe point (it cannot match beyond it).
    if (follower.next_index == 0) {
      return Status::Corruption("log mismatch at index 0");
    }
    follower.next_index =
        std::min(follower.next_index - 1, follower_log_size);
  }
  // The log-matching walk needs more rounds than this call's budget. The
  // match point found so far persists in next_index, so this is retryable
  // contention (Busy), not a simulated infrastructure failure
  // (TimedOut/Unavailable are reserved for those): calling again resumes
  // the walk where it stalled.
  return Status::Busy("replication did not converge within the round budget");
}

Status RaftLiteGroup::SyncFollower(NetContext* ctx, int follower_idx) {
  if (follower_idx < 0 || follower_idx >= size()) {
    return Status::InvalidArgument("no such replica");
  }
  if (follower_idx == leader_) return Status::OK();
  return ReplicateTo(ctx, follower_idx);
}

Result<uint64_t> RaftLiteGroup::Append(NetContext* ctx, std::string payload) {
  RaftReplicaService* leader_svc = replicas_[leader_].service.get();
  const uint64_t index =
      leader_svc->AppendLocal(RaftEntry{term_, std::move(payload)});

  int acks = 1;  // leader itself
  std::vector<NetContext> branch(replicas_.size(), ctx->Fork());
  for (int i = 0; i < size(); i++) {
    if (i == leader_) continue;
    if (ReplicateTo(&branch[i], i).ok()) acks++;
  }
  JoinParallel(ctx, branch.data(), branch.size());

  const int majority = size() / 2 + 1;
  if (acks < majority) {
    return Status::Unavailable("no majority: " + std::to_string(acks) + "/" +
                               std::to_string(majority));
  }
  leader_svc->AdvanceCommitLocal(index + 1);
  // Lazily piggyback the new commit index on the next AppendEntries; tests
  // that need immediate propagation call Append again or ElectLeader.
  return index;
}

Result<int> RaftLiteGroup::ElectLeader(NetContext* ctx, int preferred) {
  // Find the most up-to-date live replica (Raft's election restriction).
  int best = -1;
  uint64_t best_len = 0;
  for (int i = 0; i < size(); i++) {
    if (fabric_->node(replicas_[i].node)->failed()) continue;
    const uint64_t len = replicas_[i].service->log_size();
    if (best == -1 || len > best_len) {
      best = i;
      best_len = len;
    }
  }
  if (best == -1) return Status::Unavailable("no live replica");
  if (preferred >= 0 && preferred < size() &&
      !fabric_->node(replicas_[preferred].node)->failed() &&
      replicas_[preferred].service->log_size() == best_len) {
    best = preferred;
  }
  term_++;
  leader_ = best;
  replicas_[leader_].service->BecomeLeader(term_);
  // Optimistic next_index (Raft's post-election initialization): assume each
  // follower matches the whole leader log; the reject hint walks it back
  // cheaply when one does not.
  const uint64_t leader_len = replicas_[leader_].service->log_size();
  for (auto& m : replicas_) m.next_index = leader_len;
  // Re-assert leadership / sync live followers.
  std::vector<NetContext> branch(replicas_.size(), ctx->Fork());
  for (int i = 0; i < size(); i++) {
    if (i == leader_) continue;
    (void)ReplicateTo(&branch[i], i);
  }
  JoinParallel(ctx, branch.data(), branch.size());
  return leader_;
}

Result<RaftEntry> RaftLiteGroup::ReadCommitted(NetContext* ctx,
                                               uint64_t index) {
  std::string req, resp;
  PutVarint64(&req, index);
  DISAGG_RETURN_NOT_OK(
      fabric_->Call(ctx, replicas_[leader_].node, "raft.read", req, &resp));
  Slice in(resp);
  RaftEntry e;
  Slice payload;
  if (!GetVarint64(&in, &e.term) || !GetLengthPrefixedSlice(&in, &payload)) {
    return Status::Corruption("raft.read response");
  }
  e.payload = payload.ToString();
  return e;
}

Result<RaftEntry> RaftLiteGroup::ReadCommitted(uint64_t index) {
  RaftReplicaService* leader_svc = replicas_[leader_].service.get();
  if (index >= leader_svc->commit_index()) {
    return Status::NotFound("entry not committed");
  }
  return leader_svc->entry(index);
}

}  // namespace disagg
