#ifndef DISAGG_STORAGE_RAFT_LITE_H_
#define DISAGG_STORAGE_RAFT_LITE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/fabric.h"

namespace disagg {

/// One replicated log entry (a PolarFS chunk write).
struct RaftEntry {
  uint64_t term = 0;
  std::string payload;
};

/// Follower-side state machine of the simplified Raft used by PolarFS
/// (Sec. 2.1: "durability through a three-way replication with an optimized
/// Raft protocol"). Leader election is administrative (the group object picks
/// the leader and bumps the term); log replication implements the real Raft
/// safety rules: term checks, log-matching on (prev_index, prev_term),
/// conflict truncation, and monotonic commit index.
class RaftReplicaService {
 public:
  RaftReplicaService(Fabric* fabric, NodeId node);

  NodeId node() const { return node_; }
  uint64_t current_term() const;
  uint64_t log_size() const;
  uint64_t commit_index() const;  // number of committed entries
  Result<RaftEntry> entry(uint64_t index) const;

  /// Called by the group when this replica becomes leader.
  void BecomeLeader(uint64_t term);

  /// Local (leader-side) append, no network.
  uint64_t AppendLocal(RaftEntry entry);
  void AdvanceCommitLocal(uint64_t commit);

 private:
  friend class RaftLiteGroup;
  Status HandleAppendEntries(Slice req, std::string* resp,
                             RpcServerContext* sctx);
  Status HandleRead(Slice req, std::string* resp, RpcServerContext* sctx);

  Fabric* fabric_;
  NodeId node_;
  mutable std::mutex mu_;
  uint64_t term_ = 0;
  uint64_t commit_ = 0;
  std::vector<RaftEntry> log_;
};

/// Coordinator for a RaftLite replication group. The leader replica accepts
/// writes; `Append` returns once a majority has persisted the entry.
class RaftLiteGroup {
 public:
  RaftLiteGroup(Fabric* fabric, int replicas,
                InterconnectModel model = InterconnectModel::Ssd(),
                const std::string& name_prefix = "raft");

  int size() const { return static_cast<int>(replicas_.size()); }
  int leader() const { return leader_; }
  uint64_t term() const { return term_; }
  RaftReplicaService* replica(int i) { return replicas_[i].service.get(); }
  NodeId replica_node(int i) const { return replicas_[i].node; }

  /// Replicates `payload`; returns its log index (0-based) once committed on
  /// a majority. Fails Unavailable if a majority cannot be reached.
  Result<uint64_t> Append(NetContext* ctx, std::string payload);

  /// Anti-entropy: pushes the leader's log to one follower. Busy means the
  /// log-matching walk did not converge within the per-call round budget;
  /// the match point found so far is kept, so calling again resumes and
  /// makes progress (retryable contention, not an infrastructure failure).
  Status SyncFollower(NetContext* ctx, int follower_idx);

  /// Administrative failover: promotes the most up-to-date live replica
  /// (or `preferred` if it is as up-to-date as any live replica) and bumps
  /// the term. Returns the new leader index.
  Result<int> ElectLeader(NetContext* ctx, int preferred = -1);

  /// Reads a committed entry through the current leader over the fabric
  /// (`raft.read`), so retry / faults / congestion apply and the caller is
  /// charged — the read path recovery scans must use.
  Result<RaftEntry> ReadCommitted(NetContext* ctx, uint64_t index);

  /// Direct (non-fabric) committed-entry peek for tests and audits.
  Result<RaftEntry> ReadCommitted(uint64_t index);

 private:
  struct Member {
    NodeId node = 0;
    std::unique_ptr<RaftReplicaService> service;
    uint64_t next_index = 0;  // leader's guess of follower match point
  };

  /// Sends the suffix of the leader log starting at follower's next_index;
  /// steps back on log-matching conflicts (jumping straight to the
  /// follower's log end when the reject hint shows it is merely lagging).
  Status ReplicateTo(NetContext* ctx, int follower_idx);

  Fabric* fabric_;
  std::vector<Member> replicas_;
  int leader_ = 0;
  uint64_t term_ = 1;
};

}  // namespace disagg

#endif  // DISAGG_STORAGE_RAFT_LITE_H_
