#ifndef DISAGG_STORAGE_PAGE_STORE_H_
#define DISAGG_STORAGE_PAGE_STORE_H_

#include <map>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "net/fabric.h"
#include "storage/log_record.h"
#include "storage/page.h"

namespace disagg {

/// Page service hosted on a storage node. Supports both architectures the
/// paper contrasts in Sec. 2.1:
///  - log shipping (Aurora/Socrates/Taurus): compute sends only redo records
///    ("page.apply_log"); the store materializes pages from logs lazily, i.e.
///    "generates data pages based on logs asynchronously";
///  - page shipping (PolarDB): compute sends whole pages ("page.put").
/// Reads ("page.get") materialize any pending redo first and return the full
/// page image plus its LSN.
class PageStoreService {
 public:
  PageStoreService(Fabric* fabric, NodeId node);

  NodeId node() const { return node_; }

  /// Highest LSN received in any redo record (durability watermark).
  Lsn high_water_lsn() const;
  size_t materialized_pages() const;
  size_t pending_records() const;

  /// Applies all pending redo (normally done lazily on read). Returns the
  /// number of records applied. Exposed so benchmarks can measure the
  /// foreground vs background split.
  size_t MaterializeAll();

  /// Gossip support (Taurus, Sec. 2.1): version vector of page → LSN, and
  /// direct ingestion of a peer's newer page image.
  std::map<PageId, Lsn> PageVersions() const;
  void IngestPage(const Page& page);
  Result<Page> PeekPage(PageId id) const;

 private:
  Status HandleApplyLog(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandlePut(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleGet(Slice req, std::string* resp, RpcServerContext* sctx);

  // Applies pending redo for one page (mu_ held).
  Status MaterializeLocked(PageId id);

  Fabric* fabric_;
  NodeId node_;
  mutable std::mutex mu_;
  std::map<PageId, Page> pages_;
  std::map<PageId, std::vector<LogRecord>> pending_;
  Lsn high_water_lsn_ = kInvalidLsn;
};

/// Compute-side client for a PageStoreService.
class PageStoreClient {
 public:
  PageStoreClient(Fabric* fabric, NodeId node) : fabric_(fabric), node_(node) {}

  NodeId node() const { return node_; }

  /// Ships redo records (log shipping). Returns the store's high-water LSN.
  Result<Lsn> ApplyLog(NetContext* ctx, const std::vector<LogRecord>& records);

  /// Ships a full page image (page shipping).
  Status PutPage(NetContext* ctx, const Page& page);

  /// Fetches the current image of a page (materializing pending redo).
  Result<Page> GetPage(NetContext* ctx, PageId id);

 private:
  Fabric* fabric_;
  NodeId node_;
};

}  // namespace disagg

#endif  // DISAGG_STORAGE_PAGE_STORE_H_
