#ifndef DISAGG_STORAGE_QUORUM_H_
#define DISAGG_STORAGE_QUORUM_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "net/fabric.h"
#include "storage/log_store.h"
#include "storage/page_store.h"

namespace disagg {

/// One replica of an Aurora-style storage segment: a storage node hosting
/// both a log service and a page service (the segment materializes pages
/// from the logs it receives).
struct SegmentReplica {
  NodeId node = 0;
  uint32_t az = 0;
  std::unique_ptr<LogStoreService> log_service;
  std::unique_ptr<PageStoreService> page_service;
};

/// Aurora's replicated segment (Sec. 2.1): V copies spread over `num_azs`
/// availability zones with write quorum W and read quorum R (Aurora uses
/// V=6, AZs=3, W=4, R=3 so that one whole-AZ failure plus one extra node
/// never blocks writes). Writes fan out in parallel; the caller's simulated
/// clock advances by the W-th fastest ack (we approximate with the max of
/// the successful branch costs, a slight over-charge).
class ReplicatedSegment {
 public:
  struct Config {
    int replicas = 6;
    int num_azs = 3;
    int write_quorum = 4;
    int read_quorum = 3;
    InterconnectModel model = InterconnectModel::Ssd();
  };

  /// Builds the replica nodes and services on `fabric`.
  ReplicatedSegment(Fabric* fabric, const Config& config,
                    const std::string& name_prefix = "seg");

  const Config& config() const { return config_; }
  size_t replica_count() const { return replicas_.size(); }
  const SegmentReplica& replica(size_t i) const { return replicas_[i]; }

  /// Ships redo records to all replicas; succeeds once `write_quorum` acks
  /// arrive. Records are queued for page materialization on each replica.
  /// Each replica is sent its un-acked suffix of the append history, so a
  /// replica that missed earlier appends (drop, flap, AZ outage) is resynced
  /// before the new records count as acked: an ack always means "this
  /// replica contiguously holds everything up to the acked LSN". In the
  /// fault-free case the suffix is exactly `records`, so costs are
  /// unchanged. Server-side LSN dedup makes re-sends idempotent.
  Result<Lsn> AppendLog(NetContext* ctx, const std::vector<LogRecord>& records);

  /// Reads a page from the first reachable replica whose durable LSN covers
  /// `min_lsn` (the compute node tracks acked LSNs, as in Aurora where reads
  /// normally touch a single replica).
  Result<Page> ReadPage(NetContext* ctx, PageId id, Lsn min_lsn);

  /// Degrade-ladder fallback: fans out to every reachable replica in
  /// parallel and returns the freshest materialized copy, with no acked-LSN
  /// or freshness gate — the caller judges the returned page's own LSN
  /// against its staleness bound.
  Result<Page> ReadPageFreshest(NetContext* ctx, PageId id);

  /// Establishes the recovery LSN by polling a read quorum — the crash
  /// recovery path where R + W > V guarantees the result is at least the
  /// highest quorum-committed LSN (it may exceed it if an interrupted write
  /// reached some replicas; Aurora completes or truncates those during
  /// repair).
  Result<Lsn> RecoverDurableLsn(NetContext* ctx);

  /// Fails / revives every replica in an AZ (failure-injection helper).
  void FailAz(uint32_t az);
  void ReviveAz(uint32_t az);

  /// Number of replicas that currently acknowledge `lsn` as durable.
  int CountDurable(Lsn lsn) const;

 private:
  Fabric* fabric_;
  Config config_;
  std::vector<SegmentReplica> replicas_;
  // Writers may share one segment client (MultiWriterDb attaches any number
  // of threads); the append history and per-replica cursors below must move
  // as one unit, so appends hold this for their full fan-out.
  mutable std::mutex mu_;
  std::vector<Lsn> acked_lsn_;  // per-replica contiguously-acked LSN
  // Client-side append history driving per-replica resync. Unbounded, like
  // the replica logs themselves — the simulator never truncates segments.
  std::vector<LogRecord> history_;
  std::vector<size_t> next_idx_;  // per-replica: first history_ index not acked
};

}  // namespace disagg

#endif  // DISAGG_STORAGE_QUORUM_H_
