#include "storage/object_store.h"

#include "common/coding.h"

namespace disagg {

ObjectStoreService::ObjectStoreService(Fabric* fabric, NodeId node)
    : fabric_(fabric), node_(node) {
  Node* n = fabric_->node(node_);
  n->RegisterHandler("obj.put", [this](Slice req, std::string* resp,
                                       RpcServerContext* sctx) {
    return HandlePut(req, resp, sctx);
  });
  n->RegisterHandler("obj.get", [this](Slice req, std::string* resp,
                                       RpcServerContext* sctx) {
    return HandleGet(req, resp, sctx);
  });
  n->RegisterHandler("obj.list", [this](Slice req, std::string* resp,
                                        RpcServerContext* sctx) {
    return HandleList(req, resp, sctx);
  });
  n->RegisterHandler("obj.delete", [this](Slice req, std::string* resp,
                                          RpcServerContext* sctx) {
    return HandleDelete(req, resp, sctx);
  });
}

size_t ObjectStoreService::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

size_t ObjectStoreService::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [k, v] : objects_) n += v.size();
  return n;
}

Status ObjectStoreService::HandlePut(Slice req, std::string* resp,
                                     RpcServerContext* sctx) {
  Slice key, value;
  if (!GetLengthPrefixedSlice(&req, &key) ||
      !GetLengthPrefixedSlice(&req, &value)) {
    return Status::InvalidArgument("malformed obj.put");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = objects_.emplace(key.ToString(), value.ToString());
  if (!inserted) {
    return Status::InvalidArgument("object exists (objects are immutable): " +
                                   key.ToString());
  }
  sctx->ChargeCompute(2000);
  resp->clear();
  return Status::OK();
}

Status ObjectStoreService::HandleGet(Slice req, std::string* resp,
                                     RpcServerContext* sctx) {
  Slice key;
  if (!GetLengthPrefixedSlice(&req, &key)) {
    return Status::InvalidArgument("malformed obj.get");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key.ToString());
  if (it == objects_.end()) return Status::NotFound(key.ToString());
  *resp = it->second;
  sctx->ChargeCompute(2000);
  return Status::OK();
}

Status ObjectStoreService::HandleList(Slice req, std::string* resp,
                                      RpcServerContext* sctx) {
  Slice prefix;
  if (!GetLengthPrefixedSlice(&req, &prefix)) {
    return Status::InvalidArgument("malformed obj.list");
  }
  std::lock_guard<std::mutex> lock(mu_);
  resp->clear();
  std::vector<std::string> keys;
  for (const auto& [k, v] : objects_) {
    if (Slice(k).starts_with(prefix)) keys.push_back(k);
  }
  PutVarint64(resp, keys.size());
  for (const std::string& k : keys) PutLengthPrefixedSlice(resp, k);
  sctx->ChargeCompute(500 + 100 * objects_.size());
  return Status::OK();
}

Status ObjectStoreService::HandleDelete(Slice req, std::string* resp,
                                        RpcServerContext* sctx) {
  Slice key;
  if (!GetLengthPrefixedSlice(&req, &key)) {
    return Status::InvalidArgument("malformed obj.delete");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (objects_.erase(key.ToString()) == 0) {
    return Status::NotFound(key.ToString());
  }
  sctx->ChargeCompute(1000);
  resp->clear();
  return Status::OK();
}

Status ObjectStoreClient::Put(NetContext* ctx, const std::string& key,
                              Slice value) {
  std::string req;
  PutLengthPrefixedSlice(&req, key);
  PutLengthPrefixedSlice(&req, value);
  std::string resp;
  return fabric_->Call(ctx, node_, "obj.put", req, &resp);
}

Result<std::string> ObjectStoreClient::Get(NetContext* ctx,
                                           const std::string& key) {
  std::string req;
  PutLengthPrefixedSlice(&req, key);
  std::string resp;
  Status st = fabric_->Call(ctx, node_, "obj.get", req, &resp);
  if (!st.ok()) return st;
  return resp;
}

Result<std::vector<std::string>> ObjectStoreClient::List(
    NetContext* ctx, const std::string& prefix) {
  std::string req;
  PutLengthPrefixedSlice(&req, prefix);
  std::string resp;
  Status st = fabric_->Call(ctx, node_, "obj.list", req, &resp);
  if (!st.ok()) return st;
  Slice in(resp);
  uint64_t n = 0;
  if (!GetVarint64(&in, &n)) return Status::Corruption("obj.list response");
  std::vector<std::string> keys;
  for (uint64_t i = 0; i < n; i++) {
    Slice k;
    if (!GetLengthPrefixedSlice(&in, &k)) {
      return Status::Corruption("obj.list key");
    }
    keys.push_back(k.ToString());
  }
  return keys;
}

Status ObjectStoreClient::Delete(NetContext* ctx, const std::string& key) {
  std::string req;
  PutLengthPrefixedSlice(&req, key);
  std::string resp;
  return fabric_->Call(ctx, node_, "obj.delete", req, &resp);
}

}  // namespace disagg
