#ifndef DISAGG_STORAGE_PAGE_H_
#define DISAGG_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace disagg {

using PageId = uint64_t;
using Lsn = uint64_t;

constexpr Lsn kInvalidLsn = 0;
constexpr PageId kInvalidPageId = ~0ull;

/// Database page size. Small relative to production (8 KB is typical there
/// too); all cost models are per-byte so the choice only scales experiments.
constexpr size_t kPageSize = 8192;

/// Slotted database page: header, slot directory growing down from the front,
/// record heap growing up from the back. Carries the LSN of the last redo
/// record applied to it (the basis of log-as-the-database materialization and
/// of PilotDB's optimistic read validation) and a CRC for torn/corrupt page
/// detection.
class Page {
 public:
  /// Byte layout of the page header (first kHeaderSize bytes of data_).
  struct Header {
    PageId page_id;
    Lsn lsn;
    uint32_t checksum;
    uint16_t slot_count;
    uint16_t free_start;  // first free byte after the slot directory
    uint16_t free_end;    // one past the last free byte before record heap
    uint16_t padding;
  };
  static constexpr size_t kHeaderSize = sizeof(Header);
  static constexpr size_t kSlotSize = 4;  // offset u16 + length u16

  Page();
  explicit Page(PageId id);

  PageId page_id() const { return header().page_id; }
  Lsn lsn() const { return header().lsn; }
  void set_lsn(Lsn lsn) { mutable_header()->lsn = lsn; }
  uint16_t slot_count() const { return header().slot_count; }

  /// Raw bytes (for shipping whole pages over the fabric).
  const char* data() const { return data_.data(); }
  char* data() { return data_.data(); }
  static constexpr size_t size() { return kPageSize; }

  /// Free bytes available for one more record (including its slot).
  size_t FreeSpace() const;

  /// Appends a record; returns its slot number or Status::Busy if full.
  Result<uint16_t> Insert(const Slice& record);

  /// Reads the record in `slot`; NotFound for deleted/out-of-range slots.
  Result<Slice> Get(uint16_t slot) const;

  /// In-place update. The new record must not be longer than the old one
  /// (engines above handle grow-updates as delete+insert).
  Status Update(uint16_t slot, const Slice& record);

  /// Tombstones the slot (slot numbers are stable; space is not reclaimed
  /// until compaction, which the engines above never need at this scale).
  Status Delete(uint16_t slot);

  /// Recomputes and stores the checksum; call before shipping/persisting.
  void Seal();
  /// Verifies the stored checksum.
  bool VerifyChecksum() const;

  /// Deserializes from exactly kPageSize bytes.
  static Result<Page> FromBytes(const Slice& bytes);

 private:
  const Header& header() const {
    return *reinterpret_cast<const Header*>(data_.data());
  }
  Header* mutable_header() { return reinterpret_cast<Header*>(data_.data()); }

  uint16_t SlotOffset(uint16_t slot) const {
    uint16_t v;
    std::memcpy(&v, data_.data() + kHeaderSize + slot * kSlotSize, 2);
    return v;
  }
  uint16_t SlotLength(uint16_t slot) const {
    uint16_t v;
    std::memcpy(&v, data_.data() + kHeaderSize + slot * kSlotSize + 2, 2);
    return v;
  }
  void SetSlot(uint16_t slot, uint16_t offset, uint16_t length) {
    std::memcpy(data_.data() + kHeaderSize + slot * kSlotSize, &offset, 2);
    std::memcpy(data_.data() + kHeaderSize + slot * kSlotSize + 2, &length, 2);
  }

  std::vector<char> data_;
};

}  // namespace disagg

#endif  // DISAGG_STORAGE_PAGE_H_
