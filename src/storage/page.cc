#include "storage/page.h"

#include "common/crc32.h"

namespace disagg {

namespace {
constexpr uint16_t kTombstone = 0xFFFF;
}  // namespace

Page::Page() : Page(kInvalidPageId) {}

Page::Page(PageId id) : data_(kPageSize, 0) {
  Header* h = mutable_header();
  h->page_id = id;
  h->lsn = kInvalidLsn;
  h->checksum = 0;
  h->slot_count = 0;
  h->free_start = static_cast<uint16_t>(kHeaderSize);
  h->free_end = static_cast<uint16_t>(kPageSize);
  h->padding = 0;
}

size_t Page::FreeSpace() const {
  const Header& h = header();
  const size_t gap = h.free_end - h.free_start;
  return gap > kSlotSize ? gap - kSlotSize : 0;
}

Result<uint16_t> Page::Insert(const Slice& record) {
  Header* h = mutable_header();
  if (record.size() > 0xFFFE) {
    return Status::InvalidArgument("record too large for a page slot");
  }
  if (FreeSpace() < record.size()) {
    return Status::Busy("page full");
  }
  const uint16_t slot = h->slot_count;
  h->free_end = static_cast<uint16_t>(h->free_end - record.size());
  std::memcpy(data_.data() + h->free_end, record.data(), record.size());
  h->slot_count++;
  h->free_start = static_cast<uint16_t>(h->free_start + kSlotSize);
  SetSlot(slot, h->free_end, static_cast<uint16_t>(record.size()));
  return slot;
}

Result<Slice> Page::Get(uint16_t slot) const {
  if (slot >= header().slot_count) {
    return Status::NotFound("slot out of range");
  }
  const uint16_t len = SlotLength(slot);
  if (len == kTombstone) return Status::NotFound("slot deleted");
  return Slice(data_.data() + SlotOffset(slot), len);
}

Status Page::Update(uint16_t slot, const Slice& record) {
  if (slot >= header().slot_count) return Status::NotFound("slot out of range");
  const uint16_t len = SlotLength(slot);
  if (len == kTombstone) return Status::NotFound("slot deleted");
  if (record.size() > len) {
    return Status::InvalidArgument("in-place update cannot grow a record");
  }
  std::memcpy(data_.data() + SlotOffset(slot), record.data(), record.size());
  SetSlot(slot, SlotOffset(slot), static_cast<uint16_t>(record.size()));
  return Status::OK();
}

Status Page::Delete(uint16_t slot) {
  if (slot >= header().slot_count) return Status::NotFound("slot out of range");
  if (SlotLength(slot) == kTombstone) return Status::NotFound("slot deleted");
  SetSlot(slot, SlotOffset(slot), kTombstone);
  return Status::OK();
}

void Page::Seal() {
  Header* h = mutable_header();
  h->checksum = 0;
  h->checksum = Crc32c(data_.data(), data_.size());
}

bool Page::VerifyChecksum() const {
  Header copy = header();
  const uint32_t stored = copy.checksum;
  // Recompute with the checksum field zeroed.
  Page tmp;
  tmp.data_ = data_;
  tmp.mutable_header()->checksum = 0;
  return Crc32c(tmp.data_.data(), tmp.data_.size()) == stored;
}

Result<Page> Page::FromBytes(const Slice& bytes) {
  if (bytes.size() != kPageSize) {
    return Status::InvalidArgument("page must be exactly kPageSize bytes");
  }
  Page p;
  std::memcpy(p.data_.data(), bytes.data(), kPageSize);
  return p;
}

}  // namespace disagg
