#include "storage/gossip.h"

#include <algorithm>

namespace disagg {

GossipGroup::GossipGroup(Fabric* fabric, std::vector<PageStoreService*> stores,
                         uint64_t seed)
    : fabric_(fabric), stores_(std::move(stores)), rng_(seed) {}

size_t GossipGroup::PullFrom(NetContext* ctx, PageStoreService* dst,
                             PageStoreService* src) {
  const auto src_versions = src->PageVersions();
  const auto dst_versions = dst->PageVersions();
  const Node* src_node = fabric_->node(src->node());
  if (src_node->failed()) return 0;

  // Version-vector exchange: one RPC-sized message each way.
  ctx->Charge(src_node->model().RpcCost(16 * dst_versions.size(),
                                        16 * src_versions.size()));
  ctx->round_trips++;

  size_t transferred = 0;
  for (const auto& [page_id, src_lsn] : src_versions) {
    auto it = dst_versions.find(page_id);
    if (it != dst_versions.end() && it->second >= src_lsn) continue;
    src->MaterializeAll();
    auto page = src->PeekPage(page_id);
    if (!page.ok()) continue;
    dst->IngestPage(*page);
    ctx->Charge(src_node->model().ReadCost(kPageSize));
    ctx->bytes_in += kPageSize;
    ctx->round_trips++;
    transferred++;
  }
  return transferred;
}

size_t GossipGroup::RunRound(NetContext* ctx) {
  size_t transferred = 0;
  for (size_t i = 0; i < stores_.size(); i++) {
    if (fabric_->node(stores_[i]->node())->failed()) continue;
    // Pick a random peer other than self.
    if (stores_.size() < 2) break;
    size_t j = rng_.Uniform(stores_.size() - 1);
    if (j >= i) j++;
    transferred += PullFrom(ctx, stores_[i], stores_[j]);
  }
  return transferred;
}

size_t GossipGroup::RunUntilConverged(NetContext* ctx, size_t max_rounds) {
  for (size_t round = 1; round <= max_rounds; round++) {
    RunRound(ctx);
    if (Converged()) return round;
  }
  return max_rounds;
}

bool GossipGroup::Converged() const { return MaxStaleness() == 0; }

uint64_t GossipGroup::MaxStaleness() const {
  // newest[p] = max version anywhere; oldest[p] = min version over stores
  // that should have p (all stores, with "absent" = 0).
  std::map<PageId, Lsn> newest;
  for (PageStoreService* s : stores_) {
    for (const auto& [p, lsn] : s->PageVersions()) {
      newest[p] = std::max(newest[p], lsn);
    }
  }
  uint64_t worst = 0;
  for (const auto& [p, newest_lsn] : newest) {
    for (PageStoreService* s : stores_) {
      const auto versions = s->PageVersions();
      auto it = versions.find(p);
      const Lsn have = it == versions.end() ? 0 : it->second;
      worst = std::max<uint64_t>(worst, newest_lsn - have);
    }
  }
  return worst;
}

}  // namespace disagg
