#include "storage/log_store.h"

#include "common/coding.h"

namespace disagg {

namespace {
// Modeled CPU cost of durably appending / scanning one log record on the
// storage-side CPU.
constexpr uint64_t kAppendNsPerRecord = 150;
constexpr uint64_t kScanNsPerRecord = 40;
}  // namespace

LogStoreService::LogStoreService(Fabric* fabric, NodeId node)
    : fabric_(fabric), node_(node) {
  Node* n = fabric_->node(node_);
  n->RegisterHandler("log.append",
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleAppend(req, resp, sctx);
                     });
  n->RegisterHandler("log.read",
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleRead(req, resp, sctx);
                     });
  n->RegisterHandler("log.tail",
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleTail(req, resp, sctx);
                     });
  n->RegisterHandler("log.truncate",
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleTruncate(req, resp, sctx);
                     });
}

Lsn LogStoreService::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

size_t LogStoreService::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<LogRecord> LogStoreService::SnapshotFrom(Lsn from_exclusive) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out;
  for (const LogRecord& r : records_) {
    if (r.lsn > from_exclusive) out.push_back(r);
  }
  return out;
}

Status LogStoreService::HandleAppend(Slice req, std::string* resp,
                                     RpcServerContext* sctx) {
  auto batch = LogRecord::DecodeBatch(req);
  if (!batch.ok()) return batch.status();
  std::lock_guard<std::mutex> lock(mu_);
  for (LogRecord& r : *batch) {
    if (r.lsn <= durable_lsn_) continue;  // idempotent re-send
    durable_lsn_ = r.lsn;
    records_.push_back(std::move(r));
  }
  sctx->ChargeCompute(kAppendNsPerRecord * batch->size());
  resp->clear();
  PutVarint64(resp, durable_lsn_);
  return Status::OK();
}

Status LogStoreService::HandleRead(Slice req, std::string* resp,
                                   RpcServerContext* sctx) {
  uint64_t from = 0, max_records = 0;
  if (!GetVarint64(&req, &from) || !GetVarint64(&req, &max_records)) {
    return Status::InvalidArgument("malformed log.read");
  }
  std::vector<LogRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const LogRecord& r : records_) {
      if (r.lsn > from) {
        out.push_back(r);
        if (out.size() >= max_records) break;
      }
    }
    sctx->ChargeCompute(kScanNsPerRecord * records_.size());
  }
  *resp = LogRecord::EncodeBatch(out);
  return Status::OK();
}

Status LogStoreService::HandleTail(Slice req, std::string* resp,
                                   RpcServerContext* sctx) {
  (void)req;
  std::lock_guard<std::mutex> lock(mu_);
  sctx->ChargeCompute(kScanNsPerRecord);  // one index probe, no scan
  resp->clear();
  PutVarint64(resp, durable_lsn_);
  return Status::OK();
}

Status LogStoreService::HandleTruncate(Slice req, std::string* resp,
                                       RpcServerContext* sctx) {
  uint64_t up_to = 0;
  if (!GetVarint64(&req, &up_to)) {
    return Status::InvalidArgument("malformed log.truncate");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> kept;
  for (LogRecord& r : records_) {
    if (r.lsn > up_to) kept.push_back(std::move(r));
  }
  sctx->ChargeCompute(kScanNsPerRecord * records_.size());
  records_ = std::move(kept);
  resp->clear();
  return Status::OK();
}

Result<Lsn> LogStoreClient::Append(NetContext* ctx,
                                   const std::vector<LogRecord>& records) {
  const std::string req = LogRecord::EncodeBatch(records);
  std::string resp;
  Status st = fabric_->Call(ctx, node_, "log.append", req, &resp);
  if (!st.ok()) return st;
  Slice in(resp);
  uint64_t lsn = 0;
  if (!GetVarint64(&in, &lsn)) return Status::Corruption("append response");
  return lsn;
}

Result<std::vector<LogRecord>> LogStoreClient::ReadFrom(NetContext* ctx,
                                                        Lsn from_exclusive,
                                                        uint64_t max_records) {
  std::string req;
  PutVarint64(&req, from_exclusive);
  PutVarint64(&req, max_records);
  std::string resp;
  Status st = fabric_->Call(ctx, node_, "log.read", req, &resp);
  if (!st.ok()) return st;
  return LogRecord::DecodeBatch(resp);
}

Result<Lsn> LogStoreClient::DurableLsn(NetContext* ctx) {
  std::string resp;
  Status st = fabric_->Call(ctx, node_, "log.tail", "", &resp);
  if (!st.ok()) return st;
  Slice in(resp);
  uint64_t lsn = 0;
  if (!GetVarint64(&in, &lsn)) return Status::Corruption("tail response");
  return lsn;
}

Status LogStoreClient::Truncate(NetContext* ctx, Lsn up_to_inclusive) {
  std::string req;
  PutVarint64(&req, up_to_inclusive);
  std::string resp;
  return fabric_->Call(ctx, node_, "log.truncate", req, &resp);
}

}  // namespace disagg
