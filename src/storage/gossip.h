#ifndef DISAGG_STORAGE_GOSSIP_H_
#define DISAGG_STORAGE_GOSSIP_H_

#include <vector>

#include "common/random.h"
#include "net/fabric.h"
#include "storage/page_store.h"

namespace disagg {

/// Taurus-style gossip among page stores (Sec. 2.1): the writer propagates
/// each updated page to only ONE page store; anti-entropy gossip rounds
/// spread newer page versions to the rest, trading write-path latency for
/// temporary staleness. `RunRound` performs one round in which every store
/// pulls from one random peer; costs are charged to `ctx` using the peer
/// node's interconnect model.
class GossipGroup {
 public:
  GossipGroup(Fabric* fabric, std::vector<PageStoreService*> stores,
              uint64_t seed = 17);

  /// One anti-entropy round; returns the number of page images transferred.
  size_t RunRound(NetContext* ctx);

  /// Rounds until every store has every page at its newest version (bounded
  /// by `max_rounds`); returns rounds executed.
  size_t RunUntilConverged(NetContext* ctx, size_t max_rounds = 64);

  /// True when all stores agree on all page versions.
  bool Converged() const;

  /// Max over pages of (newest version anywhere - oldest version anywhere),
  /// a staleness measure in LSN units.
  uint64_t MaxStaleness() const;

 private:
  size_t PullFrom(NetContext* ctx, PageStoreService* dst,
                  PageStoreService* src);

  Fabric* fabric_;
  std::vector<PageStoreService*> stores_;
  Random rng_;
};

}  // namespace disagg

#endif  // DISAGG_STORAGE_GOSSIP_H_
