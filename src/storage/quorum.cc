#include "storage/quorum.h"

#include <algorithm>
#include <string>

namespace disagg {

ReplicatedSegment::ReplicatedSegment(Fabric* fabric, const Config& config,
                                     const std::string& name_prefix)
    : fabric_(fabric), config_(config) {
  for (int i = 0; i < config_.replicas; i++) {
    const uint32_t az = static_cast<uint32_t>(i % config_.num_azs);
    SegmentReplica replica;
    replica.az = az;
    replica.node = fabric_->AddNode(
        name_prefix + "-r" + std::to_string(i), NodeKind::kStorage,
        config_.model, az);
    fabric_->node(replica.node)->set_cpu_scale(2.0);  // wimpy storage CPU
    replica.log_service =
        std::make_unique<LogStoreService>(fabric_, replica.node);
    replica.page_service =
        std::make_unique<PageStoreService>(fabric_, replica.node);
    replicas_.push_back(std::move(replica));
  }
  acked_lsn_.assign(replicas_.size(), kInvalidLsn);
  next_idx_.assign(replicas_.size(), 0);
}

Result<Lsn> ReplicatedSegment::AppendLog(NetContext* ctx,
                                         const std::vector<LogRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const LogRecord& r : records) history_.push_back(r);
  size_t fanout = replicas_.size();
#ifdef DISAGG_CHAOS_MUTATION
  // Chaos-harness self-check mutation: silently skip the last replica and
  // accept one ack short of the configured write quorum. Under a schedule
  // flapping V-W replicas this commits data that is NOT quorum-durable;
  // the harness's durability checker must catch it.
  fanout = replicas_.size() - 1;
#endif
  std::vector<NetContext> branch(replicas_.size(), ctx->Fork());
  int acks = 0;
  Lsn lsn = kInvalidLsn;
  for (size_t i = 0; i < fanout; i++) {
    // Resync: this replica gets everything it has not acked yet, so the new
    // records never land with a gap in front of them. Fault-free this is
    // exactly `records`.
    const std::vector<LogRecord> suffix(history_.begin() + next_idx_[i],
                                        history_.end());
    LogStoreClient log_client(fabric_, replicas_[i].node);
    PageStoreClient page_client(fabric_, replicas_[i].node);
    auto r = log_client.Append(&branch[i], suffix);
    if (!r.ok()) continue;
    // The segment also queues the redo for page materialization.
    auto p = page_client.ApplyLog(&branch[i], suffix);
    if (!p.ok()) continue;
    next_idx_[i] = history_.size();
    acked_lsn_[i] = *r;
    lsn = std::max(lsn, *r);
    acks++;
  }
  JoinParallel(ctx, branch.data(), branch.size());
  int required = config_.write_quorum;
#ifdef DISAGG_CHAOS_MUTATION
  required = config_.write_quorum - 1;
#endif
  if (acks < required) {
    return Status::Unavailable("write quorum not met: " +
                               std::to_string(acks) + "/" +
                               std::to_string(config_.write_quorum));
  }
  return lsn;
}

Result<Page> ReplicatedSegment::ReadPage(NetContext* ctx, PageId id,
                                         Lsn min_lsn) {
  std::vector<Lsn> acked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    acked = acked_lsn_;
  }
  for (size_t i = 0; i < replicas_.size(); i++) {
    if (acked[i] < min_lsn) continue;
    if (fabric_->node(replicas_[i].node)->failed()) continue;
    PageStoreClient page_client(fabric_, replicas_[i].node);
    auto page = page_client.GetPage(ctx, id);
    if (page.ok()) return page;
  }
  return Status::Unavailable("no reachable replica covers the required LSN");
}

Result<Page> ReplicatedSegment::ReadPageFreshest(NetContext* ctx, PageId id) {
  std::vector<NetContext> branch(replicas_.size(), ctx->Fork());
  Result<Page> best = Status::Unavailable("no replica holds the page");
  for (size_t i = 0; i < replicas_.size(); i++) {
    PageStoreClient page_client(fabric_, replicas_[i].node);
    auto page = page_client.GetPage(&branch[i], id);
    if (page.ok() && (!best.ok() || page->lsn() > best->lsn())) {
      best = std::move(page);
    }
  }
  JoinParallel(ctx, branch.data(), branch.size());
  return best;
}

Result<Lsn> ReplicatedSegment::RecoverDurableLsn(NetContext* ctx) {
  std::vector<NetContext> branch(replicas_.size(), ctx->Fork());
  std::vector<Lsn> seen;
  for (size_t i = 0; i < replicas_.size(); i++) {
    if (static_cast<int>(seen.size()) >= config_.read_quorum) break;
    LogStoreClient log_client(fabric_, replicas_[i].node);
    // The probe rides the fabric end to end — the replica reports its own
    // durable LSN in the response, never peeked out of process (a dropped
    // or failed probe must not see the state it could not reach).
    auto lsn = log_client.DurableLsn(&branch[i]);
    if (!lsn.ok()) continue;
    seen.push_back(*lsn);
  }
  JoinParallel(ctx, branch.data(), branch.size());
  if (static_cast<int>(seen.size()) < config_.read_quorum) {
    return Status::Unavailable("read quorum not met");
  }
  // With W + R > V, the max over any R replicas is at least the highest
  // quorum-committed LSN.
  return *std::max_element(seen.begin(), seen.end());
}

void ReplicatedSegment::FailAz(uint32_t az) {
  for (auto& r : replicas_) {
    if (r.az == az) fabric_->node(r.node)->Fail();
  }
}

void ReplicatedSegment::ReviveAz(uint32_t az) {
  for (auto& r : replicas_) {
    if (r.az == az) fabric_->node(r.node)->Revive();
  }
}

int ReplicatedSegment::CountDurable(Lsn lsn) const {
  int n = 0;
  for (const auto& r : replicas_) {
    if (!fabric_->node(r.node)->failed() &&
        r.log_service->durable_lsn() >= lsn) {
      n++;
    }
  }
  return n;
}

}  // namespace disagg
