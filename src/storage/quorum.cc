#include "storage/quorum.h"

#include <algorithm>
#include <string>

namespace disagg {

ReplicatedSegment::ReplicatedSegment(Fabric* fabric, const Config& config,
                                     const std::string& name_prefix)
    : fabric_(fabric), config_(config) {
  for (int i = 0; i < config_.replicas; i++) {
    const uint32_t az = static_cast<uint32_t>(i % config_.num_azs);
    SegmentReplica replica;
    replica.az = az;
    replica.node = fabric_->AddNode(
        name_prefix + "-r" + std::to_string(i), NodeKind::kStorage,
        config_.model, az);
    fabric_->node(replica.node)->set_cpu_scale(2.0);  // wimpy storage CPU
    replica.log_service =
        std::make_unique<LogStoreService>(fabric_, replica.node);
    replica.page_service =
        std::make_unique<PageStoreService>(fabric_, replica.node);
    replicas_.push_back(std::move(replica));
  }
  acked_lsn_.assign(replicas_.size(), kInvalidLsn);
}

Result<Lsn> ReplicatedSegment::AppendLog(NetContext* ctx,
                                         const std::vector<LogRecord>& records) {
  std::vector<NetContext> branch(replicas_.size());
  int acks = 0;
  Lsn lsn = kInvalidLsn;
  for (size_t i = 0; i < replicas_.size(); i++) {
    LogStoreClient log_client(fabric_, replicas_[i].node);
    PageStoreClient page_client(fabric_, replicas_[i].node);
    auto r = log_client.Append(&branch[i], records);
    if (!r.ok()) continue;
    // The segment also queues the redo for page materialization.
    auto p = page_client.ApplyLog(&branch[i], records);
    if (!p.ok()) continue;
    acked_lsn_[i] = *r;
    lsn = std::max(lsn, *r);
    acks++;
  }
  MergeParallel(ctx, branch.data(), branch.size());
  if (acks < config_.write_quorum) {
    return Status::Unavailable("write quorum not met: " +
                               std::to_string(acks) + "/" +
                               std::to_string(config_.write_quorum));
  }
  return lsn;
}

Result<Page> ReplicatedSegment::ReadPage(NetContext* ctx, PageId id,
                                         Lsn min_lsn) {
  for (size_t i = 0; i < replicas_.size(); i++) {
    if (acked_lsn_[i] < min_lsn) continue;
    if (fabric_->node(replicas_[i].node)->failed()) continue;
    PageStoreClient page_client(fabric_, replicas_[i].node);
    auto page = page_client.GetPage(ctx, id);
    if (page.ok()) return page;
  }
  return Status::Unavailable("no reachable replica covers the required LSN");
}

Result<Lsn> ReplicatedSegment::RecoverDurableLsn(NetContext* ctx) {
  std::vector<NetContext> branch(replicas_.size());
  std::vector<Lsn> seen;
  for (size_t i = 0; i < replicas_.size(); i++) {
    if (static_cast<int>(seen.size()) >= config_.read_quorum) break;
    LogStoreClient log_client(fabric_, replicas_[i].node);
    // An empty read acts as a durable-LSN probe.
    auto recs = log_client.ReadFrom(&branch[i], 0, 1);
    if (!recs.ok()) continue;
    seen.push_back(replicas_[i].log_service->durable_lsn());
  }
  MergeParallel(ctx, branch.data(), branch.size());
  if (static_cast<int>(seen.size()) < config_.read_quorum) {
    return Status::Unavailable("read quorum not met");
  }
  // With W + R > V, the max over any R replicas is at least the highest
  // quorum-committed LSN.
  return *std::max_element(seen.begin(), seen.end());
}

void ReplicatedSegment::FailAz(uint32_t az) {
  for (auto& r : replicas_) {
    if (r.az == az) fabric_->node(r.node)->Fail();
  }
}

void ReplicatedSegment::ReviveAz(uint32_t az) {
  for (auto& r : replicas_) {
    if (r.az == az) fabric_->node(r.node)->Revive();
  }
}

int ReplicatedSegment::CountDurable(Lsn lsn) const {
  int n = 0;
  for (const auto& r : replicas_) {
    if (!fabric_->node(r.node)->failed() &&
        r.log_service->durable_lsn() >= lsn) {
      n++;
    }
  }
  return n;
}

}  // namespace disagg
