#include "storage/log_record.h"

#include "common/coding.h"

namespace disagg {

size_t LogRecord::EncodedSize() const {
  std::string tmp;
  EncodeTo(&tmp);
  return tmp.size();
}

void LogRecord::EncodeTo(std::string* dst) const {
  PutVarint64(dst, lsn);
  PutVarint64(dst, prev_lsn);
  PutVarint64(dst, txn_id);
  dst->push_back(static_cast<char>(type));
  PutVarint64(dst, page_id);
  PutVarint64(dst, slot);
  PutVarint64(dst, row_key);
  PutVarint64(dst, compensates_lsn);
  PutLengthPrefixedSlice(dst, payload);
  PutLengthPrefixedSlice(dst, undo_payload);
}

Result<LogRecord> LogRecord::DecodeFrom(Slice* input) {
  LogRecord rec;
  uint64_t tmp = 0;
  if (!GetVarint64(input, &rec.lsn)) return Status::Corruption("lsn");
  if (!GetVarint64(input, &rec.prev_lsn)) return Status::Corruption("prev");
  if (!GetVarint64(input, &rec.txn_id)) return Status::Corruption("txn");
  if (input->empty()) return Status::Corruption("type");
  rec.type = static_cast<LogType>((*input)[0]);
  input->remove_prefix(1);
  if (!GetVarint64(input, &rec.page_id)) return Status::Corruption("page");
  if (!GetVarint64(input, &tmp)) return Status::Corruption("slot");
  rec.slot = static_cast<uint16_t>(tmp);
  if (!GetVarint64(input, &rec.row_key)) return Status::Corruption("row_key");
  if (!GetVarint64(input, &rec.compensates_lsn)) {
    return Status::Corruption("compensates_lsn");
  }
  Slice payload, undo;
  if (!GetLengthPrefixedSlice(input, &payload)) {
    return Status::Corruption("payload");
  }
  if (!GetLengthPrefixedSlice(input, &undo)) return Status::Corruption("undo");
  rec.payload = payload.ToString();
  rec.undo_payload = undo.ToString();
  return rec;
}

std::string LogRecord::EncodeBatch(const std::vector<LogRecord>& records) {
  std::string out;
  PutVarint64(&out, records.size());
  for (const LogRecord& r : records) r.EncodeTo(&out);
  return out;
}

Result<std::vector<LogRecord>> LogRecord::DecodeBatch(Slice input) {
  uint64_t n = 0;
  if (!GetVarint64(&input, &n)) return Status::Corruption("batch count");
  std::vector<LogRecord> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    auto rec = DecodeFrom(&input);
    if (!rec.ok()) return rec.status();
    out.push_back(std::move(rec).value());
  }
  return out;
}

Status ApplyRedo(Page* page, const LogRecord& record) {
  if (record.lsn <= page->lsn()) return Status::OK();  // already applied
  switch (record.type) {
    case LogType::kInsert: {
      auto slot = page->Insert(record.payload);
      if (!slot.ok()) return slot.status();
      if (*slot != record.slot) {
        return Status::Corruption("redo insert landed in unexpected slot");
      }
      break;
    }
    case LogType::kUpdate:
      DISAGG_RETURN_NOT_OK(page->Update(record.slot, record.payload));
      break;
    case LogType::kDelete:
      DISAGG_RETURN_NOT_OK(page->Delete(record.slot));
      break;
    case LogType::kClr: {
      // A CLR redoes an undo action: empty payload = the slot was deleted
      // again; otherwise the payload is the restored image (an in-place
      // restore, or a re-insert when it targets a fresh slot). Tolerant of
      // already-compensated state so re-replay stays idempotent.
      if (record.payload.empty()) {
        Status st = page->Delete(record.slot);
        if (!st.ok() && !st.IsNotFound()) return st;
      } else if (record.slot >= page->slot_count()) {
        auto slot = page->Insert(record.payload);
        if (!slot.ok()) return slot.status();
        if (*slot != record.slot) {
          return Status::Corruption("CLR re-insert landed in wrong slot");
        }
      } else {
        Status st = page->Update(record.slot, record.payload);
        if (!st.ok() && !st.IsNotFound()) return st;
      }
      break;
    }
    case LogType::kTxnBegin:
    case LogType::kTxnCommit:
    case LogType::kTxnAbort:
    case LogType::kCheckpoint:
      return Status::OK();  // no page effect
  }
  page->set_lsn(record.lsn);
  return Status::OK();
}

}  // namespace disagg
