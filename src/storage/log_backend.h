#ifndef DISAGG_STORAGE_LOG_BACKEND_H_
#define DISAGG_STORAGE_LOG_BACKEND_H_

#include <vector>

#include "common/result.h"
#include "net/net_context.h"
#include "storage/log_record.h"

namespace disagg {

/// The seam between a compute-side WAL and whatever durable log tier an
/// architecture uses. This is exactly what differentiates the surveyed
/// engines: a local disk (monolithic), one log service (Socrates XLOG), an
/// Aurora quorum segment, a Raft group (PolarFS), a majority-ack log-store
/// fleet (Taurus) — or, since the shared-log refactor, a tag partition of
/// the disaggregated `SharedLogService` (`src/log/shared_log.h`) that many
/// engines and ephemeral compute nodes target concurrently.
///
/// Contract (every implementation):
///   - `Append` is the durability point: an OK result means the records are
///     durable per the backend's discipline (fsync, write quorum, majority
///     ack, shared-log replication quorum) and returns the highest LSN the
///     batch made durable. A failure means durability is UNKNOWN — the batch
///     may still land (callers re-buffer and a later Append may persist it),
///     which is the "maybe-committed" semantics the chaos model checks.
///   - Records are appended in LSN order by a single WAL; backends dedup
///     re-sent records by LSN, so re-appending after a failed flush is
///     idempotent.
///   - `ReadAll` returns every durable record in strictly increasing LSN
///     order (ARIES replay input). `ReadFrom(from_exclusive)` returns the
///     suffix with `lsn > from_exclusive` under the same ordering — the
///     exclusive-bound convention shared with `LogStoreClient::ReadFrom`
///     (see `src/storage/log_store.h` for the wire-level contract).
class LogBackend {
 public:
  virtual ~LogBackend() = default;

  virtual Result<Lsn> Append(NetContext* ctx,
                             const std::vector<LogRecord>& records) = 0;

  virtual Result<std::vector<LogRecord>> ReadAll(NetContext* ctx) = 0;

  /// Durable records with `lsn > from_exclusive`, in LSN order. The default
  /// reads everything and filters client-side; backends with a server-side
  /// bound (log service, shared log) override it so only the tail crosses
  /// the wire.
  virtual Result<std::vector<LogRecord>> ReadFrom(NetContext* ctx,
                                                  Lsn from_exclusive) {
    DISAGG_ASSIGN_OR_RETURN(std::vector<LogRecord> all, ReadAll(ctx));
    std::vector<LogRecord> out;
    for (LogRecord& r : all) {
      if (r.lsn > from_exclusive) out.push_back(std::move(r));
    }
    return out;
  }
};

/// Legacy alias: the WAL layer historically called this seam `LogSink`.
/// All pre-shared-log sink implementations live in `src/txn/wal.h`.
using LogSink = LogBackend;

}  // namespace disagg

#endif  // DISAGG_STORAGE_LOG_BACKEND_H_
