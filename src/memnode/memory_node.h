#ifndef DISAGG_MEMNODE_MEMORY_NODE_H_
#define DISAGG_MEMNODE_MEMORY_NODE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "net/fabric.h"

namespace disagg {

/// A memory-pool node (Sec. 3): a large registered region served by a wimpy
/// CPU. Compute nodes access the region with one-sided verbs; a small RPC
/// surface provides shared allocation ("mem.alloc"/"mem.free") so multiple
/// compute nodes can carve the pool without coordinating among themselves.
///
/// The allocator is a bump allocator with per-size-class free lists —
/// remote-friendly because a free / alloc is a single RPC and no compaction
/// ever moves data under a remote pointer.
class MemoryNode {
 public:
  /// Creates the node, its backing region, and the allocator RPC handlers.
  MemoryNode(Fabric* fabric, const std::string& name, size_t capacity_bytes,
             InterconnectModel model = InterconnectModel::Rdma());

  NodeId node() const { return node_; }
  uint32_t region() const { return region_->id(); }
  size_t capacity() const { return region_->size(); }
  size_t allocated_bytes() const;

  /// Server-side (no network) allocation for services co-located with the
  /// memory node.
  Result<GlobalAddr> AllocLocal(size_t bytes);
  Status FreeLocal(GlobalAddr addr, size_t bytes);

  /// Address of a raw offset in the pool region.
  GlobalAddr at(uint64_t offset) const {
    return GlobalAddr{node_, region_->id(), offset};
  }

  /// This pool node's NIC/link budget for the shared-resource congestion
  /// model (Farview sizes its far-memory NIC the same way): service
  /// bandwidth equals the node's interconnect bandwidth, and `ns_per_op`
  /// is the per-message issue overhead (default 100 ns ~ 10 M msgs/s).
  /// Pass the result into a `CongestionConfig` and
  /// `Fabric::EnableCongestion()` to make this node a contended resource.
  ResourceCapacity ServiceCapacity(uint64_t ns_per_op = 100) const;

 private:
  Status HandleAlloc(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleFree(Slice req, std::string* resp, RpcServerContext* sctx);

  static size_t SizeClass(size_t bytes);

  Fabric* fabric_;
  NodeId node_ = 0;
  MemoryRegion* region_ = nullptr;
  mutable std::mutex mu_;
  uint64_t bump_ = 64;  // offset 0 is reserved as the null address
  uint64_t allocated_ = 0;
  std::map<size_t, std::vector<uint64_t>> free_lists_;  // size class → offsets
};

/// Compute-side allocator client for a MemoryNode.
class RemoteAllocator {
 public:
  RemoteAllocator(Fabric* fabric, NodeId node) : fabric_(fabric), node_(node) {}

  Result<GlobalAddr> Alloc(NetContext* ctx, size_t bytes);
  Status Free(NetContext* ctx, GlobalAddr addr, size_t bytes);

 private:
  Fabric* fabric_;
  NodeId node_;
};

}  // namespace disagg

#endif  // DISAGG_MEMNODE_MEMORY_NODE_H_
