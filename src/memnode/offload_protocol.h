#ifndef DISAGG_MEMNODE_OFFLOAD_PROTOCOL_H_
#define DISAGG_MEMNODE_OFFLOAD_PROTOCOL_H_

#include <cstdint>

namespace disagg {
namespace offload {

/// Wire contract between compute-side offload clients (`RemoteBTree` in
/// offload mode, `OffloadedLockClient`) and the memory-node executor
/// (`src/memnode/executor.h`). Kept in its own header so the client side
/// does not need the executor's definition — only the verbs, outcome codes,
/// and the weak-CPU cost constants the conformance tests check against.

// ---- RPC method names (registered on the pool node) -----------------------

inline constexpr char kIdxGet[] = "exec.idx.get";
inline constexpr char kIdxScan[] = "exec.idx.scan";
inline constexpr char kIdxPut[] = "exec.idx.put";
inline constexpr char kIdxDelete[] = "exec.idx.del";
inline constexpr char kLockAcquire[] = "exec.lock.acquire";
inline constexpr char kLockRelease[] = "exec.lock.release";

// ---- Lock-service outcome codes -------------------------------------------

/// First byte of every lock reply. The client maps them onto the fabric
/// status contract (src/net/verb.h): granted -> OK, conflict -> Busy
/// (retryable contention), wounded/fenced -> Aborted (the transaction must
/// abort; retrying the same txn id cannot succeed).
enum class LockOutcome : uint8_t {
  kGranted = 0,   ///< lock held by `txn` on return
  kConflict = 1,  ///< held by a conflicting txn; wound-wait says requester
                  ///< waits (abort-and-retry in the no-blocking RPC setting)
  kWounded = 2,   ///< requester was wounded by an older txn: abort now
  kFenced = 3,    ///< request carried a pre-crash epoch: every grant that
                  ///< epoch issued is void; abort and start over
};

/// Lock request modes (mirrors `LockMode` ordinals; a byte on the wire).
inline constexpr uint8_t kModeShared = 0;
inline constexpr uint8_t kModeExclusive = 1;

/// Epoch value a client sends for a transaction that holds no grants yet:
/// the executor adopts the current epoch for it instead of fencing.
inline constexpr uint64_t kFreshEpoch = 0;

// ---- Weak-CPU cost model ---------------------------------------------------

/// Compute charged by the executor per request, in wimpy-CPU nanoseconds
/// BEFORE the fabric scales it by the pool node's `cpu_scale` (1.5 for
/// `MemoryNode`, Sec. 1: pool-side cores run at lower clocks). The
/// traversal-RPC cost arithmetic test pins these exactly:
///
///   lookup/put/delete:  kDispatchNs + kNodeVisitNs * nodes_visited
///   scan:               kDispatchNs + kNodeVisitNs * nodes_visited
///                                   + kEntryNs * entries_returned
///   lock acquire/release: kDispatchNs + kLockOpNs * (1 + piggybacked
///                                                        releases)
inline constexpr uint64_t kDispatchNs = 150;  ///< request decode + dispatch
inline constexpr uint64_t kNodeVisitNs = 60;  ///< one B+tree node inspected
inline constexpr uint64_t kEntryNs = 4;       ///< one scan entry encoded
inline constexpr uint64_t kLockOpNs = 120;    ///< one lock-table operation

}  // namespace offload
}  // namespace disagg

#endif  // DISAGG_MEMNODE_OFFLOAD_PROTOCOL_H_
