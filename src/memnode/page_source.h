#ifndef DISAGG_MEMNODE_PAGE_SOURCE_H_
#define DISAGG_MEMNODE_PAGE_SOURCE_H_

#include <map>
#include <mutex>

#include "common/result.h"
#include "net/net_context.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace disagg {

/// Abstraction of "where pages ultimately live" beneath a cache hierarchy:
/// a page-store service, a replicated segment, or a test double.
class PageSource {
 public:
  virtual ~PageSource() = default;
  virtual Result<Page> FetchPage(NetContext* ctx, PageId id) = 0;
  virtual Status WritePage(NetContext* ctx, const Page& page) = 0;
};

/// PageSource over a PageStoreService on the fabric.
class PageStoreSource : public PageSource {
 public:
  PageStoreSource(Fabric* fabric, NodeId node) : client_(fabric, node) {}

  Result<Page> FetchPage(NetContext* ctx, PageId id) override {
    return client_.GetPage(ctx, id);
  }
  Status WritePage(NetContext* ctx, const Page& page) override {
    return client_.PutPage(ctx, page);
  }

 private:
  PageStoreClient client_;
};

/// In-process page source with a configurable access-cost model; used by
/// tests and as the "secondary storage" bottom of cache-hierarchy benches.
class InMemoryPageSource : public PageSource {
 public:
  explicit InMemoryPageSource(
      InterconnectModel model = InterconnectModel::Ssd())
      : model_(std::move(model)) {}

  Result<Page> FetchPage(NetContext* ctx, PageId id) override {
    std::lock_guard<std::mutex> lock(mu_);
    fetches_++;
    ctx->Charge(model_.ReadCost(kPageSize));
    ctx->bytes_in += kPageSize;
    ctx->round_trips++;
    auto it = pages_.find(id);
    if (it == pages_.end()) return Status::NotFound("no such page");
    return it->second;
  }

  Status WritePage(NetContext* ctx, const Page& page) override {
    std::lock_guard<std::mutex> lock(mu_);
    writes_++;
    ctx->Charge(model_.WriteCost(kPageSize));
    ctx->bytes_out += kPageSize;
    ctx->round_trips++;
    pages_.insert_or_assign(page.page_id(), page);
    return Status::OK();
  }

  /// Seeds a page without charging anything (test setup).
  void Seed(const Page& page) {
    std::lock_guard<std::mutex> lock(mu_);
    pages_.insert_or_assign(page.page_id(), page);
  }

  uint64_t fetches() const { return fetches_; }
  uint64_t writes() const { return writes_; }

 private:
  InterconnectModel model_;
  std::mutex mu_;
  std::map<PageId, Page> pages_;
  uint64_t fetches_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace disagg

#endif  // DISAGG_MEMNODE_PAGE_SOURCE_H_
