#ifndef DISAGG_MEMNODE_SHARED_BUFFER_POOL_H_
#define DISAGG_MEMNODE_SHARED_BUFFER_POOL_H_

#include <unordered_map>

#include "memnode/memory_node.h"
#include "storage/page.h"

namespace disagg {

/// PolarDB Serverless's shared remote buffer pool (Sec. 3.1): one elastic
/// pool of page frames in disaggregated memory shared by ALL compute nodes.
/// Benefits modeled here: compute nodes own no private buffers (only small
/// caches), and secondary nodes see up-to-date pages without log replay.
///
/// On-pool layout (built on a MemoryNode region):
///   counter word   -- next free frame (allocated with remote fetch-add)
///   directory      -- open-addressed array of 32-byte entries
///                     {page_id, seq, frame+1, pad}
///   frame area     -- page images
///
/// Coherence is a per-entry seqlock driven entirely by one-sided verbs, as
/// hardware cache coherence does not span compute nodes (Sec. 3.1):
/// writers CAS seq even->odd, write the frame, then publish seq+2; readers
/// retry on odd or changed seq. Compute-local caches revalidate with one
/// small read of the entry instead of refetching the whole frame.
class SharedBufferPoolHome {
 public:
  /// Carves directory + frames out of `pool`. `max_pages` bounds both.
  SharedBufferPoolHome(Fabric* fabric, MemoryNode* pool, size_t max_pages);

  NodeId node() const { return pool_->node(); }
  uint32_t region() const { return pool_->region(); }
  uint64_t counter_offset() const { return counter_offset_; }
  uint64_t dir_offset() const { return dir_offset_; }
  uint64_t frames_offset() const { return frames_offset_; }
  size_t dir_slots() const { return dir_slots_; }
  size_t max_frames() const { return max_frames_; }

 private:
  Fabric* fabric_;
  MemoryNode* pool_;
  uint64_t counter_offset_ = 0;
  uint64_t dir_offset_ = 0;
  uint64_t frames_offset_ = 0;
  size_t dir_slots_ = 0;
  size_t max_frames_ = 0;
};

/// Per-compute-node client of the shared pool, with an optional local cache
/// (`local_cache_pages` = 0 disables it).
class SharedBufferPoolClient {
 public:
  struct Stats {
    uint64_t local_hits = 0;    // revalidated local copy, no frame transfer
    uint64_t frame_reads = 0;   // full page pulled from the pool
    uint64_t frame_writes = 0;  // full page pushed to the pool
    uint64_t retries = 0;       // seqlock conflicts observed
  };

  SharedBufferPoolClient(Fabric* fabric, const SharedBufferPoolHome* home,
                         size_t local_cache_pages);

  /// Reads a page coherently (seqlock-validated). Uses the local cache when
  /// the remote entry's seq still matches. When `version` is non-null it
  /// receives the seqlock value the snapshot was validated at, for use with
  /// WritePageIf().
  Result<Page> ReadPage(NetContext* ctx, PageId id, uint64_t* version = nullptr);

  /// Publishes a new page image; creates the directory entry on first write.
  /// Last-writer-wins: concurrent read-modify-write cycles through this call
  /// can lose updates — use ReadPage(version) + WritePageIf for those.
  Status WritePage(NetContext* ctx, const Page& page);

  /// Optimistic publish: writes `page` only if the remote copy is still at
  /// `expected_version` (as returned by ReadPage, or 0 for a page this
  /// writer just created). Returns Status::Busy when another writer has
  /// published in between — the caller re-reads and retries, which makes a
  /// remote page read-modify-write atomic without a page lock.
  Status WritePageIf(NetContext* ctx, const Page& page,
                     uint64_t expected_version);

  /// Crash recovery: a writer that dies between acquiring a seqlock and
  /// publishing leaves the entry odd forever — no hardware coherence exists
  /// to release it (Sec. 3.1), so readers would spin out with Busy. A
  /// recovering node walks the directory and fences such writers by forcing
  /// odd seqs to the next even value. Page-image writes are single verbs
  /// (old-or-new, never torn), so the fenced frame is consistent either
  /// way. `repaired`, when non-null, receives the number of fenced entries.
  Status FenceCrashedWriters(NetContext* ctx, uint64_t* repaired = nullptr);

  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t page_id = 0;
    uint64_t seq = 0;
    uint64_t frame_plus1 = 0;
  };

  uint64_t SlotAddrOffset(uint64_t slot) const {
    return home_->dir_offset() + slot * 32;
  }
  GlobalAddr At(uint64_t offset) const {
    return GlobalAddr{home_->node(), home_->region(), offset};
  }
  uint64_t FrameOffset(uint64_t frame) const {
    return home_->frames_offset() + frame * kPageSize;
  }

  Result<Entry> ReadEntry(NetContext* ctx, uint64_t slot);
  /// Finds (optionally creating) the directory slot for `id`.
  Result<uint64_t> FindSlot(NetContext* ctx, PageId id, bool create);
  /// Ensures the slot has a frame, allocating one if needed.
  Result<uint64_t> EnsureFrame(NetContext* ctx, uint64_t slot);

  Fabric* fabric_;
  const SharedBufferPoolHome* home_;
  size_t local_cache_pages_;
  std::unordered_map<PageId, std::pair<Page, uint64_t>> local_cache_;
  Stats stats_;
};

}  // namespace disagg

#endif  // DISAGG_MEMNODE_SHARED_BUFFER_POOL_H_
