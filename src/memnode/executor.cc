#include "memnode/executor.h"

#include <atomic>
#include <cstring>
#include <thread>

#include "common/coding.h"
#include "net/membership.h"

namespace disagg {

namespace {
// Mirrors the one-sided client's bounds (src/rindex/remote_btree.cc) so the
// two protocols converge or starve under the same conditions.
constexpr int kMaxOptimisticRetries = 64;
constexpr int kMaxLockSpins = 100000;
}  // namespace

using offload::LockOutcome;

MemNodeExecutor::MemNodeExecutor(Fabric* fabric, MemoryNode* pool)
    : fabric_(fabric), pool_(pool) {
  Node* n = fabric_->node(pool_->node());
  n->RegisterHandler(offload::kIdxGet,
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleIdxGet(req, resp, sctx);
                     });
  n->RegisterHandler(offload::kIdxScan,
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleIdxScan(req, resp, sctx);
                     });
  n->RegisterHandler(offload::kIdxPut,
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleIdxPut(req, resp, sctx);
                     });
  n->RegisterHandler(offload::kIdxDelete,
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleIdxDelete(req, resp, sctx);
                     });
  n->RegisterHandler(offload::kLockAcquire,
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleLockAcquire(req, resp, sctx);
                     });
  n->RegisterHandler(offload::kLockRelease,
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandleLockRelease(req, resp, sctx);
                     });
}

uint32_t MemNodeExecutor::RegisterTree(const RemoteBTree::TreeRef& tree) {
  std::lock_guard<std::mutex> lock(mu_);
  trees_.push_back(tree);
  return static_cast<uint32_t>(trees_.size() - 1);
}

void MemNodeExecutor::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  fabric_->node(pool_->node())->Fail();
  crash_after_ = 0;
  stats_.crashes++;
}

void MemNodeExecutor::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  fabric_->node(pool_->node())->Revive();
  // The executor's DRAM state (the lock table) died with it; the pool
  // region — the disaggregated memory — survives. Epoch bump fences every
  // grant the previous incarnation issued.
  lock_table_.clear();
  txns_.clear();
  wounded_.clear();
  epoch_++;
  stats_.recoveries++;
  // Recovery observes the current lease so the lazy re-fence in CheckAlive
  // does not bump the epoch a second time for the same incident.
  if (lease_authority_ != nullptr) {
    lease_epoch_seen_ = lease_authority_->LeaseEpoch(pool_->node());
  }
}

void MemNodeExecutor::BindLeaseAuthority(const LeaseAuthority* authority) {
  const uint64_t seen =
      authority == nullptr ? 0 : authority->LeaseEpoch(pool_->node());
  std::lock_guard<std::mutex> lock(mu_);
  lease_authority_ = authority;
  lease_epoch_seen_ = seen;
}

void MemNodeExecutor::ScheduleCrashAfter(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_after_ = n;
}

uint64_t MemNodeExecutor::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t MemNodeExecutor::active_locks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lock_table_.size();
}

MemNodeExecutor::Stats MemNodeExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status MemNodeExecutor::CheckAlive() {
  std::lock_guard<std::mutex> lock(mu_);
  if (lease_authority_ != nullptr) {
    const uint64_t lease_epoch = lease_authority_->LeaseEpoch(pool_->node());
    if (lease_epoch > lease_epoch_seen_) {
      // The fleet revoked this node's lease since we last looked (gray
      // failure: the node may never have crashed hard). Every grant issued
      // under the old lease is void — same state transition as Recover(),
      // without touching node liveness: stale clients get kFenced.
      lock_table_.clear();
      txns_.clear();
      wounded_.clear();
      epoch_++;
      lease_epoch_seen_ = lease_epoch;
      stats_.lease_refences++;
    }
  }
  if (crash_after_ > 0 && --crash_after_ == 0) {
    fabric_->node(pool_->node())->Fail();
    stats_.crashes++;
    return Status::Unavailable("memory-node executor crashed mid-operation");
  }
  return Status::OK();
}

// ---- Region-local B+tree walker -------------------------------------------

char* MemNodeExecutor::TreeBase(const RemoteBTree::TreeRef& tree) {
  return fabric_->node(tree.root_ptr.node)->region(tree.root_ptr.region)
      ->data();
}

uint64_t MemNodeExecutor::LoadRoot(const RemoteBTree::TreeRef& tree) {
  auto* word = reinterpret_cast<std::atomic<uint64_t>*>(
      TreeBase(tree) + tree.root_ptr.offset);
  return word->load(std::memory_order_acquire);
}

void MemNodeExecutor::LoadNode(const RemoteBTree::TreeRef& tree,
                               uint64_t offset, BTreeNodeImage* out,
                               uint64_t* visited) {
  char* base = TreeBase(tree);
  (*visited)++;
  for (int retry = 0; retry < kMaxOptimisticRetries; retry++) {
    std::memcpy(out, base + offset, kBTreeNodeBytes);
    if (out->version_front == out->version_back &&
        out->version_front % 2 == 0) {
      return;
    }
    std::this_thread::yield();
  }
  // A torn image can only persist under a concurrent one-sided writer that
  // died mid-write; accept the last copy (writers hold the lock word, so
  // server-side mutations never observe this).
}

void MemNodeExecutor::StoreNode(const RemoteBTree::TreeRef& tree,
                                uint64_t offset, BTreeNodeImage* node) {
  node->version_front += 2;
  node->version_back = node->version_front;
  std::memcpy(TreeBase(tree) + offset, node, kBTreeNodeBytes);
}

Status MemNodeExecutor::LockWordAcquire(const RemoteBTree::TreeRef& tree,
                                        uint64_t slot) {
  auto* word = reinterpret_cast<std::atomic<uint64_t>*>(
      TreeBase(tree) + tree.lock_table.offset + slot * 8);
  for (int spin = 0; spin < kMaxLockSpins; spin++) {
    uint64_t expected = 0;
    if (word->compare_exchange_strong(expected, 1,
                                      std::memory_order_acq_rel)) {
      return Status::OK();
    }
    std::this_thread::yield();
  }
  return Status::Busy("lock acquisition starved");
}

void MemNodeExecutor::LockWordRelease(const RemoteBTree::TreeRef& tree,
                                      uint64_t slot) {
  auto* word = reinterpret_cast<std::atomic<uint64_t>*>(
      TreeBase(tree) + tree.lock_table.offset + slot * 8);
  word->store(0, std::memory_order_release);
}

void MemNodeExecutor::Descend(const RemoteBTree::TreeRef& tree, uint64_t key,
                              std::vector<uint64_t>* path,
                              BTreeNodeImage* leaf, uint64_t* visited) {
  uint64_t offset = LoadRoot(tree);
  BTreeNodeImage node;
  while (true) {
    LoadNode(tree, offset, &node, visited);
    if (path != nullptr) path->push_back(offset);
    if (node.level == 0) {
      // B-link step: a concurrent split may have moved the key right.
      while (node.nkeys > 0 && key > node.keys[node.nkeys - 1] &&
             node.next != 0) {
        offset = node.next;
        if (path != nullptr) path->back() = offset;
        LoadNode(tree, offset, &node, visited);
      }
      *leaf = node;
      return;
    }
    uint32_t idx = 0;
    while (idx + 1 < node.nkeys && node.keys[idx + 1] <= key) idx++;
    offset = node.vals[idx];
  }
}

namespace {

/// Sorted insert of (key, value) into a node with room. Matches the
/// one-sided client's layout logic exactly (bit-identical images).
void InsertIntoNode(BTreeNodeImage* n, uint64_t key, uint64_t value) {
  uint32_t pos = 0;
  while (pos < n->nkeys && n->keys[pos] < key) pos++;
  for (uint32_t i = n->nkeys; i > pos; i--) {
    n->keys[i] = n->keys[i - 1];
    n->vals[i] = n->vals[i - 1];
  }
  n->keys[pos] = key;
  n->vals[pos] = value;
  n->nkeys++;
}

}  // namespace

Status MemNodeExecutor::InsertWithSplit(const RemoteBTree::TreeRef& tree,
                                        uint64_t key, uint64_t value,
                                        uint64_t* visited) {
  constexpr uint32_t kFanout = BTreeNodeImage::kFanout;
  DISAGG_RETURN_NOT_OK(LockWordAcquire(tree, 0));  // SMO lock
  Status st = [&]() -> Status {
    std::vector<uint64_t> path;
    BTreeNodeImage leaf;
    Descend(tree, key, &path, &leaf, visited);
    const uint64_t leaf_off = path.back();
    const uint64_t leaf_slot = BTreeLockSlot(leaf_off, tree.lock_slots);
    DISAGG_RETURN_NOT_OK(LockWordAcquire(tree, leaf_slot));
    Status inner = [&]() -> Status {
      LoadNode(tree, leaf_off, &leaf, visited);
      for (uint32_t i = 0; i < leaf.nkeys; i++) {
        if (leaf.keys[i] == key) {
          leaf.vals[i] = value;
          StoreNode(tree, leaf_off, &leaf);
          return Status::OK();
        }
      }
      if (leaf.nkeys < kFanout) {
        InsertIntoNode(&leaf, key, value);
        StoreNode(tree, leaf_off, &leaf);
        return Status::OK();
      }

      // Split the leaf (allocation is a local call: the allocator is
      // co-located with the executor — the near-data win).
      stats_.splits++;
      DISAGG_ASSIGN_OR_RETURN(GlobalAddr right_addr,
                              pool_->AllocLocal(kBTreeNodeBytes));
      const uint64_t right_off = right_addr.offset;
      BTreeNodeImage right;
      std::memset(&right, 0, sizeof(right));
      const uint32_t half = kFanout / 2;
      right.level = 0;
      right.nkeys = kFanout - half;
      std::memcpy(right.keys, leaf.keys + half, right.nkeys * 8);
      std::memcpy(right.vals, leaf.vals + half, right.nkeys * 8);
      right.next = leaf.next;
      leaf.nkeys = half;
      leaf.next = right_off;
      InsertIntoNode(key >= right.keys[0] ? &right : &leaf, key, value);

      // Publish right first, then the shrunk left (B-link ordering).
      StoreNode(tree, right_off, &right);
      StoreNode(tree, leaf_off, &leaf);

      uint64_t sep = right.keys[0];
      uint64_t child = right_off;
      for (size_t depth = path.size(); depth-- > 1;) {
        const uint64_t parent_off = path[depth - 1];
        BTreeNodeImage parent;
        LoadNode(tree, parent_off, &parent, visited);
        if (parent.nkeys < kFanout) {
          InsertIntoNode(&parent, sep, child);
          StoreNode(tree, parent_off, &parent);
          return Status::OK();
        }
        stats_.splits++;
        DISAGG_ASSIGN_OR_RETURN(GlobalAddr iright_addr,
                                pool_->AllocLocal(kBTreeNodeBytes));
        const uint64_t iright_off = iright_addr.offset;
        BTreeNodeImage iright;
        std::memset(&iright, 0, sizeof(iright));
        const uint32_t ihalf = kFanout / 2;
        iright.level = parent.level;
        iright.nkeys = kFanout - ihalf;
        std::memcpy(iright.keys, parent.keys + ihalf, iright.nkeys * 8);
        std::memcpy(iright.vals, parent.vals + ihalf, iright.nkeys * 8);
        parent.nkeys = ihalf;
        InsertIntoNode(sep >= iright.keys[0] ? &iright : &parent, sep, child);
        StoreNode(tree, iright_off, &iright);
        StoreNode(tree, parent_off, &parent);
        sep = iright.keys[0];
        child = iright_off;
      }

      // The root itself split: grow the tree.
      DISAGG_ASSIGN_OR_RETURN(GlobalAddr root_addr,
                              pool_->AllocLocal(kBTreeNodeBytes));
      BTreeNodeImage new_root;
      std::memset(&new_root, 0, sizeof(new_root));
      BTreeNodeImage old_root;
      LoadNode(tree, path[0], &old_root, visited);
      new_root.level = old_root.level + 1;
      new_root.nkeys = 2;
      new_root.keys[0] = 0;  // leftmost separator: minus infinity
      new_root.vals[0] = path[0];
      new_root.keys[1] = sep;
      new_root.vals[1] = child;
      StoreNode(tree, root_addr.offset, &new_root);
      auto* root_word = reinterpret_cast<std::atomic<uint64_t>*>(
          TreeBase(tree) + tree.root_ptr.offset);
      root_word->store(root_addr.offset, std::memory_order_release);
      return Status::OK();
    }();
    LockWordRelease(tree, leaf_slot);
    return inner;
  }();
  LockWordRelease(tree, 0);
  return st;
}

// ---- Index handlers --------------------------------------------------------

Status MemNodeExecutor::HandleIdxGet(Slice req, std::string* resp,
                                     RpcServerContext* sctx) {
  DISAGG_RETURN_NOT_OK(CheckAlive());
  uint64_t tree_id = 0, key = 0;
  if (!GetVarint64(&req, &tree_id) || !GetFixed64(&req, &key)) {
    return Status::InvalidArgument("malformed exec.idx.get");
  }
  RemoteBTree::TreeRef tree;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tree_id >= trees_.size()) {
      return Status::InvalidArgument("unknown tree id");
    }
    tree = trees_[tree_id];
    stats_.lookups++;
  }
  uint64_t visited = 0;
  BTreeNodeImage leaf;
  Descend(tree, key, nullptr, &leaf, &visited);
  sctx->ChargeCompute(offload::kDispatchNs + offload::kNodeVisitNs * visited);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.nodes_visited += visited;
  }
  for (uint32_t i = 0; i < leaf.nkeys; i++) {
    if (leaf.keys[i] == key) {
      PutFixed64(resp, leaf.vals[i]);
      return Status::OK();
    }
  }
  return Status::NotFound("key not in tree");
}

Status MemNodeExecutor::HandleIdxScan(Slice req, std::string* resp,
                                      RpcServerContext* sctx) {
  DISAGG_RETURN_NOT_OK(CheckAlive());
  uint64_t tree_id = 0, from = 0, limit = 0;
  if (!GetVarint64(&req, &tree_id) || !GetFixed64(&req, &from) ||
      !GetVarint64(&req, &limit)) {
    return Status::InvalidArgument("malformed exec.idx.scan");
  }
  RemoteBTree::TreeRef tree;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tree_id >= trees_.size()) {
      return Status::InvalidArgument("unknown tree id");
    }
    tree = trees_[tree_id];
    stats_.scans++;
  }
  uint64_t visited = 0;
  BTreeNodeImage leaf;
  Descend(tree, from, nullptr, &leaf, &visited);
  std::vector<std::pair<uint64_t, uint64_t>> out;
  while (out.size() < limit) {
    for (uint32_t i = 0; i < leaf.nkeys && out.size() < limit; i++) {
      if (leaf.keys[i] >= from) out.emplace_back(leaf.keys[i], leaf.vals[i]);
    }
    if (leaf.next == 0 || out.size() >= limit) break;
    LoadNode(tree, leaf.next, &leaf, &visited);
  }
  sctx->ChargeCompute(offload::kDispatchNs + offload::kNodeVisitNs * visited +
                      offload::kEntryNs * out.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.nodes_visited += visited;
  }
  PutVarint64(resp, out.size());
  for (const auto& [k, v] : out) {
    PutFixed64(resp, k);
    PutFixed64(resp, v);
  }
  return Status::OK();
}

Status MemNodeExecutor::HandleIdxPut(Slice req, std::string* resp,
                                     RpcServerContext* sctx) {
  (void)resp;
  DISAGG_RETURN_NOT_OK(CheckAlive());
  uint64_t tree_id = 0, key = 0, value = 0;
  if (!GetVarint64(&req, &tree_id) || !GetFixed64(&req, &key) ||
      !GetFixed64(&req, &value)) {
    return Status::InvalidArgument("malformed exec.idx.put");
  }
  RemoteBTree::TreeRef tree;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tree_id >= trees_.size()) {
      return Status::InvalidArgument("unknown tree id");
    }
    tree = trees_[tree_id];
    stats_.inserts++;
  }
  uint64_t visited = 0;
  Status st = [&]() -> Status {
    std::vector<uint64_t> path;
    BTreeNodeImage leaf;
    Descend(tree, key, &path, &leaf, &visited);
    const uint64_t leaf_off = path.back();
    const uint64_t slot = BTreeLockSlot(leaf_off, tree.lock_slots);
    DISAGG_RETURN_NOT_OK(LockWordAcquire(tree, slot));
    // Re-read under the lock (the image may have changed since the descent).
    LoadNode(tree, leaf_off, &leaf, &visited);
    for (uint32_t i = 0; i < leaf.nkeys; i++) {
      if (leaf.keys[i] == key) {
        leaf.vals[i] = value;
        StoreNode(tree, leaf_off, &leaf);
        LockWordRelease(tree, slot);
        return Status::OK();
      }
    }
    if (leaf.nkeys < BTreeNodeImage::kFanout) {
      InsertIntoNode(&leaf, key, value);
      StoreNode(tree, leaf_off, &leaf);
      LockWordRelease(tree, slot);
      return Status::OK();
    }
    LockWordRelease(tree, slot);
    return InsertWithSplit(tree, key, value, &visited);
  }();
  sctx->ChargeCompute(offload::kDispatchNs + offload::kNodeVisitNs * visited);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.nodes_visited += visited;
  }
  return st;
}

Status MemNodeExecutor::HandleIdxDelete(Slice req, std::string* resp,
                                        RpcServerContext* sctx) {
  (void)resp;
  DISAGG_RETURN_NOT_OK(CheckAlive());
  uint64_t tree_id = 0, key = 0;
  if (!GetVarint64(&req, &tree_id) || !GetFixed64(&req, &key)) {
    return Status::InvalidArgument("malformed exec.idx.del");
  }
  RemoteBTree::TreeRef tree;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tree_id >= trees_.size()) {
      return Status::InvalidArgument("unknown tree id");
    }
    tree = trees_[tree_id];
    stats_.deletes++;
  }
  uint64_t visited = 0;
  Status st = [&]() -> Status {
    std::vector<uint64_t> path;
    BTreeNodeImage leaf;
    Descend(tree, key, &path, &leaf, &visited);
    const uint64_t leaf_off = path.back();
    const uint64_t slot = BTreeLockSlot(leaf_off, tree.lock_slots);
    DISAGG_RETURN_NOT_OK(LockWordAcquire(tree, slot));
    LoadNode(tree, leaf_off, &leaf, &visited);
    Status inner = Status::NotFound("key not in tree");
    for (uint32_t i = 0; i < leaf.nkeys; i++) {
      if (leaf.keys[i] == key) {
        for (uint32_t j = i; j + 1 < leaf.nkeys; j++) {
          leaf.keys[j] = leaf.keys[j + 1];
          leaf.vals[j] = leaf.vals[j + 1];
        }
        leaf.nkeys--;  // no merging: leaves may run underfull, as in Sherman
        StoreNode(tree, leaf_off, &leaf);
        inner = Status::OK();
        break;
      }
    }
    LockWordRelease(tree, slot);
    return inner;
  }();
  sctx->ChargeCompute(offload::kDispatchNs + offload::kNodeVisitNs * visited);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.nodes_visited += visited;
  }
  return st;
}

// ---- WOUND_WAIT lock table -------------------------------------------------

LockOutcome MemNodeExecutor::AcquireLocked(TxnId txn, uint64_t key,
                                           uint8_t mode) {
  LockEntry& e = lock_table_[key];
  auto track = [&](bool newly_held) {
    TxnState& ts = txns_[txn];
    if (ts.epoch == 0) ts.epoch = epoch_;
    if (newly_held) ts.keys.push_back(key);
    stats_.grants++;
  };
  // WOUND_WAIT: age is the TxnId (monotonic from Begin — lower = older).
  // An older requester wounds every younger conflicting holder and then
  // waits (Busy-retry here: no blocking on an RPC server); a younger
  // requester just waits. The oldest live txn is never wounded, so some
  // txn always makes progress — no deadlock, no wedge.
  auto conflict_with = [&](const std::vector<TxnId>& holders) {
    stats_.conflicts++;
    for (TxnId h : holders) {
      if (txn < h && wounded_.insert(h).second) stats_.wounds++;
    }
    if (lock_table_[key].sharers.empty() && lock_table_[key].exclusive == 0) {
      lock_table_.erase(key);
    }
    return LockOutcome::kConflict;
  };

  if (mode == offload::kModeShared) {
    if (e.exclusive != 0 && e.exclusive != txn) {
      return conflict_with({e.exclusive});
    }
    track(e.sharers.insert(txn).second);
    return LockOutcome::kGranted;
  }
  // Exclusive.
  if (e.exclusive != 0) {
    if (e.exclusive == txn) {
      stats_.grants++;
      return LockOutcome::kGranted;
    }
    return conflict_with({e.exclusive});
  }
  std::vector<TxnId> others;
  for (TxnId sharer : e.sharers) {
    if (sharer != txn) others.push_back(sharer);
  }
  if (!others.empty()) return conflict_with(others);
  const bool newly_held = e.sharers.erase(txn) == 0;
  e.exclusive = txn;
  track(newly_held);
  return LockOutcome::kGranted;
}

void MemNodeExecutor::ReleaseTxnLocked(TxnId txn) {
  auto it = txns_.find(txn);
  if (it != txns_.end()) {
    for (uint64_t key : it->second.keys) {
      auto te = lock_table_.find(key);
      if (te == lock_table_.end()) continue;
      te->second.sharers.erase(txn);
      if (te->second.exclusive == txn) te->second.exclusive = 0;
      if (te->second.sharers.empty() && te->second.exclusive == 0) {
        lock_table_.erase(te);
      }
    }
    txns_.erase(it);
  }
  wounded_.erase(txn);
  stats_.releases++;
}

Status MemNodeExecutor::HandleLockAcquire(Slice req, std::string* resp,
                                          RpcServerContext* sctx) {
  DISAGG_RETURN_NOT_OK(CheckAlive());
  uint64_t req_epoch = 0, txn = 0, key = 0, npend = 0;
  if (!GetVarint64(&req, &req_epoch) || !GetFixed64(&req, &txn) ||
      !GetFixed64(&req, &key) || req.empty()) {
    return Status::InvalidArgument("malformed exec.lock.acquire");
  }
  const uint8_t mode = static_cast<uint8_t>(req[0]);
  req.remove_prefix(1);
  if (!GetVarint64(&req, &npend)) {
    return Status::InvalidArgument("malformed exec.lock.acquire");
  }

  std::lock_guard<std::mutex> lock(mu_);
  stats_.acquires++;
  for (uint64_t i = 0; i < npend; i++) {
    uint64_t dead = 0;
    if (!GetFixed64(&req, &dead)) {
      return Status::InvalidArgument("malformed exec.lock.acquire");
    }
    ReleaseTxnLocked(dead);
    stats_.piggybacked_releases++;
  }
  sctx->ChargeCompute(offload::kDispatchNs +
                      offload::kLockOpNs * (1 + npend));

  LockOutcome outcome;
  if (req_epoch != offload::kFreshEpoch && req_epoch != epoch_) {
    // The grant this txn is building on predates a crash: everything it
    // held is gone. Fence it rather than silently re-granting.
    outcome = LockOutcome::kFenced;
    stats_.fenced++;
  } else if (wounded_.count(txn) != 0) {
    outcome = LockOutcome::kWounded;  // wound notice piggybacked on the reply
    stats_.wounded_observed++;
  } else {
    outcome = AcquireLocked(txn, key, mode);
  }
  resp->push_back(static_cast<char>(outcome));
  PutVarint64(resp, epoch_);
  return Status::OK();
}

Status MemNodeExecutor::HandleLockRelease(Slice req, std::string* resp,
                                          RpcServerContext* sctx) {
  DISAGG_RETURN_NOT_OK(CheckAlive());
  uint64_t req_epoch = 0, txn = 0, npend = 0;
  if (!GetVarint64(&req, &req_epoch) || !GetFixed64(&req, &txn) ||
      !GetVarint64(&req, &npend)) {
    return Status::InvalidArgument("malformed exec.lock.release");
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t i = 0; i < npend; i++) {
    uint64_t dead = 0;
    if (!GetFixed64(&req, &dead)) {
      return Status::InvalidArgument("malformed exec.lock.release");
    }
    ReleaseTxnLocked(dead);
    stats_.piggybacked_releases++;
  }
  sctx->ChargeCompute(offload::kDispatchNs +
                      offload::kLockOpNs * (1 + npend));

  LockOutcome outcome = LockOutcome::kGranted;
  if (req_epoch != offload::kFreshEpoch && req_epoch != epoch_) {
    // Pre-crash locks are already gone; the release is a no-op, but tell
    // the client so it drops its stale grant state.
    outcome = LockOutcome::kFenced;
    stats_.fenced++;
  } else {
    ReleaseTxnLocked(txn);
  }
  resp->push_back(static_cast<char>(outcome));
  PutVarint64(resp, epoch_);
  return Status::OK();
}

// ---- Compute-side clients --------------------------------------------------

Result<uint64_t> OffloadIndexGet(Fabric* fabric, NetContext* ctx, NodeId node,
                                 uint32_t tree, uint64_t key) {
  std::string req;
  PutVarint64(&req, tree);
  PutFixed64(&req, key);
  std::string resp;
  DISAGG_RETURN_NOT_OK(fabric->Call(ctx, node, offload::kIdxGet, req, &resp));
  Slice in(resp);
  uint64_t value = 0;
  if (!GetFixed64(&in, &value)) {
    return Status::Corruption("exec.idx.get response");
  }
  return value;
}

Status OffloadIndexPut(Fabric* fabric, NetContext* ctx, NodeId node,
                       uint32_t tree, uint64_t key, uint64_t value) {
  std::string req;
  PutVarint64(&req, tree);
  PutFixed64(&req, key);
  PutFixed64(&req, value);
  std::string resp;
  return fabric->Call(ctx, node, offload::kIdxPut, req, &resp);
}

Status OffloadIndexDelete(Fabric* fabric, NetContext* ctx, NodeId node,
                          uint32_t tree, uint64_t key) {
  std::string req;
  PutVarint64(&req, tree);
  PutFixed64(&req, key);
  std::string resp;
  return fabric->Call(ctx, node, offload::kIdxDelete, req, &resp);
}

Result<std::vector<std::pair<uint64_t, uint64_t>>> OffloadIndexScan(
    Fabric* fabric, NetContext* ctx, NodeId node, uint32_t tree, uint64_t from,
    size_t limit) {
  std::string req;
  PutVarint64(&req, tree);
  PutFixed64(&req, from);
  PutVarint64(&req, limit);
  std::string resp;
  DISAGG_RETURN_NOT_OK(fabric->Call(ctx, node, offload::kIdxScan, req, &resp));
  Slice in(resp);
  uint64_t count = 0;
  if (!GetVarint64(&in, &count)) {
    return Status::Corruption("exec.idx.scan response");
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    uint64_t k = 0, v = 0;
    if (!GetFixed64(&in, &k) || !GetFixed64(&in, &v)) {
      return Status::Corruption("exec.idx.scan response");
    }
    out.emplace_back(k, v);
  }
  return out;
}

std::vector<TxnId> OffloadedLockClient::TakePending() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TxnId> out;
  out.swap(pending_release_);
  return out;
}

void OffloadedLockClient::RestorePending(const std::vector<TxnId>& txns) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_release_.insert(pending_release_.begin(), txns.begin(), txns.end());
}

Status OffloadedLockClient::AcquireLock(NetContext* ctx, TxnId txn,
                                        uint64_t key, LockMode mode) {
  NetContext scratch;
  if (ctx == nullptr) ctx = &scratch;
  const std::vector<TxnId> pend = TakePending();
  std::string req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txn_epoch_.find(txn);
    PutVarint64(&req,
                it == txn_epoch_.end() ? offload::kFreshEpoch : it->second);
    stats_.acquires++;
  }
  PutFixed64(&req, txn);
  PutFixed64(&req, key);
  req.push_back(static_cast<char>(mode == LockMode::kShared
                                      ? offload::kModeShared
                                      : offload::kModeExclusive));
  PutVarint64(&req, pend.size());
  for (TxnId dead : pend) PutFixed64(&req, dead);

  std::string resp;
  Status st = fabric_->Call(ctx, node_, offload::kLockAcquire, req, &resp);
  if (!st.ok()) {
    RestorePending(pend);
    return st;
  }
  Slice in(resp);
  if (in.empty()) return Status::Corruption("exec.lock.acquire response");
  const auto outcome = static_cast<offload::LockOutcome>(in[0]);
  in.remove_prefix(1);
  uint64_t cur_epoch = 0;
  if (!GetVarint64(&in, &cur_epoch)) {
    return Status::Corruption("exec.lock.acquire response");
  }
  std::lock_guard<std::mutex> lock(mu_);
  switch (outcome) {
    case offload::LockOutcome::kGranted:
      txn_epoch_[txn] = cur_epoch;
      return Status::OK();
    case offload::LockOutcome::kConflict:
      stats_.busy++;
      return Status::Busy("lock conflict at memory-node lock table");
    case offload::LockOutcome::kWounded:
      stats_.wounded++;
      return Status::Aborted("wounded by an older transaction");
    case offload::LockOutcome::kFenced:
      stats_.fenced++;
      txn_epoch_.erase(txn);
      return Status::Aborted("lock grants fenced by executor recovery");
  }
  return Status::Corruption("exec.lock.acquire outcome");
}

void OffloadedLockClient::ReleaseAllLocks(NetContext* ctx, TxnId txn) {
  NetContext scratch;
  if (ctx == nullptr) ctx = &scratch;
  const std::vector<TxnId> pend = TakePending();
  std::string req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = txn_epoch_.find(txn);
    PutVarint64(&req,
                it == txn_epoch_.end() ? offload::kFreshEpoch : it->second);
    txn_epoch_.erase(txn);
  }
  PutFixed64(&req, txn);
  PutVarint64(&req, pend.size());
  for (TxnId dead : pend) PutFixed64(&req, dead);

  std::string resp;
  Status st = fabric_->Call(ctx, node_, offload::kLockRelease, req, &resp);
  if (!st.ok()) {
    // Queue everything for the next request: the locks stay held until a
    // later acquire/release piggybacks these ids or the executor recovers.
    RestorePending(pend);
    std::lock_guard<std::mutex> lock(mu_);
    pending_release_.push_back(txn);
    stats_.release_rpc_failures++;
  }
}

OffloadedLockClient::Stats OffloadedLockClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t OffloadedLockClient::pending_releases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_release_.size();
}

}  // namespace disagg
