#ifndef DISAGG_MEMNODE_TWO_TIER_CACHE_H_
#define DISAGG_MEMNODE_TWO_TIER_CACHE_H_

#include <list>
#include <unordered_map>

#include "memnode/memory_node.h"
#include "memnode/page_source.h"

namespace disagg {

/// LegoBase's two-level buffer management (Sec. 3.1): a small compute-local
/// DRAM cache (L1) in front of a large remote-memory pool tier (L2), both in
/// front of disaggregated storage. Each tier runs its own LRU list —
/// "two LRU lists (one for local cache and the other for remote memory pool)
/// to maximize the cache hit ratios."
///
/// Data movement is real: L2 frames live in the MemoryNode's region and are
/// moved with one-sided reads/writes, so every hit level has its faithful
/// network cost.
class TwoTierCache {
 public:
  struct Stats {
    uint64_t l1_hits = 0;
    uint64_t l2_hits = 0;
    uint64_t misses = 0;        // went to storage
    uint64_t demotions = 0;     // L1 -> L2
    uint64_t l2_evictions = 0;  // L2 -> dropped/storage
    uint64_t writebacks = 0;    // dirty page written to storage

    double L1HitRate() const {
      const uint64_t total = l1_hits + l2_hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(l1_hits) / total;
    }
  };

  /// `l1_capacity`/`l2_capacity` are in pages. The L2 frames are allocated
  /// from `remote_pool` on demand.
  TwoTierCache(Fabric* fabric, MemoryNode* remote_pool, PageSource* storage,
               size_t l1_capacity, size_t l2_capacity);

  /// Returns a pointer to the L1-resident page (valid until the next call
  /// that may evict). Promotes from L2/storage as needed.
  Result<Page*> Get(NetContext* ctx, PageId id);

  /// Marks an L1-resident page dirty so demotion/eviction writes it back.
  Status MarkDirty(PageId id);

  /// Writes all dirty pages (in either tier) back to storage.
  Status FlushAll(NetContext* ctx);

  /// Drops the L1 tier, simulating a compute-node crash. L2 (remote memory)
  /// survives — the property LegoBase's fast recovery exploits.
  void DropL1();

  const Stats& stats() const { return stats_; }
  size_t l1_size() const { return l1_.size(); }
  size_t l2_size() const { return l2_.size(); }

 private:
  struct L1Entry {
    Page page;
    bool dirty = false;
    std::list<PageId>::iterator lru_it;
  };
  struct L2Entry {
    GlobalAddr addr;
    bool dirty = false;
    std::list<PageId>::iterator lru_it;
  };

  /// Inserts into L1, demoting the LRU victim to L2 if full.
  Status InsertL1(NetContext* ctx, Page page, bool dirty, Page** out);
  Status DemoteToL2(NetContext* ctx, PageId id, const Page& page, bool dirty);
  Status EvictFromL2(NetContext* ctx);

  Fabric* fabric_;
  MemoryNode* pool_;
  PageSource* storage_;
  size_t l1_capacity_;
  size_t l2_capacity_;
  std::unordered_map<PageId, L1Entry> l1_;
  std::list<PageId> l1_lru_;  // front = most recent
  std::unordered_map<PageId, L2Entry> l2_;
  std::list<PageId> l2_lru_;
  Stats stats_;
};

}  // namespace disagg

#endif  // DISAGG_MEMNODE_TWO_TIER_CACHE_H_
