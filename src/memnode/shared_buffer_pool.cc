#include "memnode/shared_buffer_pool.h"

#include "common/coding.h"
#include <thread>

#include "common/logging.h"

namespace disagg {

namespace {
constexpr int kMaxRetries = 20000;

uint64_t HashPageId(PageId id) { return id * 0x9E3779B97F4A7C15ull; }
}  // namespace

SharedBufferPoolHome::SharedBufferPoolHome(Fabric* fabric, MemoryNode* pool,
                                           size_t max_pages)
    : fabric_(fabric), pool_(pool) {
  dir_slots_ = max_pages * 2;  // 50% max load factor
  max_frames_ = max_pages;
  auto counter = pool_->AllocLocal(8);
  DISAGG_CHECK(counter.ok());
  counter_offset_ = counter->offset;
  auto dir = pool_->AllocLocal(dir_slots_ * 32);
  DISAGG_CHECK(dir.ok());
  dir_offset_ = dir->offset;
  auto frames = pool_->AllocLocal(max_frames_ * kPageSize);
  DISAGG_CHECK(frames.ok());
  frames_offset_ = frames->offset;
}

SharedBufferPoolClient::SharedBufferPoolClient(
    Fabric* fabric, const SharedBufferPoolHome* home, size_t local_cache_pages)
    : fabric_(fabric), home_(home), local_cache_pages_(local_cache_pages) {}

Result<SharedBufferPoolClient::Entry> SharedBufferPoolClient::ReadEntry(
    NetContext* ctx, uint64_t slot) {
  char buf[32];
  Status st = fabric_->Read(ctx, At(SlotAddrOffset(slot)), buf, 32);
  if (!st.ok()) return st;
  Entry e;
  e.page_id = DecodeFixed64(buf);
  e.seq = DecodeFixed64(buf + 8);
  e.frame_plus1 = DecodeFixed64(buf + 16);
  return e;
}

Result<uint64_t> SharedBufferPoolClient::FindSlot(NetContext* ctx, PageId id,
                                                  bool create) {
  DISAGG_CHECK(id != 0);  // 0 marks an empty directory slot
  const size_t slots = home_->dir_slots();
  uint64_t slot = HashPageId(id) % slots;
  for (size_t probe = 0; probe < slots; probe++, slot = (slot + 1) % slots) {
    DISAGG_ASSIGN_OR_RETURN(Entry e, ReadEntry(ctx, slot));
    if (e.page_id == id) return slot;
    if (e.page_id == 0) {
      if (!create) return Status::NotFound("page not in shared pool");
      auto observed =
          fabric_->CompareAndSwap(ctx, At(SlotAddrOffset(slot)), 0, id);
      if (!observed.ok()) return observed.status();
      if (*observed == 0 ||
          *observed == id) {  // we created it, or a racer did
        return slot;
      }
      // Someone else claimed the slot for another page; keep probing.
    }
  }
  return Status::Unavailable("shared pool directory full");
}

Result<uint64_t> SharedBufferPoolClient::EnsureFrame(NetContext* ctx,
                                                     uint64_t slot) {
  for (int retry = 0; retry < kMaxRetries; retry++) {
    DISAGG_ASSIGN_OR_RETURN(Entry e, ReadEntry(ctx, slot));
    if (e.frame_plus1 != 0) return e.frame_plus1 - 1;
    // Allocate a frame index and try to install it.
    auto frame = fabric_->FetchAdd(
        ctx, At(home_->counter_offset()), 1);
    if (!frame.ok()) return frame.status();
    if (*frame >= home_->max_frames()) {
      return Status::Unavailable("shared pool frames exhausted");
    }
    auto observed = fabric_->CompareAndSwap(
        ctx, At(SlotAddrOffset(slot) + 16), 0, *frame + 1);
    if (!observed.ok()) return observed.status();
    if (*observed == 0) return *frame;
    // Lost the race; the winner's frame stands (ours leaks, acceptable in a
    // bump-allocated pool) — reread and use theirs.
  }
  return Status::Busy("frame installation did not converge");
}

Result<Page> SharedBufferPoolClient::ReadPage(NetContext* ctx, PageId id,
                                              uint64_t* version) {
  DISAGG_ASSIGN_OR_RETURN(uint64_t slot, FindSlot(ctx, id, /*create=*/false));
  for (int retry = 0; retry < kMaxRetries; retry++) {
    DISAGG_ASSIGN_OR_RETURN(Entry e, ReadEntry(ctx, slot));
    if (e.seq % 2 == 1) {  // writer in progress
      stats_.retries++;
      std::this_thread::yield();
      continue;
    }
    if (e.frame_plus1 == 0) return Status::NotFound("page has no frame yet");

    // Local cache revalidation: same seq means the cached copy is current.
    auto cit = local_cache_.find(id);
    if (cit != local_cache_.end() && cit->second.second == e.seq) {
      stats_.local_hits++;
      if (version != nullptr) *version = e.seq;
      return cit->second.first;
    }

    Page page(id);
    DISAGG_RETURN_NOT_OK(fabric_->Read(
        ctx, At(FrameOffset(e.frame_plus1 - 1)), page.data(), kPageSize));
    // Seqlock validation read.
    auto seq2 = fabric_->ReadAtomic64(ctx, At(SlotAddrOffset(slot) + 8));
    if (!seq2.ok()) return seq2.status();
    if (*seq2 != e.seq) {
      stats_.retries++;
      std::this_thread::yield();
      continue;
    }
    stats_.frame_reads++;
    if (local_cache_pages_ > 0) {
      if (local_cache_.size() >= local_cache_pages_ &&
          local_cache_.find(id) == local_cache_.end()) {
        local_cache_.erase(local_cache_.begin());  // random-ish eviction
      }
      local_cache_.insert_or_assign(id, std::make_pair(page, e.seq));
    }
    if (version != nullptr) *version = e.seq;
    return page;
  }
  return Status::Busy("seqlock read did not stabilize");
}

Status SharedBufferPoolClient::FenceCrashedWriters(NetContext* ctx,
                                                   uint64_t* repaired) {
  for (uint64_t slot = 0; slot < home_->dir_slots(); slot++) {
    const GlobalAddr seq_addr = At(SlotAddrOffset(slot) + 8);
    auto seq = fabric_->ReadAtomic64(ctx, seq_addr);
    if (!seq.ok()) return seq.status();
    if (*seq % 2 == 0) continue;  // unlocked (or empty slot)
    auto observed = fabric_->CompareAndSwap(ctx, seq_addr, *seq, *seq + 1);
    if (!observed.ok()) return observed.status();
    // A lost CAS means the (not actually dead) writer published meanwhile;
    // either way the entry is even again.
    if (*observed == *seq && repaired != nullptr) (*repaired)++;
  }
  return Status::OK();
}

Status SharedBufferPoolClient::WritePage(NetContext* ctx, const Page& page) {
  DISAGG_ASSIGN_OR_RETURN(uint64_t slot,
                          FindSlot(ctx, page.page_id(), /*create=*/true));
  DISAGG_ASSIGN_OR_RETURN(uint64_t frame, EnsureFrame(ctx, slot));
  const GlobalAddr seq_addr = At(SlotAddrOffset(slot) + 8);
  for (int retry = 0; retry < kMaxRetries; retry++) {
    auto seq = fabric_->ReadAtomic64(ctx, seq_addr);
    if (!seq.ok()) return seq.status();
    if (*seq % 2 == 1) {  // another writer holds the seqlock
      stats_.retries++;
      std::this_thread::yield();
      continue;
    }
    auto observed = fabric_->CompareAndSwap(ctx, seq_addr, *seq, *seq + 1);
    if (!observed.ok()) return observed.status();
    if (*observed != *seq) {
      stats_.retries++;
      std::this_thread::yield();
      continue;
    }
    DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, At(FrameOffset(frame)),
                                        page.data(), kPageSize));
    const uint64_t published = *seq + 2;
    DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, seq_addr, &published, 8));
    stats_.frame_writes++;
    if (local_cache_pages_ > 0) {
      local_cache_.insert_or_assign(page.page_id(),
                                    std::make_pair(page, published));
    }
    return Status::OK();
  }
  return Status::Busy("seqlock write did not converge");
}

Status SharedBufferPoolClient::WritePageIf(NetContext* ctx, const Page& page,
                                           uint64_t expected_version) {
  DISAGG_CHECK(expected_version % 2 == 0);  // stable versions are even
  DISAGG_ASSIGN_OR_RETURN(uint64_t slot,
                          FindSlot(ctx, page.page_id(), /*create=*/true));
  DISAGG_ASSIGN_OR_RETURN(uint64_t frame, EnsureFrame(ctx, slot));
  const GlobalAddr seq_addr = At(SlotAddrOffset(slot) + 8);
  // One CAS attempt: even `expected_version` -> odd locks the entry only if
  // nobody has published since the caller's validated read.
  auto observed = fabric_->CompareAndSwap(ctx, seq_addr, expected_version,
                                          expected_version + 1);
  if (!observed.ok()) return observed.status();
  if (*observed != expected_version) {
    stats_.retries++;
    return Status::Busy("page moved past expected version");
  }
  DISAGG_RETURN_NOT_OK(
      fabric_->Write(ctx, At(FrameOffset(frame)), page.data(), kPageSize));
  const uint64_t published = expected_version + 2;
  DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, seq_addr, &published, 8));
  stats_.frame_writes++;
  if (local_cache_pages_ > 0) {
    local_cache_.insert_or_assign(page.page_id(),
                                  std::make_pair(page, published));
  }
  return Status::OK();
}

}  // namespace disagg
