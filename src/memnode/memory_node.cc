#include "memnode/memory_node.h"

#include <bit>

#include "common/coding.h"

namespace disagg {

MemoryNode::MemoryNode(Fabric* fabric, const std::string& name,
                       size_t capacity_bytes, InterconnectModel model)
    : fabric_(fabric) {
  node_ = fabric_->AddNode(name, NodeKind::kMemory, std::move(model));
  Node* n = fabric_->node(node_);
  n->set_cpu_scale(1.5);  // pool-side cores run at lower clocks (Sec. 1)
  region_ = n->AddRegion("pool", capacity_bytes);
  n->RegisterHandler("mem.alloc", [this](Slice req, std::string* resp,
                                         RpcServerContext* sctx) {
    return HandleAlloc(req, resp, sctx);
  });
  n->RegisterHandler("mem.free", [this](Slice req, std::string* resp,
                                        RpcServerContext* sctx) {
    return HandleFree(req, resp, sctx);
  });
}

size_t MemoryNode::allocated_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return allocated_;
}

ResourceCapacity MemoryNode::ServiceCapacity(uint64_t ns_per_op) const {
  ResourceCapacity cap;
  cap.ns_per_op = ns_per_op;
  cap.ns_per_byte = fabric_->node(node_)->model().ns_per_byte;
  return cap;
}

size_t MemoryNode::SizeClass(size_t bytes) {
  // Round up to the next power of two, minimum 64 bytes (cache line).
  size_t c = 64;
  while (c < bytes) c <<= 1;
  return c;
}

Result<GlobalAddr> MemoryNode::AllocLocal(size_t bytes) {
  if (bytes == 0) return Status::InvalidArgument("zero-size alloc");
  const size_t cls = SizeClass(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  auto& fl = free_lists_[cls];
  uint64_t offset;
  if (!fl.empty()) {
    offset = fl.back();
    fl.pop_back();
  } else {
    if (bump_ + cls > region_->size()) {
      return Status::Unavailable("memory pool exhausted");
    }
    offset = bump_;
    bump_ += cls;
  }
  allocated_ += cls;
  return GlobalAddr{node_, region_->id(), offset};
}

Status MemoryNode::FreeLocal(GlobalAddr addr, size_t bytes) {
  if (addr.node != node_ || addr.region != region_->id()) {
    return Status::InvalidArgument("address not in this pool");
  }
  const size_t cls = SizeClass(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  free_lists_[cls].push_back(addr.offset);
  allocated_ -= cls;
  return Status::OK();
}

Status MemoryNode::HandleAlloc(Slice req, std::string* resp,
                               RpcServerContext* sctx) {
  uint64_t bytes = 0;
  if (!GetVarint64(&req, &bytes)) {
    return Status::InvalidArgument("malformed mem.alloc");
  }
  auto addr = AllocLocal(bytes);
  if (!addr.ok()) return addr.status();
  sctx->ChargeCompute(300);
  resp->clear();
  PutVarint64(resp, addr->offset);
  return Status::OK();
}

Status MemoryNode::HandleFree(Slice req, std::string* resp,
                              RpcServerContext* sctx) {
  uint64_t offset = 0, bytes = 0;
  if (!GetVarint64(&req, &offset) || !GetVarint64(&req, &bytes)) {
    return Status::InvalidArgument("malformed mem.free");
  }
  sctx->ChargeCompute(300);
  resp->clear();
  return FreeLocal(GlobalAddr{node_, region_->id(), offset}, bytes);
}

Result<GlobalAddr> RemoteAllocator::Alloc(NetContext* ctx, size_t bytes) {
  std::string req;
  PutVarint64(&req, bytes);
  std::string resp;
  Status st = fabric_->Call(ctx, node_, "mem.alloc", req, &resp);
  if (!st.ok()) return st;
  Slice in(resp);
  uint64_t offset = 0;
  if (!GetVarint64(&in, &offset)) return Status::Corruption("alloc response");
  return GlobalAddr{node_, 0, offset};
}

Status RemoteAllocator::Free(NetContext* ctx, GlobalAddr addr, size_t bytes) {
  std::string req;
  PutVarint64(&req, addr.offset);
  PutVarint64(&req, bytes);
  std::string resp;
  return fabric_->Call(ctx, node_, "mem.free", req, &resp);
}

}  // namespace disagg
