#include "memnode/two_tier_cache.h"

namespace disagg {

TwoTierCache::TwoTierCache(Fabric* fabric, MemoryNode* remote_pool,
                           PageSource* storage, size_t l1_capacity,
                           size_t l2_capacity)
    : fabric_(fabric),
      pool_(remote_pool),
      storage_(storage),
      l1_capacity_(l1_capacity),
      l2_capacity_(l2_capacity) {}

Result<Page*> TwoTierCache::Get(NetContext* ctx, PageId id) {
  // L1 (compute-local DRAM).
  auto it = l1_.find(id);
  if (it != l1_.end()) {
    stats_.l1_hits++;
    ctx->Charge(InterconnectModel::LocalDram().ReadCost(kPageSize));
    l1_lru_.erase(it->second.lru_it);
    l1_lru_.push_front(id);
    it->second.lru_it = l1_lru_.begin();
    return &it->second.page;
  }

  // L2 (remote memory pool): promote to L1 with a one-sided read.
  auto it2 = l2_.find(id);
  if (it2 != l2_.end()) {
    stats_.l2_hits++;
    Page page(id);
    DISAGG_RETURN_NOT_OK(fabric_->Read(ctx, it2->second.addr, page.data(),
                                       kPageSize));
    const bool dirty = it2->second.dirty;
    l2_lru_.erase(it2->second.lru_it);
    DISAGG_RETURN_NOT_OK(pool_->FreeLocal(it2->second.addr, kPageSize));
    l2_.erase(it2);
    Page* out = nullptr;
    DISAGG_RETURN_NOT_OK(InsertL1(ctx, std::move(page), dirty, &out));
    return out;
  }

  // Miss: fetch from disaggregated storage.
  stats_.misses++;
  Page page(id);
  DISAGG_ASSIGN_OR_RETURN(page, storage_->FetchPage(ctx, id));
  Page* out = nullptr;
  DISAGG_RETURN_NOT_OK(InsertL1(ctx, std::move(page), false, &out));
  return out;
}

Status TwoTierCache::InsertL1(NetContext* ctx, Page page, bool dirty,
                              Page** out) {
  while (l1_.size() >= l1_capacity_ && !l1_lru_.empty()) {
    const PageId victim = l1_lru_.back();
    l1_lru_.pop_back();
    auto vit = l1_.find(victim);
    DISAGG_RETURN_NOT_OK(
        DemoteToL2(ctx, victim, vit->second.page, vit->second.dirty));
    l1_.erase(vit);
    stats_.demotions++;
  }
  const PageId id = page.page_id();
  l1_lru_.push_front(id);
  auto [it, inserted] =
      l1_.emplace(id, L1Entry{std::move(page), dirty, l1_lru_.begin()});
  it->second.lru_it = l1_lru_.begin();
  *out = &it->second.page;
  return Status::OK();
}

Status TwoTierCache::DemoteToL2(NetContext* ctx, PageId id, const Page& page,
                                bool dirty) {
  while (l2_.size() >= l2_capacity_ && !l2_lru_.empty()) {
    DISAGG_RETURN_NOT_OK(EvictFromL2(ctx));
  }
  DISAGG_ASSIGN_OR_RETURN(GlobalAddr addr, pool_->AllocLocal(kPageSize));
  DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, addr, page.data(), kPageSize));
  l2_lru_.push_front(id);
  l2_.emplace(id, L2Entry{addr, dirty, l2_lru_.begin()});
  return Status::OK();
}

Status TwoTierCache::EvictFromL2(NetContext* ctx) {
  const PageId victim = l2_lru_.back();
  l2_lru_.pop_back();
  auto it = l2_.find(victim);
  if (it->second.dirty) {
    Page page(victim);
    DISAGG_RETURN_NOT_OK(
        fabric_->Read(ctx, it->second.addr, page.data(), kPageSize));
    DISAGG_RETURN_NOT_OK(storage_->WritePage(ctx, page));
    stats_.writebacks++;
  }
  DISAGG_RETURN_NOT_OK(pool_->FreeLocal(it->second.addr, kPageSize));
  l2_.erase(it);
  stats_.l2_evictions++;
  return Status::OK();
}

Status TwoTierCache::MarkDirty(PageId id) {
  auto it = l1_.find(id);
  if (it == l1_.end()) {
    return Status::NotFound("page not resident in L1");
  }
  it->second.dirty = true;
  return Status::OK();
}

Status TwoTierCache::FlushAll(NetContext* ctx) {
  for (auto& [id, entry] : l1_) {
    if (entry.dirty) {
      DISAGG_RETURN_NOT_OK(storage_->WritePage(ctx, entry.page));
      entry.dirty = false;
      stats_.writebacks++;
    }
  }
  for (auto& [id, entry] : l2_) {
    if (entry.dirty) {
      Page page(id);
      DISAGG_RETURN_NOT_OK(
          fabric_->Read(ctx, entry.addr, page.data(), kPageSize));
      DISAGG_RETURN_NOT_OK(storage_->WritePage(ctx, page));
      entry.dirty = false;
      stats_.writebacks++;
    }
  }
  return Status::OK();
}

void TwoTierCache::DropL1() {
  l1_.clear();
  l1_lru_.clear();
}

}  // namespace disagg
