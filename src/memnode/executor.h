#ifndef DISAGG_MEMNODE_EXECUTOR_H_
#define DISAGG_MEMNODE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "memnode/memory_node.h"
#include "memnode/offload_protocol.h"
#include "rindex/remote_btree.h"
#include "txn/lock_backend.h"

namespace disagg {

class LeaseAuthority;  // net/membership.h

/// Near-data concurrency offload (SmartOffloading / Farview direction): an
/// RPC-hosted executor on the memory node's wimpy CPU that runs
///
///  - **B+tree traversal**: `exec.idx.{get,scan,put,del}` walk the SAME
///    on-pool node bytes a one-sided `RemoteBTree` client reads, but server
///    side — one `Call` verb per operation instead of O(depth) one-sided
///    reads (plus CAS/unlock round trips for writers). Writers take the
///    SAME lock words via region-local atomics, so offloaded and one-sided
///    clients interoperate on a live tree.
///  - **a lock-table service**: `exec.lock.{acquire,release}` implement
///    S/X row locks with WOUND_WAIT deadlock avoidance (lower TxnId =
///    older = wins). Wound notices ride replies; there is no blocking —
///    a waiting requester sees `kConflict` (maps to Busy) and retries,
///    a wounded txn sees `kWounded` (maps to Aborted) and must abort.
///
/// Every handler charges the weak-CPU model of `offload_protocol.h` via
/// `RpcServerContext::ChargeCompute`, which the fabric scales by the pool
/// node's `cpu_scale` — the Farview pushdown precedent generalized from
/// scan operators to index and concurrency control.
///
/// **Crash/recovery.** `Crash()` fails the node (every RPC and one-sided
/// verb gets `Unavailable`) and models the loss of the executor's DRAM
/// state: the lock table. The pool region itself (tree bytes) survives —
/// it is the disaggregated memory, not the service. `Recover()` revives
/// the node, clears the lock table and bumps the **epoch**. Lock requests
/// carry the epoch at which their txn first got a grant; a request
/// carrying a pre-crash epoch is refused with `kFenced`, so a client that
/// thinks it still holds pre-crash locks learns its grants are void
/// instead of acting on them (and dead clients' locks are simply gone —
/// no key stays wedged).
class MemNodeExecutor {
 public:
  struct Stats {
    uint64_t lookups = 0;
    uint64_t scans = 0;
    uint64_t inserts = 0;
    uint64_t deletes = 0;
    uint64_t nodes_visited = 0;  ///< B+tree nodes inspected server-side
    uint64_t splits = 0;
    uint64_t acquires = 0;        ///< lock.acquire requests served
    uint64_t grants = 0;
    uint64_t conflicts = 0;       ///< kConflict replies
    uint64_t wounds = 0;          ///< holders wounded by older requesters
    uint64_t wounded_observed = 0;  ///< kWounded replies delivered
    uint64_t fenced = 0;          ///< kFenced replies (stale epoch)
    uint64_t releases = 0;        ///< txns released (incl. piggybacked)
    uint64_t piggybacked_releases = 0;  ///< of which rode another request
    uint64_t crashes = 0;
    uint64_t recoveries = 0;
    uint64_t lease_refences = 0;  ///< grant-voiding lease-epoch catch-ups
  };

  /// Registers the `exec.*` handlers on `pool`'s node.
  MemNodeExecutor(Fabric* fabric, MemoryNode* pool);

  /// Makes a tree traversable by this executor; returns its wire id.
  uint32_t RegisterTree(const RemoteBTree::TreeRef& tree);

  NodeId node() const { return pool_->node(); }

  /// Kills the service: the node fails (fabric-level Unavailable) and the
  /// lock table is lost. Deterministic — no timers involved.
  void Crash();

  /// Revives the node, clears the lock table, bumps the epoch.
  void Recover();

  /// Deterministic mid-operation fault injection: after `n` more handler
  /// invocations the executor crashes at the start of the n-th (the request
  /// reached the node, the node died, no reply — and no partial mutation,
  /// so seeded chaos schedules stay exactly checkable). 0 disarms.
  void ScheduleCrashAfter(uint64_t n);

  /// Subordinates the executor's crash-epoch fence to the fleet lease
  /// authority (net/membership.h): whenever the pool node's lease epoch has
  /// advanced — the failure detector revoked the node, possibly for a gray
  /// failure that never crashed it — the next handler invocation voids
  /// every grant and bumps the executor epoch exactly as `Recover()` does,
  /// so clients holding pre-revocation locks get `kFenced`. `nullptr`
  /// (the default) is bit-identical to the unbound executor.
  void BindLeaseAuthority(const LeaseAuthority* authority);

  uint64_t epoch() const;
  size_t active_locks() const;  ///< lock-table entries currently held
  Stats stats() const;

 private:
  struct LockEntry {
    std::set<TxnId> sharers;
    TxnId exclusive = 0;  // 0 = none
  };
  struct TxnState {
    uint64_t epoch = 0;           // epoch of the txn's first grant
    std::vector<uint64_t> keys;   // keys it holds (dedup'd)
  };

  Status HandleIdxGet(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleIdxScan(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleIdxPut(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleIdxDelete(Slice req, std::string* resp, RpcServerContext* sctx);
  Status HandleLockAcquire(Slice req, std::string* resp,
                           RpcServerContext* sctx);
  Status HandleLockRelease(Slice req, std::string* resp,
                           RpcServerContext* sctx);

  /// Crash-point check shared by every handler; returns Unavailable when a
  /// scheduled crash fires on this invocation.
  Status CheckAlive();

  // ---- Region-local B+tree walker (no fabric verbs: handlers must not
  // re-enter the pipeline; see the fabric-bypass rule in DESIGN.md) -------
  char* TreeBase(const RemoteBTree::TreeRef& tree);
  uint64_t LoadRoot(const RemoteBTree::TreeRef& tree);
  void LoadNode(const RemoteBTree::TreeRef& tree, uint64_t offset,
                BTreeNodeImage* out, uint64_t* visited);
  void StoreNode(const RemoteBTree::TreeRef& tree, uint64_t offset,
                 BTreeNodeImage* node);
  /// Spins on the shared lock word via region-local atomics (interoperates
  /// with one-sided CAS); Busy on starvation, per the status contract.
  Status LockWordAcquire(const RemoteBTree::TreeRef& tree, uint64_t slot);
  void LockWordRelease(const RemoteBTree::TreeRef& tree, uint64_t slot);
  /// Descends to the leaf owning `key`; appends the path offsets.
  void Descend(const RemoteBTree::TreeRef& tree, uint64_t key,
               std::vector<uint64_t>* path, BTreeNodeImage* leaf,
               uint64_t* visited);
  Status InsertWithSplit(const RemoteBTree::TreeRef& tree, uint64_t key,
                         uint64_t value, uint64_t* visited);

  // ---- WOUND_WAIT lock table (all under mu_) ----------------------------
  offload::LockOutcome AcquireLocked(TxnId txn, uint64_t key, uint8_t mode);
  void ReleaseTxnLocked(TxnId txn);

  Fabric* fabric_;
  MemoryNode* pool_;

  mutable std::mutex mu_;
  std::vector<RemoteBTree::TreeRef> trees_;
  std::map<uint64_t, LockEntry> lock_table_;
  std::map<TxnId, TxnState> txns_;
  std::set<TxnId> wounded_;
  uint64_t epoch_ = 1;
  uint64_t crash_after_ = 0;  // 0 = disarmed
  const LeaseAuthority* lease_authority_ = nullptr;  // not owned
  uint64_t lease_epoch_seen_ = 0;  // last lease epoch folded into epoch_
  Stats stats_;
};

/// Compute-side `LockBackend` speaking to a `MemNodeExecutor`'s lock table.
/// Every acquire/release is one RPC through the full fabric pipeline. The
/// client tracks, per txn, the epoch of its first grant (sent with every
/// later request so post-crash fencing works) and queues releases whose RPC
/// failed, piggybacking them on the next request — a dead or faulted
/// client's locks are cleaned up by its own next contact or by executor
/// recovery, never wedging a key forever.
class OffloadedLockClient : public LockBackend {
 public:
  struct Stats {
    uint64_t acquires = 0;
    uint64_t busy = 0;      ///< kConflict replies (mapped to Busy)
    uint64_t wounded = 0;   ///< kWounded replies (mapped to Aborted)
    uint64_t fenced = 0;    ///< kFenced replies (mapped to Aborted)
    uint64_t release_rpc_failures = 0;  ///< releases queued for piggyback
  };

  OffloadedLockClient(Fabric* fabric, NodeId exec_node)
      : fabric_(fabric), node_(exec_node) {}

  Status AcquireLock(NetContext* ctx, TxnId txn, uint64_t key,
                     LockMode mode) override;
  void ReleaseAllLocks(NetContext* ctx, TxnId txn) override;

  Stats stats() const;
  size_t pending_releases() const;

 private:
  /// Drains the pending-release queue into `req` (varint count + fixed64
  /// ids); the caller must RestorePending on RPC failure.
  std::vector<TxnId> TakePending();
  void RestorePending(const std::vector<TxnId>& txns);

  Fabric* fabric_;
  NodeId node_;
  mutable std::mutex mu_;
  std::map<TxnId, uint64_t> txn_epoch_;  // first-grant epoch per live txn
  std::vector<TxnId> pending_release_;
  Stats stats_;
};

/// Offloaded index traversal, client side: one `Call` per operation. Free
/// functions so `RemoteBTree`'s offload mode and tests share one encoding
/// without owning an executor pointer (the wire contract is
/// `offload_protocol.h`; only the node id and tree id are needed).
Result<uint64_t> OffloadIndexGet(Fabric* fabric, NetContext* ctx, NodeId node,
                                 uint32_t tree, uint64_t key);
Status OffloadIndexPut(Fabric* fabric, NetContext* ctx, NodeId node,
                       uint32_t tree, uint64_t key, uint64_t value);
Status OffloadIndexDelete(Fabric* fabric, NetContext* ctx, NodeId node,
                          uint32_t tree, uint64_t key);
Result<std::vector<std::pair<uint64_t, uint64_t>>> OffloadIndexScan(
    Fabric* fabric, NetContext* ctx, NodeId node, uint32_t tree, uint64_t from,
    size_t limit);

/// Bundle a registry-built "+offload" engine owns: its private pool node,
/// the executor on it, and the lock client the engine's `TxnManager` is
/// rewired to (mirrors the `AdoptSharedLog` ownership pattern).
class ConcurrencyOffload {
 public:
  explicit ConcurrencyOffload(Fabric* fabric, size_t pool_bytes = 1 << 20)
      : pool_(fabric, "offload-pool", pool_bytes),
        exec_(fabric, &pool_),
        locks_(fabric, pool_.node()) {}

  MemoryNode* pool() { return &pool_; }
  MemNodeExecutor* executor() { return &exec_; }
  OffloadedLockClient* lock_client() { return &locks_; }

 private:
  MemoryNode pool_;
  MemNodeExecutor exec_;
  OffloadedLockClient locks_;
};

}  // namespace disagg

#endif  // DISAGG_MEMNODE_EXECUTOR_H_
