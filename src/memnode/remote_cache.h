#ifndef DISAGG_MEMNODE_REMOTE_CACHE_H_
#define DISAGG_MEMNODE_REMOTE_CACHE_H_

#include <string>
#include <unordered_map>

#include "memnode/memory_node.h"

namespace disagg {

/// Redy-style remote-memory cache (Sec. 3.2): key-value blobs placed in
/// stranded disaggregated memory, read/written with one-sided verbs — a
/// lower-latency alternative to an SSD cache. Stranded memory is ephemeral:
/// when the host reclaims it, `MigrateTo` moves the cache to a new pool, the
/// dynamic-availability mechanism Redy introduces.
class RemoteCache {
 public:
  explicit RemoteCache(Fabric* fabric, MemoryNode* pool);

  Status Put(NetContext* ctx, const std::string& key, Slice value);
  Result<std::string> Get(NetContext* ctx, const std::string& key);
  Status Erase(NetContext* ctx, const std::string& key);

  /// Copies every entry into `new_pool` and frees the old allocations —
  /// what Redy's memory manager does when the VM allocator reclaims the
  /// stranded memory backing the cache.
  Status MigrateTo(NetContext* ctx, MemoryNode* new_pool);

  size_t size() const { return index_.size(); }
  NodeId pool_node() const { return pool_->node(); }

 private:
  struct Loc {
    GlobalAddr addr;
    size_t len = 0;
  };

  Fabric* fabric_;
  MemoryNode* pool_;
  std::unordered_map<std::string, Loc> index_;  // client-side directory
};

/// CompuCache-style near-data processing (Sec. 3.2): the cache server runs
/// stored procedures so a pointer-chasing lookup costs a single round trip
/// instead of one per hop. The chain is a linked list of fixed-size records
/// in the pool region: {next_offset u64, payload[kPayload]}.
class PointerChain {
 public:
  static constexpr size_t kPayload = 56;
  static constexpr size_t kNodeSize = 8 + kPayload;

  /// Builds a chain of `values` (each at most kPayload bytes) in `pool` and
  /// registers the "cache.chase" stored procedure on the pool node.
  PointerChain(Fabric* fabric, MemoryNode* pool);

  Result<GlobalAddr> Build(NetContext* ctx,
                           const std::vector<std::string>& values);

  /// Client-side traversal: one one-sided read per hop (k round trips).
  Result<std::string> ChaseClientSide(NetContext* ctx, GlobalAddr head,
                                      size_t hops);

  /// Server-side stored procedure: single RPC, the pool CPU walks the chain.
  Result<std::string> ChaseServerSide(NetContext* ctx, GlobalAddr head,
                                      size_t hops);

 private:
  Status HandleChase(Slice req, std::string* resp, RpcServerContext* sctx);

  Fabric* fabric_;
  MemoryNode* pool_;
};

}  // namespace disagg

#endif  // DISAGG_MEMNODE_REMOTE_CACHE_H_
