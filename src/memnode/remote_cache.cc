#include "memnode/remote_cache.h"

#include <cstring>

#include "common/coding.h"

namespace disagg {

RemoteCache::RemoteCache(Fabric* fabric, MemoryNode* pool)
    : fabric_(fabric), pool_(pool) {}

Status RemoteCache::Put(NetContext* ctx, const std::string& key, Slice value) {
  // Overwrite = erase + insert (values are immutable in place).
  auto it = index_.find(key);
  if (it != index_.end()) {
    DISAGG_RETURN_NOT_OK(pool_->FreeLocal(it->second.addr, it->second.len));
    index_.erase(it);
  }
  DISAGG_ASSIGN_OR_RETURN(GlobalAddr addr, pool_->AllocLocal(value.size()));
  DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, addr, value.data(), value.size()));
  index_[key] = Loc{addr, value.size()};
  return Status::OK();
}

Result<std::string> RemoteCache::Get(NetContext* ctx, const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound(key);
  std::string out(it->second.len, '\0');
  Status st = fabric_->Read(ctx, it->second.addr, out.data(), out.size());
  if (!st.ok()) return st;
  return out;
}

Status RemoteCache::Erase(NetContext* ctx, const std::string& key) {
  (void)ctx;
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound(key);
  DISAGG_RETURN_NOT_OK(pool_->FreeLocal(it->second.addr, it->second.len));
  index_.erase(it);
  return Status::OK();
}

Status RemoteCache::MigrateTo(NetContext* ctx, MemoryNode* new_pool) {
  std::unordered_map<std::string, Loc> new_index;
  for (const auto& [key, loc] : index_) {
    std::string buf(loc.len, '\0');
    DISAGG_RETURN_NOT_OK(fabric_->Read(ctx, loc.addr, buf.data(), buf.size()));
    DISAGG_ASSIGN_OR_RETURN(GlobalAddr addr, new_pool->AllocLocal(loc.len));
    DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, addr, buf.data(), buf.size()));
    new_index[key] = Loc{addr, loc.len};
  }
  // Release the reclaimed pool's allocations (best effort: the pool is going
  // away anyway).
  for (const auto& [key, loc] : index_) {
    (void)pool_->FreeLocal(loc.addr, loc.len);
  }
  index_ = std::move(new_index);
  pool_ = new_pool;
  return Status::OK();
}

PointerChain::PointerChain(Fabric* fabric, MemoryNode* pool)
    : fabric_(fabric), pool_(pool) {
  fabric_->node(pool_->node())
      ->RegisterHandler("cache.chase",
                        [this](Slice req, std::string* resp,
                               RpcServerContext* sctx) {
                          return HandleChase(req, resp, sctx);
                        });
}

Result<GlobalAddr> PointerChain::Build(NetContext* ctx,
                                       const std::vector<std::string>& values) {
  GlobalAddr next{};  // null terminator
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    if (it->size() > kPayload) {
      return Status::InvalidArgument("payload too large for chain node");
    }
    DISAGG_ASSIGN_OR_RETURN(GlobalAddr addr, pool_->AllocLocal(kNodeSize));
    char buf[kNodeSize] = {0};
    EncodeFixed64(buf, next.is_null() ? 0 : next.offset + 1);
    std::memcpy(buf + 8, it->data(), it->size());
    DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, addr, buf, kNodeSize));
    next = addr;
  }
  return next;
}

Result<std::string> PointerChain::ChaseClientSide(NetContext* ctx,
                                                  GlobalAddr head,
                                                  size_t hops) {
  GlobalAddr cur = head;
  char buf[kNodeSize];
  for (size_t i = 0;; i++) {
    DISAGG_RETURN_NOT_OK(fabric_->Read(ctx, cur, buf, kNodeSize));
    if (i == hops) break;
    const uint64_t next_plus1 = DecodeFixed64(buf);
    if (next_plus1 == 0) return Status::NotFound("chain ended early");
    cur = GlobalAddr{head.node, head.region, next_plus1 - 1};
  }
  return std::string(buf + 8, strnlen(buf + 8, kPayload));
}

Result<std::string> PointerChain::ChaseServerSide(NetContext* ctx,
                                                  GlobalAddr head,
                                                  size_t hops) {
  std::string req;
  PutVarint64(&req, head.offset);
  PutVarint64(&req, hops);
  std::string resp;
  Status st = fabric_->Call(ctx, pool_->node(), "cache.chase", req, &resp);
  if (!st.ok()) return st;
  return resp;
}

Status PointerChain::HandleChase(Slice req, std::string* resp,
                                 RpcServerContext* sctx) {
  uint64_t offset = 0, hops = 0;
  if (!GetVarint64(&req, &offset) || !GetVarint64(&req, &hops)) {
    return Status::InvalidArgument("malformed cache.chase");
  }
  MemoryRegion* region = fabric_->node(pool_->node())->region(0);
  for (size_t i = 0;; i++) {
    if (offset + kNodeSize > region->size()) {
      return Status::InvalidArgument("chase ran off the region");
    }
    const char* node_bytes = region->data() + offset;
    // Local memory access on the pool side: cheap but not free.
    sctx->ChargeCompute(150);
    if (i == hops) {
      resp->assign(node_bytes + 8, strnlen(node_bytes + 8, kPayload));
      return Status::OK();
    }
    const uint64_t next_plus1 = DecodeFixed64(node_bytes);
    if (next_plus1 == 0) return Status::NotFound("chain ended early");
    offset = next_plus1 - 1;
  }
}

}  // namespace disagg
