#ifndef DISAGG_LOG_SHARED_LOG_H_
#define DISAGG_LOG_SHARED_LOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/fabric.h"
#include "storage/log_backend.h"
#include "storage/log_record.h"

namespace disagg {

/// Tag partitioning a shared log into independent sub-logs (Boki's log
/// streams): one tenant / engine / WAL stream per tag. Seqnums are per-tag
/// and dense — the tag's primary assigns `tail+1 .. tail+k` to each batch.
using LogTag = uint64_t;
using SeqNum = uint64_t;
constexpr SeqNum kInvalidSeqNum = 0;

/// Disaggregated shared-log service (the survey's canonical storage-side
/// building block; shape follows Boki's engine core): a small fleet of log
/// nodes jointly storing tag-partitioned streams under an epoch-numbered
/// *view*.
///
///   - View: `{epoch, members}`. The primary for a tag is
///     `members[tag % members.size()]`; its `replication - 1` successors on
///     the member ring are backups. Appends go primary-first (the primary
///     assigns seqnums), then fan out to backups; `write_quorum` total acks
///     (primary included) make the batch durable.
///   - Seal/reconfigure: on membership change the control plane seals every
///     live node (sealed nodes reject appends for the old epoch with
///     `Status::Aborted` — deliberately non-retryable so clients refresh
///     their view instead of hammering a dead epoch), recovers each tag's
///     tail as the max across live nodes, re-replicates missing suffixes to
///     the new replica set, bumps the epoch, and publishes the new view.
///     Un-acked suffixes lost with a crashed node stay lost — exactly the
///     WAL's "maybe-committed" semantics.
///   - Tag index: `slog.read` / `slog.tail` serve per-tag suffix reads and
///     tail queries; engines map `RequiredPageLsn` freshness floors onto tag
///     tail LSNs.
///
/// Node RPCs (all through `Fabric::Execute`, so tracing / faults / retry /
/// deadlines / breaker / WFQ / congestion apply):
///   slog.append     -- primary append: epoch check, LSN dedup, assign seqnums
///   slog.replicate  -- backup store at given seqnums (idempotent by seqnum)
///   slog.read       -- tag suffix with seq > from AND lsn > from (exclusive
///                      bounds, LSN order; NotFound below the trim point)
///   slog.tail       -- tag tail seqnum + tail LSN
///   slog.trim       -- drop records with seq <= watermark (retention)
///   slog.seal       -- seal the node's epoch, return per-tag tails
///   slog.install    -- install a new view on the node
/// Control-node RPC:
///   slog.view       -- current epoch + membership (client view refresh)
class SharedLogService {
 public:
  struct Config {
    int log_nodes = 3;       ///< size of the log-node universe
    int replication = 3;     ///< replicas per tag (primary + backups)
    int write_quorum = 2;    ///< acks (incl. primary) for durability
    InterconnectModel model = InterconnectModel::Ssd();
  };

  SharedLogService(Fabric* fabric, const Config& config,
                   const std::string& name_prefix = "slog");

  Fabric* fabric() const { return fabric_; }
  NodeId ctl_node() const { return ctl_node_; }
  size_t num_log_nodes() const { return nodes_.size(); }
  NodeId log_node(size_t i) const { return nodes_[i]->node; }
  const Config& config() const { return config_; }
  uint64_t epoch() const;

  /// Seals the current view and installs the next one over the fabric: new
  /// membership = all currently-live log nodes (crashed nodes drop out,
  /// revived ones rejoin), per-tag tails recovered as the max across live
  /// nodes, missing suffixes re-replicated to each tag's new replica set.
  /// The caller's context is charged for every seal / read / re-replicate
  /// RPC — `ctx->sim_ns` growth across this call IS the recovery time.
  Status SealAndReconfigure(NetContext* ctx);

  // ---- Test / chaos-audit inspection (direct, no fabric charge) --------

  /// Number of log nodes holding `tag` records up through `lsn`.
  size_t CountDurable(LogTag tag, Lsn lsn) const;
  /// Highest seqnum any node holds for `tag`.
  SeqNum DebugTailSeqnum(LogTag tag) const;

 private:
  struct TagStore {
    std::vector<std::pair<SeqNum, LogRecord>> records;  // contiguous seqs
    SeqNum tail_seq = kInvalidSeqNum;
    Lsn tail_lsn = kInvalidLsn;
    SeqNum trimmed = kInvalidSeqNum;  ///< seqs <= trimmed are gone
    Lsn trimmed_lsn = kInvalidLsn;    ///< highest LSN among trimmed records
  };

  /// One log node's state. Guarded by `mu`; handlers run on the caller's
  /// thread like every fabric RPC.
  struct NodeState {
    NodeId node = 0;
    uint64_t epoch = 0;         ///< view this node believes in
    uint64_t sealed_epoch = 0;  ///< epochs <= this reject appends
    std::vector<NodeId> members;
    std::map<LogTag, TagStore> tags;
    mutable std::mutex mu;
  };

  void RegisterHandlers(NodeState* ns);
  Status HandleAppend(NodeState* ns, Slice req, std::string* resp,
                      RpcServerContext* sctx);
  Status HandleReplicate(NodeState* ns, Slice req, std::string* resp,
                         RpcServerContext* sctx);
  Status HandleRead(NodeState* ns, Slice req, std::string* resp,
                    RpcServerContext* sctx);
  Status HandleTail(NodeState* ns, Slice req, std::string* resp,
                    RpcServerContext* sctx);
  Status HandleTrim(NodeState* ns, Slice req, std::string* resp,
                    RpcServerContext* sctx);
  Status HandleSeal(NodeState* ns, Slice req, std::string* resp,
                    RpcServerContext* sctx);
  Status HandleInstall(NodeState* ns, Slice req, std::string* resp,
                       RpcServerContext* sctx);
  Status HandleView(Slice req, std::string* resp, RpcServerContext* sctx);

  Fabric* fabric_;
  Config config_;
  NodeId ctl_node_;
  std::vector<std::unique_ptr<NodeState>> nodes_;

  mutable std::mutex view_mu_;  // control-plane view state
  uint64_t epoch_ = 1;
  std::vector<NodeId> members_;
};

/// Compute-side client: caches the view (refreshed via `slog.view` on
/// `Status::Aborted` epoch rejections), drives primary-first append with
/// parallel backup fan-out, and serves the tag-index queries. Everything
/// goes through `Fabric::Call`, so the whole interceptor pipeline applies.
class SharedLogClient {
 public:
  SharedLogClient(Fabric* fabric, NodeId ctl_node)
      : fabric_(fabric), ctl_(ctl_node) {}

  /// Appends `records` to `tag`. Durable (>= write_quorum acks) on OK;
  /// returns the tag's new tail LSN. Re-sent records (lsn <= tag tail) are
  /// deduplicated at the primary, so WAL re-flush after a failed batch is
  /// idempotent. On epoch staleness the client refreshes its view and
  /// retries (bounded).
  Result<Lsn> Append(NetContext* ctx, LogTag tag,
                     const std::vector<LogRecord>& records);

  /// Tag suffix with `seqnum > from_exclusive`, LSN order, up to
  /// `max_records`. `NotFound` if the range reaches below the trim point.
  Result<std::vector<LogRecord>> ReadFrom(NetContext* ctx, LogTag tag,
                                          SeqNum from_exclusive,
                                          uint64_t max_records = 1024);

  /// Tag suffix with `lsn > from_exclusive` (the `LogBackend` bound).
  Result<std::vector<LogRecord>> ReadFromLsn(NetContext* ctx, LogTag tag,
                                             Lsn from_exclusive);

  struct TagTail {
    SeqNum seqnum = kInvalidSeqNum;
    Lsn lsn = kInvalidLsn;
  };
  Result<TagTail> Tail(NetContext* ctx, LogTag tag);
  Result<SeqNum> TailSeqnum(NetContext* ctx, LogTag tag);

  /// Retention: drops records with `seqnum <= up_to_inclusive` on every
  /// replica of `tag`; later reads below the watermark return `NotFound`.
  Status Trim(NetContext* ctx, LogTag tag, SeqNum up_to_inclusive);

  Status RefreshView(NetContext* ctx);
  uint64_t cached_epoch() const { return view_.epoch; }

 private:
  struct View {
    uint64_t epoch = 0;
    int replication = 0;
    int write_quorum = 0;
    std::vector<NodeId> members;
  };

  Status EnsureView(NetContext* ctx);
  /// Replica set for `tag` under the cached view, primary first.
  std::vector<NodeId> ReplicasFor(LogTag tag) const;
  /// One read-style call with epoch refresh-and-retry on Aborted.
  Status CallPrimary(NetContext* ctx, LogTag tag, const std::string& method,
                     const std::string& body, std::string* resp);

  Fabric* fabric_;
  NodeId ctl_;
  View view_;
};

/// `LogBackend` adapter: one tag of a shared log as a WAL sink, so every
/// engine can swap its private log tier for the shared service without the
/// WAL/recovery layers noticing.
class SharedLogBackend : public LogBackend {
 public:
  SharedLogBackend(Fabric* fabric, const SharedLogService* service, LogTag tag)
      : client_(fabric, service->ctl_node()), tag_(tag) {}

  Result<Lsn> Append(NetContext* ctx,
                     const std::vector<LogRecord>& records) override {
    return client_.Append(ctx, tag_, records);
  }
  Result<std::vector<LogRecord>> ReadAll(NetContext* ctx) override {
    return client_.ReadFromLsn(ctx, tag_, kInvalidLsn);
  }
  Result<std::vector<LogRecord>> ReadFrom(NetContext* ctx,
                                          Lsn from_exclusive) override {
    return client_.ReadFromLsn(ctx, tag_, from_exclusive);
  }

  SharedLogClient* client() { return &client_; }
  LogTag tag() const { return tag_; }

 private:
  SharedLogClient client_;
  LogTag tag_;
};

/// Engine-level log selection: every RowEngine architecture (and the
/// multi-writer engine) targets either its legacy private log tier or one
/// tag of a SharedLogService through the same `LogBackend` interface.
/// Legacy is the default and constructs exactly the pre-refactor sink, so
/// legacy-mode runs stay bit-identical (pinned by the parity tests).
struct EngineLogConfig {
  enum class Mode { kLegacy, kShared };
  Mode mode = Mode::kLegacy;
  /// Shared-log fleet to append to in `kShared` mode (not owned; must
  /// outlive the engine unless transferred with `AdoptSharedLog`).
  SharedLogService* shared_log = nullptr;
  /// Tag carrying this engine's WAL stream.
  LogTag tag = 1;
};

}  // namespace disagg

#endif  // DISAGG_LOG_SHARED_LOG_H_
