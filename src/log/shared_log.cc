#include "log/shared_log.h"

#include <algorithm>

#include "common/coding.h"

namespace disagg {

namespace {
// Modeled CPU cost on the log-tier nodes (mirrors LogStoreService's costs so
// shared vs private log comparisons isolate the *replication topology*, not
// a different per-record price).
constexpr uint64_t kAppendNsPerRecord = 150;
constexpr uint64_t kScanNsPerRecord = 40;
constexpr uint64_t kCtlNs = 100;  // view lookup / install bookkeeping

// Replica set for `tag` under a view, primary first: `members[tag % n]` and
// its `replication - 1` ring successors. Shared by the client and the
// control plane so both always agree on placement.
std::vector<NodeId> TagReplicas(const std::vector<NodeId>& members,
                                LogTag tag, int replication) {
  std::vector<NodeId> out;
  if (members.empty()) return out;
  const size_t n = members.size();
  const size_t p = static_cast<size_t>(tag % n);
  const size_t r = std::min<size_t>(static_cast<size_t>(replication), n);
  for (size_t i = 0; i < r; i++) out.push_back(members[(p + i) % n]);
  return out;
}
}  // namespace

// ---------------------------------------------------------------------------
// SharedLogService
// ---------------------------------------------------------------------------

SharedLogService::SharedLogService(Fabric* fabric, const Config& config,
                                   const std::string& name_prefix)
    : fabric_(fabric), config_(config) {
  ctl_node_ =
      fabric_->AddNode(name_prefix + "-ctl", NodeKind::kLog, config_.model);
  fabric_->node(ctl_node_)
      ->RegisterHandler("slog.view", [this](Slice req, std::string* resp,
                                            RpcServerContext* sctx) {
        return HandleView(req, resp, sctx);
      });
  for (int i = 0; i < config_.log_nodes; i++) {
    auto ns = std::make_unique<NodeState>();
    ns->node = fabric_->AddNode(name_prefix + "-" + std::to_string(i),
                                NodeKind::kLog, config_.model,
                                static_cast<uint32_t>(i));
    fabric_->node(ns->node)->set_cpu_scale(2.0);  // wimpy log-tier CPU
    ns->epoch = 1;
    RegisterHandlers(ns.get());
    members_.push_back(ns->node);
    nodes_.push_back(std::move(ns));
  }
  for (auto& ns : nodes_) ns->members = members_;
}

void SharedLogService::RegisterHandlers(NodeState* ns) {
  Node* n = fabric_->node(ns->node);
  n->RegisterHandler("slog.append", [this, ns](Slice req, std::string* resp,
                                               RpcServerContext* sctx) {
    return HandleAppend(ns, req, resp, sctx);
  });
  n->RegisterHandler("slog.replicate", [this, ns](Slice req, std::string* resp,
                                                  RpcServerContext* sctx) {
    return HandleReplicate(ns, req, resp, sctx);
  });
  n->RegisterHandler("slog.read", [this, ns](Slice req, std::string* resp,
                                             RpcServerContext* sctx) {
    return HandleRead(ns, req, resp, sctx);
  });
  n->RegisterHandler("slog.tail", [this, ns](Slice req, std::string* resp,
                                             RpcServerContext* sctx) {
    return HandleTail(ns, req, resp, sctx);
  });
  n->RegisterHandler("slog.trim", [this, ns](Slice req, std::string* resp,
                                             RpcServerContext* sctx) {
    return HandleTrim(ns, req, resp, sctx);
  });
  n->RegisterHandler("slog.seal", [this, ns](Slice req, std::string* resp,
                                             RpcServerContext* sctx) {
    return HandleSeal(ns, req, resp, sctx);
  });
  n->RegisterHandler("slog.install", [this, ns](Slice req, std::string* resp,
                                                RpcServerContext* sctx) {
    return HandleInstall(ns, req, resp, sctx);
  });
}

uint64_t SharedLogService::epoch() const {
  std::lock_guard<std::mutex> lock(view_mu_);
  return epoch_;
}

Status SharedLogService::HandleAppend(NodeState* ns, Slice req,
                                      std::string* resp,
                                      RpcServerContext* sctx) {
  uint64_t e = 0, tag = 0;
  if (!GetVarint64(&req, &e) || !GetVarint64(&req, &tag)) {
    return Status::InvalidArgument("malformed slog.append");
  }
  auto batch = LogRecord::DecodeBatch(req);
  if (!batch.ok()) return batch.status();
  std::lock_guard<std::mutex> lock(ns->mu);
  if (e != ns->epoch || ns->epoch <= ns->sealed_epoch) {
    return Status::Aborted("stale or sealed epoch");
  }
  if (ns->members.empty() ||
      ns->members[tag % ns->members.size()] != ns->node) {
    return Status::Aborted("not primary for tag");
  }
  TagStore& ts = ns->tags[tag];
  uint64_t stored = 0;
  SeqNum base = kInvalidSeqNum;
  for (LogRecord& r : *batch) {
    if (r.lsn <= ts.tail_lsn) continue;  // idempotent re-send
    const SeqNum seq = ts.tail_seq + 1;
    if (stored == 0) base = seq;
    ts.tail_lsn = r.lsn;
    ts.records.emplace_back(seq, std::move(r));
    ts.tail_seq = seq;
    stored++;
  }
  sctx->ChargeCompute(kAppendNsPerRecord * batch->size());
  resp->clear();
  PutVarint64(resp, stored);
  PutVarint64(resp, ts.tail_seq);
  PutVarint64(resp, ts.tail_lsn);
  PutVarint64(resp, base);
  return Status::OK();
}

Status SharedLogService::HandleReplicate(NodeState* ns, Slice req,
                                         std::string* resp,
                                         RpcServerContext* sctx) {
  uint64_t e = 0, tag = 0, base = 0, trimmed = 0, trimmed_lsn = 0;
  if (!GetVarint64(&req, &e) || !GetVarint64(&req, &tag) ||
      !GetVarint64(&req, &base) || !GetVarint64(&req, &trimmed) ||
      !GetVarint64(&req, &trimmed_lsn)) {
    return Status::InvalidArgument("malformed slog.replicate");
  }
  auto batch = LogRecord::DecodeBatch(req);
  if (!batch.ok()) return batch.status();
  std::lock_guard<std::mutex> lock(ns->mu);
  if (e != ns->epoch || ns->epoch <= ns->sealed_epoch) {
    return Status::Aborted("stale or sealed epoch");
  }
  TagStore& ts = ns->tags[tag];
  if (trimmed > ts.trimmed) {
    ts.trimmed = trimmed;
    ts.trimmed_lsn = std::max(ts.trimmed_lsn, static_cast<Lsn>(trimmed_lsn));
    if (ts.tail_seq < ts.trimmed) ts.tail_seq = ts.trimmed;
    while (!ts.records.empty() && ts.records.front().first <= ts.trimmed) {
      ts.records.erase(ts.records.begin());
    }
  }
  uint64_t i = 0;
  for (LogRecord& r : *batch) {
    const SeqNum seq = base + i++;
    if (seq <= ts.tail_seq) continue;    // idempotent re-send
    if (seq != ts.tail_seq + 1) break;   // gap: caller must resync first
    ts.tail_lsn = r.lsn;
    ts.records.emplace_back(seq, std::move(r));
    ts.tail_seq = seq;
  }
  sctx->ChargeCompute(kAppendNsPerRecord * batch->size());
  resp->clear();
  PutVarint64(resp, ts.tail_seq);
  return Status::OK();
}

Status SharedLogService::HandleRead(NodeState* ns, Slice req,
                                    std::string* resp, RpcServerContext* sctx) {
  uint64_t e = 0, tag = 0, from_seq = 0, from_lsn = 0, max_records = 0;
  if (!GetVarint64(&req, &e) || !GetVarint64(&req, &tag) ||
      !GetVarint64(&req, &from_seq) || !GetVarint64(&req, &from_lsn) ||
      !GetVarint64(&req, &max_records)) {
    return Status::InvalidArgument("malformed slog.read");
  }
  std::lock_guard<std::mutex> lock(ns->mu);
  if (e != ns->epoch) return Status::Aborted("stale epoch");
  auto it = ns->tags.find(tag);
  if (it == ns->tags.end()) {
    sctx->ChargeCompute(kScanNsPerRecord);
    resp->clear();
    PutVarint64(resp, kInvalidSeqNum);
    *resp += LogRecord::EncodeBatch({});
    return Status::OK();
  }
  const TagStore& ts = it->second;
  sctx->ChargeCompute(kScanNsPerRecord * std::max<size_t>(1, ts.records.size()));
  // Retention: a range reaching below the trim watermark cannot be served
  // completely — fail loudly instead of silently returning a gapped suffix.
  if (from_seq < ts.trimmed && from_lsn == 0) {
    return Status::NotFound("slog.read below trim point");
  }
  if (from_lsn > 0 && from_lsn < ts.trimmed_lsn) {
    return Status::NotFound("slog.read below trim point");
  }
  std::vector<LogRecord> out;
  SeqNum out_base = kInvalidSeqNum;
  for (const auto& [seq, rec] : ts.records) {
    if (seq <= from_seq || rec.lsn <= from_lsn) continue;
    if (out.empty()) out_base = seq;
    out.push_back(rec);
    if (out.size() >= max_records) break;
  }
  resp->clear();
  PutVarint64(resp, out_base);
  *resp += LogRecord::EncodeBatch(out);
  return Status::OK();
}

Status SharedLogService::HandleTail(NodeState* ns, Slice req,
                                    std::string* resp, RpcServerContext* sctx) {
  uint64_t e = 0, tag = 0;
  if (!GetVarint64(&req, &e) || !GetVarint64(&req, &tag)) {
    return Status::InvalidArgument("malformed slog.tail");
  }
  std::lock_guard<std::mutex> lock(ns->mu);
  if (e != ns->epoch) return Status::Aborted("stale epoch");
  sctx->ChargeCompute(kScanNsPerRecord);  // one index probe
  auto it = ns->tags.find(tag);
  resp->clear();
  PutVarint64(resp, it == ns->tags.end() ? kInvalidSeqNum : it->second.tail_seq);
  PutVarint64(resp, it == ns->tags.end() ? kInvalidLsn : it->second.tail_lsn);
  return Status::OK();
}

Status SharedLogService::HandleTrim(NodeState* ns, Slice req,
                                    std::string* resp, RpcServerContext* sctx) {
  uint64_t tag = 0, up_to = 0;
  if (!GetVarint64(&req, &tag) || !GetVarint64(&req, &up_to)) {
    return Status::InvalidArgument("malformed slog.trim");
  }
  std::lock_guard<std::mutex> lock(ns->mu);
  TagStore& ts = ns->tags[tag];
  sctx->ChargeCompute(kScanNsPerRecord * std::max<size_t>(1, ts.records.size()));
  if (up_to > ts.trimmed) {
    ts.trimmed = up_to;
    if (ts.tail_seq < ts.trimmed) ts.tail_seq = ts.trimmed;
    while (!ts.records.empty() && ts.records.front().first <= ts.trimmed) {
      ts.trimmed_lsn = std::max(ts.trimmed_lsn, ts.records.front().second.lsn);
      ts.records.erase(ts.records.begin());
    }
  }
  resp->clear();
  return Status::OK();
}

Status SharedLogService::HandleSeal(NodeState* ns, Slice req,
                                    std::string* resp, RpcServerContext* sctx) {
  (void)req;  // seals whatever epoch the node is in (idempotent)
  std::lock_guard<std::mutex> lock(ns->mu);
  ns->sealed_epoch = std::max(ns->sealed_epoch, ns->epoch);
  sctx->ChargeCompute(kCtlNs + kScanNsPerRecord * ns->tags.size());
  resp->clear();
  PutVarint64(resp, ns->epoch);
  PutVarint64(resp, ns->tags.size());
  for (const auto& [tag, ts] : ns->tags) {
    PutVarint64(resp, tag);
    PutVarint64(resp, ts.tail_seq);
    PutVarint64(resp, ts.tail_lsn);
    PutVarint64(resp, ts.trimmed);
    PutVarint64(resp, ts.trimmed_lsn);
  }
  return Status::OK();
}

Status SharedLogService::HandleInstall(NodeState* ns, Slice req,
                                       std::string* resp,
                                       RpcServerContext* sctx) {
  uint64_t e = 0, n = 0;
  if (!GetVarint64(&req, &e) || !GetVarint64(&req, &n)) {
    return Status::InvalidArgument("malformed slog.install");
  }
  std::vector<NodeId> members;
  for (uint64_t i = 0; i < n; i++) {
    uint64_t m = 0;
    if (!GetVarint64(&req, &m)) {
      return Status::InvalidArgument("malformed slog.install");
    }
    members.push_back(static_cast<NodeId>(m));
  }
  std::lock_guard<std::mutex> lock(ns->mu);
  ns->epoch = e;  // > sealed_epoch, so the node is open for the new view
  ns->members = std::move(members);
  sctx->ChargeCompute(kCtlNs);
  resp->clear();
  return Status::OK();
}

Status SharedLogService::HandleView(Slice req, std::string* resp,
                                    RpcServerContext* sctx) {
  (void)req;
  std::lock_guard<std::mutex> lock(view_mu_);
  sctx->ChargeCompute(kCtlNs);
  resp->clear();
  PutVarint64(resp, epoch_);
  PutVarint64(resp, static_cast<uint64_t>(config_.replication));
  PutVarint64(resp, static_cast<uint64_t>(config_.write_quorum));
  PutVarint64(resp, members_.size());
  for (NodeId m : members_) PutVarint64(resp, m);
  return Status::OK();
}

Status SharedLogService::SealAndReconfigure(NetContext* ctx) {
  // 1. The new membership: every currently-live log node (crashed nodes
  //    drop out, revived ones rejoin and get re-filled below).
  std::vector<NodeState*> live;
  for (auto& ns : nodes_) {
    if (!fabric_->node(ns->node)->failed()) live.push_back(ns.get());
  }
  if (live.empty()) return Status::Unavailable("no live log nodes");

  // 2. Seal every live node and collect its per-tag tails. The response
  //    carries the node's current epoch so a re-run after a partial,
  //    failed reconfigure still picks a strictly newer epoch.
  struct TailInfo {
    SeqNum tail = kInvalidSeqNum;
    Lsn tail_lsn = kInvalidLsn;
    SeqNum trimmed = kInvalidSeqNum;
    Lsn trimmed_lsn = kInvalidLsn;
  };
  std::map<LogTag, std::map<NodeId, TailInfo>> tails;
  uint64_t max_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    max_epoch = epoch_;
  }
  for (NodeState* ns : live) {
    std::string resp;
    Status st = fabric_->Call(ctx, ns->node, "slog.seal", "", &resp);
    if (!st.ok()) return st;
    Slice in(resp);
    uint64_t node_epoch = 0, ntags = 0;
    if (!GetVarint64(&in, &node_epoch) || !GetVarint64(&in, &ntags)) {
      return Status::Corruption("slog.seal response");
    }
    max_epoch = std::max(max_epoch, node_epoch);
    for (uint64_t i = 0; i < ntags; i++) {
      uint64_t tag = 0;
      TailInfo info;
      if (!GetVarint64(&in, &tag) || !GetVarint64(&in, &info.tail) ||
          !GetVarint64(&in, &info.tail_lsn) || !GetVarint64(&in, &info.trimmed) ||
          !GetVarint64(&in, &info.trimmed_lsn)) {
        return Status::Corruption("slog.seal response");
      }
      tails[tag][ns->node] = info;
    }
  }
  const uint64_t new_epoch = max_epoch + 1;
  std::vector<NodeId> new_members;
  for (NodeState* ns : live) new_members.push_back(ns->node);

  // 3. Install the new view on every live node (opens them for new_epoch).
  std::string inst;
  PutVarint64(&inst, new_epoch);
  PutVarint64(&inst, new_members.size());
  for (NodeId m : new_members) PutVarint64(&inst, m);
  for (NodeState* ns : live) {
    std::string resp;
    Status st = fabric_->Call(ctx, ns->node, "slog.install", inst, &resp);
    if (!st.ok()) return st;
  }

  // 4. Recover each tag: its tail is the max across live nodes (suffixes
  //    acked by fewer than write_quorum nodes may survive — that is the
  //    WAL's maybe-committed region and is safe to keep), and every replica
  //    in the tag's new placement is brought up to that tail.
  for (const auto& [tag, per_node] : tails) {
    NodeId src = 0;
    TailInfo best;
    bool first = true;
    for (const auto& [node, info] : per_node) {
      if (first || info.tail > best.tail) {
        src = node;
        best = info;
        first = false;
      }
    }
    const std::vector<NodeId> replicas =
        TagReplicas(new_members, tag, config_.replication);
    for (NodeId dest : replicas) {
      TailInfo dinfo;
      auto it = per_node.find(dest);
      if (it != per_node.end()) dinfo = it->second;
      if (dest == src || dinfo.tail >= best.tail) continue;
      const SeqNum from = std::max(dinfo.tail, best.trimmed);
      std::string read_req;
      PutVarint64(&read_req, new_epoch);
      PutVarint64(&read_req, tag);
      PutVarint64(&read_req, from);
      PutVarint64(&read_req, 0);     // no LSN bound
      PutVarint64(&read_req, ~0ull);  // full suffix
      std::string read_resp;
      Status st = fabric_->Call(ctx, src, "slog.read", read_req, &read_resp);
      if (!st.ok()) return st;
      Slice in(read_resp);
      uint64_t base = 0;
      if (!GetVarint64(&in, &base)) return Status::Corruption("slog.read");
      auto recs = LogRecord::DecodeBatch(in);
      if (!recs.ok()) return recs.status();
      if (recs->empty() && best.trimmed <= dinfo.trimmed) continue;
      std::string rep_req;
      PutVarint64(&rep_req, new_epoch);
      PutVarint64(&rep_req, tag);
      PutVarint64(&rep_req, base);
      PutVarint64(&rep_req, best.trimmed);
      PutVarint64(&rep_req, best.trimmed_lsn);
      rep_req += LogRecord::EncodeBatch(*recs);
      std::string rep_resp;
      st = fabric_->Call(ctx, dest, "slog.replicate", rep_req, &rep_resp);
      if (!st.ok()) return st;
    }
  }

  // 5. Publish the new view; clients pick it up via slog.view on their
  //    next Aborted epoch check.
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    epoch_ = new_epoch;
    members_ = new_members;
  }
  return Status::OK();
}

size_t SharedLogService::CountDurable(LogTag tag, Lsn lsn) const {
  size_t count = 0;
  for (const auto& ns : nodes_) {
    if (fabric_->node(ns->node)->failed()) continue;
    std::lock_guard<std::mutex> lock(ns->mu);
    auto it = ns->tags.find(tag);
    if (it != ns->tags.end() && it->second.tail_lsn >= lsn) count++;
  }
  return count;
}

SeqNum SharedLogService::DebugTailSeqnum(LogTag tag) const {
  SeqNum tail = kInvalidSeqNum;
  for (const auto& ns : nodes_) {
    std::lock_guard<std::mutex> lock(ns->mu);
    auto it = ns->tags.find(tag);
    if (it != ns->tags.end()) tail = std::max(tail, it->second.tail_seq);
  }
  return tail;
}

// ---------------------------------------------------------------------------
// SharedLogClient
// ---------------------------------------------------------------------------

Status SharedLogClient::EnsureView(NetContext* ctx) {
  if (!view_.members.empty()) return Status::OK();
  return RefreshView(ctx);
}

Status SharedLogClient::RefreshView(NetContext* ctx) {
  std::string resp;
  Status st = fabric_->Call(ctx, ctl_, "slog.view", "", &resp);
  if (!st.ok()) return st;
  Slice in(resp);
  uint64_t epoch = 0, repl = 0, w = 0, n = 0;
  if (!GetVarint64(&in, &epoch) || !GetVarint64(&in, &repl) ||
      !GetVarint64(&in, &w) || !GetVarint64(&in, &n)) {
    return Status::Corruption("slog.view response");
  }
  View v;
  v.epoch = epoch;
  v.replication = static_cast<int>(repl);
  v.write_quorum = static_cast<int>(w);
  for (uint64_t i = 0; i < n; i++) {
    uint64_t m = 0;
    if (!GetVarint64(&in, &m)) return Status::Corruption("slog.view response");
    v.members.push_back(static_cast<NodeId>(m));
  }
  view_ = std::move(v);
  return Status::OK();
}

std::vector<NodeId> SharedLogClient::ReplicasFor(LogTag tag) const {
  return TagReplicas(view_.members, tag, view_.replication);
}

Status SharedLogClient::CallPrimary(NetContext* ctx, LogTag tag,
                                    const std::string& method,
                                    const std::string& body,
                                    std::string* resp) {
  Status last = Status::Unavailable("shared log: no view");
  for (int attempt = 0; attempt < 3; attempt++) {
    Status st = EnsureView(ctx);
    if (!st.ok()) return st;
    const std::vector<NodeId> replicas = ReplicasFor(tag);
    if (replicas.empty()) return Status::Unavailable("shared log: empty view");
    std::string req;
    PutVarint64(&req, view_.epoch);
    PutVarint64(&req, tag);
    req += body;
    st = fabric_->Call(ctx, replicas[0], method, req, resp);
    if (st.ok()) return st;
    // Epoch staleness and primary crashes are view problems: refresh and
    // retry. Everything else (NotFound below trim, TimedOut, ...) is the
    // caller's answer.
    if (!st.IsAborted() && !st.IsUnavailable()) return st;
    last = st;
    Status r = RefreshView(ctx);
    if (!r.ok()) return r;
  }
  return last;
}

Result<Lsn> SharedLogClient::Append(NetContext* ctx, LogTag tag,
                                    const std::vector<LogRecord>& records) {
  const std::string batch = LogRecord::EncodeBatch(records);
  Status last = Status::Unavailable("shared log: no view");
  for (int attempt = 0; attempt < 3; attempt++) {
    Status st = EnsureView(ctx);
    if (!st.ok()) return st;
    const std::vector<NodeId> replicas = ReplicasFor(tag);
    if (replicas.empty()) return Status::Unavailable("shared log: empty view");
    std::string req;
    PutVarint64(&req, view_.epoch);
    PutVarint64(&req, tag);
    req += batch;
    std::string resp;
    st = fabric_->Call(ctx, replicas[0], "slog.append", req, &resp);
    if (!st.ok()) {
      // Stale epoch (Aborted) or crashed primary (Unavailable): the view
      // may have moved — refresh and retry; a reconfigure will have
      // installed a new primary for the tag.
      if (!st.IsAborted() && !st.IsUnavailable()) return st;
      last = st;
      Status r = RefreshView(ctx);
      if (!r.ok()) return r;
      continue;
    }
    Slice in(resp);
    uint64_t stored = 0, tail_seq = 0, tail_lsn = 0, base = 0;
    if (!GetVarint64(&in, &stored) || !GetVarint64(&in, &tail_seq) ||
        !GetVarint64(&in, &tail_lsn) || !GetVarint64(&in, &base)) {
      return Status::Corruption("slog.append response");
    }
    // The primary deduplicated a (possibly complete) prefix; backups get
    // exactly the stored suffix at the assigned seqnums. A fully-deduped
    // re-send (stored == 0) may sit on the primary alone — left there by an
    // earlier attempt that died below the write quorum — so the fan-out
    // runs regardless: an empty suffix acts as a tail probe, and the
    // gap-resync path pulls whatever a lagging backup is missing from the
    // primary. Returning early on duplicates would declare one copy
    // durable.
    std::vector<LogRecord> suffix(records.end() - stored, records.end());
    std::string rep_req;
    PutVarint64(&rep_req, view_.epoch);
    PutVarint64(&rep_req, tag);
    PutVarint64(&rep_req, base);
    PutVarint64(&rep_req, 0);  // no trim watermark on the append path
    PutVarint64(&rep_req, 0);
    rep_req += LogRecord::EncodeBatch(suffix);

    const uint64_t epoch = view_.epoch;
    const NodeId primary = replicas[0];
    auto replicate_to = [&](NetContext* bctx, NodeId backup) -> bool {
      std::string rep_resp;
      if (!fabric_->Call(bctx, backup, "slog.replicate", rep_req, &rep_resp)
               .ok()) {
        return false;
      }
      Slice rin(rep_resp);
      uint64_t btail = 0;
      if (!GetVarint64(&rin, &btail)) return false;
      if (btail >= tail_seq) return true;
      // The backup is behind (it missed earlier batches): fetch the gap
      // from the primary and re-send the full missing suffix.
      std::string read_req;
      PutVarint64(&read_req, epoch);
      PutVarint64(&read_req, tag);
      PutVarint64(&read_req, btail);
      PutVarint64(&read_req, 0);
      PutVarint64(&read_req, ~0ull);
      std::string read_resp;
      if (!fabric_->Call(bctx, primary, "slog.read", read_req, &read_resp)
               .ok()) {
        return false;
      }
      Slice in2(read_resp);
      uint64_t base2 = 0;
      if (!GetVarint64(&in2, &base2)) return false;
      auto gap = LogRecord::DecodeBatch(in2);
      if (!gap.ok()) return false;
      std::string rep2;
      PutVarint64(&rep2, epoch);
      PutVarint64(&rep2, tag);
      PutVarint64(&rep2, base2);
      PutVarint64(&rep2, 0);
      PutVarint64(&rep2, 0);
      rep2 += LogRecord::EncodeBatch(*gap);
      if (!fabric_->Call(bctx, backup, "slog.replicate", rep2, &rep_resp)
               .ok()) {
        return false;
      }
      Slice rin2(rep_resp);
      return GetVarint64(&rin2, &btail) && btail >= tail_seq;
    };

    int acks = 1;  // the primary's copy
    const size_t nbackups = replicas.size() - 1;
    if (nbackups > 0) {
      std::vector<NetContext> branch(nbackups, ctx->Fork());
      for (size_t i = 0; i < nbackups; i++) {
        if (replicate_to(&branch[i], replicas[i + 1])) acks++;
      }
      JoinParallel(ctx, branch.data(), nbackups);
    }
    if (acks >= view_.write_quorum) return static_cast<Lsn>(tail_lsn);
    last = Status::Unavailable("shared log: append below write quorum");
    Status r = RefreshView(ctx);
    if (!r.ok()) return r;
  }
  return last;
}

Result<std::vector<LogRecord>> SharedLogClient::ReadFrom(NetContext* ctx,
                                                         LogTag tag,
                                                         SeqNum from_exclusive,
                                                         uint64_t max_records) {
  std::string body;
  PutVarint64(&body, from_exclusive);
  PutVarint64(&body, 0);  // no LSN bound
  PutVarint64(&body, max_records);
  std::string resp;
  Status st = CallPrimary(ctx, tag, "slog.read", body, &resp);
  if (!st.ok()) return st;
  Slice in(resp);
  uint64_t base = 0;
  if (!GetVarint64(&in, &base)) return Status::Corruption("slog.read response");
  return LogRecord::DecodeBatch(in);
}

Result<std::vector<LogRecord>> SharedLogClient::ReadFromLsn(NetContext* ctx,
                                                            LogTag tag,
                                                            Lsn from_exclusive) {
  std::string body;
  PutVarint64(&body, 0);  // no seqnum bound
  PutVarint64(&body, from_exclusive);
  PutVarint64(&body, ~0ull);
  std::string resp;
  Status st = CallPrimary(ctx, tag, "slog.read", body, &resp);
  if (!st.ok()) return st;
  Slice in(resp);
  uint64_t base = 0;
  if (!GetVarint64(&in, &base)) return Status::Corruption("slog.read response");
  return LogRecord::DecodeBatch(in);
}

Result<SharedLogClient::TagTail> SharedLogClient::Tail(NetContext* ctx,
                                                       LogTag tag) {
  std::string resp;
  Status st = CallPrimary(ctx, tag, "slog.tail", "", &resp);
  if (!st.ok()) return st;
  Slice in(resp);
  TagTail t;
  if (!GetVarint64(&in, &t.seqnum) || !GetVarint64(&in, &t.lsn)) {
    return Status::Corruption("slog.tail response");
  }
  return t;
}

Result<SeqNum> SharedLogClient::TailSeqnum(NetContext* ctx, LogTag tag) {
  DISAGG_ASSIGN_OR_RETURN(TagTail t, Tail(ctx, tag));
  return t.seqnum;
}

Status SharedLogClient::Trim(NetContext* ctx, LogTag tag,
                             SeqNum up_to_inclusive) {
  Status st = EnsureView(ctx);
  if (!st.ok()) return st;
  std::string req;
  PutVarint64(&req, tag);
  PutVarint64(&req, up_to_inclusive);
  const std::vector<NodeId> replicas = ReplicasFor(tag);
  if (replicas.empty()) return Status::Unavailable("shared log: empty view");
  size_t oks = 0;
  Status last = Status::OK();
  for (NodeId r : replicas) {
    std::string resp;
    Status ts = fabric_->Call(ctx, r, "slog.trim", req, &resp);
    if (ts.ok()) {
      oks++;
    } else {
      last = ts;  // best effort: a crashed replica catches up at reconfigure
    }
  }
  return oks > 0 ? Status::OK() : last;
}

}  // namespace disagg
