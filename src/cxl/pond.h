#ifndef DISAGG_CXL_POND_H_
#define DISAGG_CXL_POND_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace disagg {

/// Pond-style CXL memory pooling for a cloud cluster (Sec. 3.3). Two insights
/// from the paper are modeled:
///  1. pooling across a SMALL number of sockets (a pod) already recovers most
///     stranded memory, so pods are the pooling granularity;
///  2. a lightweight ML model predicts how much of a VM's memory can live in
///     the (slower) pool without violating its performance target, using
///     workload features (latency sensitivity, fraction of memory untouched).
class PondPool {
 public:
  struct HostConfig {
    size_t dram_bytes = 0;  // per host
  };

  struct VmRequest {
    std::string name;
    size_t memory_bytes = 0;
    /// Feature: fraction of accesses that are latency-critical (0..1).
    double latency_sensitivity = 0.5;
    /// Feature: fraction of allocated memory the VM never touches (0..1).
    double untouched_fraction = 0.0;
    /// SLO: maximum tolerated slowdown (e.g. 0.05 = 5%).
    double max_slowdown = 0.05;
  };

  struct Placement {
    size_t local_bytes = 0;
    size_t pool_bytes = 0;
    int host = -1;
    double predicted_slowdown = 0.0;
  };

  /// `hosts_per_pod` sockets contribute `pool_fraction` of their DRAM to a
  /// shared CXL pool.
  PondPool(int hosts_per_pod, size_t dram_per_host, double pool_fraction);

  /// Predicted slowdown of a VM if `pool_share` of its touched memory lives
  /// in the CXL pool. Linear in the features — the same shape Pond's model
  /// family (tuned on counters) produces.
  static double PredictSlowdown(const VmRequest& vm, double pool_share);

  /// Places a VM: chooses the largest pool share whose predicted slowdown
  /// meets the VM's SLO, then finds a host with enough local memory.
  Result<Placement> Allocate(const VmRequest& vm);
  Status Release(const std::string& vm_name);

  /// Fraction of total cluster DRAM currently unusable by any VM (stranded).
  double StrandedFraction() const;
  size_t pool_free() const { return pool_free_; }
  size_t local_free(int host) const { return hosts_[host]; }

 private:
  std::vector<size_t> hosts_;  // free local bytes per host
  size_t pool_free_ = 0;
  size_t total_bytes_ = 0;
  std::map<std::string, std::pair<Placement, size_t>> vms_;
};

}  // namespace disagg

#endif  // DISAGG_CXL_POND_H_
