#include "cxl/tiering.h"

#include <algorithm>

namespace disagg {

CxlTieringManager::CxlTieringManager(size_t dram_capacity, size_t cxl_capacity,
                                     CxlPlacementPolicy policy)
    : dram_capacity_(dram_capacity),
      cxl_capacity_(cxl_capacity),
      policy_(policy) {}

Status CxlTieringManager::AddSegment(uint64_t id, const std::string& name,
                                     size_t bytes, double heat) {
  size_t used = 0;
  for (const auto& [sid, s] : segments_) used += s.bytes;
  if (used + bytes > dram_capacity_ + cxl_capacity_) {
    return Status::Unavailable("both memory tiers full");
  }
  if (segments_.count(id)) return Status::InvalidArgument("duplicate segment");
  segments_[id] = SegmentInfo{name, bytes, heat, true};
  Rebalance();
  return Status::OK();
}

void CxlTieringManager::Rebalance() {
  std::vector<std::pair<uint64_t, SegmentInfo*>> order;
  for (auto& [id, s] : segments_) order.emplace_back(id, &s);

  if (policy_ == CxlPlacementPolicy::kTiered) {
    // Hottest segments claim DRAM first — the explicit-management mode.
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
      return a.second->heat > b.second->heat;
    });
  } else {
    // Unified space: the OS spreads pages with no knowledge of heat; model
    // as id-order placement (arbitrary with respect to heat).
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
      return a.first < b.first;
    });
  }

  size_t dram_used = 0;
  for (auto& [id, seg] : order) {
    const bool fits = dram_used + seg->bytes <= dram_capacity_;
    const bool was_dram = seg->in_dram;
    seg->in_dram = fits;
    if (fits) dram_used += seg->bytes;
    if (was_dram != seg->in_dram) stats_.migrations++;
  }
}

Status CxlTieringManager::Access(NetContext* ctx, uint64_t id, size_t bytes) {
  auto it = segments_.find(id);
  if (it == segments_.end()) return Status::NotFound("no such segment");
  if (it->second.in_dram) {
    stats_.dram_accesses++;
    ctx->Charge(dram_.ReadCost(bytes));
  } else {
    stats_.cxl_accesses++;
    ctx->Charge(cxl_.ReadCost(bytes));
  }
  return Status::OK();
}

Result<CxlTieringManager::SegmentInfo> CxlTieringManager::segment(
    uint64_t id) const {
  auto it = segments_.find(id);
  if (it == segments_.end()) return Status::NotFound("no such segment");
  return it->second;
}

size_t CxlTieringManager::dram_used() const {
  size_t used = 0;
  for (const auto& [id, s] : segments_) {
    if (s.in_dram) used += s.bytes;
  }
  return used;
}

}  // namespace disagg
