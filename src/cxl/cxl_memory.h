#ifndef DISAGG_CXL_CXL_MEMORY_H_
#define DISAGG_CXL_CXL_MEMORY_H_

#include <string>

#include "memnode/memory_node.h"

namespace disagg {

/// A CXL Type-3 memory expander (Sec. 3.3): load/store-accessible memory
/// behind the CXL.mem protocol. Reuses the MemoryNode pool machinery with the
/// CXL cost model — byte-addressable, cache-coherent by construction (single
/// process), latency between local DRAM and RDMA (DirectCXL measures RDMA at
/// ~6.2x CXL latency).
class CxlMemory {
 public:
  CxlMemory(Fabric* fabric, const std::string& name, size_t capacity_bytes)
      : pool_(fabric, name, capacity_bytes, InterconnectModel::Cxl()),
        fabric_(fabric) {
    // CXL devices have no server CPU at all; nothing to dispatch RPCs.
    fabric_->node(pool_.node())->set_cpu_scale(1.0);
  }

  NodeId node() const { return pool_.node(); }
  MemoryNode* pool() { return &pool_; }

  Result<GlobalAddr> Alloc(size_t bytes) { return pool_.AllocLocal(bytes); }

  /// Load/store accessors, charged at CXL.mem cost.
  Status Load(NetContext* ctx, GlobalAddr addr, void* dst, size_t n) {
    return fabric_->Read(ctx, addr, dst, n);
  }
  Status Store(NetContext* ctx, GlobalAddr addr, const void* src, size_t n) {
    return fabric_->Write(ctx, addr, src, n);
  }

 private:
  MemoryNode pool_;
  Fabric* fabric_;
};

}  // namespace disagg

#endif  // DISAGG_CXL_CXL_MEMORY_H_
