#include "cxl/pond.h"

#include <algorithm>

namespace disagg {

PondPool::PondPool(int hosts_per_pod, size_t dram_per_host,
                   double pool_fraction) {
  const size_t pooled =
      static_cast<size_t>(static_cast<double>(dram_per_host) * pool_fraction);
  for (int i = 0; i < hosts_per_pod; i++) {
    hosts_.push_back(dram_per_host - pooled);
    pool_free_ += pooled;
    total_bytes_ += dram_per_host;
  }
}

double PondPool::PredictSlowdown(const VmRequest& vm, double pool_share) {
  // Only touched memory suffers the CXL penalty; latency-sensitive accesses
  // amplify it. Coefficients give ~25% worst case (all memory remote, fully
  // sensitive) matching the DirectCXL/Ahn-style measured ranges.
  const double touched = 1.0 - vm.untouched_fraction;
  return 0.25 * pool_share * touched *
         (0.3 + 0.7 * vm.latency_sensitivity);
}

Result<PondPool::Placement> PondPool::Allocate(const VmRequest& vm) {
  if (vms_.count(vm.name)) return Status::InvalidArgument("vm exists");
  // Binary-search the largest SLO-compliant pool share; untouched memory is
  // free to pool, so the share starts there.
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 32; i++) {
    const double mid = (lo + hi) / 2;
    if (PredictSlowdown(vm, mid) <= vm.max_slowdown) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double share = lo;

  Placement p;
  p.pool_bytes = std::min(
      static_cast<size_t>(static_cast<double>(vm.memory_bytes) * share),
      pool_free_);
  p.local_bytes = vm.memory_bytes - p.pool_bytes;
  p.predicted_slowdown = PredictSlowdown(
      vm, static_cast<double>(p.pool_bytes) /
              std::max<size_t>(vm.memory_bytes, 1));

  // First-fit host for the local part.
  for (size_t h = 0; h < hosts_.size(); h++) {
    if (hosts_[h] >= p.local_bytes) {
      p.host = static_cast<int>(h);
      break;
    }
  }
  if (p.host < 0) return Status::Unavailable("no host fits the local share");
  hosts_[p.host] -= p.local_bytes;
  pool_free_ -= p.pool_bytes;
  vms_[vm.name] = {p, vm.memory_bytes};
  return p;
}

Status PondPool::Release(const std::string& vm_name) {
  auto it = vms_.find(vm_name);
  if (it == vms_.end()) return Status::NotFound(vm_name);
  hosts_[it->second.first.host] += it->second.first.local_bytes;
  pool_free_ += it->second.first.pool_bytes;
  vms_.erase(it);
  return Status::OK();
}

double PondPool::StrandedFraction() const {
  // Stranded = free local memory on hosts that cannot accept new VMs because
  // their free share is a small unusable remainder. With pooling, the pooled
  // part is fungible across the pod, so only local leftovers strand.
  size_t stranded = 0;
  for (size_t free_bytes : hosts_) stranded += free_bytes;
  // Pool memory is never stranded — any host can map it.
  return static_cast<double>(stranded) / static_cast<double>(total_bytes_);
}

}  // namespace disagg
