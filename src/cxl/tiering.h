#ifndef DISAGG_CXL_TIERING_H_
#define DISAGG_CXL_TIERING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/interconnect.h"
#include "net/net_context.h"

namespace disagg {

/// Ahn et al.'s two ways of using CXL memory in an in-memory DBMS (Sec. 3.3):
///  - kUnified: CXL is fused with local DRAM into one space; the application
///    is unmodified, so data lands on either tier obliviously (modeled as
///    proportional placement by capacity).
///  - kTiered: the DBMS explicitly places hot/operational data (HANA: delta
///    storage) in DRAM and cold bulk data (HANA: main storage) in CXL.
enum class CxlPlacementPolicy { kUnified, kTiered };

/// Capacity-aware placement of memory segments across DRAM and CXL, with
/// per-access cost accounting. Segments model coarse DBMS allocations
/// (column chunks, delta stores, hash tables) with a heat score.
class CxlTieringManager {
 public:
  struct SegmentInfo {
    std::string name;
    size_t bytes = 0;
    double heat = 0.0;    // accesses per second, supplied by the DBMS
    bool in_dram = true;  // decided by Rebalance()
  };

  struct Stats {
    uint64_t dram_accesses = 0;
    uint64_t cxl_accesses = 0;
    uint64_t migrations = 0;
  };

  CxlTieringManager(size_t dram_capacity, size_t cxl_capacity,
                    CxlPlacementPolicy policy);

  /// Registers a segment; fails when both tiers are full.
  Status AddSegment(uint64_t id, const std::string& name, size_t bytes,
                    double heat);

  /// Re-places all segments according to the policy:
  ///  - kTiered: hottest-first into DRAM until it is full;
  ///  - kUnified: pseudo-random proportional split (OS-interleaved pages).
  void Rebalance();

  /// Charges one access of `bytes` at the segment's current tier.
  Status Access(NetContext* ctx, uint64_t id, size_t bytes);

  Result<SegmentInfo> segment(uint64_t id) const;
  const Stats& stats() const { return stats_; }
  size_t dram_used() const;

 private:
  size_t dram_capacity_;
  size_t cxl_capacity_;
  CxlPlacementPolicy policy_;
  std::map<uint64_t, SegmentInfo> segments_;
  Stats stats_;
  InterconnectModel dram_ = InterconnectModel::LocalDram();
  InterconnectModel cxl_ = InterconnectModel::Cxl();
};

}  // namespace disagg

#endif  // DISAGG_CXL_TIERING_H_
