#ifndef DISAGG_TXN_WAL_H_
#define DISAGG_TXN_WAL_H_

#include <memory>
#include <mutex>
#include <vector>

#include "net/net_context.h"
#include "storage/log_backend.h"
#include "storage/log_record.h"
#include "storage/log_store.h"
#include "storage/quorum.h"

namespace disagg {

/// Local-disk sink (the monolithic baseline): records buffered in process,
/// charged at SSD cost per flush.
class LocalDiskSink : public LogSink {
 public:
  explicit LocalDiskSink(InterconnectModel model = InterconnectModel::Ssd())
      : model_(std::move(model)) {}

  Result<Lsn> Append(NetContext* ctx,
                     const std::vector<LogRecord>& records) override;
  Result<std::vector<LogRecord>> ReadAll(NetContext* ctx) override;

  /// Crash helper: everything appended survives (it was fsync'ed).
  size_t record_count() const { return records_.size(); }

 private:
  InterconnectModel model_;
  std::mutex mu_;
  std::vector<LogRecord> records_;
  Lsn durable_ = kInvalidLsn;
};

/// Sink writing to a LogStoreService over the fabric.
class LogServiceSink : public LogSink {
 public:
  LogServiceSink(Fabric* fabric, NodeId node) : client_(fabric, node) {}

  Result<Lsn> Append(NetContext* ctx,
                     const std::vector<LogRecord>& records) override {
    return client_.Append(ctx, records);
  }
  Result<std::vector<LogRecord>> ReadAll(NetContext* ctx) override {
    return client_.ReadFrom(ctx, 0, ~0ull);
  }
  Result<std::vector<LogRecord>> ReadFrom(NetContext* ctx,
                                          Lsn from_exclusive) override {
    return client_.ReadFrom(ctx, from_exclusive, ~0ull);
  }

 private:
  LogStoreClient client_;
};

/// Sink writing through an Aurora-style replicated segment quorum.
class QuorumSink : public LogSink {
 public:
  explicit QuorumSink(ReplicatedSegment* segment) : segment_(segment) {}

  Result<Lsn> Append(NetContext* ctx,
                     const std::vector<LogRecord>& records) override {
    return segment_->AppendLog(ctx, records);
  }
  Result<std::vector<LogRecord>> ReadAll(NetContext* ctx) override {
    (void)ctx;
    return Status::NotSupported("read from segment replicas directly");
  }

 private:
  ReplicatedSegment* segment_;
};

/// Write-ahead-log manager on the compute node: allocates LSNs, chains each
/// transaction's records, group-buffers appends, and flushes to the sink at
/// commit (the durability point).
class WalManager {
 public:
  explicit WalManager(LogSink* sink) : sink_(sink) {}

  /// Stamps `*record` with the next LSN and the transaction's prev_lsn
  /// chain, then buffers a copy. Returns the assigned LSN.
  Lsn Append(LogRecord* record);
  Lsn Append(LogRecord&& record) {
    LogRecord r = std::move(record);
    return Append(&r);
  }
  Lsn Append(const LogRecord& record) {
    LogRecord r = record;
    return Append(&r);
  }

  /// Flushes all buffered records to the sink (group commit).
  Status Flush(NetContext* ctx);

  Lsn next_lsn() const { return next_lsn_; }
  Lsn flushed_lsn() const { return flushed_lsn_; }
  size_t buffered() const { return buffer_.size(); }

  /// Last LSN written by `txn` (for prev_lsn chaining), 0 if none.
  Lsn LastLsnOf(TxnId txn) const;

 private:
  LogSink* sink_;
  mutable std::mutex mu_;
  Lsn next_lsn_ = 1;
  Lsn flushed_lsn_ = kInvalidLsn;
  std::vector<LogRecord> buffer_;
  std::map<TxnId, Lsn> last_lsn_;
};

}  // namespace disagg

#endif  // DISAGG_TXN_WAL_H_
