#ifndef DISAGG_TXN_TWO_TIER_ARIES_H_
#define DISAGG_TXN_TWO_TIER_ARIES_H_

#include <map>

#include "memnode/memory_node.h"
#include "memnode/page_source.h"
#include "txn/recovery.h"
#include "txn/wal.h"

namespace disagg {

/// LegoBase's two-tier ARIES (Sec. 3.1): checkpoints are taken to BOTH the
/// remote-memory pool (fast tier, survives compute crashes but not pool
/// crashes) and disaggregated storage (slow durable tier). After a compute
/// crash, recovery restarts from the remote-memory checkpoint and replays a
/// short log tail; only if the memory pool is also gone does it fall back to
/// the storage checkpoint with a longer replay.
class TwoTierAries {
 public:
  struct CheckpointMeta {
    Lsn lsn = kInvalidLsn;
    std::map<PageId, GlobalAddr> remote_pages;  // remote-memory tier
    bool remote_valid = false;
  };

  TwoTierAries(Fabric* fabric, MemoryNode* pool, PageSource* storage,
               LogSink* log);

  /// Checkpoints `pages` (the dirty working set) at `lsn` to both tiers.
  Status Checkpoint(NetContext* ctx, const std::map<PageId, Page>& pages,
                    Lsn lsn);

  /// Recovers after a compute-node crash. Reads the newest usable
  /// checkpoint (remote memory if alive, else storage), replays the log
  /// tail, returns recovered pages. `used_remote` reports which tier served.
  Result<AriesRecovery::Outcome> Recover(NetContext* ctx, bool* used_remote);

  /// Simulates losing the memory pool too (power loss in the pool rack).
  void InvalidateRemoteTier() { meta_.remote_valid = false; }

  Lsn checkpoint_lsn() const { return meta_.lsn; }

 private:
  Fabric* fabric_;
  MemoryNode* pool_;
  PageSource* storage_;
  LogSink* log_;
  CheckpointMeta meta_;
  std::map<PageId, Page> storage_checkpoint_;  // ids checkpointed to storage
  Lsn storage_checkpoint_lsn_ = kInvalidLsn;
};

}  // namespace disagg

#endif  // DISAGG_TXN_TWO_TIER_ARIES_H_
