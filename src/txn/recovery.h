#ifndef DISAGG_TXN_RECOVERY_H_
#define DISAGG_TXN_RECOVERY_H_

#include <map>
#include <set>
#include <vector>

#include "common/result.h"
#include "storage/log_record.h"
#include "storage/page.h"

namespace disagg {

/// ARIES-style crash recovery over a log (analysis / redo / undo). Operates
/// on in-memory structures; the engines decide where the log and the starting
/// page images come from (local disk, log service, remote-memory checkpoint —
/// the axis LegoBase's two-tier protocol varies).
class AriesRecovery {
 public:
  struct Outcome {
    std::map<PageId, Page> pages;      ///< recovered page images
    std::set<TxnId> winners;           ///< committed transactions
    std::set<TxnId> losers;            ///< in-flight at crash, rolled back
    std::vector<LogRecord> clr_log;    ///< compensation records produced
    size_t redo_applied = 0;
    size_t undo_applied = 0;
  };

  /// Replays `log` starting from `checkpoint_pages` (empty map = from
  /// scratch). Redo pass applies every page record with lsn > page lsn
  /// (repeating history); undo pass rolls back losers in reverse LSN order,
  /// emitting CLRs.
  static Result<Outcome> Recover(const std::vector<LogRecord>& log,
                                 std::map<PageId, Page> checkpoint_pages);
};

}  // namespace disagg

#endif  // DISAGG_TXN_RECOVERY_H_
