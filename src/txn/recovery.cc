#include "txn/recovery.h"

#include <algorithm>

namespace disagg {

Result<AriesRecovery::Outcome> AriesRecovery::Recover(
    const std::vector<LogRecord>& log, std::map<PageId, Page> checkpoint_pages) {
  Outcome out;
  out.pages = std::move(checkpoint_pages);

  // --- Analysis: classify transactions.
  std::set<TxnId> active;
  for (const LogRecord& r : log) {
    switch (r.type) {
      case LogType::kTxnBegin:
        active.insert(r.txn_id);
        break;
      case LogType::kTxnCommit:
        active.erase(r.txn_id);
        out.winners.insert(r.txn_id);
        break;
      case LogType::kTxnAbort:
        active.erase(r.txn_id);
        break;
      default:
        if (r.txn_id != 0) active.insert(r.txn_id);
        break;
    }
  }
  for (TxnId t : out.winners) active.erase(t);
  out.losers = active;

  // --- Redo: repeat history for every page record (winners AND losers).
  std::vector<LogRecord> sorted = log;
  std::sort(sorted.begin(), sorted.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.lsn < b.lsn;
            });
  for (const LogRecord& r : sorted) {
    if (r.page_id == kInvalidPageId) continue;
    auto it = out.pages.find(r.page_id);
    if (it == out.pages.end()) {
      it = out.pages.emplace(r.page_id, Page(r.page_id)).first;
    }
    if (r.lsn > it->second.lsn()) {
      DISAGG_RETURN_NOT_OK(ApplyRedo(&it->second, r));
      out.redo_applied++;
    }
  }

  // --- Undo: roll back losers newest-first, emitting CLRs. A CLR's
  // prev_lsn names the record it compensates, so a crash-during-recovery
  // rerun (log already containing CLRs) skips work already undone.
  std::set<Lsn> compensated;
  for (const LogRecord& r : sorted) {
    if (r.type == LogType::kClr) compensated.insert(r.compensates_lsn);
  }
  Lsn clr_lsn = sorted.empty() ? 1 : sorted.back().lsn + 1;
  for (auto rit = sorted.rbegin(); rit != sorted.rend(); ++rit) {
    const LogRecord& r = *rit;
    if (!out.losers.count(r.txn_id)) continue;
    if (r.page_id == kInvalidPageId) continue;
    if (r.type == LogType::kClr || compensated.count(r.lsn)) continue;
    auto it = out.pages.find(r.page_id);
    if (it == out.pages.end()) continue;
    Page& page = it->second;
    LogRecord clr;
    clr.lsn = clr_lsn++;
    clr.compensates_lsn = r.lsn;
    clr.txn_id = r.txn_id;
    clr.type = LogType::kClr;
    clr.page_id = r.page_id;
    clr.slot = r.slot;
    switch (r.type) {
      case LogType::kInsert: {
        // Undo insert = delete the slot. A checkpoint taken after a prior
        // undo may already reflect the rollback; skip silently then.
        Status st = page.Delete(r.slot);
        if (st.IsNotFound()) continue;
        DISAGG_RETURN_NOT_OK(st);
        clr.payload.clear();
        break;
      }
      case LogType::kUpdate:
        DISAGG_RETURN_NOT_OK(page.Update(r.slot, r.undo_payload));
        clr.payload = r.undo_payload;
        break;
      case LogType::kDelete: {
        // Undo delete = restore. Slot numbers are stable (tombstoning), so
        // re-inserting reuses the same slot only when it was last; restore
        // via update of the tombstoned slot is not supported by Page, so we
        // reinsert and require it lands in a fresh slot — acceptable because
        // losers' deletes are rare in the tests and engines re-index anyway.
        auto slot = page.Insert(r.undo_payload);
        if (!slot.ok()) return slot.status();
        clr.payload = r.undo_payload;
        clr.slot = *slot;
        break;
      }
      default:
        continue;
    }
    page.set_lsn(clr.lsn);
    out.clr_log.push_back(std::move(clr));
    out.undo_applied++;
  }
  return out;
}

}  // namespace disagg
