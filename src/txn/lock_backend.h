#ifndef DISAGG_TXN_LOCK_BACKEND_H_
#define DISAGG_TXN_LOCK_BACKEND_H_

#include <cstdint>

#include "common/status.h"
#include "storage/log_record.h"

namespace disagg {

struct NetContext;

enum class LockMode { kShared, kExclusive };

/// Where a transaction's row locks live. Two implementations:
///
///  - `LockManager` (src/txn/lock_manager.h): the compute-local no-wait
///    table every engine used before the offload seam — `ctx` is ignored,
///    acquisition costs nothing on the fabric.
///  - `OffloadedLockClient` (src/memnode/executor.h): each acquire/release
///    is one RPC to the memory-node executor's WOUND_WAIT lock table,
///    charged against the weak-CPU model and the full fabric pipeline.
///
/// Status contract (src/net/verb.h): conflict paths return `Busy`
/// (abort-and-retry), a wound or a post-crash epoch fence returns
/// `Aborted` (the txn must abort; retrying the same txn id cannot
/// succeed), and fabric faults surface as `Unavailable`. `TimedOut` is
/// reserved for deadline expiry and never signals contention.
class LockBackend {
 public:
  virtual ~LockBackend() = default;

  virtual Status AcquireLock(NetContext* ctx, TxnId txn, uint64_t key,
                             LockMode mode) = 0;

  /// Releases everything `txn` holds (commit/abort). Best-effort for remote
  /// backends: a failed release is queued and piggybacked on the next
  /// request so no key stays wedged behind a dead client.
  virtual void ReleaseAllLocks(NetContext* ctx, TxnId txn) = 0;
};

}  // namespace disagg

#endif  // DISAGG_TXN_LOCK_BACKEND_H_
