#include "txn/lock_manager.h"

namespace disagg {

Status LockManager::Acquire(TxnId txn, uint64_t key, Mode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = table_[key];
  if (mode == Mode::kShared) {
    if (e.exclusive != 0 && e.exclusive != txn) {
      conflicts_++;
      return Status::Busy("X-lock held by another transaction");
    }
    if (e.sharers.insert(txn).second) held_[txn].push_back(key);
    return Status::OK();
  }
  // Exclusive.
  if (e.exclusive != 0) {
    if (e.exclusive == txn) return Status::OK();
    conflicts_++;
    return Status::Busy("X-lock held by another transaction");
  }
  // Upgrade allowed only when we are the sole sharer.
  for (TxnId sharer : e.sharers) {
    if (sharer != txn) {
      conflicts_++;
      return Status::Busy("S-lock held by another txn");
    }
  }
  const bool newly_held = e.sharers.erase(txn) == 0;
  e.exclusive = txn;
  if (newly_held) held_[txn].push_back(key);
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (uint64_t key : it->second) {
    auto te = table_.find(key);
    if (te == table_.end()) continue;
    te->second.sharers.erase(txn);
    if (te->second.exclusive == txn) te->second.exclusive = 0;
    if (te->second.sharers.empty() && te->second.exclusive == 0) {
      table_.erase(te);
    }
  }
  held_.erase(it);
}

size_t LockManager::held_locks() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [txn, keys] : held_) n += keys.size();
  return n;
}

uint64_t LockManager::conflicts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conflicts_;
}

}  // namespace disagg
