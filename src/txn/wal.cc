#include "txn/wal.h"

namespace disagg {

Result<Lsn> LocalDiskSink::Append(NetContext* ctx,
                                  const std::vector<LogRecord>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const LogRecord& r : records) {
    bytes += r.EncodedSize();
    durable_ = std::max(durable_, r.lsn);
    records_.push_back(r);
  }
  // One fsync'ed sequential write.
  ctx->Charge(model_.WriteCost(bytes));
  ctx->bytes_out += bytes;
  return durable_;
}

Result<std::vector<LogRecord>> LocalDiskSink::ReadAll(NetContext* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (const LogRecord& r : records_) bytes += r.EncodedSize();
  ctx->Charge(model_.ReadCost(bytes));
  ctx->bytes_in += bytes;
  return records_;
}

Lsn WalManager::Append(LogRecord* record) {
  std::lock_guard<std::mutex> lock(mu_);
  record->lsn = next_lsn_++;
  auto it = last_lsn_.find(record->txn_id);
  record->prev_lsn = it == last_lsn_.end() ? kInvalidLsn : it->second;
  last_lsn_[record->txn_id] = record->lsn;
  buffer_.push_back(*record);
  return record->lsn;
}

Status WalManager::Flush(NetContext* ctx) {
  std::vector<LogRecord> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (buffer_.empty()) return Status::OK();
    batch.swap(buffer_);
  }
  auto lsn = sink_->Append(ctx, batch);
  if (!lsn.ok()) {
    // Put the batch back so a retry does not lose records.
    std::lock_guard<std::mutex> lock(mu_);
    buffer_.insert(buffer_.begin(), batch.begin(), batch.end());
    return lsn.status();
  }
  std::lock_guard<std::mutex> lock(mu_);
  flushed_lsn_ = std::max(flushed_lsn_, *lsn);
  return Status::OK();
}

Lsn WalManager::LastLsnOf(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = last_lsn_.find(txn);
  return it == last_lsn_.end() ? kInvalidLsn : it->second;
}

}  // namespace disagg
