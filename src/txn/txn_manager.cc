#include "txn/txn_manager.h"

namespace disagg {

TxnId TxnManager::Begin() {
  const TxnId txn = next_txn_.fetch_add(1);
  LogRecord begin;
  begin.txn_id = txn;
  begin.type = LogType::kTxnBegin;
  begin.page_id = kInvalidPageId;
  wal_->Append(std::move(begin));
  std::lock_guard<std::mutex> lock(mu_);
  undo_[txn] = {};
  return txn;
}

Lsn TxnManager::LogAndTrack(TxnId txn, LogRecord record) {
  const Lsn lsn = wal_->Append(&record);  // stamps lsn/prev_lsn
  {
    std::lock_guard<std::mutex> lock(mu_);
    undo_[txn].push_back(std::move(record));
  }
  return lsn;
}

Lsn TxnManager::LogInsert(TxnId txn, PageId page, uint16_t slot, Slice after,
                          uint64_t row_key) {
  LogRecord r;
  r.txn_id = txn;
  r.type = LogType::kInsert;
  r.page_id = page;
  r.slot = slot;
  r.row_key = row_key;
  r.payload = after.ToString();
  return LogAndTrack(txn, std::move(r));
}

Lsn TxnManager::LogUpdate(TxnId txn, PageId page, uint16_t slot, Slice before,
                          Slice after, uint64_t row_key) {
  LogRecord r;
  r.txn_id = txn;
  r.type = LogType::kUpdate;
  r.page_id = page;
  r.slot = slot;
  r.row_key = row_key;
  r.payload = after.ToString();
  r.undo_payload = before.ToString();
  return LogAndTrack(txn, std::move(r));
}

Lsn TxnManager::LogDelete(TxnId txn, PageId page, uint16_t slot, Slice before,
                          uint64_t row_key) {
  LogRecord r;
  r.txn_id = txn;
  r.type = LogType::kDelete;
  r.page_id = page;
  r.slot = slot;
  r.row_key = row_key;
  r.undo_payload = before.ToString();
  return LogAndTrack(txn, std::move(r));
}

Status TxnManager::Commit(NetContext* ctx, TxnId txn) {
  LogRecord commit;
  commit.txn_id = txn;
  commit.type = LogType::kTxnCommit;
  commit.page_id = kInvalidPageId;
  wal_->Append(std::move(commit));
  Status st = wal_->Flush(ctx);  // durability point
  {
    std::lock_guard<std::mutex> lock(mu_);
    undo_.erase(txn);
  }
  locks_->ReleaseAllLocks(ctx, txn);
  return st;
}

std::vector<LogRecord> TxnManager::Abort(NetContext* ctx, TxnId txn) {
  std::vector<LogRecord> updates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = undo_.find(txn);
    if (it != undo_.end()) {
      updates.assign(it->second.rbegin(), it->second.rend());
      undo_.erase(it);
    }
  }
  // ARIES: a runtime rollback logs compensation records so that recovery
  // REDOES the rollback instead of replaying the aborted work. Insert/update
  // CLRs are fully determined here; delete-undo CLRs need the fresh slot the
  // engine re-inserts into, so the engine logs those via LogClr.
  for (const LogRecord& r : updates) {
    if (r.type == LogType::kInsert) {
      LogClr(txn, r.page_id, r.slot, "", r.lsn);
    } else if (r.type == LogType::kUpdate) {
      LogClr(txn, r.page_id, r.slot, r.undo_payload, r.lsn);
    }
  }
  LogRecord abort;
  abort.txn_id = txn;
  abort.type = LogType::kTxnAbort;
  abort.page_id = kInvalidPageId;
  wal_->Append(std::move(abort));
  locks_->ReleaseAllLocks(ctx, txn);
  return updates;
}

void TxnManager::EndReadOnly(NetContext* ctx, TxnId txn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    undo_.erase(txn);
  }
  locks_->ReleaseAllLocks(ctx, txn);
}

Lsn TxnManager::LogClr(TxnId txn, PageId page, uint16_t slot,
                       Slice restored_image, Lsn compensated_lsn) {
  LogRecord clr;
  clr.txn_id = txn;
  clr.type = LogType::kClr;
  clr.page_id = page;
  clr.slot = slot;
  clr.payload = restored_image.ToString();
  clr.compensates_lsn = compensated_lsn;
  LogRecord copy = clr;
  return wal_->Append(&copy);
}

size_t TxnManager::active_txns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return undo_.size();
}

std::vector<LogRecord> TxnManager::PendingRecords(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = undo_.find(txn);
  return it == undo_.end() ? std::vector<LogRecord>{} : it->second;
}

}  // namespace disagg
