#ifndef DISAGG_TXN_LOCK_MANAGER_H_
#define DISAGG_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/status.h"
#include "storage/log_record.h"
#include "txn/lock_backend.h"

namespace disagg {

/// Row-level S/X lock table (strict two-phase locking). No blocking waits:
/// conflicting requests fail with Status::Busy and the transaction aborts
/// and retries — the no-wait policy common in distributed/disaggregated
/// settings where blocking a remote caller is worse than restarting it.
///
/// The compute-local `LockBackend`: `ctx` is ignored, acquisition touches
/// no fabric. The offloaded alternative lives at the memory node
/// (`OffloadedLockClient`, src/memnode/executor.h).
class LockManager : public LockBackend {
 public:
  using Mode = LockMode;

  /// Acquires (or upgrades) `key` for `txn`. Every conflict path returns
  /// Status::Busy — never TimedOut/Aborted — so callers' retry loops can
  /// key on IsBusy() alone (the contract concurrency_test exercises).
  Status Acquire(TxnId txn, uint64_t key, Mode mode);

  /// Releases everything `txn` holds (commit/abort).
  void ReleaseAll(TxnId txn);

  // LockBackend (local: the context is unused, nothing touches the fabric).
  Status AcquireLock(NetContext* ctx, TxnId txn, uint64_t key,
                     LockMode mode) override {
    (void)ctx;
    return Acquire(txn, key, mode);
  }
  void ReleaseAllLocks(NetContext* ctx, TxnId txn) override {
    (void)ctx;
    ReleaseAll(txn);
  }

  size_t held_locks() const;

  /// Conflicting acquisitions rejected with Busy since construction.
  uint64_t conflicts() const;

 private:
  struct Entry {
    std::set<TxnId> sharers;
    TxnId exclusive = 0;  // 0 = none
  };

  mutable std::mutex mu_;
  std::map<uint64_t, Entry> table_;
  std::map<TxnId, std::vector<uint64_t>> held_;
  uint64_t conflicts_ = 0;
};

}  // namespace disagg

#endif  // DISAGG_TXN_LOCK_MANAGER_H_
