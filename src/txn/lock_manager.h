#ifndef DISAGG_TXN_LOCK_MANAGER_H_
#define DISAGG_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/status.h"
#include "storage/log_record.h"

namespace disagg {

/// Row-level S/X lock table (strict two-phase locking). No blocking waits:
/// conflicting requests fail with Status::Busy and the transaction aborts
/// and retries — the no-wait policy common in distributed/disaggregated
/// settings where blocking a remote caller is worse than restarting it.
class LockManager {
 public:
  enum class Mode { kShared, kExclusive };

  /// Acquires (or upgrades) `key` for `txn`. Every conflict path returns
  /// Status::Busy — never TimedOut/Aborted — so callers' retry loops can
  /// key on IsBusy() alone (the contract concurrency_test exercises).
  Status Acquire(TxnId txn, uint64_t key, Mode mode);

  /// Releases everything `txn` holds (commit/abort).
  void ReleaseAll(TxnId txn);

  size_t held_locks() const;

  /// Conflicting acquisitions rejected with Busy since construction.
  uint64_t conflicts() const;

 private:
  struct Entry {
    std::set<TxnId> sharers;
    TxnId exclusive = 0;  // 0 = none
  };

  mutable std::mutex mu_;
  std::map<uint64_t, Entry> table_;
  std::map<TxnId, std::vector<uint64_t>> held_;
  uint64_t conflicts_ = 0;
};

}  // namespace disagg

#endif  // DISAGG_TXN_LOCK_MANAGER_H_
