#include "txn/two_tier_aries.h"

namespace disagg {

TwoTierAries::TwoTierAries(Fabric* fabric, MemoryNode* pool,
                           PageSource* storage, LogSink* log)
    : fabric_(fabric), pool_(pool), storage_(storage), log_(log) {}

Status TwoTierAries::Checkpoint(NetContext* ctx,
                                const std::map<PageId, Page>& pages, Lsn lsn) {
  // Fast tier: page images into the remote memory pool.
  CheckpointMeta meta;
  meta.lsn = lsn;
  for (const auto& [id, page] : pages) {
    GlobalAddr addr;
    auto it = meta_.remote_pages.find(id);
    if (it != meta_.remote_pages.end()) {
      addr = it->second;  // overwrite the previous checkpoint frame
    } else {
      DISAGG_ASSIGN_OR_RETURN(addr, pool_->AllocLocal(kPageSize));
    }
    DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, addr, page.data(), kPageSize));
    meta.remote_pages[id] = addr;
  }
  meta.remote_valid = true;

  // Slow durable tier: same images into disaggregated storage.
  for (const auto& [id, page] : pages) {
    DISAGG_RETURN_NOT_OK(storage_->WritePage(ctx, page));
    storage_checkpoint_[id] = page;
  }
  storage_checkpoint_lsn_ = lsn;
  meta_ = std::move(meta);
  return Status::OK();
}

Result<AriesRecovery::Outcome> TwoTierAries::Recover(NetContext* ctx,
                                                     bool* used_remote) {
  std::map<PageId, Page> base;
  Lsn base_lsn = kInvalidLsn;
  if (meta_.remote_valid) {
    *used_remote = true;
    for (const auto& [id, addr] : meta_.remote_pages) {
      Page page(id);
      DISAGG_RETURN_NOT_OK(fabric_->Read(ctx, addr, page.data(), kPageSize));
      base.emplace(id, std::move(page));
    }
    base_lsn = meta_.lsn;
  } else {
    *used_remote = false;
    for (const auto& [id, snapshot] : storage_checkpoint_) {
      (void)snapshot;
      DISAGG_ASSIGN_OR_RETURN(Page page, storage_->FetchPage(ctx, id));
      base.emplace(id, std::move(page));
    }
    base_lsn = storage_checkpoint_lsn_;
  }

  DISAGG_ASSIGN_OR_RETURN(std::vector<LogRecord> log, log_->ReadAll(ctx));
  // Only the tail beyond the checkpoint needs replay.
  std::vector<LogRecord> tail;
  for (const LogRecord& r : log) {
    if (r.lsn > base_lsn || r.type == LogType::kTxnBegin ||
        r.type == LogType::kTxnCommit || r.type == LogType::kTxnAbort) {
      tail.push_back(r);
    }
  }
  // Local replay CPU cost.
  ctx->Charge(250 * tail.size());
  return AriesRecovery::Recover(tail, std::move(base));
}

}  // namespace disagg
