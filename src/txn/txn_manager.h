#ifndef DISAGG_TXN_TXN_MANAGER_H_
#define DISAGG_TXN_TXN_MANAGER_H_

#include <atomic>
#include <map>
#include <mutex>
#include <vector>

#include "txn/lock_manager.h"
#include "txn/wal.h"

namespace disagg {

/// Transaction coordinator tying strict 2PL to the WAL: engines call the
/// Log* methods BEFORE applying a change to a page (write-ahead rule), and
/// Commit flushes the log to the sink — the durability point whose cost
/// varies across architectures (local fsync vs XLOG RPC vs Aurora quorum).
class TxnManager {
 public:
  TxnManager(WalManager* wal, LockBackend* locks) : wal_(wal), locks_(locks) {}

  /// Swaps the lock backend (e.g. for the memory-node offloaded lock table,
  /// `RowEngine::AdoptConcurrencyOffload`). Config-time only: call before
  /// any transaction begins.
  void set_lock_backend(LockBackend* locks) { locks_ = locks; }
  LockBackend* lock_backend() { return locks_; }

  TxnId Begin();

  /// Lock helpers (no-wait: Busy means "abort and retry"; Aborted means the
  /// memory-node lock table wounded or fenced this txn — abort, don't
  /// retry the same txn id). `ctx` carries the fabric charge for offloaded
  /// backends; the ctx-less overloads serve local-backend callers.
  Status LockShared(NetContext* ctx, TxnId txn, uint64_t key) {
    return locks_->AcquireLock(ctx, txn, key, LockMode::kShared);
  }
  Status LockExclusive(NetContext* ctx, TxnId txn, uint64_t key) {
    return locks_->AcquireLock(ctx, txn, key, LockMode::kExclusive);
  }
  Status LockShared(TxnId txn, uint64_t key) {
    return LockShared(nullptr, txn, key);
  }
  Status LockExclusive(TxnId txn, uint64_t key) {
    return LockExclusive(nullptr, txn, key);
  }

  /// WAL wrappers; each returns the stamped LSN the caller must put on the
  /// page it modifies. `row_key` is the engine-level key (0 if none).
  Lsn LogInsert(TxnId txn, PageId page, uint16_t slot, Slice after,
                uint64_t row_key = 0);
  Lsn LogUpdate(TxnId txn, PageId page, uint16_t slot, Slice before,
                Slice after, uint64_t row_key = 0);
  Lsn LogDelete(TxnId txn, PageId page, uint16_t slot, Slice before,
                uint64_t row_key = 0);

  /// Appends the commit record and flushes (group commit). Releases locks.
  Status Commit(NetContext* ctx, TxnId txn);

  /// Logs compensation records (CLRs) for the rollback plus an abort
  /// record, and returns the transaction's updates in reverse order so the
  /// engine can undo them in its buffer. Releases locks. Delete-undo CLRs
  /// are the engine's job (it knows the re-insert slot): call LogClr.
  std::vector<LogRecord> Abort(NetContext* ctx, TxnId txn);
  std::vector<LogRecord> Abort(TxnId txn) { return Abort(nullptr, txn); }

  /// Ends a transaction that logged nothing: just releases its locks. A
  /// read-only transaction has no durability point — no commit record, no
  /// flush, no quorum round-trip. The caller guarantees the transaction
  /// performed no Log* calls (any tracked undo is dropped, not rolled back).
  void EndReadOnly(NetContext* ctx, TxnId txn);
  void EndReadOnly(TxnId txn) { EndReadOnly(nullptr, txn); }

  /// Logs one CLR describing a rollback action the engine performed
  /// (empty `restored_image` = the slot was deleted again).
  Lsn LogClr(TxnId txn, PageId page, uint16_t slot, Slice restored_image,
             Lsn compensated_lsn);

  size_t active_txns() const;

  /// Stamped data records of an active transaction (oldest first) — what a
  /// page-shipping engine sends to its page stores at commit.
  std::vector<LogRecord> PendingRecords(TxnId txn) const;

 private:
  Lsn LogAndTrack(TxnId txn, LogRecord record);

  WalManager* wal_;
  LockBackend* locks_;
  std::atomic<TxnId> next_txn_{1};
  mutable std::mutex mu_;
  std::map<TxnId, std::vector<LogRecord>> undo_;  // newest last
};

}  // namespace disagg

#endif  // DISAGG_TXN_TXN_MANAGER_H_
