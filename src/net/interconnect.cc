#include "net/interconnect.h"

namespace disagg {

InterconnectModel InterconnectModel::LocalDram() {
  InterconnectModel m;
  m.name = "local-dram";
  m.read_base_ns = 100;
  m.write_base_ns = 100;
  m.atomic_base_ns = 120;
  m.rpc_base_ns = 400;  // a local function call / IPC hop
  m.ns_per_byte = 0.01;  // ~100 GB/s
  return m;
}

InterconnectModel InterconnectModel::Cxl() {
  InterconnectModel m;
  m.name = "cxl";
  m.read_base_ns = 400;  // ~6.2x lower than RDMA read (DirectCXL)
  m.write_base_ns = 380;
  m.atomic_base_ns = 450;
  m.rpc_base_ns = 1200;
  m.ns_per_byte = 0.025;  // ~40 GB/s
  return m;
}

InterconnectModel InterconnectModel::Rdma() {
  InterconnectModel m;
  m.name = "rdma";
  m.read_base_ns = 2500;
  m.write_base_ns = 2300;
  m.atomic_base_ns = 2700;
  m.rpc_base_ns = 5200;  // send/recv + remote CPU dispatch
  // Effective per-flow goodput (~4 GB/s): line rate is 100 Gbps but a single
  // QP with real message sizes sustains a fraction of it, which is the
  // regime the TELEPORT/Farview pushdown results were measured in.
  m.ns_per_byte = 0.25;
  return m;
}

InterconnectModel InterconnectModel::RdmaToPm() {
  InterconnectModel m = Rdma();
  m.name = "rdma-pm";
  // PM servers run busy-polling RPC handlers on strong CPUs (HERD-style), so
  // a two-sided persist is a single ~4 us round trip — cheaper than the
  // one-sided WRITE + flush-READ pair (Kalia et al., Sec. 2.3).
  m.rpc_base_ns = 4000;
  return m;
}

InterconnectModel InterconnectModel::Ssd() {
  InterconnectModel m;
  m.name = "ssd";
  m.read_base_ns = 80'000;
  m.write_base_ns = 20'000;  // NVMe write to device buffer
  m.atomic_base_ns = 80'000;
  m.rpc_base_ns = 90'000;
  m.ns_per_byte = 0.5;  // ~2 GB/s
  return m;
}

InterconnectModel InterconnectModel::ObjectStore() {
  InterconnectModel m;
  m.name = "object-store";
  m.read_base_ns = 5'000'000;
  m.write_base_ns = 8'000'000;
  m.atomic_base_ns = 5'000'000;
  m.rpc_base_ns = 5'000'000;
  m.ns_per_byte = 10.0;  // ~100 MB/s
  return m;
}

}  // namespace disagg
