#include "net/congestion.h"

#include <algorithm>

namespace disagg {

uint64_t CongestionState::AdmitOneFifo(Resource* r, uint64_t t,
                                       uint64_t bytes) {
  const uint64_t service = r->cap.ServiceNs(bytes);
  const uint64_t start = std::max(t, r->stats.free_ns);
  r->stats.free_ns = start + service;
  r->stats.ops++;
  r->stats.bytes += bytes;
  r->stats.busy_ns += service;
  r->stats.queue_ns += start - t;
  return start;
}

uint64_t CongestionState::AdmitOneSfq(Resource* r, uint32_t tenant,
                                      uint64_t t, uint64_t bytes) const {
  const uint64_t service = r->cap.ServiceNs(bytes);
  const double w = config_.WeightFor(tenant);

  // Fluid-server share at this instant: tenants whose lane is still draining
  // at the op's arrival are active; the lone-tenant case degenerates to
  // active == w, a stretch of exactly `service`, and FIFO arithmetic.
  double active = w;
  for (const auto& [id, lane] : r->lanes) {
    if (id != tenant && lane.free_ns > t) active += config_.WeightFor(id);
  }

  Lane& lane = r->lanes[tenant];
  const uint64_t start = std::max(t, lane.free_ns);
  const uint64_t stretch = static_cast<uint64_t>(
      static_cast<double>(service) * (active / w));
  lane.free_ns = start + stretch;
  lane.ops++;

  // The op's fluid completion is its lane's finish time; everything beyond
  // its bare service time was spent sharing the pipe, i.e. queueing. Report
  // `virtual_start = completion - service` so the caller's cut-through
  // cascade and delay arithmetic are identical to the FIFO discipline.
  const uint64_t virtual_start = lane.free_ns - service;
  r->stats.ops++;
  r->stats.bytes += bytes;
  r->stats.busy_ns += service;
  r->stats.queue_ns += virtual_start - t;
  if (lane.free_ns > r->stats.free_ns) r->stats.free_ns = lane.free_ns;
  return virtual_start;
}

uint64_t CongestionState::BacklogAt(const Resource& r, uint32_t tenant,
                                    uint64_t t) const {
  if (r.cap.unlimited()) return 0;
  if (!config_.wfq_enabled()) {
    return r.stats.free_ns > t ? r.stats.free_ns - t : 0;
  }
  // SFQ: the wait an op would be charged is its own lane's drain time — a
  // light tenant is admitted even while a heavy tenant's lane is deep.
  auto it = r.lanes.find(tenant);
  if (it == r.lanes.end()) return 0;
  return it->second.free_ns > t ? it->second.free_ns - t : 0;
}

CongestionState::Resource* CongestionState::ResourceFor(NodeId node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    auto cit = config_.node_caps.find(node);
    const ResourceCapacity cap =
        cit == config_.node_caps.end() ? config_.default_node : cit->second;
    it = nodes_.emplace(node, Resource{cap, {}, {}}).first;
  }
  return &it->second;
}

const CongestionState::Resource* CongestionState::FindResource(
    NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

bool CongestionState::TryAdmit(NodeId node, uint32_t tenant,
                               uint64_t arrival_ns) {
  std::lock_guard<std::mutex> lock(mu_);

  Resource* link = ResourceFor(node);
  if (link->cap.max_backlog_ns > 0 &&
      BacklogAt(*link, tenant, arrival_ns) > link->cap.max_backlog_ns) {
    link->stats.rejections++;
    return false;
  }

  if (!config_.backbone.unlimited()) {
    if (!backbone_init_) {
      backbone_.cap = config_.backbone;
      backbone_init_ = true;
    }
    if (backbone_.cap.max_backlog_ns > 0 &&
        BacklogAt(backbone_, tenant, arrival_ns) >
            backbone_.cap.max_backlog_ns) {
      backbone_.stats.rejections++;
      return false;
    }
  }
  return true;
}

uint64_t CongestionState::Admit(NodeId node, uint32_t tenant,
                                uint64_t arrival_ns, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool wfq = config_.wfq_enabled();

  // The op transits its target node's link, then the shared backbone
  // (cut-through: it is admitted to the backbone as soon as it starts
  // service on the link, so an idle pair of resources adds zero delay).
  uint64_t t = arrival_ns;

  Resource* link = ResourceFor(node);
  if (!link->cap.unlimited()) {
    t = wfq ? AdmitOneSfq(link, tenant, t, bytes)
            : AdmitOneFifo(link, t, bytes);
  }

  if (!config_.backbone.unlimited()) {
    if (!backbone_init_) {
      backbone_.cap = config_.backbone;
      backbone_init_ = true;
    }
    t = wfq ? AdmitOneSfq(&backbone_, tenant, t, bytes)
            : AdmitOneFifo(&backbone_, t, bytes);
  }

  return t - arrival_ns;
}

CongestionState::ResourceStats CongestionState::NodeStats(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Resource* r = FindResource(node);
  return r == nullptr ? ResourceStats{} : r->stats;
}

CongestionState::ResourceStats CongestionState::BackboneStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backbone_.stats;
}

std::map<uint32_t, uint64_t> CongestionState::NodeTenantOps(
    NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<uint32_t, uint64_t> out;
  const Resource* r = FindResource(node);
  if (r == nullptr) return out;
  for (const auto& [tenant, lane] : r->lanes) out[tenant] = lane.ops;
  return out;
}

uint64_t CongestionState::total_queue_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = backbone_.stats.queue_ns;
  for (const auto& [id, r] : nodes_) total += r.stats.queue_ns;
  return total;
}

uint64_t CongestionState::total_rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = backbone_.stats.rejections;
  for (const auto& [id, r] : nodes_) total += r.stats.rejections;
  return total;
}

void CongestionState::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, r] : nodes_) {
    r.stats = ResourceStats{};
    r.lanes.clear();
  }
  backbone_.stats = ResourceStats{};
  backbone_.lanes.clear();
}

}  // namespace disagg
