#include "net/congestion.h"

#include <algorithm>

namespace disagg {

uint64_t CongestionState::AdmitOne(Resource* r, uint64_t t, uint64_t bytes) {
  const uint64_t service = r->cap.ServiceNs(bytes);
  const uint64_t start = std::max(t, r->stats.free_ns);
  r->stats.free_ns = start + service;
  r->stats.ops++;
  r->stats.bytes += bytes;
  r->stats.busy_ns += service;
  r->stats.queue_ns += start - t;
  return start;
}

uint64_t CongestionState::Admit(NodeId node, uint64_t arrival_ns,
                                uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);

  // The op transits its target node's link, then the shared backbone
  // (cut-through: it is admitted to the backbone as soon as it starts
  // service on the link, so an idle pair of resources adds zero delay).
  uint64_t t = arrival_ns;

  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    auto cit = config_.node_caps.find(node);
    const ResourceCapacity cap =
        cit == config_.node_caps.end() ? config_.default_node : cit->second;
    it = nodes_.emplace(node, Resource{cap, {}}).first;
  }
  if (!it->second.cap.unlimited()) t = AdmitOne(&it->second, t, bytes);

  if (!config_.backbone.unlimited()) {
    if (!backbone_init_) {
      backbone_.cap = config_.backbone;
      backbone_init_ = true;
    }
    t = AdmitOne(&backbone_, t, bytes);
  }

  return t - arrival_ns;
}

CongestionState::ResourceStats CongestionState::NodeStats(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  return it == nodes_.end() ? ResourceStats{} : it->second.stats;
}

CongestionState::ResourceStats CongestionState::BackboneStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backbone_.stats;
}

uint64_t CongestionState::total_queue_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = backbone_.stats.queue_ns;
  for (const auto& [id, r] : nodes_) total += r.stats.queue_ns;
  return total;
}

void CongestionState::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, r] : nodes_) r.stats = ResourceStats{};
  backbone_.stats = ResourceStats{};
}

}  // namespace disagg
