#include "net/congestion.h"

#include <algorithm>

#include "net/partition.h"

namespace disagg {

uint64_t CongestionState::AdmitOneFifo(Resource* r, uint64_t t,
                                       uint64_t bytes) {
  const uint64_t service = r->cap.ServiceNs(bytes);
  const uint64_t start = std::max(t, r->stats.free_ns);
  r->stats.free_ns = start + service;
  r->stats.ops++;
  r->stats.bytes += bytes;
  r->stats.busy_ns += service;
  r->stats.queue_ns += start - t;
  return start;
}

uint64_t CongestionState::AdmitOneSfq(Resource* r, uint32_t tenant,
                                      uint64_t t, uint64_t bytes) const {
  const uint64_t service = r->cap.ServiceNs(bytes);
  const double w = config_.WeightFor(tenant);

  // Fluid-server share at this instant: tenants whose lane is still draining
  // at the op's arrival are active; the lone-tenant case degenerates to
  // active == w, a stretch of exactly `service`, and FIFO arithmetic.
  double active = w;
  for (const auto& [id, lane] : r->lanes) {
    if (id != tenant && lane.free_ns > t) active += config_.WeightFor(id);
  }

  Lane& lane = r->lanes[tenant];
  const uint64_t start = std::max(t, lane.free_ns);
  const uint64_t stretch = static_cast<uint64_t>(
      static_cast<double>(service) * (active / w));
  lane.free_ns = start + stretch;
  lane.ops++;

  // The op's fluid completion is its lane's finish time; everything beyond
  // its bare service time was spent sharing the pipe, i.e. queueing. Report
  // `virtual_start = completion - service` so the caller's cut-through
  // cascade and delay arithmetic are identical to the FIFO discipline.
  const uint64_t virtual_start = lane.free_ns - service;
  r->stats.ops++;
  r->stats.bytes += bytes;
  r->stats.busy_ns += service;
  r->stats.queue_ns += virtual_start - t;
  if (lane.free_ns > r->stats.free_ns) r->stats.free_ns = lane.free_ns;
  return virtual_start;
}

uint64_t CongestionState::BacklogAt(const Resource& r, uint32_t tenant,
                                    uint64_t t) const {
  if (r.cap.unlimited()) return 0;
  if (!config_.wfq_enabled()) {
    return r.stats.free_ns > t ? r.stats.free_ns - t : 0;
  }
  // SFQ: the wait an op would be charged is its own lane's drain time — a
  // light tenant is admitted even while a heavy tenant's lane is deep.
  auto it = r.lanes.find(tenant);
  if (it == r.lanes.end()) return 0;
  return it->second.free_ns > t ? it->second.free_ns - t : 0;
}

CongestionState::Resource* CongestionState::ResourceFor(NodeId node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    auto cit = config_.node_caps.find(node);
    const ResourceCapacity cap =
        cit == config_.node_caps.end() ? config_.default_node : cit->second;
    it = nodes_.emplace(node, Resource{cap, {}, {}}).first;
  }
  return &it->second;
}

const CongestionState::Resource* CongestionState::FindResource(
    NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

CongestionState::Resource* CongestionState::BackbonePtrLocked() {
  if (config_.backbone.unlimited()) return nullptr;
  if (!backbone_init_) {
    backbone_.cap = config_.backbone;
    backbone_init_ = true;
  }
  return &backbone_;
}

int CongestionState::TryAdmitOn(const Resource* link, const Resource* backbone,
                                uint32_t tenant, uint64_t arrival_ns) const {
  if (link->cap.max_backlog_ns > 0 &&
      BacklogAt(*link, tenant, arrival_ns) > link->cap.max_backlog_ns) {
    return 1;
  }
  if (backbone != nullptr && backbone->cap.max_backlog_ns > 0 &&
      BacklogAt(*backbone, tenant, arrival_ns) >
          backbone->cap.max_backlog_ns) {
    return 2;
  }
  return 0;
}

uint64_t CongestionState::AdmitOn(Resource* link, Resource* backbone,
                                  uint32_t tenant, uint64_t arrival_ns,
                                  uint64_t bytes) const {
  const bool wfq = config_.wfq_enabled();

  // The op transits its target node's link, then the shared backbone
  // (cut-through: it is admitted to the backbone as soon as it starts
  // service on the link, so an idle pair of resources adds zero delay).
  uint64_t t = arrival_ns;

  if (!link->cap.unlimited()) {
    t = wfq ? AdmitOneSfq(link, tenant, t, bytes)
            : AdmitOneFifo(link, t, bytes);
  }

  if (backbone != nullptr) {
    t = wfq ? AdmitOneSfq(backbone, tenant, t, bytes)
            : AdmitOneFifo(backbone, t, bytes);
  }

  return t - arrival_ns;
}

bool CongestionState::TryAdmit(NodeId node, uint32_t tenant,
                               uint64_t arrival_ns) {
  if (PartitionEffects* eff = CurrentPartitionEffects()) {
    return eff->ShardFor(this)->TryAdmit(node, tenant, arrival_ns);
  }
  return TryAdmitAuthoritative(node, tenant, arrival_ns);
}

bool CongestionState::TryAdmitAuthoritative(NodeId node, uint32_t tenant,
                                            uint64_t arrival_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Resource* link = ResourceFor(node);
  Resource* backbone = BackbonePtrLocked();
  switch (TryAdmitOn(link, backbone, tenant, arrival_ns)) {
    case 1:
      link->stats.rejections++;
      return false;
    case 2:
      backbone->stats.rejections++;
      return false;
    default:
      return true;
  }
}

uint64_t CongestionState::Admit(NodeId node, uint32_t tenant,
                                uint64_t arrival_ns, uint64_t bytes) {
  if (PartitionEffects* eff = CurrentPartitionEffects()) {
    return eff->ShardFor(this)->Admit(node, tenant, arrival_ns, bytes);
  }
  return AdmitAuthoritative(node, tenant, arrival_ns, bytes);
}

uint64_t CongestionState::AdmitAuthoritative(NodeId node, uint32_t tenant,
                                             uint64_t arrival_ns,
                                             uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  return AdmitOn(ResourceFor(node), BackbonePtrLocked(), tenant, arrival_ns,
                 bytes);
}

CongestionState::Resource* CongestionState::Shard::LocalFor(NodeId node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    std::lock_guard<std::mutex> lock(owner_->mu_);
    it = nodes_.emplace(node, *owner_->ResourceFor(node)).first;
  }
  return &it->second;
}

CongestionState::Resource* CongestionState::Shard::LocalBackbone() {
  if (owner_->config_.backbone.unlimited()) return nullptr;
  if (!backbone_copied_) {
    std::lock_guard<std::mutex> lock(owner_->mu_);
    backbone_ = *owner_->BackbonePtrLocked();
    backbone_copied_ = true;
  }
  return &backbone_;
}

bool CongestionState::Shard::TryAdmit(NodeId node, uint32_t tenant,
                                      uint64_t arrival_ns) {
  Resource* link = LocalFor(node);
  Resource* backbone = LocalBackbone();
  const int rej = owner_->TryAdmitOn(link, backbone, tenant, arrival_ns);
  if (rej == 0) return true;
  // Local scratch counter (kept coherent for BacklogAt reads); the
  // authoritative counter is bumped when the logged event replays.
  (rej == 1 ? link : backbone)->stats.rejections++;
  log_.push_back(Event{Event::kReject, rej == 2, node, tenant, arrival_ns, 0});
  return false;
}

uint64_t CongestionState::Shard::Admit(NodeId node, uint32_t tenant,
                                       uint64_t arrival_ns, uint64_t bytes) {
  Resource* link = LocalFor(node);
  Resource* backbone = LocalBackbone();
  log_.push_back(
      Event{Event::kAdmit, false, node, tenant, arrival_ns, bytes});
  return owner_->AdmitOn(link, backbone, tenant, arrival_ns, bytes);
}

void CongestionState::MergeShard(Shard* shard) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Shard::Event& e : shard->log_) {
    if (e.kind == Shard::Event::kAdmit) {
      AdmitOn(ResourceFor(e.node), BackbonePtrLocked(), e.tenant,
              e.arrival_ns, e.bytes);
    } else {
      Resource* r = e.backbone ? BackbonePtrLocked() : ResourceFor(e.node);
      if (r != nullptr) r->stats.rejections++;
    }
  }
  // Drop the epoch's copies: the next epoch re-snapshots the merged state.
  shard->log_.clear();
  shard->nodes_.clear();
  shard->backbone_ = Resource{/*cap=*/{}, {}, {}};
  shard->backbone_copied_ = false;
}

CongestionState::ResourceStats CongestionState::NodeStats(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Resource* r = FindResource(node);
  return r == nullptr ? ResourceStats{} : r->stats;
}

CongestionState::ResourceStats CongestionState::BackboneStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backbone_.stats;
}

std::map<uint32_t, uint64_t> CongestionState::NodeTenantOps(
    NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<uint32_t, uint64_t> out;
  const Resource* r = FindResource(node);
  if (r == nullptr) return out;
  for (const auto& [tenant, lane] : r->lanes) out[tenant] = lane.ops;
  return out;
}

uint64_t CongestionState::total_queue_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = backbone_.stats.queue_ns;
  for (const auto& [id, r] : nodes_) total += r.stats.queue_ns;
  return total;
}

uint64_t CongestionState::total_rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = backbone_.stats.rejections;
  for (const auto& [id, r] : nodes_) total += r.stats.rejections;
  return total;
}

void CongestionState::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, r] : nodes_) {
    r.stats = ResourceStats{};
    r.lanes.clear();
  }
  backbone_.stats = ResourceStats{};
  backbone_.lanes.clear();
}

}  // namespace disagg
