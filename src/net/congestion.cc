#include "net/congestion.h"

#include <algorithm>

#include "net/partition.h"

namespace disagg {

CongestionState::CongestionState(CongestionConfig config)
    : config_(std::move(config)) {
  auto table = std::make_shared<ControlTable>();
  table->sfq = config_.wfq_enabled();
  table->default_weight = config_.default_weight;
  for (const auto& [tenant, w] : config_.tenant_weights) {
    table->tenants[tenant].weight = w;
  }
  controls_current_ = std::move(table);
  controls_snapshot_.store(controls_current_.get(), std::memory_order_release);
}

void CongestionState::UpdateTenantControls(
    const std::map<uint32_t, TenantControl>& controls) {
  auto table = std::make_shared<ControlTable>();
  table->sfq = config_.wfq_enabled();
  table->default_weight = config_.default_weight;
  table->tenants = controls;
  std::lock_guard<std::mutex> lock(mu_);
  controls_retired_.push_back(std::move(controls_current_));
  controls_current_ = std::move(table);
  controls_snapshot_.store(controls_current_.get(), std::memory_order_release);
}

TenantControl CongestionState::ControlFor(uint32_t tenant) const {
  const ControlTable& ct = controls();
  auto it = ct.tenants.find(tenant);
  if (it != ct.tenants.end()) return it->second;
  return TenantControl{ct.default_weight, 0};
}

uint64_t CongestionState::AdmitOneFifo(Resource* r, uint64_t t,
                                       uint64_t bytes) {
  const uint64_t service = r->cap.ServiceNs(bytes);
  const uint64_t start = std::max(t, r->stats.free_ns);
  r->stats.free_ns = start + service;
  r->stats.ops++;
  r->stats.bytes += bytes;
  r->stats.busy_ns += service;
  r->stats.queue_ns += start - t;
  return start;
}

uint64_t CongestionState::AdmitOneSfq(const ControlTable& ct, Resource* r,
                                      uint32_t tenant, uint64_t t,
                                      uint64_t bytes) const {
  const uint64_t service = r->cap.ServiceNs(bytes);
  const double w = ct.WeightFor(tenant);

  // Fluid-server share at this instant: tenants whose lane is still draining
  // at the op's arrival are active; the lone-tenant case degenerates to
  // active == w, a stretch of exactly `service`, and FIFO arithmetic.
  double active = w;
  for (const auto& [id, lane] : r->lanes) {
    if (id != tenant && lane.free_ns > t) active += ct.WeightFor(id);
  }

  Lane& lane = r->lanes[tenant];
  const uint64_t start = std::max(t, lane.free_ns);
  const uint64_t stretch = static_cast<uint64_t>(
      static_cast<double>(service) * (active / w));
  lane.free_ns = start + stretch;
  lane.ops++;

  // The op's fluid completion is its lane's finish time; everything beyond
  // its bare service time was spent sharing the pipe, i.e. queueing. Report
  // `virtual_start = completion - service` so the caller's cut-through
  // cascade and delay arithmetic are identical to the FIFO discipline.
  const uint64_t virtual_start = lane.free_ns - service;
  r->stats.ops++;
  r->stats.bytes += bytes;
  r->stats.busy_ns += service;
  r->stats.queue_ns += virtual_start - t;
  if (lane.free_ns > r->stats.free_ns) r->stats.free_ns = lane.free_ns;
  return virtual_start;
}

uint64_t CongestionState::AdmitOneEdf(Resource* r, uint64_t t, uint64_t bytes,
                                      uint64_t eff_deadline_ns) {
  const uint64_t service = r->cap.ServiceNs(bytes);
  EdfQueue& q = r->edf;

  // Drain the virtual time elapsed since the last admission from the
  // earliest-deadline buckets: that is the work the fluid server completed.
  if (t > q.drained_to) {
    uint64_t elapsed = t - q.drained_to;
    q.drained_to = t;
    while (elapsed > 0 && !q.pending.empty()) {
      auto it = q.pending.begin();
      const uint64_t take = std::min(elapsed, it->second);
      it->second -= take;
      elapsed -= take;
      if (it->second == 0) q.pending.erase(it);
    }
  }

  // The op waits behind every pending byte with a deadline at or before its
  // own (ties serve in admission order); later-deadline work is preempted.
  uint64_t wait = 0;
  for (const auto& [d, rem] : q.pending) {
    if (d > eff_deadline_ns) break;
    wait += rem;
  }
  q.pending[eff_deadline_ns] += service;

  const uint64_t start = t + wait;
  uint64_t total_pending = 0;
  for (const auto& [d, rem] : q.pending) total_pending += rem;
  r->stats.free_ns = q.drained_to + total_pending;
  r->stats.ops++;
  r->stats.bytes += bytes;
  r->stats.busy_ns += service;
  r->stats.queue_ns += wait;
  return start;
}

uint64_t CongestionState::BacklogAt(const ControlTable& ct, const Resource& r,
                                    uint32_t tenant, uint64_t t,
                                    uint64_t eff_deadline_ns) const {
  if (r.cap.unlimited()) return 0;
  if (config_.edf_enabled()) {
    // Mirror of AdmitOneEdf without mutation: pending work at or before the
    // op's deadline, minus whatever the fluid server drained since the last
    // admission (drain is deadline-ordered, so it comes off this sum first).
    const EdfQueue& q = r.edf;
    uint64_t ahead = 0;
    for (const auto& [d, rem] : q.pending) {
      if (d > eff_deadline_ns) break;
      ahead += rem;
    }
    const uint64_t drained = t > q.drained_to ? t - q.drained_to : 0;
    return ahead > drained ? ahead - drained : 0;
  }
  if (!ct.sfq) {
    return r.stats.free_ns > t ? r.stats.free_ns - t : 0;
  }
  // SFQ: the wait an op would be charged is its own lane's drain time — a
  // light tenant is admitted even while a heavy tenant's lane is deep.
  auto it = r.lanes.find(tenant);
  if (it == r.lanes.end()) return 0;
  return it->second.free_ns > t ? it->second.free_ns - t : 0;
}

CongestionState::Resource* CongestionState::ResourceFor(NodeId node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    auto cit = config_.node_caps.find(node);
    const ResourceCapacity cap =
        cit == config_.node_caps.end() ? config_.default_node : cit->second;
    it = nodes_.emplace(node, Resource{cap, {}, {}, {}}).first;
  }
  return &it->second;
}

const CongestionState::Resource* CongestionState::FindResource(
    NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

CongestionState::Resource* CongestionState::BackbonePtrLocked() {
  if (config_.backbone.unlimited()) return nullptr;
  if (!backbone_init_) {
    backbone_.cap = config_.backbone;
    backbone_init_ = true;
  }
  return &backbone_;
}

int CongestionState::TryAdmitOn(const ControlTable& ct, const Resource* link,
                                const Resource* backbone, uint32_t tenant,
                                uint64_t arrival_ns,
                                uint64_t deadline_ns) const {
  const uint64_t eff = EffectiveDeadline(arrival_ns, deadline_ns);
  const uint64_t link_bound = ct.BoundFor(tenant, link->cap.max_backlog_ns);
  if (link_bound > 0 &&
      BacklogAt(ct, *link, tenant, arrival_ns, eff) > link_bound) {
    return 1;
  }
  if (backbone != nullptr) {
    const uint64_t bb_bound =
        ct.BoundFor(tenant, backbone->cap.max_backlog_ns);
    if (bb_bound > 0 &&
        BacklogAt(ct, *backbone, tenant, arrival_ns, eff) > bb_bound) {
      return 2;
    }
  }
  return 0;
}

uint64_t CongestionState::AdmitOn(const ControlTable& ct, Resource* link,
                                  Resource* backbone, uint32_t tenant,
                                  uint64_t arrival_ns, uint64_t bytes,
                                  uint64_t deadline_ns) const {
  const bool edf = config_.edf_enabled();
  // The deadline is absolute, so both resources rank the op by the same
  // effective value even though it reaches the backbone later.
  const uint64_t eff = EffectiveDeadline(arrival_ns, deadline_ns);

  // The op transits its target node's link, then the shared backbone
  // (cut-through: it is admitted to the backbone as soon as it starts
  // service on the link, so an idle pair of resources adds zero delay).
  uint64_t t = arrival_ns;

  if (!link->cap.unlimited()) {
    t = edf      ? AdmitOneEdf(link, t, bytes, eff)
        : ct.sfq ? AdmitOneSfq(ct, link, tenant, t, bytes)
                 : AdmitOneFifo(link, t, bytes);
  }

  if (backbone != nullptr) {
    t = edf      ? AdmitOneEdf(backbone, t, bytes, eff)
        : ct.sfq ? AdmitOneSfq(ct, backbone, tenant, t, bytes)
                 : AdmitOneFifo(backbone, t, bytes);
  }

  return t - arrival_ns;
}

bool CongestionState::TryAdmit(NodeId node, uint32_t tenant,
                               uint64_t arrival_ns, uint64_t deadline_ns) {
  if (PartitionEffects* eff = CurrentPartitionEffects()) {
    return eff->ShardFor(this)->TryAdmit(node, tenant, arrival_ns,
                                         deadline_ns);
  }
  return TryAdmitAuthoritative(node, tenant, arrival_ns, deadline_ns);
}

bool CongestionState::TryAdmitAuthoritative(NodeId node, uint32_t tenant,
                                            uint64_t arrival_ns,
                                            uint64_t deadline_ns) {
  const ControlTable& ct = controls();
  std::lock_guard<std::mutex> lock(mu_);
  Resource* link = ResourceFor(node);
  Resource* backbone = BackbonePtrLocked();
  switch (TryAdmitOn(ct, link, backbone, tenant, arrival_ns, deadline_ns)) {
    case 1:
      link->stats.rejections++;
      return false;
    case 2:
      backbone->stats.rejections++;
      return false;
    default:
      return true;
  }
}

uint64_t CongestionState::Admit(NodeId node, uint32_t tenant,
                                uint64_t arrival_ns, uint64_t bytes,
                                uint64_t deadline_ns) {
  if (PartitionEffects* eff = CurrentPartitionEffects()) {
    return eff->ShardFor(this)->Admit(node, tenant, arrival_ns, bytes,
                                      deadline_ns);
  }
  return AdmitAuthoritative(node, tenant, arrival_ns, bytes, deadline_ns);
}

uint64_t CongestionState::AdmitAuthoritative(NodeId node, uint32_t tenant,
                                             uint64_t arrival_ns,
                                             uint64_t bytes,
                                             uint64_t deadline_ns) {
  const ControlTable& ct = controls();
  std::lock_guard<std::mutex> lock(mu_);
  return AdmitOn(ct, ResourceFor(node), BackbonePtrLocked(), tenant,
                 arrival_ns, bytes, deadline_ns);
}

uint64_t CongestionState::BacklogEstimate(NodeId node, uint32_t tenant,
                                          uint64_t arrival_ns,
                                          uint64_t deadline_ns) {
  if (PartitionEffects* eff = CurrentPartitionEffects()) {
    return eff->ShardFor(this)->BacklogEstimate(node, tenant, arrival_ns,
                                                deadline_ns);
  }
  const ControlTable& ct = controls();
  std::lock_guard<std::mutex> lock(mu_);
  const Resource* r = ResourceFor(node);
  return BacklogAt(ct, *r, tenant, arrival_ns,
                   EffectiveDeadline(arrival_ns, deadline_ns));
}

CongestionState::Resource* CongestionState::Shard::LocalFor(NodeId node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    std::lock_guard<std::mutex> lock(owner_->mu_);
    it = nodes_.emplace(node, *owner_->ResourceFor(node)).first;
  }
  return &it->second;
}

CongestionState::Resource* CongestionState::Shard::LocalBackbone() {
  if (owner_->config_.backbone.unlimited()) return nullptr;
  if (!backbone_copied_) {
    std::lock_guard<std::mutex> lock(owner_->mu_);
    backbone_ = *owner_->BackbonePtrLocked();
    backbone_copied_ = true;
  }
  return &backbone_;
}

bool CongestionState::Shard::TryAdmit(NodeId node, uint32_t tenant,
                                      uint64_t arrival_ns,
                                      uint64_t deadline_ns) {
  const ControlTable& ct = owner_->controls();
  Resource* link = LocalFor(node);
  Resource* backbone = LocalBackbone();
  const int rej =
      owner_->TryAdmitOn(ct, link, backbone, tenant, arrival_ns, deadline_ns);
  if (rej == 0) return true;
  // Local scratch counter (kept coherent for BacklogAt reads); the
  // authoritative counter is bumped when the logged event replays.
  (rej == 1 ? link : backbone)->stats.rejections++;
  log_.push_back(Event{Event::kReject, rej == 2, node, tenant, arrival_ns, 0,
                       deadline_ns});
  return false;
}

uint64_t CongestionState::Shard::Admit(NodeId node, uint32_t tenant,
                                       uint64_t arrival_ns, uint64_t bytes,
                                       uint64_t deadline_ns) {
  const ControlTable& ct = owner_->controls();
  Resource* link = LocalFor(node);
  Resource* backbone = LocalBackbone();
  log_.push_back(Event{Event::kAdmit, false, node, tenant, arrival_ns, bytes,
                       deadline_ns});
  return owner_->AdmitOn(ct, link, backbone, tenant, arrival_ns, bytes,
                         deadline_ns);
}

uint64_t CongestionState::Shard::BacklogEstimate(NodeId node, uint32_t tenant,
                                                 uint64_t arrival_ns,
                                                 uint64_t deadline_ns) {
  const ControlTable& ct = owner_->controls();
  const Resource* r = LocalFor(node);
  return owner_->BacklogAt(
      ct, *r, tenant, arrival_ns,
      owner_->EffectiveDeadline(arrival_ns, deadline_ns));
}

void CongestionState::MergeShard(Shard* shard) {
  const ControlTable& ct = controls();
  std::lock_guard<std::mutex> lock(mu_);
  for (const Shard::Event& e : shard->log_) {
    if (e.kind == Shard::Event::kAdmit) {
      AdmitOn(ct, ResourceFor(e.node), BackbonePtrLocked(), e.tenant,
              e.arrival_ns, e.bytes, e.deadline_ns);
    } else {
      Resource* r = e.backbone ? BackbonePtrLocked() : ResourceFor(e.node);
      if (r != nullptr) r->stats.rejections++;
    }
  }
  // Drop the epoch's copies: the next epoch re-snapshots the merged state.
  shard->log_.clear();
  shard->nodes_.clear();
  shard->backbone_ = Resource{/*cap=*/{}, {}, {}, {}};
  shard->backbone_copied_ = false;
}

CongestionState::ResourceStats CongestionState::NodeStats(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Resource* r = FindResource(node);
  return r == nullptr ? ResourceStats{} : r->stats;
}

CongestionState::ResourceStats CongestionState::BackboneStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backbone_.stats;
}

std::map<uint32_t, uint64_t> CongestionState::NodeTenantOps(
    NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<uint32_t, uint64_t> out;
  const Resource* r = FindResource(node);
  if (r == nullptr) return out;
  for (const auto& [tenant, lane] : r->lanes) out[tenant] = lane.ops;
  return out;
}

uint64_t CongestionState::total_queue_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = backbone_.stats.queue_ns;
  for (const auto& [id, r] : nodes_) total += r.stats.queue_ns;
  return total;
}

uint64_t CongestionState::total_rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = backbone_.stats.rejections;
  for (const auto& [id, r] : nodes_) total += r.stats.rejections;
  return total;
}

void CongestionState::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, r] : nodes_) {
    r.stats = ResourceStats{};
    r.lanes.clear();
    r.edf = EdfQueue{};
  }
  backbone_.stats = ResourceStats{};
  backbone_.lanes.clear();
  backbone_.edf = EdfQueue{};
}

}  // namespace disagg
