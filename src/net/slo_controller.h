#ifndef DISAGG_NET_SLO_CONTROLLER_H_
#define DISAGG_NET_SLO_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "net/fabric.h"

namespace disagg {

/// Degrade-ladder actuation seam: anything owning a per-tenant staleness
/// bound (the `RowEngine` degrade ladder in src/core) implements this so the
/// SLO controller can loosen it for a tenant that cannot meet its target any
/// other way — without src/net depending on engine headers.
class StalenessActuator {
 public:
  virtual ~StalenessActuator() = default;
  virtual void SetTenantStaleness(uint32_t tenant,
                                  uint64_t max_staleness_lsn) = 0;
};

/// Multi-tenant SLO control plane.
///
/// Tenants declare p99 latency targets on the fabric (`Fabric::DeclareSlo`).
/// The load drivers feed the controller one observation per completed op and
/// call `EndEpoch` at every virtual-time epoch barrier (serial driver) /
/// epoch merge point (parallel driver). Each epoch the controller compares
/// every declared tenant's observed p99 against its target and steers three
/// actuators, in escalation order:
///
///   1. WFQ weight (`TenantControl::weight`): a missing tenant's share of
///      every constrained resource is raised multiplicatively (damped by
///      `gain`, at most doubling per epoch); a tenant comfortably beating
///      its target returns headroom. No effect unless the congestion config
///      enabled SFQ (`tenant_weights` non-empty).
///   2. Admission bound (`TenantControl::max_backlog_ns`): seeded at
///      `backlog_fraction x target`; tightened while missing (ops that would
///      queue past the bound are refused `Busy` instead of blowing the
///      tail), relaxed while meeting. The bound never leaves
///      `[backlog_min_fraction, backlog_max_fraction] x target`.
///   3. Staleness (`DegradePolicy` per-tenant bound, via registered
///      `StalenessActuator`s): the last resort — only stepped up when both
///      the weight and the admission bound are already saturated.
///
/// A tenant whose observed/target ratio lands in the deadband
/// `[deadband_lo, 1.0]` is *meeting*: no actuator moves, which makes the
/// deadband the controller's fixed point under stationary load. Steps are
/// proportional to the miss, so they vanish near the deadband edges — the
/// loop converges instead of hunting.
///
/// Infeasibility: a tenant that keeps missing for `infeasible_epochs`
/// consecutive epochs with every actuator saturated is flagged infeasible
/// and its actuation is FROZEN at the saturated values — the declared SLO
/// set is reported as impossible rather than oscillated around.
///
/// Determinism: actuation happens only inside `EndEpoch`, which both
/// drivers call at epoch barriers while no ops are in flight. The parallel
/// driver accumulates per-partition `Sample`s and ingests them in
/// partition-id order; `Sample::Merge` is commutative and associative over
/// that order, so the controller's inputs — and therefore every decision —
/// are bit-identical at any thread count.
class SloController {
 public:
  struct Options {
    /// Minimum per-tenant latency samples in an epoch before the controller
    /// will steer that tenant (thin evidence holds the actuators).
    uint64_t min_samples = 16;
    /// Damping of the multiplicative weight step (factor = 1 + gain*excess).
    double gain = 0.4;
    /// Lower edge of the meeting deadband (observed/target in
    /// [deadband_lo, 1] = meeting, hold actuators).
    double deadband_lo = 0.80;
    double min_weight = 0.125;
    double max_weight = 64.0;
    /// Consecutive no-change epochs before a tenant counts as converged.
    uint32_t converge_epochs = 3;
    /// Consecutive saturated-and-missing epochs before the infeasible flag.
    uint32_t infeasible_epochs = 4;
    /// Admission-bound actuation (disable to run weight/staleness only).
    bool actuate_admission = true;
    double backlog_fraction = 1.0;      ///< initial bound = fraction*target
    double backlog_min_fraction = 0.25; ///< tightening floor
    double backlog_max_fraction = 4.0;  ///< relaxation ceiling
    /// Staleness actuation step / cap (LSNs of allowed staleness).
    uint64_t staleness_step_lsn = 16;
    uint64_t staleness_max_lsn = 1024;
  };

  SloController(Fabric* fabric, Options opts);

  /// Registers a degrade ladder the controller may loosen per tenant. The
  /// target's engine-wide `DegradePolicy` must already be enabled by the
  /// operator; the controller only moves the per-tenant bound.
  void AddDegradeTarget(StalenessActuator* target);

  /// Per-tenant observations accumulated over one epoch. Additive and
  /// commutative so partition ingestion order cannot affect decisions.
  struct Sample {
    uint64_t ops = 0;   ///< all completed attempts
    uint64_t ok = 0;    ///< successful ops (the latency population)
    uint64_t busy = 0;  ///< admission refusals (excluded from latency)
    uint64_t err = 0;   ///< other failures (excluded from latency)
    Histogram latency;

    void Add(uint64_t latency_ns, const Status& st);
    void Merge(const Sample& other);
  };
  using EpochObservations = std::map<uint32_t, Sample>;

  /// One completed-op observation (serial driver feed).
  void Observe(uint32_t tenant, uint64_t latency_ns, const Status& st);

  /// Bulk feed: merges one partition's epoch of observations (parallel
  /// driver, called at the barrier in partition-id order).
  void Ingest(const EpochObservations& obs);

  /// Closes the control epoch ending at `epoch_end_ns`: runs the feedback
  /// step over the epoch's observations, publishes any changed tenant
  /// controls to the fabric's congestion state and staleness targets, and
  /// clears the observation buffer. Must be called with no ops in flight.
  void EndEpoch(uint64_t epoch_end_ns);

  /// Controller-visible state of one tenant.
  struct TenantState {
    SloSpec spec;
    double weight = 1.0;
    uint64_t backlog_bound_ns = 0;    ///< 0 = not actuating admission
    uint64_t staleness_bound_lsn = 0;
    double observed_p99_ns = 0.0;     ///< last epoch with enough samples
    uint64_t epoch_ops = 0;           ///< ops seen in that epoch
    uint64_t epoch_busy = 0;          ///< refusals in that epoch
    bool meeting = false;
    uint32_t stable_epochs = 0;       ///< consecutive epochs w/o actuation
    uint32_t saturated_epochs = 0;    ///< consecutive saturated misses
    bool infeasible = false;
  };

  TenantState StateFor(uint32_t tenant) const;
  /// Every declared tenant is either in the deadband long enough to count
  /// as converged, pinned at an actuator clamp, or flagged infeasible.
  bool AllConverged() const;
  bool AnyInfeasible() const;
  uint64_t epochs() const { return epochs_; }

  /// One line per tenant: target, observed, actuators, flags.
  std::string ToString() const;

 private:
  TenantState& EnsureTenant(uint32_t tenant, const SloSpec& spec);
  void PublishControls();

  Fabric* const fabric_;
  const Options opts_;
  std::vector<StalenessActuator*> degrade_targets_;
  EpochObservations obs_;
  std::map<uint32_t, TenantState> tenants_;
  uint64_t epochs_ = 0;
  bool staleness_dirty_ = false;
};

}  // namespace disagg

#endif  // DISAGG_NET_SLO_CONTROLLER_H_
