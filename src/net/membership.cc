#include "net/membership.h"

#include <algorithm>
#include <sstream>

#include "common/coding.h"
#include "net/interceptors.h"

namespace disagg {

namespace {

/// Deterministic nonzero op tag for a heartbeat probe: keyed fault policies
/// (`key_by_op_tag`) then draw per-probe, not per-sequence-slot, so probe
/// outcomes replay regardless of how much data traffic interleaves.
uint64_t ProbeTag(NodeId node, uint64_t probe_seq) {
  uint64_t tag = 0x4D454D4245525348ull;  // "MEMBERSH"
  tag ^= (static_cast<uint64_t>(node) + 1) * 0x9E3779B97F4A7C15ull;
  tag ^= (probe_seq + 1) * 0xC2B2AE3D27D4EB4Full;
  return tag == 0 ? 1 : tag;
}

}  // namespace

MembershipService::MembershipService(Fabric* fabric, MembershipOptions opts)
    : fabric_(fabric), opts_(opts) {}

void MembershipService::Monitor(NodeId node) {
  Node* n = fabric_->node(node);
  n->RegisterHandler(
      membership::kPingMethod,
      [](Slice request, std::string* response, RpcServerContext* server_ctx) {
        server_ctx->ChargeCompute(membership::kPingComputeNs);
        response->assign(request.data(), request.size());  // echo
        return Status::OK();
      });
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.emplace(node, NodeState{});
}

void MembershipService::OnRepair(NodeId node, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_[node].on_repair = std::move(fn);
}

void MembershipService::OnRevoke(NodeId node, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_[node].on_revoke = std::move(fn);
}

void MembershipService::OnRejoin(NodeId node, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_[node].on_rejoin = std::move(fn);
}

void MembershipService::ResetBreakerOnRejoin(
    CircuitBreakerInterceptor* breaker) {
  std::lock_guard<std::mutex> lock(mu_);
  breakers_.push_back(breaker);
}

void MembershipService::At(uint64_t at_ns, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  ScheduledAction action;
  action.at_ns = at_ns;
  action.seq = action_seq_++;
  action.fn = std::move(fn);
  auto pos = std::upper_bound(
      actions_.begin(), actions_.end(), action,
      [](const ScheduledAction& a, const ScheduledAction& b) {
        return a.at_ns != b.at_ns ? a.at_ns < b.at_ns : a.seq < b.seq;
      });
  actions_.insert(pos, std::move(action));
}

void MembershipService::EndEpoch(uint64_t epoch_end_ns) {
  std::unique_lock<std::mutex> lock(mu_);

  // 1. Scheduled actions due at this barrier, in (at_ns, registration)
  //    order. Run unlocked: kills/revives touch node + executor state.
  while (!actions_.empty() && actions_.front().at_ns <= epoch_end_ns) {
    std::function<void()> fn = std::move(actions_.front().fn);
    actions_.erase(actions_.begin());
    lock.unlock();
    fn();
    lock.lock();
  }

  // 2. Per node, ascending id (the merge order every shard-merging control
  //    plane in this repo uses): due repairs, then the due heartbeat round.
  for (auto& [id, st] : nodes_) {
    if (st.health == NodeHealth::kRevoked) {
      if (st.repair_due_ns == 0 || epoch_end_ns < st.repair_due_ns) continue;
      st.repair_due_ns = 0;
      st.health = NodeHealth::kRejoining;
      st.alive_probes = 0;
      events_.push_back(
          {epoch_end_ns, id, Event::Kind::kRepair, st.lease_epoch});
      stats_.repairs++;
      // Once per lease epoch: replaying a barrier (or a second timer for
      // the same revocation) must not re-run the recovery action.
      std::function<void()> hook;
      if (opts_.auto_recover && st.on_repair &&
          st.repaired_epoch != st.lease_epoch) {
        st.repaired_epoch = st.lease_epoch;
        hook = st.on_repair;
      }
      std::vector<CircuitBreakerInterceptor*> breakers = breakers_;
      lock.unlock();
      // Breakers reset as probation opens, not after it: an open breaker
      // would fast-fail the very probes that prove the repair worked, and
      // the node could never heal.
      for (CircuitBreakerInterceptor* breaker : breakers) {
        breaker->ResetNode(id);
      }
      if (hook) hook();
      lock.lock();
      // Fall through: the freshly repaired node starts probation at this
      // same barrier.
    }
    if (epoch_end_ns < st.next_hb_ns) continue;
    st.next_hb_ns = epoch_end_ns + opts_.heartbeat_period_ns;
    HeartbeatLocked(id, &st, epoch_end_ns, &lock);
  }
}

void MembershipService::AdvanceTo(uint64_t now_ns) {
  uint64_t period;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-entrancy guard: a caller may pump AdvanceTo from inside the op
    // pipeline (chaos does), and our own heartbeat probes traverse that
    // same pipeline — the nested pump must observe "already advancing"
    // and fall straight through.
    if (advancing_) return;
    advancing_ = true;
    period = opts_.heartbeat_period_ns;
  }
  // Impose the same barrier structure serial loops get from the drivers:
  // one step per period boundary. The set of instants is a pure function
  // of the caller's (monotone) clock, so chaos replays are bit-identical.
  for (;;) {
    uint64_t step_ns;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (advanced_to_ns_ + period > now_ns) {
        advancing_ = false;
        return;
      }
      advanced_to_ns_ += period;
      step_ns = advanced_to_ns_;
    }
    EndEpoch(step_ns);
  }
}

void MembershipService::HeartbeatLocked(NodeId id, NodeState* st,
                                        uint64_t now_ns,
                                        std::unique_lock<std::mutex>* lock) {
  st->probe_seq++;
  NetContext ctx;
  ctx.sim_ns = now_ns;
  ctx.op_tag = ProbeTag(id, st->probe_seq);
  // A probe slower than one period is a miss by definition; the deadline
  // also caps retry-style amplification if callers stack interceptors.
  ctx.deadline_ns = now_ns + opts_.heartbeat_period_ns;
  std::string request, response;
  PutFixed64(&request, st->probe_seq);

  lock->unlock();
  const Status pst =
      fabric_->Call(&ctx, id, membership::kPingMethod, request, &response);
  lock->lock();

  stats_.heartbeats++;
  const uint64_t rtt = ctx.sim_ns - now_ns;
  AccumulateTraffic(&charge_, ctx);
  charge_.sim_ns += rtt;

  bool alive = false;
  if (pst.ok()) {
    if (st->rtt_ewma > 0.0 &&
        static_cast<double>(rtt) >
            opts_.gray_rtt_factor * st->rtt_ewma) {
      // Gray: answered, but far outside its own baseline. Suspicion grows
      // slowly (half a miss by default) and the baseline stays frozen so
      // the slowdown cannot normalize itself.
      st->suspicion += opts_.gray_increment;
      stats_.gray_acks++;
    } else {
      alive = true;
      st->suspicion *= opts_.healthy_decay;
      st->rtt_ewma =
          st->rtt_ewma == 0.0
              ? static_cast<double>(rtt)
              : opts_.rtt_alpha * static_cast<double>(rtt) +
                    (1.0 - opts_.rtt_alpha) * st->rtt_ewma;
    }
  } else if (pst.IsBusy()) {
    // Admission rejection: the node is alive and shedding load. Decays
    // suspicion, never updates the RTT baseline, never counts as a miss —
    // overload must not amputate fleet members.
    alive = true;
    st->suspicion *= opts_.healthy_decay;
    stats_.busy_acks++;
  } else {
    // Unavailable / TimedOut / anything else: a hard miss.
    st->suspicion += opts_.miss_increment;
    stats_.misses++;
  }

  if (alive && st->suspicion < 0.5 * opts_.suspicion_threshold) {
    st->suspected = false;
  }

  if (st->health == NodeHealth::kUp) {
    if (!st->suspected && st->suspicion >= 0.5 * opts_.suspicion_threshold) {
      st->suspected = true;
      events_.push_back({now_ns, id, Event::Kind::kSuspect, st->lease_epoch});
    }
    if (st->suspicion >= opts_.suspicion_threshold) {
      RevokeLocked(id, st, now_ns, lock);
    }
  } else if (st->health == NodeHealth::kRejoining) {
    if (alive) {
      if (++st->alive_probes >= opts_.rejoin_probes) {
        RejoinLocked(id, st, now_ns, lock);
      }
    } else {
      st->alive_probes = 0;  // probation restarts on any non-alive signal
    }
  }
}

void MembershipService::RevokeLocked(NodeId id, NodeState* st,
                                     uint64_t now_ns,
                                     std::unique_lock<std::mutex>* lock) {
  st->health = NodeHealth::kRevoked;
  st->lease_epoch++;
  st->suspected = false;
  st->repair_due_ns = now_ns + opts_.repair_delay_ns;
  events_.push_back({now_ns, id, Event::Kind::kRevoke, st->lease_epoch});
  stats_.revocations++;
  // The revoke hook is the fence (log reseal, writer fencing) and always
  // runs; repair — the recovery half — is gated on auto_recover.
  if (st->on_revoke) {
    std::function<void()> hook = st->on_revoke;
    lock->unlock();
    hook();
    lock->lock();
  }
}

void MembershipService::RejoinLocked(NodeId id, NodeState* st,
                                     uint64_t now_ns,
                                     std::unique_lock<std::mutex>* lock) {
  st->health = NodeHealth::kUp;
  st->suspicion = 0.0;
  st->alive_probes = 0;
  st->rtt_ewma = 0.0;  // new incarnation, new baseline
  events_.push_back({now_ns, id, Event::Kind::kRejoin, st->lease_epoch});
  stats_.rejoins++;
  std::vector<CircuitBreakerInterceptor*> breakers = breakers_;
  std::function<void()> hook = st->on_rejoin;
  lock->unlock();
  // The failed incarnation's error history must not fast-fail the
  // replacement: reset per-node breaker state.
  for (CircuitBreakerInterceptor* breaker : breakers) breaker->ResetNode(id);
  if (hook) hook();
  lock->lock();
}

uint64_t MembershipService::LeaseEpoch(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.lease_epoch;
}

bool MembershipService::LeaseValid(NodeId node, uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return true;  // unmonitored: never fenced
  return it->second.health != NodeHealth::kRevoked &&
         epoch == it->second.lease_epoch;
}

MembershipService::NodeHealth MembershipService::HealthFor(
    NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  return it == nodes_.end() ? NodeHealth::kUp : it->second.health;
}

double MembershipService::SuspicionFor(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  return it == nodes_.end() ? 0.0 : it->second.suspicion;
}

MembershipService::Stats MembershipService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string MembershipService::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [id, st] : nodes_) {
    os << "node " << id << ": "
       << (st.health == NodeHealth::kUp
               ? "UP"
               : st.health == NodeHealth::kRevoked ? "REVOKED" : "REJOINING")
       << " lease=" << st.lease_epoch << " suspicion=" << st.suspicion
       << " ewma=" << static_cast<uint64_t>(st.rtt_ewma) << "ns probes="
       << st.probe_seq << "\n";
  }
  os << "heartbeats=" << stats_.heartbeats << " misses=" << stats_.misses
     << " gray=" << stats_.gray_acks << " busy=" << stats_.busy_acks
     << " revocations=" << stats_.revocations << " repairs=" << stats_.repairs
     << " rejoins=" << stats_.rejoins << "\n";
  return os.str();
}

}  // namespace disagg
