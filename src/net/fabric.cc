#include "net/fabric.h"

#include <atomic>
#include <cstring>

namespace disagg {

MemoryRegion* Node::AddRegion(const std::string& name, size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = static_cast<uint32_t>(regions_.size());
  regions_.push_back(std::make_unique<MemoryRegion>(id, name, size));
  return regions_.back().get();
}

MemoryRegion* Node::region(uint32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= regions_.size()) return nullptr;
  return regions_[id].get();
}

const MemoryRegion* Node::region(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= regions_.size()) return nullptr;
  return regions_[id].get();
}

void Node::RegisterHandler(const std::string& method, RpcHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[method] = std::move(handler);
}

const RpcHandler* Node::handler(const std::string& method) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handlers_.find(method);
  return it == handlers_.end() ? nullptr : &it->second;
}

NodeId Fabric::AddNode(const std::string& name, NodeKind kind,
                       InterconnectModel model, uint32_t az) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.empty()) nodes_.push_back(nullptr);  // id 0 = null node
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, name, kind, az, std::move(model)));
  return id;
}

Node* Fabric::node(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= nodes_.size()) return nullptr;
  return nodes_[id].get();
}

const Node* Fabric::node(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= nodes_.size()) return nullptr;
  return nodes_[id].get();
}

Status Fabric::CheckTarget(NodeId id, Node** out) {
  Node* n = node(id);
  if (n == nullptr) return Status::InvalidArgument("no such node");
  if (n->failed()) return Status::Unavailable("node " + n->name() + " failed");
  *out = n;
  return Status::OK();
}

Status Fabric::Read(NetContext* ctx, GlobalAddr src, void* dst, size_t n) {
  Node* target = nullptr;
  DISAGG_RETURN_NOT_OK(CheckTarget(src.node, &target));
  MemoryRegion* mr = target->region(src.region);
  if (mr == nullptr || !mr->Contains(src.offset, n)) {
    return Status::InvalidArgument("read out of region bounds");
  }
  std::memcpy(dst, mr->data() + src.offset, n);
  ctx->Charge(target->model().ReadCost(n));
  ctx->bytes_in += n;
  ctx->round_trips++;
  return Status::OK();
}

Status Fabric::Write(NetContext* ctx, GlobalAddr dst, const void* src,
                     size_t n) {
  Node* target = nullptr;
  DISAGG_RETURN_NOT_OK(CheckTarget(dst.node, &target));
  MemoryRegion* mr = target->region(dst.region);
  if (mr == nullptr || !mr->Contains(dst.offset, n)) {
    return Status::InvalidArgument("write out of region bounds");
  }
  std::memcpy(mr->data() + dst.offset, src, n);
  ctx->Charge(target->model().WriteCost(n));
  ctx->bytes_out += n;
  ctx->round_trips++;
  return Status::OK();
}

Result<uint64_t> Fabric::CompareAndSwap(NetContext* ctx, GlobalAddr addr,
                                        uint64_t expected, uint64_t desired) {
  Node* target = nullptr;
  Status st = CheckTarget(addr.node, &target);
  if (!st.ok()) return st;
  MemoryRegion* mr = target->region(addr.region);
  if (mr == nullptr || !mr->Contains(addr.offset, 8) ||
      (addr.offset % 8) != 0) {
    return Status::InvalidArgument("CAS requires an aligned 8-byte word");
  }
  auto* word =
      reinterpret_cast<std::atomic<uint64_t>*>(mr->data() + addr.offset);
  uint64_t observed = expected;
  word->compare_exchange_strong(observed, desired, std::memory_order_acq_rel);
  ctx->Charge(target->model().AtomicCost());
  ctx->bytes_out += 16;
  ctx->bytes_in += 8;
  ctx->round_trips++;
  return observed;
}

Result<uint64_t> Fabric::FetchAdd(NetContext* ctx, GlobalAddr addr,
                                  uint64_t delta) {
  Node* target = nullptr;
  Status st = CheckTarget(addr.node, &target);
  if (!st.ok()) return st;
  MemoryRegion* mr = target->region(addr.region);
  if (mr == nullptr || !mr->Contains(addr.offset, 8) ||
      (addr.offset % 8) != 0) {
    return Status::InvalidArgument("FAA requires an aligned 8-byte word");
  }
  auto* word =
      reinterpret_cast<std::atomic<uint64_t>*>(mr->data() + addr.offset);
  const uint64_t prev = word->fetch_add(delta, std::memory_order_acq_rel);
  ctx->Charge(target->model().AtomicCost());
  ctx->bytes_out += 16;
  ctx->bytes_in += 8;
  ctx->round_trips++;
  return prev;
}

Result<uint64_t> Fabric::ReadAtomic64(NetContext* ctx, GlobalAddr addr) {
  Node* target = nullptr;
  Status st = CheckTarget(addr.node, &target);
  if (!st.ok()) return st;
  MemoryRegion* mr = target->region(addr.region);
  if (mr == nullptr || !mr->Contains(addr.offset, 8) ||
      (addr.offset % 8) != 0) {
    return Status::InvalidArgument("atomic read requires aligned 8 bytes");
  }
  auto* word =
      reinterpret_cast<std::atomic<uint64_t>*>(mr->data() + addr.offset);
  const uint64_t v = word->load(std::memory_order_acquire);
  ctx->Charge(target->model().ReadCost(8));
  ctx->bytes_in += 8;
  ctx->round_trips++;
  return v;
}

Status Fabric::WriteBatch(NetContext* ctx, NodeId node_id,
                          const std::vector<WriteOp>& ops) {
  Node* target = nullptr;
  DISAGG_RETURN_NOT_OK(CheckTarget(node_id, &target));
  size_t total = 0;
  for (const WriteOp& op : ops) {
    MemoryRegion* mr = target->region(op.addr.region);
    if (mr == nullptr || !mr->Contains(op.addr.offset, op.n)) {
      return Status::InvalidArgument("batched write out of region bounds");
    }
    std::memcpy(mr->data() + op.addr.offset, op.src, op.n);
    total += op.n;
  }
  // Doorbell batching: one base latency for the whole batch.
  ctx->Charge(target->model().WriteCost(total));
  ctx->bytes_out += total;
  ctx->round_trips++;
  return Status::OK();
}

Status Fabric::Call(NetContext* ctx, NodeId node_id, const std::string& method,
                    Slice request, std::string* response) {
  Node* target = nullptr;
  DISAGG_RETURN_NOT_OK(CheckTarget(node_id, &target));
  const RpcHandler* h = target->handler(method);
  if (h == nullptr) {
    return Status::NotSupported("no handler for '" + method + "' on " +
                                target->name());
  }
  RpcServerContext server_ctx;
  response->clear();
  Status st = (*h)(request, response, &server_ctx);
  ctx->Charge(target->model().RpcCost(request.size(), response->size()));
  ctx->Charge(static_cast<uint64_t>(
      static_cast<double>(server_ctx.compute_ns) * target->cpu_scale()));
  ctx->bytes_out += request.size();
  ctx->bytes_in += response->size();
  ctx->round_trips++;
  ctx->rpcs++;
  return st;
}

}  // namespace disagg
