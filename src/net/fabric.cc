#include "net/fabric.h"

#include <atomic>
#include <cstring>

namespace disagg {

MemoryRegion* Node::AddRegion(const std::string& name, size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = static_cast<uint32_t>(regions_.size());
  regions_.push_back(std::make_unique<MemoryRegion>(id, name, size));
  num_regions_.store(regions_.size(), std::memory_order_release);
  return regions_.back().get();
}

// The lookups below are on every op's path and lock-free: registration is
// config-time (see Fabric::chain_snapshot_), and the published count is the
// only thing a reader trusts, so a concurrent (unsupported) AddRegion can
// never hand out an uninitialized slot.
MemoryRegion* Node::region(uint32_t id) {
  if (id >= num_regions_.load(std::memory_order_acquire)) return nullptr;
  return regions_[id].get();
}

const MemoryRegion* Node::region(uint32_t id) const {
  if (id >= num_regions_.load(std::memory_order_acquire)) return nullptr;
  return regions_[id].get();
}

void Node::RegisterHandler(const std::string& method, RpcHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[method] = std::move(handler);
}

const RpcHandler* Node::handler(const std::string& method) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handlers_.find(method);
  return it == handlers_.end() ? nullptr : &it->second;
}

NodeId Fabric::AddNode(const std::string& name, NodeKind kind,
                       InterconnectModel model, uint32_t az) {
  std::lock_guard<std::mutex> lock(mu_);
  if (nodes_.empty()) nodes_.push_back(nullptr);  // id 0 = null node
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, name, kind, az, std::move(model)));
  num_nodes_.store(nodes_.size(), std::memory_order_release);
  return id;
}

// Lock-free for the same reason as Node::region(): node registration is
// config-time, and CheckTarget runs this on every single op.
Node* Fabric::node(NodeId id) {
  if (id >= num_nodes_.load(std::memory_order_acquire)) return nullptr;
  return nodes_[id].get();
}

const Node* Fabric::node(NodeId id) const {
  if (id >= num_nodes_.load(std::memory_order_acquire)) return nullptr;
  return nodes_[id].get();
}

Status Fabric::CheckTarget(NodeId id, Node** out) {
  Node* n = node(id);
  if (n == nullptr) return Status::InvalidArgument("no such node");
  if (n->failed()) return Status::Unavailable("node " + n->name() + " failed");
  *out = n;
  return Status::OK();
}

// ---- Interceptor chain ---------------------------------------------------

void Fabric::AddInterceptor(std::shared_ptr<FabricInterceptor> interceptor) {
  std::lock_guard<std::mutex> lock(interceptor_mu_);
  auto chain = interceptors_ ? std::make_shared<InterceptorChain>(*interceptors_)
                             : std::make_shared<InterceptorChain>();
  chain->push_back(std::move(interceptor));
  interceptors_ = std::move(chain);
  chain_snapshot_.store(interceptors_.get(), std::memory_order_release);
}

void Fabric::ClearInterceptors() {
  std::lock_guard<std::mutex> lock(interceptor_mu_);
  interceptors_.reset();
  chain_snapshot_.store(nullptr, std::memory_order_release);
}

size_t Fabric::num_interceptors() const {
  std::lock_guard<std::mutex> lock(interceptor_mu_);
  return interceptors_ ? interceptors_->size() : 0;
}

// ---- Congestion ----------------------------------------------------------

void Fabric::EnableCongestion(CongestionConfig config) {
  std::lock_guard<std::mutex> lock(congestion_mu_);
  congestion_ = std::make_shared<CongestionState>(std::move(config));
  congestion_snapshot_.store(congestion_.get(), std::memory_order_release);
}

void Fabric::DisableCongestion() {
  std::lock_guard<std::mutex> lock(congestion_mu_);
  congestion_.reset();
  congestion_snapshot_.store(nullptr, std::memory_order_release);
}

std::shared_ptr<CongestionState> Fabric::congestion() const {
  std::lock_guard<std::mutex> lock(congestion_mu_);
  return congestion_;
}

void Fabric::DeclareSlo(uint32_t tenant, SloSpec spec) {
  std::lock_guard<std::mutex> lock(slo_mu_);
  slo_specs_[tenant] = spec;
}

void Fabric::RevokeSlo(uint32_t tenant) {
  std::lock_guard<std::mutex> lock(slo_mu_);
  slo_specs_.erase(tenant);
}

std::map<uint32_t, SloSpec> Fabric::slo_specs() const {
  std::lock_guard<std::mutex> lock(slo_mu_);
  return slo_specs_;
}

NodeId Fabric::JoinShortestQueue(const std::vector<NodeId>& candidates,
                                 const NetContext& ctx) const {
  if (candidates.empty()) return 0;
  CongestionState* congestion =
      congestion_snapshot_.load(std::memory_order_acquire);
  if (congestion == nullptr) return candidates.front();
  NodeId best = candidates.front();
  uint64_t best_backlog = congestion->BacklogEstimate(
      best, ctx.tenant, ctx.sim_ns, ctx.deadline_ns);
  for (size_t i = 1; i < candidates.size(); ++i) {
    const uint64_t b = congestion->BacklogEstimate(
        candidates[i], ctx.tenant, ctx.sim_ns, ctx.deadline_ns);
    if (b < best_backlog) {
      best = candidates[i];
      best_backlog = b;
    }
  }
  return best;
}

Status Fabric::Execute(FabricOp* op, NetContext* ctx) {
  op->tenant = ctx->tenant;  // interceptors may rewrite it further down
  op->deadline_ns = ctx->deadline_ns;
  // Lock-free snapshot (see chain_snapshot_): the chain is config-time
  // state, so the raw pointer stays valid for the whole op.
  const InterceptorChain* chain =
      chain_snapshot_.load(std::memory_order_acquire);
  Status st = (chain == nullptr || chain->empty())
                  ? ExecuteCore(op, ctx)
                  : InvokeChain(*chain, 0, op, ctx);
  // One logical op = one potential deadline miss, however many attempts the
  // chain made: either the budget was already spent at issue time, or the
  // completion (retries and backoff included) overran it.
  if (op->deadline_ns != 0 &&
      (op->deadline_exhausted || ctx->sim_ns > op->deadline_ns)) {
    ctx->deadline_misses++;
  }
  return st;
}

Status Fabric::InvokeChain(const InterceptorChain& chain, size_t index,
                           FabricOp* op, NetContext* ctx) {
  if (index == chain.size()) return ExecuteCore(op, ctx);
  FabricOpInvoker next = [this, &chain, index](FabricOp* o, NetContext* c) {
    return InvokeChain(chain, index + 1, o, c);
  };
  return chain[index]->Intercept(this, op, ctx, next);
}

namespace {

/// Mirrors a successful op's charges into both the aggregate counters and the
/// per-verb breakdown. The aggregate arithmetic is identical to the
/// pre-pipeline verbs, so an unperturbed run is bit-identical.
void ChargeOp(NetContext* ctx, FabricVerb verb, uint64_t ns, uint64_t out,
              uint64_t in) {
  ctx->Charge(ns);
  ctx->bytes_out += out;
  ctx->bytes_in += in;
  ctx->round_trips++;
  VerbCounters& pv = ctx->per_verb[VerbIndex(verb)];
  pv.ops++;
  pv.sim_ns += ns;
  pv.bytes_out += out;
  pv.bytes_in += in;
}

}  // namespace

Status Fabric::ExecuteCore(FabricOp* op, NetContext* ctx) {
  op->admission_rejected = false;
  op->deadline_exhausted = false;
  if (op->deadline_ns != 0 && ctx->sim_ns >= op->deadline_ns) {
    // The budget is already spent: refuse before touching the wire (or the
    // congestion queues). No cost is charged — the caller has, by
    // definition, already burned its whole budget getting here.
    op->deadline_exhausted = true;
    return Status::TimedOut("deadline exhausted before issue at node " +
                            std::to_string(op->node));
  }
  CongestionState* congestion =
      congestion_snapshot_.load(std::memory_order_acquire);
  if (congestion == nullptr) return ExecuteVerb(op, ctx);

  // The op arrives at the client's virtual time *before* its own service
  // cost; the bytes it moves are known only after the verb ran (RPC response
  // sizes). Queueing delay is charged after the fact, on top of the
  // unchanged interconnect cost, and broken out in `queue_ns`.
  const uint64_t arrival = ctx->sim_ns;

  // Admission control: an op that would queue past a resource's backlog
  // bound is refused before touching the wire — no data moves, and the
  // client pays only the (small) cost of learning "no". The Busy status
  // flows into any installed RetryInterceptor like app-level contention.
  if (!congestion->TryAdmit(op->node, op->tenant, arrival, op->deadline_ns)) {
    ctx->Charge(congestion->config().rejection_cost_ns);
    ctx->admission_rejects++;
    op->admission_rejected = true;
    return Status::Busy("admission control: backlog bound exceeded at node " +
                        std::to_string(op->node));
  }

  const uint64_t out_before = ctx->bytes_out;
  const uint64_t in_before = ctx->bytes_in;
  Status st = ExecuteVerb(op, ctx);
  const uint64_t bytes =
      (ctx->bytes_out - out_before) + (ctx->bytes_in - in_before);
  // Ops rejected before touching the wire (bad target, bounds) move no bytes
  // and occupy nothing; anything that transferred data holds its resources.
  if (st.ok() || bytes > 0) {
    const uint64_t delay = congestion->Admit(op->node, op->tenant, arrival,
                                             bytes, op->deadline_ns);
    if (delay > 0) {
      ctx->Charge(delay);
      ctx->queue_ns += delay;
    }
  }
  return st;
}

Status Fabric::ExecuteVerb(FabricOp* op, NetContext* ctx) {
  Node* target = nullptr;
  DISAGG_RETURN_NOT_OK(CheckTarget(op->node, &target));

  switch (op->verb) {
    case FabricVerb::kRead: {
      MemoryRegion* mr = target->region(op->addr.region);
      if (mr == nullptr || !mr->Contains(op->addr.offset, op->n)) {
        return Status::InvalidArgument("read out of region bounds");
      }
      std::memcpy(op->dst, mr->data() + op->addr.offset, op->n);
      ChargeOp(ctx, op->verb, target->model().ReadCost(op->n), 0, op->n);
      return Status::OK();
    }

    case FabricVerb::kWrite: {
      MemoryRegion* mr = target->region(op->addr.region);
      if (mr == nullptr || !mr->Contains(op->addr.offset, op->n)) {
        return Status::InvalidArgument("write out of region bounds");
      }
      std::memcpy(mr->data() + op->addr.offset, op->src, op->n);
      ChargeOp(ctx, op->verb, target->model().WriteCost(op->n), op->n, 0);
      return Status::OK();
    }

    case FabricVerb::kCas: {
      MemoryRegion* mr = target->region(op->addr.region);
      if (mr == nullptr || !mr->Contains(op->addr.offset, 8) ||
          (op->addr.offset % 8) != 0) {
        return Status::InvalidArgument("CAS requires an aligned 8-byte word");
      }
      auto* word =
          reinterpret_cast<std::atomic<uint64_t>*>(mr->data() + op->addr.offset);
      uint64_t observed = op->arg0;
      word->compare_exchange_strong(observed, op->arg1,
                                    std::memory_order_acq_rel);
      op->result = observed;
      ChargeOp(ctx, op->verb, target->model().AtomicCost(), 16, 8);
      return Status::OK();
    }

    case FabricVerb::kFetchAdd: {
      MemoryRegion* mr = target->region(op->addr.region);
      if (mr == nullptr || !mr->Contains(op->addr.offset, 8) ||
          (op->addr.offset % 8) != 0) {
        return Status::InvalidArgument("FAA requires an aligned 8-byte word");
      }
      auto* word =
          reinterpret_cast<std::atomic<uint64_t>*>(mr->data() + op->addr.offset);
      op->result = word->fetch_add(op->arg0, std::memory_order_acq_rel);
      ChargeOp(ctx, op->verb, target->model().AtomicCost(), 16, 8);
      return Status::OK();
    }

    case FabricVerb::kReadAtomic: {
      MemoryRegion* mr = target->region(op->addr.region);
      if (mr == nullptr || !mr->Contains(op->addr.offset, 8) ||
          (op->addr.offset % 8) != 0) {
        return Status::InvalidArgument("atomic read requires aligned 8 bytes");
      }
      auto* word =
          reinterpret_cast<std::atomic<uint64_t>*>(mr->data() + op->addr.offset);
      op->result = word->load(std::memory_order_acquire);
      ChargeOp(ctx, op->verb, target->model().ReadCost(8), 0, 8);
      return Status::OK();
    }

    case FabricVerb::kWriteBatch: {
      size_t total = 0;
      for (const WriteOp& w : *op->batch) {
        MemoryRegion* mr = target->region(w.addr.region);
        if (mr == nullptr || !mr->Contains(w.addr.offset, w.n)) {
          return Status::InvalidArgument("batched write out of region bounds");
        }
        std::memcpy(mr->data() + w.addr.offset, w.src, w.n);
        total += w.n;
      }
      // Doorbell batching: one base latency for the whole batch.
      ChargeOp(ctx, op->verb, target->model().WriteCost(total), total, 0);
      return Status::OK();
    }

    case FabricVerb::kBatch: {
      // All-or-nothing: validate every member before any data moves, so a
      // refused batch leaves the regions untouched (same contract as a
      // single verb's bounds check).
      for (const BatchOp& b : *op->sub) {
        if (b.verb != FabricVerb::kRead && b.verb != FabricVerb::kWrite) {
          return Status::InvalidArgument(
              "op batch members must be one-sided reads/writes");
        }
        MemoryRegion* mr = target->region(b.addr.region);
        if (mr == nullptr || !mr->Contains(b.addr.offset, b.n)) {
          return Status::InvalidArgument("batched op out of region bounds");
        }
      }
      uint64_t read_bytes = 0, write_bytes = 0;
      size_t reads = 0, writes = 0;
      for (BatchOp& b : *op->sub) {
        MemoryRegion* mr = target->region(b.addr.region);
        if (b.verb == FabricVerb::kRead) {
          std::memcpy(b.dst, mr->data() + b.addr.offset, b.n);
          read_bytes += b.n;
          reads++;
        } else {
          std::memcpy(mr->data() + b.addr.offset, b.src, b.n);
          write_bytes += b.n;
          writes++;
        }
        b.status = Status::OK();
      }
      // Doorbell coalescing: one base latency per transfer direction for the
      // whole batch, plus the summed byte costs (the per-member bases and
      // per-op issue charges are what the doorbell amortizes away).
      uint64_t ns = 0;
      if (reads > 0) ns += target->model().ReadCost(read_bytes);
      if (writes > 0) ns += target->model().WriteCost(write_bytes);
      ChargeOp(ctx, op->verb, ns, write_bytes, read_bytes);
      return Status::OK();
    }

    case FabricVerb::kRpc: {
      const RpcHandler* h = target->handler(*op->method);
      if (h == nullptr) {
        return Status::NotSupported("no handler for '" + *op->method + "' on " +
                                    target->name());
      }
      RpcServerContext server_ctx;
      op->response->clear();
      Status st = (*h)(op->request, op->response, &server_ctx);
      const uint64_t ns =
          target->model().RpcCost(op->request.size(), op->response->size()) +
          static_cast<uint64_t>(static_cast<double>(server_ctx.compute_ns) *
                                target->cpu_scale());
      ChargeOp(ctx, op->verb, ns, op->request.size(), op->response->size());
      ctx->rpcs++;
      return st;
    }
  }
  return Status::InvalidArgument("unknown fabric verb");
}

// ---- Verb wrappers (lower into a FabricOp and Execute) -------------------

Status Fabric::Read(NetContext* ctx, GlobalAddr src, void* dst, size_t n) {
  FabricOp op;
  op.verb = FabricVerb::kRead;
  op.node = src.node;
  op.addr = src;
  op.dst = dst;
  op.n = n;
  return Execute(&op, ctx);
}

Status Fabric::Write(NetContext* ctx, GlobalAddr dst, const void* src,
                     size_t n) {
  FabricOp op;
  op.verb = FabricVerb::kWrite;
  op.node = dst.node;
  op.addr = dst;
  op.src = src;
  op.n = n;
  return Execute(&op, ctx);
}

Result<uint64_t> Fabric::CompareAndSwap(NetContext* ctx, GlobalAddr addr,
                                        uint64_t expected, uint64_t desired) {
  FabricOp op;
  op.verb = FabricVerb::kCas;
  op.node = addr.node;
  op.addr = addr;
  op.arg0 = expected;
  op.arg1 = desired;
  Status st = Execute(&op, ctx);
  if (!st.ok()) return st;
  return op.result;
}

Result<uint64_t> Fabric::FetchAdd(NetContext* ctx, GlobalAddr addr,
                                  uint64_t delta) {
  FabricOp op;
  op.verb = FabricVerb::kFetchAdd;
  op.node = addr.node;
  op.addr = addr;
  op.arg0 = delta;
  Status st = Execute(&op, ctx);
  if (!st.ok()) return st;
  return op.result;
}

Result<uint64_t> Fabric::ReadAtomic64(NetContext* ctx, GlobalAddr addr) {
  FabricOp op;
  op.verb = FabricVerb::kReadAtomic;
  op.node = addr.node;
  op.addr = addr;
  Status st = Execute(&op, ctx);
  if (!st.ok()) return st;
  return op.result;
}

Status Fabric::WriteBatch(NetContext* ctx, NodeId node_id,
                          const std::vector<WriteOp>& ops) {
  FabricOp op;
  op.verb = FabricVerb::kWriteBatch;
  op.node = node_id;
  op.batch = &ops;
  return Execute(&op, ctx);
}

Status Fabric::ExecuteBatch(NetContext* ctx, NodeId node_id,
                            std::vector<BatchOp>* ops) {
  if (ops == nullptr || ops->empty()) return Status::OK();

  if (!op_batching_enabled()) {
    // Uncoalesced: each member is an ordinary op — bit-identical charges to
    // a caller issuing them one by one (pinned by the batching cost-parity
    // test). The first failure is reported but later members still run,
    // matching what N independent Execute() calls would have done.
    Status first_err = Status::OK();
    for (BatchOp& b : *ops) {
      FabricOp op;
      op.verb = b.verb;
      op.node = node_id;
      op.addr = GlobalAddr{node_id, b.addr.region, b.addr.offset};
      op.dst = b.dst;
      op.src = b.src;
      op.n = b.n;
      b.status = Execute(&op, ctx);
      if (!b.status.ok() && first_err.ok()) first_err = b.status;
    }
    return first_err;
  }

  FabricOp op;
  op.verb = FabricVerb::kBatch;
  op.node = node_id;
  op.sub = ops;
  Status st = Execute(&op, ctx);
  if (!st.ok()) {
    for (BatchOp& b : *ops) b.status = st;
  }
  return st;
}

Status Fabric::Call(NetContext* ctx, NodeId node_id, const std::string& method,
                    Slice request, std::string* response) {
  FabricOp op;
  op.verb = FabricVerb::kRpc;
  op.node = node_id;
  op.method = &method;
  op.request = request;
  op.response = response;
  return Execute(&op, ctx);
}

}  // namespace disagg
