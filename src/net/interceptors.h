#ifndef DISAGG_NET_INTERCEPTORS_H_
#define DISAGG_NET_INTERCEPTORS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "net/fabric.h"

namespace disagg {

struct PartitionEffects;  // src/net/partition.h

/// Observes every op flowing through `Fabric::Execute()`: per-op sim-time
/// histograms keyed by "verb/interconnect/node-kind", aggregate op/failure
/// counts, and an optional bounded ring-buffer trace of the most recent ops
/// dumpable as JSON for benches. Purely observational — charges nothing, so
/// installing it never changes a client's counters.
class TraceInterceptor : public FabricInterceptor {
 public:
  /// `trace_capacity` bounds the ring-buffer op trace; 0 keeps histograms
  /// only.
  explicit TraceInterceptor(size_t trace_capacity = 0)
      : capacity_(trace_capacity) {}

  const char* name() const override { return "trace"; }

  Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                   const FabricOpInvoker& next) override;

  struct TraceRecord {
    uint64_t seq = 0;
    FabricVerb verb = FabricVerb::kRead;
    NodeId node = 0;
    uint32_t tenant = 0;     ///< tenant billed for the op (`FabricOp::tenant`)
    uint64_t bytes_out = 0;
    uint64_t bytes_in = 0;
    uint64_t sim_ns = 0;
    uint64_t queue_ns = 0;   ///< congestion queueing delay within `sim_ns`
    bool ok = false;
  };

  uint64_t ops() const;
  uint64_t failures() const;

  /// Histogram keys present so far, e.g. "read/rdma/memory".
  std::vector<std::string> Keys() const;

  /// Copy of the histogram for `key`; zero-count histogram if absent.
  Histogram HistogramFor(const std::string& key) const;

  /// The retained ring-buffer records, oldest first.
  std::vector<TraceRecord> Snapshot() const;

  /// Dumps histogram summaries plus the retained op trace as a JSON object.
  std::string DumpJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Histogram> hists_;
  uint64_t ops_ = 0;
  uint64_t failures_ = 0;
  uint64_t seq_ = 0;
  std::vector<TraceRecord> ring_;  // circular once size() == capacity_
  size_t ring_next_ = 0;
};

/// Deterministic seeded fault schedule, the composable replacement for the
/// binary `Node::Fail()` switch: packet drops and latency spikes are decided
/// by a stateless hash of (seed, op sequence number), and node flaps take a
/// node down for a window of op sequence numbers. Same seed and op stream →
/// identical injected faults and identical charged `sim_ns`.
struct FaultPolicy {
  uint64_t seed = 1;

  /// Per-op probability the op is dropped before reaching the target; the
  /// client is charged `drop_penalty_ns` (timeout detection) and sees
  /// Status::Unavailable.
  double drop_prob = 0.0;
  uint64_t drop_penalty_ns = 2000;

  /// Per-op probability a completed op is charged `spike_ns` extra latency
  /// (congestion / retransmission on the wire).
  double spike_prob = 0.0;
  uint64_t spike_ns = 10000;

  /// Keys drop/spike decisions by the issuing context's `NetContext::op_tag`
  /// (mixed with the context's local draw counter and virtual clock) instead
  /// of the interceptor's global op sequence number. Required under the
  /// epoch-parallel driver, where the order in which ops from different
  /// threads reach this interceptor is an execution detail: with a tag every
  /// decision is a pure function of (seed, which logical op, which attempt,
  /// when), identical whatever thread runs the client. Untagged contexts
  /// (`op_tag == 0`) fall back to the sequence key.
  bool key_by_op_tag = false;

  /// Node down for ops whose sequence number lies in [from_seq, until_seq) —
  /// or, when `until_ns > from_ns`, for ops *issued* in the virtual-time
  /// window [from_ns, until_ns) (the form to use with the epoch-parallel
  /// driver, where sequence positions are execution-order-dependent but the
  /// virtual clock is part of the model).
  struct Flap {
    NodeId node = 0;
    uint64_t from_seq = 0;
    uint64_t until_seq = 0;
    uint64_t from_ns = 0;
    uint64_t until_ns = 0;
  };
  std::vector<Flap> flaps;

  /// Asymmetric (one-way) partition: traffic *toward* `node` is lost in the
  /// virtual-time window [from_ns, until_ns) while the node itself stays up
  /// and its outbound replies to everyone else flow — the classic gray
  /// failure a symmetric flap cannot express. `kRequestLost` drops the op
  /// before it reaches the node (charged `drop_penalty_ns`, Unavailable,
  /// side effects never happen); `kReplyLost` lets the op EXECUTE at the
  /// node and loses the acknowledgement on the way back (the caller is
  /// charged the penalty and sees Unavailable even though the side effect
  /// landed). With `method` non-empty only kRpc ops calling that method are
  /// affected (e.g. heartbeats die while data traffic flows).
  struct OneWay {
    enum class Direction : uint8_t { kRequestLost, kReplyLost };
    NodeId node = 0;
    uint64_t from_ns = 0;
    uint64_t until_ns = 0;
    Direction dir = Direction::kRequestLost;
    std::string method;  ///< empty = every verb toward `node`
  };
  std::vector<OneWay> oneways;

  /// Gray-failure slowdown: ops targeting `node` issued in the virtual-time
  /// window [from_ns, until_ns) complete successfully but are charged
  /// `factor` times their normal cost (the extra `(factor-1) x cost` rides
  /// `sim_ns` and counts as an injected fault). No drop: the node is
  /// slow-but-alive, which is exactly what a suspicion score must catch
  /// without a single hard failure signal.
  struct Slowdown {
    NodeId node = 0;
    uint64_t from_ns = 0;
    uint64_t until_ns = 0;
    double factor = 1.0;  ///< <= 1.0 disables the window
  };
  std::vector<Slowdown> slowdowns;
};

class FaultInterceptor : public FabricInterceptor {
 public:
  explicit FaultInterceptor(FaultPolicy policy) : policy_(std::move(policy)) {}

  const char* name() const override { return "fault"; }

  Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                   const FabricOpInvoker& next) override;

  uint64_t ops_seen() const { return seq_.load(std::memory_order_relaxed); }
  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  uint64_t spikes() const { return spikes_.load(std::memory_order_relaxed); }
  uint64_t flap_rejections() const {
    return flap_rejections_.load(std::memory_order_relaxed);
  }
  uint64_t oneway_drops() const {
    return oneway_drops_.load(std::memory_order_relaxed);
  }
  uint64_t slowdown_hits() const {
    return slowdown_hits_.load(std::memory_order_relaxed);
  }

  const FaultPolicy& policy() const { return policy_; }

 private:
  /// True with probability `p`, as a pure function of (seed, seq, salt).
  bool Decide(uint64_t seq, uint64_t salt, double p) const;

  const FaultPolicy policy_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> spikes_{0};
  std::atomic<uint64_t> flap_rejections_{0};
  std::atomic<uint64_t> oneway_drops_{0};
  std::atomic<uint64_t> slowdown_hits_{0};
};

/// Re-issues ops that fail with a retryable status, charging exponential
/// backoff to the client's simulated clock (`NetContext::backoff_ns` breaks
/// it out of `sim_ns`) so robustness experiments remain deterministic.
/// Install *before* a FaultInterceptor so retries wrap injected faults.
struct RetryPolicy {
  int max_attempts = 4;  ///< total issues, including the first
  /// Floored at 1 ns by the interceptor: zero would multiply to zero
  /// forever and retry with no simulated cost.
  uint64_t initial_backoff_ns = 1000;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_ns = 1 << 20;  ///< ~1 ms cap
  bool retry_unavailable = true;
  bool retry_timed_out = true;
  bool retry_busy = false;  ///< Busy usually signals app-level conflicts

  /// Total issues (including the first) for ops refused by congestion
  /// admission control (`FabricOp::admission_rejected`). Re-issuing into a
  /// queue that just reported "full" amplifies the overload, so these get a
  /// tighter budget than contention `Busy` — unless the op carries a
  /// deadline, in which case the remaining `deadline_ns` budget governs
  /// instead (retries continue, deadline-clamped, up to `max_attempts`).
  int max_admission_attempts = 2;
};

class RetryInterceptor : public FabricInterceptor {
 public:
  explicit RetryInterceptor(RetryPolicy policy) : policy_(policy) {}

  const char* name() const override { return "retry"; }

  Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                   const FabricOpInvoker& next) override;

  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  uint64_t gave_up() const { return gave_up_.load(std::memory_order_relaxed); }

  const RetryPolicy& policy() const { return policy_; }

 private:
  bool Retryable(const Status& st) const;

  const RetryPolicy policy_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> gave_up_{0};
};

/// Hedged requests (tail-latency insurance): if the primary attempt has not
/// completed `hedge_delay_ns` after issue, a backup copy of the op is sent to
/// the primary node's configured replica and the client continues at the
/// *first* completion — while both branches' traffic is charged in full via
/// `Fork`/`JoinParallel` (the loser's bytes still crossed the wire).
/// Deterministic: in virtual time the primary's completion instant is known
/// exactly, so "did the timer fire" is a pure function of the op stream.
struct HedgePolicy {
  /// Virtual-time delay after which the backup is issued. The backup branch
  /// starts at `issue_time + hedge_delay_ns`.
  uint64_t hedge_delay_ns = 50'000;

  /// Backup target per primary node. Ops whose node has no entry are never
  /// hedged. The replica is assumed to hold the same region layout at the
  /// same offsets (true for the mirrored stores built by the engines).
  std::map<NodeId, NodeId> replicas;

  /// Hedge only side-effect-free verbs (kRead / kReadAtomic). Leave on:
  /// hedging writes would double-apply them.
  bool reads_only = true;
};

class HedgeInterceptor : public FabricInterceptor {
 public:
  explicit HedgeInterceptor(HedgePolicy policy) : policy_(std::move(policy)) {}

  const char* name() const override { return "hedge"; }

  Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                   const FabricOpInvoker& next) override;

  uint64_t hedges() const { return hedges_.load(std::memory_order_relaxed); }
  uint64_t wins() const { return wins_.load(std::memory_order_relaxed); }

  const HedgePolicy& policy() const { return policy_; }

 private:
  const HedgePolicy policy_;
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> wins_{0};
};

/// Per-node circuit breaker: closed → open when the recent error rate at a
/// node crosses a threshold, open → half-open after a fixed number of
/// fast-failed ops, half-open → closed after consecutive successful probes
/// (or back to open on a probe failure). While open, ops are refused
/// immediately with `Status::Unavailable` for a small `fast_fail_penalty_ns`
/// instead of burning a full drop/timeout penalty at a node that is down
/// anyway — callers fall through to replicas or the degrade ladder.
///
/// The whole state machine is a pure function of the per-node op outcome
/// stream (counts, not clocks), so chaos replay with a fixed seed drives it
/// through bit-identical transitions. Only `Unavailable`/`TimedOut` count as
/// failures: `Busy` is contention/admission, not node health.
struct BreakerPolicy {
  uint32_t window = 16;        ///< per-node outcomes per evaluation window
  uint32_t min_samples = 8;    ///< evaluate only once the window has this many
  double open_error_rate = 0.5;  ///< open when failures/window >= this
  uint64_t open_ops = 32;      ///< fast-fails while open before half-open
  uint32_t half_open_probes = 2;  ///< consecutive probe successes to close
  uint64_t fast_fail_penalty_ns = 200;  ///< cost of learning "open" locally
};

class CircuitBreakerInterceptor : public FabricInterceptor {
 public:
  explicit CircuitBreakerInterceptor(BreakerPolicy policy) : policy_(policy) {}

  const char* name() const override { return "breaker"; }

  Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                   const FabricOpInvoker& next) override;

  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  /// Current state for `node` (kClosed if the node was never seen).
  State StateFor(NodeId node) const;

  /// Forgets everything about `node`: closed state, fresh window. The
  /// membership orchestrator calls this when a revoked node rejoins at a
  /// new lease epoch — the old incarnation's failure history must not
  /// fast-fail the healthy replacement.
  void ResetNode(NodeId node);

  uint64_t fast_fails() const {
    return fast_fails_.load(std::memory_order_relaxed);
  }
  uint64_t opens() const { return opens_.load(std::memory_order_relaxed); }

  const BreakerPolicy& policy() const { return policy_; }

  struct NodeState {
    State state = State::kClosed;
    uint32_t window_ops = 0;       // outcomes observed in the current window
    uint32_t window_failures = 0;
    uint64_t open_fast_fails = 0;  // fast-fails since the breaker opened
    uint32_t probe_successes = 0;  // consecutive successes while half-open
  };

  /// Partition-local view of this breaker for the epoch-parallel driver
  /// (src/net/partition.h): per-node state copied from the authoritative map
  /// on first touch each epoch, plus the per-node outcome log the barrier
  /// replays through the authoritative state machine in partition order
  /// (`MergeShard`). Never shared across threads.
  struct ShardState {
    enum class Outcome : uint8_t { kOk, kFailure, kFastFail };
    std::map<NodeId, NodeState> nodes;        // copy-on-first-touch
    std::vector<std::pair<NodeId, Outcome>> log;
    uint64_t fast_fails = 0;  // shard-local; summed into fast_fails_ at merge
  };

  /// Replays one partition's epoch of outcomes into the authoritative state
  /// machines and clears the shard for the next epoch. With one partition
  /// this re-derives the serial transitions (and `opens()` count) bit for
  /// bit; with several, transitions reflect the merged partition order.
  void MergeShard(ShardState* shard);

 private:
  Status InterceptSharded(PartitionEffects* eff, FabricOp* op, NetContext* ctx,
                          const FabricOpInvoker& next);

  /// The open-state fast-fail bookkeeping (open → half-open after
  /// `open_ops`). Call only while `ns->state == kOpen`.
  static void ApplyFastFail(NodeState* ns, const BreakerPolicy& policy);

  /// Feeds one closed/half-open outcome through the state machine; returns
  /// true when this outcome opened the breaker. Single-sourced so the
  /// inline, sharded, and replay paths transition identically.
  static bool ApplyOutcome(NodeState* ns, bool failure,
                           const BreakerPolicy& policy);

  /// The shard's view of `node`, copied from the authoritative map (under
  /// `mu_`) the first time the partition touches it this epoch.
  NodeState& ShardNodeFor(ShardState* shard, NodeId node);

  const BreakerPolicy policy_;
  mutable std::mutex mu_;
  std::map<NodeId, NodeState> nodes_;
  std::atomic<uint64_t> fast_fails_{0};
  std::atomic<uint64_t> opens_{0};
};

}  // namespace disagg

#endif  // DISAGG_NET_INTERCEPTORS_H_
