#ifndef DISAGG_NET_INTERCEPTORS_H_
#define DISAGG_NET_INTERCEPTORS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "net/fabric.h"

namespace disagg {

/// Observes every op flowing through `Fabric::Execute()`: per-op sim-time
/// histograms keyed by "verb/interconnect/node-kind", aggregate op/failure
/// counts, and an optional bounded ring-buffer trace of the most recent ops
/// dumpable as JSON for benches. Purely observational — charges nothing, so
/// installing it never changes a client's counters.
class TraceInterceptor : public FabricInterceptor {
 public:
  /// `trace_capacity` bounds the ring-buffer op trace; 0 keeps histograms
  /// only.
  explicit TraceInterceptor(size_t trace_capacity = 0)
      : capacity_(trace_capacity) {}

  const char* name() const override { return "trace"; }

  Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                   const FabricOpInvoker& next) override;

  struct TraceRecord {
    uint64_t seq = 0;
    FabricVerb verb = FabricVerb::kRead;
    NodeId node = 0;
    uint64_t bytes_out = 0;
    uint64_t bytes_in = 0;
    uint64_t sim_ns = 0;
    bool ok = false;
  };

  uint64_t ops() const;
  uint64_t failures() const;

  /// Histogram keys present so far, e.g. "read/rdma/memory".
  std::vector<std::string> Keys() const;

  /// Copy of the histogram for `key`; zero-count histogram if absent.
  Histogram HistogramFor(const std::string& key) const;

  /// The retained ring-buffer records, oldest first.
  std::vector<TraceRecord> Snapshot() const;

  /// Dumps histogram summaries plus the retained op trace as a JSON object.
  std::string DumpJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Histogram> hists_;
  uint64_t ops_ = 0;
  uint64_t failures_ = 0;
  uint64_t seq_ = 0;
  std::vector<TraceRecord> ring_;  // circular once size() == capacity_
  size_t ring_next_ = 0;
};

/// Deterministic seeded fault schedule, the composable replacement for the
/// binary `Node::Fail()` switch: packet drops and latency spikes are decided
/// by a stateless hash of (seed, op sequence number), and node flaps take a
/// node down for a window of op sequence numbers. Same seed and op stream →
/// identical injected faults and identical charged `sim_ns`.
struct FaultPolicy {
  uint64_t seed = 1;

  /// Per-op probability the op is dropped before reaching the target; the
  /// client is charged `drop_penalty_ns` (timeout detection) and sees
  /// Status::Unavailable.
  double drop_prob = 0.0;
  uint64_t drop_penalty_ns = 2000;

  /// Per-op probability a completed op is charged `spike_ns` extra latency
  /// (congestion / retransmission on the wire).
  double spike_prob = 0.0;
  uint64_t spike_ns = 10000;

  /// Node down for ops whose sequence number lies in [from_seq, until_seq).
  struct Flap {
    NodeId node = 0;
    uint64_t from_seq = 0;
    uint64_t until_seq = 0;
  };
  std::vector<Flap> flaps;
};

class FaultInterceptor : public FabricInterceptor {
 public:
  explicit FaultInterceptor(FaultPolicy policy) : policy_(std::move(policy)) {}

  const char* name() const override { return "fault"; }

  Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                   const FabricOpInvoker& next) override;

  uint64_t ops_seen() const { return seq_.load(std::memory_order_relaxed); }
  uint64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  uint64_t spikes() const { return spikes_.load(std::memory_order_relaxed); }
  uint64_t flap_rejections() const {
    return flap_rejections_.load(std::memory_order_relaxed);
  }

  const FaultPolicy& policy() const { return policy_; }

 private:
  /// True with probability `p`, as a pure function of (seed, seq, salt).
  bool Decide(uint64_t seq, uint64_t salt, double p) const;

  const FaultPolicy policy_;
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> drops_{0};
  std::atomic<uint64_t> spikes_{0};
  std::atomic<uint64_t> flap_rejections_{0};
};

/// Re-issues ops that fail with a retryable status, charging exponential
/// backoff to the client's simulated clock (`NetContext::backoff_ns` breaks
/// it out of `sim_ns`) so robustness experiments remain deterministic.
/// Install *before* a FaultInterceptor so retries wrap injected faults.
struct RetryPolicy {
  int max_attempts = 4;  ///< total issues, including the first
  /// Floored at 1 ns by the interceptor: zero would multiply to zero
  /// forever and retry with no simulated cost.
  uint64_t initial_backoff_ns = 1000;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_ns = 1 << 20;  ///< ~1 ms cap
  bool retry_unavailable = true;
  bool retry_timed_out = true;
  bool retry_busy = false;  ///< Busy usually signals app-level conflicts
};

class RetryInterceptor : public FabricInterceptor {
 public:
  explicit RetryInterceptor(RetryPolicy policy) : policy_(policy) {}

  const char* name() const override { return "retry"; }

  Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                   const FabricOpInvoker& next) override;

  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  uint64_t gave_up() const { return gave_up_.load(std::memory_order_relaxed); }

  const RetryPolicy& policy() const { return policy_; }

 private:
  bool Retryable(const Status& st) const;

  const RetryPolicy policy_;
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> gave_up_{0};
};

}  // namespace disagg

#endif  // DISAGG_NET_INTERCEPTORS_H_
