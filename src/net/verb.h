#ifndef DISAGG_NET_VERB_H_
#define DISAGG_NET_VERB_H_

#include <cstddef>
#include <cstdint>

namespace disagg {

/// The complete set of fabric operations. Every one-sided verb, doorbell
/// batch, and RPC is lowered to a `FabricOp` tagged with one of these and
/// executed by the single `Fabric::Execute()` path, so interceptors and
/// per-verb accounting see a uniform stream of operations.
///
/// Failure-status contract for fabric ops (three interceptors and the engine
/// degrade ladders branch on it, so the distinctions are load-bearing):
///
///  - `Status::Busy` — retryable *contention*: app-level conflicts (seqlock /
///    CAS convergence, lock conflicts, raft non-convergence) and congestion
///    admission control ("queue full", `FabricOp::admission_rejected`).
///    The target is healthy; backing off and retrying can succeed, though
///    retrying an admission rejection is budgeted tighter
///    (`RetryPolicy::max_admission_attempts`) since it amplifies overload.
///  - `Status::Unavailable` — a *fault*: the target node is failed, flapping,
///    the packet was dropped, or a circuit breaker is fast-failing for it.
///    Retry against the same node may succeed after recovery; falling over
///    to a replica (hedge, degrade ladder) is usually better.
///  - `Status::TimedOut` — a genuine *deadline* expiry: the op's
///    `deadline_ns` budget ran out (`FabricOp::deadline_exhausted` when
///    refused pre-issue). Never retryable — waiting longer cannot cure it;
///    the only useful responses are degrading or reporting the miss.
///
/// Engines must never surface `TimedOut` for contention (pinned by the chaos
/// suite's status-contract test).
enum class FabricVerb : uint8_t {
  kRead = 0,
  kWrite,
  kCas,
  kFetchAdd,
  kReadAtomic,
  kWriteBatch,
  kRpc,
  kBatch,  ///< doorbell-coalesced multi-op descriptor (`Fabric::ExecuteBatch`)
};

inline constexpr size_t kNumFabricVerbs = 8;

constexpr size_t VerbIndex(FabricVerb v) { return static_cast<size_t>(v); }

constexpr const char* FabricVerbName(FabricVerb v) {
  switch (v) {
    case FabricVerb::kRead:
      return "read";
    case FabricVerb::kWrite:
      return "write";
    case FabricVerb::kCas:
      return "cas";
    case FabricVerb::kFetchAdd:
      return "faa";
    case FabricVerb::kReadAtomic:
      return "read_atomic";
    case FabricVerb::kWriteBatch:
      return "write_batch";
    case FabricVerb::kRpc:
      return "rpc";
    case FabricVerb::kBatch:
      return "batch";
  }
  return "?";
}

}  // namespace disagg

#endif  // DISAGG_NET_VERB_H_
