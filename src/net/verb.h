#ifndef DISAGG_NET_VERB_H_
#define DISAGG_NET_VERB_H_

#include <cstddef>
#include <cstdint>

namespace disagg {

/// The complete set of fabric operations. Every one-sided verb, doorbell
/// batch, and RPC is lowered to a `FabricOp` tagged with one of these and
/// executed by the single `Fabric::Execute()` path, so interceptors and
/// per-verb accounting see a uniform stream of operations.
enum class FabricVerb : uint8_t {
  kRead = 0,
  kWrite,
  kCas,
  kFetchAdd,
  kReadAtomic,
  kWriteBatch,
  kRpc,
};

inline constexpr size_t kNumFabricVerbs = 7;

constexpr size_t VerbIndex(FabricVerb v) { return static_cast<size_t>(v); }

constexpr const char* FabricVerbName(FabricVerb v) {
  switch (v) {
    case FabricVerb::kRead:
      return "read";
    case FabricVerb::kWrite:
      return "write";
    case FabricVerb::kCas:
      return "cas";
    case FabricVerb::kFetchAdd:
      return "faa";
    case FabricVerb::kReadAtomic:
      return "read_atomic";
    case FabricVerb::kWriteBatch:
      return "write_batch";
    case FabricVerb::kRpc:
      return "rpc";
  }
  return "?";
}

}  // namespace disagg

#endif  // DISAGG_NET_VERB_H_
