#ifndef DISAGG_NET_PARTITION_H_
#define DISAGG_NET_PARTITION_H_

#include <map>
#include <memory>

#include "net/congestion.h"
#include "net/interceptors.h"

namespace disagg {

/// Everything one client partition accumulates against order-sensitive
/// shared state while it executes an epoch under the epoch-parallel driver
/// (DESIGN.md "Parallel simulation"): a `CongestionState::Shard` per
/// congestion model touched and a `CircuitBreakerInterceptor::ShardState`
/// per breaker touched, both created lazily on first use. The driver
/// installs one of these per partition via `PartitionEffectsScope` before
/// running the partition's slice of an epoch, and replays every shard into
/// the authoritative state at the barrier — in partition-id order, so the
/// merged evolution is a pure function of the simulation config, not of
/// thread scheduling.
///
/// Shards are keyed by the authoritative object's address, which makes the
/// routing workload-agnostic: the driver never needs to know which fabrics
/// (or how many) the client closure touches. Iteration order of these maps
/// only interleaves shards of *independent* objects, so it cannot affect
/// results; the order that matters — partitions within one object — is
/// fixed by the driver's merge loop.
struct PartitionEffects {
  std::map<CongestionState*, std::unique_ptr<CongestionState::Shard>>
      congestion_shards;
  std::map<CircuitBreakerInterceptor*, CircuitBreakerInterceptor::ShardState>
      breaker_shards;

  /// This partition's shard of `state`, created on first touch.
  CongestionState::Shard* ShardFor(CongestionState* state);

  /// This partition's shard of `breaker`, created on first touch.
  CircuitBreakerInterceptor::ShardState& BreakerShardFor(
      CircuitBreakerInterceptor* breaker);
};

/// The effects container installed for the calling thread, or null when no
/// epoch-parallel partition is executing (the common case: every legacy
/// code path sees null and runs the authoritative, mutex-protected logic).
PartitionEffects* CurrentPartitionEffects();

/// RAII install/restore of the calling thread's `PartitionEffects`.
class PartitionEffectsScope {
 public:
  explicit PartitionEffectsScope(PartitionEffects* effects);
  ~PartitionEffectsScope();

  PartitionEffectsScope(const PartitionEffectsScope&) = delete;
  PartitionEffectsScope& operator=(const PartitionEffectsScope&) = delete;

 private:
  PartitionEffects* prev_;
};

}  // namespace disagg

#endif  // DISAGG_NET_PARTITION_H_
