#ifndef DISAGG_NET_CONGESTION_H_
#define DISAGG_NET_CONGESTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace disagg {

struct PartitionEffects;  // src/net/partition.h

using NodeId = uint32_t;  // mirrors fabric.h (kept header-independent)

/// Service capacity of one shared resource (a node's NIC/link or the fabric
/// backbone). An op moving `b` bytes occupies the resource for
///   ns_per_op + b * ns_per_byte
/// simulated nanoseconds. Both terms default to 0 = "this dimension is
/// unconstrained"; a resource with both at 0 never queues.
///
/// This is deliberately the same shape as `InterconnectModel`'s cost terms,
/// but it models *occupancy of a shared pipe*, not the latency one client
/// observes: a NIC can have 2.5 us of one-sided READ latency while issuing a
/// new message every 100 ns. Under-load latency comes from the interconnect
/// model; the knee and the plateau come from this capacity.
struct ResourceCapacity {
  uint64_t ns_per_op = 0;   ///< issue overhead per op (1e9/x = ops/sec cap)
  double ns_per_byte = 0.0; ///< inverse service bandwidth

  /// Admission control: an op that would have to wait more than this behind
  /// the resource's backlog is rejected up front with `Status::Busy` instead
  /// of being charged unbounded queueing delay (the throttling real
  /// disaggregated stores apply at the NIC/service tier). 0 = unbounded
  /// queue, every op is eventually served. Tenants may carry a tighter or
  /// looser bound via `TenantControl::max_backlog_ns`.
  uint64_t max_backlog_ns = 0;

  uint64_t ServiceNs(uint64_t bytes) const {
    return ns_per_op +
           static_cast<uint64_t>(ns_per_byte * static_cast<double>(bytes));
  }
  bool unlimited() const { return ns_per_op == 0 && ns_per_byte == 0.0; }

  /// Capacity in ops/sec for `bytes`-sized ops (0 = unbounded).
  double OpsPerSec(uint64_t bytes) const {
    const uint64_t s = ServiceNs(bytes);
    return s == 0 ? 0.0 : 1e9 / static_cast<double>(s);
  }
};

/// Queueing discipline applied at every constrained resource.
enum class QueueDiscipline : uint8_t {
  /// FIFO by arrival, or start-time fair queueing keyed by
  /// `NetContext::tenant` when `tenant_weights` is non-empty (the historical
  /// behavior; bit-parity with pre-discipline builds is pinned by tests).
  kTenantFair = 0,
  /// Earliest-deadline-first over `FabricOp::deadline_ns`: pending work is
  /// served in absolute-deadline order in a fluid model. Ops without a
  /// deadline are assigned `arrival + edf_default_slack_ns`, which both
  /// ranks them against real deadlines and bounds their wait (work arriving
  /// later with deadlines beyond that horizon queues behind them — EDF here
  /// cannot starve deadline-less traffic). Tenant weights are ignored in
  /// this mode; per-tenant admission bounds still apply.
  kEdf = 1,
};

/// Per-tenant scheduling controls, updatable at run time (the SLO
/// controller's actuators). A tenant absent from the table uses the config
/// defaults.
struct TenantControl {
  double weight = 1.0;          ///< SFQ share (ignored under EDF)
  uint64_t max_backlog_ns = 0;  ///< 0 = inherit the resource's bound
};

/// Which resources exist and how big they are. Congestion is strictly
/// opt-in: a fabric without a config (or with an all-unlimited one) charges
/// nothing and keeps every counter bit-identical to the uncontended model.
struct CongestionConfig {
  /// Applied to any node without an explicit `node_caps` entry.
  ResourceCapacity default_node;

  /// Per-node overrides (e.g. a memory pool's NIC budget, Farview-style).
  std::map<NodeId, ResourceCapacity> node_caps;

  /// A single shared backbone every op crosses in addition to its target
  /// node's link (models the switch fabric / oversubscribed core).
  ResourceCapacity backbone;

  /// Per-tenant weights for start-time fair queueing (SFQ). Empty (the
  /// default) keeps the strict FIFO-by-arrival discipline and bit-identical
  /// counters; any entry switches every constrained resource to weighted
  /// fair queueing keyed by `NetContext::tenant`. Tenants absent from the
  /// map get `default_weight`. These are only the *initial* weights: the
  /// live table is a `TenantControl` snapshot that
  /// `CongestionState::UpdateTenantControls` can republish at run time.
  std::map<uint32_t, double> tenant_weights;
  double default_weight = 1.0;

  /// Queueing discipline at constrained resources (see QueueDiscipline).
  QueueDiscipline discipline = QueueDiscipline::kTenantFair;

  /// EDF only: the slack granted to deadline-less ops (their effective
  /// deadline is `arrival + slack`).
  uint64_t edf_default_slack_ns = 1'000'000;

  /// Sim time charged to an op rejected by admission control (the cost of
  /// learning "no": one NACKed round trip / doorbell, not a full service).
  uint64_t rejection_cost_ns = 100;

  bool wfq_enabled() const { return !tenant_weights.empty(); }
  bool edf_enabled() const { return discipline == QueueDiscipline::kEdf; }

  double WeightFor(uint32_t tenant) const {
    auto it = tenant_weights.find(tenant);
    const double w = it == tenant_weights.end() ? default_weight : it->second;
    return w > 0.0 ? w : 1.0;
  }
};

/// Shared-resource congestion: a virtual-time queue per resource.
///
/// Ops arrive at the issuing client's current simulated time. In the default
/// FIFO discipline each resource keeps the virtual time at which it next
/// becomes free; an op starts service at `max(arrival, free_time)`, occupies
/// the resource for its service time, and the client is charged
/// `start - arrival` of queueing delay on top of the unchanged interconnect
/// cost model (broken out in `NetContext::queue_ns`). An uncontended op
/// (arrival >= free_time) is charged nothing, so a single client below
/// capacity — or any run with congestion disabled — keeps bit-identical
/// counters.
///
/// With `tenant_weights` configured the discipline becomes start-time fair
/// queueing over a fluid (GPS) server: each tenant owns a virtual lane that
/// drains at `w_i / W_active` of the resource's capacity, where `W_active`
/// is the weight sum of tenants with backlog at the op's arrival. An op's
/// completion is its lane's virtual finish time and the excess over its bare
/// service time is charged as queueing delay. A lone tenant's lane drains at
/// full capacity (work conservation) and reproduces the FIFO arithmetic
/// exactly; competing backlogged tenants converge to throughput shares
/// proportional to their weights.
///
/// With `discipline = kEdf` each resource keeps pending work bucketed by
/// absolute deadline and drains it earliest-deadline-first as virtual time
/// advances; an op's wait is the not-yet-drained work with deadlines at or
/// before its own.
///
/// Admission control (`ResourceCapacity::max_backlog_ns`, per-tenant
/// override via `TenantControl::max_backlog_ns`) bounds how far behind a
/// resource an op may queue: `TryAdmit` is consulted before the op
/// executes, and a rejected op is failed fast with `Status::Busy`, charged
/// only `CongestionConfig::rejection_cost_ns`.
///
/// Live reconfiguration: per-tenant weights and admission bounds live in an
/// immutable `TenantControl` table published through an atomic snapshot
/// pointer (the PR-7 config-snapshot pattern — the `std::shared_ptr` under
/// `mu_` owns, the raw atomic mirrors for lock-free per-op reads).
/// `UpdateTenantControls` swaps the whole table; in-flight ops see either
/// the old or the new table, never a torn mix. The SLO controller publishes
/// only at epoch barriers, so under the parallel driver every partition in
/// an epoch reads the same table and determinism is preserved.
///
/// Determinism: admission order is the order of `Admit()` calls. The
/// `sim::LoadDriver` schedules clients in global virtual-time order, which
/// makes arrivals non-decreasing; the whole run is then a pure function of
/// the workload seed.
///
/// Under the epoch-parallel driver (DESIGN.md "Parallel simulation") a
/// thread-local `PartitionEffects` is installed while a partition executes
/// an epoch; `TryAdmit`/`Admit` then route to that partition's `Shard` — a
/// mutex-free copy-on-first-touch view of this state — and the driver
/// replays every shard's admission log into the authoritative state at the
/// epoch barrier, in partition order, via `MergeShard`.
class CongestionState {
 public:
  explicit CongestionState(CongestionConfig config);

  /// Admission control check for an op from `tenant` arriving at
  /// `arrival_ns`, BEFORE it executes (its byte count may not be known yet;
  /// the backlog an op waits behind is independent of its own size).
  /// `deadline_ns` is the op's absolute deadline (0 = none; used only by the
  /// EDF discipline to rank the op). Returns false — and bumps the rejecting
  /// resource's `rejections` counter — when the estimated wait at the node
  /// link or the backbone exceeds the tenant's effective backlog bound.
  /// Always true for unbounded resources.
  bool TryAdmit(NodeId node, uint32_t tenant, uint64_t arrival_ns,
                uint64_t deadline_ns = 0);

  /// Admits one op moving `bytes` bytes to/from `node`, arriving at the
  /// client's virtual time `arrival_ns` with absolute deadline `deadline_ns`
  /// (0 = none). Returns the queueing delay to charge the client; advances
  /// the busy windows of the node's link and the backbone.
  uint64_t Admit(NodeId node, uint32_t tenant, uint64_t arrival_ns,
                 uint64_t bytes, uint64_t deadline_ns = 0);

  /// The queueing delay an op from `tenant` (absolute deadline
  /// `deadline_ns`, 0 = none) arriving at `arrival_ns` would currently be
  /// charged at `node`'s link — the signal join-shortest-virtual-queue
  /// placement ranks candidates by. Routed through the partition's shard
  /// view under the epoch-parallel driver, so placement decisions are a
  /// pure function of the partition schedule (thread-count independent).
  uint64_t BacklogEstimate(NodeId node, uint32_t tenant, uint64_t arrival_ns,
                           uint64_t deadline_ns = 0);

  /// Atomically publishes a new per-tenant control table (weights +
  /// admission bounds). Tenants absent from `controls` fall back to the
  /// config defaults (`default_weight`, the resource's own bound). Intended
  /// to be called from epoch barriers / setup code; per-op readers are
  /// lock-free and see either the previous or the new table in full.
  void UpdateTenantControls(const std::map<uint32_t, TenantControl>& controls);

  /// The control currently in force for `tenant` (weight + bound override).
  TenantControl ControlFor(uint32_t tenant) const;

  /// Accumulated accounting for one resource.
  struct ResourceStats {
    uint64_t ops = 0;         ///< ops serviced
    uint64_t bytes = 0;       ///< bytes serviced
    uint64_t busy_ns = 0;     ///< total service time (sum over ops)
    uint64_t queue_ns = 0;    ///< total queueing delay imposed on clients
    uint64_t free_ns = 0;     ///< virtual time the resource next idles
    uint64_t rejections = 0;  ///< ops refused by admission control
  };

  ResourceStats NodeStats(NodeId node) const;
  ResourceStats BackboneStats() const;

  /// Per-tenant ops/bytes serviced at one node's link (empty map until the
  /// first op; all traffic is tenant 0 unless clients set
  /// `NetContext::tenant`).
  std::map<uint32_t, uint64_t> NodeTenantOps(NodeId node) const;

  /// Total queueing delay handed out across all resources.
  uint64_t total_queue_ns() const;

  /// Total admission-control rejections across all resources.
  uint64_t total_rejections() const;

  /// Clears all busy windows and stats (capacities and tenant controls are
  /// kept).
  void Reset();

  const CongestionConfig& config() const { return config_; }

  class Shard;

  /// Replays one partition's epoch of admissions into the authoritative
  /// state and clears the shard for the next epoch. The log is replayed in
  /// the shard's own execution order, and the driver merges partitions in
  /// partition-id order — a total order that is a pure function of the
  /// simulation config. With a single partition the shard copied exactly
  /// the authoritative state and the replay re-derives it bit for bit, so
  /// stats match the serial driver's; with several, ops replay on top of
  /// sibling partitions' backlog, so authoritative ops/bytes/busy_ns are
  /// conserved exactly while free_ns/queue_ns reflect the merged order.
  void MergeShard(Shard* shard);

 private:
  /// The immutable per-tenant control table. Rebuilt wholesale by
  /// `UpdateTenantControls`; readers grab one pointer and use it for the
  /// whole op.
  struct ControlTable {
    bool sfq = false;  ///< SFQ discipline active (frozen from the config)
    double default_weight = 1.0;
    std::map<uint32_t, TenantControl> tenants;

    double WeightFor(uint32_t tenant) const {
      auto it = tenants.find(tenant);
      const double w = it == tenants.end() ? default_weight : it->second.weight;
      return w > 0.0 ? w : 1.0;
    }
    /// Effective admission bound: the tenant's override when set, else the
    /// resource's own bound. 0 = unbounded.
    uint64_t BoundFor(uint32_t tenant, uint64_t resource_bound_ns) const {
      auto it = tenants.find(tenant);
      if (it == tenants.end() || it->second.max_backlog_ns == 0) {
        return resource_bound_ns;
      }
      return it->second.max_backlog_ns;
    }
  };

  /// A tenant's lane at one resource (SFQ mode only).
  struct Lane {
    uint64_t free_ns = 0;    ///< lane's virtual finish time
    uint64_t ops = 0;        ///< ops serviced for this tenant
  };

  /// Pending work bucketed by absolute deadline (EDF mode only). The map is
  /// the not-yet-drained fluid backlog as of `drained_to`; admission drains
  /// elapsed virtual time from the earliest buckets before ranking the new
  /// op.
  struct EdfQueue {
    uint64_t drained_to = 0;
    std::map<uint64_t, uint64_t> pending;  // deadline -> remaining service ns
  };

  struct Resource {
    ResourceCapacity cap;
    ResourceStats stats;
    std::map<uint32_t, Lane> lanes;  // SFQ mode: tenant -> lane
    EdfQueue edf;                    // EDF mode
  };

  /// Starts service for one op on `r` at `>= t` under strict FIFO; returns
  /// the service start time (== t when the resource is idle).
  static uint64_t AdmitOneFifo(Resource* r, uint64_t t, uint64_t bytes);

  /// SFQ mode: serves one op from `tenant`'s lane; returns the op's fluid
  /// completion time (>= t + service; the excess is the queueing delay).
  uint64_t AdmitOneSfq(const ControlTable& ct, Resource* r, uint32_t tenant,
                       uint64_t t, uint64_t bytes) const;

  /// EDF mode: drains elapsed work deadline-first, queues the op behind
  /// pending work with deadlines <= its own, returns its service start.
  static uint64_t AdmitOneEdf(Resource* r, uint64_t t, uint64_t bytes,
                              uint64_t eff_deadline_ns);

  /// The wait an op from `tenant` arriving at `t` would be charged before
  /// its service begins (0 for unlimited resources).
  uint64_t BacklogAt(const ControlTable& ct, const Resource& r,
                     uint32_t tenant, uint64_t t,
                     uint64_t eff_deadline_ns) const;

  /// The full admission arithmetic on caller-supplied resources (backbone
  /// may be null = unconstrained). Single-sourced so the authoritative
  /// path, partition shards, and barrier replay are bit-identical.
  uint64_t AdmitOn(const ControlTable& ct, Resource* link, Resource* backbone,
                   uint32_t tenant, uint64_t arrival_ns, uint64_t bytes,
                   uint64_t deadline_ns) const;

  /// 0 = admitted, 1 = link would reject, 2 = backbone would reject.
  /// Pure check; the caller bumps the rejecting resource's counter.
  int TryAdmitOn(const ControlTable& ct, const Resource* link,
                 const Resource* backbone, uint32_t tenant,
                 uint64_t arrival_ns, uint64_t deadline_ns) const;

  /// The effective deadline EDF ranks an op by (deadline-less ops get
  /// `arrival + edf_default_slack_ns`).
  uint64_t EffectiveDeadline(uint64_t arrival_ns, uint64_t deadline_ns) const {
    return deadline_ns != 0 ? deadline_ns
                            : arrival_ns + config_.edf_default_slack_ns;
  }

  /// Lock-free load of the current control table (valid for the lifetime of
  /// the reading op: retired tables are kept alive; see controls_retired_).
  const ControlTable& controls() const {
    return *controls_snapshot_.load(std::memory_order_acquire);
  }

  Resource* ResourceFor(NodeId node);          // lazily created
  const Resource* FindResource(NodeId node) const;
  Resource* BackbonePtrLocked();  // null when the backbone is unlimited

  bool TryAdmitAuthoritative(NodeId node, uint32_t tenant,
                             uint64_t arrival_ns, uint64_t deadline_ns);
  uint64_t AdmitAuthoritative(NodeId node, uint32_t tenant,
                              uint64_t arrival_ns, uint64_t bytes,
                              uint64_t deadline_ns);

  const CongestionConfig config_;
  mutable std::mutex mu_;
  std::map<NodeId, Resource> nodes_;  // lazily created on first op
  Resource backbone_{/*cap=*/{}, {}, {}, {}};
  bool backbone_init_ = false;

  // Tenant-control snapshot: shared_ptr (under mu_) owns, raw atomic
  // mirrors for the per-op hot path. Old tables are parked in
  // controls_retired_ rather than freed so a reader that loaded the pointer
  // just before a swap finishes its op safely; the handful of controller
  // epochs per run makes the retired list tiny.
  std::shared_ptr<const ControlTable> controls_current_;
  std::vector<std::shared_ptr<const ControlTable>> controls_retired_;
  std::atomic<const ControlTable*> controls_snapshot_{nullptr};
};

/// Partition-local view of one `CongestionState` for the epoch-parallel
/// driver: resources are copied from the authoritative state on first touch
/// each epoch (mutex-free afterwards), admissions evolve the copies with
/// the exact authoritative arithmetic, and every decision is logged for the
/// barrier replay (`CongestionState::MergeShard`). Owned by a
/// `PartitionEffects` (src/net/partition.h); never shared across threads.
class CongestionState::Shard {
 public:
  explicit Shard(CongestionState* owner) : owner_(owner) {}

  /// Mirror of `CongestionState::TryAdmit` against this partition's view.
  bool TryAdmit(NodeId node, uint32_t tenant, uint64_t arrival_ns,
                uint64_t deadline_ns);

  /// Mirror of `CongestionState::Admit` against this partition's view.
  uint64_t Admit(NodeId node, uint32_t tenant, uint64_t arrival_ns,
                 uint64_t bytes, uint64_t deadline_ns);

  /// Mirror of `CongestionState::BacklogEstimate` (read-only; not logged).
  uint64_t BacklogEstimate(NodeId node, uint32_t tenant, uint64_t arrival_ns,
                           uint64_t deadline_ns);

  CongestionState* owner() const { return owner_; }
  size_t pending_events() const { return log_.size(); }

 private:
  friend class CongestionState;

  struct Event {
    enum Kind : uint8_t { kAdmit, kReject };
    Kind kind = kAdmit;
    bool backbone = false;  // kReject: which resource refused
    NodeId node = 0;
    uint32_t tenant = 0;
    uint64_t arrival_ns = 0;
    uint64_t bytes = 0;
    uint64_t deadline_ns = 0;
  };

  Resource* LocalFor(NodeId node);  // copy-on-first-touch from the owner
  Resource* LocalBackbone();        // null when the backbone is unlimited

  CongestionState* const owner_;
  std::map<NodeId, Resource> nodes_;
  Resource backbone_{/*cap=*/{}, {}, {}, {}};
  bool backbone_copied_ = false;
  std::vector<Event> log_;
};

}  // namespace disagg

#endif  // DISAGG_NET_CONGESTION_H_
