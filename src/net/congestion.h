#ifndef DISAGG_NET_CONGESTION_H_
#define DISAGG_NET_CONGESTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace disagg {

using NodeId = uint32_t;  // mirrors fabric.h (kept header-independent)

/// Service capacity of one shared resource (a node's NIC/link or the fabric
/// backbone). An op moving `b` bytes occupies the resource for
///   ns_per_op + b * ns_per_byte
/// simulated nanoseconds. Both terms default to 0 = "this dimension is
/// unconstrained"; a resource with both at 0 never queues.
///
/// This is deliberately the same shape as `InterconnectModel`'s cost terms,
/// but it models *occupancy of a shared pipe*, not the latency one client
/// observes: a NIC can have 2.5 us of one-sided READ latency while issuing a
/// new message every 100 ns. Under-load latency comes from the interconnect
/// model; the knee and the plateau come from this capacity.
struct ResourceCapacity {
  uint64_t ns_per_op = 0;   ///< issue overhead per op (1e9/x = ops/sec cap)
  double ns_per_byte = 0.0; ///< inverse service bandwidth

  uint64_t ServiceNs(uint64_t bytes) const {
    return ns_per_op +
           static_cast<uint64_t>(ns_per_byte * static_cast<double>(bytes));
  }
  bool unlimited() const { return ns_per_op == 0 && ns_per_byte == 0.0; }

  /// Capacity in ops/sec for `bytes`-sized ops (0 = unbounded).
  double OpsPerSec(uint64_t bytes) const {
    const uint64_t s = ServiceNs(bytes);
    return s == 0 ? 0.0 : 1e9 / static_cast<double>(s);
  }
};

/// Which resources exist and how big they are. Congestion is strictly
/// opt-in: a fabric without a config (or with an all-unlimited one) charges
/// nothing and keeps every counter bit-identical to the uncontended model.
struct CongestionConfig {
  /// Applied to any node without an explicit `node_caps` entry.
  ResourceCapacity default_node;

  /// Per-node overrides (e.g. a memory pool's NIC budget, Farview-style).
  std::map<NodeId, ResourceCapacity> node_caps;

  /// A single shared backbone every op crosses in addition to its target
  /// node's link (models the switch fabric / oversubscribed core).
  ResourceCapacity backbone;
};

/// Shared-resource congestion: a FIFO virtual-time queue per resource.
///
/// Ops arrive at the issuing client's current simulated time. Each resource
/// keeps the virtual time at which it next becomes free; an op starts
/// service at `max(arrival, free_time)`, occupies the resource for its
/// service time, and the client is charged `start - arrival` of queueing
/// delay on top of the unchanged interconnect cost model (broken out in
/// `NetContext::queue_ns`). An uncontended op (arrival >= free_time) is
/// charged nothing, so a single client below capacity — or any run with
/// congestion disabled — keeps bit-identical counters.
///
/// Determinism: admission order is the order of `Admit()` calls. The
/// `sim::LoadDriver` schedules clients in global virtual-time order, which
/// makes arrivals non-decreasing and the queue a true FIFO-by-arrival-time
/// discipline; the whole run is then a pure function of the workload seed.
class CongestionState {
 public:
  explicit CongestionState(CongestionConfig config)
      : config_(std::move(config)) {}

  /// Admits one op moving `bytes` bytes to/from `node`, arriving at the
  /// client's virtual time `arrival_ns`. Returns the queueing delay to
  /// charge the client; advances the busy windows of the node's link and
  /// the backbone.
  uint64_t Admit(NodeId node, uint64_t arrival_ns, uint64_t bytes);

  /// Accumulated accounting for one resource.
  struct ResourceStats {
    uint64_t ops = 0;       ///< ops serviced
    uint64_t bytes = 0;     ///< bytes serviced
    uint64_t busy_ns = 0;   ///< total service time (sum over ops)
    uint64_t queue_ns = 0;  ///< total queueing delay imposed on clients
    uint64_t free_ns = 0;   ///< virtual time the resource next idles
  };

  ResourceStats NodeStats(NodeId node) const;
  ResourceStats BackboneStats() const;

  /// Total queueing delay handed out across all resources.
  uint64_t total_queue_ns() const;

  /// Clears all busy windows and stats (capacities are kept).
  void Reset();

  const CongestionConfig& config() const { return config_; }

 private:
  struct Resource {
    ResourceCapacity cap;
    ResourceStats stats;
  };

  /// Starts service for one op on `r` at `>= t`; returns the service start
  /// time (== t when the resource is idle).
  static uint64_t AdmitOne(Resource* r, uint64_t t, uint64_t bytes);

  const CongestionConfig config_;
  mutable std::mutex mu_;
  std::map<NodeId, Resource> nodes_;  // lazily created on first op
  Resource backbone_{/*cap=*/{}, {}};
  bool backbone_init_ = false;
};

}  // namespace disagg

#endif  // DISAGG_NET_CONGESTION_H_
