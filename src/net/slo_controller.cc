#include "net/slo_controller.h"

#include <algorithm>
#include <sstream>

namespace disagg {

SloController::SloController(Fabric* fabric, Options opts)
    : fabric_(fabric), opts_(opts) {}

void SloController::AddDegradeTarget(StalenessActuator* target) {
  degrade_targets_.push_back(target);
}

void SloController::Sample::Add(uint64_t latency_ns, const Status& st) {
  ops++;
  if (st.ok()) {
    ok++;
    latency.Record(latency_ns);
  } else if (st.IsBusy()) {
    busy++;
  } else {
    err++;
  }
}

void SloController::Sample::Merge(const Sample& other) {
  ops += other.ops;
  ok += other.ok;
  busy += other.busy;
  err += other.err;
  latency.Merge(other.latency);
}

void SloController::Observe(uint32_t tenant, uint64_t latency_ns,
                            const Status& st) {
  obs_[tenant].Add(latency_ns, st);
}

void SloController::Ingest(const EpochObservations& obs) {
  for (const auto& [tenant, sample] : obs) obs_[tenant].Merge(sample);
}

SloController::TenantState& SloController::EnsureTenant(uint32_t tenant,
                                                        const SloSpec& spec) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) {
    it->second.spec = spec;
    return it->second;
  }
  TenantState ts;
  ts.spec = spec;
  // Seed the weight from the congestion config so the controller's first
  // published table is a no-op relative to the operator's static setup.
  if (auto congestion = fabric_->congestion()) {
    ts.weight = congestion->config().WeightFor(tenant);
  }
  if (opts_.actuate_admission && spec.p99_target_ns > 0) {
    ts.backlog_bound_ns = static_cast<uint64_t>(
        opts_.backlog_fraction * static_cast<double>(spec.p99_target_ns));
  }
  return tenants_.emplace(tenant, ts).first->second;
}

void SloController::EndEpoch(uint64_t /*epoch_end_ns*/) {
  epochs_++;
  const std::map<uint32_t, SloSpec> specs = fabric_->slo_specs();
  bool controls_changed = false;

  for (const auto& [tenant, spec] : specs) {
    if (spec.p99_target_ns == 0) continue;  // best effort, nothing to steer
    TenantState& ts = EnsureTenant(tenant, spec);
    const Sample& s = obs_[tenant];
    ts.epoch_ops = s.ops;
    ts.epoch_busy = s.busy;

    if (s.latency.count() < opts_.min_samples) {
      // Thin evidence (idle or churned-away tenant): hold every actuator.
      ts.stable_epochs++;
      continue;
    }
    const double target = static_cast<double>(spec.p99_target_ns);
    const double observed = s.latency.Percentile(99.0);
    ts.observed_p99_ns = observed;
    if (ts.infeasible) continue;  // frozen: flagged sets never oscillate

    const double ratio = observed / target;
    bool changed = false;

    if (ratio > 1.0) {
      // Missing. Escalate: weight, then admission, then staleness.
      ts.meeting = false;
      const double nw = std::clamp(
          ts.weight * std::min(2.0, 1.0 + opts_.gain * (ratio - 1.0)),
          opts_.min_weight, opts_.max_weight);
      if (nw != ts.weight) {
        ts.weight = nw;
        changed = true;
      }
      if (opts_.actuate_admission && ts.backlog_bound_ns > 0) {
        const uint64_t floor_ns = static_cast<uint64_t>(
            opts_.backlog_min_fraction * target);
        const uint64_t nb = std::max(
            floor_ns,
            static_cast<uint64_t>(static_cast<double>(ts.backlog_bound_ns) *
                                  0.8));
        if (nb != ts.backlog_bound_ns) {
          ts.backlog_bound_ns = nb;
          changed = true;
        }
      }
      if (!changed && !degrade_targets_.empty() &&
          ts.staleness_bound_lsn < opts_.staleness_max_lsn) {
        // Weight and bound are pinned at their clamps: trade freshness.
        ts.staleness_bound_lsn =
            std::min(opts_.staleness_max_lsn,
                     ts.staleness_bound_lsn + opts_.staleness_step_lsn);
        staleness_dirty_ = true;
        changed = true;
      }
      if (changed) {
        ts.saturated_epochs = 0;
      } else if (++ts.saturated_epochs >= opts_.infeasible_epochs) {
        ts.infeasible = true;
      }
    } else if (ratio < opts_.deadband_lo) {
      // Comfortably beating the target: hand headroom back so other
      // tenants (and future churn) can use it. Mirrors the miss branch
      // with damped, clamped steps.
      ts.meeting = true;
      ts.saturated_epochs = 0;
      const double nw = std::clamp(
          ts.weight * std::max(0.5, 1.0 - opts_.gain * (opts_.deadband_lo -
                                                        ratio)),
          opts_.min_weight, opts_.max_weight);
      if (nw != ts.weight) {
        ts.weight = nw;
        changed = true;
      }
      if (opts_.actuate_admission && ts.backlog_bound_ns > 0) {
        const uint64_t cap_ns = static_cast<uint64_t>(
            opts_.backlog_max_fraction * target);
        const uint64_t nb = std::min(
            cap_ns,
            static_cast<uint64_t>(static_cast<double>(ts.backlog_bound_ns) *
                                  1.25));
        if (nb != ts.backlog_bound_ns) {
          ts.backlog_bound_ns = nb;
          changed = true;
        }
      }
      if (ts.staleness_bound_lsn > 0) {
        ts.staleness_bound_lsn =
            ts.staleness_bound_lsn > opts_.staleness_step_lsn
                ? ts.staleness_bound_lsn - opts_.staleness_step_lsn
                : 0;
        staleness_dirty_ = true;
        changed = true;
      }
    } else {
      // In the deadband: the fixed point. Touch nothing.
      ts.meeting = true;
      ts.saturated_epochs = 0;
    }

    if (changed) {
      ts.stable_epochs = 0;
      controls_changed = true;
    } else {
      ts.stable_epochs++;
    }
  }

  // Tenant churn GC: a tenant whose contract was revoked (Fabric::RevokeSlo)
  // releases everything the controller imposed for it — weight overlay,
  // admission bound, staleness, frozen-infeasible flag. The staleness bound
  // is zeroed explicitly (PublishControls only walks live tenants), and the
  // republished table rebuilds from the static config, so the departed
  // tenant falls back to its operator-configured share.
  for (auto it = tenants_.begin(); it != tenants_.end();) {
    if (specs.count(it->first) != 0) {
      ++it;
      continue;
    }
    if (it->second.staleness_bound_lsn > 0) {
      for (StalenessActuator* target : degrade_targets_) {
        target->SetTenantStaleness(it->first, 0);
      }
    }
    it = tenants_.erase(it);
    controls_changed = true;
  }

  if (controls_changed || epochs_ == 1) PublishControls();
  obs_.clear();
}

void SloController::PublishControls() {
  if (auto congestion = fabric_->congestion()) {
    // Start from the operator's static weights so tenants without declared
    // SLOs keep their configured shares, then overlay the controlled ones.
    std::map<uint32_t, TenantControl> table;
    for (const auto& [tenant, w] : congestion->config().tenant_weights) {
      table[tenant].weight = w;
    }
    for (const auto& [tenant, ts] : tenants_) {
      table[tenant] = TenantControl{ts.weight, ts.backlog_bound_ns};
    }
    congestion->UpdateTenantControls(table);
  }
  if (staleness_dirty_) {
    for (StalenessActuator* target : degrade_targets_) {
      for (const auto& [tenant, ts] : tenants_) {
        target->SetTenantStaleness(tenant, ts.staleness_bound_lsn);
      }
    }
    staleness_dirty_ = false;
  }
}

SloController::TenantState SloController::StateFor(uint32_t tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantState{} : it->second;
}

bool SloController::AllConverged() const {
  for (const auto& [tenant, ts] : tenants_) {
    if (ts.spec.p99_target_ns == 0) continue;
    if (ts.infeasible) continue;  // terminal (frozen) state
    if (ts.stable_epochs < opts_.converge_epochs) return false;
  }
  return true;
}

bool SloController::AnyInfeasible() const {
  for (const auto& [tenant, ts] : tenants_) {
    if (ts.infeasible) return true;
  }
  return false;
}

std::string SloController::ToString() const {
  std::ostringstream os;
  for (const auto& [tenant, ts] : tenants_) {
    os << "tenant " << tenant << ": target=" << ts.spec.p99_target_ns
       << "ns observed=" << static_cast<uint64_t>(ts.observed_p99_ns)
       << "ns weight=" << ts.weight << " bound=" << ts.backlog_bound_ns
       << "ns staleness=" << ts.staleness_bound_lsn
       << " ops=" << ts.epoch_ops << " busy=" << ts.epoch_busy
       << (ts.meeting ? " MEETING" : " MISSING")
       << (ts.infeasible ? " INFEASIBLE" : "")
       << (ts.stable_epochs >= opts_.converge_epochs ? " CONVERGED" : "")
       << "\n";
  }
  return os.str();
}

}  // namespace disagg
