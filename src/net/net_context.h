#ifndef DISAGG_NET_NET_CONTEXT_H_
#define DISAGG_NET_NET_CONTEXT_H_

#include <cstdint>

namespace disagg {

/// Per-client accounting of simulated time and traffic. Every fabric
/// operation issued with this context charges its cost here; benchmarks
/// derive throughput and latency from the accumulated simulated nanoseconds,
/// which is deterministic and independent of host speed or core count.
struct NetContext {
  uint64_t sim_ns = 0;        ///< total simulated time consumed
  uint64_t bytes_out = 0;     ///< bytes this client pushed onto the fabric
  uint64_t bytes_in = 0;      ///< bytes this client pulled off the fabric
  uint64_t round_trips = 0;   ///< network round trips (RDMA verbs + RPCs)
  uint64_t rpcs = 0;          ///< two-sided operations among the round trips

  void Charge(uint64_t ns) { sim_ns += ns; }

  void Reset() { *this = NetContext{}; }

  /// Merges another context's counters (e.g. per-thread contexts at the end
  /// of a benchmark).
  void Merge(const NetContext& o) {
    sim_ns += o.sim_ns;
    bytes_out += o.bytes_out;
    bytes_in += o.bytes_in;
    round_trips += o.round_trips;
    rpcs += o.rpcs;
  }

  double SimMillis() const { return static_cast<double>(sim_ns) / 1e6; }
};

/// Folds the contexts of operations issued *in parallel* (e.g. fan-out to
/// quorum replicas) into a parent context: elapsed simulated time is the max
/// of the branches, while traffic counters are summed.
inline void MergeParallel(NetContext* parent,
                          const NetContext* branches, size_t n) {
  uint64_t max_ns = 0;
  for (size_t i = 0; i < n; i++) {
    const NetContext& b = branches[i];
    if (b.sim_ns > max_ns) max_ns = b.sim_ns;
    parent->bytes_out += b.bytes_out;
    parent->bytes_in += b.bytes_in;
    parent->round_trips += b.round_trips;
    parent->rpcs += b.rpcs;
  }
  parent->sim_ns += max_ns;
}

}  // namespace disagg

#endif  // DISAGG_NET_NET_CONTEXT_H_
