#ifndef DISAGG_NET_NET_CONTEXT_H_
#define DISAGG_NET_NET_CONTEXT_H_

#include <cstddef>
#include <cstdint>

#include "net/verb.h"

namespace disagg {

/// Per-verb slice of a client's traffic: how many operations of one verb the
/// client executed and what they cost. On a run with no interceptor-injected
/// perturbation, summing these over all verbs reproduces the aggregate
/// fabric-charged counters exactly (local compute charged directly via
/// `Charge()` by upper layers is aggregate-only by design).
struct VerbCounters {
  uint64_t ops = 0;        ///< operations of this verb that reached the target
  uint64_t sim_ns = 0;     ///< simulated time charged by those operations
  uint64_t bytes_out = 0;  ///< bytes pushed by those operations
  uint64_t bytes_in = 0;   ///< bytes pulled by those operations

  void Merge(const VerbCounters& o) {
    ops += o.ops;
    sim_ns += o.sim_ns;
    bytes_out += o.bytes_out;
    bytes_in += o.bytes_in;
  }
};

/// Per-client accounting of simulated time and traffic. Every fabric
/// operation issued with this context charges its cost here; benchmarks
/// derive throughput and latency from the accumulated simulated nanoseconds,
/// which is deterministic and independent of host speed or core count.
struct NetContext {
  uint64_t sim_ns = 0;        ///< total simulated time consumed
  uint64_t bytes_out = 0;     ///< bytes this client pushed onto the fabric
  uint64_t bytes_in = 0;      ///< bytes this client pulled off the fabric
  uint64_t round_trips = 0;   ///< network round trips (RDMA verbs + RPCs)
  uint64_t rpcs = 0;          ///< two-sided operations among the round trips

  // Interceptor-maintained robustness counters. `backoff_ns` and fault
  // penalties are *included* in `sim_ns`; these break out where it went.
  uint64_t retries = 0;          ///< op re-issues by the retry interceptor
  uint64_t backoff_ns = 0;       ///< sim time spent in retry backoff
  uint64_t faults_injected = 0;  ///< drops/spikes/flaps hit by this client

  /// Queueing delay imposed by the shared-resource congestion model
  /// (`src/net/congestion.h`), *included* in `sim_ns` like `backoff_ns`.
  /// Always 0 when congestion is disabled or the fabric is uncontended.
  uint64_t queue_ns = 0;

  /// Ops refused up front by congestion admission control
  /// (`ResourceCapacity::max_backlog_ns`); each was failed with
  /// `Status::Busy` and charged only `CongestionConfig::rejection_cost_ns`
  /// (included in `sim_ns`, not in `queue_ns`).
  uint64_t admission_rejects = 0;

  // ---- Graceful-degradation counters (all 0 unless a deadline, hedge,
  // breaker, or degrade policy is configured; see DESIGN.md "Graceful
  // degradation") ----------------------------------------------------------

  /// Ops whose completion overran the context's `deadline_ns` budget, plus
  /// ops refused up front because the budget was already exhausted at issue
  /// time (those fail with `Status::TimedOut` before touching the wire).
  uint64_t deadline_misses = 0;

  /// Backup requests issued by the hedge interceptor (each one is an extra
  /// op whose traffic is charged on top of the primary's).
  uint64_t hedges = 0;

  /// Hedged ops where the backup completed before the primary (the client
  /// continued at the backup's completion time).
  uint64_t hedge_wins = 0;

  /// Ops fast-failed by an open circuit breaker: charged only the breaker's
  /// small fast-fail penalty instead of a full drop/timeout penalty.
  uint64_t breaker_fast_fails = 0;

  /// Reads served by the engine degrade ladder from a bounded-staleness
  /// replica copy (the strict-freshness path had failed with
  /// Busy/Unavailable/TimedOut first).
  uint64_t degraded_ops = 0;

  /// Total staleness observed across `degraded_ops`, in LSN units:
  /// sum over degraded reads of (required page LSN - served copy's LSN).
  /// Always <= degraded_ops * the policy's staleness bound.
  uint64_t staleness_lsn = 0;

  /// Absolute virtual-time deadline for ops issued on this context
  /// (0 = no deadline, the default). An *input* attribute like `tenant`:
  /// `Fork()` inherits it, merges leave the destination's value. The retry
  /// interceptor never backs off past the remaining budget, and the fabric
  /// refuses ops issued at or after the deadline with `Status::TimedOut`.
  /// Compared against `sim_ns`, so callers set it as `sim_ns + budget`.
  uint64_t deadline_ns = 0;

  /// Tenant id stamped onto every fabric op this context issues
  /// (`FabricOp::tenant`): the key for weighted fair queueing and per-tenant
  /// admission control at congested resources. 0 (the default) is an
  /// ordinary tenant like any other — with no `tenant_weights` configured
  /// the congestion model never looks at it. An *input* attribute, not a
  /// counter: `Fork()` inherits it and merges leave the destination's value.
  uint32_t tenant = 0;

  /// Deterministic identity of the logical operation this context is
  /// issuing, stamped by the load drivers as a pure function of
  /// (client, op index); 0 = untagged. With
  /// `FaultPolicy::key_by_op_tag` set, fault decisions are keyed by
  /// (op_tag, fault_draws, sim_ns) instead of the interceptor's global op
  /// sequence — required under the epoch-parallel driver, where the global
  /// order in which ops reach an interceptor is an execution detail, not
  /// part of the model. An *input* attribute like `tenant`: `Fork()`
  /// inherits it, merges leave the destination's value.
  uint64_t op_tag = 0;

  /// How many fault-injection decisions this context has drawn (advanced by
  /// the fault interceptor in `key_by_op_tag` mode so retries of one op get
  /// fresh draws). Bookkeeping, not a metric: `Fork()` starts a branch at 0
  /// — branches decorrelate through their distinct issue times — and merges
  /// leave the destination's value.
  uint64_t fault_draws = 0;

  /// Per-verb breakdown of the fabric-charged counters above, maintained by
  /// `Fabric::Execute()`.
  VerbCounters per_verb[kNumFabricVerbs] = {};

  const VerbCounters& verb(FabricVerb v) const { return per_verb[VerbIndex(v)]; }

  void Charge(uint64_t ns) { sim_ns += ns; }

  void Reset() { *this = NetContext{}; }

  /// A branch context for work forked *now*: the clock starts at this
  /// context's current `sim_ns` (so fabric ops issued on the branch arrive
  /// at the congestion model at the right virtual time), while all traffic
  /// counters start at zero. Pair with `JoinParallel()`; with congestion
  /// disabled, Fork+JoinParallel charges exactly what zero-initialized
  /// branches + `MergeParallel` charged.
  NetContext Fork() const {
    NetContext b;
    b.sim_ns = sim_ns;
    b.tenant = tenant;  // branches bill the same tenant at shared resources
    b.deadline_ns = deadline_ns;  // branches race the same budget
    b.op_tag = op_tag;            // branches are legs of the same logical op
    return b;
  }

  /// Merges another context's counters by summing everything, `sim_ns`
  /// included. This is the *sequential* merge: it is correct when `o`'s
  /// work happened after (or interleaved with, on one logical timeline)
  /// this context's work — e.g. folding the phases of one client's run
  /// together. For contexts that represent *concurrent* clients or fan-out
  /// branches, summing `sim_ns` overstates wall-clock time; use
  /// `MergeParallel()` below, which takes the max of elapsed time and sums
  /// only the traffic/attribution counters.
  void Merge(const NetContext& o) {
    sim_ns += o.sim_ns;
    bytes_out += o.bytes_out;
    bytes_in += o.bytes_in;
    round_trips += o.round_trips;
    rpcs += o.rpcs;
    retries += o.retries;
    backoff_ns += o.backoff_ns;
    faults_injected += o.faults_injected;
    queue_ns += o.queue_ns;
    admission_rejects += o.admission_rejects;
    deadline_misses += o.deadline_misses;
    hedges += o.hedges;
    hedge_wins += o.hedge_wins;
    breaker_fast_fails += o.breaker_fast_fails;
    degraded_ops += o.degraded_ops;
    staleness_lsn += o.staleness_lsn;
    for (size_t v = 0; v < kNumFabricVerbs; v++) per_verb[v].Merge(o.per_verb[v]);
  }

  double SimMillis() const { return static_cast<double>(sim_ns) / 1e6; }
};

/// Sums one branch's traffic/attribution counters (everything except the
/// clock) into `parent`; the shared leg of `MergeParallel`/`JoinParallel`.
inline void AccumulateTraffic(NetContext* parent, const NetContext& b) {
  parent->bytes_out += b.bytes_out;
  parent->bytes_in += b.bytes_in;
  parent->round_trips += b.round_trips;
  parent->rpcs += b.rpcs;
  parent->retries += b.retries;
  parent->backoff_ns += b.backoff_ns;
  parent->faults_injected += b.faults_injected;
  parent->queue_ns += b.queue_ns;
  parent->admission_rejects += b.admission_rejects;
  parent->deadline_misses += b.deadline_misses;
  parent->hedges += b.hedges;
  parent->hedge_wins += b.hedge_wins;
  parent->breaker_fast_fails += b.breaker_fast_fails;
  parent->degraded_ops += b.degraded_ops;
  parent->staleness_lsn += b.staleness_lsn;
  for (size_t v = 0; v < kNumFabricVerbs; v++) {
    parent->per_verb[v].Merge(b.per_verb[v]);
  }
}

/// Folds the contexts of operations issued *in parallel* (e.g. fan-out to
/// quorum replicas, Snowflake virtual warehouses, or the LoadDriver's
/// concurrent clients) into a parent context: elapsed simulated time is the
/// max of the branches, while traffic counters are summed. Per-verb
/// breakdowns, `backoff_ns`, and `queue_ns` (like traffic) are attribution
/// counters and are summed, so after a parallel merge they bound, rather
/// than equal, the parent's elapsed `sim_ns`.
///
/// Rule of thumb: one timeline -> `Merge`; side-by-side timelines ->
/// `MergeParallel`. Users: quorum/raft replication fan-out, engine commit
/// fan-out (`src/core/engines.cc`), FORD parallel validation,
/// pushdown producers, `SnowflakeDb::Query` VW merge, and
/// `sim::RunClosedLoop`.
inline void MergeParallel(NetContext* parent,
                          const NetContext* branches, size_t n) {
  uint64_t max_ns = 0;
  for (size_t i = 0; i < n; i++) {
    const NetContext& b = branches[i];
    if (b.sim_ns > max_ns) max_ns = b.sim_ns;
    AccumulateTraffic(parent, b);
  }
  parent->sim_ns += max_ns;
}

/// Joins branches created with `parent->Fork()`: the parent's clock jumps
/// to the latest branch finish time (branch clocks are absolute, not
/// elapsed), and traffic/attribution counters are summed exactly as in
/// `MergeParallel`. Use this for *internal* fan-out on one client's
/// timeline (quorum appends, page-store broadcast, FORD validation);
/// `MergeParallel` remains the fold for *top-level* concurrent clients
/// whose timelines all start at zero.
inline void JoinParallel(NetContext* parent,
                         const NetContext* branches, size_t n) {
  uint64_t max_ns = parent->sim_ns;
  for (size_t i = 0; i < n; i++) {
    const NetContext& b = branches[i];
    if (b.sim_ns > max_ns) max_ns = b.sim_ns;
    AccumulateTraffic(parent, b);
  }
  parent->sim_ns = max_ns;
}

}  // namespace disagg

#endif  // DISAGG_NET_NET_CONTEXT_H_
