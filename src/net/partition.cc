#include "net/partition.h"

namespace disagg {

namespace {
thread_local PartitionEffects* g_current_effects = nullptr;
}  // namespace

CongestionState::Shard* PartitionEffects::ShardFor(CongestionState* state) {
  auto it = congestion_shards.find(state);
  if (it == congestion_shards.end()) {
    it = congestion_shards
             .emplace(state, std::make_unique<CongestionState::Shard>(state))
             .first;
  }
  return it->second.get();
}

CircuitBreakerInterceptor::ShardState& PartitionEffects::BreakerShardFor(
    CircuitBreakerInterceptor* breaker) {
  return breaker_shards[breaker];
}

PartitionEffects* CurrentPartitionEffects() { return g_current_effects; }

PartitionEffectsScope::PartitionEffectsScope(PartitionEffects* effects)
    : prev_(g_current_effects) {
  g_current_effects = effects;
}

PartitionEffectsScope::~PartitionEffectsScope() { g_current_effects = prev_; }

}  // namespace disagg
