#ifndef DISAGG_NET_MEMBERSHIP_H_
#define DISAGG_NET_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/fabric.h"

namespace disagg {

class CircuitBreakerInterceptor;  // net/interceptors.h

namespace membership {
/// Heartbeat RPC every monitored node answers (registered by `Monitor`).
inline constexpr const char* kPingMethod = "member.ping";
/// Weak-CPU cost of answering a ping (scaled by the node's `cpu_scale`).
inline constexpr uint64_t kPingComputeNs = 200;
}  // namespace membership

/// Fencing seam between the fleet membership service and the subsystems
/// that hand out revocable state (executor lock grants, buffer-pool writer
/// slots, log epochs). A consumer binds an authority and compares the lease
/// epoch it last synchronized against the authority's current one; an
/// advance means the node's lease was revoked and everything issued under
/// the old lease is void. Unbound consumers (`nullptr`) behave exactly as
/// before the seam existed — bit-identical, pinned by parity tests.
class LeaseAuthority {
 public:
  virtual ~LeaseAuthority() = default;

  /// Current lease epoch for `node`: 1 when first monitored, +1 per
  /// revocation. 0 = node not under lease management (never fenced).
  virtual uint64_t LeaseEpoch(NodeId node) const = 0;

  /// True iff `node` holds a valid (un-revoked) lease at `epoch`.
  /// Unmonitored nodes are always valid.
  virtual bool LeaseValid(NodeId node, uint64_t epoch) const = 0;
};

struct MembershipOptions {
  /// Virtual-time spacing of heartbeats per monitored node. Probes fire at
  /// epoch barriers, so the effective period is max(this, epoch_ns).
  uint64_t heartbeat_period_ns = 20'000;

  /// Phi-accrual-style suspicion score: revocation threshold and the
  /// per-signal increments/decay. A hard miss (Unavailable / TimedOut)
  /// contributes `miss_increment`; a slow-but-successful ack whose RTT
  /// exceeds `gray_rtt_factor` times the node's EWMA baseline contributes
  /// `gray_increment` (the gray-failure signal); a healthy ack multiplies
  /// the score by `healthy_decay`. `Status::Busy` is an ALIVE signal —
  /// admission rejection is overload, not node death — so it decays the
  /// score exactly like a healthy ack and never moves the RTT baseline
  /// (the PR 5 circuit-breaker lesson, here load-bearing for quorum
  /// safety: overload can never amputate members).
  double suspicion_threshold = 3.0;
  double miss_increment = 1.0;
  double gray_increment = 0.5;
  double healthy_decay = 0.25;
  double gray_rtt_factor = 4.0;
  /// EWMA smoothing for the RTT baseline (baseline is frozen while a
  /// sample classifies as gray, so a slowdown cannot drag its own
  /// reference up).
  double rtt_alpha = 0.2;

  /// Virtual-time delay between lease revocation and the orchestrator
  /// running the node's repair action (models replacement provisioning).
  uint64_t repair_delay_ns = 100'000;

  /// Consecutive alive heartbeats a repaired node must answer before it
  /// rejoins (lease validated, breaker reset, rejoin hooks run).
  uint32_t rejoin_probes = 2;

  /// When false the service detects and revokes (fencing still happens)
  /// but never runs repair hooks — the scripted-recovery / no-recovery
  /// comparison arms. Probing still resumes after `repair_delay_ns`, so an
  /// externally revived node is re-admitted through the same probation.
  bool auto_recover = true;
};

/// Fleet membership, failure detection, and unattended recovery
/// (DESIGN.md "Membership, leases, and self-healing").
///
/// Heartbeats ride the fabric op pipeline as ordinary `Call` verbs —
/// charged to the service's probe context, interceptable (fault windows
/// and congestion apply to probes exactly as to data traffic), and
/// deadline-capped at one heartbeat period. Suspicion updates, lease
/// revocations, orchestrated repairs, and rejoins all execute inside
/// `EndEpoch`, which the load drivers call at the PR-7 epoch barriers
/// while no ops are in flight — so every decision is a pure function of
/// (seed, partitions, epoch_ns), bit-identical at any thread count. The
/// deterministic `events()` log is both the replay comparand and the
/// source of detection-latency / MTTR metrics.
///
/// Node lifecycle: kUp --(suspicion >= threshold)--> kRevoked (lease
/// epoch bumped; revoke hook fences downstream state; repair timer armed)
/// --(timer at a barrier)--> kRejoining (repair hook runs, probation
/// probing starts) --(rejoin_probes alive acks)--> kUp (breaker reset,
/// rejoin hook). Repair runs at most once per lease epoch — actions are
/// idempotent and replayable by construction.
class MembershipService : public LeaseAuthority {
 public:
  enum class NodeHealth : uint8_t { kUp, kRevoked, kRejoining };

  struct Event {
    enum class Kind : uint8_t { kSuspect, kRevoke, kRepair, kRejoin };
    uint64_t at_ns = 0;
    NodeId node = 0;
    Kind kind = Kind::kSuspect;
    uint64_t lease_epoch = 0;  ///< lease epoch after the transition
    bool operator==(const Event&) const = default;
  };

  struct Stats {
    uint64_t heartbeats = 0;  ///< probes issued
    uint64_t misses = 0;      ///< Unavailable/TimedOut probe outcomes
    uint64_t gray_acks = 0;   ///< successful but slower than the gray bound
    uint64_t busy_acks = 0;   ///< Busy probe outcomes (alive, never a miss)
    uint64_t revocations = 0;
    uint64_t repairs = 0;
    uint64_t rejoins = 0;
  };

  MembershipService(Fabric* fabric, MembershipOptions opts);

  /// Places `node` under lease management: registers the `member.ping`
  /// handler on it and grants lease epoch 1. Config-time, like node
  /// registration; monitor before binding consumers to the authority.
  void Monitor(NodeId node);

  /// Recovery action for `node`, run once per revocation when the repair
  /// timer fires at a barrier (e.g. `MemNodeExecutor::Recover`, log-fleet
  /// `SealAndReconfigure`, buffer-pool `FenceCrashedWriters`). Only runs
  /// with `auto_recover` set. Must not call back into this service.
  void OnRepair(NodeId node, std::function<void()> fn);

  /// Fencing action run at revocation itself (always, even in detect-only
  /// mode): the lease is the fence, recovery is the repair.
  void OnRevoke(NodeId node, std::function<void()> fn);

  /// Action run when `node` completes probation and rejoins.
  void OnRejoin(NodeId node, std::function<void()> fn);

  /// Breakers whose per-node history is reset when a revoked node's repair
  /// opens rejoin probation (and again at rejoin): the failed incarnation's
  /// error history must not fast-fail the replacement — or the probation
  /// probes themselves.
  void ResetBreakerOnRejoin(CircuitBreakerInterceptor* breaker);

  /// Schedules `fn` to run at the first barrier whose end >= `at_ns`
  /// (before that barrier's heartbeats), in (at_ns, registration) order.
  /// The deterministic stand-in for "a node dies at t": chaos schedules
  /// and benches arm kills and scripted revives through this.
  void At(uint64_t at_ns, std::function<void()> fn);

  /// Barrier step: runs due scheduled actions, due repairs, and every due
  /// heartbeat round (nodes in ascending id order), then applies suspicion
  /// and lifecycle transitions. Call with no ops in flight.
  void EndEpoch(uint64_t epoch_end_ns);

  /// Serial convenience for chaos loops: runs every barrier step at
  /// multiples of the heartbeat period up to `now_ns`. The barrier instants
  /// are a pure function of the caller's clock stream, so replays match.
  void AdvanceTo(uint64_t now_ns);

  // ---- LeaseAuthority ---------------------------------------------------
  uint64_t LeaseEpoch(NodeId node) const override;
  bool LeaseValid(NodeId node, uint64_t epoch) const override;

  const MembershipOptions& options() const { return opts_; }

  NodeHealth HealthFor(NodeId node) const;
  double SuspicionFor(NodeId node) const;
  const std::vector<Event>& events() const { return events_; }
  Stats stats() const;

  /// Aggregate probe traffic (heartbeat RTTs summed into `sim_ns`): the
  /// service is a tenant of the fabric like any other and its overhead is
  /// measurable.
  const NetContext& probe_context() const { return charge_; }

  std::string ToString() const;

 private:
  struct NodeState {
    NodeHealth health = NodeHealth::kUp;
    uint64_t lease_epoch = 1;
    double suspicion = 0.0;
    double rtt_ewma = 0.0;  // 0 = no baseline yet
    bool suspected = false;  // kSuspect emitted since the last healthy ack
    uint64_t next_hb_ns = 0;
    uint64_t probe_seq = 0;
    uint64_t repair_due_ns = 0;      // armed while kRevoked
    uint64_t repaired_epoch = 0;     // lease epoch whose repair already ran
    uint32_t alive_probes = 0;       // consecutive, while kRejoining
    std::function<void()> on_revoke;
    std::function<void()> on_repair;
    std::function<void()> on_rejoin;
  };

  struct ScheduledAction {
    uint64_t at_ns = 0;
    uint64_t seq = 0;
    std::function<void()> fn;
  };

  /// Issues one heartbeat and applies its outcome. `lock` is released
  /// around the fabric call (probes must not hold service state while the
  /// pipeline — and anything it fences — runs).
  void HeartbeatLocked(NodeId id, NodeState* st, uint64_t now_ns,
                       std::unique_lock<std::mutex>* lock);
  void RevokeLocked(NodeId id, NodeState* st, uint64_t now_ns,
                    std::unique_lock<std::mutex>* lock);
  void RejoinLocked(NodeId id, NodeState* st, uint64_t now_ns,
                    std::unique_lock<std::mutex>* lock);

  Fabric* const fabric_;
  const MembershipOptions opts_;

  mutable std::mutex mu_;
  std::map<NodeId, NodeState> nodes_;  // ascending id = barrier visit order
  std::vector<ScheduledAction> actions_;  // sorted by (at_ns, seq)
  uint64_t action_seq_ = 0;
  std::vector<CircuitBreakerInterceptor*> breakers_;
  std::vector<Event> events_;
  NetContext charge_;
  Stats stats_;
  uint64_t advanced_to_ns_ = 0;  // AdvanceTo cursor
  bool advancing_ = false;       // AdvanceTo re-entrancy guard
};

}  // namespace disagg

#endif  // DISAGG_NET_MEMBERSHIP_H_
