#include "net/interceptors.h"

#include <algorithm>
#include <sstream>

#include "common/random.h"

namespace disagg {

// ---- TraceInterceptor ----------------------------------------------------

Status TraceInterceptor::Intercept(Fabric* fabric, FabricOp* op,
                                   NetContext* ctx,
                                   const FabricOpInvoker& next) {
  const uint64_t ns_before = ctx->sim_ns;
  const uint64_t out_before = ctx->bytes_out;
  const uint64_t in_before = ctx->bytes_in;
  Status st = next(op, ctx);
  const uint64_t ns = ctx->sim_ns - ns_before;

  std::string key = FabricVerbName(op->verb);
  key += '/';
  const Node* target = fabric->node(op->node);
  if (target != nullptr) {
    key += target->model().name;
    key += '/';
    key += NodeKindName(target->kind());
  } else {
    key += "?/?";
  }

  std::lock_guard<std::mutex> lock(mu_);
  ops_++;
  if (!st.ok()) failures_++;
  hists_[key].Record(ns);
  if (capacity_ > 0) {
    TraceRecord rec;
    rec.seq = seq_++;
    rec.verb = op->verb;
    rec.node = op->node;
    rec.bytes_out = ctx->bytes_out - out_before;
    rec.bytes_in = ctx->bytes_in - in_before;
    rec.sim_ns = ns;
    rec.ok = st.ok();
    if (ring_.size() < capacity_) {
      ring_.push_back(rec);
    } else {
      ring_[ring_next_] = rec;
      ring_next_ = (ring_next_ + 1) % capacity_;
    }
  }
  return st;
}

uint64_t TraceInterceptor::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

uint64_t TraceInterceptor::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

std::vector<std::string> TraceInterceptor::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(hists_.size());
  for (const auto& [key, hist] : hists_) keys.push_back(key);
  return keys;
}

Histogram TraceInterceptor::HistogramFor(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(key);
  return it == hists_.end() ? Histogram{} : it->second;
}

std::vector<TraceInterceptor::TraceRecord> TraceInterceptor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || capacity_ == 0) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); i++) {
      out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::string TraceInterceptor::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"ops\":" << ops_ << ",\"failures\":" << failures_
     << ",\"histograms\":{";
  bool first = true;
  for (const auto& [key, hist] : hists_) {
    if (!first) os << ',';
    first = false;
    os << '"' << key << "\":{\"count\":" << hist.count()
       << ",\"mean_ns\":" << hist.Mean() << ",\"p50_ns\":" << hist.Percentile(50)
       << ",\"p99_ns\":" << hist.Percentile(99) << ",\"max_ns\":" << hist.max()
       << '}';
  }
  os << "},\"trace\":[";
  // Oldest-first walk of the ring (inline Snapshot; we already hold mu_).
  const size_t n = ring_.size();
  const size_t start = (capacity_ > 0 && n == capacity_) ? ring_next_ : 0;
  for (size_t i = 0; i < n; i++) {
    const TraceRecord& r = ring_[(start + i) % n];
    if (i > 0) os << ',';
    os << "{\"seq\":" << r.seq << ",\"verb\":\"" << FabricVerbName(r.verb)
       << "\",\"node\":" << r.node << ",\"bytes_out\":" << r.bytes_out
       << ",\"bytes_in\":" << r.bytes_in << ",\"sim_ns\":" << r.sim_ns
       << ",\"ok\":" << (r.ok ? "true" : "false") << '}';
  }
  os << "]}";
  return os.str();
}

// ---- FaultInterceptor ----------------------------------------------------

bool FaultInterceptor::Decide(uint64_t seq, uint64_t salt, double p) const {
  if (p <= 0.0) return false;
  // Stateless: the decision depends only on (seed, seq, salt), so a given op
  // position in the stream always faults the same way regardless of thread
  // interleaving or which probabilities are also enabled.
  uint64_t mix = policy_.seed;
  mix ^= (seq + 1) * 0x9E3779B97F4A7C15ull;
  mix ^= (salt + 1) * 0xC2B2AE3D27D4EB4Full;
  Random rng(mix);
  return rng.Bernoulli(p);
}

Status FaultInterceptor::Intercept(Fabric* /*fabric*/, FabricOp* op,
                                   NetContext* ctx,
                                   const FabricOpInvoker& next) {
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);

  for (const FaultPolicy::Flap& flap : policy_.flaps) {
    if (flap.node == op->node && seq >= flap.from_seq &&
        seq < flap.until_seq) {
      flap_rejections_.fetch_add(1, std::memory_order_relaxed);
      ctx->Charge(policy_.drop_penalty_ns);
      ctx->faults_injected++;
      return Status::Unavailable("injected flap: node " +
                                 std::to_string(op->node) + " down at op " +
                                 std::to_string(seq));
    }
  }

  if (Decide(seq, /*salt=*/0xD0, policy_.drop_prob)) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    ctx->Charge(policy_.drop_penalty_ns);
    ctx->faults_injected++;
    return Status::Unavailable("injected packet loss at op " +
                               std::to_string(seq));
  }

  Status st = next(op, ctx);

  if (st.ok() && Decide(seq, /*salt=*/0x5A, policy_.spike_prob)) {
    spikes_.fetch_add(1, std::memory_order_relaxed);
    ctx->Charge(policy_.spike_ns);
    ctx->faults_injected++;
  }
  return st;
}

// ---- RetryInterceptor ----------------------------------------------------

bool RetryInterceptor::Retryable(const Status& st) const {
  if (st.IsUnavailable()) return policy_.retry_unavailable;
  if (st.IsTimedOut()) return policy_.retry_timed_out;
  if (st.IsBusy()) return policy_.retry_busy;
  return false;
}

Status RetryInterceptor::Intercept(Fabric* /*fabric*/, FabricOp* op,
                                   NetContext* ctx,
                                   const FabricOpInvoker& next) {
  // Floor the backoff at 1 ns: a zero initial backoff would multiply to
  // zero forever and burn every attempt with no simulated cost (a busy-spin
  // no real client exhibits).
  uint64_t backoff = std::max<uint64_t>(1, policy_.initial_backoff_ns);
  Status st;
  for (int attempt = 1;; attempt++) {
    st = next(op, ctx);
    op->attempts = static_cast<uint32_t>(attempt);
    if (st.ok() || attempt >= policy_.max_attempts || !Retryable(st)) break;
    ctx->Charge(backoff);
    ctx->backoff_ns += backoff;
    ctx->retries++;
    retries_.fetch_add(1, std::memory_order_relaxed);
    backoff = std::min<uint64_t>(
        policy_.max_backoff_ns,
        static_cast<uint64_t>(static_cast<double>(backoff) *
                              policy_.backoff_multiplier));
    backoff = std::max<uint64_t>(1, backoff);  // multiplier < 1 can re-zero it
  }
  if (!st.ok() && Retryable(st)) {
    gave_up_.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

}  // namespace disagg
