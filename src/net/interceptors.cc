#include "net/interceptors.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/random.h"
#include "net/partition.h"

namespace disagg {

// ---- TraceInterceptor ----------------------------------------------------

Status TraceInterceptor::Intercept(Fabric* fabric, FabricOp* op,
                                   NetContext* ctx,
                                   const FabricOpInvoker& next) {
  const uint64_t ns_before = ctx->sim_ns;
  const uint64_t out_before = ctx->bytes_out;
  const uint64_t in_before = ctx->bytes_in;
  const uint64_t queue_before = ctx->queue_ns;
  Status st = next(op, ctx);
  const uint64_t ns = ctx->sim_ns - ns_before;

  std::string key = FabricVerbName(op->verb);
  key += '/';
  const Node* target = fabric->node(op->node);
  if (target != nullptr) {
    key += target->model().name;
    key += '/';
    key += NodeKindName(target->kind());
  } else {
    key += "?/?";
  }

  std::lock_guard<std::mutex> lock(mu_);
  ops_++;
  if (!st.ok()) failures_++;
  hists_[key].Record(ns);
  if (capacity_ > 0) {
    TraceRecord rec;
    rec.seq = seq_++;
    rec.verb = op->verb;
    rec.node = op->node;
    rec.tenant = op->tenant;
    rec.bytes_out = ctx->bytes_out - out_before;
    rec.bytes_in = ctx->bytes_in - in_before;
    rec.sim_ns = ns;
    rec.queue_ns = ctx->queue_ns - queue_before;
    rec.ok = st.ok();
    if (ring_.size() < capacity_) {
      ring_.push_back(rec);
    } else {
      ring_[ring_next_] = rec;
      ring_next_ = (ring_next_ + 1) % capacity_;
    }
  }
  return st;
}

uint64_t TraceInterceptor::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

uint64_t TraceInterceptor::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

std::vector<std::string> TraceInterceptor::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(hists_.size());
  for (const auto& [key, hist] : hists_) keys.push_back(key);
  return keys;
}

Histogram TraceInterceptor::HistogramFor(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hists_.find(key);
  return it == hists_.end() ? Histogram{} : it->second;
}

std::vector<TraceInterceptor::TraceRecord> TraceInterceptor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || capacity_ == 0) {
    out = ring_;
  } else {
    for (size_t i = 0; i < ring_.size(); i++) {
      out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
    }
  }
  return out;
}

std::string TraceInterceptor::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"ops\":" << ops_ << ",\"failures\":" << failures_
     << ",\"histograms\":{";
  bool first = true;
  for (const auto& [key, hist] : hists_) {
    if (!first) os << ',';
    first = false;
    os << '"' << key << "\":{\"count\":" << hist.count()
       << ",\"mean_ns\":" << hist.Mean() << ",\"p50_ns\":" << hist.Percentile(50)
       << ",\"p99_ns\":" << hist.Percentile(99) << ",\"max_ns\":" << hist.max()
       << '}';
  }
  os << "},\"trace\":[";
  // Oldest-first walk of the ring (inline Snapshot; we already hold mu_).
  const size_t n = ring_.size();
  const size_t start = (capacity_ > 0 && n == capacity_) ? ring_next_ : 0;
  for (size_t i = 0; i < n; i++) {
    const TraceRecord& r = ring_[(start + i) % n];
    if (i > 0) os << ',';
    os << "{\"seq\":" << r.seq << ",\"verb\":\"" << FabricVerbName(r.verb)
       << "\",\"node\":" << r.node << ",\"tenant\":" << r.tenant
       << ",\"bytes_out\":" << r.bytes_out
       << ",\"bytes_in\":" << r.bytes_in << ",\"sim_ns\":" << r.sim_ns
       << ",\"queue_ns\":" << r.queue_ns
       << ",\"ok\":" << (r.ok ? "true" : "false") << '}';
  }
  os << "]}";
  return os.str();
}

// ---- FaultInterceptor ----------------------------------------------------

bool FaultInterceptor::Decide(uint64_t seq, uint64_t salt, double p) const {
  if (p <= 0.0) return false;
  // Stateless: the decision depends only on (seed, seq, salt), so a given op
  // position in the stream always faults the same way regardless of thread
  // interleaving or which probabilities are also enabled.
  uint64_t mix = policy_.seed;
  mix ^= (seq + 1) * 0x9E3779B97F4A7C15ull;
  mix ^= (salt + 1) * 0xC2B2AE3D27D4EB4Full;
  Random rng(mix);
  return rng.Bernoulli(p);
}

Status FaultInterceptor::Intercept(Fabric* /*fabric*/, FabricOp* op,
                                   NetContext* ctx,
                                   const FabricOpInvoker& next) {
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);

  // In op-tag mode the decision key is a pure function of (which logical
  // op, which of its attempts, at what virtual time) — independent of the
  // global order in which threads reach this interceptor. The draw counter
  // advances so each retry of one op gets a fresh decision, as it did under
  // the sequence key.
  uint64_t key = seq;
  if (policy_.key_by_op_tag && ctx->op_tag != 0) {
    key = ctx->op_tag ^ ((ctx->fault_draws + 1) * 0xFF51AFD7ED558CCDull) ^
          ((ctx->sim_ns + 1) * 0xC4CEB9FE1A85EC53ull);
    ctx->fault_draws++;
  }

  for (const FaultPolicy::Flap& flap : policy_.flaps) {
    const bool active = flap.until_ns > flap.from_ns
                            ? (ctx->sim_ns >= flap.from_ns &&
                               ctx->sim_ns < flap.until_ns)
                            : (seq >= flap.from_seq && seq < flap.until_seq);
    if (flap.node == op->node && active) {
      flap_rejections_.fetch_add(1, std::memory_order_relaxed);
      ctx->Charge(policy_.drop_penalty_ns);
      ctx->faults_injected++;
      return Status::Unavailable("injected flap: node " +
                                 std::to_string(op->node) + " down at op " +
                                 std::to_string(seq));
    }
  }

  // Asymmetric partitions: keyed purely by the issuing context's virtual
  // clock (and optionally the RPC method), so the window is part of the
  // model, not of execution order. A kRequestLost window refuses the op
  // before any side effect; a kReplyLost window lets the op EXECUTE and
  // loses the acknowledgement — the caller sees Unavailable although the
  // effect landed, the signature failure mode lease fencing must survive.
  for (const FaultPolicy::OneWay& ow : policy_.oneways) {
    if (ow.node != op->node || ctx->sim_ns < ow.from_ns ||
        ctx->sim_ns >= ow.until_ns) {
      continue;
    }
    if (!ow.method.empty() &&
        (op->verb != FabricVerb::kRpc || op->method == nullptr ||
         *op->method != ow.method)) {
      continue;
    }
    oneway_drops_.fetch_add(1, std::memory_order_relaxed);
    ctx->faults_injected++;
    if (ow.dir == FaultPolicy::OneWay::Direction::kRequestLost) {
      ctx->Charge(policy_.drop_penalty_ns);
      return Status::Unavailable("injected one-way partition: request to node " +
                                 std::to_string(op->node) + " lost");
    }
    (void)next(op, ctx);
    ctx->Charge(policy_.drop_penalty_ns);
    return Status::Unavailable("injected one-way partition: reply from node " +
                               std::to_string(op->node) + " lost");
  }

  if (Decide(key, /*salt=*/0xD0, policy_.drop_prob)) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    ctx->Charge(policy_.drop_penalty_ns);
    ctx->faults_injected++;
    return Status::Unavailable("injected packet loss at op " +
                               std::to_string(seq));
  }

  // Gray slowdown windows active at the op's issue instant compound
  // multiplicatively; the extra cost is charged on top of whatever the op
  // itself cost, so a slowed node serves correct results late.
  double slow_factor = 1.0;
  for (const FaultPolicy::Slowdown& sd : policy_.slowdowns) {
    if (sd.node == op->node && sd.factor > 1.0 && ctx->sim_ns >= sd.from_ns &&
        ctx->sim_ns < sd.until_ns) {
      slow_factor *= sd.factor;
    }
  }
  const uint64_t ns_before = ctx->sim_ns;

  Status st = next(op, ctx);

  if (slow_factor > 1.0) {
    const uint64_t extra = static_cast<uint64_t>(
        static_cast<double>(ctx->sim_ns - ns_before) * (slow_factor - 1.0));
    if (extra > 0) {
      slowdown_hits_.fetch_add(1, std::memory_order_relaxed);
      ctx->Charge(extra);
      ctx->faults_injected++;
    }
  }

  if (st.ok() && Decide(key, /*salt=*/0x5A, policy_.spike_prob)) {
    spikes_.fetch_add(1, std::memory_order_relaxed);
    ctx->Charge(policy_.spike_ns);
    ctx->faults_injected++;
  }
  return st;
}

// ---- RetryInterceptor ----------------------------------------------------

bool RetryInterceptor::Retryable(const Status& st) const {
  if (st.IsUnavailable()) return policy_.retry_unavailable;
  if (st.IsTimedOut()) return policy_.retry_timed_out;
  if (st.IsBusy()) return policy_.retry_busy;
  return false;
}

Status RetryInterceptor::Intercept(Fabric* /*fabric*/, FabricOp* op,
                                   NetContext* ctx,
                                   const FabricOpInvoker& next) {
  // Floor the backoff at 1 ns: a zero initial backoff would multiply to
  // zero forever and burn every attempt with no simulated cost (a busy-spin
  // no real client exhibits).
  uint64_t backoff = std::max<uint64_t>(1, policy_.initial_backoff_ns);
  Status st;
  for (int attempt = 1;; attempt++) {
    st = next(op, ctx);
    op->attempts = static_cast<uint32_t>(attempt);
    if (st.ok() || attempt >= policy_.max_attempts || !Retryable(st)) break;
    // An exhausted deadline cannot be cured by waiting longer.
    if (op->deadline_exhausted) break;
    // Admission rejections ("queue full") get a tighter re-issue budget than
    // contention Busy — retrying into a full queue amplifies the overload —
    // unless a deadline governs the op, in which case the remaining budget
    // decides below.
    if (op->admission_rejected && op->deadline_ns == 0 &&
        attempt >= policy_.max_admission_attempts) {
      break;
    }
    // Never back off past the remaining deadline budget: an attempt issued
    // at or after the deadline is refused anyway, so give up now instead of
    // charging backoff that cannot buy another attempt.
    if (op->deadline_ns != 0 && ctx->sim_ns + backoff >= op->deadline_ns) {
      break;
    }
    ctx->Charge(backoff);
    ctx->backoff_ns += backoff;
    ctx->retries++;
    retries_.fetch_add(1, std::memory_order_relaxed);
    backoff = std::min<uint64_t>(
        policy_.max_backoff_ns,
        static_cast<uint64_t>(static_cast<double>(backoff) *
                              policy_.backoff_multiplier));
    backoff = std::max<uint64_t>(1, backoff);  // multiplier < 1 can re-zero it
  }
  if (!st.ok() && Retryable(st)) {
    gave_up_.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

// ---- HedgeInterceptor ----------------------------------------------------

Status HedgeInterceptor::Intercept(Fabric* /*fabric*/, FabricOp* op,
                                   NetContext* ctx,
                                   const FabricOpInvoker& next) {
  auto it = policy_.replicas.find(op->node);
  const bool hedgeable =
      it != policy_.replicas.end() &&
      (!policy_.reads_only || op->verb == FabricVerb::kRead ||
       op->verb == FabricVerb::kReadAtomic);
  if (!hedgeable) return next(op, ctx);

  const uint64_t fire_ns = ctx->sim_ns + policy_.hedge_delay_ns;

  // Run the primary on a fork so its completion instant is known before
  // deciding whether the hedge timer fired.
  NetContext primary = ctx->Fork();
  FabricOp primary_op = *op;
  Status primary_st = next(&primary_op, &primary);

  if (primary.sim_ns <= fire_ns ||
      (op->deadline_ns != 0 && fire_ns >= op->deadline_ns)) {
    // Completed (either way) before the timer: no backup was ever sent.
    // Fork + single-branch JoinParallel is arithmetically identical to
    // inline execution, so an installed-but-idle hedge changes no counter.
    //
    // The second disjunct is the deadline guard: the deadline is ABSOLUTE
    // virtual time and `Fork()` copies it verbatim, so a backup issued at
    // `fire_ns` races the SAME budget the primary has — strictly less of it,
    // never more. When the timer lands at or past the deadline the backup
    // would be refused pre-wire (`deadline_exhausted`) with certainty; it
    // cannot win, so it is never issued and no hedge is counted.
    JoinParallel(ctx, &primary, 1);
    *op = primary_op;
    return primary_st;
  }

  // The timer fired while the primary was in flight: the backup goes to the
  // replica at exactly fire_ns. It must not scribble over the primary's
  // output buffers while the race is undecided.
  NetContext backup = ctx->Fork();
  backup.sim_ns = fire_ns;
  FabricOp backup_op = *op;
  backup_op.node = it->second;
  if (backup_op.addr.node == op->node) backup_op.addr.node = it->second;
  std::vector<char> backup_buf;
  std::string backup_response;
  if (op->verb == FabricVerb::kRead) {
    backup_buf.resize(op->n);
    backup_op.dst = backup_buf.data();
  } else if (op->verb == FabricVerb::kRpc) {
    backup_op.response = &backup_response;
  }
  Status backup_st = next(&backup_op, &backup);
  hedges_.fetch_add(1, std::memory_order_relaxed);

  // Both branches' traffic crossed the wire and is charged in full; the
  // client continues at the *winner's* completion instant — the loser
  // finishes in the background.
  NetContext branches[2] = {primary, backup};
  JoinParallel(ctx, branches, 2);
  ctx->hedges++;

  const bool backup_wins =
      backup_st.ok() && (!primary_st.ok() || backup.sim_ns < primary.sim_ns);
  ctx->sim_ns = backup_wins ? backup.sim_ns : primary.sim_ns;
  const FabricOp& won = backup_wins ? backup_op : primary_op;
  op->result = won.result;
  op->attempts = won.attempts;
  op->admission_rejected = won.admission_rejected;
  op->deadline_exhausted = won.deadline_exhausted;
  if (!backup_wins) return primary_st;
  wins_.fetch_add(1, std::memory_order_relaxed);
  ctx->hedge_wins++;
  if (op->verb == FabricVerb::kRead) {
    std::memcpy(op->dst, backup_buf.data(), op->n);
  } else if (op->verb == FabricVerb::kRpc) {
    *op->response = std::move(backup_response);
  }
  return backup_st;
}

// ---- CircuitBreakerInterceptor -------------------------------------------

CircuitBreakerInterceptor::State CircuitBreakerInterceptor::StateFor(
    NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  return it == nodes_.end() ? State::kClosed : it->second.state;
}

void CircuitBreakerInterceptor::ResetNode(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.erase(node);
}

void CircuitBreakerInterceptor::ApplyFastFail(NodeState* ns,
                                              const BreakerPolicy& policy) {
  // Fast-fail without touching the wire; after `open_ops` of these the
  // breaker moves to half-open and the *next* op becomes a probe.
  ns->open_fast_fails++;
  if (ns->open_fast_fails >= policy.open_ops) {
    ns->state = State::kHalfOpen;
    ns->probe_successes = 0;
  }
}

bool CircuitBreakerInterceptor::ApplyOutcome(NodeState* ns, bool failure,
                                             const BreakerPolicy& policy) {
  switch (ns->state) {
    case State::kClosed: {
      ns->window_ops++;
      if (failure) ns->window_failures++;
      if (ns->window_ops >= policy.min_samples &&
          static_cast<double>(ns->window_failures) >=
              policy.open_error_rate * static_cast<double>(ns->window_ops)) {
        ns->state = State::kOpen;
        ns->open_fast_fails = 0;
        ns->window_ops = 0;
        ns->window_failures = 0;
        return true;
      }
      if (ns->window_ops >= policy.window) {
        ns->window_ops = 0;  // window boundary: forget old outcomes
        ns->window_failures = 0;
      }
      return false;
    }
    case State::kHalfOpen: {
      if (failure) {
        ns->state = State::kOpen;  // probe failed: back to fast-failing
        ns->open_fast_fails = 0;
        ns->probe_successes = 0;
        return true;
      }
      ns->probe_successes++;
      if (ns->probe_successes >= policy.half_open_probes) {
        *ns = NodeState{};  // closed, with a fresh window
      }
      return false;
    }
    case State::kOpen:
      return false;  // outcome observed while open (replay edge): ignored
  }
  return false;
}

CircuitBreakerInterceptor::NodeState& CircuitBreakerInterceptor::ShardNodeFor(
    ShardState* shard, NodeId node) {
  auto it = shard->nodes.find(node);
  if (it == shard->nodes.end()) {
    std::lock_guard<std::mutex> lock(mu_);
    it = shard->nodes.emplace(node, nodes_[node]).first;
  }
  return it->second;
}

Status CircuitBreakerInterceptor::InterceptSharded(PartitionEffects* eff,
                                                   FabricOp* op,
                                                   NetContext* ctx,
                                                   const FabricOpInvoker& next) {
  ShardState& shard = eff->BreakerShardFor(this);
  NodeState& ns = ShardNodeFor(&shard, op->node);
  if (ns.state == State::kOpen) {
    ApplyFastFail(&ns, policy_);
    shard.log.emplace_back(op->node, ShardState::Outcome::kFastFail);
    shard.fast_fails++;
    ctx->Charge(policy_.fast_fail_penalty_ns);
    ctx->breaker_fast_fails++;
    return Status::Unavailable("circuit open: node " +
                               std::to_string(op->node));
  }

  Status st = next(op, ctx);
  const bool failure = st.IsUnavailable() || st.IsTimedOut();
  shard.log.emplace_back(op->node, failure ? ShardState::Outcome::kFailure
                                           : ShardState::Outcome::kOk);
  // Opens are counted at replay time, where the authoritative machine takes
  // the same transition; counting here too would double them.
  ApplyOutcome(&ns, failure, policy_);
  return st;
}

void CircuitBreakerInterceptor::MergeShard(ShardState* shard) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [node, outcome] : shard->log) {
    NodeState& ns = nodes_[node];
    if (outcome == ShardState::Outcome::kFastFail) {
      // The shard refused the op against its view; keep the authoritative
      // machine's open-phase countdown in step when it agrees it is open.
      if (ns.state == State::kOpen) ApplyFastFail(&ns, policy_);
    } else if (ApplyOutcome(&ns, outcome == ShardState::Outcome::kFailure,
                            policy_)) {
      opens_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  fast_fails_.fetch_add(shard->fast_fails, std::memory_order_relaxed);
  shard->nodes.clear();
  shard->log.clear();
  shard->fast_fails = 0;
}

Status CircuitBreakerInterceptor::Intercept(Fabric* /*fabric*/, FabricOp* op,
                                            NetContext* ctx,
                                            const FabricOpInvoker& next) {
  if (PartitionEffects* eff = CurrentPartitionEffects()) {
    return InterceptSharded(eff, op, ctx, next);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    NodeState& ns = nodes_[op->node];
    if (ns.state == State::kOpen) {
      ApplyFastFail(&ns, policy_);
      fast_fails_.fetch_add(1, std::memory_order_relaxed);
      ctx->Charge(policy_.fast_fail_penalty_ns);
      ctx->breaker_fast_fails++;
      return Status::Unavailable("circuit open: node " +
                                 std::to_string(op->node));
    }
  }

  Status st = next(op, ctx);
  // Busy is contention/admission, not node health; only fault-shaped
  // statuses feed the error rate.
  const bool failure = st.IsUnavailable() || st.IsTimedOut();

  std::lock_guard<std::mutex> lock(mu_);
  NodeState& ns = nodes_[op->node];
  if (ApplyOutcome(&ns, failure, policy_)) {
    opens_.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

}  // namespace disagg
