#ifndef DISAGG_NET_FABRIC_H_
#define DISAGG_NET_FABRIC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "net/congestion.h"
#include "net/interconnect.h"
#include "net/net_context.h"
#include "net/verb.h"

namespace disagg {

using NodeId = uint32_t;

/// Role of a node in the disaggregated data center (Sec. 1 of the paper:
/// compute pool, memory pool, storage pool; plus specialized pools).
enum class NodeKind : uint8_t {
  kCompute,
  kMemory,
  kStorage,
  kPm,
  kLog,
  kObject,
};

constexpr const char* NodeKindName(NodeKind k) {
  switch (k) {
    case NodeKind::kCompute:
      return "compute";
    case NodeKind::kMemory:
      return "memory";
    case NodeKind::kStorage:
      return "storage";
    case NodeKind::kPm:
      return "pm";
    case NodeKind::kLog:
      return "log";
    case NodeKind::kObject:
      return "object";
  }
  return "?";
}

/// Address of a byte range inside a registered memory region on some node.
struct RemoteAddr {
  uint32_t region = 0;
  uint64_t offset = 0;
};

/// Fully-qualified remote pointer (node + region + offset); the unit of
/// addressing for remote data structures such as the RACE hash table and the
/// Sherman B+tree.
struct GlobalAddr {
  NodeId node = 0;
  uint32_t region = 0;
  uint64_t offset = 0;

  RemoteAddr remote() const { return RemoteAddr{region, offset}; }
  bool is_null() const { return node == 0 && region == 0 && offset == 0; }
};

/// A registered memory region ("MR" in RDMA terms) hosted by a node. The
/// bytes live in process memory; one-sided verbs copy directly in and out,
/// exactly like DMA by a NIC, with no remote-CPU involvement.
class MemoryRegion {
 public:
  MemoryRegion(uint32_t id, std::string name, size_t size)
      : id_(id), name_(std::move(name)), data_(size, 0) {}

  uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  size_t size() const { return data_.size(); }
  char* data() { return data_.data(); }
  const char* data() const { return data_.data(); }

  bool Contains(uint64_t offset, size_t n) const {
    return offset + n <= data_.size() && offset + n >= offset;
  }

 private:
  uint32_t id_;
  std::string name_;
  std::vector<char> data_;
};

/// Server-side context passed to RPC handlers so they can report the CPU work
/// they performed; the fabric scales it by the node's `cpu_scale` (pool-side
/// CPUs are wimpy, Sec. 1) and charges it to the caller's simulated clock.
struct RpcServerContext {
  uint64_t compute_ns = 0;
  void ChargeCompute(uint64_t ns) { compute_ns += ns; }
};

using RpcHandler =
    std::function<Status(Slice request, std::string* response,
                         RpcServerContext* server_ctx)>;

/// A node in the fabric: owns memory regions and RPC handlers. Access cost is
/// determined by the node's interconnect model (how far away it is).
class Node {
 public:
  Node(NodeId id, std::string name, NodeKind kind, uint32_t az,
       InterconnectModel model)
      : id_(id),
        name_(std::move(name)),
        kind_(kind),
        az_(az),
        model_(std::move(model)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  NodeKind kind() const { return kind_; }
  uint32_t az() const { return az_; }
  const InterconnectModel& model() const { return model_; }
  void set_model(InterconnectModel m) { model_ = std::move(m); }

  /// Pool-side CPUs are weaker than compute-pool CPUs; handler compute time
  /// is multiplied by this factor.
  double cpu_scale() const { return cpu_scale_; }
  void set_cpu_scale(double s) { cpu_scale_ = s; }

  /// Failure injection: a failed node rejects all operations with
  /// Status::Unavailable until revived.
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  void Fail() { failed_.store(true, std::memory_order_release); }
  void Revive() { failed_.store(false, std::memory_order_release); }

  MemoryRegion* AddRegion(const std::string& name, size_t size);
  MemoryRegion* region(uint32_t id);
  const MemoryRegion* region(uint32_t id) const;

  void RegisterHandler(const std::string& method, RpcHandler handler);
  const RpcHandler* handler(const std::string& method) const;

 private:
  NodeId id_;
  std::string name_;
  NodeKind kind_;
  uint32_t az_;
  InterconnectModel model_;
  double cpu_scale_ = 1.0;
  std::atomic<bool> failed_{false};
  std::vector<std::unique_ptr<MemoryRegion>> regions_;
  std::map<std::string, RpcHandler> handlers_;
  mutable std::mutex mu_;  // guards regions_/handlers_ vectors (not bytes)
  // Published region count for the lock-free region() fast path; only the
  // slots below this count are ever dereferenced by readers.
  std::atomic<size_t> num_regions_{0};
};

struct FabricOp;
class Fabric;

/// Continuation handed to an interceptor: invokes the rest of the chain (and
/// ultimately the core executor) for an op.
using FabricOpInvoker = std::function<Status(FabricOp*, NetContext*)>;

/// Middleware around the single op-execution path. Interceptors form an
/// ordered chain: the one installed *first* is outermost — it sees the op
/// first on the way in and last on the way out. Each interceptor may observe
/// or rewrite the op, charge simulated time to the context, short-circuit
/// (fault injection), or invoke `next` multiple times (retry).
///
/// With no interceptors installed the pipeline is a straight call into the
/// core executor, and every counter a client observes is bit-identical to
/// the pre-pipeline fabric.
class FabricInterceptor {
 public:
  virtual ~FabricInterceptor() = default;

  virtual const char* name() const = 0;

  /// Processes `op`. Implementations call `next(op, ctx)` zero or more times
  /// to execute the remainder of the chain. `fabric` is provided for
  /// metadata lookups (node kind, interconnect model); interceptors must not
  /// issue new fabric verbs from inside the chain.
  virtual Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                           const FabricOpInvoker& next) = 0;
};

/// A tenant's declared latency contract, registered on the fabric with
/// `Fabric::DeclareSlo`. The fabric itself only stores the declarations;
/// the SLO controller (src/net/slo_controller.h) reads them each control
/// epoch and steers the WFQ/admission/staleness actuators toward them.
struct SloSpec {
  uint64_t p99_target_ns = 0;  ///< 0 = no latency contract (best effort)
};

/// The simulated data-center fabric: a registry of nodes plus the one-sided
/// and two-sided primitives. Data movement is real (memcpy / atomics on the
/// region bytes); time is simulated via the interconnect cost models.
///
/// Every public verb below is a thin wrapper that lowers the call into a
/// `FabricOp` and hands it to `Execute()`, the single instrumented path all
/// fabric traffic flows through.
class Fabric {
 public:
  Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Creates a node reachable at the cost of `model`. `az` groups nodes into
  /// availability zones for quorum experiments.
  NodeId AddNode(const std::string& name, NodeKind kind,
                 InterconnectModel model, uint32_t az = 0);

  Node* node(NodeId id);
  const Node* node(NodeId id) const;
  size_t num_nodes() const { return nodes_.size(); }

  // ---- One-sided verbs (no remote CPU) -------------------------------

  Status Read(NetContext* ctx, GlobalAddr src, void* dst, size_t n);
  Status Write(NetContext* ctx, GlobalAddr dst, const void* src, size_t n);

  /// 8-byte atomic compare-and-swap on remote memory; returns the value
  /// observed before the swap (swap happened iff it equals `expected`).
  Result<uint64_t> CompareAndSwap(NetContext* ctx, GlobalAddr addr,
                                  uint64_t expected, uint64_t desired);
  Result<uint64_t> FetchAdd(NetContext* ctx, GlobalAddr addr, uint64_t delta);

  /// Atomic 8-byte read (used for version words / LSNs published via CAS).
  Result<uint64_t> ReadAtomic64(NetContext* ctx, GlobalAddr addr);

  /// Doorbell-batched writes to one node: pays a single base latency plus the
  /// summed byte cost (Sherman's batched in-order writes, Sec. 3.1).
  struct WriteOp {
    RemoteAddr addr;
    const void* src;
    size_t n;
  };
  Status WriteBatch(NetContext* ctx, NodeId node_id,
                    const std::vector<WriteOp>& ops);

  /// One member of a mixed read/write op batch (`ExecuteBatch`). Exactly one
  /// of `dst` (kRead) / `src` (kWrite) is set; `status` is an output.
  struct BatchOp {
    FabricVerb verb = FabricVerb::kRead;  ///< kRead or kWrite only
    RemoteAddr addr{};
    void* dst = nullptr;        ///< read destination
    const void* src = nullptr;  ///< write source
    size_t n = 0;
    Status status;  ///< per-member outcome, filled by ExecuteBatch
  };

  /// Executes a multi-op batch of one-sided reads/writes against one node.
  ///
  /// With op batching *off* (the default) this is exactly `Execute()` per
  /// member — same charges bit for bit, same per-member statuses — so an
  /// unconfigured fabric is unchanged by callers adopting the batch API.
  ///
  /// With `EnableOpBatching(true)` the members are coalesced into ONE
  /// `kBatch` descriptor rung through the interceptor chain and congestion
  /// admission once (the doorbell win: one `ns_per_op` issue charge, one
  /// chain traversal, one round trip), charged one read base latency if any
  /// member reads and one write base latency if any writes, plus the summed
  /// byte costs. The batch is all-or-nothing: every member's bounds are
  /// validated before any data moves, and a refused batch (admission,
  /// deadline, fault) fails every member with the same status.
  Status ExecuteBatch(NetContext* ctx, NodeId node_id,
                      std::vector<BatchOp>* ops);

  /// Turns doorbell coalescing of `ExecuteBatch` on or off (default off,
  /// keeping the cost model inert until an experiment opts in).
  void EnableOpBatching(bool on) {
    op_batching_.store(on, std::memory_order_relaxed);
  }
  bool op_batching_enabled() const {
    return op_batching_.load(std::memory_order_relaxed);
  }

  // ---- Two-sided (RPC, involves remote CPU) --------------------------

  Status Call(NetContext* ctx, NodeId node_id, const std::string& method,
              Slice request, std::string* response);

  // ---- The unified op pipeline ---------------------------------------

  /// Executes one lowered op through the interceptor chain and the core
  /// executor. Public so harnesses can issue pre-built descriptors, but the
  /// verb wrappers above are the usual entry points.
  Status Execute(FabricOp* op, NetContext* ctx);

  /// Appends an interceptor to the chain. Interceptors added first are
  /// outermost (e.g. install retry before fault injection so retries wrap
  /// injected faults). Safe to call concurrently with in-flight ops: ops
  /// already executing finish on the chain they started with.
  void AddInterceptor(std::shared_ptr<FabricInterceptor> interceptor);

  /// Removes every installed interceptor.
  void ClearInterceptors();

  size_t num_interceptors() const;

  // ---- Shared-resource congestion ------------------------------------

  /// Turns on the shared-resource congestion model: every subsequent op is
  /// routed through a virtual-time queue at its target node's link (and the
  /// backbone, if configured) and charged the resulting queueing delay on
  /// top of the unchanged interconnect cost model. The discipline is strict
  /// FIFO by default, or start-time fair queueing keyed by
  /// `NetContext::tenant` when `CongestionConfig::tenant_weights` is set;
  /// with `ResourceCapacity::max_backlog_ns` configured, over-backlogged ops
  /// fail fast with `Status::Busy`. Off by default; with congestion off —
  /// or on but uncontended — every client counter is bit-identical to the
  /// uncontended fabric.
  void EnableCongestion(CongestionConfig config);

  /// Removes the congestion model (in-flight busy windows are discarded).
  void DisableCongestion();

  /// The active congestion state, or nullptr when disabled. Valid for the
  /// lifetime of the returned shared_ptr even if congestion is re-configured
  /// concurrently.
  std::shared_ptr<CongestionState> congestion() const;

  // ---- Multi-tenant SLOs and placement -------------------------------

  /// Declares (or replaces) `tenant`'s latency contract. Config-time, like
  /// node registration: declare before driving load.
  void DeclareSlo(uint32_t tenant, SloSpec spec);

  /// Withdraws `tenant`'s contract (tenant churn). The SLO controller GCs
  /// the departed tenant's state — frozen-infeasible flag, actuator clamps,
  /// staleness bound — at its next epoch barrier.
  void RevokeSlo(uint32_t tenant);

  /// All declared contracts, keyed by tenant.
  std::map<uint32_t, SloSpec> slo_specs() const;

  /// Join-shortest-virtual-queue placement: returns the candidate node whose
  /// link would impose the smallest queueing delay on an op issued by `ctx`
  /// right now (ties break to the earliest candidate in `candidates`). With
  /// congestion disabled every queue is empty and the first candidate wins.
  /// Under the epoch-parallel driver the backlogs read are the partition's
  /// own shard view, so placement is deterministic at any thread count.
  NodeId JoinShortestQueue(const std::vector<NodeId>& candidates,
                           const NetContext& ctx) const;

 private:
  using InterceptorChain = std::vector<std::shared_ptr<FabricInterceptor>>;

  Status CheckTarget(NodeId id, Node** out);

  /// Terminal stage of the pipeline: runs the verb, then (when congestion
  /// is enabled) admits the op to its shared resources and charges the
  /// queueing delay.
  Status ExecuteCore(FabricOp* op, NetContext* ctx);

  /// The verb itself: target/bounds checks, the real data movement, and
  /// cost charging (aggregate + per-verb).
  Status ExecuteVerb(FabricOp* op, NetContext* ctx);

  Status InvokeChain(const InterceptorChain& chain, size_t index, FabricOp* op,
                     NetContext* ctx);

  std::vector<std::unique_ptr<Node>> nodes_;
  mutable std::mutex mu_;
  // Published node count for the lock-free node() fast path (see the
  // snapshot comment below: registration is config-time).
  std::atomic<size_t> num_nodes_{0};

  std::shared_ptr<const InterceptorChain> interceptors_;
  mutable std::mutex interceptor_mu_;  // guards the chain pointer swap

  std::shared_ptr<CongestionState> congestion_;  // nullptr = disabled
  mutable std::mutex congestion_mu_;  // guards the state pointer swap

  // Lock-free mirrors of the two pointers above for the per-op hot path.
  // Every Execute() used to take both mutexes and copy both shared_ptrs —
  // four contended atomic read-modify-writes per op on cache lines shared
  // by every worker thread, which flattens the epoch-parallel driver's
  // scaling. The mirrors are updated under the respective mutex; readers
  // load them with acquire semantics and never touch a refcount. Lifetime
  // is anchored by the shared_ptrs: reconfiguring the fabric (AddInterceptor
  // / EnableCongestion / ...) while ops are in flight on OTHER threads is
  // not supported — config is a setup-time activity in every driver.
  std::atomic<const InterceptorChain*> chain_snapshot_{nullptr};
  std::atomic<CongestionState*> congestion_snapshot_{nullptr};

  std::atomic<bool> op_batching_{false};

  std::map<uint32_t, SloSpec> slo_specs_;  // declared tenant contracts
  mutable std::mutex slo_mu_;
};

/// A fabric operation lowered to a single descriptor: the verb tag selects
/// which fields are meaningful. Wrapper verbs fill inputs; `Execute()` fills
/// outputs. Interceptors may inspect or rewrite any field before passing the
/// op down the chain.
struct FabricOp {
  FabricVerb verb = FabricVerb::kRead;
  NodeId node = 0;    ///< target node (== addr.node for addressed verbs)
  GlobalAddr addr{};  ///< one-sided target (read/write/cas/faa/read_atomic)

  /// Tenant billed for this op at congested resources; stamped from
  /// `NetContext::tenant` by `Execute()` before the interceptor chain runs
  /// (interceptors may rewrite it, e.g. to re-bill background traffic).
  uint32_t tenant = 0;

  /// Absolute virtual-time deadline, stamped from `NetContext::deadline_ns`
  /// by `Execute()` (0 = none). The core executor refuses attempts issued at
  /// or past it with `Status::TimedOut`, and the retry interceptor never
  /// backs off beyond the remaining budget. Interceptors may tighten it.
  uint64_t deadline_ns = 0;

  // One-sided read/write payloads.
  void* dst = nullptr;        ///< read destination buffer
  const void* src = nullptr;  ///< write source buffer
  size_t n = 0;               ///< byte count

  // Atomics: CAS uses arg0=expected, arg1=desired; FAA uses arg0=delta.
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;

  // Doorbell batch.
  const std::vector<Fabric::WriteOp>* batch = nullptr;

  // Coalesced mixed read/write batch (kBatch); members' `status` fields are
  // outputs.
  std::vector<Fabric::BatchOp>* sub = nullptr;

  // RPC.
  const std::string* method = nullptr;
  Slice request{};
  std::string* response = nullptr;

  // ---- Outputs -------------------------------------------------------
  uint64_t result = 0;    ///< CAS observed / FAA previous / atomic-read value
  uint32_t attempts = 0;  ///< issue count, filled by the retry interceptor

  /// Set by the core executor when the *latest attempt* was refused up front
  /// by congestion admission control (`Status::Busy` without touching the
  /// wire). Retry treats these differently from contention `Busy`: re-issuing
  /// into a queue that just reported "full" only amplifies the overload.
  bool admission_rejected = false;

  /// Set by the core executor when the latest attempt was refused because
  /// `deadline_ns` had already passed at issue time (`Status::TimedOut`
  /// before touching the wire). Never retryable.
  bool deadline_exhausted = false;
};

}  // namespace disagg

#endif  // DISAGG_NET_FABRIC_H_
