#ifndef DISAGG_NET_INTERCONNECT_H_
#define DISAGG_NET_INTERCONNECT_H_

#include <cstdint>
#include <string>

namespace disagg {

/// Cost model for one interconnect technology. Every fabric operation charges
///   base_latency(op) + bytes * ns_per_byte
/// simulated nanoseconds to the issuing client. Presets are calibrated to the
/// ratios reported in the literature the paper surveys (local DRAM ~0.1 us,
/// CXL ~0.4 us, RDMA ~2-3 us, SSD ~80 us, object store ~5 ms); reproducing
/// those *ratios* is what preserves the paper's qualitative results.
struct InterconnectModel {
  std::string name;
  uint64_t read_base_ns = 0;    ///< one-sided READ round trip
  uint64_t write_base_ns = 0;   ///< one-sided WRITE (until remote ack)
  uint64_t atomic_base_ns = 0;  ///< CAS / fetch-add
  uint64_t rpc_base_ns = 0;     ///< two-sided request/response overhead
  double ns_per_byte = 0.0;     ///< inverse bandwidth

  /// Local DRAM access through the cache hierarchy (the "no disaggregation"
  /// baseline).
  static InterconnectModel LocalDram();
  /// CXL.mem Type-3 expander: load/store semantics, ~6x lower latency than
  /// RDMA (DirectCXL, Sec 3.3).
  static InterconnectModel Cxl();
  /// Data-center RDMA (RoCE/InfiniBand), one-sided verbs ~2-3 us.
  static InterconnectModel Rdma();
  /// RDMA to a persistent-memory server: same fabric, PM media costs are
  /// modeled separately by the PM node (write-bandwidth throttle).
  static InterconnectModel RdmaToPm();
  /// NVMe SSD attached storage service.
  static InterconnectModel Ssd();
  /// S3/XStore-like object storage.
  static InterconnectModel ObjectStore();

  uint64_t ReadCost(size_t bytes) const {
    return read_base_ns + static_cast<uint64_t>(ns_per_byte * bytes);
  }
  uint64_t WriteCost(size_t bytes) const {
    return write_base_ns + static_cast<uint64_t>(ns_per_byte * bytes);
  }
  uint64_t AtomicCost() const { return atomic_base_ns; }
  uint64_t RpcCost(size_t request_bytes, size_t response_bytes) const {
    return rpc_base_ns +
           static_cast<uint64_t>(ns_per_byte * (request_bytes + response_bytes));
  }
};

}  // namespace disagg

#endif  // DISAGG_NET_INTERCONNECT_H_
