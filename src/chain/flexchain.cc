#include "chain/flexchain.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace disagg {

namespace {

RaceHash MakeState(Fabric* fabric, MemoryNode* pool) {
  NetContext setup;
  auto table = RaceHash::Create(&setup, fabric, pool, 1024);
  DISAGG_CHECK(table.ok());
  return RaceHash(fabric, pool, *table);
}

constexpr uint64_t kVersionCheckNs = 120;  // validator-local version probe

}  // namespace

FlexChain::FlexChain(Fabric* fabric, MemoryNode* pool,
                     size_t hot_cache_entries)
    : fabric_(fabric),
      pool_(pool),
      state_(MakeState(fabric, pool)),
      hot_cache_entries_(hot_cache_entries) {}

Result<std::pair<std::string, uint64_t>> FlexChain::ReadState(
    NetContext* ctx, const std::string& key) {
  auto hit = hot_cache_.find(key);
  if (hit != hot_cache_.end()) {
    stats_.cache_hits++;
    ctx->Charge(InterconnectModel::LocalDram().ReadCost(
        hit->second.first.size()));
    return hit->second;
  }
  stats_.remote_reads++;
  auto value = state_.Get(ctx, key);
  if (!value.ok()) return value.status();
  auto vit = versions_.find(key);
  const uint64_t version = vit == versions_.end() ? 0 : vit->second;
  if (hot_cache_.size() >= hot_cache_entries_) {
    hot_cache_.erase(hot_cache_.begin());
  }
  auto entry = std::make_pair(*value, version);
  hot_cache_[key] = entry;
  return entry;
}

bool FlexChain::ValidateAndApply(NetContext* ctx, const ChainTxn& txn,
                                 uint64_t* cost_ns) {
  NetContext local;
  // Serializability check: every read must still be at the version the
  // execute phase observed.
  bool valid = true;
  for (const auto& [key, version] : txn.read_set) {
    local.Charge(kVersionCheckNs);
    auto it = versions_.find(key);
    const uint64_t current = it == versions_.end() ? 0 : it->second;
    if (current != version) {
      valid = false;
      break;
    }
  }
  if (valid) {
    for (const auto& [key, value] : txn.write_set) {
      Status st = state_.Put(&local, key, value);
      if (!st.ok()) {
        valid = false;
        break;
      }
      versions_[key]++;
      auto hit = hot_cache_.find(key);
      if (hit != hot_cache_.end()) {
        hit->second = {value, versions_[key]};
      }
    }
  }
  *cost_ns = local.sim_ns;
  ctx->bytes_out += local.bytes_out;
  ctx->bytes_in += local.bytes_in;
  ctx->round_trips += local.round_trips;
  return valid;
}

Result<FlexChain::BlockResult> FlexChain::CommitBlock(
    NetContext* ctx, const std::vector<ChainTxn>& block, bool parallel) {
  BlockResult result;
  height_++;

  // Dependency graph: txn j depends on an earlier txn i if their key sets
  // conflict (i writes something j reads or writes, or j writes something
  // i reads). Level = longest dependency chain prefix.
  std::vector<size_t> level(block.size(), 0);
  auto keys_of = [](const ChainTxn& t) {
    std::set<std::string> reads, writes;
    for (const auto& [k, v] : t.read_set) reads.insert(k);
    for (const auto& [k, v] : t.write_set) writes.insert(k);
    return std::make_pair(reads, writes);
  };
  std::vector<std::pair<std::set<std::string>, std::set<std::string>>> sets;
  sets.reserve(block.size());
  for (const ChainTxn& t : block) sets.push_back(keys_of(t));
  for (size_t j = 0; j < block.size(); j++) {
    for (size_t i = 0; i < j; i++) {
      const auto& [ri, wi] = sets[i];
      const auto& [rj, wj] = sets[j];
      auto intersects = [](const std::set<std::string>& a,
                           const std::set<std::string>& b) {
        for (const auto& k : a) {
          if (b.count(k)) return true;
        }
        return false;
      };
      const bool conflict = intersects(wi, rj) || intersects(wi, wj) ||
                            intersects(ri, wj);
      if (conflict) level[j] = std::max(level[j], level[i] + 1);
    }
  }
  size_t max_level = 0;
  for (size_t l : level) max_level = std::max(max_level, l);
  result.dependency_levels = max_level + 1;

  if (parallel) {
    // Validate level by level; within a level all txns run concurrently
    // (charge the max), levels are sequential barriers.
    for (size_t l = 0; l <= max_level; l++) {
      uint64_t level_max_ns = 0;
      for (size_t j = 0; j < block.size(); j++) {
        if (level[j] != l) continue;
        uint64_t cost = 0;
        if (ValidateAndApply(ctx, block[j], &cost)) {
          result.committed++;
        } else {
          result.aborted++;
        }
        level_max_ns = std::max(level_max_ns, cost);
      }
      result.validate_sim_ns += level_max_ns;
    }
  } else {
    // Serial baseline: one validator thread.
    for (const ChainTxn& txn : block) {
      uint64_t cost = 0;
      if (ValidateAndApply(ctx, txn, &cost)) {
        result.committed++;
      } else {
        result.aborted++;
      }
      result.validate_sim_ns += cost;
    }
  }
  ctx->Charge(result.validate_sim_ns);
  return result;
}

uint64_t FlexChain::Version(const std::string& key) const {
  auto it = versions_.find(key);
  return it == versions_.end() ? 0 : it->second;
}

}  // namespace disagg
