#ifndef DISAGG_CHAIN_FLEXCHAIN_H_
#define DISAGG_CHAIN_FLEXCHAIN_H_

#include <map>
#include <string>
#include <vector>

#include "memnode/memory_node.h"
#include "rindex/race_hash.h"

namespace disagg {

/// FlexChain (Sec. 3.1): a permissioned XOV (execute-order-validate)
/// blockchain whose WORLD STATE lives in a tiered key-value store over
/// disaggregated memory — hot keys cached in compute-local DRAM, the full
/// state in the remote pool — decoupling the chain's compute and memory
/// scaling. The disaggregated architecture moves the bottleneck to the
/// VALIDATION phase, which FlexChain re-parallelizes with a transaction
/// dependency graph: transactions whose read/write sets do not conflict
/// validate concurrently.
class FlexChain {
 public:
  /// A simulated XOV transaction: the execute phase produced read and write
  /// sets against world-state keys, each read tagged with the version it
  /// observed.
  struct ChainTxn {
    std::string id;
    std::vector<std::pair<std::string, uint64_t>> read_set;  // key, version
    std::vector<std::pair<std::string, std::string>> write_set;
  };

  struct BlockResult {
    size_t committed = 0;
    size_t aborted = 0;           // stale reads (serializability violations)
    size_t dependency_levels = 0;  // depth of the dependency graph
    uint64_t validate_sim_ns = 0;  // parallel (per-level max) validation time
  };

  struct Stats {
    uint64_t cache_hits = 0;
    uint64_t remote_reads = 0;
  };

  FlexChain(Fabric* fabric, MemoryNode* pool, size_t hot_cache_entries);

  /// Execute-phase helper: reads a key (through the tiered store) and
  /// returns {value, version} for building read sets.
  Result<std::pair<std::string, uint64_t>> ReadState(NetContext* ctx,
                                                     const std::string& key);

  /// Orders and validates one block. `parallel` selects FlexChain's
  /// dependency-graph validation (conflict-free transactions validate
  /// concurrently, charging the max over each level) vs the serial
  /// baseline (sum over all transactions).
  Result<BlockResult> CommitBlock(NetContext* ctx,
                                  const std::vector<ChainTxn>& block,
                                  bool parallel);

  uint64_t Version(const std::string& key) const;
  size_t block_height() const { return height_; }
  const Stats& stats() const { return stats_; }

 private:
  /// Validates one transaction against current versions; applies its writes
  /// on success. Charges the per-txn cost into `cost_ns`.
  bool ValidateAndApply(NetContext* ctx, const ChainTxn& txn,
                        uint64_t* cost_ns);

  Fabric* fabric_;
  MemoryNode* pool_;
  RaceHash state_;  // world state in disaggregated memory
  size_t hot_cache_entries_;
  std::map<std::string, std::pair<std::string, uint64_t>> hot_cache_;
  std::map<std::string, uint64_t> versions_;  // validator-side version table
  size_t height_ = 0;
  Stats stats_;
};

}  // namespace disagg

#endif  // DISAGG_CHAIN_FLEXCHAIN_H_
