#include "pm/pilot_log.h"

#include <cstring>

#include "common/coding.h"
#include "common/logging.h"

namespace disagg {

PilotLog::PilotLog(Fabric* fabric, PmNode* pm, size_t log_capacity_bytes,
                   size_t max_pages)
    : fabric_(fabric),
      pm_(pm),
      pm_client_(fabric, pm),
      log_capacity_(log_capacity_bytes),
      max_pages_(max_pages) {
  auto control = pm_->AllocLocal(16);
  DISAGG_CHECK(control.ok());
  control_offset_ = control->offset;
  auto log = pm_->AllocLocal(log_capacity_);
  DISAGG_CHECK(log.ok());
  log_offset_ = log->offset;
  auto pages = pm_->AllocLocal(max_pages_ * kPageSize);
  DISAGG_CHECK(pages.ok());
  pages_offset_ = pages->offset;

  fabric_->node(pm_->node())
      ->RegisterHandler("pilot.append",
                        [this](Slice req, std::string* resp,
                               RpcServerContext* sctx) {
                          return HandleRpcAppend(req, resp, sctx);
                        });
}

Status PilotLog::CreatePage(NetContext* ctx, const Page& page) {
  uint64_t frame_offset;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (page_dir_.count(page.page_id())) {
      return Status::InvalidArgument("page already exists");
    }
    if (page_dir_.size() >= max_pages_) {
      return Status::Unavailable("PM page area full");
    }
    frame_offset = pages_offset_ + page_dir_.size() * kPageSize;
    page_dir_[page.page_id()] = frame_offset;
  }
  return pm_client_.WritePersistRpc(ctx, At(frame_offset),
                                    Slice(page.data(), kPageSize));
}

Status PilotLog::ReadControl(NetContext* ctx, uint64_t* tail,
                             uint64_t* applied) {
  char buf[16];
  DISAGG_RETURN_NOT_OK(fabric_->Read(ctx, At(control_offset_), buf, 16));
  *tail = DecodeFixed64(buf);
  *applied = DecodeFixed64(buf + 8);
  return Status::OK();
}

Status PilotLog::AppendLog(NetContext* ctx,
                           const std::vector<LogRecord>& records,
                           LogMode mode) {
  std::string payload;
  for (const LogRecord& r : records) {
    std::string one;
    r.EncodeTo(&one);
    PutFixed32(&payload, static_cast<uint32_t>(one.size()));
    payload += one;
  }
  stats_.appends++;

  if (mode == LogMode::kRpc) {
    std::string resp;
    return fabric_->Call(ctx, pm_->node(), "pilot.append", payload, &resp);
  }

  // Compute-driven logging: FAA reserves space, one-sided WRITE lands the
  // records, flush-read persists them. The PM server CPU never runs.
  auto prev = fabric_->FetchAdd(ctx, At(control_offset_), payload.size());
  if (!prev.ok()) return prev.status();
  if (*prev + payload.size() > log_capacity_) {
    return Status::Unavailable("PM log full");
  }
  PmClient client(fabric_, pm_);
  DISAGG_RETURN_NOT_OK(
      client.WriteUnsafe(ctx, At(log_offset_ + *prev), payload));
  return client.FlushRead(ctx, At(log_offset_ + *prev));
}

Status PilotLog::HandleRpcAppend(Slice req, std::string* resp,
                                 RpcServerContext* sctx) {
  MemoryRegion* region = fabric_->node(pm_->node())->region(pm_->region());
  char* base = region->data();
  uint64_t tail = DecodeFixed64(base + control_offset_);
  if (tail + req.size() > log_capacity_) {
    return Status::Unavailable("PM log full");
  }
  std::memcpy(base + log_offset_ + tail, req.data(), req.size());
  EncodeFixed64(base + control_offset_, tail + req.size());
  sctx->ChargeCompute(
      400 + static_cast<uint64_t>(PmNode::kMediaWriteNsPerByte * req.size()));
  resp->clear();
  return Status::OK();
}

Result<Page> PilotLog::ReadPage(NetContext* ctx, PageId id, Lsn expected_lsn) {
  uint64_t frame_offset;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = page_dir_.find(id);
    if (it == page_dir_.end()) return Status::NotFound("no such PM page");
    frame_offset = it->second;
  }
  Page page(id);
  DISAGG_RETURN_NOT_OK(
      pm_client_.ReadRemote(ctx, At(frame_offset), page.data(), kPageSize));
  if (page.lsn() >= expected_lsn) {
    stats_.fast_reads++;
    return page;
  }

  // Optimistic read failed validation: pull the unapplied log suffix and
  // replay it locally.
  stats_.replay_reads++;
  uint64_t tail = 0, applied = 0;
  DISAGG_RETURN_NOT_OK(ReadControl(ctx, &tail, &applied));
  if (tail > applied) {
    std::string buf(tail - applied, '\0');
    DISAGG_RETURN_NOT_OK(pm_client_.ReadRemote(
        ctx, At(log_offset_ + applied), buf.data(), buf.size()));
    Slice in(buf);
    while (in.size() >= 4) {
      uint32_t len = 0;
      DISAGG_CHECK(GetFixed32(&in, &len));
      if (in.size() < len) break;  // torn tail (concurrent append)
      Slice rec_bytes(in.data(), len);
      in.remove_prefix(len);
      auto rec = LogRecord::DecodeFrom(&rec_bytes);
      if (!rec.ok()) return rec.status();
      if (rec->page_id != id) continue;
      DISAGG_RETURN_NOT_OK(ApplyRedo(&page, *rec));
      stats_.replayed_records++;
      // Local replay CPU cost.
      ctx->Charge(250);
    }
  }
  if (page.lsn() < expected_lsn) {
    return Status::Unavailable("log replay did not reach the expected LSN");
  }
  return page;
}

size_t PilotLog::ApplyOnPmSide(size_t max_records) {
  std::lock_guard<std::mutex> lock(mu_);
  MemoryRegion* region = fabric_->node(pm_->node())->region(pm_->region());
  char* base = region->data();
  uint64_t tail = DecodeFixed64(base + control_offset_);
  uint64_t applied = DecodeFixed64(base + control_offset_ + 8);
  size_t count = 0;
  while (applied < tail && count < max_records) {
    if (tail - applied < 4) break;
    const uint32_t len = DecodeFixed32(base + log_offset_ + applied);
    if (tail - applied - 4 < len) break;  // record not fully written yet
    Slice rec_bytes(base + log_offset_ + applied + 4, len);
    auto rec = LogRecord::DecodeFrom(&rec_bytes);
    if (!rec.ok()) break;
    auto it = page_dir_.find(rec->page_id);
    if (it != page_dir_.end()) {
      // Apply in place on the PM-resident frame.
      Page page(rec->page_id);
      std::memcpy(page.data(), base + it->second, kPageSize);
      if (ApplyRedo(&page, *rec).ok()) {
        std::memcpy(base + it->second, page.data(), kPageSize);
      }
    }
    applied += 4 + len;
    count++;
  }
  EncodeFixed64(base + control_offset_ + 8, applied);
  return count;
}

uint64_t PilotLog::UnappliedBytes() const {
  MemoryRegion* region = fabric_->node(pm_->node())->region(pm_->region());
  const char* base = region->data();
  return DecodeFixed64(base + control_offset_) -
         DecodeFixed64(base + control_offset_ + 8);
}

}  // namespace disagg
