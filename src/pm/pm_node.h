#ifndef DISAGG_PM_PM_NODE_H_
#define DISAGG_PM_PM_NODE_H_

#include <mutex>
#include <string>
#include <vector>

#include "memnode/memory_node.h"
#include "net/fabric.h"

namespace disagg {

/// A disaggregated persistent-memory node (Sec. 2.3). Two properties set it
/// apart from a DRAM pool and drive the experiments:
///
/// 1. *Volatile landing buffers*: a one-sided RDMA WRITE completes once the
///    data reaches the remote NIC/PCIe buffers, which are NOT persistent
///    (Kalia et al.). Un-flushed writes are lost on power failure. A
///    subsequent RDMA READ flushes the pipeline ("flush-read"); a two-sided
///    RPC lets the server persist explicitly and needs only one round trip,
///    which is why Kalia et al. found the two-sided approach faster.
/// 2. *Low write bandwidth*: PM media writes are several times slower than
///    DRAM (PilotDB's core challenge), modeled as extra per-byte charges.
class PmNode {
 public:
  /// Media cost model (Optane-like): reads near-DRAM, writes ~1.5 GB/s.
  static constexpr double kMediaReadNsPerByte = 0.10;
  static constexpr double kMediaWriteNsPerByte = 0.65;
  /// Exadata's observation: the local kernel I/O stack costs ~10 us of
  /// software overhead per access, dwarfing the media and even the RDMA
  /// round trip — which is why REMOTE PM access can beat LOCAL PM access.
  static constexpr uint64_t kLocalIoStackOverheadNs = 10'000;

  PmNode(Fabric* fabric, const std::string& name, size_t capacity_bytes);

  NodeId node() const { return pool_.node(); }
  uint32_t region() const { return pool_.region(); }
  MemoryNode* pool() { return &pool_; }

  Result<GlobalAddr> AllocLocal(size_t bytes) {
    return pool_.AllocLocal(bytes);
  }

  /// Power-failure injection: discards every write that was not made durable
  /// by a flush or an RPC persist, restoring the previous durable bytes.
  void Crash();

  /// Number of writes currently sitting in volatile buffers.
  size_t staged_writes() const;

  // Internal: called by PmClient / the persist RPC handler.
  void StageWrite(uint64_t offset, size_t len);
  void MakeAllDurable();

 private:
  struct Staged {
    uint64_t offset;
    std::vector<char> old_bytes;
  };

  Status HandlePersistWrite(Slice req, std::string* resp,
                            RpcServerContext* sctx);

  Fabric* fabric_;
  MemoryNode pool_;
  mutable std::mutex mu_;
  std::vector<Staged> staging_;
};

/// Compute-side access paths to a PmNode, one per persistence discipline.
class PmClient {
 public:
  PmClient(Fabric* fabric, PmNode* pm) : fabric_(fabric), pm_(pm) {}

  /// One-sided WRITE only: fastest, but NOT durable until a flush. Data is
  /// visible remotely yet lost if the node crashes first.
  Status WriteUnsafe(NetContext* ctx, GlobalAddr addr, Slice data);

  /// Issues the flush-read that forces prior writes through the NIC/PCIe
  /// pipeline into persistence (one extra round trip).
  Status FlushRead(NetContext* ctx, GlobalAddr addr);

  /// Convenience: WriteUnsafe + FlushRead (the "one-sided persist" path).
  Status WritePersistOneSided(NetContext* ctx, GlobalAddr addr, Slice data);

  /// Two-sided persist: a single RPC; the server-side CPU stores and
  /// persists (ntstore+fence). One round trip total.
  Status WritePersistRpc(NetContext* ctx, GlobalAddr addr, Slice data);

  /// Remote PM read over RDMA (Exadata's fast path).
  Status ReadRemote(NetContext* ctx, GlobalAddr addr, void* dst, size_t n);

  /// PM read through a local kernel I/O stack (Exadata's slow path): charges
  /// the software overhead instead of a network round trip.
  Status ReadLocalViaIoStack(NetContext* ctx, GlobalAddr addr, void* dst,
                             size_t n);

 private:
  Fabric* fabric_;
  PmNode* pm_;
};

}  // namespace disagg

#endif  // DISAGG_PM_PM_NODE_H_
