#ifndef DISAGG_PM_PILOT_LOG_H_
#define DISAGG_PM_PILOT_LOG_H_

#include <map>
#include <mutex>
#include <vector>

#include "pm/pm_node.h"
#include "storage/log_record.h"
#include "storage/page.h"

namespace disagg {

/// PilotDB's PM-tier log layer (Sec. 2.3): the log lives in disaggregated
/// persistent memory and *is* the database ("log-as-the-database"), worked
/// around PM's low write bandwidth with two optimizations reproduced here:
///
/// 1. **Compute-node-driven logging**: the compute node reserves log space
///    with a remote fetch-add on the tail pointer, writes the records with a
///    one-sided WRITE, and persists with a flush-read — no PM-server CPU on
///    the critical path. (An RPC-driven mode is provided for comparison.)
/// 2. **Optimistic page reads**: the compute node reads a PM-resident page
///    with a one-sided READ and validates it by LSN; if the page is outdated
///    (the background applier lags), it reads the log suffix and replays it
///    locally instead of waiting.
///
/// PM layout: control block {tail, applied} | log area (len-prefixed
/// records) | page frames.
class PilotLog {
 public:
  enum class LogMode { kOneSided, kRpc };

  struct Stats {
    uint64_t appends = 0;
    uint64_t fast_reads = 0;      // page was current, single READ
    uint64_t replay_reads = 0;    // page stale, replayed log locally
    uint64_t replayed_records = 0;
  };

  PilotLog(Fabric* fabric, PmNode* pm, size_t log_capacity_bytes,
           size_t max_pages);

  /// Installs a page image into the PM page area (bootstrap path).
  Status CreatePage(NetContext* ctx, const Page& page);

  /// Durably appends a batch of redo records.
  Status AppendLog(NetContext* ctx, const std::vector<LogRecord>& records,
                   LogMode mode = LogMode::kOneSided);

  /// Optimistically reads `id`, expecting to observe at least `expected_lsn`
  /// worth of updates; replays the log tail locally when the PM-side applier
  /// has not caught up.
  Result<Page> ReadPage(NetContext* ctx, PageId id, Lsn expected_lsn);

  /// Background applier running on the PM server: applies up to
  /// `max_records` logged records to the PM-resident pages. Returns how many
  /// it applied. Costs nothing to any client (it is off the critical path).
  size_t ApplyOnPmSide(size_t max_records = SIZE_MAX);

  /// Bytes of log not yet applied by the PM-side applier.
  uint64_t UnappliedBytes() const;

  const Stats& stats() const { return stats_; }

 private:
  GlobalAddr At(uint64_t offset) const {
    return GlobalAddr{pm_->node(), pm_->region(), offset};
  }

  Status HandleRpcAppend(Slice req, std::string* resp, RpcServerContext* sctx);

  /// Reads {tail, applied} with one one-sided read.
  Status ReadControl(NetContext* ctx, uint64_t* tail, uint64_t* applied);

  Fabric* fabric_;
  PmNode* pm_;
  PmClient pm_client_;
  uint64_t control_offset_ = 0;  // {tail u64, applied u64}
  uint64_t log_offset_ = 0;
  size_t log_capacity_ = 0;
  uint64_t pages_offset_ = 0;
  size_t max_pages_ = 0;

  std::mutex mu_;
  std::map<PageId, uint64_t> page_dir_;  // page → frame offset
  Stats stats_;
};

}  // namespace disagg

#endif  // DISAGG_PM_PILOT_LOG_H_
