#include "pm/pm_node.h"

#include <cstring>

#include "common/coding.h"

namespace disagg {

PmNode::PmNode(Fabric* fabric, const std::string& name, size_t capacity_bytes)
    : fabric_(fabric),
      pool_(fabric, name, capacity_bytes, InterconnectModel::RdmaToPm()) {
  Node* n = fabric_->node(pool_.node());
  // Unlike DRAM pools, PM servers host strong CPUs (Sec. 2.3: Optane needs
  // recent Xeon hosts) — which is exactly why offloading persistence to the
  // server side is attractive.
  n->set_cpu_scale(1.0);
  n->RegisterHandler("pm.persist_write",
                     [this](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
                       return HandlePersistWrite(req, resp, sctx);
                     });
}

void PmNode::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  MemoryRegion* region = fabric_->node(pool_.node())->region(pool_.region());
  // Undo in reverse order so overlapping writes restore correctly.
  for (auto it = staging_.rbegin(); it != staging_.rend(); ++it) {
    std::memcpy(region->data() + it->offset, it->old_bytes.data(),
                it->old_bytes.size());
  }
  staging_.clear();
}

size_t PmNode::staged_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staging_.size();
}

void PmNode::StageWrite(uint64_t offset, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  MemoryRegion* region = fabric_->node(pool_.node())->region(pool_.region());
  Staged s;
  s.offset = offset;
  s.old_bytes.assign(region->data() + offset, region->data() + offset + len);
  staging_.push_back(std::move(s));
}

void PmNode::MakeAllDurable() {
  std::lock_guard<std::mutex> lock(mu_);
  staging_.clear();
}

Status PmNode::HandlePersistWrite(Slice req, std::string* resp,
                                  RpcServerContext* sctx) {
  uint64_t offset = 0;
  Slice data;
  if (!GetVarint64(&req, &offset) || !GetLengthPrefixedSlice(&req, &data)) {
    return Status::InvalidArgument("malformed pm.persist_write");
  }
  MemoryRegion* region = fabric_->node(pool_.node())->region(pool_.region());
  if (!region->Contains(offset, data.size())) {
    return Status::InvalidArgument("persist_write out of bounds");
  }
  std::memcpy(region->data() + offset, data.data(), data.size());
  // Server-side ntstore + fence: CPU cost plus the PM media write.
  sctx->ChargeCompute(
      400 + static_cast<uint64_t>(kMediaWriteNsPerByte * data.size()));
  resp->clear();
  return Status::OK();
}

Status PmClient::WriteUnsafe(NetContext* ctx, GlobalAddr addr, Slice data) {
  pm_->StageWrite(addr.offset, data.size());
  DISAGG_RETURN_NOT_OK(fabric_->Write(ctx, addr, data.data(), data.size()));
  // Media write cost is paid asynchronously by the DIMM; the visible latency
  // cost here is the RDMA write itself (already charged by the fabric).
  return Status::OK();
}

Status PmClient::FlushRead(NetContext* ctx, GlobalAddr addr) {
  char scratch;
  DISAGG_RETURN_NOT_OK(fabric_->Read(ctx, addr, &scratch, 1));
  pm_->MakeAllDurable();
  return Status::OK();
}

Status PmClient::WritePersistOneSided(NetContext* ctx, GlobalAddr addr,
                                      Slice data) {
  DISAGG_RETURN_NOT_OK(WriteUnsafe(ctx, addr, data));
  return FlushRead(ctx, addr);
}

Status PmClient::WritePersistRpc(NetContext* ctx, GlobalAddr addr,
                                 Slice data) {
  std::string req;
  PutVarint64(&req, addr.offset);
  PutLengthPrefixedSlice(&req, data);
  std::string resp;
  return fabric_->Call(ctx, pm_->node(), "pm.persist_write", req, &resp);
}

Status PmClient::ReadRemote(NetContext* ctx, GlobalAddr addr, void* dst,
                            size_t n) {
  DISAGG_RETURN_NOT_OK(fabric_->Read(ctx, addr, dst, n));
  ctx->Charge(static_cast<uint64_t>(PmNode::kMediaReadNsPerByte * n));
  return Status::OK();
}

Status PmClient::ReadLocalViaIoStack(NetContext* ctx, GlobalAddr addr,
                                     void* dst, size_t n) {
  MemoryRegion* region = fabric_->node(pm_->node())->region(addr.region);
  if (region == nullptr || !region->Contains(addr.offset, n)) {
    return Status::InvalidArgument("read out of bounds");
  }
  std::memcpy(dst, region->data() + addr.offset, n);
  // No network, but the full kernel I/O stack plus media: this is what makes
  // local PM *slower* than remote PM (Exadata, Sec. 2.3).
  ctx->Charge(PmNode::kLocalIoStackOverheadNs +
              static_cast<uint64_t>(PmNode::kMediaReadNsPerByte * n));
  return Status::OK();
}

}  // namespace disagg
