#include "pm/ford_txn.h"

#include <cstring>
#include <set>

#include "common/coding.h"
#include "common/logging.h"

namespace disagg {

FordTxnManager::FordTxnManager(Fabric* fabric, std::vector<PmNode*> pm_nodes,
                               size_t records_per_node)
    : fabric_(fabric), pm_nodes_(std::move(pm_nodes)) {
  for (PmNode* node : pm_nodes_) {
    for (size_t r = 0; r < records_per_node; r++) {
      auto addr = node->AllocLocal(kRecordBytes);
      DISAGG_CHECK(addr.ok());
      record_addrs_.push_back(*addr);
      record_nodes_.push_back(node);
    }
  }
}

Result<std::string> FordTxnManager::ReadCommitted(NetContext* ctx,
                                                  uint64_t rid) {
  if (rid >= record_addrs_.size()) return Status::InvalidArgument("rid");
  char buf[kRecordBytes];
  PmClient client(fabric_, NodeOf(rid));
  DISAGG_RETURN_NOT_OK(client.ReadRemote(ctx, AddrOf(rid), buf,
                                         kRecordBytes));
  return std::string(buf + 16, strnlen(buf + 16, kValueBytes));
}

Result<std::string> FordTxnManager::Txn::Read(uint64_t rid) {
  if (rid >= mgr_->record_addrs_.size()) {
    return Status::InvalidArgument("rid out of range");
  }
  // One one-sided READ fetches lock, version, and value together.
  char buf[kRecordBytes];
  PmClient client(mgr_->fabric_, mgr_->NodeOf(rid));
  DISAGG_RETURN_NOT_OK(client.ReadRemote(ctx_, mgr_->AddrOf(rid), buf,
                                         kRecordBytes));
  const uint64_t version = DecodeFixed64(buf + 8);
  read_versions_[rid] = version;
  // Read-your-writes within the transaction.
  auto wit = writes_.find(rid);
  if (wit != writes_.end()) return wit->second;
  return std::string(buf + 16, strnlen(buf + 16, kValueBytes));
}

Status FordTxnManager::Txn::Write(uint64_t rid, const std::string& value) {
  if (rid >= mgr_->record_addrs_.size()) {
    return Status::InvalidArgument("rid out of range");
  }
  if (value.size() > kValueBytes) {
    return Status::InvalidArgument("value too large for FORD record");
  }
  writes_[rid] = value;
  // Blind writes still validate: record the version we are overwriting.
  if (!read_versions_.count(rid)) {
    DISAGG_RETURN_NOT_OK(Read(rid).status());
  }
  return Status::OK();
}

void FordTxnManager::Txn::Abort() {
  finished_ = true;
  writes_.clear();
  read_versions_.clear();
}

Status FordTxnManager::Txn::Commit() {
  DISAGG_CHECK(!finished_);
  finished_ = true;
  if (writes_.empty()) {
    mgr_->stats_.commits++;
    return Status::OK();
  }

  // --- Lock phase: CAS lock words 0 -> txn id, in rid order (no deadlock;
  // parallel across nodes so charge the max branch).
  std::vector<uint64_t> locked;
  std::vector<NetContext> branch(writes_.size(), ctx_->Fork());
  size_t b = 0;
  bool lock_failed = false;
  for (const auto& [rid, value] : writes_) {
    GlobalAddr lock_addr = mgr_->AddrOf(rid);
    auto observed =
        mgr_->fabric_->CompareAndSwap(&branch[b], lock_addr, 0, id_);
    if (!observed.ok()) return observed.status();
    if (*observed != 0) {
      lock_failed = true;
      break;
    }
    locked.push_back(rid);
    b++;
  }
  JoinParallel(ctx_, branch.data(), branch.size());

  // --- Validate phase: read-set versions unchanged (one READ per record,
  // parallel).
  bool validate_failed = false;
  if (!lock_failed) {
    std::vector<NetContext> vbranch(read_versions_.size(), ctx_->Fork());
    size_t v = 0;
    for (const auto& [rid, version] : read_versions_) {
      char buf[16];
      Status st = mgr_->fabric_->Read(&vbranch[v], mgr_->AddrOf(rid), buf, 16);
      if (!st.ok()) return st;
      const uint64_t lock = DecodeFixed64(buf);
      const uint64_t current = DecodeFixed64(buf + 8);
      // A record we hold the lock on is "locked by us" — fine; any other
      // lock holder or version change kills the transaction.
      if (current != version || (lock != 0 && lock != id_)) {
        validate_failed = true;
      }
      v++;
    }
    JoinParallel(ctx_, vbranch.data(), vbranch.size());
  }

  if (lock_failed || validate_failed) {
    // Release whatever we locked.
    for (uint64_t rid : locked) {
      (void)mgr_->fabric_->CompareAndSwap(ctx_, mgr_->AddrOf(rid), id_, 0);
    }
    if (lock_failed) {
      mgr_->stats_.aborts_lock++;
    } else {
      mgr_->stats_.aborts_validate++;
    }
    return Status::Aborted(lock_failed ? "lock conflict"
                                       : "validation failed");
  }

  // --- Write + persist phase: WRITE {version+1, value} for each record;
  // ONE flush-read per involved PM node persists all its writes (FORD's
  // batched remote persistence); then unlock.
  std::set<PmNode*> touched_nodes;
  for (const auto& [rid, value] : writes_) {
    char buf[kRecordBytes - 8];  // version + value (lock word untouched)
    std::memset(buf, 0, sizeof(buf));
    EncodeFixed64(buf, read_versions_[rid] + 1);
    std::memcpy(buf + 8, value.data(), value.size());
    GlobalAddr addr = mgr_->AddrOf(rid);
    addr.offset += 8;
    PmClient client(mgr_->fabric_, mgr_->NodeOf(rid));
    DISAGG_RETURN_NOT_OK(
        client.WriteUnsafe(ctx_, addr, Slice(buf, sizeof(buf))));
    touched_nodes.insert(mgr_->NodeOf(rid));
  }
  for (PmNode* node : touched_nodes) {
    PmClient client(mgr_->fabric_, node);
    DISAGG_RETURN_NOT_OK(client.FlushRead(ctx_, node->pool()->at(0)));
  }
  for (const auto& [rid, value] : writes_) {
    auto observed =
        mgr_->fabric_->CompareAndSwap(ctx_, mgr_->AddrOf(rid), id_, 0);
    if (!observed.ok()) return observed.status();
  }
  mgr_->stats_.commits++;
  return Status::OK();
}

}  // namespace disagg
