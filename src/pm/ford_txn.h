#ifndef DISAGG_PM_FORD_TXN_H_
#define DISAGG_PM_FORD_TXN_H_

#include <map>
#include <string>
#include <vector>

#include "pm/pm_node.h"

namespace disagg {

/// FORD-style fast one-sided distributed transactions on disaggregated
/// persistent memory (Sec. 2.3 reference [50]): compute nodes run OCC
/// transactions over records spread across PM nodes using ONLY one-sided
/// verbs — no PM-server CPU on the transaction path.
///
/// Record layout on PM (fixed slots): {lock u64, version u64, value[]}.
/// Protocol:
///   read phase    : one-sided READ of {lock, version, value}; buffered.
///   lock phase    : CAS each write-set record's lock 0->txn_id (parallel).
///   validate      : re-READ versions of the read set; any change -> abort.
///   write+persist : one-sided WRITE of new {version+1, value}, then ONE
///                   flush-read per PM node covers all its writes (FORD's
///                   batched persistence), then unlock CAS.
/// Aborts release acquired locks. Everything is charged one-sided costs.
class FordTxnManager {
 public:
  static constexpr size_t kValueBytes = 40;
  static constexpr size_t kRecordBytes = 16 + kValueBytes;

  struct Stats {
    uint64_t commits = 0;
    uint64_t aborts_lock = 0;      // lost a lock CAS
    uint64_t aborts_validate = 0;  // version changed under us
  };

  /// Creates `records_per_node` fixed record slots on each PM node.
  FordTxnManager(Fabric* fabric, std::vector<PmNode*> pm_nodes,
                 size_t records_per_node);

  size_t record_count() const { return record_addrs_.size(); }

  /// A transaction handle accumulating read/write sets.
  class Txn {
   public:
    /// Reads record `rid`; returns its current value bytes.
    Result<std::string> Read(uint64_t rid);
    /// Stages a write of record `rid` (must fit kValueBytes).
    Status Write(uint64_t rid, const std::string& value);
    /// OCC commit; Aborted on conflict (caller may retry).
    Status Commit();
    /// Releases any state without applying writes.
    void Abort();

   private:
    friend class FordTxnManager;
    Txn(FordTxnManager* mgr, NetContext* ctx, uint64_t id)
        : mgr_(mgr), ctx_(ctx), id_(id) {}

    FordTxnManager* mgr_;
    NetContext* ctx_;
    uint64_t id_;
    std::map<uint64_t, uint64_t> read_versions_;
    std::map<uint64_t, std::string> writes_;
    bool finished_ = false;
  };

  Txn Begin(NetContext* ctx) { return Txn(this, ctx, next_txn_id_++); }

  /// Direct (non-transactional) read for verification in tests.
  Result<std::string> ReadCommitted(NetContext* ctx, uint64_t rid);

  const Stats& stats() const { return stats_; }

 private:
  friend class Txn;

  GlobalAddr AddrOf(uint64_t rid) const { return record_addrs_[rid]; }
  PmNode* NodeOf(uint64_t rid) const { return record_nodes_[rid]; }

  Fabric* fabric_;
  std::vector<PmNode*> pm_nodes_;
  std::vector<GlobalAddr> record_addrs_;
  std::vector<PmNode*> record_nodes_;
  uint64_t next_txn_id_ = 1;
  Stats stats_;
};

}  // namespace disagg

#endif  // DISAGG_PM_FORD_TXN_H_
