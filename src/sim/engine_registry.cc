#include "sim/engine_registry.h"

#include "log/shared_log.h"
#include "memnode/executor.h"

namespace disagg {
namespace sim {

namespace {
constexpr char kSlogSuffix[] = "+slog";
constexpr size_t kSlogSuffixLen = 5;
constexpr char kOffloadSuffix[] = "+offload";
constexpr size_t kOffloadSuffixLen = 8;

bool HasSuffix(const std::string& name, const char* suffix, size_t len) {
  return name.size() > len &&
         name.compare(name.size() - len, len, suffix) == 0;
}
}  // namespace

const std::vector<std::string>& RowEngineNames() {
  static const std::vector<std::string> kNames = {
      "monolithic", "aurora", "polar", "socrates", "taurus",
  };
  return kNames;
}

const std::vector<std::string>& SharedLogRowEngineNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const std::string& base : RowEngineNames()) {
      names.push_back(base + kSlogSuffix);
    }
    return names;
  }();
  return kNames;
}

const std::vector<std::string>& OffloadRowEngineNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const std::string& base : RowEngineNames()) {
      names.push_back(base + kOffloadSuffix);
    }
    return names;
  }();
  return kNames;
}

std::unique_ptr<RowEngine> MakeRowEngine(const std::string& name,
                                         Fabric* fabric) {
  if (HasSuffix(name, kOffloadSuffix, kOffloadSuffixLen)) {
    // "<base>+offload": the base architecture with its compute-local lock
    // table swapped for the memory-node executor's lock service.
    const std::string base = name.substr(0, name.size() - kOffloadSuffixLen);
    auto engine = MakeRowEngine(base, fabric);
    if (engine != nullptr) {
      engine->AdoptConcurrencyOffload(
          std::make_unique<ConcurrencyOffload>(fabric));
    }
    return engine;
  }
  const size_t n = name.size();
  if (n > kSlogSuffixLen &&
      name.compare(n - kSlogSuffixLen, kSlogSuffixLen, kSlogSuffix) == 0) {
    // "<base>+slog": the base architecture with its private WAL tier
    // swapped for one tag of a shared-log fleet the engine owns.
    const std::string base = name.substr(0, n - kSlogSuffixLen);
    auto slog =
        std::make_unique<SharedLogService>(fabric, SharedLogService::Config{});
    EngineLogConfig log;
    log.mode = EngineLogConfig::Mode::kShared;
    log.shared_log = slog.get();
    std::unique_ptr<RowEngine> engine;
    if (base == "monolithic") {
      engine = std::make_unique<MonolithicDb>(log);
    } else if (base == "aurora") {
      engine = std::make_unique<AuroraDb>(fabric, ReplicatedSegment::Config{},
                                          log);
    } else if (base == "polar") {
      engine = std::make_unique<PolarDb>(fabric, log);
    } else if (base == "socrates") {
      engine = std::make_unique<SocratesDb>(fabric, 2, log);
    } else if (base == "taurus") {
      engine = std::make_unique<TaurusDb>(fabric, 3, 3, log);
    }
    if (engine != nullptr) engine->AdoptSharedLog(std::move(slog));
    return engine;
  }
  if (name == "monolithic") return std::make_unique<MonolithicDb>();
  if (name == "aurora") return std::make_unique<AuroraDb>(fabric);
  if (name == "polar") return std::make_unique<PolarDb>(fabric);
  if (name == "socrates") return std::make_unique<SocratesDb>(fabric);
  if (name == "taurus") return std::make_unique<TaurusDb>(fabric);
  return nullptr;
}

}  // namespace sim
}  // namespace disagg
