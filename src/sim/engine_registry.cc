#include "sim/engine_registry.h"

namespace disagg {
namespace sim {

const std::vector<std::string>& RowEngineNames() {
  static const std::vector<std::string> kNames = {
      "monolithic", "aurora", "polar", "socrates", "taurus",
  };
  return kNames;
}

std::unique_ptr<RowEngine> MakeRowEngine(const std::string& name,
                                         Fabric* fabric) {
  if (name == "monolithic") return std::make_unique<MonolithicDb>();
  if (name == "aurora") return std::make_unique<AuroraDb>(fabric);
  if (name == "polar") return std::make_unique<PolarDb>(fabric);
  if (name == "socrates") return std::make_unique<SocratesDb>(fabric);
  if (name == "taurus") return std::make_unique<TaurusDb>(fabric);
  return nullptr;
}

}  // namespace sim
}  // namespace disagg
