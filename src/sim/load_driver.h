#ifndef DISAGG_SIM_LOAD_DRIVER_H_
#define DISAGG_SIM_LOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "net/net_context.h"

namespace disagg {

class SloController;      // src/net/slo_controller.h
class MembershipService;  // src/net/membership.h

namespace sim {

/// Default virtual-time epoch width for the epoch-parallel driver (100 us):
/// wide enough to amortize the barrier, narrow enough that cross-partition
/// effect exchange stays timely at the congestion timescales the benches use.
inline constexpr uint64_t kDefaultEpochNs = 100'000;

/// Epoch-parallel execution of a load run (DESIGN.md "Parallel simulation").
///
/// With `partitions > 0` the driver splits clients into `partitions`
/// round-robin partitions (client -> client % partitions) and advances them
/// through bounded virtual-time epochs: within an epoch each partition runs
/// independently against partition-local views of the order-sensitive
/// shared state (congestion queues, breaker windows), then all partitions
/// barrier and their effect logs replay into the authoritative state in
/// partition-id order.
///
/// The determinism contract: the result is a pure function of
/// (seed, workload, `partitions`, `epoch_ns`) — `threads` is purely an
/// execution resource and NEVER affects a single counter or trace bit
/// (pinned by tests/parallel_sim_test.cc across thread counts 1/2/8).
/// `partitions == 1` reproduces the legacy serial global-order schedule bit
/// for bit; `partitions > 1` is its own (equally deterministic) schedule in
/// which cross-partition interference at shared resources is exchanged at
/// epoch granularity rather than per op.
struct ParallelConfig {
  uint32_t threads = 1;     ///< worker threads (execution resource only)
  uint32_t partitions = 0;  ///< client partitions; 0 = legacy serial driver
  uint64_t epoch_ns = 0;    ///< epoch width; 0 = kDefaultEpochNs
  bool record_trace = false;  ///< fill `LoadReport::trace` (one record/op)

  /// SLO control plane hook: when set, every completed op is reported to
  /// the controller (tenant taken from the op's context) and
  /// `SloController::EndEpoch` fires at every epoch barrier. The serial
  /// drivers (`partitions == 0`) impose the same `epoch_ns` epoch structure
  /// when a controller is attached, firing `EndEpoch` at identical virtual
  /// instants as the parallel driver — controller decisions are a pure
  /// function of (seed, workload, partitions, epoch_ns), never of
  /// `threads`. Not owned.
  SloController* controller = nullptr;

  /// Fleet membership hook: when set, `MembershipService::EndEpoch` fires at
  /// every epoch barrier (after the SLO controller's), so heartbeat rounds,
  /// suspicion updates, lease revocations, and orchestrated repairs execute
  /// at the same virtual instants under the serial and parallel drivers —
  /// pure function of (seed, workload, partitions, epoch_ns), never of
  /// `threads`. Not owned.
  MembershipService* membership = nullptr;
};

/// Options for one closed-loop load run: N logical clients, each issuing
/// `ops_per_client` operations back to back (plus optional think time),
/// interleaved in *virtual* time on one OS thread.
struct LoadOptions {
  uint64_t clients = 1;
  uint64_t ops_per_client = 100;
  uint64_t think_ns = 0;  ///< client-side pause between ops (charged, but
                          ///< excluded from the per-op latency samples)
  uint64_t seed = 1;      ///< per-client RNGs derive from this
  ParallelConfig parallel;
};

/// How an open-loop client's arrival process is drawn.
enum class ArrivalProcess {
  kPoisson,        ///< exponential inter-arrivals at the offered rate
  kDeterministic,  ///< fixed spacing 1e9/rate, clients phase-staggered
};

/// Options for one open-loop run: N independent arrival streams, each
/// issuing `ops_per_client` operations at `ops_per_sec` *regardless of
/// completions* — the offered load does not self-throttle at saturation,
/// which is what exposes the unbounded-queue regime past capacity.
struct OpenLoopOptions {
  uint64_t clients = 1;
  uint64_t ops_per_client = 100;
  double ops_per_sec = 1e6;  ///< offered rate PER CLIENT (aggregate = N x)
  ArrivalProcess process = ArrivalProcess::kPoisson;
  uint64_t seed = 1;  ///< workload RNG streams derive exactly as in
                      ///< `LoadOptions` (same seed -> same op draws);
                      ///< arrival streams use an independent derivation
  ParallelConfig parallel;
};

/// Issues one operation on behalf of `client` (0-based). All simulated cost
/// must be charged to `ctx`; `rng` is the client's private deterministic
/// stream. Returning a non-ok status counts as an error but does not stop
/// the client (its charged time still advances, like a real failed request).
/// Multi-tenant workloads set `ctx->tenant` (first thing, before any fabric
/// op) to bill the op's traffic at congested resources.
using ClientOpFn = std::function<Status(uint64_t client, uint64_t op_index,
                                        NetContext* ctx, Random* rng)>;

/// Result of a closed- or open-loop run.
struct LoadReport {
  uint64_t clients = 0;
  uint64_t ops = 0;     ///< operations issued (ok + errors)
  uint64_t errors = 0;  ///< non-ok operations
  uint64_t busy = 0;    ///< subset of errors that returned Status::Busy
                        ///< (admission-control rejections fail this way)

  /// Wall-clock of the run in simulated time: max over clients of their
  /// final `sim_ns` (the slowest client defines the makespan).
  uint64_t makespan_ns = 0;

  /// Per-op latency (charged sim time per op, think time excluded). For
  /// open-loop runs this is the *response time* from arrival to completion.
  Histogram latency;

  /// All clients' counters folded with `MergeParallel` — traffic is summed,
  /// `total.sim_ns` equals `makespan_ns`.
  NetContext total;

  /// Each client's final simulated clock (completion of its last op);
  /// `makespan_ns` is the max of these.
  std::vector<uint64_t> per_client_sim_ns;

  // ---- Open-loop only (zero for closed-loop runs) ---------------------

  /// Aggregate offered load (`clients * ops_per_sec`). Compare against
  /// `ThroughputOpsPerSec()`: below capacity they agree; past capacity the
  /// achieved rate plateaus while offered keeps rising.
  double offered_ops_per_sec = 0.0;

  /// Ops in flight sampled at every arrival instant (for Poisson arrivals
  /// PASTA makes these samples unbiased time averages). Mean/max/percentiles
  /// show the queue-depth-over-time behaviour: bounded below the knee,
  /// growing without bound past it.
  Histogram queue_depth;
  uint64_t max_in_flight = 0;

  /// One record per op when `ParallelConfig::record_trace` is set: the
  /// trace the determinism suite compares bit for bit. Canonical order is
  /// (arrival_ns, client, op_index) — which is exactly the serial driver's
  /// processing order (virtual-time heap with client-id tie-break), so
  /// serial and epoch-parallel traces are directly comparable.
  struct OpTrace {
    uint64_t arrival_ns = 0;  ///< when the op was issued (closed loop: the
                              ///< client's clock before the op)
    uint64_t done_ns = 0;     ///< the issuing context's clock after the op
    uint64_t client = 0;
    uint64_t op_index = 0;
    Status::Code code = Status::Code::kOk;
    bool operator==(const OpTrace&) const = default;
  };
  std::vector<OpTrace> trace;

  /// Epoch barriers the run crossed (0 on the legacy serial path, unless an
  /// SLO controller imposed its epoch structure there).
  uint64_t epochs = 0;

  double ThroughputOpsPerSec() const {
    return makespan_ns == 0 ? 0.0
                            : static_cast<double>(ops) * 1e9 /
                                  static_cast<double>(makespan_ns);
  }

  std::string ToString() const;
};

/// Runs `opts.clients` closed-loop clients against `op`, interleaving them
/// in global virtual-time order: at every step the client with the smallest
/// simulated clock issues its next operation. This ordering is what makes
/// the shared-resource congestion model (`src/net/congestion.h`) a
/// queue-by-arrival discipline — arrivals at every resource are
/// non-decreasing — and it makes the whole run a pure function of (`opts`,
/// the op closure): same seed, same trace, bit for bit.
///
/// With `opts.parallel.partitions > 0` the run executes on the
/// epoch-parallel engine instead (see `ParallelConfig`); the same
/// determinism holds with `threads` excluded from the function.
LoadReport RunClosedLoop(const LoadOptions& opts, const ClientOpFn& op);

/// Runs `opts.clients` open-loop arrival streams against `op`. Arrival
/// times are generated up front from the offered rate (Poisson or
/// deterministic per `opts.process`) and the streams are interleaved in
/// global virtual-time order; each arrival executes on a context whose
/// clock starts at the arrival instant, so its charged completion time and
/// queueing delay are independent of how backed up other arrivals already
/// are on the client side. Ops keep being issued at the offered rate even
/// when earlier ops are still queued — past capacity the in-flight count
/// and the response-time tail grow without bound, exactly the regime
/// closed-loop clients cannot reach. Deterministic: same options, same
/// trace, bit for bit.
///
/// With `opts.parallel.partitions > 0` the run executes on the
/// epoch-parallel engine instead (see `ParallelConfig`); the same
/// determinism holds with `threads` excluded from the function.
LoadReport RunOpenLoop(const OpenLoopOptions& opts, const ClientOpFn& op);

}  // namespace sim
}  // namespace disagg

#endif  // DISAGG_SIM_LOAD_DRIVER_H_
