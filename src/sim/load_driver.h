#ifndef DISAGG_SIM_LOAD_DRIVER_H_
#define DISAGG_SIM_LOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "net/net_context.h"

namespace disagg {
namespace sim {

/// Options for one closed-loop load run: N logical clients, each issuing
/// `ops_per_client` operations back to back (plus optional think time),
/// interleaved in *virtual* time on one OS thread.
struct LoadOptions {
  uint64_t clients = 1;
  uint64_t ops_per_client = 100;
  uint64_t think_ns = 0;  ///< client-side pause between ops (charged, but
                          ///< excluded from the per-op latency samples)
  uint64_t seed = 1;      ///< per-client RNGs derive from this
};

/// Issues one operation on behalf of `client` (0-based). All simulated cost
/// must be charged to `ctx`; `rng` is the client's private deterministic
/// stream. Returning a non-ok status counts as an error but does not stop
/// the client (its charged time still advances, like a real failed request).
using ClientOpFn = std::function<Status(uint64_t client, uint64_t op_index,
                                        NetContext* ctx, Random* rng)>;

/// Result of a closed-loop run.
struct LoadReport {
  uint64_t clients = 0;
  uint64_t ops = 0;     ///< operations issued (ok + errors)
  uint64_t errors = 0;  ///< non-ok operations

  /// Wall-clock of the run in simulated time: max over clients of their
  /// final `sim_ns` (the slowest client defines the makespan).
  uint64_t makespan_ns = 0;

  /// Per-op latency (charged sim time per op, think time excluded).
  Histogram latency;

  /// All clients' counters folded with `MergeParallel` — traffic is summed,
  /// `total.sim_ns` equals `makespan_ns`.
  NetContext total;

  double ThroughputOpsPerSec() const {
    return makespan_ns == 0 ? 0.0
                            : static_cast<double>(ops) * 1e9 /
                                  static_cast<double>(makespan_ns);
  }

  std::string ToString() const;
};

/// Runs `opts.clients` closed-loop clients against `op`, interleaving them
/// in global virtual-time order: at every step the client with the smallest
/// simulated clock issues its next operation. This ordering is what makes
/// the shared-resource congestion model (`src/net/congestion.h`) a
/// FIFO-by-arrival queue — arrivals at every resource are non-decreasing —
/// and it makes the whole run a pure function of (`opts`, the op closure):
/// same seed, same trace, bit for bit.
LoadReport RunClosedLoop(const LoadOptions& opts, const ClientOpFn& op);

}  // namespace sim
}  // namespace disagg

#endif  // DISAGG_SIM_LOAD_DRIVER_H_
