#ifndef DISAGG_SIM_ENGINE_REGISTRY_H_
#define DISAGG_SIM_ENGINE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engines.h"

namespace disagg {
namespace sim {

/// Canonical names of every RowEngine architecture. The single source of
/// truth shared by the conformance tests and the chaos harness — adding an
/// engine here enrolls it in both.
const std::vector<std::string>& RowEngineNames();

/// The "+slog" variants: every RowEngine architecture with its private WAL
/// tier swapped for a tag of an engine-owned shared-log fleet
/// (`RowEngine::shared_log()` exposes it). Data-path behaviour is
/// otherwise identical — these enroll in the chaos harness alongside the
/// legacy names.
const std::vector<std::string>& SharedLogRowEngineNames();

/// The "+offload" variants: every RowEngine architecture with its
/// compute-local lock table swapped for the memory-node executor's lock
/// service (`RowEngine::concurrency_offload()` exposes the bundle). Every
/// row-lock acquire/release becomes one RPC to the pool node; the data
/// path is otherwise identical. Enrolled in the chaos harness alongside
/// the legacy and "+slog" names.
const std::vector<std::string>& OffloadRowEngineNames();

/// Builds the named engine on `fabric` (which the engine may ignore, e.g.
/// the monolithic baseline). Accepts the legacy names and the "+slog" /
/// "+offload" variants. Returns nullptr for unknown names.
std::unique_ptr<RowEngine> MakeRowEngine(const std::string& name,
                                         Fabric* fabric);

}  // namespace sim
}  // namespace disagg

#endif  // DISAGG_SIM_ENGINE_REGISTRY_H_
