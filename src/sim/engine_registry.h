#ifndef DISAGG_SIM_ENGINE_REGISTRY_H_
#define DISAGG_SIM_ENGINE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engines.h"

namespace disagg {
namespace sim {

/// Canonical names of every RowEngine architecture. The single source of
/// truth shared by the conformance tests and the chaos harness — adding an
/// engine here enrolls it in both.
const std::vector<std::string>& RowEngineNames();

/// Builds the named engine on `fabric` (which the engine may ignore, e.g.
/// the monolithic baseline). Returns nullptr for unknown names.
std::unique_ptr<RowEngine> MakeRowEngine(const std::string& name,
                                         Fabric* fabric);

}  // namespace sim
}  // namespace disagg

#endif  // DISAGG_SIM_ENGINE_REGISTRY_H_
