#include "sim/load_driver.h"

#include <cstdio>
#include <queue>
#include <vector>

namespace disagg {
namespace sim {

namespace {

/// Heap entry: the client's virtual clock, with the client id as a
/// deterministic tie-break (lower id goes first at equal times).
struct Runnable {
  uint64_t at_ns;
  uint64_t client;
  bool operator>(const Runnable& o) const {
    return at_ns != o.at_ns ? at_ns > o.at_ns : client > o.client;
  }
};

}  // namespace

LoadReport RunClosedLoop(const LoadOptions& opts, const ClientOpFn& op) {
  LoadReport report;
  report.clients = opts.clients;
  if (opts.clients == 0 || opts.ops_per_client == 0) return report;

  std::vector<NetContext> ctxs(opts.clients);
  std::vector<Random> rngs;
  std::vector<uint64_t> issued(opts.clients, 0);
  rngs.reserve(opts.clients);
  for (uint64_t c = 0; c < opts.clients; c++) {
    // Distinct, seed-derived streams (golden-ratio spacing avoids the
    // correlated low bits of seed, seed+1, ...).
    rngs.emplace_back(opts.seed + c * 0x9E3779B97F4A7C15ull);
  }

  std::priority_queue<Runnable, std::vector<Runnable>, std::greater<Runnable>>
      ready;
  for (uint64_t c = 0; c < opts.clients; c++) ready.push({0, c});

  while (!ready.empty()) {
    const Runnable r = ready.top();
    ready.pop();
    NetContext* ctx = &ctxs[r.client];
    const uint64_t before = ctx->sim_ns;
    Status st = op(r.client, issued[r.client], ctx, &rngs[r.client]);
    report.ops++;
    if (!st.ok()) report.errors++;
    report.latency.Record(ctx->sim_ns - before);
    if (opts.think_ns > 0) ctx->Charge(opts.think_ns);
    if (++issued[r.client] < opts.ops_per_client) {
      ready.push({ctx->sim_ns, r.client});
    }
  }

  for (const NetContext& c : ctxs) {
    if (c.sim_ns > report.makespan_ns) report.makespan_ns = c.sim_ns;
  }
  MergeParallel(&report.total, ctxs.data(), ctxs.size());
  return report;
}

std::string LoadReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "clients=%llu ops=%llu errors=%llu makespan_ms=%.3f "
                "tput_kops=%.1f p50_us=%.2f p99_us=%.2f queue_ms=%.3f",
                static_cast<unsigned long long>(clients),
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(errors),
                static_cast<double>(makespan_ns) / 1e6,
                ThroughputOpsPerSec() / 1e3, latency.Percentile(50) / 1e3,
                latency.Percentile(99) / 1e3,
                static_cast<double>(total.queue_ns) / 1e6);
  return buf;
}

}  // namespace sim
}  // namespace disagg
