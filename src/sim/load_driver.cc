#include "sim/load_driver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>
#include <vector>

namespace disagg {
namespace sim {

namespace {

/// Distinct, seed-derived per-client streams (golden-ratio spacing avoids
/// the correlated low bits of seed, seed+1, ...). The SAME derivation is
/// used by both drivers so a workload closure draws identically under
/// closed- and open-loop scheduling.
uint64_t ClientSeed(uint64_t seed, uint64_t client) {
  return seed + client * 0x9E3779B97F4A7C15ull;
}

/// Heap entry: the client's virtual clock, with the client id as a
/// deterministic tie-break (lower id goes first at equal times).
struct Runnable {
  uint64_t at_ns;
  uint64_t client;
  bool operator>(const Runnable& o) const {
    return at_ns != o.at_ns ? at_ns > o.at_ns : client > o.client;
  }
};

}  // namespace

LoadReport RunClosedLoop(const LoadOptions& opts, const ClientOpFn& op) {
  LoadReport report;
  report.clients = opts.clients;
  if (opts.clients == 0 || opts.ops_per_client == 0) return report;

  std::vector<NetContext> ctxs(opts.clients);
  std::vector<Random> rngs;
  std::vector<uint64_t> issued(opts.clients, 0);
  rngs.reserve(opts.clients);
  for (uint64_t c = 0; c < opts.clients; c++) {
    rngs.emplace_back(ClientSeed(opts.seed, c));
  }

  std::priority_queue<Runnable, std::vector<Runnable>, std::greater<Runnable>>
      ready;
  for (uint64_t c = 0; c < opts.clients; c++) ready.push({0, c});

  while (!ready.empty()) {
    const Runnable r = ready.top();
    ready.pop();
    NetContext* ctx = &ctxs[r.client];
    const uint64_t before = ctx->sim_ns;
    Status st = op(r.client, issued[r.client], ctx, &rngs[r.client]);
    report.ops++;
    if (!st.ok()) {
      report.errors++;
      if (st.IsBusy()) report.busy++;
    }
    report.latency.Record(ctx->sim_ns - before);
    if (opts.think_ns > 0) ctx->Charge(opts.think_ns);
    if (++issued[r.client] < opts.ops_per_client) {
      ready.push({ctx->sim_ns, r.client});
    }
  }

  report.per_client_sim_ns.reserve(opts.clients);
  for (const NetContext& c : ctxs) {
    report.per_client_sim_ns.push_back(c.sim_ns);
    if (c.sim_ns > report.makespan_ns) report.makespan_ns = c.sim_ns;
  }
  MergeParallel(&report.total, ctxs.data(), ctxs.size());
  return report;
}

LoadReport RunOpenLoop(const OpenLoopOptions& opts, const ClientOpFn& op) {
  LoadReport report;
  report.clients = opts.clients;
  if (opts.clients == 0 || opts.ops_per_client == 0 ||
      opts.ops_per_sec <= 0.0) {
    return report;
  }
  report.offered_ops_per_sec =
      opts.ops_per_sec * static_cast<double>(opts.clients);
  const double period_ns = 1e9 / opts.ops_per_sec;

  // Workload streams derive exactly as in RunClosedLoop; arrival streams use
  // an independent salt so switching processes never perturbs the op draws.
  std::vector<NetContext> accs(opts.clients);  // per-client folded counters
  std::vector<Random> rngs;
  std::vector<Random> arrival_rngs;
  std::vector<uint64_t> issued(opts.clients, 0);
  rngs.reserve(opts.clients);
  arrival_rngs.reserve(opts.clients);
  for (uint64_t c = 0; c < opts.clients; c++) {
    rngs.emplace_back(ClientSeed(opts.seed, c));
    arrival_rngs.emplace_back(ClientSeed(opts.seed, c) ^ 0xA221BA15ED5EEDull);
  }

  auto next_gap_ns = [&](uint64_t c) -> uint64_t {
    if (opts.process == ArrivalProcess::kDeterministic) {
      return static_cast<uint64_t>(period_ns);
    }
    // Exponential inter-arrival. NextDouble() is in [0, 1), so the argument
    // of log is in (0, 1] and the gap is finite.
    const double u = arrival_rngs[c].NextDouble();
    return static_cast<uint64_t>(-std::log(1.0 - u) * period_ns);
  };
  auto first_arrival_ns = [&](uint64_t c) -> uint64_t {
    if (opts.process == ArrivalProcess::kDeterministic) {
      // Phase-stagger the streams across one period so N deterministic
      // clients offer a smooth aggregate rate instead of N-bursts.
      return static_cast<uint64_t>(period_ns * static_cast<double>(c) /
                                   static_cast<double>(opts.clients));
    }
    return next_gap_ns(c);
  };

  std::priority_queue<Runnable, std::vector<Runnable>, std::greater<Runnable>>
      arrivals;
  for (uint64_t c = 0; c < opts.clients; c++) {
    arrivals.push({first_arrival_ns(c), c});
  }

  // Completion times of issued ops, for the in-flight (queue depth) gauge.
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<uint64_t>>
      completions;

  while (!arrivals.empty()) {
    const Runnable a = arrivals.top();
    arrivals.pop();

    // Ops whose completion precedes this arrival have left the system.
    while (!completions.empty() && completions.top() <= a.at_ns) {
      completions.pop();
    }

    // The op runs on a context clocked at its arrival instant: arrivals do
    // not wait for each other client-side (that is the congestion model's
    // job server-side), so the stream keeps offering load while earlier
    // ops queue.
    NetContext ctx = accs[a.client].Fork();
    ctx.sim_ns = a.at_ns;
    Status st = op(a.client, issued[a.client], &ctx, &rngs[a.client]);
    report.ops++;
    if (!st.ok()) {
      report.errors++;
      if (st.IsBusy()) report.busy++;
    }
    report.latency.Record(ctx.sim_ns - a.at_ns);
    completions.push(ctx.sim_ns);

    const uint64_t depth = completions.size();  // includes the op itself
    report.queue_depth.Record(depth);
    if (depth > report.max_in_flight) report.max_in_flight = depth;

    JoinParallel(&accs[a.client], &ctx, 1);
    if (++issued[a.client] < opts.ops_per_client) {
      arrivals.push({a.at_ns + next_gap_ns(a.client), a.client});
    }
  }

  report.per_client_sim_ns.reserve(opts.clients);
  for (const NetContext& c : accs) {
    report.per_client_sim_ns.push_back(c.sim_ns);
    if (c.sim_ns > report.makespan_ns) report.makespan_ns = c.sim_ns;
  }
  MergeParallel(&report.total, accs.data(), accs.size());
  return report;
}

std::string LoadReport::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "clients=%llu ops=%llu errors=%llu busy=%llu "
                "makespan_ms=%.3f tput_kops=%.1f offered_kops=%.1f "
                "p50_us=%.2f p99_us=%.2f queue_ms=%.3f max_inflight=%llu",
                static_cast<unsigned long long>(clients),
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(busy),
                static_cast<double>(makespan_ns) / 1e6,
                ThroughputOpsPerSec() / 1e3, offered_ops_per_sec / 1e3,
                latency.Percentile(50) / 1e3, latency.Percentile(99) / 1e3,
                static_cast<double>(total.queue_ns) / 1e6,
                static_cast<unsigned long long>(max_in_flight));
  return buf;
}

}  // namespace sim
}  // namespace disagg
