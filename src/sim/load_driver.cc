#include "sim/load_driver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>
#include <vector>

#include "net/membership.h"
#include "net/slo_controller.h"
#include "sim/driver_internal.h"
#include "sim/parallel_driver.h"

namespace disagg {
namespace sim {

using internal::ClientSeed;
using internal::OpTag;
using internal::Runnable;

LoadReport RunClosedLoop(const LoadOptions& opts, const ClientOpFn& op) {
  if (opts.parallel.partitions > 0) return RunEpochClosedLoop(opts, op);

  LoadReport report;
  report.clients = opts.clients;
  if (opts.clients == 0 || opts.ops_per_client == 0) return report;
  const bool record = opts.parallel.record_trace;

  std::vector<NetContext> ctxs(opts.clients);
  std::vector<Random> rngs;
  std::vector<uint64_t> issued(opts.clients, 0);
  rngs.reserve(opts.clients);
  for (uint64_t c = 0; c < opts.clients; c++) {
    rngs.emplace_back(ClientSeed(opts.seed, c));
  }

  // With an SLO controller attached the serial path imposes the SAME epoch
  // structure as the parallel driver: process ops while they fall inside the
  // epoch, fire EndEpoch at the boundary, jump over empty epochs. Epoch ends
  // are identical virtual instants, so controller decisions match the
  // partitions=1 parallel run bit for bit.
  SloController* const ctrl = opts.parallel.controller;
  MembershipService* const member = opts.parallel.membership;
  const uint64_t epoch_ns =
      opts.parallel.epoch_ns > 0 ? opts.parallel.epoch_ns : kDefaultEpochNs;
  uint64_t epoch_end = epoch_ns;

  std::priority_queue<Runnable, std::vector<Runnable>, std::greater<Runnable>>
      ready;
  for (uint64_t c = 0; c < opts.clients; c++) ready.push({0, c});

  while (!ready.empty()) {
    const Runnable r = ready.top();
    if ((ctrl != nullptr || member != nullptr) && r.at_ns >= epoch_end) {
      if (ctrl != nullptr) ctrl->EndEpoch(epoch_end);
      if (member != nullptr) member->EndEpoch(epoch_end);
      report.epochs++;
      epoch_end = internal::EpochEndFor(r.at_ns, epoch_ns);
    }
    ready.pop();
    NetContext* ctx = &ctxs[r.client];
    const uint64_t before = ctx->sim_ns;
    ctx->op_tag = OpTag(r.client, issued[r.client]);
    Status st = op(r.client, issued[r.client], ctx, &rngs[r.client]);
    report.ops++;
    if (!st.ok()) {
      report.errors++;
      if (st.IsBusy()) report.busy++;
    }
    report.latency.Record(ctx->sim_ns - before);
    if (ctrl != nullptr) ctrl->Observe(ctx->tenant, ctx->sim_ns - before, st);
    if (record) {
      report.trace.push_back(LoadReport::OpTrace{
          before, ctx->sim_ns, r.client, issued[r.client], st.code()});
    }
    if (opts.think_ns > 0) ctx->Charge(opts.think_ns);
    if (++issued[r.client] < opts.ops_per_client) {
      ready.push({ctx->sim_ns, r.client});
    }
  }
  if (ctrl != nullptr || member != nullptr) {
    if (ctrl != nullptr) ctrl->EndEpoch(epoch_end);
    if (member != nullptr) member->EndEpoch(epoch_end);
    report.epochs++;
  }

  report.per_client_sim_ns.reserve(opts.clients);
  for (const NetContext& c : ctxs) {
    report.per_client_sim_ns.push_back(c.sim_ns);
    if (c.sim_ns > report.makespan_ns) report.makespan_ns = c.sim_ns;
  }
  MergeParallel(&report.total, ctxs.data(), ctxs.size());
  return report;
}

LoadReport RunOpenLoop(const OpenLoopOptions& opts, const ClientOpFn& op) {
  if (opts.parallel.partitions > 0) return RunEpochOpenLoop(opts, op);

  LoadReport report;
  report.clients = opts.clients;
  if (opts.clients == 0 || opts.ops_per_client == 0 ||
      opts.ops_per_sec <= 0.0) {
    return report;
  }
  report.offered_ops_per_sec =
      opts.ops_per_sec * static_cast<double>(opts.clients);
  const double period_ns = 1e9 / opts.ops_per_sec;
  const bool record = opts.parallel.record_trace;

  // Workload streams derive exactly as in RunClosedLoop; arrival streams use
  // an independent salt so switching processes never perturbs the op draws.
  std::vector<NetContext> accs(opts.clients);  // per-client folded counters
  std::vector<Random> rngs;
  std::vector<Random> arrival_rngs;
  std::vector<uint64_t> issued(opts.clients, 0);
  rngs.reserve(opts.clients);
  arrival_rngs.reserve(opts.clients);
  for (uint64_t c = 0; c < opts.clients; c++) {
    rngs.emplace_back(ClientSeed(opts.seed, c));
    arrival_rngs.emplace_back(ClientSeed(opts.seed, c) ^ internal::kArrivalSalt);
  }

  std::priority_queue<Runnable, std::vector<Runnable>, std::greater<Runnable>>
      arrivals;
  for (uint64_t c = 0; c < opts.clients; c++) {
    arrivals.push(
        {internal::FirstArrivalNs(opts, period_ns, c, &arrival_rngs[c]), c});
  }

  // Mirror of the closed-loop controller hook (see RunClosedLoop): the first
  // epoch is the one holding the earliest arrival, exactly as the parallel
  // driver seeds its barrier schedule.
  SloController* const ctrl = opts.parallel.controller;
  MembershipService* const member = opts.parallel.membership;
  const uint64_t epoch_ns =
      opts.parallel.epoch_ns > 0 ? opts.parallel.epoch_ns : kDefaultEpochNs;
  uint64_t epoch_end =
      internal::EpochEndFor(arrivals.top().at_ns, epoch_ns);

  // Completion times of issued ops, for the in-flight (queue depth) gauge.
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<uint64_t>>
      completions;

  while (!arrivals.empty()) {
    const Runnable a = arrivals.top();
    if ((ctrl != nullptr || member != nullptr) && a.at_ns >= epoch_end) {
      if (ctrl != nullptr) ctrl->EndEpoch(epoch_end);
      if (member != nullptr) member->EndEpoch(epoch_end);
      report.epochs++;
      epoch_end = internal::EpochEndFor(a.at_ns, epoch_ns);
    }
    arrivals.pop();

    // Ops whose completion precedes this arrival have left the system.
    while (!completions.empty() && completions.top() <= a.at_ns) {
      completions.pop();
    }

    // The op runs on a context clocked at its arrival instant: arrivals do
    // not wait for each other client-side (that is the congestion model's
    // job server-side), so the stream keeps offering load while earlier
    // ops queue.
    NetContext ctx = accs[a.client].Fork();
    ctx.sim_ns = a.at_ns;
    ctx.op_tag = OpTag(a.client, issued[a.client]);
    Status st = op(a.client, issued[a.client], &ctx, &rngs[a.client]);
    report.ops++;
    if (!st.ok()) {
      report.errors++;
      if (st.IsBusy()) report.busy++;
    }
    report.latency.Record(ctx.sim_ns - a.at_ns);
    if (ctrl != nullptr) ctrl->Observe(ctx.tenant, ctx.sim_ns - a.at_ns, st);
    if (record) {
      report.trace.push_back(LoadReport::OpTrace{
          a.at_ns, ctx.sim_ns, a.client, issued[a.client], st.code()});
    }
    completions.push(ctx.sim_ns);

    const uint64_t depth = completions.size();  // includes the op itself
    report.queue_depth.Record(depth);
    if (depth > report.max_in_flight) report.max_in_flight = depth;

    JoinParallel(&accs[a.client], &ctx, 1);
    if (++issued[a.client] < opts.ops_per_client) {
      arrivals.push(
          {a.at_ns + internal::NextGapNs(opts, period_ns, &arrival_rngs[a.client]),
           a.client});
    }
  }
  if (ctrl != nullptr || member != nullptr) {
    if (ctrl != nullptr) ctrl->EndEpoch(epoch_end);
    if (member != nullptr) member->EndEpoch(epoch_end);
    report.epochs++;
  }

  report.per_client_sim_ns.reserve(opts.clients);
  for (const NetContext& c : accs) {
    report.per_client_sim_ns.push_back(c.sim_ns);
    if (c.sim_ns > report.makespan_ns) report.makespan_ns = c.sim_ns;
  }
  MergeParallel(&report.total, accs.data(), accs.size());
  return report;
}

std::string LoadReport::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "clients=%llu ops=%llu errors=%llu busy=%llu "
                "makespan_ms=%.3f tput_kops=%.1f offered_kops=%.1f "
                "p50_us=%.2f p99_us=%.2f queue_ms=%.3f max_inflight=%llu",
                static_cast<unsigned long long>(clients),
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(busy),
                static_cast<double>(makespan_ns) / 1e6,
                ThroughputOpsPerSec() / 1e3, offered_ops_per_sec / 1e3,
                latency.Percentile(50) / 1e3, latency.Percentile(99) / 1e3,
                static_cast<double>(total.queue_ns) / 1e6,
                static_cast<unsigned long long>(max_in_flight));
  return buf;
}

}  // namespace sim
}  // namespace disagg
