#ifndef DISAGG_SIM_PARALLEL_DRIVER_H_
#define DISAGG_SIM_PARALLEL_DRIVER_H_

#include "sim/load_driver.h"

namespace disagg {
namespace sim {

// The epoch-parallel engine behind RunClosedLoop/RunOpenLoop when
// `ParallelConfig::partitions > 0` (see DESIGN.md "Parallel simulation").
// Callers use the public entry points in load_driver.h, which dispatch
// here; these are exposed only so the dispatch is testable by name.

LoadReport RunEpochClosedLoop(const LoadOptions& opts, const ClientOpFn& op);
LoadReport RunEpochOpenLoop(const OpenLoopOptions& opts, const ClientOpFn& op);

}  // namespace sim
}  // namespace disagg

#endif  // DISAGG_SIM_PARALLEL_DRIVER_H_
