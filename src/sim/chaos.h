#ifndef DISAGG_SIM_CHAOS_H_
#define DISAGG_SIM_CHAOS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/row_engine.h"
#include "net/interceptors.h"

namespace disagg {
namespace sim {

/// One deterministic chaos schedule: fault probabilities, node-flap windows
/// and crash points, every field a pure function of a single uint64 seed.
/// Replaying the same seed against the same binary reproduces the identical
/// op trace bit for bit (`scripts/chaos_replay.sh <seed>`).
struct ChaosSchedule {
  uint64_t seed = 1;

  // Fed into FaultPolicy.
  double drop_prob = 0.0;
  double spike_prob = 0.0;
  uint64_t spike_ns = 10000;

  /// Workload length and the op indices at which the compute node crashes
  /// and runs its architecture-appropriate recovery.
  int num_ops = 160;
  std::vector<int> crash_points;  // strictly increasing, < num_ops

  /// Flap windows in fault-sequence space; the target node is chosen per
  /// engine from `ChaosAdapter::FlappableNodes()` (window i -> node i % K).
  struct FlapWindow {
    uint64_t from_seq = 0;
    uint64_t until_seq = 0;
  };
  std::vector<FlapWindow> flap_windows;

  int retry_attempts = 12;

  /// Op indices at which a shared-log engine suffers a log-node crash plus
  /// seal/reconfigure (and a rejoin reconfigure once the node revives) —
  /// two epoch bumps per point. Ignored by engines without a shared log,
  /// and drawn from a generator salted separately from every other field,
  /// so legacy schedules replay bit-identically.
  std::vector<int> log_reconfig_points;  // strictly increasing, < num_ops

  /// Optional overload layer, off by default (zero / disabled keeps every
  /// run bit-identical to the pre-overload harness). When `max_backlog_ns`
  /// is nonzero, the faulted workload phases run with per-node admission
  /// control enabled (`ResourceCapacity{overload_ns_per_op, 0,
  /// max_backlog_ns}`), so ops can fail fast with `Busy` on top of the
  /// fault schedule's drops and flaps. Oracle interludes (crash audits)
  /// always run with congestion disabled.
  uint64_t max_backlog_ns = 0;
  uint64_t overload_ns_per_op = 0;

  /// Read-path degrade ladder installed on RowEngine architectures during
  /// the faulted phases; oracle audits always read strictly. Degraded
  /// reads are exempted from the membership check (any older committed
  /// value may legitimately surface) but their per-op staleness must stay
  /// within the policy bound, which the runner asserts.
  DegradePolicy degrade;

  /// Installs a per-node circuit breaker between retry and fault
  /// injection, so sustained flap failures fast-fail instead of paying
  /// full drop penalties. Purely deterministic: state is a function of the
  /// op outcome stream.
  bool breaker = false;

  /// Derives every field from `seed` alone.
  static ChaosSchedule FromSeed(uint64_t seed);

  std::string Describe() const;
};

/// Model of what a correct engine may return per key. A commit that failed
/// AFTER its durability attempt is "uncertain": the WAL batch may or may not
/// have landed (and, because failed batches are re-buffered, may land on a
/// LATER successful flush), so the key is allowed to read as any of its
/// uncertain outcomes or the last certain one — but never anything else.
class KvModel {
 public:
  struct Entry {
    std::optional<std::string> committed;  // nullopt = definitely absent
    /// Uncertain outcomes, oldest first (durable log prefixes resolve them
    /// monotonically, so membership in the set is the sound check).
    std::vector<std::optional<std::string>> maybe;
    bool poisoned = false;  // possibly non-atomic outcome: key exempted
  };

  /// Definite committed state (setup writes, successful commits).
  void Commit(uint64_t key, std::optional<std::string> value);
  /// Commit whose durability is unknown (error after the flush attempt).
  void MaybeCommit(uint64_t key, std::optional<std::string> value);
  /// Exempts the key from checking (possibly non-atomic partial outcome).
  void Poison(uint64_t key);
  /// A later group-commit flush on the same WAL succeeded, which lands every
  /// re-buffered batch: all uncertain outcomes became durable.
  void PromoteAllUncertain();

  /// Validates one observed read (`st` is OK or NotFound). Returns "" if the
  /// observation is explainable, else a violation description.
  std::string CheckRead(uint64_t key, const Status& st,
                        const std::string& value) const;

  const std::map<uint64_t, Entry>& entries() const { return entries_; }
  bool AnyPoisoned() const;
  bool AnyUncertain() const;

 private:
  std::map<uint64_t, Entry> entries_;
};

/// Outcome of a multi-key transaction attempt as the workload driver saw it.
enum class TxnOutcome {
  kCommitted,       // definitely durable
  kAborted,         // definitely rolled back, no state change
  kMaybeCommitted,  // atomic, but durability unknown
  kBroken,          // rollback itself failed: outcome possibly non-atomic
};

/// Uniform chaos surface over one engine: a keyed KV op interface, the fault
/// domains the schedule may flap, and the architecture's crash+recovery
/// procedure. All eight engines (five RowEngine architectures, serverless,
/// multi-writer, FORD) sit behind this.
class ChaosAdapter {
 public:
  virtual ~ChaosAdapter() = default;

  virtual const char* name() const = 0;

  /// Single-key upsert. The adapter — not the caller — classifies the
  /// outcome, because only it knows whether a failure happened before or
  /// after the durability point (a pre-commit failure is cleanly rolled
  /// back; a commit-path failure may still land on a later flush). `status`
  /// receives the raw engine status for the trace.
  virtual TxnOutcome PutKv(NetContext* ctx, uint64_t key,
                           const std::string& value, Status* status) = 0;
  virtual Result<std::string> GetKv(NetContext* ctx, uint64_t key) = 0;

  /// Atomic two-account transfer (engines with multi-key transactions).
  /// Moves min(amount, balance(from)); fills new_* with the written rows.
  virtual bool SupportsTransfers() const { return false; }
  virtual TxnOutcome Transfer(NetContext* ctx, uint64_t from, uint64_t to,
                              uint64_t amount, std::string* new_from,
                              std::string* new_to) {
    (void)ctx, (void)from, (void)to, (void)amount, (void)new_from,
        (void)new_to;
    return TxnOutcome::kAborted;
  }

  /// Non-null for RowEngine-backed adapters (enables the TPC-C driver and
  /// the committed-replay checker).
  virtual RowEngine* row_engine() { return nullptr; }

  /// Nodes the schedule may flap without making the engine unavailable by
  /// design (e.g. up to two Aurora segment replicas). Empty = no flaps.
  virtual std::vector<NodeId> FlappableNodes() const { return {}; }

  /// Crash the compute tier and recover the way this architecture would.
  /// Called in oracle mode (no interceptors installed).
  virtual Status CrashAndRecover(NetContext* ctx) = 0;

  /// Post-commit audit hook; "" = fine. The Aurora adapter checks that the
  /// flushed LSN really is on a write quorum of replicas — the checker the
  /// DISAGG_CHAOS_MUTATION build must trip. Shared-log adapters check the
  /// same invariant against the log fleet (CountDurable >= write_quorum).
  virtual std::string AuditDurability() { return std::string(); }

  /// Non-null when the engine's WAL rides a shared-log fleet; enables the
  /// runner's log-node crash + seal/reconfigure interludes.
  virtual SharedLogService* shared_log() { return nullptr; }
};

/// Names accepted by MakeChaosAdapter: the RowEngine registry names plus
/// "serverless", "multiwriter", "ford".
const std::vector<std::string>& ChaosEngineNames();
std::unique_ptr<ChaosAdapter> MakeChaosAdapter(const std::string& name,
                                               Fabric* fabric);

/// One entry of the deterministic op trace.
struct OpRecord {
  int index = 0;
  char kind = '?';  // T transfer, P put, R read, N neworder, C crash,
                    // V shared-log view change, L lock acquire, U unlock,
                    // M membership event (a = event kind, b = lease epoch)
  uint64_t a = 0;   // primary key / account
  uint64_t b = 0;   // secondary account (transfers)
  uint8_t status = 0;
  uint64_t sim_ns = 0;  // cumulative workload sim time after the op
};

std::string TraceToString(const std::vector<OpRecord>& trace);

/// Everything a run produced. `violations` empty = the engine upheld every
/// invariant under this schedule.
struct ChaosReport {
  std::string engine;
  uint64_t seed = 0;
  std::vector<OpRecord> trace;
  std::vector<std::string> violations;
  std::vector<std::string> notes;

  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t maybe_commits = 0;
  uint64_t busy = 0;
  uint64_t read_errors = 0;  // faulted-mode reads that failed (allowed)
  uint64_t tpcc_errors = 0;
  uint64_t crashes = 0;
  uint64_t log_reconfigs = 0;  // shared-log view-change interludes taken
  uint64_t replay_checked_keys = 0;
  uint64_t commits_in_flap = 0;  // commits while >=1 flap window active

  // Interceptor counters at the end of the run.
  uint64_t drops = 0;
  uint64_t spikes = 0;
  uint64_t flap_rejections = 0;
  uint64_t fault_ops_seen = 0;
  uint64_t retries = 0;
  uint64_t gave_up = 0;
  uint64_t faults_injected = 0;  // workload ctx counter

  // Overload-layer counters (zero unless the schedule enables the layer).
  uint64_t degraded_reads = 0;      // workload reads served by the ladder
  uint64_t staleness_lsn = 0;       // summed LSN staleness of those reads
  uint64_t admission_rejects = 0;   // Busy fail-fasts from admission control
  uint64_t breaker_fast_fails = 0;  // ops short-circuited by open breakers

  std::string Summary() const;
};

/// Runs one engine under one schedule: seeded bank-transfer + YCSB-lite
/// (+ TPC-C-lite NewOrder on RowEngine architectures) with mid-run crash
/// points, invariant checks at every crash and a full audit (membership,
/// balance conservation, committed-replay-from-log) at the end.
ChaosReport RunEngineChaos(const std::string& engine, uint64_t seed);
ChaosReport RunEngineChaos(const std::string& engine,
                           const ChaosSchedule& schedule);

/// Index chaos: seeded op stream against a remote index under the same
/// fault schedule, checked against an exact in-memory model; the final
/// audit verifies the key set (including scan ghost checks for the B+tree).
/// `kind` is "race", "sherman", "lockcouple", "offload" (the Sherman
/// tree driven through the memory-node executor — every op one `exec.idx.*`
/// RPC — with executor crash+recovery interludes at the schedule's crash
/// points; the pool region survives, so the exact-model audit still binds)
/// or "offload-detector" (same schedule, but crash points only KILL the
/// executor: recovery is driven by a `MembershipService` watching the pool
/// node — heartbeat misses accrue suspicion, the lease is revoked, and the
/// orchestrator's repair hook revives the executor, all in virtual time.
/// Membership events land in the trace as 'M' records, so detector
/// decisions are part of the bit-identical replay contract).
ChaosReport RunIndexChaos(const std::string& kind, uint64_t seed);

/// Lock chaos: seeded multi-client contention against the memory-node
/// executor's WOUND_WAIT lock table under the schedule's fault layer, with
/// executor crashes mid-lock-handoff (`ScheduleCrashAfter`) at the crash
/// points. Checks liveness (no wedge: bounded scheduler steps without a
/// grant or release is a violation), wound observability (a wounded txn
/// gets Aborted, never a silent grant), and the recovery fence (after the
/// final release sweep a fresh txn can acquire every key and the executor
/// holds zero lock entries — dead clients' locks never outlive recovery).
/// The trace is a pure function of the seed, so replays are bit-identical.
ChaosReport RunLockChaos(uint64_t seed);

}  // namespace sim
}  // namespace disagg

#endif  // DISAGG_SIM_CHAOS_H_
