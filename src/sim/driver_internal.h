#ifndef DISAGG_SIM_DRIVER_INTERNAL_H_
#define DISAGG_SIM_DRIVER_INTERNAL_H_

#include <cmath>
#include <cstdint>

#include "common/random.h"
#include "sim/load_driver.h"

// Arithmetic shared verbatim by the serial (load_driver.cc) and
// epoch-parallel (parallel_driver.cc) drivers. Single-sourcing it is what
// makes "partitions == 1 reproduces the serial driver bit for bit" a
// property of the code rather than a hope: both drivers draw the same
// client seeds, the same arrival streams, and the same op tags.

namespace disagg {
namespace sim {
namespace internal {

/// Distinct, seed-derived per-client streams (golden-ratio spacing avoids
/// the correlated low bits of seed, seed+1, ...). The SAME derivation is
/// used by both loop shapes so a workload closure draws identically under
/// closed- and open-loop scheduling.
inline uint64_t ClientSeed(uint64_t seed, uint64_t client) {
  return seed + client * 0x9E3779B97F4A7C15ull;
}

/// Salt for the open-loop arrival streams, independent of the workload
/// streams so switching arrival processes never perturbs the op draws.
inline constexpr uint64_t kArrivalSalt = 0xA221BA15ED5EEDull;

/// The `NetContext::op_tag` for (client, op_index): a nonzero hash that is
/// a pure function of the logical op's identity, so tag-keyed fault
/// decisions are identical under any scheduling of the same workload.
inline uint64_t OpTag(uint64_t client, uint64_t op_index) {
  uint64_t mix = (client + 1) * 0x9E3779B97F4A7C15ull;
  mix ^= (op_index + 1) * 0xC2B2AE3D27D4EB4Full;
  mix ^= mix >> 29;
  return mix | 1;  // 0 means "untagged"
}

/// Heap entry: the client's virtual clock, with the client id as a
/// deterministic tie-break (lower id goes first at equal times).
struct Runnable {
  uint64_t at_ns;
  uint64_t client;
  bool operator>(const Runnable& o) const {
    return at_ns != o.at_ns ? at_ns > o.at_ns : client > o.client;
  }
};

/// Inter-arrival gap for one open-loop stream (`period_ns` = 1e9 / rate).
inline uint64_t NextGapNs(const OpenLoopOptions& opts, double period_ns,
                          Random* arrival_rng) {
  if (opts.process == ArrivalProcess::kDeterministic) {
    return static_cast<uint64_t>(period_ns);
  }
  // Exponential inter-arrival. NextDouble() is in [0, 1), so the argument
  // of log is in (0, 1] and the gap is finite.
  const double u = arrival_rng->NextDouble();
  return static_cast<uint64_t>(-std::log(1.0 - u) * period_ns);
}

/// Epoch end for the epoch containing `at_ns` (epochs are half-open
/// [k*epoch_ns, (k+1)*epoch_ns) windows of virtual time). Shared by the
/// parallel driver's barrier schedule and the serial drivers' SLO-controller
/// epoch hook, so both fire `EndEpoch` at identical instants.
inline uint64_t EpochEndFor(uint64_t at_ns, uint64_t epoch_ns) {
  return (at_ns / epoch_ns + 1) * epoch_ns;
}

/// First arrival of client `c`'s open-loop stream.
inline uint64_t FirstArrivalNs(const OpenLoopOptions& opts, double period_ns,
                               uint64_t c, Random* arrival_rng) {
  if (opts.process == ArrivalProcess::kDeterministic) {
    // Phase-stagger the streams across one period so N deterministic
    // clients offer a smooth aggregate rate instead of N-bursts.
    return static_cast<uint64_t>(period_ns * static_cast<double>(c) /
                                 static_cast<double>(opts.clients));
  }
  return NextGapNs(opts, period_ns, arrival_rng);
}

}  // namespace internal
}  // namespace sim
}  // namespace disagg

#endif  // DISAGG_SIM_DRIVER_INTERNAL_H_
