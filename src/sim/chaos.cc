#include "sim/chaos.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "core/multi_writer.h"
#include "log/shared_log.h"
#include "core/serverless_db.h"
#include "memnode/executor.h"
#include "memnode/memory_node.h"
#include "net/membership.h"
#include "pm/ford_txn.h"
#include "pm/pm_node.h"
#include "rindex/race_hash.h"
#include "rindex/remote_btree.h"
#include "sim/engine_registry.h"
#include "txn/recovery.h"
#include "workload/tpcc_lite.h"
#include "workload/ycsb.h"

namespace disagg {
namespace sim {

namespace {

// Workload key layout. Bank and YCSB keys stay far below TPC-C's tagged
// key space (table tag in the top byte), so the checkers never collide
// with TPC-C rows.
constexpr uint64_t kBankBase = 1000;
constexpr int kBankAccounts = 8;
constexpr uint64_t kBankInitial = 100000;
constexpr uint64_t kYcsbBase = 2000;
constexpr uint64_t kYcsbSpace = 24;

// Fixed-width rows: updates never relocate slots, so the row index stays
// valid across ARIES-replayed restarts even for uncertain transactions.
std::string FormatBalance(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIu64, v);
  return std::string(buf);
}

uint64_t ParseBalance(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::string FixedValue(uint64_t key, int op) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "y%06" PRIu64 "-%08d", key % 1000000, op);
  std::string v(buf);
  v.resize(24, 'x');
  return v;
}

}  // namespace

// ------------------------------------------------------------ ChaosSchedule

ChaosSchedule ChaosSchedule::FromSeed(uint64_t seed) {
  // Every parameter is drawn from a generator keyed only by the seed, so
  // the whole schedule is a pure function of it.
  Random rng(seed ^ 0xC8A05C8A05ull);
  ChaosSchedule s;
  s.seed = seed;
  s.drop_prob = 0.05 + 0.15 * rng.NextDouble();
  s.spike_prob = 0.02 + 0.08 * rng.NextDouble();
  s.spike_ns = 5000 + rng.Uniform(20000);
  s.num_ops = 120 + static_cast<int>(rng.Uniform(121));
  const int crashes = 1 + static_cast<int>(rng.Uniform(2));
  for (int c = 0; c < crashes; c++) {
    const int lo = s.num_ops / 3;
    int point = lo + static_cast<int>(rng.Uniform(s.num_ops - lo));
    s.crash_points.push_back(point);
  }
  std::sort(s.crash_points.begin(), s.crash_points.end());
  s.crash_points.erase(
      std::unique(s.crash_points.begin(), s.crash_points.end()),
      s.crash_points.end());
  const int flaps = static_cast<int>(rng.Uniform(3));  // 0..2 windows
  for (int f = 0; f < flaps; f++) {
    FlapWindow w;
    w.from_seq = 500 + rng.Uniform(6000);
    w.until_seq = w.from_seq + 800 + rng.Uniform(3000);
    s.flap_windows.push_back(w);
  }
  // Shared-log view changes ride their own salted generator: adding them
  // must not perturb any draw above, so every pre-existing schedule (and
  // its pinned trace) replays bit-identically.
  Random slog_rng(seed ^ 0x510C0F16ull);
  const int reconfigs = 1 + static_cast<int>(slog_rng.Uniform(2));
  for (int r = 0; r < reconfigs; r++) {
    const int lo = s.num_ops / 4;
    const int point = lo + static_cast<int>(slog_rng.Uniform(s.num_ops - lo));
    s.log_reconfig_points.push_back(point);
  }
  std::sort(s.log_reconfig_points.begin(), s.log_reconfig_points.end());
  s.log_reconfig_points.erase(
      std::unique(s.log_reconfig_points.begin(), s.log_reconfig_points.end()),
      s.log_reconfig_points.end());
  return s;
}

std::string ChaosSchedule::Describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "seed=%" PRIu64 " drop=%.4f spike=%.4f/%" PRIu64
                "ns ops=%d crashes=%zu flaps=%zu retry=%d",
                seed, drop_prob, spike_prob, spike_ns, num_ops,
                crash_points.size(), flap_windows.size(), retry_attempts);
  std::string out(buf);
  for (const FlapWindow& w : flap_windows) {
    out += " [" + std::to_string(w.from_seq) + "," +
           std::to_string(w.until_seq) + ")";
  }
  if (max_backlog_ns != 0) {
    out += " backlog=" + std::to_string(max_backlog_ns) + "ns/op=" +
           std::to_string(overload_ns_per_op);
  }
  if (degrade.enabled) {
    out += " degrade<=" + std::to_string(degrade.max_staleness_lsn);
  }
  if (breaker) out += " breaker";
  if (!log_reconfig_points.empty()) {
    out += " slog_reconfigs=" + std::to_string(log_reconfig_points.size());
  }
  return out;
}

// ----------------------------------------------------------------- KvModel

void KvModel::Commit(uint64_t key, std::optional<std::string> value) {
  Entry& e = entries_[key];
  e.committed = std::move(value);
  e.maybe.clear();
}

void KvModel::MaybeCommit(uint64_t key, std::optional<std::string> value) {
  entries_[key].maybe.push_back(std::move(value));
}

void KvModel::Poison(uint64_t key) { entries_[key].poisoned = true; }

void KvModel::PromoteAllUncertain() {
  for (auto& [key, e] : entries_) {
    if (e.maybe.empty()) continue;
    e.committed = e.maybe.back();
    e.maybe.clear();
  }
}

std::string KvModel::CheckRead(uint64_t key, const Status& st,
                               const std::string& value) const {
  std::optional<std::string> obs;
  if (st.ok()) {
    obs = value;
  } else if (!st.IsNotFound()) {
    return "key " + std::to_string(key) +
           ": unexpected read status " + st.ToString();
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (!obs) return "";
    return "untracked key " + std::to_string(key) + " returned \"" + *obs +
           "\"";
  }
  const Entry& e = it->second;
  if (e.poisoned) return "";
  if (obs == e.committed) return "";
  for (const auto& m : e.maybe) {
    if (obs == m) return "";
  }
  return "key " + std::to_string(key) + " read " +
         (obs ? "\"" + *obs + "\"" : std::string("<absent>")) +
         " which is neither the committed value nor any uncertain outcome";
}

bool KvModel::AnyPoisoned() const {
  for (const auto& [key, e] : entries_) {
    if (e.poisoned) return true;
  }
  return false;
}

bool KvModel::AnyUncertain() const {
  for (const auto& [key, e] : entries_) {
    if (!e.maybe.empty()) return true;
  }
  return false;
}

// ---------------------------------------------------------------- Adapters

namespace {

/// Status-code classification for engines whose Put is a single opaque
/// call: contention/validation codes mean nothing changed; anything else
/// may have left durable state behind partway through.
TxnOutcome ClassifyPut(const Status& st) {
  if (st.ok()) return TxnOutcome::kCommitted;
  if (st.IsBusy() || st.IsNotFound() || st.IsInvalidArgument() ||
      st.IsAborted()) {
    return TxnOutcome::kAborted;
  }
  return TxnOutcome::kMaybeCommitted;
}

/// The five RowEngine architectures behind the chaos surface. Crash policy:
/// once any transaction's durability became uncertain, every later crash
/// recovers by full ARIES replay of the durable log tier (a consistent log
/// prefix); until then the architecture's cheap restart path is used.
class RowEngineChaosAdapter : public ChaosAdapter {
 public:
  RowEngineChaosAdapter(std::string name, Fabric* fabric)
      : name_(std::move(name)),
        base_(StripSlogSuffix(name_)),
        engine_(MakeRowEngine(name_, fabric)) {
    DISAGG_CHECK(engine_ != nullptr);
  }

  const char* name() const override { return name_.c_str(); }
  RowEngine* row_engine() override { return engine_.get(); }
  bool SupportsTransfers() const override { return true; }

  TxnOutcome PutKv(NetContext* ctx, uint64_t key, const std::string& value,
                   Status* status) override {
    const TxnId txn = engine_->Begin();
    Status st = engine_->Lookup(key).ok()
                    ? engine_->Update(ctx, txn, key, value)
                    : engine_->Insert(ctx, txn, key, value);
    if (!st.ok()) {
      *status = st;  // failed before the durability point
      return engine_->Abort(ctx, txn).ok() ? TxnOutcome::kAborted
                                           : TxnOutcome::kBroken;
    }
    *status = engine_->Commit(ctx, txn);
    if (status->ok()) return TxnOutcome::kCommitted;
    sticky_uncertain_ = true;  // the WAL batch may land on a later flush
    return TxnOutcome::kMaybeCommitted;
  }

  Result<std::string> GetKv(NetContext* ctx, uint64_t key) override {
    return engine_->GetRow(ctx, key);
  }

  TxnOutcome Transfer(NetContext* ctx, uint64_t from, uint64_t to,
                      uint64_t amount, std::string* new_from,
                      std::string* new_to) override {
    const TxnId txn = engine_->Begin();
    auto a = engine_->Read(ctx, txn, from);
    auto b = a.ok() ? engine_->Read(ctx, txn, to) : a;
    if (!a.ok() || !b.ok()) {
      return engine_->Abort(ctx, txn).ok() ? TxnOutcome::kAborted
                                           : TxnOutcome::kBroken;
    }
    const uint64_t va = ParseBalance(*a);
    const uint64_t vb = ParseBalance(*b);
    const uint64_t x = std::min(amount, va);
    *new_from = FormatBalance(va - x);
    *new_to = FormatBalance(vb + x);
    Status st = engine_->Update(ctx, txn, from, *new_from);
    if (st.ok()) st = engine_->Update(ctx, txn, to, *new_to);
    if (!st.ok()) {
      return engine_->Abort(ctx, txn).ok() ? TxnOutcome::kAborted
                                           : TxnOutcome::kBroken;
    }
    st = engine_->Commit(ctx, txn);
    if (st.ok()) return TxnOutcome::kCommitted;
    sticky_uncertain_ = true;
    return TxnOutcome::kMaybeCommitted;
  }

  std::vector<NodeId> FlappableNodes() const override {
    if (engine_->shared_log() != nullptr) {
      // One shared-log backup (for tag 1 under the initial 3-member view
      // the primary is node 1, the backups nodes 2 and 0): write quorum 2
      // of 3 must ride through it flapping.
      return {engine_->shared_log()->log_node(2)};
    }
    if (base_ == "aurora") {
      auto* db = static_cast<AuroraDb*>(engine_.get());
      // Two replicas: quorum writes (W=4 of V=6) must ride through both
      // flapping at once. Chosen from the middle of the replica set so the
      // mutation build's weakened quorum is left with exactly W-1 copies.
      return {db->segment()->replica(3).node,
              db->segment()->replica(4).node};
    }
    if (base_ == "polar") {
      auto* db = static_cast<PolarDb*>(engine_.get());
      return {db->polarfs()->replica_node(1)};  // one raft follower
    }
    if (base_ == "socrates") {
      auto* db = static_cast<SocratesDb*>(engine_.get());
      if (db->page_server_count() > 1) return {db->page_server_node(1)};
      return {};
    }
    if (base_ == "taurus") {
      auto* db = static_cast<TaurusDb*>(engine_.get());
      if (db->page_store_count() > 1) return {db->page_store_node(1)};
      return {};
    }
    return {};
  }

  Status CrashAndRecover(NetContext* ctx) override {
    if (base_ == "monolithic" || sticky_uncertain_) {
      // No remote page tier to trust (monolithic never checkpointed) or the
      // page tiers may hold a torn cut: rebuild via ARIES from the log.
      return engine_->CrashAndRecover(ctx);
    }
    if (base_ == "socrates") {
      // Recovery = apply the XLOG tail to the page servers, then restart
      // the stateless compute (Socrates' actual procedure).
      auto* db = static_cast<SocratesDb*>(engine_.get());
      DISAGG_RETURN_NOT_OK(db->PropagateLogs(ctx));
      db->DropBuffer();
      return Status::OK();
    }
    engine_->DropBuffer();
    return Status::OK();
  }

  std::string AuditDurability() override {
    const Lsn flushed = engine_->wal()->flushed_lsn();
    if (flushed == kInvalidLsn) return std::string();
    if (SharedLogService* slog = engine_->shared_log()) {
      // Same invariant as the Aurora segment audit, against the log fleet:
      // the flushed prefix must sit on a write quorum of live log nodes —
      // across flaps, node kills and view changes.
      auto* sink = static_cast<SharedLogBackend*>(engine_->sink());
      const int copies =
          static_cast<int>(slog->CountDurable(sink->tag(), flushed));
      if (copies < slog->config().write_quorum) {
        return "durability audit: flushed lsn " + std::to_string(flushed) +
               " is on only " + std::to_string(copies) +
               " log nodes (< write quorum " +
               std::to_string(slog->config().write_quorum) + ")";
      }
      return std::string();
    }
    if (base_ != "aurora") return std::string();
    auto* db = static_cast<AuroraDb*>(engine_.get());
    const int copies = db->segment()->CountDurable(flushed);
    if (copies < db->segment()->config().write_quorum) {
      return "durability audit: flushed lsn " + std::to_string(flushed) +
             " is on only " + std::to_string(copies) +
             " replicas (< write quorum " +
             std::to_string(db->segment()->config().write_quorum) + ")";
    }
    return std::string();
  }

  SharedLogService* shared_log() override { return engine_->shared_log(); }

 private:
  // "aurora+slog+offload" -> "aurora": crash and flap procedures key off
  // the base architecture, whatever seam stack the registry layered on top.
  static std::string StripSlogSuffix(const std::string& name) {
    std::string base = name;
    for (bool stripped = true; stripped;) {
      stripped = false;
      for (const char* suffix : {"+offload", "+slog"}) {
        const std::string s(suffix);
        if (base.size() > s.size() &&
            base.compare(base.size() - s.size(), s.size(), s) == 0) {
          base.resize(base.size() - s.size());
          stripped = true;
        }
      }
    }
    return base;
  }

  std::string name_;
  std::string base_;  // architecture name with any "+slog" suffix removed
  std::unique_ptr<RowEngine> engine_;
  bool sticky_uncertain_ = false;
};

/// PolarDB Serverless: the shared remote buffer pool survives compute
/// crashes by construction, so recovery is just re-attaching a compute.
class ServerlessChaosAdapter : public ChaosAdapter {
 public:
  explicit ServerlessChaosAdapter(Fabric* fabric) : db_(fabric, 256) {
    compute_ = db_.AttachCompute(8, /*writer=*/true);
  }

  const char* name() const override { return "serverless"; }

  TxnOutcome PutKv(NetContext* ctx, uint64_t key, const std::string& value,
                   Status* status) override {
    // The put is log-append then page write then index update; any failure
    // after the append may leave durable state behind.
    *status = compute_->Put(ctx, key, value);
    return ClassifyPut(*status);
  }
  Result<std::string> GetKv(NetContext* ctx, uint64_t key) override {
    return compute_->Get(ctx, key);
  }

  Status CrashAndRecover(NetContext* ctx) override {
    compute_ = db_.AttachCompute(8, /*writer=*/true);
    // The dead primary may have held page seqlocks in the shared pool.
    return compute_->FencePoolWriters(ctx);
  }

 private:
  ServerlessDb db_;
  std::unique_ptr<ServerlessDb::Compute> compute_;
};

/// Multi-writer engine: global remote lock table + shared pool. A crashed
/// writer is replaced by attaching a fresh one.
class MultiWriterChaosAdapter : public ChaosAdapter {
 public:
  explicit MultiWriterChaosAdapter(Fabric* fabric) : db_(fabric, 256) {
    writer_ = db_.AttachWriter(8);
  }

  const char* name() const override { return "multiwriter"; }

  TxnOutcome PutKv(NetContext* ctx, uint64_t key, const std::string& value,
                   Status* status) override {
    *status = writer_->Put(ctx, key, value);
    return ClassifyPut(*status);
  }
  Result<std::string> GetKv(NetContext* ctx, uint64_t key) override {
    return writer_->Get(ctx, key);
  }

  Status CrashAndRecover(NetContext* ctx) override {
    const uint64_t dead = writer_->writer_id();
    writer_ = db_.AttachWriter(8);
    // Release the dead writer's row locks and page seqlocks.
    DISAGG_RETURN_NOT_OK(db_.FenceWriter(ctx, dead));
    return writer_->FencePoolWriters(ctx);
  }

 private:
  MultiWriterDb db_;
  std::unique_ptr<MultiWriterDb::Writer> writer_;
};

/// FORD one-sided OCC transactions on persistent memory. Records are fixed
/// slots, so workload keys map onto record ids and values pad to the fixed
/// record width.
class FordChaosAdapter : public ChaosAdapter {
 public:
  static constexpr size_t kRecordsPerNode = 64;

  explicit FordChaosAdapter(Fabric* fabric) {
    pm_.push_back(std::make_unique<PmNode>(fabric, "chaos-pm0", 1 << 20));
    pm_.push_back(std::make_unique<PmNode>(fabric, "chaos-pm1", 1 << 20));
    std::vector<PmNode*> raw;
    for (auto& p : pm_) raw.push_back(p.get());
    mgr_ = std::make_unique<FordTxnManager>(fabric, raw, kRecordsPerNode);
  }

  const char* name() const override { return "ford"; }
  bool SupportsTransfers() const override { return true; }

  TxnOutcome PutKv(NetContext* ctx, uint64_t key, const std::string& value,
                   Status* status) override {
    auto txn = mgr_->Begin(ctx);
    Status st = txn.Write(Rid(key), Pad(value));
    if (!st.ok()) {
      *status = st;
      txn.Abort();
      return TxnOutcome::kAborted;  // local write set only, nothing remote
    }
    *status = txn.Commit();
    if (status->ok()) return TxnOutcome::kCommitted;
    if (status->IsAborted()) return TxnOutcome::kAborted;  // clean OCC abort
    return TxnOutcome::kMaybeCommitted;  // single record: atomic either way
  }

  Result<std::string> GetKv(NetContext* ctx, uint64_t key) override {
    DISAGG_ASSIGN_OR_RETURN(std::string v,
                            mgr_->ReadCommitted(ctx, Rid(key)));
    return Strip(v);
  }

  TxnOutcome Transfer(NetContext* ctx, uint64_t from, uint64_t to,
                      uint64_t amount, std::string* new_from,
                      std::string* new_to) override {
    auto txn = mgr_->Begin(ctx);
    auto a = txn.Read(Rid(from));
    auto b = a.ok() ? txn.Read(Rid(to)) : a;
    if (!a.ok() || !b.ok()) {
      txn.Abort();
      return TxnOutcome::kAborted;
    }
    const uint64_t va = ParseBalance(Strip(*a));
    const uint64_t vb = ParseBalance(Strip(*b));
    const uint64_t x = std::min(amount, va);
    *new_from = FormatBalance(va - x);
    *new_to = FormatBalance(vb + x);
    if (!txn.Write(Rid(from), Pad(*new_from)).ok() ||
        !txn.Write(Rid(to), Pad(*new_to)).ok()) {
      txn.Abort();
      return TxnOutcome::kAborted;
    }
    Status st = txn.Commit();
    if (st.ok()) return TxnOutcome::kCommitted;
    if (st.IsAborted()) return TxnOutcome::kAborted;  // clean OCC abort
    // The write phase is not atomic under infrastructure failure; the
    // runner exempts both accounts rather than guess.
    return TxnOutcome::kBroken;
  }

  Status CrashAndRecover(NetContext* ctx) override {
    (void)ctx;  // compute is stateless; PM state is the durable state
    return Status::OK();
  }

 private:
  static uint64_t Rid(uint64_t key) {
    return key >= kYcsbBase ? 16 + (key - kYcsbBase) : key - kBankBase;
  }
  static std::string Pad(const std::string& v) {
    std::string p = v;
    p.resize(FordTxnManager::kValueBytes, '\0');
    return p;
  }
  static std::string Strip(std::string v) {
    while (!v.empty() && v.back() == '\0') v.pop_back();
    return v;
  }

  std::vector<std::unique_ptr<PmNode>> pm_;
  std::unique_ptr<FordTxnManager> mgr_;
};

}  // namespace

const std::vector<std::string>& ChaosEngineNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names = RowEngineNames();
    for (const std::string& slog : SharedLogRowEngineNames()) {
      names.push_back(slog);
    }
    names.push_back("serverless");
    names.push_back("multiwriter");
    names.push_back("ford");
    return names;
  }();
  return kNames;
}

std::unique_ptr<ChaosAdapter> MakeChaosAdapter(const std::string& name,
                                               Fabric* fabric) {
  if (name == "serverless") {
    return std::make_unique<ServerlessChaosAdapter>(fabric);
  }
  if (name == "multiwriter") {
    return std::make_unique<MultiWriterChaosAdapter>(fabric);
  }
  if (name == "ford") return std::make_unique<FordChaosAdapter>(fabric);
  if (MakeRowEngine(name, fabric) == nullptr) return nullptr;
  return std::make_unique<RowEngineChaosAdapter>(name, fabric);
}

// ------------------------------------------------------------------ Traces

std::string TraceToString(const std::vector<OpRecord>& trace) {
  std::string out;
  char buf[128];
  for (const OpRecord& r : trace) {
    std::snprintf(buf, sizeof(buf),
                  "%d %c a=%" PRIu64 " b=%" PRIu64 " st=%u ns=%" PRIu64 "\n",
                  r.index, r.kind, r.a, r.b, r.status, r.sim_ns);
    out += buf;
  }
  return out;
}

std::string ChaosReport::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "chaos[%s seed=%" PRIu64
      "]: commits=%" PRIu64 " aborts=%" PRIu64 " maybe=%" PRIu64
      " busy=%" PRIu64 " read_errs=%" PRIu64 " tpcc_errs=%" PRIu64
      " crashes=%" PRIu64 " replay_keys=%" PRIu64 " drops=%" PRIu64
      " spikes=%" PRIu64 " flap_rej=%" PRIu64 " retries=%" PRIu64
      " gave_up=%" PRIu64 " violations=%zu"
      " (replay: scripts/chaos_replay.sh %" PRIu64 ")",
      engine.c_str(), seed, commits, aborts, maybe_commits, busy,
      read_errors, tpcc_errors, crashes, replay_checked_keys, drops, spikes,
      flap_rejections, retries, gave_up, violations.size(), seed);
  std::string out(buf);
  if (log_reconfigs != 0) {
    out += " slog_reconfigs=" + std::to_string(log_reconfigs);
  }
  if (degraded_reads != 0 || admission_rejects != 0 ||
      breaker_fast_fails != 0) {
    std::snprintf(buf, sizeof(buf),
                  " degraded=%" PRIu64 " staleness=%" PRIu64
                  " adm_rej=%" PRIu64 " fast_fail=%" PRIu64,
                  degraded_reads, staleness_lsn, admission_rejects,
                  breaker_fast_fails);
    out += buf;
  }
  for (const std::string& v : violations) out += "\n  VIOLATION: " + v;
  for (const std::string& n : notes) out += "\n  note: " + n;
  return out;
}

// ------------------------------------------------------------------ Runner

namespace {

class ChaosRunner {
 public:
  ChaosRunner(std::string engine, ChaosSchedule schedule)
      : schedule_(std::move(schedule)),
        wl_rng_(schedule_.seed * 0x9E3779B97F4A7C15ull + 0xC0FFEE),
        ycsb_(kYcsbSpace, YcsbMix(), /*zipf_theta=*/0.8,
              schedule_.seed ^ 0x5ca1ab1e) {
    report_.engine = std::move(engine);
    report_.seed = schedule_.seed;
  }

  ChaosReport Run() {
    adapter_ = MakeChaosAdapter(report_.engine, &fabric_);
    if (adapter_ == nullptr) {
      report_.violations.push_back("unknown engine " + report_.engine);
      return report_;
    }
    Setup();
    if (!report_.violations.empty()) return report_;
    BuildInterceptors();
    EnterFaultedMode();

    size_t next_crash = 0;
    size_t next_reconfig = 0;
    for (int i = 0; i < schedule_.num_ops; i++) {
      if (next_crash < schedule_.crash_points.size() &&
          i == schedule_.crash_points[next_crash]) {
        next_crash++;
        CrashAndAudit(i, /*final_audit=*/false);
      }
      if (adapter_->shared_log() != nullptr &&
          next_reconfig < schedule_.log_reconfig_points.size() &&
          i == schedule_.log_reconfig_points[next_reconfig]) {
        next_reconfig++;
        LogViewChange(i);
      }
      RunOneOp(i);
    }
    CrashAndAudit(schedule_.num_ops, /*final_audit=*/true);
    FillCounters();
    return report_;
  }

 private:
  static YcsbGenerator::Mix YcsbMix() { return {0.45, 0.45, 0.10}; }

  bool IsRow() { return adapter_->row_engine() != nullptr; }

  // Ford's fixed record slots can't grow a key space; give it an
  // insert-free mix instead (the generator is constructed identically so
  // insert ops simply re-roll as updates of the drawn key).
  bool InsertsAllowed() { return report_.engine != "ford"; }

  void Setup() {
    NetContext ctx;
    for (int a = 0; a < kBankAccounts; a++) {
      const uint64_t key = kBankBase + a;
      Status st;
      if (adapter_->PutKv(&ctx, key, FormatBalance(kBankInitial), &st) !=
          TxnOutcome::kCommitted) {
        report_.violations.push_back("setup failed: " + st.ToString());
        return;
      }
      model_.Commit(key, FormatBalance(kBankInitial));
    }
    for (uint64_t k = 0; k < kYcsbSpace; k++) {
      const uint64_t key = kYcsbBase + k;
      const std::string v = FixedValue(key, -1);
      Status st;
      if (adapter_->PutKv(&ctx, key, v, &st) != TxnOutcome::kCommitted) {
        report_.violations.push_back("setup failed: " + st.ToString());
        return;
      }
      model_.Commit(key, v);
    }
    if (IsRow()) {
      TpccLite::Config cfg;
      cfg.warehouses = 1;
      cfg.districts_per_warehouse = 2;
      cfg.customers_per_district = 10;
      cfg.items = 40;
      cfg.lines_per_order = 3;
      cfg.seed = schedule_.seed ^ 0x7bcc;
      tpcc_ = std::make_unique<TpccLite>(adapter_->row_engine(), cfg);
      Status st = tpcc_->Load(&ctx);
      if (!st.ok()) {
        report_.violations.push_back("tpcc load failed: " + st.ToString());
      }
    }
  }

  void BuildInterceptors() {
    RetryPolicy rp;
    rp.max_attempts = schedule_.retry_attempts;
    if (schedule_.max_backlog_ns != 0) {
      // Admission control is on: a rejected op must back off long enough
      // for the backlog to drain below the bound, or every retry re-reads
      // the same "queue full" answer. The defaults (1 us exponential) are
      // tuned for lock contention, not for queues that drain at tens of
      // microseconds per op.
      rp.max_admission_attempts = 4;
      rp.initial_backoff_ns = 16'000;
    }
    retry_ = std::make_shared<RetryInterceptor>(rp);

    FaultPolicy fp;
    fp.seed = schedule_.seed;
    fp.drop_prob = schedule_.drop_prob;
    fp.spike_prob = schedule_.spike_prob;
    fp.spike_ns = schedule_.spike_ns;
    const std::vector<NodeId> flappable = adapter_->FlappableNodes();
    if (!flappable.empty()) {
      for (size_t i = 0; i < schedule_.flap_windows.size(); i++) {
        const ChaosSchedule::FlapWindow& w = schedule_.flap_windows[i];
        fp.flaps.push_back(
            {flappable[i % flappable.size()], w.from_seq, w.until_seq});
      }
    }
    fault_ = std::make_shared<FaultInterceptor>(fp);
    if (schedule_.breaker) {
      breaker_ = std::make_shared<CircuitBreakerInterceptor>(BreakerPolicy{});
    }
  }

  void InstallInterceptors() {
    // Retry first = outermost, so retries wrap the breaker's fast-fails
    // and the injected faults; the breaker sits between them so it
    // observes the post-fault outcome stream. The SAME interceptor objects
    // are reinstalled after every oracle interlude: the fault sequence
    // counter (and breaker state) keeps running, which keeps the whole run
    // a pure function of the seed.
    fabric_.AddInterceptor(retry_);
    if (breaker_ != nullptr) fabric_.AddInterceptor(breaker_);
    fabric_.AddInterceptor(fault_);
  }

  /// Workload mode: interceptors plus the schedule's optional overload
  /// layer (admission control + engine degrade ladder).
  void EnterFaultedMode() {
    InstallInterceptors();
    if (schedule_.max_backlog_ns != 0) {
      CongestionConfig cc;
      cc.default_node = {schedule_.overload_ns_per_op, 0,
                         schedule_.max_backlog_ns};
      fabric_.EnableCongestion(cc);
    }
    if (schedule_.degrade.enabled && adapter_->row_engine() != nullptr) {
      adapter_->row_engine()->set_degrade_policy(schedule_.degrade);
    }
  }

  /// Oracle mode: a bare fabric — no interceptors, no admission control,
  /// strict reads only — so audits observe the engine's true state.
  void EnterOracleMode() {
    fabric_.ClearInterceptors();
    fabric_.DisableCongestion();
    if (adapter_->row_engine() != nullptr) {
      adapter_->row_engine()->set_degrade_policy({});
    }
  }

  bool InFlapWindow(uint64_t seq) const {
    for (const auto& f : fault_->policy().flaps) {
      if (seq >= f.from_seq && seq < f.until_seq) return true;
    }
    return false;
  }

  void OnDefiniteCommit() {
    report_.commits++;
    // Group commit flushes the whole WAL buffer, including batches
    // re-buffered by earlier failed flushes: every uncertain outcome on
    // this engine's WAL is durable now.
    if (IsRow()) model_.PromoteAllUncertain();
    if (InFlapWindow(fault_->ops_seen())) report_.commits_in_flap++;
    const std::string audit = adapter_->AuditDurability();
    if (!audit.empty()) report_.violations.push_back(audit);
  }

  void Record(int index, char kind, uint64_t a, uint64_t b, uint8_t status) {
    report_.trace.push_back({index, kind, a, b, status, ctx_.sim_ns});
  }

  void RunOneOp(int i) {
    const double dice = wl_rng_.NextDouble();
    if (adapter_->SupportsTransfers() && dice < 0.30) {
      const uint64_t from = kBankBase + wl_rng_.Uniform(kBankAccounts);
      uint64_t to = kBankBase + wl_rng_.Uniform(kBankAccounts);
      if (to == from) to = kBankBase + (to - kBankBase + 1) % kBankAccounts;
      const uint64_t amount = 1 + wl_rng_.Uniform(400);
      std::string nf, nt;
      const TxnOutcome out =
          adapter_->Transfer(&ctx_, from, to, amount, &nf, &nt);
      switch (out) {
        case TxnOutcome::kCommitted:
          OnDefiniteCommit();
          model_.Commit(from, nf);
          model_.Commit(to, nt);
          break;
        case TxnOutcome::kAborted:
          report_.aborts++;
          break;
        case TxnOutcome::kMaybeCommitted:
          report_.maybe_commits++;
          model_.MaybeCommit(from, nf);
          model_.MaybeCommit(to, nt);
          break;
        case TxnOutcome::kBroken:
          model_.Poison(from);
          model_.Poison(to);
          report_.notes.push_back("non-atomic transfer outcome at op " +
                                  std::to_string(i));
          break;
      }
      Record(i, 'T', from, to, static_cast<uint8_t>(out));
      return;
    }
    if (tpcc_ != nullptr && dice >= 0.90) {
      auto r = tpcc_->NewOrder(&ctx_);
      if (r.ok() && *r) {
        OnDefiniteCommit();
      } else if (r.ok()) {
        report_.aborts++;
      } else {
        report_.tpcc_errors++;
      }
      Record(i, 'N', 0, 0,
             r.ok() ? (*r ? 0 : 1)
                    : static_cast<uint8_t>(r.status().code()));
      return;
    }
    YcsbGenerator::Op op = ycsb_.Next();
    if (op.type == YcsbGenerator::OpType::kInsert && !InsertsAllowed()) {
      op.type = YcsbGenerator::OpType::kUpdate;
      op.key = op.key % kYcsbSpace;
    }
    if (op.type == YcsbGenerator::OpType::kRead) {
      // A quarter of the reads audit a bank account instead.
      const uint64_t key = wl_rng_.Uniform(4) == 0
                               ? kBankBase + wl_rng_.Uniform(kBankAccounts)
                               : kYcsbBase + op.key;
      const uint64_t degraded_before = ctx_.degraded_ops;
      const uint64_t staleness_before = ctx_.staleness_lsn;
      auto r = adapter_->GetKv(&ctx_, key);
      const Status& st = r.status();
      const bool degraded = ctx_.degraded_ops > degraded_before;
      if (degraded) {
        // Bounded-staleness read: any older committed value may
        // legitimately surface, so the membership check does not apply —
        // but the staleness the engine accounted must respect the bound.
        report_.degraded_reads++;
        // The autocommit's WAL flush still succeeded on an ok read, so
        // re-buffered uncertain batches are durable now (page staleness
        // does not weaken log durability).
        if (st.ok() && IsRow()) model_.PromoteAllUncertain();
        const uint64_t staleness = ctx_.staleness_lsn - staleness_before;
        if (staleness > schedule_.degrade.max_staleness_lsn) {
          report_.violations.push_back(
              "degraded read of key " + std::to_string(key) +
              " exceeded the staleness bound: " + std::to_string(staleness) +
              " > " + std::to_string(schedule_.degrade.max_staleness_lsn));
        }
        if (!st.ok() && !st.IsNotFound()) report_.read_errors++;
      } else if (st.ok() || st.IsNotFound()) {
        if (st.ok() && IsRow()) model_.PromoteAllUncertain();
        const std::string msg =
            model_.CheckRead(key, st, r.ok() ? *r : std::string());
        if (!msg.empty()) report_.violations.push_back(msg);
      } else {
        report_.read_errors++;  // infrastructure failure, allowed mid-run
      }
      Record(i, 'R', key, 0, static_cast<uint8_t>(st.code()));
      return;
    }
    const uint64_t key = kYcsbBase + op.key;
    const std::string value = FixedValue(key, i);
    Status st;
    switch (adapter_->PutKv(&ctx_, key, value, &st)) {
      case TxnOutcome::kCommitted:
        OnDefiniteCommit();
        model_.Commit(key, value);
        break;
      case TxnOutcome::kAborted:
        report_.busy++;  // clean failure before the durability point
        break;
      case TxnOutcome::kMaybeCommitted:
        report_.maybe_commits++;
        model_.MaybeCommit(key, value);
        break;
      case TxnOutcome::kBroken:
        model_.Poison(key);
        report_.notes.push_back("broken put rollback at op " +
                                std::to_string(i));
        break;
    }
    Record(i, 'P', key, 0, static_cast<uint8_t>(st.code()));
  }

  /// Shared-log view change: kill one log node, seal + reconfigure the
  /// fleet around it, then revive the node and reconfigure again so it
  /// rejoins and is re-replicated — two epoch bumps per interlude. Runs in
  /// oracle mode (a view change is a control-plane action, not workload
  /// traffic); the workload's next appends see the old epoch rejected with
  /// Aborted and refresh their cached view. The quorum-durability invariant
  /// is audited right after: the flushed WAL prefix must sit on a write
  /// quorum of the NEW view's members.
  void LogViewChange(int at_op) {
    SharedLogService* slog = adapter_->shared_log();
    EnterOracleMode();
    NetContext octx;
    const size_t victim = static_cast<size_t>(at_op) % slog->num_log_nodes();
    fabric_.node(slog->log_node(victim))->Fail();
    Status st = slog->SealAndReconfigure(&octx);
    if (!st.ok()) {
      report_.violations.push_back(
          "shared-log reconfigure with node " + std::to_string(victim) +
          " down failed at op " + std::to_string(at_op) + ": " +
          st.ToString());
    }
    fabric_.node(slog->log_node(victim))->Revive();
    Status st2 = slog->SealAndReconfigure(&octx);
    if (!st2.ok()) {
      report_.violations.push_back(
          "shared-log rejoin reconfigure failed at op " +
          std::to_string(at_op) + ": " + st2.ToString());
    }
    report_.log_reconfigs++;
    const std::string audit = adapter_->AuditDurability();
    if (!audit.empty()) {
      report_.violations.push_back(audit + " (after view change at op " +
                                   std::to_string(at_op) + ")");
    }
    EnterFaultedMode();
    Record(at_op, 'V', victim, slog->epoch(),
           static_cast<uint8_t>((st.ok() ? st2 : st).code()));
  }

  void CrashAndAudit(int at_op, bool final_audit) {
    report_.crashes++;
    EnterOracleMode();
    NetContext octx;
    Status st = adapter_->CrashAndRecover(&octx);
    if (!st.ok()) {
      report_.violations.push_back("crash recovery failed: " +
                                   st.ToString());
    }
    std::map<uint64_t, std::string> observed;
    for (const auto& [key, entry] : model_.entries()) {
      if (entry.poisoned) continue;
      auto r = adapter_->GetKv(&octx, key);
      const Status& rst = r.status();
      if (!rst.ok() && !rst.IsNotFound()) {
        report_.violations.push_back("oracle read of key " +
                                     std::to_string(key) + " failed: " +
                                     rst.ToString());
        continue;
      }
      const std::string msg =
          model_.CheckRead(key, rst, r.ok() ? *r : std::string());
      if (!msg.empty()) {
        report_.violations.push_back(
            msg + (final_audit ? " (final audit)"
                               : " (after crash at op " +
                                     std::to_string(at_op) + ")"));
      }
      if (r.ok()) observed[key] = *r;
    }
    if (final_audit) {
      CheckBalanceConservation(observed);
      CheckCommittedReplay(&octx);
    } else {
      EnterFaultedMode();
    }
    Record(at_op, 'C', static_cast<uint64_t>(at_op), 0,
           static_cast<uint8_t>(st.code()));
  }

  /// Transfers are atomic, and the durable log prefix the recovery read is
  /// a consistent cut through them — so however the uncertain transfers
  /// resolved, the money must all still be there.
  void CheckBalanceConservation(
      const std::map<uint64_t, std::string>& observed) {
    if (!adapter_->SupportsTransfers() || model_.AnyPoisoned()) return;
    uint64_t total = 0;
    for (int a = 0; a < kBankAccounts; a++) {
      auto it = observed.find(kBankBase + a);
      if (it == observed.end()) {
        report_.violations.push_back("bank account " +
                                     std::to_string(kBankBase + a) +
                                     " unreadable in final audit");
        return;
      }
      total += ParseBalance(it->second);
    }
    const uint64_t expected =
        static_cast<uint64_t>(kBankAccounts) * kBankInitial;
    if (total != expected) {
      report_.violations.push_back(
          "balance conservation violated: total " + std::to_string(total) +
          " != " + std::to_string(expected));
    }
  }

  /// Replays the durable log tier through ARIES and checks every key whose
  /// outcome is certain: its committed row must be reproduced bit-exactly
  /// at the slot the live index points to. No lost committed writes.
  void CheckCommittedReplay(NetContext* octx) {
    RowEngine* engine = adapter_->row_engine();
    if (engine == nullptr) return;
    auto log = engine->sink()->ReadAll(octx);
    if (!log.ok()) {
      report_.violations.push_back("log read for replay check failed: " +
                                   log.status().ToString());
      return;
    }
    auto out = AriesRecovery::Recover(*log, {});
    if (!out.ok()) {
      report_.violations.push_back("ARIES replay failed: " +
                                   out.status().ToString());
      return;
    }
    for (const auto& [key, entry] : model_.entries()) {
      if (entry.poisoned || !entry.maybe.empty() || !entry.committed) {
        continue;
      }
      auto loc = engine->Lookup(key);
      if (!loc.ok()) {
        report_.violations.push_back("index lost committed key " +
                                     std::to_string(key));
        continue;
      }
      auto pit = out->pages.find(loc->page);
      if (pit == out->pages.end()) {
        report_.violations.push_back(
            "log replay produced no page for committed key " +
            std::to_string(key));
        continue;
      }
      auto row = pit->second.Get(loc->slot);
      if (!row.ok() || row->ToString() != *entry.committed) {
        report_.violations.push_back(
            "committed write lost: key " + std::to_string(key) +
            " replays as " +
            (row.ok() ? "\"" + row->ToString() + "\""
                      : row.status().ToString()));
        continue;
      }
      report_.replay_checked_keys++;
    }
  }

  void FillCounters() {
    report_.drops = fault_->drops();
    report_.spikes = fault_->spikes();
    report_.flap_rejections = fault_->flap_rejections();
    report_.fault_ops_seen = fault_->ops_seen();
    report_.retries = retry_->retries();
    report_.gave_up = retry_->gave_up();
    report_.faults_injected = ctx_.faults_injected;
    report_.staleness_lsn = ctx_.staleness_lsn;
    report_.admission_rejects = ctx_.admission_rejects;
    report_.breaker_fast_fails = ctx_.breaker_fast_fails;
  }

  ChaosSchedule schedule_;
  ChaosReport report_;
  Fabric fabric_;
  std::unique_ptr<ChaosAdapter> adapter_;
  std::unique_ptr<TpccLite> tpcc_;
  KvModel model_;
  Random wl_rng_;
  YcsbGenerator ycsb_;
  NetContext ctx_;  // workload client context (sim time drives the trace)
  std::shared_ptr<RetryInterceptor> retry_;
  std::shared_ptr<FaultInterceptor> fault_;
  std::shared_ptr<CircuitBreakerInterceptor> breaker_;  // null unless enabled
};

}  // namespace

ChaosReport RunEngineChaos(const std::string& engine, uint64_t seed) {
  return RunEngineChaos(engine, ChaosSchedule::FromSeed(seed));
}

ChaosReport RunEngineChaos(const std::string& engine,
                           const ChaosSchedule& schedule) {
  return ChaosRunner(engine, schedule).Run();
}

// ------------------------------------------------------------- Index chaos

ChaosReport RunIndexChaos(const std::string& kind, uint64_t seed) {
  ChaosSchedule schedule = ChaosSchedule::FromSeed(seed);
  ChaosReport report;
  report.engine = "index-" + kind;
  report.seed = seed;

  Fabric fabric;
  MemoryNode pool(&fabric, "chaos-mem", 64 << 20);
  NetContext setup;

  constexpr uint64_t kKeySpace = 48;
  const bool is_race = kind == "race";
  const bool is_detector = kind == "offload-detector";
  const bool is_offload = kind == "offload" || is_detector;
  std::unique_ptr<RaceHash> race;
  std::unique_ptr<RemoteBTree> btree;
  std::unique_ptr<MemNodeExecutor> exec;
  if (is_race) {
    auto table = RaceHash::Create(&setup, &fabric, &pool, 256);
    if (!table.ok()) {
      report.violations.push_back("create failed: " +
                                  table.status().ToString());
      return report;
    }
    race = std::make_unique<RaceHash>(&fabric, &pool, *table);
  } else {
    auto tree = RemoteBTree::Create(&setup, &fabric, &pool);
    if (!tree.ok()) {
      report.violations.push_back("create failed: " +
                                  tree.status().ToString());
      return report;
    }
    btree = std::make_unique<RemoteBTree>(
        &fabric, &pool, *tree,
        kind == "lockcouple" ? RemoteBTree::Options::LockCoupling()
                             : RemoteBTree::Options::Sherman());
    if (is_offload) {
      // Near-data mode: every op becomes one exec.idx.* RPC. Dropped
      // replies retry at-least-once through the same budget — the ops are
      // idempotent, so the exact model still binds.
      exec = std::make_unique<MemNodeExecutor>(&fabric, &pool);
      btree->EnableOffload(pool.node(), exec->RegisterTree(*tree));
    }
  }

  // Multi-step index ops have no rollback path, so give-ups would leave the
  // structure half-mutated; a deep retry budget makes them (deterministic-
  // seed-verifiably) impossible, which keeps the model exact.
  RetryPolicy rp;
  rp.max_attempts = 16;
  auto retry = std::make_shared<RetryInterceptor>(rp);
  FaultPolicy fp;
  fp.seed = schedule.seed;
  fp.drop_prob = schedule.drop_prob;
  fp.spike_prob = schedule.spike_prob;
  fp.spike_ns = schedule.spike_ns;
  auto fault = std::make_shared<FaultInterceptor>(fp);
  fabric.AddInterceptor(retry);

  // Detector mode: crash points only KILL the executor; recovery is owned
  // by a membership service watching the pool node. Virtual time between
  // barrier steps is pumped from inside the retry loop (the interceptor
  // below), so a workload op that arrives during the outage survives on
  // its retry budget until detection + repair revive the node — recovery
  // is detector-driven, not scripted.
  std::unique_ptr<MembershipService> member;
  if (is_detector) {
    MembershipOptions mo;
    mo.heartbeat_period_ns = 8'000;
    mo.suspicion_threshold = 2.0;
    mo.repair_delay_ns = 8'000;
    mo.rejoin_probes = 2;
    member = std::make_unique<MembershipService>(&fabric, mo);
    member->Monitor(pool.node());
    member->OnRepair(pool.node(), [&exec] { exec->Recover(); });

    // Pump interceptor: advances the membership clock to the op's issue
    // instant before each (re)attempt. Heartbeats issued by the advance
    // re-enter this chain; AdvanceTo's re-entrancy guard makes the nested
    // pump a no-op.
    class MembershipPump : public FabricInterceptor {
     public:
      explicit MembershipPump(MembershipService* m) : member_(m) {}
      const char* name() const override { return "membership-pump"; }
      Status Intercept(Fabric* fabric, FabricOp* op, NetContext* ctx,
                       const FabricOpInvoker& next) override {
        member_->AdvanceTo(ctx->sim_ns);
        return next(op, ctx);
      }

     private:
      MembershipService* member_;
    };
    fabric.AddInterceptor(std::make_shared<MembershipPump>(member.get()));
  }
  fabric.AddInterceptor(fault);

  std::map<uint64_t, uint64_t> model;
  Random rng(seed * 0x2545F4914F6CDD1Dull + 1);
  NetContext ctx;
  auto key_name = [](uint64_t k) { return "k" + std::to_string(k); };

  // Drains membership events into the trace as 'M' records (a = event
  // kind, b = lease epoch) so detector decisions are replay-checked.
  size_t next_event = 0;
  auto drain_events = [&](int op_index) {
    if (member == nullptr) return;
    const std::vector<MembershipService::Event>& events = member->events();
    for (; next_event < events.size(); next_event++) {
      const MembershipService::Event& e = events[next_event];
      report.trace.push_back({op_index, 'M',
                              static_cast<uint64_t>(e.kind), e.lease_epoch,
                              0, e.at_ns});
    }
  };

  size_t next_crash = 0;
  for (int i = 0; i < schedule.num_ops; i++) {
    if (is_offload && next_crash < schedule.crash_points.size() &&
        i == schedule.crash_points[next_crash]) {
      // Executor crash interlude at an op boundary: the service dies and
      // its lock table would be lost, but the pool region — the tree
      // bytes — survives, so traversal resumes against intact data. In
      // scripted mode recovery is immediate; in detector mode the node
      // stays dead until the membership service revokes its lease and the
      // orchestrator's repair hook revives it.
      exec->Crash();
      if (!is_detector) exec->Recover();
      report.crashes++;
      report.trace.push_back({i, 'C', 0, 0, 0, ctx.sim_ns});
      next_crash++;
    }
    drain_events(i);
    const uint64_t k = rng.Uniform(kKeySpace);
    const uint64_t v = static_cast<uint64_t>(i) + 1;
    const double dice = rng.NextDouble();
    Status st;
    char kindc;
    if (dice < 0.5) {
      kindc = 'P';
      st = is_race ? race->Put(&ctx, key_name(k), std::to_string(v))
                   : btree->Put(&ctx, k, v);
      if (st.ok()) model[k] = v;
    } else if (dice < 0.8) {
      kindc = 'R';
      if (is_race) {
        auto r = race->Get(&ctx, key_name(k));
        st = r.status();
        if (st.ok() && model.count(k) &&
            *r != std::to_string(model[k])) {
          report.violations.push_back("race read mismatch on key " +
                                      std::to_string(k));
        }
      } else {
        auto r = btree->Get(&ctx, k);
        st = r.status();
        if (st.ok() && model.count(k) && *r != model[k]) {
          report.violations.push_back("btree read mismatch on key " +
                                      std::to_string(k));
        }
      }
      if (st.IsNotFound() && model.count(k)) {
        report.violations.push_back("inserted key " + std::to_string(k) +
                                    " reads as absent");
      }
    } else {
      kindc = 'D';
      st = is_race ? race->Delete(&ctx, key_name(k))
                   : btree->Delete(&ctx, k);
      if (st.ok() || st.IsNotFound()) model.erase(k);
    }
    if (st.ok() || st.IsNotFound()) {
      // applied (or cleanly absent)
    } else {
      report.read_errors++;
    }
    report.trace.push_back({i, kindc, k, 0,
                            static_cast<uint8_t>(st.code()), ctx.sim_ns});
  }

  if (member != nullptr) {
    // Let any in-flight detection/repair run to completion in virtual time
    // (a kill near the end of the stream must still be recovered before
    // the oracle audits against a live node), then flush the event tail.
    member->AdvanceTo(ctx.sim_ns + 64 * member->options().heartbeat_period_ns);
    drain_events(schedule.num_ops);
  }

  report.drops = fault->drops();
  report.spikes = fault->spikes();
  report.fault_ops_seen = fault->ops_seen();
  report.retries = retry->retries();
  report.gave_up = retry->gave_up();
  report.faults_injected = ctx.faults_injected;

  if (report.gave_up > 0 || report.read_errors > 0) {
    // A gave-up op may have half-applied; the exact model no longer binds.
    report.notes.push_back("retry budget exhausted; key-set check skipped");
    report.violations.clear();
    return report;
  }

  // Oracle audit: the surviving key set must match the model exactly —
  // every key present with its value, every other key absent (no ghosts).
  fabric.ClearInterceptors();
  NetContext octx;
  for (uint64_t k = 0; k < kKeySpace; k++) {
    auto it = model.find(k);
    if (is_race) {
      auto r = race->Get(&octx, key_name(k));
      if (it != model.end()) {
        if (!r.ok() || *r != std::to_string(it->second)) {
          report.violations.push_back("final: key " + std::to_string(k) +
                                      " wrong or missing");
        }
      } else if (!r.status().IsNotFound()) {
        report.violations.push_back("final: ghost key " + std::to_string(k));
      }
    } else {
      auto r = btree->Get(&octx, k);
      if (it != model.end()) {
        if (!r.ok() || *r != it->second) {
          report.violations.push_back("final: key " + std::to_string(k) +
                                      " wrong or missing");
        }
      } else if (!r.status().IsNotFound()) {
        report.violations.push_back("final: ghost key " + std::to_string(k));
      }
    }
  }
  if (!is_race) {
    auto scan = btree->Scan(&octx, 0, kKeySpace + 16);
    if (!scan.ok()) {
      report.violations.push_back("final scan failed: " +
                                  scan.status().ToString());
    } else {
      std::vector<std::pair<uint64_t, uint64_t>> want(model.begin(),
                                                      model.end());
      if (*scan != want) {
        report.violations.push_back(
            "final scan does not match the model key set (ghost or lost "
            "entries)");
      }
    }
  }
  return report;
}

// -------------------------------------------------------------- Lock chaos

ChaosReport RunLockChaos(uint64_t seed) {
  ChaosSchedule schedule = ChaosSchedule::FromSeed(seed);
  ChaosReport report;
  report.engine = "lock-offload";
  report.seed = seed;

  Fabric fabric;
  MemoryNode pool(&fabric, "chaos-lock-pool", 1 << 20);
  MemNodeExecutor exec(&fabric, &pool);
  OffloadedLockClient locks(&fabric, pool.node());

  FaultPolicy fp;
  fp.seed = schedule.seed;
  fp.drop_prob = schedule.drop_prob;
  fp.spike_prob = schedule.spike_prob;
  fp.spike_ns = schedule.spike_ns;
  auto fault = std::make_shared<FaultInterceptor>(fp);
  fabric.AddInterceptor(fault);

  // K clients, each looping acquire(key1) -> acquire(key2) -> release, over
  // a small key space with randomized key order — cyclic contention arises
  // constantly, which is exactly what WOUND_WAIT must survive. The seeded
  // rng drives both the scheduler (which client acts) and the key picks, so
  // the whole interleaving replays from the seed.
  constexpr int kClients = 4;
  constexpr uint64_t kLockKeys = 6;
  constexpr int kSteps = 400;
  // Liveness bound: WOUND_WAIT guarantees the oldest live txn is never
  // wounded and its holders are either wounded or eventually scheduled to
  // release, so a window this long with zero grants or releases is a wedge.
  constexpr int kMaxStepsWithoutProgress = 200;

  struct Client {
    TxnId txn = 0;
    int step = 0;  // 0 = acquire first key, 1 = acquire second, 2 = release
    uint64_t keys[2] = {0, 0};
  };
  Client clients[kClients];
  TxnId next_txn = 1;
  Random rng(seed * 0x9E3779B97F4A7C15ull + 7);
  NetContext ctx;

  auto fresh_txn = [&](Client* c) {
    c->txn = next_txn++;
    c->step = 0;
    c->keys[0] = rng.Uniform(kLockKeys);
    do {
      c->keys[1] = rng.Uniform(kLockKeys);
    } while (c->keys[1] == c->keys[0]);
  };
  for (auto& c : clients) fresh_txn(&c);

  size_t next_crash = 0;
  bool down = false;
  int steps_without_progress = 0;
  for (int i = 0; i < kSteps; i++) {
    if (down) {
      // The executor crashed mid-handoff last step; bring it back before
      // anyone else acts (bounded outage keeps the liveness check sharp).
      exec.Recover();
      down = false;
      steps_without_progress = 0;
      report.trace.push_back({i, 'C', 0, 0, 0, ctx.sim_ns});
    }
    if (next_crash < schedule.crash_points.size() &&
        i == schedule.crash_points[next_crash] * kSteps / schedule.num_ops) {
      // Arm a crash at the START of the next handler invocation: the next
      // lock request reaches the node and the node dies holding it — a
      // crash mid-lock-handoff, with no reply and no partial mutation.
      exec.ScheduleCrashAfter(1);
      next_crash++;
    }

    Client& c = clients[rng.Uniform(kClients)];
    Status st;
    char kindc;
    uint64_t key = 0;
    if (c.step < 2) {
      kindc = 'L';
      key = c.keys[c.step];
      st = locks.AcquireLock(&ctx, c.txn, key, LockMode::kExclusive);
      if (st.ok()) {
        c.step++;
        if (c.step == 2) report.commits++;  // both keys held: txn "commits"
        steps_without_progress = 0;
      } else if (st.IsBusy()) {
        report.busy++;  // wound-wait "wait": retry when next scheduled
        steps_without_progress++;
      } else if (st.IsAborted()) {
        // Wounded or fenced: abort — release and restart as a younger txn.
        locks.ReleaseAllLocks(&ctx, c.txn);
        report.aborts++;
        fresh_txn(&c);
        steps_without_progress = 0;
      } else {
        // Fault-layer failure (drop, crash): outcome unknown — release
        // conservatively (a failed release queues for piggybacking) and
        // restart.
        if (st.IsUnavailable()) down = true;
        locks.ReleaseAllLocks(&ctx, c.txn);
        fresh_txn(&c);
        steps_without_progress++;
      }
    } else {
      kindc = 'U';
      key = c.txn;  // trace the txn being released
      locks.ReleaseAllLocks(&ctx, c.txn);
      fresh_txn(&c);
      st = Status::OK();
      steps_without_progress = 0;
    }
    report.trace.push_back({i, kindc, key, c.txn,
                            static_cast<uint8_t>(st.code()), ctx.sim_ns});
    if (steps_without_progress > kMaxStepsWithoutProgress) {
      report.violations.push_back(
          "lock wedge: no grant or release in " +
          std::to_string(kMaxStepsWithoutProgress) + " scheduler steps");
      break;
    }
  }

  report.drops = fault->drops();
  report.spikes = fault->spikes();
  report.fault_ops_seen = fault->ops_seen();
  report.faults_injected = ctx.faults_injected;
  report.crashes = exec.stats().crashes;

  // Oracle audit (faults off, executor up): after every client releases,
  // a fresh transaction must be able to acquire every key — no key may stay
  // wedged behind a dead client or a pre-crash grant — and the lock table
  // must drain to empty.
  fabric.ClearInterceptors();
  exec.ScheduleCrashAfter(0);  // disarm any crash point the loop never hit
  if (down) exec.Recover();
  NetContext octx;
  for (auto& c : clients) locks.ReleaseAllLocks(&octx, c.txn);
  const TxnId audit_txn = next_txn++;
  for (uint64_t k = 0; k < kLockKeys; k++) {
    Status st = locks.AcquireLock(&octx, audit_txn, k, LockMode::kExclusive);
    if (!st.ok()) {
      report.violations.push_back("final: key " + std::to_string(k) +
                                  " wedged: " + st.ToString());
    }
  }
  locks.ReleaseAllLocks(&octx, audit_txn);
  if (exec.active_locks() != 0) {
    report.violations.push_back(
        "final: lock table not empty after releasing every txn");
  }
  if (locks.pending_releases() != 0) {
    report.violations.push_back(
        "final: pending piggyback releases survived a successful request");
  }
  return report;
}

}  // namespace sim
}  // namespace disagg
