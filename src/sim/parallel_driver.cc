#include "sim/parallel_driver.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "net/membership.h"
#include "net/partition.h"
#include "net/slo_controller.h"
#include "sim/driver_internal.h"

namespace disagg {
namespace sim {

namespace {

using internal::ClientSeed;
using internal::OpTag;
using internal::Runnable;

/// Persistent worker pool with a generation barrier: `Run(fn)` executes
/// fn(p) for every partition p — worker t takes partitions t, t+T, t+2T, …
/// — and returns once all are done. The partition→thread mapping is pure
/// load balancing: partitions share no mutable state within an epoch, and
/// the barrier's mutex publishes each epoch's writes to the main thread, so
/// WHICH thread ran a partition can never reach a result. With fewer than
/// two workers everything runs inline on the calling thread.
class EpochPool {
 public:
  EpochPool(uint32_t threads, uint32_t partitions) : partitions_(partitions) {
    const uint32_t n = std::min(threads, partitions);
    if (n <= 1) return;
    workers_.reserve(n);
    for (uint32_t t = 0; t < n; t++) {
      workers_.emplace_back(
          [this, t, n] { WorkerLoop(t, n); });
    }
  }

  EpochPool(const EpochPool&) = delete;
  EpochPool& operator=(const EpochPool&) = delete;

  ~EpochPool() {
    if (workers_.empty()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  void Run(const std::function<void(uint32_t)>& fn) {
    if (workers_.empty()) {
      for (uint32_t p = 0; p < partitions_; p++) fn(p);
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_ = &fn;
    pending_ = static_cast<uint32_t>(workers_.size());
    generation_++;
    cv_work_.notify_all();
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    work_ = nullptr;
  }

 private:
  void WorkerLoop(uint32_t index, uint32_t stride) {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(uint32_t)>* work = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock,
                      [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        work = work_;
      }
      for (uint32_t p = index; p < partitions_; p += stride) (*work)(p);
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }

  const uint32_t partitions_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(uint32_t)>* work_ = nullptr;
  uint32_t pending_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

/// One client partition's private slice of the run.
struct Partition {
  std::priority_queue<Runnable, std::vector<Runnable>,
                      std::greater<Runnable>>
      heap;
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t busy = 0;
  Histogram latency;
  std::vector<LoadReport::OpTrace> records;
  PartitionEffects effects;
  /// Per-tenant SLO observations accumulated this epoch (controller runs
  /// only); ingested at the barrier in partition-id order and cleared.
  SloController::EpochObservations obs;
};

/// Barrier leg for the SLO control plane: feed every partition's epoch of
/// observations to the controller in partition-id order (Sample::Merge is
/// commutative, so this order is a convention, not a load-bearing choice),
/// then run the control step. Workers are parked at the barrier, so the
/// actuation the controller publishes is seen by every partition of the
/// next epoch — and by none of the current one.
void ControllerBarrier(SloController* ctrl, std::vector<Partition>* parts,
                       uint64_t epoch_end) {
  if (ctrl == nullptr) return;
  for (Partition& part : *parts) {
    ctrl->Ingest(part.obs);
    part.obs.clear();
  }
  ctrl->EndEpoch(epoch_end);
}

/// Barrier leg: replay every shard this partition accumulated into the
/// authoritative objects. Called on the main thread, partitions in
/// partition-id order; a map here only interleaves shards of *independent*
/// objects, so its iteration order cannot affect results.
void MergeEffects(PartitionEffects* effects) {
  for (auto& [state, shard] : effects->congestion_shards) {
    state->MergeShard(shard.get());
  }
  for (auto& [breaker, shard] : effects->breaker_shards) {
    breaker->MergeShard(&shard);
  }
}

/// Canonical trace order — identical to the serial driver's processing
/// order (virtual-time heap, client-id tie-break, per-client op_index
/// monotone), so sorting the partitions' concatenated records reproduces
/// the serial trace exactly when the schedules agree. The key
/// (arrival, client, op_index) is unique per record: total order, no
/// comparator ambiguity.
bool TraceLess(const LoadReport::OpTrace& a, const LoadReport::OpTrace& b) {
  if (a.arrival_ns != b.arrival_ns) return a.arrival_ns < b.arrival_ns;
  if (a.client != b.client) return a.client < b.client;
  return a.op_index < b.op_index;
}

using internal::EpochEndFor;

/// Smallest pending event time across all partitions, or UINT64_MAX.
uint64_t MinPending(const std::vector<Partition>& parts) {
  uint64_t next = std::numeric_limits<uint64_t>::max();
  for (const Partition& part : parts) {
    if (!part.heap.empty()) next = std::min(next, part.heap.top().at_ns);
  }
  return next;
}

void FinalizeCounters(const std::vector<NetContext>& ctxs,
                      std::vector<Partition>* parts, LoadReport* report) {
  for (Partition& part : *parts) {
    report->ops += part.ops;
    report->errors += part.errors;
    report->busy += part.busy;
    report->latency.Merge(part.latency);  // bucket merge: order-insensitive
  }
  report->per_client_sim_ns.reserve(ctxs.size());
  for (const NetContext& c : ctxs) {
    report->per_client_sim_ns.push_back(c.sim_ns);
    if (c.sim_ns > report->makespan_ns) report->makespan_ns = c.sim_ns;
  }
  MergeParallel(&report->total, ctxs.data(), ctxs.size());
}

/// Concatenates the partitions' per-op records into canonical order.
std::vector<LoadReport::OpTrace> SortedRecords(std::vector<Partition>* parts) {
  std::vector<LoadReport::OpTrace> all;
  size_t n = 0;
  for (const Partition& part : *parts) n += part.records.size();
  all.reserve(n);
  for (Partition& part : *parts) {
    all.insert(all.end(), part.records.begin(), part.records.end());
    part.records.clear();
    part.records.shrink_to_fit();
  }
  std::sort(all.begin(), all.end(), TraceLess);
  return all;
}

}  // namespace

LoadReport RunEpochClosedLoop(const LoadOptions& opts, const ClientOpFn& op) {
  LoadReport report;
  report.clients = opts.clients;
  if (opts.clients == 0 || opts.ops_per_client == 0) return report;

  const uint32_t P = static_cast<uint32_t>(
      std::min<uint64_t>(opts.parallel.partitions, opts.clients));
  const uint64_t epoch_ns =
      opts.parallel.epoch_ns > 0 ? opts.parallel.epoch_ns : kDefaultEpochNs;
  const bool record = opts.parallel.record_trace;

  std::vector<NetContext> ctxs(opts.clients);
  std::vector<Random> rngs;
  std::vector<uint64_t> issued(opts.clients, 0);
  rngs.reserve(opts.clients);
  for (uint64_t c = 0; c < opts.clients; c++) {
    rngs.emplace_back(ClientSeed(opts.seed, c));
  }

  // Round-robin client→partition assignment (client % P): part of the
  // determinism contract's config, never a runtime decision.
  std::vector<Partition> parts(P);
  for (uint64_t c = 0; c < opts.clients; c++) parts[c % P].heap.push({0, c});

  EpochPool pool(opts.parallel.threads, P);
  SloController* const ctrl = opts.parallel.controller;
  MembershipService* const member = opts.parallel.membership;
  uint64_t epoch_end = epoch_ns;
  for (;;) {
    pool.Run([&](uint32_t p) {
      Partition& part = parts[p];
      PartitionEffectsScope scope(&part.effects);
      while (!part.heap.empty() && part.heap.top().at_ns < epoch_end) {
        const Runnable r = part.heap.top();
        part.heap.pop();
        NetContext* ctx = &ctxs[r.client];
        const uint64_t before = ctx->sim_ns;
        ctx->op_tag = OpTag(r.client, issued[r.client]);
        Status st = op(r.client, issued[r.client], ctx, &rngs[r.client]);
        part.ops++;
        if (!st.ok()) {
          part.errors++;
          if (st.IsBusy()) part.busy++;
        }
        part.latency.Record(ctx->sim_ns - before);
        if (ctrl != nullptr) {
          part.obs[ctx->tenant].Add(ctx->sim_ns - before, st);
        }
        if (record) {
          part.records.push_back(LoadReport::OpTrace{
              before, ctx->sim_ns, r.client, issued[r.client], st.code()});
        }
        if (opts.think_ns > 0) ctx->Charge(opts.think_ns);
        if (++issued[r.client] < opts.ops_per_client) {
          part.heap.push({ctx->sim_ns, r.client});
        }
      }
    });
    report.epochs++;
    for (Partition& part : parts) MergeEffects(&part.effects);
    ControllerBarrier(ctrl, &parts, epoch_end);
    // Membership runs after the controller, with workers parked: heartbeat
    // rounds, revocations and repairs land between epochs, never inside one.
    if (member != nullptr) member->EndEpoch(epoch_end);

    const uint64_t next = MinPending(parts);
    if (next == std::numeric_limits<uint64_t>::max()) break;
    // Skip empty epochs: jump straight to the epoch holding the earliest
    // pending event (same epoch boundaries as stepping one by one).
    epoch_end = EpochEndFor(next, epoch_ns);
  }

  FinalizeCounters(ctxs, &parts, &report);
  if (record) report.trace = SortedRecords(&parts);
  return report;
}

LoadReport RunEpochOpenLoop(const OpenLoopOptions& opts, const ClientOpFn& op) {
  LoadReport report;
  report.clients = opts.clients;
  if (opts.clients == 0 || opts.ops_per_client == 0 ||
      opts.ops_per_sec <= 0.0) {
    return report;
  }
  report.offered_ops_per_sec =
      opts.ops_per_sec * static_cast<double>(opts.clients);
  const double period_ns = 1e9 / opts.ops_per_sec;

  const uint32_t P = static_cast<uint32_t>(
      std::min<uint64_t>(opts.parallel.partitions, opts.clients));
  const uint64_t epoch_ns =
      opts.parallel.epoch_ns > 0 ? opts.parallel.epoch_ns : kDefaultEpochNs;

  std::vector<NetContext> accs(opts.clients);
  std::vector<Random> rngs;
  std::vector<Random> arrival_rngs;
  std::vector<uint64_t> issued(opts.clients, 0);
  rngs.reserve(opts.clients);
  arrival_rngs.reserve(opts.clients);
  for (uint64_t c = 0; c < opts.clients; c++) {
    rngs.emplace_back(ClientSeed(opts.seed, c));
    arrival_rngs.emplace_back(ClientSeed(opts.seed, c) ^ internal::kArrivalSalt);
  }

  std::vector<Partition> parts(P);
  for (uint64_t c = 0; c < opts.clients; c++) {
    parts[c % P].heap.push(
        {internal::FirstArrivalNs(opts, period_ns, c, &arrival_rngs[c]), c});
  }

  EpochPool pool(opts.parallel.threads, P);
  SloController* const ctrl = opts.parallel.controller;
  MembershipService* const member = opts.parallel.membership;
  uint64_t epoch_end = EpochEndFor(MinPending(parts), epoch_ns);
  for (;;) {
    pool.Run([&](uint32_t p) {
      Partition& part = parts[p];
      PartitionEffectsScope scope(&part.effects);
      while (!part.heap.empty() && part.heap.top().at_ns < epoch_end) {
        const Runnable a = part.heap.top();
        part.heap.pop();
        NetContext ctx = accs[a.client].Fork();
        ctx.sim_ns = a.at_ns;
        ctx.op_tag = OpTag(a.client, issued[a.client]);
        Status st = op(a.client, issued[a.client], &ctx, &rngs[a.client]);
        part.ops++;
        if (!st.ok()) {
          part.errors++;
          if (st.IsBusy()) part.busy++;
        }
        part.latency.Record(ctx.sim_ns - a.at_ns);
        if (ctrl != nullptr) {
          part.obs[ctx.tenant].Add(ctx.sim_ns - a.at_ns, st);
        }
        // Records are always kept open-loop: the queue-depth gauge is a
        // post-pass over the canonical arrival order.
        part.records.push_back(LoadReport::OpTrace{
            a.at_ns, ctx.sim_ns, a.client, issued[a.client], st.code()});
        JoinParallel(&accs[a.client], &ctx, 1);
        if (++issued[a.client] < opts.ops_per_client) {
          part.heap.push(
              {a.at_ns +
                   internal::NextGapNs(opts, period_ns,
                                       &arrival_rngs[a.client]),
               a.client});
        }
      }
    });
    report.epochs++;
    for (Partition& part : parts) MergeEffects(&part.effects);
    ControllerBarrier(ctrl, &parts, epoch_end);
    if (member != nullptr) member->EndEpoch(epoch_end);

    const uint64_t next = MinPending(parts);
    if (next == std::numeric_limits<uint64_t>::max()) break;
    epoch_end = EpochEndFor(next, epoch_ns);
  }

  FinalizeCounters(accs, &parts, &report);

  // The in-flight gauge, replayed over the canonical order — one entry per
  // client in the arrival heap means serial pop order IS this order, so the
  // gauge is bit-identical to the serial driver's inline computation.
  std::vector<LoadReport::OpTrace> ordered = SortedRecords(&parts);
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<uint64_t>>
      completions;
  for (const LoadReport::OpTrace& t : ordered) {
    while (!completions.empty() && completions.top() <= t.arrival_ns) {
      completions.pop();
    }
    completions.push(t.done_ns);
    const uint64_t depth = completions.size();
    report.queue_depth.Record(depth);
    if (depth > report.max_in_flight) report.max_in_flight = depth;
  }
  if (opts.parallel.record_trace) report.trace = std::move(ordered);
  return report;
}

}  // namespace sim
}  // namespace disagg
