#include "core/serverless_db.h"

namespace disagg {

ServerlessDb::ServerlessDb(Fabric* fabric, size_t max_pages,
                           ReplicatedSegment::Config storage_config)
    : fabric_(fabric) {
  pool_ = std::make_unique<MemoryNode>(fabric_, "serverless-pool",
                                       (max_pages + 16) * kPageSize +
                                           max_pages * 64 + (1 << 20));
  home_ = std::make_unique<SharedBufferPoolHome>(fabric_, pool_.get(),
                                                 max_pages);
  segment_ = std::make_unique<ReplicatedSegment>(fabric_, storage_config,
                                                 "serverless-seg");
}

std::unique_ptr<ServerlessDb::Compute> ServerlessDb::AttachCompute(
    size_t local_cache_pages, bool writer) {
  return std::make_unique<Compute>(this, local_cache_pages, writer);
}

ServerlessDb::Compute::Compute(ServerlessDb* db, size_t local_cache_pages,
                               bool writer)
    : db_(db),
      pool_client_(db->fabric_, db->home_.get(), local_cache_pages),
      writer_(writer) {}

Status ServerlessDb::Compute::Put(NetContext* ctx, uint64_t key, Slice row) {
  if (!writer_) {
    return Status::NotSupported("secondary nodes are read-only");
  }
  // Durability first: redo record to the shared storage quorum.
  LogRecord rec;
  rec.lsn = db_->next_lsn_++;
  rec.txn_id = 1;
  auto it = db_->index_.find(key);
  const bool update = it != db_->index_.end();

  if (update) {
    rec.type = LogType::kUpdate;
    rec.page_id = it->second.page;
    rec.slot = it->second.slot;
    rec.payload = row.ToString();
    DISAGG_RETURN_NOT_OK(db_->segment_->AppendLog(ctx, {rec}).status());
    DISAGG_ASSIGN_OR_RETURN(Page page,
                            pool_client_.ReadPage(ctx, it->second.page));
    DISAGG_RETURN_NOT_OK(page.Update(it->second.slot, row));
    page.set_lsn(rec.lsn);
    return pool_client_.WritePage(ctx, page);
  }

  // Insert: pick/extend the shared insert page.
  Page page(kInvalidPageId);
  bool fresh = false;
  if (db_->insert_page_ != kInvalidPageId) {
    DISAGG_ASSIGN_OR_RETURN(page, pool_client_.ReadPage(ctx,
                                                        db_->insert_page_));
    if (page.FreeSpace() < row.size()) fresh = true;
  } else {
    fresh = true;
  }
  if (fresh) {
    db_->insert_page_ = db_->next_page_id_++;
    page = Page(db_->insert_page_);
  }
  rec.type = LogType::kInsert;
  rec.page_id = page.page_id();
  rec.slot = page.slot_count();
  rec.payload = row.ToString();
  DISAGG_RETURN_NOT_OK(db_->segment_->AppendLog(ctx, {rec}).status());
  auto slot = page.Insert(row);
  if (!slot.ok()) return slot.status();
  page.set_lsn(rec.lsn);
  DISAGG_RETURN_NOT_OK(pool_client_.WritePage(ctx, page));
  db_->index_[key] = RowLoc{page.page_id(), *slot};
  return Status::OK();
}

Result<std::string> ServerlessDb::Compute::Get(NetContext* ctx, uint64_t key) {
  auto it = db_->index_.find(key);
  if (it == db_->index_.end()) return Status::NotFound("no such key");
  DISAGG_ASSIGN_OR_RETURN(Page page,
                          pool_client_.ReadPage(ctx, it->second.page));
  DISAGG_ASSIGN_OR_RETURN(Slice row, page.Get(it->second.slot));
  return row.ToString();
}

}  // namespace disagg
