#ifndef DISAGG_CORE_ENGINES_H_
#define DISAGG_CORE_ENGINES_H_

#include <memory>
#include <vector>

#include "core/row_engine.h"
#include "log/shared_log.h"
#include "memnode/page_source.h"
#include "storage/gossip.h"
#include "storage/object_store.h"
#include "storage/raft_lite.h"

namespace disagg {

/// Baseline monolithic database: WAL on the local disk, pages on the local
/// disk — nothing crosses a network. The reference point every shared-
/// storage design is compared against (Fig. 1 left-hand side).
class MonolithicDb : public RowEngine {
 public:
  explicit MonolithicDb(EngineLogConfig log = {});

  /// Flushes all dirty pages to the local disk (checkpoint).
  Status CheckpointPages(NetContext* ctx);

 private:
  Result<Page> FetchPage(NetContext* ctx, PageId id) override;

  InMemoryPageSource disk_;
};

/// Amazon Aurora (Sec. 2.1): "the log is the database". The WAL goes to a
/// 6-way/3-AZ quorum segment whose replicas materialize pages from it; the
/// compute node NEVER writes pages anywhere. Reads that miss the buffer
/// fetch materialized pages back from the segment.
class AuroraDb : public RowEngine {
 public:
  /// Shared-log mode replaces the smart segment with a dumb shared-log
  /// fleet plus this many page-materialization replicas.
  static constexpr int kSharedPageReplicas = 3;

  explicit AuroraDb(Fabric* fabric, ReplicatedSegment::Config config = {},
                    EngineLogConfig log = {});

  /// Null in shared-log mode (no quorum segment exists).
  ReplicatedSegment* segment() { return segment_; }

 private:
  Result<Page> FetchPage(NetContext* ctx, PageId id) override;
  Result<Page> FetchPageDegraded(NetContext* ctx, PageId id) override;
  Status OnCommit(NetContext* ctx,
                  const std::vector<LogRecord>& records) override;

  Fabric* fabric_;
  ReplicatedSegment* segment_;  // owned by the sink; null in shared mode
  // Shared-log mode only: the page-materialization fleet fed at commit.
  std::vector<NodeId> page_nodes_;
  std::vector<std::unique_ptr<PageStoreService>> page_services_;
};

/// Read replica attached to an AuroraDb: shares the writer's metadata
/// (row index, page LSNs) but reads pages directly from shared storage,
/// caching them and revalidating by LSN — adding readers never adds write
/// work (Sec. 2.1: replicas share the same storage).
class AuroraReader {
 public:
  AuroraReader(AuroraDb* writer, size_t cache_pages);

  Result<std::string> Get(NetContext* ctx, uint64_t key);

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t segment_reads() const { return segment_reads_; }

 private:
  AuroraDb* writer_;
  size_t cache_capacity_;
  std::map<PageId, Page> cache_;
  uint64_t cache_hits_ = 0;
  uint64_t segment_reads_ = 0;
};

/// Alibaba PolarDB (Sec. 2.1): ships BOTH the log (to PolarFS, a 3-way
/// RaftLite group) and whole dirty pages (to replicated page stores) — more
/// network traffic per transaction than Aurora, the trade-off the paper
/// calls out.
class PolarDb : public RowEngine {
 public:
  static constexpr int kPageReplicas = 3;

  explicit PolarDb(Fabric* fabric, EngineLogConfig log = {});

  /// Null in shared-log mode (the WAL rides the shared log, not PolarFS).
  RaftLiteGroup* polarfs() { return raft_; }

 private:
  Result<Page> FetchPage(NetContext* ctx, PageId id) override;
  Result<Page> FetchPageDegraded(NetContext* ctx, PageId id) override;
  Status OnCommit(NetContext* ctx,
                  const std::vector<LogRecord>& records) override;

  Fabric* fabric_;
  RaftLiteGroup* raft_;  // owned by the sink
  std::vector<NodeId> page_nodes_;
  std::vector<std::unique_ptr<PageStoreService>> page_services_;
};

/// Microsoft Socrates (Sec. 2.1): durability and availability separated
/// into four tiers — compute, the XLOG service (fast log landing),
/// page servers (availability, fed asynchronously from XLOG), and XStore
/// (cheap durable object storage for checkpoints).
class SocratesDb : public RowEngine {
 public:
  SocratesDb(Fabric* fabric, int page_servers = 2, EngineLogConfig log = {});

  /// XLOG -> page servers dissemination (runs off the commit path).
  Status PropagateLogs(NetContext* ctx);

  /// Checkpoints current pages to XStore (durability without fast copies).
  Status CheckpointToXStore(NetContext* ctx);

  size_t page_server_count() const { return page_services_.size(); }
  NodeId page_server_node(int i) const { return page_nodes_[i]; }
  ObjectStoreService* xstore() { return xstore_service_.get(); }

 private:
  Result<Page> FetchPage(NetContext* ctx, PageId id) override;
  Result<Page> FetchPageDegraded(NetContext* ctx, PageId id) override;

  Fabric* fabric_;
  NodeId xlog_node_ = 0;                     // 0 in shared-log mode
  LogStoreService* xlog_service_ = nullptr;  // owned by the sink; null shared
  std::vector<NodeId> page_nodes_;
  std::vector<std::unique_ptr<PageStoreService>> page_services_;
  NodeId xstore_node_ = 0;
  std::unique_ptr<ObjectStoreService> xstore_service_;
  Lsn propagated_lsn_ = kInvalidLsn;
};

/// Huawei Taurus (Sec. 2.1): logs and pages get *different* replication.
/// The writer appends to all log stores (majority ack) but propagates each
/// commit's redo to only ONE page store; gossip brings the others up to
/// date, trading write-path work for temporary page-store staleness.
class TaurusDb : public RowEngine {
 public:
  TaurusDb(Fabric* fabric, int log_stores = 3, int page_stores = 3,
           EngineLogConfig log = {});

  /// One gossip round among the page stores.
  size_t RunGossipRound(NetContext* ctx);
  bool PageStoresConverged() const { return gossip_->Converged(); }
  size_t page_store_count() const { return page_services_.size(); }
  NodeId page_store_node(int i) const { return page_nodes_[i]; }

 private:
  Result<Page> FetchPage(NetContext* ctx, PageId id) override;
  Result<Page> FetchPageDegraded(NetContext* ctx, PageId id) override;
  Status OnCommit(NetContext* ctx,
                  const std::vector<LogRecord>& records) override;

  Fabric* fabric_;
  std::vector<NodeId> page_nodes_;
  std::vector<std::unique_ptr<PageStoreService>> page_services_;
  std::unique_ptr<GossipGroup> gossip_;
  size_t next_page_store_ = 0;  // round-robin target
};

}  // namespace disagg

#endif  // DISAGG_CORE_ENGINES_H_
