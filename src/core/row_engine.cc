#include "core/row_engine.h"

#include "common/logging.h"
#include "log/shared_log.h"
#include "memnode/executor.h"
#include "txn/recovery.h"

namespace disagg {

RowEngine::RowEngine(std::unique_ptr<LogSink> sink)
    : sink_(std::move(sink)), wal_(sink_.get()), tm_(&wal_, &locks_) {}

RowEngine::~RowEngine() = default;

void RowEngine::AdoptSharedLog(std::unique_ptr<SharedLogService> shared_log) {
  owned_shared_log_ = std::move(shared_log);
}

void RowEngine::AdoptConcurrencyOffload(
    std::unique_ptr<ConcurrencyOffload> offload) {
  owned_offload_ = std::move(offload);
  tm_.set_lock_backend(owned_offload_->lock_client());
}

Result<Page*> RowEngine::GetPage(NetContext* ctx, PageId id) {
  auto it = buffer_.find(id);
  if (it != buffer_.end()) {
    ctx->Charge(InterconnectModel::LocalDram().ReadCost(kPageSize));
    return &it->second;
  }
  stats_.page_fetches++;
  DISAGG_ASSIGN_OR_RETURN(Page page, FetchPage(ctx, id));
  auto [nit, inserted] = buffer_.emplace(id, std::move(page));
  return &nit->second;
}

Result<Page*> RowEngine::GetPageForRead(NetContext* ctx, PageId id) {
  auto page = GetPage(ctx, id);
  if (page.ok() || !degrade_.enabled || !DegradeEligible(page.status())) {
    return page;
  }
  auto stale = FetchPageDegraded(ctx, id);
  if (!stale.ok()) return page.status();  // ladder exhausted: original error
  const Lsn required = RequiredPageLsn(id);
  const Lsn have = stale->lsn();
  const uint64_t staleness = required > have ? required - have : 0;
  if (staleness > degrade_.BoundFor(ctx->tenant)) return page.status();
  ctx->degraded_ops++;
  ctx->staleness_lsn += staleness;
  stats_.degraded_fetches++;
  degraded_scratch_ = std::move(*stale);
  return &*degraded_scratch_;
}

Result<Page*> RowEngine::PageForInsert(NetContext* ctx, size_t bytes) {
  if (insert_page_ != kInvalidPageId) {
    auto page = GetPage(ctx, insert_page_);
    if (page.ok() && (*page)->FreeSpace() >= bytes) return *page;
  }
  insert_page_ = next_page_id_++;
  auto [it, inserted] = buffer_.emplace(insert_page_, Page(insert_page_));
  return &it->second;
}

Status RowEngine::Insert(NetContext* ctx, TxnId txn, uint64_t key, Slice row) {
  DISAGG_RETURN_NOT_OK(tm_.LockExclusive(ctx, txn, key));
  if (index_.count(key)) return Status::InvalidArgument("key exists");
  DISAGG_ASSIGN_OR_RETURN(Page * page, PageForInsert(ctx, row.size()));
  const uint16_t slot = page->slot_count();
  const Lsn lsn = tm_.LogInsert(txn, page->page_id(), slot, row, key);
  auto got = page->Insert(row);
  if (!got.ok()) return got.status();
  DISAGG_CHECK(*got == slot);
  page->set_lsn(lsn);
  dirty_.insert(page->page_id());
  index_[key] = RowLoc{page->page_id(), slot};
  return Status::OK();
}

Status RowEngine::Update(NetContext* ctx, TxnId txn, uint64_t key, Slice row) {
  DISAGG_RETURN_NOT_OK(tm_.LockExclusive(ctx, txn, key));
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("no such key");
  DISAGG_ASSIGN_OR_RETURN(Page * page, GetPage(ctx, it->second.page));
  DISAGG_ASSIGN_OR_RETURN(Slice before, page->Get(it->second.slot));
  if (row.size() <= before.size()) {
    const Lsn lsn = tm_.LogUpdate(txn, page->page_id(), it->second.slot,
                                  before, row, key);
    DISAGG_RETURN_NOT_OK(page->Update(it->second.slot, row));
    page->set_lsn(lsn);
    dirty_.insert(page->page_id());
    return Status::OK();
  }
  // Grow-update: delete + insert elsewhere.
  const Lsn del_lsn = tm_.LogDelete(txn, page->page_id(), it->second.slot,
                                   before, key);
  DISAGG_RETURN_NOT_OK(page->Delete(it->second.slot));
  page->set_lsn(del_lsn);
  dirty_.insert(page->page_id());
  DISAGG_ASSIGN_OR_RETURN(Page * npage, PageForInsert(ctx, row.size()));
  const uint16_t slot = npage->slot_count();
  const Lsn ins_lsn = tm_.LogInsert(txn, npage->page_id(), slot, row, key);
  auto got = npage->Insert(row);
  if (!got.ok()) return got.status();
  npage->set_lsn(ins_lsn);
  dirty_.insert(npage->page_id());
  it->second = RowLoc{npage->page_id(), slot};
  return Status::OK();
}

Status RowEngine::Delete(NetContext* ctx, TxnId txn, uint64_t key) {
  DISAGG_RETURN_NOT_OK(tm_.LockExclusive(ctx, txn, key));
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("no such key");
  DISAGG_ASSIGN_OR_RETURN(Page * page, GetPage(ctx, it->second.page));
  DISAGG_ASSIGN_OR_RETURN(Slice before, page->Get(it->second.slot));
  const Lsn lsn = tm_.LogDelete(txn, page->page_id(), it->second.slot,
                                before, key);
  DISAGG_RETURN_NOT_OK(page->Delete(it->second.slot));
  page->set_lsn(lsn);
  dirty_.insert(page->page_id());
  index_.erase(it);
  return Status::OK();
}

Result<std::string> RowEngine::Read(NetContext* ctx, TxnId txn, uint64_t key) {
  // Explicit-transaction reads are strict: the transaction may go on to
  // write values computed from what it read, and a bounded-staleness input
  // would silently corrupt that write (lost update). Only the autocommit
  // read-only paths (`GetRow` / `GetRowReadOnly`) may use the degrade
  // ladder.
  return ReadImpl(ctx, txn, key, /*allow_degraded=*/false);
}

Result<std::string> RowEngine::ReadImpl(NetContext* ctx, TxnId txn,
                                        uint64_t key, bool allow_degraded) {
  DISAGG_RETURN_NOT_OK(tm_.LockShared(ctx, txn, key));
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("no such key");
  auto page = allow_degraded ? GetPageForRead(ctx, it->second.page)
                             : GetPage(ctx, it->second.page);
  if (!page.ok()) return page.status();
  DISAGG_ASSIGN_OR_RETURN(Slice row, (*page)->Get(it->second.slot));
  return row.ToString();
}

Status RowEngine::Commit(NetContext* ctx, TxnId txn) {
  const std::vector<LogRecord> records = tm_.PendingRecords(txn);
  DISAGG_RETURN_NOT_OK(tm_.Commit(ctx, txn));  // WAL flush = durability
  stats_.commits++;
  return OnCommit(ctx, records);
}

Status RowEngine::Abort(NetContext* ctx, TxnId txn) {
  const std::vector<LogRecord> undo = tm_.Abort(ctx, txn);  // newest first
  stats_.aborts++;
  for (const LogRecord& r : undo) {
    DISAGG_ASSIGN_OR_RETURN(Page * page, GetPage(ctx, r.page_id));
    switch (r.type) {
      case LogType::kInsert: {
        DISAGG_RETURN_NOT_OK(page->Delete(r.slot));
        auto iit = index_.find(r.row_key);
        if (iit != index_.end() && iit->second.page == r.page_id &&
            iit->second.slot == r.slot) {
          index_.erase(iit);
        }
        break;
      }
      case LogType::kUpdate:
        DISAGG_RETURN_NOT_OK(page->Update(r.slot, r.undo_payload));
        break;
      case LogType::kDelete: {
        // Undo of delete restores the row. Page slots are tombstoned and
        // never reused, so the row re-inserts into a fresh slot and the
        // index entry for the logged key is repointed there. The CLR must
        // carry the fresh slot so recovery can redo this exact rollback.
        auto slot = page->Insert(r.undo_payload);
        if (!slot.ok()) return slot.status();
        index_[r.row_key] = RowLoc{r.page_id, *slot};
        tm_.LogClr(txn, r.page_id, *slot, r.undo_payload, r.lsn);
        break;
      }
      default:
        break;
    }
    dirty_.insert(r.page_id);
  }
  return Status::OK();
}

Status RowEngine::Put(NetContext* ctx, uint64_t key, Slice row) {
  const TxnId txn = Begin();
  Status st = index_.count(key) ? Update(ctx, txn, key, row)
                                : Insert(ctx, txn, key, row);
  if (!st.ok()) {
    (void)Abort(ctx, txn);
    return st;
  }
  return Commit(ctx, txn);
}

Result<std::string> RowEngine::GetRow(NetContext* ctx, uint64_t key) {
  const TxnId txn = Begin();
  auto row = ReadImpl(ctx, txn, key, /*allow_degraded=*/true);
  if (!row.ok()) {
    (void)Abort(ctx, txn);
    return row.status();
  }
  DISAGG_RETURN_NOT_OK(Commit(ctx, txn));
  return row;
}

Result<std::string> RowEngine::GetRowReadOnly(NetContext* ctx, uint64_t key) {
  const TxnId txn = Begin();
  auto row = ReadImpl(ctx, txn, key, /*allow_degraded=*/true);
  tm_.EndReadOnly(ctx, txn);
  return row;
}

Lsn RowEngine::PageLsn(PageId id) const {
  auto it = buffer_.find(id);
  return it == buffer_.end() ? kInvalidLsn : it->second.lsn();
}

void RowEngine::DropBuffer() {
  buffer_.clear();
  dirty_.clear();
  insert_page_ = kInvalidPageId;
}

void RowEngine::NoteDurablePageLsns(const std::vector<LogRecord>& records) {
  for (const LogRecord& r : records) {
    if (r.page_id == kInvalidPageId) continue;
    Lsn& floor = durable_page_lsn_[r.page_id];
    floor = std::max(floor, r.lsn);
  }
}

Status RowEngine::CrashAndRecover(NetContext* ctx) {
  DISAGG_ASSIGN_OR_RETURN(std::vector<LogRecord> log, sink_->ReadAll(ctx));
  // No checkpoint: the simulated log tiers are never truncated, so a full
  // replay reproduces every page.
  auto out = AriesRecovery::Recover(log, {});
  if (!out.ok()) return out.status();
  DropBuffer();
  for (auto& [id, page] : out->pages) {
    buffer_.emplace(id, std::move(page));
  }
  return Status::OK();
}

}  // namespace disagg
