#ifndef DISAGG_CORE_SERVERLESS_DB_H_
#define DISAGG_CORE_SERVERLESS_DB_H_

#include <memory>
#include <unordered_map>

#include "memnode/shared_buffer_pool.h"
#include "storage/quorum.h"
#include "txn/txn_manager.h"

namespace disagg {

/// PolarDB Serverless (Sec. 3.1): storage disaggregation (quorum log on
/// shared storage) PLUS memory disaggregation — all data pages live in ONE
/// shared remote-memory buffer pool used by every compute node. Properties
/// reproduced:
///   - compute nodes hold no private buffers, only small validated caches,
///     so memory use does not multiply with the node count;
///   - secondary nodes see the newest pages without any log replay
///     (seqlock-coherent shared pool);
///   - compute crash/restart loses nothing and needs no page rebuild.
class ServerlessDb {
 public:
  /// Builds the shared infrastructure: memory pool + quorum storage.
  ServerlessDb(Fabric* fabric, size_t max_pages,
               ReplicatedSegment::Config storage_config = {});

  /// One compute node attached to the shared pool. Node 0 by convention is
  /// the single read-write primary (the paper's model); others are
  /// read-only secondaries.
  class Compute {
   public:
    Compute(ServerlessDb* db, size_t local_cache_pages, bool writer);

    Status Put(NetContext* ctx, uint64_t key, Slice row);
    Result<std::string> Get(NetContext* ctx, uint64_t key);

    const SharedBufferPoolClient::Stats& pool_stats() const {
      return pool_client_.stats();
    }

    /// Crash recovery for the shared pool: fences writers that died with a
    /// page seqlock held (see SharedBufferPoolClient::FenceCrashedWriters).
    /// A freshly attached compute runs this before serving.
    Status FencePoolWriters(NetContext* ctx, uint64_t* repaired = nullptr) {
      return pool_client_.FenceCrashedWriters(ctx, repaired);
    }

   private:
    ServerlessDb* db_;
    SharedBufferPoolClient pool_client_;
    bool writer_;
  };

  std::unique_ptr<Compute> AttachCompute(size_t local_cache_pages,
                                         bool writer);

  MemoryNode* pool() { return pool_.get(); }
  ReplicatedSegment* storage() { return segment_.get(); }
  size_t row_count() const { return index_.size(); }

 private:
  friend class Compute;

  struct RowLoc {
    PageId page;
    uint16_t slot;
  };

  Fabric* fabric_;
  std::unique_ptr<MemoryNode> pool_;
  std::unique_ptr<SharedBufferPoolHome> home_;
  std::unique_ptr<ReplicatedSegment> segment_;
  // Shared metadata service (index + page fill state + WAL).
  std::unordered_map<uint64_t, RowLoc> index_;
  PageId next_page_id_ = 1;
  PageId insert_page_ = kInvalidPageId;
  Lsn next_lsn_ = 1;
};

}  // namespace disagg

#endif  // DISAGG_CORE_SERVERLESS_DB_H_
