#ifndef DISAGG_CORE_ROW_ENGINE_H_
#define DISAGG_CORE_ROW_ENGINE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>

#include "net/slo_controller.h"
#include "txn/txn_manager.h"

namespace disagg {

class SharedLogService;
class ConcurrencyOffload;

/// Opt-in graceful-degradation ladder for the buffer-miss *read* path: when
/// the strict fetch fails with `Busy`/`Unavailable`/`TimedOut`, the read is
/// served from the freshest reachable replica copy instead — provided its
/// LSN is within `max_staleness_lsn` of the page's `RequiredPageLsn` floor.
/// Accepted copies are accounted in `NetContext::degraded_ops` /
/// `staleness_lsn` and `EngineStats::degraded_fetches`, are never installed
/// in the write-path buffer, and are never used by writes. Only the
/// autocommit read-only path (`GetRow` / `GetRowReadOnly`) degrades: an
/// explicit transaction
/// may write values computed from its reads, and a stale input there would
/// silently corrupt the write — the read-only-session restriction real
/// bounded-staleness replicas impose. Disabled by default: no code path or
/// counter changes until `enabled` is set.
struct DegradePolicy {
  bool enabled = false;
  /// Max LSN staleness a degraded copy may carry below the required floor.
  /// 0 still helps: it admits exactly-fresh copies the strict path could
  /// not reach (e.g. replicas skipped for lagging acks or congestion).
  uint64_t max_staleness_lsn = 0;

  /// Per-tenant overrides of `max_staleness_lsn`, actuated at epoch
  /// barriers by the SLO controller (`SloController::AddDegradeTarget`): a
  /// tenant that cannot meet its latency target with weight and admission
  /// alone is granted a looser freshness bound than the engine-wide one.
  /// Tenants absent here use `max_staleness_lsn`; an empty map keeps the
  /// read path bit-identical to the pre-override ladder.
  std::map<uint32_t, uint64_t> tenant_staleness_lsn = {};

  uint64_t BoundFor(uint32_t tenant) const {
    auto it = tenant_staleness_lsn.find(tenant);
    return it == tenant_staleness_lsn.end() ? max_staleness_lsn : it->second;
  }
};

/// Shared OLTP engine core: a keyed row store (uint64 key -> byte-string
/// row) on slotted pages with strict 2PL and ARIES-style logging. The
/// surveyed architectures differ ONLY in the two virtual hooks:
///
///   - where the write-ahead log goes (the LogSink passed in), and
///   - what happens to data pages (`FetchPage` miss path + `OnCommit`
///     shipping hook).
///
/// Monolithic: local WAL + local pages.  Aurora: quorum WAL and *nothing*
/// shipped at commit — the log is the database.  PolarDB: Raft WAL + whole
/// pages shipped.  Socrates: XLOG WAL, page servers fed from the log,
/// checkpoints to XStore.  Taurus: replicated log stores + single-page-store
/// propagation with gossip.
class RowEngine : public StalenessActuator {
 public:
  struct EngineStats {
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t page_fetches = 0;
    uint64_t degraded_fetches = 0;  ///< reads served by the degrade ladder
  };

  virtual ~RowEngine();  // out-of-line: owned_shared_log_ is forward-declared

  // -- Transactions ---------------------------------------------------
  TxnId Begin() { return tm_.Begin(); }
  Status Insert(NetContext* ctx, TxnId txn, uint64_t key, Slice row);
  Status Update(NetContext* ctx, TxnId txn, uint64_t key, Slice row);
  Status Delete(NetContext* ctx, TxnId txn, uint64_t key);
  Result<std::string> Read(NetContext* ctx, TxnId txn, uint64_t key);
  Status Commit(NetContext* ctx, TxnId txn);
  Status Abort(NetContext* ctx, TxnId txn);

  // -- Autocommit convenience ------------------------------------------
  Status Put(NetContext* ctx, uint64_t key, Slice row);
  Result<std::string> GetRow(NetContext* ctx, uint64_t key);

  /// `GetRow` without the durability round-trip: the transaction is
  /// read-only by construction, so ending it is just lock release — no
  /// commit record, no WAL flush, no log-quorum traffic. This is the read
  /// path an overloaded replica-read client wants: it may serve from the
  /// degrade ladder (same rules as `GetRow`) and it cannot be failed by
  /// log-tier congestion it never touches.
  Result<std::string> GetRowReadOnly(NetContext* ctx, uint64_t key);

  /// Location of a row (the shared metadata reader nodes consult).
  struct RowLoc {
    PageId page = kInvalidPageId;
    uint16_t slot = 0;
  };
  Result<RowLoc> Lookup(uint64_t key) const {
    auto it = index_.find(key);
    if (it == index_.end()) return Status::NotFound("no such key");
    return it->second;
  }

  size_t row_count() const { return index_.size(); }
  const EngineStats& stats() const { return stats_; }

  /// Installs (or clears) the read-path degrade ladder. Takes effect for
  /// subsequent reads only; writes never consult it.
  void set_degrade_policy(DegradePolicy policy) { degrade_ = policy; }
  const DegradePolicy& degrade_policy() const { return degrade_; }

  /// `StalenessActuator`: the SLO controller's third (last-resort) actuator.
  /// Moves only the per-tenant staleness bound — whether the ladder exists
  /// at all stays an operator decision (`set_degrade_policy`). Called only
  /// at epoch barriers while simulation workers are parked, so the plain
  /// map write needs no lock. `lsn == 0` erases the override rather than
  /// storing it: bound 0 is already the map-absent default, and erasing
  /// restores bit-parity with a never-controlled run.
  void SetTenantStaleness(uint32_t tenant, uint64_t max_staleness_lsn) override {
    if (max_staleness_lsn == 0) {
      degrade_.tenant_staleness_lsn.erase(tenant);
    } else {
      degrade_.tenant_staleness_lsn[tenant] = max_staleness_lsn;
    }
  }
  WalManager* wal() { return &wal_; }
  LogSink* sink() { return sink_.get(); }

  /// Takes ownership of the shared-log fleet backing this engine's sink
  /// (registry-built "+slog" variants), tying its lifetime to the engine's.
  void AdoptSharedLog(std::unique_ptr<SharedLogService> shared_log);
  /// The adopted shared-log service, or null for legacy-log engines.
  SharedLogService* shared_log() { return owned_shared_log_.get(); }

  /// Takes ownership of a memory-node concurrency-offload bundle
  /// (registry-built "+offload" variants) and rewires the transaction
  /// manager's lock backend onto its `OffloadedLockClient`: every row-lock
  /// acquire/release becomes one RPC to the memory-node lock table instead
  /// of a compute-local map operation. Config-time only — call before any
  /// transaction begins. Engines that never adopt keep the compute-local
  /// `LockManager` with bit-identical behavior and counters.
  void AdoptConcurrencyOffload(std::unique_ptr<ConcurrencyOffload> offload);
  /// The adopted offload bundle, or null for local-lock engines.
  ConcurrencyOffload* concurrency_offload() { return owned_offload_.get(); }

  /// LSN of the newest buffered image of `id` (metadata for reader nodes).
  Lsn PageLsn(PageId id) const;

  /// Drops the local page buffer (compute crash / restart simulation);
  /// the index survives as it models the shared metadata service.
  void DropBuffer();

  /// Durable-LSN floor a fetched copy of `id` must carry for a read to be
  /// safe: the highest LSN of this page whose effects a committed
  /// transaction made durable beyond the local buffer. Fetch paths use it
  /// to reject stale replicas under faults (kInvalidLsn when untracked).
  Lsn RequiredPageLsn(PageId id) const {
    auto it = durable_page_lsn_.find(id);
    return it == durable_page_lsn_.end() ? kInvalidLsn : it->second;
  }

  /// Full compute restart: drops the buffer and rebuilds page images by
  /// ARIES-replaying the durable log tier (`sink()->ReadAll`), installing
  /// the recovered pages as the new buffer contents. The architectures
  /// whose remote page tiers cannot be trusted after a faulty run (partial
  /// page shipping) recover through this path, exactly like their real
  /// counterparts replay the WAL.
  Status CrashAndRecover(NetContext* ctx);

 protected:
  // Out-of-line like the destructor: owned_shared_log_ is forward-declared.
  explicit RowEngine(std::unique_ptr<LogSink> sink);

  /// Buffer-miss path: where this architecture reads pages from.
  virtual Result<Page> FetchPage(NetContext* ctx, PageId id) = 0;

  /// Degrade-ladder fallback: the freshest copy of `id` any reachable
  /// replica holds, with NO freshness gate — the caller (`GetPageForRead`)
  /// decides whether its LSN is tolerably stale. Engines with replicated
  /// page tiers override this; the default ends the ladder immediately.
  virtual Result<Page> FetchPageDegraded(NetContext* ctx, PageId id) {
    (void)ctx;
    (void)id;
    return Status::NotSupported("engine has no degraded fetch path");
  }

  /// Post-durability hook: ship pages / redo records per architecture.
  /// `records` are this transaction's stamped data records.
  virtual Status OnCommit(NetContext* ctx,
                          const std::vector<LogRecord>& records) {
    (void)ctx;
    (void)records;
    return Status::OK();
  }

  Result<Page*> GetPage(NetContext* ctx, PageId id);

  /// `GetPage` plus the degrade ladder: on an eligible strict-path failure
  /// with a policy enabled, falls back to a bounded-staleness replica copy
  /// held in a read-only scratch slot (never the buffer, so writes cannot
  /// see it). Only read-only paths use this; write paths and transactional
  /// reads stay on `GetPage`.
  Result<Page*> GetPageForRead(NetContext* ctx, PageId id);

  /// Shared body of `Read`/`GetRow`: `allow_degraded` selects between the
  /// strict fetch and the degrade ladder.
  Result<std::string> ReadImpl(NetContext* ctx, TxnId txn, uint64_t key,
                               bool allow_degraded);

  /// True when `st` is a failure the degrade ladder may absorb (the
  /// `Busy`/`Unavailable`/`TimedOut` contract in `src/net/verb.h`).
  static bool DegradeEligible(const Status& st) {
    return st.IsBusy() || st.IsUnavailable() || st.IsTimedOut();
  }

  /// Page with room for `bytes`, appending a fresh page when needed.
  Result<Page*> PageForInsert(NetContext* ctx, size_t bytes);

  /// Marks `records`' pages durably covered up to their LSNs. Engines call
  /// this from OnCommit once the transaction's page effects are
  /// recoverable outside the local buffer. Survives DropBuffer (it models
  /// metadata-service state, like the row index).
  void NoteDurablePageLsns(const std::vector<LogRecord>& records);

  std::unique_ptr<LogSink> sink_;
  /// Owned shared-log fleet when built via the registry's "+slog" names
  /// (declared after sink_, destroyed first: the sink never dereferences
  /// the service — it only holds the fabric pointer and node ids).
  std::unique_ptr<SharedLogService> owned_shared_log_;
  /// Owned memory-node lock offload when built via "+offload" names
  /// (forward-declared like the shared log; destroyed before tm_ is never
  /// a hazard — tm_ only calls it during transactions, which end before
  /// teardown).
  std::unique_ptr<ConcurrencyOffload> owned_offload_;
  WalManager wal_;
  LockManager locks_;
  TxnManager tm_;
  std::unordered_map<uint64_t, RowLoc> index_;
  std::unordered_map<PageId, Lsn> durable_page_lsn_;
  std::map<PageId, Page> buffer_;
  std::set<PageId> dirty_;
  PageId next_page_id_ = 1;
  PageId insert_page_ = kInvalidPageId;
  EngineStats stats_;
  DegradePolicy degrade_;
  /// Last degraded read's page image: read-only, outside the buffer so the
  /// write path never builds on a stale copy. Valid until the next read.
  std::optional<Page> degraded_scratch_;
};

}  // namespace disagg

#endif  // DISAGG_CORE_ROW_ENGINE_H_
