#include "core/platform.h"

namespace disagg {

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMonolithic:
      return "monolithic";
    case EngineKind::kAurora:
      return "aurora";
    case EngineKind::kPolar:
      return "polardb";
    case EngineKind::kSocrates:
      return "socrates";
    case EngineKind::kTaurus:
      return "taurus";
  }
  return "unknown";
}

std::unique_ptr<RowEngine> MakeEngine(Fabric* fabric, EngineKind kind) {
  switch (kind) {
    case EngineKind::kMonolithic:
      return std::make_unique<MonolithicDb>();
    case EngineKind::kAurora:
      return std::make_unique<AuroraDb>(fabric);
    case EngineKind::kPolar:
      return std::make_unique<PolarDb>(fabric);
    case EngineKind::kSocrates:
      return std::make_unique<SocratesDb>(fabric);
    case EngineKind::kTaurus:
      return std::make_unique<TaurusDb>(fabric);
  }
  return nullptr;
}

}  // namespace disagg
