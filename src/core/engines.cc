#include "core/engines.h"

#include <cstdlib>

#include "common/logging.h"

namespace disagg {

namespace {

/// Quorum sink that owns its segment (so the sink's lifetime covers the
/// engine's).
class OwningQuorumSink : public LogSink {
 public:
  OwningQuorumSink(Fabric* fabric, const ReplicatedSegment::Config& config)
      : fabric_(fabric),
        segment_(std::make_unique<ReplicatedSegment>(fabric, config,
                                                     "aurora-seg")) {}

  ReplicatedSegment* segment() { return segment_.get(); }

  Result<Lsn> Append(NetContext* ctx,
                     const std::vector<LogRecord>& records) override {
    return segment_->AppendLog(ctx, records);
  }
  Result<std::vector<LogRecord>> ReadAll(NetContext* ctx) override {
    // Under fault schedules individual replicas may lag, so stream from the
    // replica with the highest durable LSN (client-side resync keeps each
    // replica's log gap-free, so "highest" also means "most complete").
    // Both the parallel tail probes and the full read ride Fabric::Execute:
    // recovery traffic is charged, traced and fault-injected like any other.
    std::vector<NetContext> branch(segment_->replica_count(), ctx->Fork());
    size_t best = 0;
    Lsn best_lsn = kInvalidLsn;
    bool reachable = false;
    for (size_t i = 0; i < segment_->replica_count(); i++) {
      LogStoreClient probe(fabric_, segment_->replica(i).node);
      auto lsn = probe.DurableLsn(&branch[i]);
      if (!lsn.ok()) continue;
      if (!reachable || *lsn > best_lsn) {
        reachable = true;
        best = i;
        best_lsn = *lsn;
      }
    }
    JoinParallel(ctx, branch.data(), branch.size());
    if (!reachable) return Status::Unavailable("no segment replica reachable");
    LogStoreClient reader(fabric_, segment_->replica(best).node);
    return reader.ReadFrom(ctx, 0, ~0ull);
  }

 private:
  Fabric* fabric_;
  std::unique_ptr<ReplicatedSegment> segment_;
};

/// PolarFS sink: the WAL rides a 3-way RaftLite replication group.
class RaftLogSink : public LogSink {
 public:
  explicit RaftLogSink(Fabric* fabric)
      : raft_(std::make_unique<RaftLiteGroup>(fabric, 3,
                                              InterconnectModel::Ssd(),
                                              "polarfs")) {}

  RaftLiteGroup* raft() { return raft_.get(); }

  Result<Lsn> Append(NetContext* ctx,
                     const std::vector<LogRecord>& records) override {
    auto idx = raft_->Append(ctx, LogRecord::EncodeBatch(records));
    if (!idx.ok()) return idx.status();
    Lsn max_lsn = kInvalidLsn;
    for (const LogRecord& r : records) max_lsn = std::max(max_lsn, r.lsn);
    return max_lsn;
  }

  Result<std::vector<LogRecord>> ReadAll(NetContext* ctx) override {
    std::vector<LogRecord> out;
    for (uint64_t i = 0;; i++) {
      auto entry = raft_->ReadCommitted(ctx, i);
      if (entry.status().IsNotFound()) break;  // past the committed tail
      if (!entry.ok()) return entry.status();
      auto batch = LogRecord::DecodeBatch(entry->payload);
      if (!batch.ok()) return batch.status();
      for (LogRecord& r : *batch) out.push_back(std::move(r));
    }
    return out;
  }

 private:
  std::unique_ptr<RaftLiteGroup> raft_;
};

/// XLOG sink: one fast log service node (Socrates' log tier).
class XlogSink : public LogSink {
 public:
  explicit XlogSink(Fabric* fabric) {
    node_ = fabric->AddNode("xlog", NodeKind::kLog, InterconnectModel::Ssd());
    service_ = std::make_unique<LogStoreService>(fabric, node_);
    client_ = std::make_unique<LogStoreClient>(fabric, node_);
  }

  NodeId node() const { return node_; }
  LogStoreService* service() { return service_.get(); }

  Result<Lsn> Append(NetContext* ctx,
                     const std::vector<LogRecord>& records) override {
    return client_->Append(ctx, records);
  }
  Result<std::vector<LogRecord>> ReadAll(NetContext* ctx) override {
    return client_->ReadFrom(ctx, 0, ~0ull);
  }
  Result<std::vector<LogRecord>> ReadFrom(NetContext* ctx,
                                          Lsn from_exclusive) override {
    return client_->ReadFrom(ctx, from_exclusive, ~0ull);
  }

 private:
  NodeId node_ = 0;
  std::unique_ptr<LogStoreService> service_;
  std::unique_ptr<LogStoreClient> client_;
};

/// Taurus sink: N log stores, majority ack, parallel fan-out.
class MultiLogSink : public LogSink {
 public:
  MultiLogSink(Fabric* fabric, int n) : fabric_(fabric) {
    for (int i = 0; i < n; i++) {
      NodeId node = fabric->AddNode("taurus-log" + std::to_string(i),
                                    NodeKind::kLog, InterconnectModel::Ssd());
      services_.push_back(std::make_unique<LogStoreService>(fabric, node));
      nodes_.push_back(node);
    }
  }

  Result<Lsn> Append(NetContext* ctx,
                     const std::vector<LogRecord>& records) override {
    std::vector<NetContext> branch(nodes_.size(), ctx->Fork());
    int acks = 0;
    Lsn lsn = kInvalidLsn;
    for (size_t i = 0; i < nodes_.size(); i++) {
      LogStoreClient client(fabric_, nodes_[i]);
      auto r = client.Append(&branch[i], records);
      if (r.ok()) {
        acks++;
        lsn = std::max(lsn, *r);
      }
    }
    JoinParallel(ctx, branch.data(), branch.size());
    const int majority = static_cast<int>(nodes_.size()) / 2 + 1;
    if (acks < majority) return Status::Unavailable("log-store majority lost");
    return lsn;
  }

  Result<std::vector<LogRecord>> ReadAll(NetContext* ctx) override {
    // Majority ack means no single store is guaranteed complete; merge the
    // reachable stores' logs (dedup by LSN) the way Taurus' recovery scans
    // its log-store fleet.
    std::map<Lsn, LogRecord> merged;
    size_t reachable = 0;
    for (size_t i = 0; i < nodes_.size(); i++) {
      LogStoreClient client(fabric_, nodes_[i]);
      auto r = client.ReadFrom(ctx, 0, ~0ull);
      if (!r.ok()) continue;
      reachable++;
      for (LogRecord& rec : *r) merged.emplace(rec.lsn, std::move(rec));
    }
    if (reachable == 0) return Status::Unavailable("no log store reachable");
    std::vector<LogRecord> out;
    out.reserve(merged.size());
    for (auto& [lsn, rec] : merged) out.push_back(std::move(rec));
    return out;
  }

 private:
  Fabric* fabric_;
  std::vector<NodeId> nodes_;
  std::vector<std::unique_ptr<LogStoreService>> services_;
};

/// Freshest "ckpt/<lsn>/<page>" key for `id` among `keys` (empty if none).
struct CheckpointRef {
  std::string key;
  Lsn lsn = kInvalidLsn;
};

CheckpointRef FreshestCheckpoint(const std::vector<std::string>& keys,
                                 PageId id) {
  const std::string suffix = "/" + std::to_string(id);
  CheckpointRef best;
  for (const std::string& key : keys) {
    if (key.size() < suffix.size() ||
        key.compare(key.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    const Lsn lsn = std::strtoull(key.c_str() + 5, nullptr, 10);
    if (best.key.empty() || lsn > best.lsn) {
      best.key = key;
      best.lsn = lsn;
    }
  }
  return best;
}

bool UseShared(const EngineLogConfig& log) {
  return log.mode == EngineLogConfig::Mode::kShared;
}

/// Sink for shared-log mode: one tag of the configured SharedLogService.
/// Legacy sinks construct their private log tier (fabric nodes included) as
/// a side effect, so the selection must happen before sink construction —
/// a shared-mode engine never instantiates its legacy tier at all.
std::unique_ptr<LogSink> SharedSink(const EngineLogConfig& log) {
  DISAGG_CHECK(log.shared_log != nullptr);
  return std::make_unique<SharedLogBackend>(log.shared_log->fabric(),
                                            log.shared_log, log.tag);
}

/// Shared degraded-fetch shape: parallel freshest-wins over a page-store
/// fleet with no freshness gate (the ladder's staleness bound is judged by
/// the caller against the returned page's own LSN).
Result<Page> FreshestFromStores(Fabric* fabric, NetContext* ctx,
                                const std::vector<NodeId>& nodes, PageId id) {
  std::vector<NetContext> branch(nodes.size(), ctx->Fork());
  Result<Page> best = Status::Unavailable("no page store reachable");
  for (size_t i = 0; i < nodes.size(); i++) {
    PageStoreClient client(fabric, nodes[i]);
    auto page = client.GetPage(&branch[i], id);
    if (page.ok() && (!best.ok() || page->lsn() > best->lsn())) {
      best = std::move(page);
    }
  }
  JoinParallel(ctx, branch.data(), branch.size());
  return best;
}

}  // namespace

// ---------------------------------------------------------------- Monolithic

MonolithicDb::MonolithicDb(EngineLogConfig log)
    : RowEngine(UseShared(log)
                    ? SharedSink(log)
                    : std::unique_ptr<LogSink>(
                          std::make_unique<LocalDiskSink>())),
      disk_(InterconnectModel::Ssd()) {}

Result<Page> MonolithicDb::FetchPage(NetContext* ctx, PageId id) {
  return disk_.FetchPage(ctx, id);
}

Status MonolithicDb::CheckpointPages(NetContext* ctx) {
  for (PageId id : dirty_) {
    auto it = buffer_.find(id);
    if (it == buffer_.end()) continue;
    DISAGG_RETURN_NOT_OK(disk_.WritePage(ctx, it->second));
  }
  dirty_.clear();
  return Status::OK();
}

// -------------------------------------------------------------------- Aurora

AuroraDb::AuroraDb(Fabric* fabric, ReplicatedSegment::Config config,
                   EngineLogConfig log)
    : RowEngine(UseShared(log)
                    ? SharedSink(log)
                    : std::unique_ptr<LogSink>(
                          std::make_unique<OwningQuorumSink>(fabric, config))),
      fabric_(fabric),
      segment_(UseShared(log)
                   ? nullptr
                   : static_cast<OwningQuorumSink*>(sink_.get())->segment()) {
  if (UseShared(log)) {
    // The smart segment materialized pages from the log as a side effect of
    // appending; with the WAL on the shared (dumb) log fleet, a dedicated
    // page-materialization fleet takes that job, fed from OnCommit.
    for (int i = 0; i < kSharedPageReplicas; i++) {
      NodeId node = fabric_->AddNode("aurora-ps" + std::to_string(i),
                                     NodeKind::kStorage,
                                     InterconnectModel::Ssd(),
                                     static_cast<uint32_t>(i));
      page_nodes_.push_back(node);
      page_services_.push_back(
          std::make_unique<PageStoreService>(fabric_, node));
    }
  }
}

Result<Page> AuroraDb::FetchPage(NetContext* ctx, PageId id) {
  // Replicas materialize pages independently, so under faults some may lag;
  // never accept a copy older than what committed transactions made durable.
  const Lsn required = RequiredPageLsn(id);
  if (segment_ != nullptr) return segment_->ReadPage(ctx, id, required);
  for (NodeId node : page_nodes_) {
    PageStoreClient client(fabric_, node);
    auto page = client.GetPage(ctx, id);
    if (page.ok()) {
      if (page->lsn() >= required) return page;
      continue;  // stale replica (missed an ApplyLog under faults)
    }
    if (page.status().IsNotFound() && required == kInvalidLsn) return page;
  }
  return Status::Unavailable("no sufficiently fresh page replica reachable");
}

Result<Page> AuroraDb::FetchPageDegraded(NetContext* ctx, PageId id) {
  if (segment_ != nullptr) return segment_->ReadPageFreshest(ctx, id);
  return FreshestFromStores(fabric_, ctx, page_nodes_, id);
}

Status AuroraDb::OnCommit(NetContext* ctx,
                          const std::vector<LogRecord>& records) {
  if (segment_ == nullptr && !records.empty()) {
    // Shared-log mode: the log fleet is dumb storage, so redo reaches the
    // page-materialization replicas here (parallel fan-out, all copies).
    std::vector<NetContext> branch(page_nodes_.size(), ctx->Fork());
    for (size_t i = 0; i < page_nodes_.size(); i++) {
      PageStoreClient client(fabric_, page_nodes_[i]);
      DISAGG_RETURN_NOT_OK(client.ApplyLog(&branch[i], records).status());
    }
    JoinParallel(ctx, branch.data(), branch.size());
  }
  // Legacy mode ships nothing — the log IS the database. Either way the
  // durable tier now covers these pages up to their LSNs, so record the
  // freshness floor fetches must meet.
  NoteDurablePageLsns(records);
  return Status::OK();
}

AuroraReader::AuroraReader(AuroraDb* writer, size_t cache_pages)
    : writer_(writer), cache_capacity_(cache_pages) {
  // Readers revalidate against the writer's segment; the shared-log writer
  // has none (its page fleet serves FetchPage instead).
  DISAGG_CHECK(writer->segment() != nullptr);
}

Result<std::string> AuroraReader::Get(NetContext* ctx, uint64_t key) {
  DISAGG_ASSIGN_OR_RETURN(RowEngine::RowLoc loc, writer_->Lookup(key));
  const Lsn required = writer_->PageLsn(loc.page);
  auto it = cache_.find(loc.page);
  if (it != cache_.end() && it->second.lsn() >= required) {
    cache_hits_++;
    ctx->Charge(InterconnectModel::LocalDram().ReadCost(kPageSize));
  } else {
    segment_reads_++;
    DISAGG_ASSIGN_OR_RETURN(Page page,
                            writer_->segment()->ReadPage(ctx, loc.page,
                                                         required));
    if (cache_.size() >= cache_capacity_ && it == cache_.end()) {
      cache_.erase(cache_.begin());
    }
    it = cache_.insert_or_assign(loc.page, std::move(page)).first;
  }
  DISAGG_ASSIGN_OR_RETURN(Slice row, it->second.Get(loc.slot));
  return row.ToString();
}

// -------------------------------------------------------------------- Polar

PolarDb::PolarDb(Fabric* fabric, EngineLogConfig log)
    : RowEngine(UseShared(log)
                    ? SharedSink(log)
                    : std::unique_ptr<LogSink>(
                          std::make_unique<RaftLogSink>(fabric))),
      fabric_(fabric),
      raft_(UseShared(log)
                ? nullptr
                : static_cast<RaftLogSink*>(sink_.get())->raft()) {
  for (int i = 0; i < kPageReplicas; i++) {
    NodeId node = fabric_->AddNode("polar-pages" + std::to_string(i),
                                   NodeKind::kStorage,
                                   InterconnectModel::Ssd(),
                                   static_cast<uint32_t>(i));
    page_nodes_.push_back(node);
    page_services_.push_back(std::make_unique<PageStoreService>(fabric_, node));
  }
}

Result<Page> PolarDb::FetchPage(NetContext* ctx, PageId id) {
  const Lsn required = RequiredPageLsn(id);
  for (NodeId node : page_nodes_) {
    PageStoreClient client(fabric_, node);
    auto page = client.GetPage(ctx, id);
    if (page.ok()) {
      if (page->lsn() >= required) return page;
      continue;  // stale replica (missed a PutPage under faults); keep looking
    }
    // A replica that has never seen the page is authoritative only when no
    // committed transaction is known to have shipped it.
    if (page.status().IsNotFound() && required == kInvalidLsn) return page;
  }
  return Status::Unavailable("no sufficiently fresh page replica reachable");
}

Result<Page> PolarDb::FetchPageDegraded(NetContext* ctx, PageId id) {
  return FreshestFromStores(fabric_, ctx, page_nodes_, id);
}

Status PolarDb::OnCommit(NetContext* ctx,
                         const std::vector<LogRecord>& records) {
  // PolarDB ships whole page images in addition to the log.
  std::set<PageId> touched;
  for (const LogRecord& r : records) {
    if (r.page_id != kInvalidPageId) touched.insert(r.page_id);
  }
  std::vector<NetContext> branch(page_nodes_.size(), ctx->Fork());
  for (PageId id : touched) {
    auto it = buffer_.find(id);
    if (it == buffer_.end()) continue;
    for (size_t i = 0; i < page_nodes_.size(); i++) {
      PageStoreClient client(fabric_, page_nodes_[i]);
      DISAGG_RETURN_NOT_OK(client.PutPage(&branch[i], it->second));
    }
    dirty_.erase(id);
  }
  JoinParallel(ctx, branch.data(), branch.size());
  // Every touched page now sits on all replicas at its commit LSN.
  NoteDurablePageLsns(records);
  return Status::OK();
}

// ------------------------------------------------------------------ Socrates

SocratesDb::SocratesDb(Fabric* fabric, int page_servers, EngineLogConfig log)
    : RowEngine(UseShared(log)
                    ? SharedSink(log)
                    : std::unique_ptr<LogSink>(
                          std::make_unique<XlogSink>(fabric))),
      fabric_(fabric) {
  if (!UseShared(log)) {
    auto* sink = static_cast<XlogSink*>(sink_.get());
    xlog_node_ = sink->node();
    xlog_service_ = sink->service();
  }
  for (int i = 0; i < page_servers; i++) {
    NodeId node = fabric_->AddNode("socrates-ps" + std::to_string(i),
                                   NodeKind::kStorage,
                                   InterconnectModel::Ssd());
    page_nodes_.push_back(node);
    page_services_.push_back(std::make_unique<PageStoreService>(fabric_, node));
  }
  xstore_node_ = fabric_->AddNode("xstore", NodeKind::kObject,
                                  InterconnectModel::ObjectStore());
  xstore_service_ = std::make_unique<ObjectStoreService>(fabric_, xstore_node_);
}

Status SocratesDb::PropagateLogs(NetContext* ctx) {
  // The sink is the durable log tier — XLOG in legacy mode, a shared-log
  // tag otherwise; dissemination reads whichever through the same surface.
  DISAGG_ASSIGN_OR_RETURN(std::vector<LogRecord> records,
                          sink_->ReadFrom(ctx, propagated_lsn_));
  if (records.empty()) return Status::OK();
  std::vector<NetContext> branch(page_nodes_.size(), ctx->Fork());
  for (size_t i = 0; i < page_nodes_.size(); i++) {
    PageStoreClient client(fabric_, page_nodes_[i]);
    DISAGG_RETURN_NOT_OK(client.ApplyLog(&branch[i], records).status());
  }
  JoinParallel(ctx, branch.data(), branch.size());
  propagated_lsn_ = records.back().lsn;
  // The availability tier now holds these pages at their logged LSNs.
  NoteDurablePageLsns(records);
  return Status::OK();
}

Status SocratesDb::CheckpointToXStore(NetContext* ctx) {
  ObjectStoreClient xstore(fabric_, xstore_node_);
  for (auto& [id, page] : buffer_) {
    Page sealed = page;
    sealed.Seal();
    const std::string key = "ckpt/" + std::to_string(sealed.lsn()) + "/" +
                            std::to_string(id);
    Status st = xstore.Put(ctx, key, Slice(sealed.data(), kPageSize));
    if (!st.ok() && !st.IsInvalidArgument()) return st;  // exists = already
  }
  return Status::OK();
}

Result<Page> SocratesDb::FetchPage(NetContext* ctx, PageId id) {
  const Lsn required = RequiredPageLsn(id);
  for (NodeId node : page_nodes_) {
    PageStoreClient client(fabric_, node);
    auto page = client.GetPage(ctx, id);
    if (page.ok() && page->lsn() >= required) return page;
  }
  // Availability tier empty: fall back to the durable XStore checkpoint.
  ObjectStoreClient xstore(fabric_, xstore_node_);
  DISAGG_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                          xstore.List(ctx, "ckpt/"));
  const CheckpointRef best = FreshestCheckpoint(keys, id);
  if (best.key.empty()) {
    return required == kInvalidLsn
               ? Status::NotFound("page in no tier")
               : Status::Unavailable("no sufficiently fresh copy in any tier");
  }
  if (best.lsn < required) {
    return Status::Unavailable("checkpoint older than durable commits");
  }
  DISAGG_ASSIGN_OR_RETURN(std::string blob, xstore.Get(ctx, best.key));
  return Page::FromBytes(blob);
}

Result<Page> SocratesDb::FetchPageDegraded(NetContext* ctx, PageId id) {
  auto best = FreshestFromStores(fabric_, ctx, page_nodes_, id);
  if (best.ok()) return best;
  // No page server reachable: the freshest checkpoint, however old, is the
  // last rung of the ladder.
  ObjectStoreClient xstore(fabric_, xstore_node_);
  auto keys = xstore.List(ctx, "ckpt/");
  if (!keys.ok()) return best;
  const CheckpointRef ckpt = FreshestCheckpoint(*keys, id);
  if (ckpt.key.empty()) return best;
  auto blob = xstore.Get(ctx, ckpt.key);
  if (!blob.ok()) return best;
  return Page::FromBytes(*blob);
}

// -------------------------------------------------------------------- Taurus

TaurusDb::TaurusDb(Fabric* fabric, int log_stores, int page_stores,
                   EngineLogConfig log)
    : RowEngine(UseShared(log)
                    ? SharedSink(log)
                    : std::unique_ptr<LogSink>(
                          std::make_unique<MultiLogSink>(fabric, log_stores))),
      fabric_(fabric) {
  std::vector<PageStoreService*> raw;
  for (int i = 0; i < page_stores; i++) {
    NodeId node = fabric_->AddNode("taurus-ps" + std::to_string(i),
                                   NodeKind::kStorage,
                                   InterconnectModel::Ssd());
    page_nodes_.push_back(node);
    page_services_.push_back(std::make_unique<PageStoreService>(fabric_, node));
    raw.push_back(page_services_.back().get());
  }
  gossip_ = std::make_unique<GossipGroup>(fabric_, raw);
}

Status TaurusDb::OnCommit(NetContext* ctx,
                          const std::vector<LogRecord>& records) {
  // Each page has ONE home page store (sharded by page id) that receives
  // its redo; gossip spreads the materialized pages to the others
  // (Sec. 2.1: "propagated to one page store ... gossip protocol to achieve
  // consistency among different page stores").
  if (records.empty()) return Status::OK();
  std::map<size_t, std::vector<LogRecord>> by_store;
  for (const LogRecord& r : records) {
    const size_t store =
        r.page_id == kInvalidPageId
            ? 0
            : (r.page_id * 0x9E3779B97F4A7C15ull) % page_nodes_.size();
    by_store[store].push_back(r);
  }
  std::vector<NetContext> branch(by_store.size(), ctx->Fork());
  size_t i = 0;
  for (auto& [store, batch] : by_store) {
    PageStoreClient client(fabric_, page_nodes_[store]);
    DISAGG_RETURN_NOT_OK(client.ApplyLog(&branch[i++], batch).status());
  }
  JoinParallel(ctx, branch.data(), branch.size());
  // Each page's home store now holds its redo; freshest-wins fetches plus
  // this floor keep reads from ever regressing below the commit.
  NoteDurablePageLsns(records);
  return Status::OK();
}

size_t TaurusDb::RunGossipRound(NetContext* ctx) {
  return gossip_->RunRound(ctx);
}

Result<Page> TaurusDb::FetchPage(NetContext* ctx, PageId id) {
  // Page stores may be mutually stale; take the freshest copy.
  std::vector<NetContext> branch(page_nodes_.size(), ctx->Fork());
  Result<Page> best = Status::NotFound("page in no store");
  for (size_t i = 0; i < page_nodes_.size(); i++) {
    PageStoreClient client(fabric_, page_nodes_[i]);
    auto page = client.GetPage(&branch[i], id);
    if (page.ok() && (!best.ok() || page->lsn() > best->lsn())) {
      best = std::move(page);
    }
  }
  JoinParallel(ctx, branch.data(), branch.size());
  const Lsn required = RequiredPageLsn(id);
  if (required != kInvalidLsn && (!best.ok() || best->lsn() < required)) {
    // Gossip has not yet spread the freshest image and its home store is
    // unreachable — refusing beats silently reading a stale page.
    return Status::Unavailable("no page store fresh enough");
  }
  return best;
}

Result<Page> TaurusDb::FetchPageDegraded(NetContext* ctx, PageId id) {
  // The strict path is already freshest-wins; the ladder only removes the
  // RequiredPageLsn gate (gossip may not have spread the newest image yet).
  return FreshestFromStores(fabric_, ctx, page_nodes_, id);
}

}  // namespace disagg
