#ifndef DISAGG_CORE_PLATFORM_H_
#define DISAGG_CORE_PLATFORM_H_

#include <array>
#include <memory>

#include "core/engines.h"

namespace disagg {

/// The surveyed OLTP architectures, addressable uniformly — the heart of the
/// "comprehensive evaluation platform" the paper's Future Directions section
/// asks for: one workload, N architectures, comparable cost ledgers.
enum class EngineKind {
  kMonolithic,
  kAurora,
  kPolar,
  kSocrates,
  kTaurus,
};

inline constexpr std::array<EngineKind, 5> kAllEngineKinds = {
    EngineKind::kMonolithic, EngineKind::kAurora, EngineKind::kPolar,
    EngineKind::kSocrates, EngineKind::kTaurus,
};

const char* EngineName(EngineKind kind);

/// Builds an engine of the given architecture on `fabric` (which may be
/// nullptr only for kMonolithic).
std::unique_ptr<RowEngine> MakeEngine(Fabric* fabric, EngineKind kind);

}  // namespace disagg

#endif  // DISAGG_CORE_PLATFORM_H_
