#include "core/multi_writer.h"

#include "common/logging.h"
#include "txn/wal.h"

namespace disagg {

MultiWriterDb::MultiWriterDb(Fabric* fabric, size_t max_pages,
                             ReplicatedSegment::Config storage_config,
                             EngineLogConfig log)
    : fabric_(fabric) {
  pool_ = std::make_unique<MemoryNode>(
      fabric_, "multiwriter-pool",
      (max_pages + 16) * kPageSize + max_pages * 64 + (1 << 20));
  home_ = std::make_unique<SharedBufferPoolHome>(fabric_, pool_.get(),
                                                 max_pages);
  auto locks = pool_->AllocLocal(kLockSlots * 8);
  DISAGG_CHECK(locks.ok());
  lock_table_ = *locks;
  if (log.mode == EngineLogConfig::Mode::kShared) {
    DISAGG_CHECK(log.shared_log != nullptr);
    log_backend_ = std::make_unique<SharedLogBackend>(
        log.shared_log->fabric(), log.shared_log, log.tag);
  } else {
    segment_ = std::make_unique<ReplicatedSegment>(fabric_, storage_config,
                                                   "multiwriter-seg");
    log_backend_ = std::make_unique<QuorumSink>(segment_.get());
  }
}

std::unique_ptr<MultiWriterDb::Writer> MultiWriterDb::AttachWriter(
    size_t local_cache_pages) {
  return std::make_unique<Writer>(this, local_cache_pages);
}

MultiWriterDb::Writer::Writer(MultiWriterDb* db, size_t local_cache_pages)
    : db_(db),
      pool_client_(db->fabric_, db->home_.get(), local_cache_pages),
      writer_id_(db->next_writer_id_.fetch_add(1)) {}

Status MultiWriterDb::Writer::LockKey(NetContext* ctx, uint64_t key) {
  auto observed =
      db_->fabric_->CompareAndSwap(ctx, db_->LockAddr(key), 0, writer_id_);
  if (!observed.ok()) return observed.status();
  if (*observed != 0) {
    stats_.lock_conflicts++;
    return Status::Busy("row locked by writer " + std::to_string(*observed));
  }
  return Status::OK();
}

Status MultiWriterDb::Writer::UnlockKey(NetContext* ctx, uint64_t key) {
  auto observed = db_->fabric_->CompareAndSwap(ctx, db_->LockAddr(key),
                                               writer_id_, 0);
  if (!observed.ok()) return observed.status();
  return *observed == writer_id_
             ? Status::OK()
             : Status::Corruption("lock word clobbered");
}

Status MultiWriterDb::FenceWriter(NetContext* ctx, uint64_t writer_id) {
  for (size_t slot = 0; slot < kLockSlots; slot++) {
    GlobalAddr addr = lock_table_;
    addr.offset += slot * 8;
    auto observed = fabric_->CompareAndSwap(ctx, addr, writer_id, 0);
    if (!observed.ok()) return observed.status();
  }
  return Status::OK();
}

Status MultiWriterDb::Writer::Put(NetContext* ctx, uint64_t key, Slice row) {
  DISAGG_RETURN_NOT_OK(LockKey(ctx, key));
  Status st = [&]() -> Status {
    // Is the key already placed?
    bool exists = false;
    RowLoc loc{};
    {
      std::lock_guard<std::mutex> lock(db_->index_mu_);
      auto it = db_->index_.find(key);
      if (it != db_->index_.end()) {
        exists = true;
        loc = it->second;
      }
    }

    LogRecord rec;
    rec.lsn = db_->next_lsn_.fetch_add(1);
    rec.txn_id = writer_id_;
    rec.row_key = key;

    bool grow_update = false;
    std::string old_payload;
    if (exists) {
      // Row locks serialize writers per KEY, but distinct keys share pages,
      // so the page read-modify-write must be optimistic: publish only if
      // the page is still at the version we read (Busy -> caller retries).
      uint64_t page_version = 0;
      DISAGG_ASSIGN_OR_RETURN(
          Page page, pool_client_.ReadPage(ctx, loc.page, &page_version));
      auto before = page.Get(loc.slot);
      if (!before.ok()) return before.status();
      if (row.size() <= before->size()) {
        rec.type = LogType::kUpdate;
        rec.page_id = loc.page;
        rec.slot = loc.slot;
        rec.payload = row.ToString();
        DISAGG_RETURN_NOT_OK(db_->log_backend_->Append(ctx, {rec}).status());
        DISAGG_RETURN_NOT_OK(page.Update(loc.slot, row));
        page.set_lsn(rec.lsn);
        return pool_client_.WritePageIf(ctx, page, page_version);
      }
      // Grow-update: insert the larger copy first, repoint the index, THEN
      // tombstone the old slot (below). Tombstoning first would leave the
      // index aimed at a dead slot if any later step aborts with Busy.
      grow_update = true;
      old_payload = before->ToString();
    }

    // Insert into this writer's private insert page. Inserts never contend
    // with other writers' inserts, but other writers can update rows that
    // live on this page, so the publish is version-checked too.
    Page page(kInvalidPageId);
    uint64_t page_version = 0;
    bool fresh = false;
    if (insert_page_ != kInvalidPageId) {
      DISAGG_ASSIGN_OR_RETURN(
          page, pool_client_.ReadPage(ctx, insert_page_, &page_version));
      if (page.FreeSpace() < row.size()) fresh = true;
    } else {
      fresh = true;
    }
    if (fresh) {
      insert_page_ = db_->next_page_id_.fetch_add(1);
      page = Page(insert_page_);
      page_version = 0;  // nobody has published this page yet
    }
    rec.type = LogType::kInsert;
    rec.page_id = page.page_id();
    rec.slot = page.slot_count();
    rec.payload = row.ToString();
    DISAGG_RETURN_NOT_OK(db_->log_backend_->Append(ctx, {rec}).status());
    auto slot = page.Insert(row);
    if (!slot.ok()) return slot.status();
    page.set_lsn(rec.lsn);
    DISAGG_RETURN_NOT_OK(pool_client_.WritePageIf(ctx, page, page_version));
    {
      std::lock_guard<std::mutex> lock(db_->index_mu_);
      db_->index_[key] = RowLoc{page.page_id(), *slot};
    }

    if (grow_update) {
      // The index now points at the new copy; reclaim the old slot. Another
      // writer may publish the old page concurrently, so re-read and retry
      // the version-checked tombstone. On persistent conflict the old slot
      // is left as an unreferenced ghost record — safe, merely unreclaimed.
      LogRecord del;
      del.lsn = db_->next_lsn_.fetch_add(1);
      del.txn_id = writer_id_;
      del.row_key = key;
      del.type = LogType::kDelete;
      del.page_id = loc.page;
      del.slot = loc.slot;
      del.undo_payload = old_payload;
      DISAGG_RETURN_NOT_OK(db_->log_backend_->Append(ctx, {del}).status());
      for (int attempt = 0; attempt < 64; attempt++) {
        uint64_t old_version = 0;
        DISAGG_ASSIGN_OR_RETURN(
            Page old_page, pool_client_.ReadPage(ctx, loc.page, &old_version));
        DISAGG_RETURN_NOT_OK(old_page.Delete(loc.slot));
        old_page.set_lsn(del.lsn);
        Status st = pool_client_.WritePageIf(ctx, old_page, old_version);
        if (!st.IsBusy()) return st;
      }
    }
    return Status::OK();
  }();
  Status unlock = UnlockKey(ctx, key);
  if (st.ok()) {
    st = unlock;
    stats_.commits++;
  }
  return st;
}

Result<std::string> MultiWriterDb::Writer::Get(NetContext* ctx, uint64_t key) {
  RowLoc loc{};
  {
    std::lock_guard<std::mutex> lock(db_->index_mu_);
    auto it = db_->index_.find(key);
    if (it == db_->index_.end()) return Status::NotFound("no such key");
    loc = it->second;
  }
  DISAGG_ASSIGN_OR_RETURN(Page page, pool_client_.ReadPage(ctx, loc.page));
  DISAGG_ASSIGN_OR_RETURN(Slice row, page.Get(loc.slot));
  return row.ToString();
}

}  // namespace disagg
