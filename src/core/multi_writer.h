#ifndef DISAGG_CORE_MULTI_WRITER_H_
#define DISAGG_CORE_MULTI_WRITER_H_

#include <memory>
#include <unordered_map>

#include "log/shared_log.h"
#include "memnode/shared_buffer_pool.h"
#include "storage/quorum.h"

namespace disagg {

/// "Scalable transactions in disaggregated databases" (Sec. 4, future
/// directions): the surveyed cloud databases funnel ALL writes through one
/// primary; with disaggregated shared memory, MULTIPLE writers become
/// feasible. This engine implements that direction:
///  - pages live in the shared remote buffer pool (every writer sees them);
///  - row locks live in a GLOBAL LOCK TABLE in disaggregated memory,
///    acquired with one-sided CAS — no lock server process;
///  - durability is a redo record on the shared storage quorum.
/// Writers on disjoint keys proceed fully in parallel; conflicting writers
/// collide on the remote CAS and retry — exactly the trade-off the paper
/// flags ("concurrency control is still challenging without hardware cache
/// coherence").
class MultiWriterDb {
 public:
  static constexpr size_t kLockSlots = 4096;

  MultiWriterDb(Fabric* fabric, size_t max_pages,
                ReplicatedSegment::Config storage_config = {},
                EngineLogConfig log = {});

  /// A writer client (any number may be attached).
  class Writer {
   public:
    struct Stats {
      uint64_t commits = 0;
      uint64_t lock_conflicts = 0;
    };

    Writer(MultiWriterDb* db, size_t local_cache_pages);

    /// Upserts key -> row under a global row lock. Busy on lock conflict
    /// (caller retries — the no-wait discipline).
    Status Put(NetContext* ctx, uint64_t key, Slice row);
    Result<std::string> Get(NetContext* ctx, uint64_t key);

    const Stats& stats() const { return stats_; }
    uint64_t writer_id() const { return writer_id_; }

    /// Crash recovery for the shared pool tier (see
    /// SharedBufferPoolClient::FenceCrashedWriters).
    Status FencePoolWriters(NetContext* ctx, uint64_t* repaired = nullptr) {
      return pool_client_.FenceCrashedWriters(ctx, repaired);
    }

   private:
    Status LockKey(NetContext* ctx, uint64_t key);
    Status UnlockKey(NetContext* ctx, uint64_t key);

    MultiWriterDb* db_;
    SharedBufferPoolClient pool_client_;
    uint64_t writer_id_;
    PageId insert_page_ = kInvalidPageId;  // writer-private insert page
    Stats stats_;
  };

  std::unique_ptr<Writer> AttachWriter(size_t local_cache_pages = 8);

  /// Crash recovery: releases every row lock still held by `writer_id`,
  /// which must belong to a writer declared dead (its Puts can no longer
  /// race — a live writer must never be fenced). Without this, a lock whose
  /// release verb was lost stays held forever and the key wedges Busy.
  Status FenceWriter(NetContext* ctx, uint64_t writer_id);

  size_t row_count() const { return index_.size(); }
  MemoryNode* pool() { return pool_.get(); }
  /// The redo-durability tier (quorum segment or shared-log tag).
  LogBackend* log_backend() { return log_backend_.get(); }
  /// Null in shared-log mode.
  ReplicatedSegment* segment() { return segment_.get(); }

 private:
  friend class Writer;

  struct RowLoc {
    PageId page;
    uint16_t slot;
  };

  GlobalAddr LockAddr(uint64_t key) const {
    GlobalAddr addr = lock_table_;
    addr.offset += (key * 0x9E3779B97F4A7C15ull % kLockSlots) * 8;
    return addr;
  }

  Fabric* fabric_;
  std::unique_ptr<MemoryNode> pool_;
  std::unique_ptr<SharedBufferPoolHome> home_;
  std::unique_ptr<ReplicatedSegment> segment_;  // null in shared-log mode
  std::unique_ptr<LogBackend> log_backend_;
  GlobalAddr lock_table_{};
  // Shared metadata (a real deployment would host this on the memory node
  // too; keeping it in-process models the metadata service).
  std::unordered_map<uint64_t, RowLoc> index_;
  std::mutex index_mu_;
  std::atomic<PageId> next_page_id_{1};
  std::atomic<uint64_t> next_writer_id_{1};
  std::atomic<Lsn> next_lsn_{1};
};

}  // namespace disagg

#endif  // DISAGG_CORE_MULTI_WRITER_H_
