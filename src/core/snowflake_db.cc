#include "core/snowflake_db.h"

#include <algorithm>

namespace disagg {

SnowflakeDb::SnowflakeDb(Fabric* fabric, size_t rows_per_file)
    : fabric_(fabric), rows_per_file_(rows_per_file) {
  storage_node_ = fabric_->AddNode("snowflake-s3", NodeKind::kObject,
                                   InterconnectModel::ObjectStore());
  service_ = std::make_unique<ObjectStoreService>(fabric_, storage_node_);
  vw_caches_.resize(1);
}

Status SnowflakeDb::LoadTable(NetContext* ctx, const std::string& name,
                              Schema schema, const std::vector<Tuple>& rows) {
  if (tables_.count(name)) return Status::InvalidArgument("table exists");
  TableMeta meta;
  meta.schema = schema;
  ObjectStoreClient client(fabric_, storage_node_);
  for (size_t start = 0; start < rows.size(); start += rows_per_file_) {
    const size_t end = std::min(rows.size(), start + rows_per_file_);
    std::vector<Tuple> part(rows.begin() + start, rows.begin() + end);
    auto chunk = ColumnarChunk::FromRows(schema, std::move(part));
    FileMeta file;
    file.key = name + "/part-" + std::to_string(start / rows_per_file_);
    file.mins = chunk.mins();
    file.maxs = chunk.maxs();
    file.rows = chunk.row_count();
    DISAGG_RETURN_NOT_OK(client.Put(ctx, file.key, chunk.Serialize()));
    meta.files.push_back(std::move(file));
  }
  tables_[name] = std::move(meta);
  return Status::OK();
}

void SnowflakeDb::SetWarehouses(int n) {
  vw_caches_.resize(static_cast<size_t>(std::max(1, n)));
}

Result<SnowflakeDb::QueryStats> SnowflakeDb::Query(
    const std::string& table, const ops::Fragment& fragment,
    bool use_pruning) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no such table");
  const TableMeta& meta = it->second;

  QueryStats stats;
  stats.files_total = meta.files.size();

  // Prune with zone maps, then assign surviving files round-robin to VWs.
  std::vector<const FileMeta*> work;
  for (const FileMeta& file : meta.files) {
    if (use_pruning && !fragment.predicate.MayMatch(file.mins, file.maxs)) {
      stats.files_pruned++;
      continue;
    }
    work.push_back(&file);
  }

  const size_t num_vw = vw_caches_.size();
  std::vector<NetContext> vw_ctx(num_vw);
  std::vector<std::vector<Tuple>> vw_partials(num_vw);
  ObjectStoreClient client(fabric_, storage_node_);
  for (size_t i = 0; i < work.size(); i++) {
    const size_t vw = i % num_vw;
    const FileMeta& file = *work[i];
    auto& cache = vw_caches_[vw];
    auto cit = cache.find(file.key);
    if (cit == cache.end()) {
      DISAGG_ASSIGN_OR_RETURN(std::string blob,
                              client.Get(&vw_ctx[vw], file.key));
      auto chunk = ColumnarChunk::Deserialize(meta.schema, blob);
      if (!chunk.ok()) return chunk.status();
      cit = cache.emplace(file.key, std::move(chunk).value()).first;
    } else {
      stats.cache_hits++;
      // Local SSD cache read.
      vw_ctx[vw].Charge(
          InterconnectModel::Ssd().ReadCost(file.rows * 32));
    }
    stats.files_scanned++;
    std::vector<Tuple> part = fragment.Execute(&vw_ctx[vw],
                                               cit->second.rows());
    auto& sink = vw_partials[vw];
    sink.insert(sink.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }

  // Merge VW partials on the coordinator.
  NetContext total;
  MergeParallel(&total, vw_ctx.data(), vw_ctx.size());
  std::vector<Tuple> all;
  for (auto& part : vw_partials) {
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  if (!fragment.aggs.empty()) {
    // Combine partial aggregates: re-aggregate with the combining function.
    for (const AggSpec& a : fragment.aggs) {
      if (a.func == AggFunc::kAvg) {
        return Status::NotSupported("distributed AVG: use SUM and COUNT");
      }
    }
    std::vector<AggSpec> combine;
    std::vector<int> group_cols;
    for (size_t g = 0; g < fragment.group_cols.size(); g++) {
      group_cols.push_back(static_cast<int>(g));
    }
    for (size_t a = 0; a < fragment.aggs.size(); a++) {
      const int col = static_cast<int>(fragment.group_cols.size() + a);
      switch (fragment.aggs[a].func) {
        case AggFunc::kCount:
        case AggFunc::kSum:
          combine.push_back({AggFunc::kSum, col});
          break;
        case AggFunc::kMin:
          combine.push_back({AggFunc::kMin, col});
          break;
        case AggFunc::kMax:
          combine.push_back({AggFunc::kMax, col});
          break;
        case AggFunc::kAvg:
          break;  // rejected above
      }
    }
    all = ops::HashAggregate(&total, all, group_cols, combine);
  }
  stats.rows = std::move(all);
  stats.sim_ns = total.sim_ns;
  return stats;
}

}  // namespace disagg
