#ifndef DISAGG_CORE_SNOWFLAKE_DB_H_
#define DISAGG_CORE_SNOWFLAKE_DB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "query/columnar.h"
#include "query/operators.h"
#include "storage/object_store.h"

namespace disagg {

/// Snowflake-style disaggregated OLAP engine (Sec. 2.2): tables are split
/// into immutable columnar files in cloud object storage; elastic Virtual
/// Warehouses (VWs) execute queries, each with a local file cache; min-max
/// zone maps prune files before any I/O. VWs scale independently of data —
/// the architecture's core elasticity claim.
class SnowflakeDb {
 public:
  struct QueryStats {
    size_t files_total = 0;
    size_t files_pruned = 0;
    size_t files_scanned = 0;
    size_t cache_hits = 0;
    uint64_t sim_ns = 0;  // parallel (max-over-VW) simulated time
    std::vector<Tuple> rows;
  };

  SnowflakeDb(Fabric* fabric, size_t rows_per_file = 1024);

  /// Loads a table: chunks rows, writes immutable files, records zone maps.
  Status LoadTable(NetContext* ctx, const std::string& name, Schema schema,
                   const std::vector<Tuple>& rows);

  /// Elasticity: resize the VW fleet (caches persist per VW slot).
  void SetWarehouses(int n);
  int warehouses() const { return static_cast<int>(vw_caches_.size()); }

  /// Executes fragment over the table across all VWs. Aggregates are
  /// merged with the matching combine function (COUNT->sum, SUM->sum,
  /// MIN->min, MAX->max; AVG unsupported distributed).
  Result<QueryStats> Query(const std::string& table,
                           const ops::Fragment& fragment,
                           bool use_pruning = true);

  ObjectStoreService* storage_service() { return service_.get(); }

 private:
  struct FileMeta {
    std::string key;
    std::vector<double> mins;
    std::vector<double> maxs;
    size_t rows = 0;
  };
  struct TableMeta {
    Schema schema;
    std::vector<FileMeta> files;
  };

  Fabric* fabric_;
  NodeId storage_node_ = 0;
  std::unique_ptr<ObjectStoreService> service_;
  size_t rows_per_file_;
  std::map<std::string, TableMeta> tables_;
  // Per-VW local SSD file cache: file key -> deserialized chunk.
  std::vector<std::map<std::string, ColumnarChunk>> vw_caches_;
};

}  // namespace disagg

#endif  // DISAGG_CORE_SNOWFLAKE_DB_H_
