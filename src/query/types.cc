#include "query/types.h"

#include <cstring>

namespace disagg {

void EncodeTuple(const Tuple& tuple, std::string* dst) {
  for (const Value& v : tuple) {
    if (std::holds_alternative<int64_t>(v)) {
      dst->push_back(static_cast<char>(ColumnType::kInt64));
      PutVarint64(dst, static_cast<uint64_t>(std::get<int64_t>(v)));
    } else if (std::holds_alternative<double>(v)) {
      dst->push_back(static_cast<char>(ColumnType::kDouble));
      uint64_t bits;
      const double d = std::get<double>(v);
      std::memcpy(&bits, &d, 8);
      PutFixed64(dst, bits);
    } else {
      dst->push_back(static_cast<char>(ColumnType::kString));
      PutLengthPrefixedSlice(dst, std::get<std::string>(v));
    }
  }
}

Result<Tuple> DecodeTuple(const Schema& schema, Slice* input) {
  Tuple tuple;
  tuple.reserve(schema.size());
  for (size_t i = 0; i < schema.size(); i++) {
    if (input->empty()) return Status::Corruption("truncated tuple");
    const ColumnType tag = static_cast<ColumnType>((*input)[0]);
    input->remove_prefix(1);
    switch (tag) {
      case ColumnType::kInt64: {
        uint64_t raw = 0;
        if (!GetVarint64(input, &raw)) return Status::Corruption("int64");
        tuple.emplace_back(static_cast<int64_t>(raw));
        break;
      }
      case ColumnType::kDouble: {
        uint64_t bits = 0;
        if (!GetFixed64(input, &bits)) return Status::Corruption("double");
        double d;
        std::memcpy(&d, &bits, 8);
        tuple.emplace_back(d);
        break;
      }
      case ColumnType::kString: {
        Slice s;
        if (!GetLengthPrefixedSlice(input, &s)) {
          return Status::Corruption("string");
        }
        tuple.emplace_back(s.ToString());
        break;
      }
      default:
        return Status::Corruption("unknown column tag");
    }
  }
  return tuple;
}

}  // namespace disagg
