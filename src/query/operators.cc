#include "query/operators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

namespace disagg {
namespace ops {

namespace {
// Modeled per-row CPU costs (ns) for a compute-pool core.
constexpr uint64_t kFilterNsPerRowTerm = 2;
constexpr uint64_t kProjectNsPerRow = 3;
constexpr uint64_t kJoinNsPerRow = 25;
constexpr uint64_t kAggNsPerRow = 15;
constexpr uint64_t kSortNsPerRowLog = 12;

void Charge(NetContext* ctx, uint64_t ns) {
  if (ctx != nullptr) ctx->Charge(ns);
}

std::string GroupKey(const Tuple& row, const std::vector<int>& cols) {
  std::string key;
  for (int c : cols) EncodeTuple({row[c]}, &key);
  return key;
}

}  // namespace

std::vector<Tuple> Filter(NetContext* ctx, const std::vector<Tuple>& rows,
                          const Predicate& predicate) {
  std::vector<Tuple> out;
  for (const Tuple& row : rows) {
    if (predicate.Matches(row)) out.push_back(row);
  }
  Charge(ctx, kFilterNsPerRowTerm * rows.size() *
                  std::max<size_t>(1, predicate.terms.size()));
  return out;
}

std::vector<Tuple> Project(NetContext* ctx, const std::vector<Tuple>& rows,
                           const std::vector<int>& columns) {
  if (columns.empty()) return rows;
  std::vector<Tuple> out;
  out.reserve(rows.size());
  for (const Tuple& row : rows) {
    Tuple projected;
    projected.reserve(columns.size());
    for (int c : columns) projected.push_back(row[c]);
    out.push_back(std::move(projected));
  }
  Charge(ctx, kProjectNsPerRow * rows.size());
  return out;
}

std::vector<Tuple> HashJoin(NetContext* ctx, const std::vector<Tuple>& left,
                            const std::vector<Tuple>& right, int left_col,
                            int right_col) {
  // Build on the smaller side conceptually; here build on left for clarity.
  std::unordered_multimap<std::string, const Tuple*> build;
  build.reserve(left.size());
  for (const Tuple& row : left) {
    std::string key;
    EncodeTuple({row[left_col]}, &key);
    build.emplace(std::move(key), &row);
  }
  std::vector<Tuple> out;
  for (const Tuple& row : right) {
    std::string key;
    EncodeTuple({row[right_col]}, &key);
    auto [lo, hi] = build.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      Tuple joined = *it->second;
      joined.insert(joined.end(), row.begin(), row.end());
      out.push_back(std::move(joined));
    }
  }
  Charge(ctx, kJoinNsPerRow * (left.size() + right.size() + out.size()));
  return out;
}

std::vector<Tuple> HashAggregate(NetContext* ctx,
                                 const std::vector<Tuple>& rows,
                                 const std::vector<int>& group_cols,
                                 const std::vector<AggSpec>& aggs) {
  struct AggState {
    Tuple group;
    uint64_t count = 0;
    std::vector<double> sum;
    std::vector<double> min;
    std::vector<double> max;
  };
  std::map<std::string, AggState> groups;
  for (const Tuple& row : rows) {
    AggState& st = groups[GroupKey(row, group_cols)];
    if (st.count == 0) {
      for (int c : group_cols) st.group.push_back(row[c]);
      st.sum.assign(aggs.size(), 0.0);
      st.min.assign(aggs.size(), std::numeric_limits<double>::infinity());
      st.max.assign(aggs.size(), -std::numeric_limits<double>::infinity());
    }
    st.count++;
    for (size_t a = 0; a < aggs.size(); a++) {
      if (aggs[a].func == AggFunc::kCount) continue;
      const double v = AsDouble(row[aggs[a].column]);
      st.sum[a] += v;
      st.min[a] = std::min(st.min[a], v);
      st.max[a] = std::max(st.max[a], v);
    }
  }
  std::vector<Tuple> out;
  for (auto& [key, st] : groups) {
    Tuple row = st.group;
    for (size_t a = 0; a < aggs.size(); a++) {
      switch (aggs[a].func) {
        case AggFunc::kCount:
          row.emplace_back(static_cast<int64_t>(st.count));
          break;
        case AggFunc::kSum:
          row.emplace_back(st.sum[a]);
          break;
        case AggFunc::kMin:
          row.emplace_back(st.min[a]);
          break;
        case AggFunc::kMax:
          row.emplace_back(st.max[a]);
          break;
        case AggFunc::kAvg:
          row.emplace_back(st.sum[a] / static_cast<double>(st.count));
          break;
      }
    }
    out.push_back(std::move(row));
  }
  Charge(ctx, kAggNsPerRow * rows.size());
  return out;
}

std::vector<Tuple> SortBy(NetContext* ctx, std::vector<Tuple> rows,
                          const std::vector<int>& columns, bool descending) {
  std::stable_sort(rows.begin(), rows.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     for (int c : columns) {
                       if (CompareValues(a[c], CmpOp::kLt, b[c])) {
                         return !descending;
                       }
                       if (CompareValues(b[c], CmpOp::kLt, a[c])) {
                         return descending;
                       }
                     }
                     return false;
                   });
  const size_t n = std::max<size_t>(rows.size(), 2);
  Charge(ctx, kSortNsPerRowLog * n *
                  static_cast<uint64_t>(std::log2(static_cast<double>(n))));
  return rows;
}

std::vector<Tuple> Limit(std::vector<Tuple> rows, size_t n) {
  if (rows.size() > n) rows.resize(n);
  return rows;
}

void Fragment::EncodeTo(std::string* dst) const {
  predicate.EncodeTo(dst);
  PutVarint64(dst, project.size());
  for (int c : project) PutVarint64(dst, static_cast<uint64_t>(c));
  PutVarint64(dst, group_cols.size());
  for (int c : group_cols) PutVarint64(dst, static_cast<uint64_t>(c));
  PutVarint64(dst, aggs.size());
  for (const AggSpec& a : aggs) {
    dst->push_back(static_cast<char>(a.func));
    PutVarint64(dst, static_cast<uint64_t>(a.column));
  }
}

Result<Fragment> Fragment::DecodeFrom(Slice* input) {
  Fragment f;
  auto pred = Predicate::DecodeFrom(input);
  if (!pred.ok()) return pred.status();
  f.predicate = std::move(pred).value();
  uint64_t n = 0;
  if (!GetVarint64(input, &n)) return Status::Corruption("project count");
  for (uint64_t i = 0; i < n; i++) {
    uint64_t c = 0;
    if (!GetVarint64(input, &c)) return Status::Corruption("project col");
    f.project.push_back(static_cast<int>(c));
  }
  if (!GetVarint64(input, &n)) return Status::Corruption("group count");
  for (uint64_t i = 0; i < n; i++) {
    uint64_t c = 0;
    if (!GetVarint64(input, &c)) return Status::Corruption("group col");
    f.group_cols.push_back(static_cast<int>(c));
  }
  if (!GetVarint64(input, &n)) return Status::Corruption("agg count");
  for (uint64_t i = 0; i < n; i++) {
    if (input->empty()) return Status::Corruption("agg func");
    AggSpec a;
    a.func = static_cast<AggFunc>((*input)[0]);
    input->remove_prefix(1);
    uint64_t c = 0;
    if (!GetVarint64(input, &c)) return Status::Corruption("agg col");
    a.column = static_cast<int>(c);
    f.aggs.push_back(a);
  }
  return f;
}

std::vector<Tuple> Fragment::Execute(NetContext* ctx,
                                     const std::vector<Tuple>& rows) const {
  std::vector<Tuple> current = Filter(ctx, rows, predicate);
  if (!aggs.empty()) {
    // Aggregation consumes the unprojected rows (columns refer to the
    // original schema), projection is implicit in the output.
    return HashAggregate(ctx, current, group_cols, aggs);
  }
  return Project(ctx, current, project);
}

}  // namespace ops
}  // namespace disagg
