#include "query/expr.h"

namespace disagg {

namespace {

template <typename T>
bool ApplyOp(const T& a, CmpOp op, const T& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

bool CompareValues(const Value& lhs, CmpOp op, const Value& rhs) {
  if (std::holds_alternative<std::string>(lhs) ||
      std::holds_alternative<std::string>(rhs)) {
    return ApplyOp(AsString(lhs), op, AsString(rhs));
  }
  // Mixed numeric comparisons promote to double.
  if (std::holds_alternative<int64_t>(lhs) &&
      std::holds_alternative<int64_t>(rhs)) {
    return ApplyOp(AsInt(lhs), op, AsInt(rhs));
  }
  return ApplyOp(AsDouble(lhs), op, AsDouble(rhs));
}

bool Predicate::Matches(const Tuple& tuple) const {
  for (const Term& t : terms) {
    if (t.column < 0 || static_cast<size_t>(t.column) >= tuple.size()) {
      return false;
    }
    if (!CompareValues(tuple[t.column], t.op, t.constant)) return false;
  }
  return true;
}

bool Predicate::MayMatch(const std::vector<double>& mins,
                         const std::vector<double>& maxs) const {
  for (const Term& t : terms) {
    if (std::holds_alternative<std::string>(t.constant)) continue;
    if (t.column < 0 || static_cast<size_t>(t.column) >= mins.size()) {
      continue;
    }
    const double c = AsDouble(t.constant);
    const double lo = mins[t.column];
    const double hi = maxs[t.column];
    switch (t.op) {
      case CmpOp::kEq:
        if (c < lo || c > hi) return false;
        break;
      case CmpOp::kLt:
        if (lo >= c) return false;
        break;
      case CmpOp::kLe:
        if (lo > c) return false;
        break;
      case CmpOp::kGt:
        if (hi <= c) return false;
        break;
      case CmpOp::kGe:
        if (hi < c) return false;
        break;
      case CmpOp::kNe:
        break;  // only prunable when min==max==c; skip for simplicity
    }
  }
  return true;
}

void Predicate::EncodeTo(std::string* dst) const {
  PutVarint64(dst, terms.size());
  for (const Term& t : terms) {
    PutVarint64(dst, static_cast<uint64_t>(t.column));
    dst->push_back(static_cast<char>(t.op));
    Tuple one = {t.constant};
    EncodeTuple(one, dst);
  }
}

Result<Predicate> Predicate::DecodeFrom(Slice* input) {
  Predicate p;
  uint64_t n = 0;
  if (!GetVarint64(input, &n)) return Status::Corruption("term count");
  for (uint64_t i = 0; i < n; i++) {
    Term t;
    uint64_t col = 0;
    if (!GetVarint64(input, &col)) return Status::Corruption("column");
    t.column = static_cast<int>(col);
    if (input->empty()) return Status::Corruption("op");
    t.op = static_cast<CmpOp>((*input)[0]);
    input->remove_prefix(1);
    // Decode the single-value "tuple"; type is self-describing, so a
    // one-column schema of any type works (tag drives decoding).
    if (input->empty()) return Status::Corruption("constant");
    const ColumnType tag = static_cast<ColumnType>((*input)[0]);
    Schema one;
    one.columns.push_back({"c", tag});
    auto v = DecodeTuple(one, input);
    if (!v.ok()) return v.status();
    t.constant = (*v)[0];
    p.terms.push_back(std::move(t));
  }
  return p;
}

}  // namespace disagg
