#ifndef DISAGG_QUERY_EXPR_H_
#define DISAGG_QUERY_EXPR_H_

#include <vector>

#include "query/types.h"

namespace disagg {

/// Comparison operators for predicates.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// A conjunctive predicate: every term `column OP constant` must hold.
/// Deliberately simple — enough for the TPC-H-lite queries and for min-max
/// pruning — and serializable so it can be shipped to a memory node
/// (TELEPORT) or matched against zone maps (Snowflake).
struct Predicate {
  struct Term {
    int column = 0;
    CmpOp op = CmpOp::kEq;
    Value constant;
  };
  std::vector<Term> terms;

  static Predicate True() { return Predicate{}; }
  Predicate& And(int column, CmpOp op, Value constant) {
    terms.push_back(Term{column, op, std::move(constant)});
    return *this;
  }

  bool Matches(const Tuple& tuple) const;

  /// Zone-map test: can any row with column values inside [min, max] match?
  /// `mins`/`maxs` are per-column extremes (numeric columns only; string
  /// columns are never pruned). Conservative: true = must scan.
  bool MayMatch(const std::vector<double>& mins,
                const std::vector<double>& maxs) const;

  void EncodeTo(std::string* dst) const;
  static Result<Predicate> DecodeFrom(Slice* input);
};

bool CompareValues(const Value& lhs, CmpOp op, const Value& rhs);

}  // namespace disagg

#endif  // DISAGG_QUERY_EXPR_H_
