#include "query/hybrid_pushdown.h"

namespace disagg {

Result<std::unique_ptr<HybridTable>> HybridTable::Create(
    NetContext* ctx, Fabric* fabric, MemoryNode* pool, Schema schema,
    const std::vector<Tuple>& rows, size_t num_segments,
    size_t cache_segments) {
  auto table = std::unique_ptr<HybridTable>(new HybridTable());
  table->fabric_ = fabric;
  table->schema_ = schema;
  table->cache_capacity_ = cache_segments;
  const size_t per_segment = (rows.size() + num_segments - 1) / num_segments;
  for (size_t s = 0; s < num_segments; s++) {
    const size_t begin = s * per_segment;
    const size_t end = std::min(rows.size(), begin + per_segment);
    if (begin >= end) break;
    std::vector<Tuple> part(rows.begin() + begin, rows.begin() + end);
    auto segment = RemoteTable::Create(ctx, fabric, pool, schema, part);
    if (!segment.ok()) return segment.status();
    table->segments_.push_back(
        std::make_unique<RemoteTable>(std::move(segment).value()));
  }
  return table;
}

Result<std::vector<Tuple>> HybridTable::Query(NetContext* ctx,
                                              const ops::Fragment& fragment,
                                              Mode mode, QueryStats* stats) {
  QueryStats local_stats;
  std::vector<Tuple> out;
  for (size_t s = 0; s < segments_.size(); s++) {
    touch_counts_[s]++;
    auto cached = cache_.find(s);
    std::vector<Tuple> part;
    if (cached != cache_.end()) {
      // Local execution over the cached segment.
      local_stats.cached_segments++;
      part = fragment.Execute(ctx, cached->second);
    } else if (mode == Mode::kPushdownOnly ||
               (mode == Mode::kHybrid &&
                (touch_counts_[s] < 2 || cache_.size() >= cache_capacity_))) {
      // Cold segment: push the fragment down. Hybrid admits a segment only
      // on re-touch and NEVER thrashes: once the cache is full, the
      // overflow keeps using pushdown (FPDB's insight that the two
      // mechanisms complement rather than compete).
      local_stats.pushed_segments++;
      auto pushed = segments_[s]->Pushdown(ctx, fragment);
      if (pushed.ok()) {
        part = std::move(*pushed);
      } else if (degrade_to_client_ && (pushed.status().IsBusy() ||
                                        pushed.status().IsUnavailable() ||
                                        pushed.status().IsTimedOut())) {
        // The pool refused the pushdown: pull the raw segment and execute
        // the fragment client-side. More bytes move, but the query answers.
        auto rows = segments_[s]->FetchAll(ctx);
        if (!rows.ok()) return pushed.status();  // ladder exhausted
        local_stats.degraded_pushdowns++;
        ctx->degraded_ops++;
        part = fragment.Execute(ctx, *rows);
      } else {
        return pushed.status();
      }
    } else {
      // Pull the segment up, cache it, execute locally.
      local_stats.fetched_segments++;
      DISAGG_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                              segments_[s]->FetchAll(ctx));
      part = fragment.Execute(ctx, rows);
      if (cache_.size() >= cache_capacity_ && cache_capacity_ > 0) {
        // Evict the least-touched cached segment.
        size_t victim = cache_.begin()->first;
        for (const auto& [seg, rows_cached] : cache_) {
          if (touch_counts_[seg] < touch_counts_[victim]) victim = seg;
        }
        cache_.erase(victim);
      }
      if (cache_capacity_ > 0) cache_[s] = std::move(rows);
    }
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  // Partial-aggregate merge when the fragment aggregates (same combining
  // approach as the Snowflake engine: SUM/COUNT->sum, MIN/MAX->min/max).
  if (!fragment.aggs.empty()) {
    std::vector<int> group_cols;
    for (size_t g = 0; g < fragment.group_cols.size(); g++) {
      group_cols.push_back(static_cast<int>(g));
    }
    std::vector<AggSpec> combine;
    for (size_t a = 0; a < fragment.aggs.size(); a++) {
      const int col = static_cast<int>(fragment.group_cols.size() + a);
      switch (fragment.aggs[a].func) {
        case AggFunc::kCount:
        case AggFunc::kSum:
          combine.push_back({AggFunc::kSum, col});
          break;
        case AggFunc::kMin:
          combine.push_back({AggFunc::kMin, col});
          break;
        case AggFunc::kMax:
          combine.push_back({AggFunc::kMax, col});
          break;
        case AggFunc::kAvg:
          return Status::NotSupported("distributed AVG: use SUM and COUNT");
      }
    }
    out = ops::HashAggregate(ctx, out, group_cols, combine);
  }
  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace disagg
