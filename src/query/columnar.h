#ifndef DISAGG_QUERY_COLUMNAR_H_
#define DISAGG_QUERY_COLUMNAR_H_

#include <string>
#include <vector>

#include "query/expr.h"
#include "query/types.h"

namespace disagg {

/// One immutable columnar file fragment — the unit Snowflake stores in cloud
/// object storage (Sec. 2.2). Values are serialized column-major and the
/// header carries per-column min/max ("small materialized aggregates"), the
/// light-weight zone-map index Snowflake uses for pruning.
class ColumnarChunk {
 public:
  ColumnarChunk() = default;

  static ColumnarChunk FromRows(Schema schema, std::vector<Tuple> rows);

  const Schema& schema() const { return schema_; }
  size_t row_count() const { return rows_.size(); }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Per-column numeric extremes (strings get ±infinity, never pruned).
  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& maxs() const { return maxs_; }

  /// Zone-map test for a predicate.
  bool MayMatch(const Predicate& predicate) const {
    return predicate.MayMatch(mins_, maxs_);
  }

  /// Column-major serialization (header, zone maps, then per-column data).
  std::string Serialize() const;
  static Result<ColumnarChunk> Deserialize(const Schema& schema, Slice input);

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace disagg

#endif  // DISAGG_QUERY_COLUMNAR_H_
