#ifndef DISAGG_QUERY_TYPES_H_
#define DISAGG_QUERY_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/slice.h"

namespace disagg {

/// Column types supported by the relational layer.
enum class ColumnType : uint8_t { kInt64, kDouble, kString };

/// A single cell value.
using Value = std::variant<int64_t, double, std::string>;

inline int64_t AsInt(const Value& v) { return std::get<int64_t>(v); }
inline double AsDouble(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<double>(std::get<int64_t>(v));
  }
  return std::get<double>(v);
}
inline const std::string& AsString(const Value& v) {
  return std::get<std::string>(v);
}

/// A row: one Value per schema column.
using Tuple = std::vector<Value>;

/// Relation schema: ordered, named, typed columns.
struct Schema {
  struct Column {
    std::string name;
    ColumnType type;
  };
  std::vector<Column> columns;

  size_t size() const { return columns.size(); }

  /// Index of a column by name, -1 if absent.
  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); i++) {
      if (columns[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

/// Serializes a tuple for storage in pages / remote regions / shuffle
/// channels. Layout: per column, type tag then value.
void EncodeTuple(const Tuple& tuple, std::string* dst);
Result<Tuple> DecodeTuple(const Schema& schema, Slice* input);

}  // namespace disagg

#endif  // DISAGG_QUERY_TYPES_H_
