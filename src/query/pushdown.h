#ifndef DISAGG_QUERY_PUSHDOWN_H_
#define DISAGG_QUERY_PUSHDOWN_H_

#include <string>
#include <vector>

#include "memnode/memory_node.h"
#include "query/operators.h"

namespace disagg {

/// A relation resident in disaggregated memory, with the two access paths
/// the paper contrasts for memory-disaggregated OLAP (Sec. 3.2):
///
///  - `FetchAll` + client-side operators: every byte crosses the network —
///    the baseline whose cost TELEPORT calls out;
///  - `Pushdown`: serialize the operator fragment and execute it next to the
///    data on the pool-side CPU (TELEPORT's function shipping; with a deep
///    fragment this is also Farview's pipelined operator stack, the compute
///    device being an FPGA there and a wimpy core here). Only results cross
///    the network.
class RemoteTable {
 public:
  /// Materializes `rows` into `pool` and registers this table's pushdown
  /// handler on the pool node.
  static Result<RemoteTable> Create(NetContext* ctx, Fabric* fabric,
                                    MemoryNode* pool, Schema schema,
                                    const std::vector<Tuple>& rows);

  const Schema& schema() const { return schema_; }
  size_t row_count() const { return row_count_; }
  size_t bytes() const { return bytes_; }

  /// Baseline: pull all rows to the compute node (then operate locally).
  Result<std::vector<Tuple>> FetchAll(NetContext* ctx);

  /// TELEPORT/Farview: execute the fragment on the memory node.
  Result<std::vector<Tuple>> Pushdown(NetContext* ctx,
                                      const ops::Fragment& fragment);

 private:
  RemoteTable() = default;

  Status HandleExec(Slice req, std::string* resp, RpcServerContext* sctx);

  Fabric* fabric_ = nullptr;
  NodeId pool_node_ = 0;
  Schema schema_;
  GlobalAddr data_{};
  size_t bytes_ = 0;
  size_t row_count_ = 0;
  std::string method_;  // unique RPC name
};

/// Dremel-style distributed shuffle (Sec. 3.2): P producers exchange
/// partitioned data with C consumers.
///  - Coupled mode: direct producer-to-consumer links; P*C connections, each
///    with setup cost and per-message overhead — the quadratic growth that
///    bottlenecked Dremel's joins.
///  - Disaggregated mode: producers write partitions into a shuffle region
///    in the memory pool; consumers read their partition ranges — P + C
///    sessions, no pairwise coupling, and shuffle state survives worker
///    restarts.
/// Data movement is real in both modes; connection and message overheads
/// come from the interconnect model.
class Shuffle {
 public:
  struct Report {
    uint64_t connections = 0;
    uint64_t sim_ns = 0;       // critical-path simulated time
    uint64_t bytes_moved = 0;
    size_t rows_delivered = 0;
  };

  /// Per-connection TCP/RDMA session establishment cost.
  static constexpr uint64_t kConnectionSetupNs = 50'000;

  /// Runs a full exchange of `rows` (each producer holds rows_per_producer
  /// tuples of `row_bytes`) hash-partitioned across consumers.
  static Result<Report> RunCoupled(Fabric* fabric, int producers,
                                   int consumers, size_t rows_per_producer,
                                   size_t row_bytes);
  static Result<Report> RunDisaggregated(Fabric* fabric, MemoryNode* pool,
                                         int producers, int consumers,
                                         size_t rows_per_producer,
                                         size_t row_bytes);
};

}  // namespace disagg

#endif  // DISAGG_QUERY_PUSHDOWN_H_
