#include "query/pushdown.h"

#include <atomic>

#include "common/coding.h"

namespace disagg {

namespace {

std::atomic<uint64_t> g_table_counter{0};

// Self-describing row serialization (per row: column count + tagged values),
// usable when the consumer does not know the output schema (projections,
// aggregates).
void EncodeRows(const std::vector<Tuple>& rows, std::string* dst) {
  PutVarint64(dst, rows.size());
  for (const Tuple& row : rows) {
    PutVarint64(dst, row.size());
    EncodeTuple(row, dst);
  }
}

Result<std::vector<Tuple>> DecodeRows(Slice input) {
  uint64_t count = 0;
  if (!GetVarint64(&input, &count)) return Status::Corruption("row count");
  std::vector<Tuple> rows;
  rows.reserve(count);
  for (uint64_t r = 0; r < count; r++) {
    uint64_t ncols = 0;
    if (!GetVarint64(&input, &ncols)) return Status::Corruption("col count");
    Tuple row;
    row.reserve(ncols);
    for (uint64_t c = 0; c < ncols; c++) {
      if (input.empty()) return Status::Corruption("value tag");
      Schema one;
      one.columns.push_back({"c", static_cast<ColumnType>(input[0])});
      auto v = DecodeTuple(one, &input);
      if (!v.ok()) return v.status();
      row.push_back(std::move((*v)[0]));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

constexpr uint64_t kDecodeNsPerRow = 2;

}  // namespace

Result<RemoteTable> RemoteTable::Create(NetContext* ctx, Fabric* fabric,
                                        MemoryNode* pool, Schema schema,
                                        const std::vector<Tuple>& rows) {
  RemoteTable table;
  table.fabric_ = fabric;
  table.pool_node_ = pool->node();
  table.schema_ = std::move(schema);
  table.row_count_ = rows.size();

  std::string blob;
  PutVarint64(&blob, rows.size());
  for (const Tuple& row : rows) EncodeTuple(row, &blob);
  table.bytes_ = blob.size();
  auto addr = pool->AllocLocal(blob.size());
  if (!addr.ok()) return addr.status();
  table.data_ = *addr;
  Status st = fabric->Write(ctx, table.data_, blob.data(), blob.size());
  if (!st.ok()) return st;

  table.method_ = "tele.exec." + std::to_string(g_table_counter.fetch_add(1));
  return table;
}

Result<std::vector<Tuple>> RemoteTable::FetchAll(NetContext* ctx) {
  std::string blob(bytes_, '\0');
  DISAGG_RETURN_NOT_OK(fabric_->Read(ctx, data_, blob.data(), blob.size()));
  Slice input(blob);
  uint64_t count = 0;
  if (!GetVarint64(&input, &count)) return Status::Corruption("row count");
  std::vector<Tuple> rows;
  rows.reserve(count);
  for (uint64_t r = 0; r < count; r++) {
    auto row = DecodeTuple(schema_, &input);
    if (!row.ok()) return row.status();
    rows.push_back(std::move(row).value());
  }
  ctx->Charge(kDecodeNsPerRow * count);
  return rows;
}

Status RemoteTable::HandleExec(Slice req, std::string* resp,
                               RpcServerContext* sctx) {
  auto fragment = ops::Fragment::DecodeFrom(&req);
  if (!fragment.ok()) return fragment.status();

  // Scan the resident blob directly — this is the point: no network hop.
  MemoryRegion* region = fabric_->node(pool_node_)->region(data_.region);
  Slice input(region->data() + data_.offset, bytes_);
  uint64_t count = 0;
  if (!GetVarint64(&input, &count)) return Status::Corruption("row count");
  std::vector<Tuple> rows;
  rows.reserve(count);
  for (uint64_t r = 0; r < count; r++) {
    auto row = DecodeTuple(schema_, &input);
    if (!row.ok()) return row.status();
    rows.push_back(std::move(row).value());
  }

  NetContext pool_cpu;
  std::vector<Tuple> result = fragment->Execute(&pool_cpu, rows);
  // The pool CPU paid for decode + operators (scaled by node cpu_scale).
  sctx->ChargeCompute(pool_cpu.sim_ns + kDecodeNsPerRow * count);
  EncodeRows(result, resp);
  return Status::OK();
}

Result<std::vector<Tuple>> RemoteTable::Pushdown(NetContext* ctx,
                                                 const ops::Fragment& fragment) {
  // Lazily register the handler (Create returns by value; `this` must be
  // stable when the handler binds, so bind at first use).
  Node* node = fabric_->node(pool_node_);
  if (node->handler(method_) == nullptr) {
    node->RegisterHandler(method_, [this](Slice req, std::string* resp,
                                          RpcServerContext* sctx) {
      return HandleExec(req, resp, sctx);
    });
  }
  std::string req;
  fragment.EncodeTo(&req);
  std::string resp;
  DISAGG_RETURN_NOT_OK(fabric_->Call(ctx, pool_node_, method_, req, &resp));
  return DecodeRows(resp);
}

Result<Shuffle::Report> Shuffle::RunCoupled(Fabric* fabric, int producers,
                                            int consumers,
                                            size_t rows_per_producer,
                                            size_t row_bytes) {
  Report report;
  // Consumers: passive receive buffers.
  std::vector<NodeId> consumer_nodes;
  std::vector<std::unique_ptr<std::string>> received(consumers);
  for (int c = 0; c < consumers; c++) {
    NodeId n = fabric->AddNode("shuf-consumer" + std::to_string(c),
                               NodeKind::kCompute, InterconnectModel::Rdma());
    received[c] = std::make_unique<std::string>();
    std::string* sink = received[c].get();
    fabric->node(n)->RegisterHandler(
        "shuf.recv", [sink](Slice req, std::string* resp,
                            RpcServerContext* sctx) {
          sink->append(req.data(), req.size());
          sctx->ChargeCompute(50 + req.size() / 64);
          resp->clear();
          return Status::OK();
        });
    consumer_nodes.push_back(n);
  }

  const size_t partition_rows =
      (rows_per_producer + consumers - 1) / consumers;
  const std::string partition(partition_rows * row_bytes, 'x');
  std::vector<NetContext> producer_ctx(producers);
  for (int p = 0; p < producers; p++) {
    for (int c = 0; c < consumers; c++) {
      producer_ctx[p].Charge(kConnectionSetupNs);  // pairwise session
      report.connections++;
      std::string resp;
      DISAGG_RETURN_NOT_OK(fabric->Call(&producer_ctx[p], consumer_nodes[c],
                                        "shuf.recv", partition, &resp));
    }
  }
  NetContext total;
  MergeParallel(&total, producer_ctx.data(), producer_ctx.size());
  report.sim_ns = total.sim_ns;
  report.bytes_moved = total.bytes_out;
  report.rows_delivered = size_t{static_cast<size_t>(producers)} *
                          consumers * partition_rows;
  return report;
}

Result<Shuffle::Report> Shuffle::RunDisaggregated(Fabric* fabric,
                                                  MemoryNode* pool,
                                                  int producers, int consumers,
                                                  size_t rows_per_producer,
                                                  size_t row_bytes) {
  Report report;
  const size_t partition_rows =
      (rows_per_producer + consumers - 1) / consumers;
  const size_t partition_bytes = partition_rows * row_bytes;
  const std::string partition(partition_bytes, 'x');

  // Layout: partition (p, c) at a fixed offset in the shuffle region.
  DISAGG_ASSIGN_OR_RETURN(
      GlobalAddr base,
      pool->AllocLocal(size_t{static_cast<size_t>(producers)} * consumers *
                       partition_bytes));

  // Producers: one doorbell-batched write covering all partitions, one
  // session to the pool each.
  std::vector<NetContext> producer_ctx(producers);
  for (int p = 0; p < producers; p++) {
    producer_ctx[p].Charge(kConnectionSetupNs);
    report.connections++;
    std::vector<Fabric::WriteOp> ops;
    for (int c = 0; c < consumers; c++) {
      const uint64_t offset =
          base.offset +
          (static_cast<uint64_t>(p) * consumers + c) * partition_bytes;
      ops.push_back(Fabric::WriteOp{RemoteAddr{base.region, offset},
                                    partition.data(), partition_bytes});
    }
    DISAGG_RETURN_NOT_OK(
        fabric->WriteBatch(&producer_ctx[p], pool->node(), ops));
  }
  NetContext produce_total;
  MergeParallel(&produce_total, producer_ctx.data(), producer_ctx.size());

  // Consumers: read their column of partitions, one session each.
  std::vector<NetContext> consumer_ctx(consumers);
  std::string buf(partition_bytes, '\0');
  for (int c = 0; c < consumers; c++) {
    consumer_ctx[c].Charge(kConnectionSetupNs);
    report.connections++;
    for (int p = 0; p < producers; p++) {
      const uint64_t offset =
          base.offset +
          (static_cast<uint64_t>(p) * consumers + c) * partition_bytes;
      GlobalAddr addr{base.node, base.region, offset};
      DISAGG_RETURN_NOT_OK(
          fabric->Read(&consumer_ctx[c], addr, buf.data(), partition_bytes));
    }
  }
  NetContext consume_total;
  MergeParallel(&consume_total, consumer_ctx.data(), consumer_ctx.size());

  report.sim_ns = produce_total.sim_ns + consume_total.sim_ns;
  report.bytes_moved = produce_total.bytes_out + consume_total.bytes_in;
  report.rows_delivered = size_t{static_cast<size_t>(producers)} *
                          consumers * partition_rows;
  return report;
}

}  // namespace disagg
