#ifndef DISAGG_QUERY_HYBRID_PUSHDOWN_H_
#define DISAGG_QUERY_HYBRID_PUSHDOWN_H_

#include <map>
#include <memory>
#include <vector>

#include "query/pushdown.h"

namespace disagg {

/// FlexPushdownDB-style hybrid execution (Sec. 1 reference [48]): a table
/// split into segments resident in disaggregated memory, queried with a mix
/// of LOCAL CACHING and PUSHDOWN — the two classic ways to cut data
/// movement, which FPDB shows are complementary:
///  - cached segments execute locally (no network at all);
///  - uncached segments push the fragment down (only results move);
///  - a pull-up policy admits frequently-touched segments into the cache.
/// Modes kCacheOnly / kPushdownOnly / kHybrid let experiments separate the
/// two effects.
class HybridTable {
 public:
  enum class Mode { kCacheOnly, kPushdownOnly, kHybrid };

  struct QueryStats {
    size_t cached_segments = 0;
    size_t pushed_segments = 0;
    size_t fetched_segments = 0;  // cache misses that pulled a segment up
    /// Pushdowns the pool refused (Busy/Unavailable/TimedOut) that fell
    /// back to client-side execution (see `set_degrade_to_client`).
    size_t degraded_pushdowns = 0;
  };

  /// Splits `rows` into `num_segments` remote tables. `cache_segments` is
  /// the local cache capacity (in segments).
  static Result<std::unique_ptr<HybridTable>> Create(
      NetContext* ctx, Fabric* fabric, MemoryNode* pool, Schema schema,
      const std::vector<Tuple>& rows, size_t num_segments,
      size_t cache_segments);

  /// Executes the fragment over all segments under the given mode.
  Result<std::vector<Tuple>> Query(NetContext* ctx,
                                   const ops::Fragment& fragment, Mode mode,
                                   QueryStats* stats = nullptr);

  size_t num_segments() const { return segments_.size(); }
  size_t cached_now() const { return cache_.size(); }

  /// Degrade ladder for pushdown (Farview-style refusal handling): when the
  /// pool rejects a pushdown with `Busy`/`Unavailable`/`TimedOut`, pull the
  /// raw segment up and execute the fragment client-side instead of failing
  /// the query — accounted in `QueryStats::degraded_pushdowns` and
  /// `NetContext::degraded_ops`, and never admitted to the cache (it is a
  /// one-off fallback, not an admission decision). Off by default: queries
  /// fail exactly as before until enabled.
  void set_degrade_to_client(bool on) { degrade_to_client_ = on; }
  bool degrade_to_client() const { return degrade_to_client_; }

 private:
  HybridTable() = default;

  Fabric* fabric_ = nullptr;
  Schema schema_;
  bool degrade_to_client_ = false;
  size_t cache_capacity_ = 0;
  std::vector<std::unique_ptr<RemoteTable>> segments_;
  std::map<size_t, std::vector<Tuple>> cache_;   // segment -> local rows
  std::map<size_t, uint64_t> touch_counts_;      // admission heuristic
};

}  // namespace disagg

#endif  // DISAGG_QUERY_HYBRID_PUSHDOWN_H_
