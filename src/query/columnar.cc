#include "query/columnar.h"

#include <cstring>
#include <limits>

namespace disagg {

ColumnarChunk ColumnarChunk::FromRows(Schema schema, std::vector<Tuple> rows) {
  ColumnarChunk chunk;
  chunk.schema_ = std::move(schema);
  chunk.rows_ = std::move(rows);
  const size_t ncols = chunk.schema_.size();
  chunk.mins_.assign(ncols, std::numeric_limits<double>::infinity());
  chunk.maxs_.assign(ncols, -std::numeric_limits<double>::infinity());
  for (const Tuple& row : chunk.rows_) {
    for (size_t c = 0; c < ncols; c++) {
      if (std::holds_alternative<std::string>(row[c])) {
        chunk.mins_[c] = -std::numeric_limits<double>::infinity();
        chunk.maxs_[c] = std::numeric_limits<double>::infinity();
      } else {
        const double v = AsDouble(row[c]);
        chunk.mins_[c] = std::min(chunk.mins_[c], v);
        chunk.maxs_[c] = std::max(chunk.maxs_[c], v);
      }
    }
  }
  return chunk;
}

std::string ColumnarChunk::Serialize() const {
  std::string out;
  PutVarint64(&out, rows_.size());
  for (size_t c = 0; c < schema_.size(); c++) {
    uint64_t lo_bits, hi_bits;
    std::memcpy(&lo_bits, &mins_[c], 8);
    std::memcpy(&hi_bits, &maxs_[c], 8);
    PutFixed64(&out, lo_bits);
    PutFixed64(&out, hi_bits);
  }
  // Column-major payload.
  for (size_t c = 0; c < schema_.size(); c++) {
    for (const Tuple& row : rows_) {
      EncodeTuple({row[c]}, &out);
    }
  }
  return out;
}

Result<ColumnarChunk> ColumnarChunk::Deserialize(const Schema& schema,
                                                 Slice input) {
  ColumnarChunk chunk;
  chunk.schema_ = schema;
  uint64_t count = 0;
  if (!GetVarint64(&input, &count)) return Status::Corruption("row count");
  chunk.mins_.resize(schema.size());
  chunk.maxs_.resize(schema.size());
  for (size_t c = 0; c < schema.size(); c++) {
    uint64_t lo_bits = 0, hi_bits = 0;
    if (!GetFixed64(&input, &lo_bits) || !GetFixed64(&input, &hi_bits)) {
      return Status::Corruption("zone map");
    }
    std::memcpy(&chunk.mins_[c], &lo_bits, 8);
    std::memcpy(&chunk.maxs_[c], &hi_bits, 8);
  }
  chunk.rows_.assign(count, Tuple());
  for (size_t c = 0; c < schema.size(); c++) {
    Schema one;
    one.columns.push_back(schema.columns[c]);
    for (uint64_t r = 0; r < count; r++) {
      auto v = DecodeTuple(one, &input);
      if (!v.ok()) return v.status();
      chunk.rows_[r].push_back(std::move((*v)[0]));
    }
  }
  return chunk;
}

}  // namespace disagg
