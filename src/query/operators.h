#ifndef DISAGG_QUERY_OPERATORS_H_
#define DISAGG_QUERY_OPERATORS_H_

#include <optional>
#include <vector>

#include "net/net_context.h"
#include "query/expr.h"
#include "query/types.h"

namespace disagg {

/// Aggregate functions for HashAggregate.
enum class AggFunc : uint8_t { kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggFunc func = AggFunc::kCount;
  int column = 0;  // ignored for kCount
};

/// Relational operators over materialized tuple vectors. Each charges its
/// modeled CPU time to the NetContext so that compute-pushdown economics
/// (client CPU vs pool CPU vs bytes moved) come out of the same ledger as
/// the network costs. Pass nullptr to skip accounting.
namespace ops {

std::vector<Tuple> Filter(NetContext* ctx, const std::vector<Tuple>& rows,
                          const Predicate& predicate);

std::vector<Tuple> Project(NetContext* ctx, const std::vector<Tuple>& rows,
                           const std::vector<int>& columns);

/// Inner equi-join; output tuples are left columns followed by right columns.
std::vector<Tuple> HashJoin(NetContext* ctx, const std::vector<Tuple>& left,
                            const std::vector<Tuple>& right, int left_col,
                            int right_col);

/// Group-by + aggregates. Output: group columns then one value per AggSpec.
/// Empty `group_cols` produces a single global row.
std::vector<Tuple> HashAggregate(NetContext* ctx,
                                 const std::vector<Tuple>& rows,
                                 const std::vector<int>& group_cols,
                                 const std::vector<AggSpec>& aggs);

/// Stable ascending (or descending) sort by the given columns.
std::vector<Tuple> SortBy(NetContext* ctx, std::vector<Tuple> rows,
                          const std::vector<int>& columns,
                          bool descending = false);

std::vector<Tuple> Limit(std::vector<Tuple> rows, size_t n);

/// Serialized fragment = (predicate, projection, optional aggregation) —
/// the unit TELEPORT ships to the memory pool and Farview programs into its
/// operator stack.
struct Fragment {
  Predicate predicate;
  std::vector<int> project;      // empty = all columns
  std::vector<int> group_cols;   // with aggs
  std::vector<AggSpec> aggs;     // empty = no aggregation stage

  void EncodeTo(std::string* dst) const;
  static Result<Fragment> DecodeFrom(Slice* input);

  /// Runs the fragment stages in order over `rows`.
  std::vector<Tuple> Execute(NetContext* ctx,
                             const std::vector<Tuple>& rows) const;
};

}  // namespace ops

}  // namespace disagg

#endif  // DISAGG_QUERY_OPERATORS_H_
