#include "workload/tpcc_lite.h"

#include "common/coding.h"

namespace disagg {

namespace {

// Row payloads: a couple of fixed counters plus padding to realistic widths.
std::string NumericRow(uint64_t a, uint64_t b, size_t pad) {
  std::string row;
  PutFixed64(&row, a);
  PutFixed64(&row, b);
  row.append(pad, 'p');
  return row;
}

uint64_t Field0(const std::string& row) {
  return DecodeFixed64(row.data());
}
uint64_t Field1(const std::string& row) {
  return DecodeFixed64(row.data() + 8);
}
void SetField0(std::string* row, uint64_t v) {
  EncodeFixed64(row->data(), v);
}
void SetField1(std::string* row, uint64_t v) {
  EncodeFixed64(row->data() + 8, v);
}

}  // namespace

uint64_t TpccLite::WarehouseKey(int w) {
  return (1ull << 56) | static_cast<uint64_t>(w);
}
uint64_t TpccLite::DistrictKey(int w, int d) {
  return (2ull << 56) | (static_cast<uint64_t>(w) << 16) |
         static_cast<uint64_t>(d);
}
uint64_t TpccLite::CustomerKey(int w, int d, int c) {
  return (3ull << 56) | (static_cast<uint64_t>(w) << 32) |
         (static_cast<uint64_t>(d) << 16) | static_cast<uint64_t>(c);
}
uint64_t TpccLite::StockKey(int w, int i) {
  return (4ull << 56) | (static_cast<uint64_t>(w) << 32) |
         static_cast<uint64_t>(i);
}
uint64_t TpccLite::OrderKey(int w, int d, int o) {
  return (5ull << 56) | (static_cast<uint64_t>(w) << 40) |
         (static_cast<uint64_t>(d) << 24) | static_cast<uint64_t>(o);
}
uint64_t TpccLite::OrderLineKey(int w, int d, int o, int l) {
  return (6ull << 56) | (static_cast<uint64_t>(w) << 40) |
         (static_cast<uint64_t>(d) << 24) | (static_cast<uint64_t>(o) << 8) |
         static_cast<uint64_t>(l);
}

TpccLite::TpccLite(RowEngine* db, Config config)
    : db_(db), config_(config), rng_(config.seed) {}

Status TpccLite::Load(NetContext* ctx) {
  for (int w = 0; w < config_.warehouses; w++) {
    DISAGG_RETURN_NOT_OK(
        db_->Put(ctx, WarehouseKey(w), NumericRow(0, 0, 64)));
    for (int d = 0; d < config_.districts_per_warehouse; d++) {
      // Field0 = next order id, Field1 = district YTD.
      DISAGG_RETURN_NOT_OK(
          db_->Put(ctx, DistrictKey(w, d), NumericRow(1, 0, 64)));
      for (int c = 0; c < config_.customers_per_district; c++) {
        // Field0 = balance, Field1 = payment count.
        DISAGG_RETURN_NOT_OK(
            db_->Put(ctx, CustomerKey(w, d, c), NumericRow(1000, 0, 120)));
      }
    }
    for (int i = 0; i < config_.items; i++) {
      // Field0 = stock quantity.
      DISAGG_RETURN_NOT_OK(
          db_->Put(ctx, StockKey(w, i), NumericRow(100, 0, 40)));
    }
  }
  return Status::OK();
}

Result<bool> TpccLite::NewOrder(NetContext* ctx) {
  const int w = static_cast<int>(rng_.Uniform(config_.warehouses));
  const int d =
      static_cast<int>(rng_.Uniform(config_.districts_per_warehouse));
  const TxnId txn = db_->Begin();
  auto run = [&]() -> Status {
    // Read-modify-write the district's next order id.
    std::string district;
    DISAGG_ASSIGN_OR_RETURN(district, db_->Read(ctx, txn, DistrictKey(w, d)));
    const uint64_t order_id = Field0(district);
    SetField0(&district, order_id + 1);
    DISAGG_RETURN_NOT_OK(db_->Update(ctx, txn, DistrictKey(w, d), district));

    // Decrement stock for each line, insert order + order lines.
    DISAGG_RETURN_NOT_OK(db_->Insert(
        ctx, txn, OrderKey(w, d, static_cast<int>(order_id)),
        NumericRow(order_id, config_.lines_per_order, 32)));
    for (int l = 0; l < config_.lines_per_order; l++) {
      const int item = static_cast<int>(rng_.Uniform(config_.items));
      std::string stock;
      DISAGG_ASSIGN_OR_RETURN(stock, db_->Read(ctx, txn, StockKey(w, item)));
      uint64_t qty = Field0(stock);
      qty = qty >= 5 ? qty - 5 : qty + 91 - 5;  // TPC-C restock rule
      SetField0(&stock, qty);
      DISAGG_RETURN_NOT_OK(db_->Update(ctx, txn, StockKey(w, item), stock));
      DISAGG_RETURN_NOT_OK(db_->Insert(
          ctx, txn, OrderLineKey(w, d, static_cast<int>(order_id), l),
          NumericRow(item, 5, 24)));
    }
    return Status::OK();
  }();
  if (run.ok()) {
    DISAGG_RETURN_NOT_OK(db_->Commit(ctx, txn));
    stats_.committed++;
    return true;
  }
  DISAGG_RETURN_NOT_OK(db_->Abort(ctx, txn));
  stats_.aborted++;
  if (run.IsBusy()) return false;  // lock conflict: retryable
  return run;
}

Result<bool> TpccLite::Payment(NetContext* ctx) {
  const int w = static_cast<int>(rng_.Uniform(config_.warehouses));
  const int d =
      static_cast<int>(rng_.Uniform(config_.districts_per_warehouse));
  const int c =
      static_cast<int>(rng_.Uniform(config_.customers_per_district));
  const uint64_t amount = 1 + rng_.Uniform(500);
  const TxnId txn = db_->Begin();
  auto run = [&]() -> Status {
    std::string warehouse;
    DISAGG_ASSIGN_OR_RETURN(warehouse, db_->Read(ctx, txn, WarehouseKey(w)));
    SetField1(&warehouse, Field1(warehouse) + amount);
    DISAGG_RETURN_NOT_OK(db_->Update(ctx, txn, WarehouseKey(w), warehouse));

    std::string district;
    DISAGG_ASSIGN_OR_RETURN(district, db_->Read(ctx, txn, DistrictKey(w, d)));
    SetField1(&district, Field1(district) + amount);
    DISAGG_RETURN_NOT_OK(db_->Update(ctx, txn, DistrictKey(w, d), district));

    std::string customer;
    DISAGG_ASSIGN_OR_RETURN(customer,
                            db_->Read(ctx, txn, CustomerKey(w, d, c)));
    SetField0(&customer, Field0(customer) - amount);
    SetField1(&customer, Field1(customer) + 1);
    return db_->Update(ctx, txn, CustomerKey(w, d, c), customer);
  }();
  if (run.ok()) {
    DISAGG_RETURN_NOT_OK(db_->Commit(ctx, txn));
    stats_.committed++;
    return true;
  }
  DISAGG_RETURN_NOT_OK(db_->Abort(ctx, txn));
  stats_.aborted++;
  if (run.IsBusy()) return false;
  return run;
}

}  // namespace disagg
