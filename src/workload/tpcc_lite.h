#ifndef DISAGG_WORKLOAD_TPCC_LITE_H_
#define DISAGG_WORKLOAD_TPCC_LITE_H_

#include "common/random.h"
#include "core/row_engine.h"

namespace disagg {

/// Scaled-down TPC-C running against any RowEngine architecture: NewOrder
/// and Payment transactions over warehouse / district / customer / stock /
/// order tables, with the standard access skew (reads + read-modify-writes
/// + inserts). Structurally faithful where it matters for the experiments:
/// transaction footprint (rows touched, log records produced) and conflict
/// pattern, not the full spec's 9 tables.
class TpccLite {
 public:
  struct Config {
    int warehouses = 2;
    int districts_per_warehouse = 4;
    int customers_per_district = 30;
    int items = 200;
    int lines_per_order = 5;
    uint64_t seed = 42;
  };

  struct Stats {
    uint64_t committed = 0;
    uint64_t aborted = 0;
  };

  TpccLite(RowEngine* db, Config config);

  /// Populates all tables.
  Status Load(NetContext* ctx);

  /// One NewOrder transaction; false = aborted on lock conflict (retryable).
  Result<bool> NewOrder(NetContext* ctx);
  /// One Payment transaction.
  Result<bool> Payment(NetContext* ctx);

  const Stats& stats() const { return stats_; }

  // Key-space layout (table tag in the top byte).
  static uint64_t WarehouseKey(int w);
  static uint64_t DistrictKey(int w, int d);
  static uint64_t CustomerKey(int w, int d, int c);
  static uint64_t StockKey(int w, int i);
  static uint64_t OrderKey(int w, int d, int o);
  static uint64_t OrderLineKey(int w, int d, int o, int l);

 private:
  RowEngine* db_;
  Config config_;
  Random rng_;
  Stats stats_;
};

}  // namespace disagg

#endif  // DISAGG_WORKLOAD_TPCC_LITE_H_
