#ifndef DISAGG_WORKLOAD_TPCH_LITE_H_
#define DISAGG_WORKLOAD_TPCH_LITE_H_

#include <vector>

#include "query/operators.h"
#include "query/types.h"

namespace disagg::tpch {

/// Scaled-down TPC-H: schemas, deterministic data generators, and three
/// representative query shapes (pricing-summary Q1, shipping-priority join
/// Q3, forecasting-revenue filter/sum Q6) built from the operator library.
/// Used by the OLAP experiments (E4, E11) over different placements of the
/// same data.

Schema LineitemSchema();  // orderkey, quantity, price, discount, shipday,
                          // returnflag
Schema OrdersSchema();    // orderkey, custkey, orderday, priority
Schema CustomerSchema();  // custkey, segment

std::vector<Tuple> GenLineitem(size_t rows, uint64_t seed = 101);
std::vector<Tuple> GenOrders(size_t rows, uint64_t seed = 102);
std::vector<Tuple> GenCustomer(size_t rows, uint64_t seed = 103);

/// Q1-style pricing summary: filter shipday <= cutoff, group by returnflag,
/// aggregate count/sum(quantity)/sum(price).
std::vector<Tuple> Q1(NetContext* ctx, const std::vector<Tuple>& lineitem,
                      int64_t cutoff_day);

/// Q3-style shipping priority: customers in `segment` join orders join
/// lineitem, group by orderkey, sum(price), top 10 by revenue.
std::vector<Tuple> Q3(NetContext* ctx, const std::vector<Tuple>& customer,
                      const std::vector<Tuple>& orders,
                      const std::vector<Tuple>& lineitem,
                      const std::string& segment);

/// Q6-style revenue: filter shipday in [lo, hi), discount in range,
/// quantity < qty_max; sum(price).
std::vector<Tuple> Q6(NetContext* ctx, const std::vector<Tuple>& lineitem,
                      int64_t day_lo, int64_t day_hi, int64_t qty_max);

}  // namespace disagg::tpch

#endif  // DISAGG_WORKLOAD_TPCH_LITE_H_
