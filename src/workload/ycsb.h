#ifndef DISAGG_WORKLOAD_YCSB_H_
#define DISAGG_WORKLOAD_YCSB_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace disagg {

/// YCSB-lite operation stream generator: configurable read/update/insert
/// mix over a Zipfian or uniform key distribution. The consumer (a remote
/// index, a cache hierarchy, an engine) applies the ops to whatever API it
/// exposes; this class only decides *what* to touch, the skew being the
/// property the contention experiments depend on.
class YcsbGenerator {
 public:
  enum class OpType : uint8_t { kRead, kUpdate, kInsert };

  struct Op {
    OpType type;
    uint64_t key;
  };

  struct Mix {
    double read = 0.5;
    double update = 0.5;
    double insert = 0.0;

    static Mix A() { return {0.5, 0.5, 0.0}; }    // update-heavy
    static Mix B() { return {0.95, 0.05, 0.0}; }  // read-mostly
    static Mix C() { return {1.0, 0.0, 0.0}; }    // read-only
    static Mix D() { return {0.95, 0.0, 0.05}; }  // read-latest-ish
  };

  /// `zipf_theta` <= 0 selects a uniform distribution.
  YcsbGenerator(uint64_t key_space, Mix mix, double zipf_theta = 0.99,
                uint64_t seed = 7)
      : key_space_(key_space),
        mix_(mix),
        rng_(seed),
        zipf_(key_space, zipf_theta <= 0 ? 0.01 : zipf_theta, seed ^ 0x5bd1),
        uniform_(zipf_theta <= 0),
        next_insert_(key_space) {}

  Op Next() {
    const double dice = rng_.NextDouble();
    Op op;
    if (dice < mix_.read) {
      op.type = OpType::kRead;
      op.key = NextKey();
    } else if (dice < mix_.read + mix_.update) {
      op.type = OpType::kUpdate;
      op.key = NextKey();
    } else {
      op.type = OpType::kInsert;
      op.key = next_insert_++;
    }
    return op;
  }

  std::vector<Op> Batch(size_t n) {
    std::vector<Op> ops;
    ops.reserve(n);
    for (size_t i = 0; i < n; i++) ops.push_back(Next());
    return ops;
  }

  std::string ValueFor(uint64_t key, size_t size = 100) {
    (void)key;
    return rng_.RandomString(size);
  }

 private:
  uint64_t NextKey() {
    return uniform_ ? rng_.Uniform(key_space_) : zipf_.Next();
  }

  uint64_t key_space_;
  Mix mix_;
  Random rng_;
  ZipfianGenerator zipf_;
  bool uniform_;
  uint64_t next_insert_;
};

}  // namespace disagg

#endif  // DISAGG_WORKLOAD_YCSB_H_
